package regcluster

import (
	"regcluster/internal/dataset"
	"regcluster/internal/ontology"
)

// YeastConfig parameterizes the yeast-substitute generator that stands in
// for the Tavazoie 2884×17 benchmark of the paper's effectiveness study
// (see DESIGN.md §4 for the substitution rationale).
type YeastConfig = dataset.YeastConfig

// Module is the ground truth of one planted co-regulated gene module of the
// yeast substitute.
type Module = dataset.Module

// DefaultYeastConfig returns the documented substitution: 2884 genes × 17
// conditions with 12 planted modules.
func DefaultYeastConfig() YeastConfig { return dataset.DefaultYeastConfig() }

// GenerateYeastLike builds the deterministic yeast-substitute matrix and its
// planted module ground truth.
func GenerateYeastLike(cfg YeastConfig) (*Matrix, []Module, error) {
	return dataset.GenerateYeastLike(cfg)
}

// LoadExpressionFile reads a TSV expression file and imputes missing values
// with per-gene means, ready for mining.
func LoadExpressionFile(path string) (*Matrix, error) { return dataset.LoadTSV(path) }

// GO is a Gene Ontology annotation corpus used for enrichment scoring.
type GO = ontology.GO

// GONamespace selects biological process, molecular function or cellular
// component.
type GONamespace = ontology.Namespace

// GO namespaces in Table 2 order.
const (
	GOProcess   = ontology.Process
	GOFunction  = ontology.Function
	GOComponent = ontology.Component
)

// Enrichment is one term's hypergeometric score for a gene set.
type Enrichment = ontology.Enrichment

// SynthesizeGO builds a synthetic GO corpus whose terms are correlated with
// the given gene modules (one term per module and namespace plus decoys), so
// co-regulated clusters obtain Table-2-style p-values.
func SynthesizeGO(nGenes int, modules [][]int, seed int64) *GO {
	return ontology.Synthesize(nGenes, modules, seed)
}

// HypergeomTail returns P(X >= x) for X ~ Hypergeometric(N, K, n) — the GO
// term finder's p-value computation.
func HypergeomTail(N, K, n, x int) float64 { return ontology.HypergeomTail(N, K, n, x) }
