# Development entry points. `make check` is the CI gate: it builds
# everything, vets, and runs the full test suite under the race detector —
# the shared-budget parallel miner must stay race-clean.

GO ?= go

.PHONY: build test vet race check bench serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Boot regserver on a random port and run one mining job end to end over
# HTTP with curl, asserting a cache hit on the second submission.
serve-smoke: build
	GO=$(GO) ./scripts/serve_smoke.sh
