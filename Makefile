# Development entry points. `make check` is the CI gate: it builds
# everything, vets, and runs the full test suite under the race detector —
# the shared-budget parallel miner must stay race-clean.

GO ?= go

# Coverage floors for `make cover` (percent of statements; CI fails below).
# Measured at the time the floor was set: core 97.7%, service 85.7%.
COVER_FLOOR_CORE ?= 95.0
COVER_FLOOR_SERVICE ?= 82.0

.PHONY: build test vet race service-race check lint cover bench bench-baseline bench-compare bench-smoke bench-kernels profile serve-smoke crash-smoke dist-smoke overload-smoke incr-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-recovery machinery (journal, checkpoints, drain, fault hooks)
# must stay race-clean on its own; full `race` covers it too, but this
# target is the fast gate while iterating on the service.
service-race:
	$(GO) test -race ./internal/service/... ./internal/faultinject/...

check: build vet race

# Static analysis gate. gofmt and vet always run; staticcheck, govulncheck
# and shellcheck run when installed (CI installs them; a bare dev container
# may not have them, and the gate must still be runnable there).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipping"; fi
	@if command -v shellcheck >/dev/null 2>&1; then shellcheck scripts/*.sh; \
		else echo "lint: shellcheck not installed; skipping"; fi

# Coverage floors over the two packages with the most behavior: the mining
# engine and the service layer. Fails when either drops below its floor.
cover:
	$(GO) test -coverprofile=cover_core.out ./internal/core
	$(GO) test -coverprofile=cover_service.out ./internal/service
	@$(GO) tool cover -func=cover_core.out | awk -v floor=$(COVER_FLOOR_CORE) \
		'/^total:/ { sub(/%/,"",$$3); if ($$3+0 < floor) { printf "internal/core coverage %s%% below floor %s%%\n",$$3,floor; exit 1 } \
		printf "internal/core coverage %s%% (floor %s%%)\n",$$3,floor }'
	@$(GO) tool cover -func=cover_service.out | awk -v floor=$(COVER_FLOOR_SERVICE) \
		'/^total:/ { sub(/%/,"",$$3); if ($$3+0 < floor) { printf "internal/service coverage %s%% below floor %s%%\n",$$3,floor; exit 1 } \
		printf "internal/service coverage %s%% (floor %s%%)\n",$$3,floor }'

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Record a fresh benchmark baseline: make bench-baseline N=2 writes
# BENCH_2.json (ns/op, B/op, allocs/op for the E1-E8 benchmark set).
# BEST_OF=3 repeats every benchmark and keeps the fastest sample (min-of-N).
N ?= 1
BEST_OF ?= 1
bench-baseline:
	GO=$(GO) BEST_OF=$(BEST_OF) ./scripts/bench_baseline.sh BENCH_$(N).json

# Re-run the benchmark set and diff against the newest committed baseline
# with benchstat-style thresholds (fail on >15% ns/op or >5% allocs/op
# regression on any benchmark). BEST_OF=3 reduces noise the same way it does
# for bench-baseline.
bench-compare:
	GO=$(GO) BEST_OF=$(BEST_OF) ./scripts/bench_baseline.sh /tmp/bench_current.json
	$(GO) run ./cmd/benchdiff \
		-old "$$(ls BENCH_*.json | sort -V | tail -1)" \
		-new /tmp/bench_current.json \
		-max-ns-regress 15 -max-allocs-regress 5

# Fast CI gate: one iteration of the running example and the RWave index
# build proves the bench harness still compiles and runs.
bench-smoke:
	$(GO) test -run XXX -bench 'BenchmarkRunningExample$$|BenchmarkRWaveBuild$$' -benchtime 1x -benchmem .

# Kernel microbenchmarks (internal/core kernel_bench_test.go): the isolated
# inner-loop primitives of the columnar hot path — frontier lookups,
# candidate scan, Equation 7 scoring, bitset walk. -benchtime 100x keeps it
# cheap enough for the CI smoke pass while still exercising the loops.
bench-kernels:
	$(GO) test -run XXX -bench 'BenchmarkKernel' -benchtime 100x -benchmem ./internal/core

# CPU-profile the mining hot path: one iteration of a Figure 7 panel under
# -cpuprofile, then the top cumulative functions. Override PROFILE_BENCH to
# profile a different benchmark (e.g. PROFILE_BENCH='BenchmarkFig7Conds/c=30$$').
PROFILE_BENCH ?= BenchmarkFig7Genes/g=3000$$
profile:
	$(GO) test -run XXX -bench '$(PROFILE_BENCH)' -benchtime 1x \
		-cpuprofile cpu.prof -o profile.test .
	$(GO) tool pprof -top -cum -nodecount=10 profile.test cpu.prof

# Boot regserver on a random port and run one mining job end to end over
# HTTP with curl, asserting a cache hit on the second submission.
serve-smoke: build
	GO=$(GO) ./scripts/serve_smoke.sh

# SIGKILL regserver mid-job, restart it on the same -data-dir, and assert
# the job resumes from its checkpoint to a byte-identical result.
crash-smoke: build
	GO=$(GO) ./scripts/crash_smoke.sh

# Mine one job across a coordinator and two worker processes, SIGKILL a
# worker mid-lease, and assert re-leasing plus a result byte-identical to a
# single-node run.
dist-smoke: build
	GO=$(GO) ./scripts/dist_smoke.sh

# Burst 50 submissions from two API-key tenants at a 2-slot server: the
# bounded tenant gets honest 429s with Retry-After, the light tenant's work
# completes, no 5xx, and a restart replays identical usage ledgers.
overload-smoke: build
	GO=$(GO) ./scripts/overload_smoke.sh

# Mine a dataset, append a one-condition delta, and re-mine: the second run
# must take the incremental path (repaired models, dirty subtrees only) and
# match a cold mine of the grown matrix byte for byte.
incr-smoke: build
	GO=$(GO) ./scripts/incr_smoke.sh
