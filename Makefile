# Development entry points. `make check` is the CI gate: it builds
# everything, vets, and runs the full test suite under the race detector —
# the shared-budget parallel miner must stay race-clean.

GO ?= go

.PHONY: build test vet race service-race check bench serve-smoke crash-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-recovery machinery (journal, checkpoints, drain, fault hooks)
# must stay race-clean on its own; full `race` covers it too, but this
# target is the fast gate while iterating on the service.
service-race:
	$(GO) test -race ./internal/service/... ./internal/faultinject/...

check: build vet race

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Boot regserver on a random port and run one mining job end to end over
# HTTP with curl, asserting a cache hit on the second submission.
serve-smoke: build
	GO=$(GO) ./scripts/serve_smoke.sh

# SIGKILL regserver mid-job, restart it on the same -data-dir, and assert
# the job resumes from its checkpoint to a byte-identical result.
crash-smoke: build
	GO=$(GO) ./scripts/crash_smoke.sh
