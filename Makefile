# Development entry points. `make check` is the CI gate: it builds
# everything, vets, and runs the full test suite under the race detector —
# the shared-budget parallel miner must stay race-clean.

GO ?= go

.PHONY: build test vet race service-race check bench bench-baseline bench-compare bench-smoke serve-smoke crash-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-recovery machinery (journal, checkpoints, drain, fault hooks)
# must stay race-clean on its own; full `race` covers it too, but this
# target is the fast gate while iterating on the service.
service-race:
	$(GO) test -race ./internal/service/... ./internal/faultinject/...

check: build vet race

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Record a fresh benchmark baseline: make bench-baseline N=2 writes
# BENCH_2.json (ns/op, B/op, allocs/op for the E1-E8 benchmark set).
N ?= 1
bench-baseline:
	GO=$(GO) ./scripts/bench_baseline.sh BENCH_$(N).json

# Re-run the benchmark set and diff against the newest committed baseline
# with benchstat-style thresholds (fail on >15% ns/op or >5% allocs/op
# regression on any benchmark).
bench-compare:
	GO=$(GO) ./scripts/bench_baseline.sh /tmp/bench_current.json
	$(GO) run ./cmd/benchdiff \
		-old "$$(ls BENCH_*.json | sort -V | tail -1)" \
		-new /tmp/bench_current.json \
		-max-ns-regress 15 -max-allocs-regress 5

# Fast CI gate: one iteration of the running example and the RWave index
# build proves the bench harness still compiles and runs.
bench-smoke:
	$(GO) test -run XXX -bench 'BenchmarkRunningExample$$|BenchmarkRWaveBuild$$' -benchtime 1x -benchmem .

# Boot regserver on a random port and run one mining job end to end over
# HTTP with curl, asserting a cache hit on the second submission.
serve-smoke: build
	GO=$(GO) ./scripts/serve_smoke.sh

# SIGKILL regserver mid-job, restart it on the same -data-dir, and assert
# the job resumes from its checkpoint to a byte-identical result.
crash-smoke: build
	GO=$(GO) ./scripts/crash_smoke.sh
