package regcluster

import (
	"regcluster/internal/tensor"
	"regcluster/internal/tricluster"
)

// Tensor is a labelled genes × samples × times expression tensor — the data
// shape the triCluster baseline (Zhao & Zaki 2005) mines.
type Tensor = tensor.Tensor

// NewTensor returns a zeroed tensor with generated axis names.
func NewTensor(genes, samples, times int) *Tensor { return tensor.New(genes, samples, times) }

// TensorConfig parameterizes the 3-D synthetic generator.
type TensorConfig = tensor.GenerateConfig

// Embedded3D is the ground truth of one planted tricluster.
type Embedded3D = tensor.Embedded3D

// GenerateTensor builds a random positive tensor with planted rank-1
// multiplicative blocks (perfect scaling triclusters).
func GenerateTensor(cfg TensorConfig) (*Tensor, []Embedded3D, error) {
	return tensor.Generate(cfg)
}

// TriclusterParams configures the 3-D miner.
type TriclusterParams = tricluster.Params

// Tricluster is one mined 3-D block.
type Tricluster = tricluster.Tricluster

// MineTriclusters discovers ratio-coherent 3-D blocks of t.
func MineTriclusters(t *Tensor, p TriclusterParams) ([]Tricluster, error) {
	return tricluster.Mine(t, p)
}

// IsTricluster verifies a block against the full 3-D ratio-coherence
// definition.
func IsTricluster(t *Tensor, genes, samples, times []int, eps float64) bool {
	return tricluster.IsTricluster(t, genes, samples, times, eps)
}
