// Command regserver runs the reg-cluster mining service: a long-lived HTTP
// server with a content-addressed dataset registry, an asynchronous job
// manager over the parallel miner, an LRU result cache, and Prometheus-style
// metrics.
//
// Usage:
//
//	regserver -addr :8371 -jobs 2 -cache 256
//
// The API surface (see internal/service):
//
//	POST   /datasets?name=...   upload a TSV matrix (content-addressed)
//	GET    /datasets            list datasets
//	GET    /datasets/{id}       dataset detail with per-gene row stats
//	GET    /datasets/{id}/tsv   download the (imputed) matrix
//	DELETE /datasets/{id}       remove a dataset
//	POST   /datasets/{id}/append?axis=conditions|genes
//	                            grow a dataset by a delta TSV: a new
//	                            content-addressed version with recorded
//	                            lineage; re-mining it under unchanged params
//	                            repairs the RWave index and re-mines only the
//	                            subtrees the delta dirtied
//	GET    /datasets/{id}/diff/{parent}
//	                            clusters added/removed/grown vs the parent's
//	                            result (regcluster.diff/v1)
//	POST   /jobs                submit a mining job (JSON body)
//	POST   /sweep               submit a batch ε/γ/MinG/MinC parameter sweep
//	GET    /sweeps, /sweeps/{id} sweep summaries (one RWave build per γ group)
//	GET    /jobs, /jobs/{id}    inspect jobs
//	POST   /jobs/{id}/cancel    cooperative cancellation
//	GET    /jobs/{id}/stream    NDJSON cluster stream (live)
//	GET    /jobs/{id}/result    settled result document
//	GET    /metrics, /healthz, /debug/pprof/*
//
// Distributed mode (see internal/dist): `-mode coordinator` serves the same
// API but splits every job into per-condition subtree leases that remote
// workers claim over HTTP; `-mode worker -join URL` turns the process into
// such a worker — it replicates datasets by content hash, mines leased
// subtrees, and ships clusters back in heartbeats. A worker killed mid-lease
// costs one lease TTL: the coordinator re-issues the subtree from the last
// received watermark, and the merged output stays byte-identical to a
// single-node run.
//
// On SIGINT/SIGTERM the server stops accepting work and drains running jobs,
// cancelling whatever is still mining when the grace period expires.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"regcluster/internal/dist"
	"regcluster/internal/obs"
	"regcluster/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "regserver:", err)
		os.Exit(1)
	}
}

// run boots the service and blocks until ctx is cancelled (or the listener
// fails). It prints the bound address to stdout as its first line so callers
// using ":0" can discover the port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("regserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8371", "listen address (host:port; port 0 picks a free port)")
		jobs        = fs.Int("jobs", 2, "mining jobs allowed to run concurrently")
		workers     = fs.Int("workers", 0, "default per-job worker count (0 = all cores)")
		maxWorkers  = fs.Int("max-workers", 64, "reject submissions asking for more workers than this")
		cacheSize   = fs.Int("cache", 256, "result-cache entries (negative disables caching)")
		modelCache  = fs.Int("model-cache", 16, "shared RWave model sets retained across jobs that agree on (dataset, γ-scheme) (negative disables retention)")
		maxDatasets = fs.Int("max-datasets", 64, "dataset registry capacity")
		maxUpload   = fs.Int64("max-upload-bytes", 64<<20, "largest accepted dataset upload")
		maxDuration = fs.Duration("max-job-duration", 0, "hard per-job mining deadline (0 = unlimited)")
		maxNodes    = fs.Int("max-nodes", 0, "server-side cap on search nodes per job (0 = unlimited)")
		maxClusters = fs.Int("max-clusters", 0, "server-side cap on clusters per job (0 = unlimited)")
		grace       = fs.Duration("grace", 30*time.Second, "shutdown grace period before running jobs are interrupted")
		dataDir     = fs.String("data-dir", "", "durable state directory: datasets, results, and the job journal survive restarts; interrupted jobs resume from their checkpoints (empty = in-memory only)")
		ckEvery     = fs.Int("checkpoint-every", 64, "journal a miner checkpoint every N delivered clusters (negative = only at subtree boundaries)")
		retries     = fs.Int("retries", 2, "transient job failures retried with capped exponential backoff (negative disables)")
		trace       = fs.Bool("trace", false, "record a span tree per job (queue wait, mining attempts, stream replays), served at GET /jobs/{id}/trace")
		logFormat   = fs.String("log-format", "text", `structured log format: "text" or "json" (one JSON object per line)`)
		slowJob     = fs.Duration("slow-job", 30*time.Second, "log a warning with a per-phase breakdown for jobs slower than this (0 disables)")
		tenantsFile = fs.String("tenants", "", "JSON file of API-key tenants (weights, priorities, quotas); empty = anonymous tenant only")
		tenantRate  = fs.Float64("tenant-rate", 0, "default per-tenant submission rate limit in jobs/sec (0 = unlimited)")
		tenantBurst = fs.Int("tenant-burst", 0, "default per-tenant submission burst (0 = ceil(rate))")
		maxActive   = fs.Int("max-active-per-tenant", 0, "jobs one tenant may have queued+running at once (0 = unlimited)")
		maxQueued   = fs.Int("max-queued-per-tenant", 0, "jobs one tenant may have waiting for a slot (0 = unlimited)")
		shedAt      = fs.Int("shed-watermark", 0, "total queued jobs above which the newest lowest-priority queued work is shed (0 = disabled)")
		mode        = fs.String("mode", "single", `mining mode: "single" (in-process), "coordinator" (lease subtrees to workers), or "worker" (join a coordinator)`)
		join        = fs.String("join", "", "coordinator base URL a worker registers with (worker mode only)")
		advertise   = fs.String("advertise", "", "name this worker reports to the coordinator (default: the hostname)")
		leaseTTL    = fs.Duration("lease-ttl", 5*time.Second, "coordinator lease TTL: a lease without a heartbeat for this long is revoked and re-issued")
		localLoops  = fs.Int("local-workers", 1, "in-process mining loops each coordinator job runs alongside remote workers (0 = remote workers only)")
		slots       = fs.Int("slots", 0, "subtree leases a worker mines concurrently (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	if *mode == "worker" {
		return runWorker(ctx, workerOptions{
			addr: *addr, join: *join, advertise: *advertise, slots: *slots, format: format,
		}, stdout, stderr)
	}
	if *join != "" {
		return fmt.Errorf("-join only applies to -mode worker (got -mode %s)", *mode)
	}
	// The service treats DistLocalWorkers 0 as "default one loop"; the flag's
	// 0 means "none" (pure remote mining), which the service spells negative.
	distLocal := *localLoops
	if distLocal <= 0 {
		distLocal = -1
	}
	slow := *slowJob
	if slow <= 0 {
		slow = -1 // Config treats 0 as "use the default"; negative disables
	}
	var tenants []service.TenantConfig
	if *tenantsFile != "" {
		tenants, err = service.LoadTenants(*tenantsFile)
		if err != nil {
			return err
		}
	}

	svc, err := service.Open(service.Config{
		MaxConcurrentJobs:       *jobs,
		DefaultWorkers:          *workers,
		MaxWorkersPerJob:        *maxWorkers,
		CacheEntries:            *cacheSize,
		ModelCacheEntries:       *modelCache,
		MaxDatasets:             *maxDatasets,
		MaxUploadBytes:          *maxUpload,
		MaxJobDuration:          *maxDuration,
		MaxNodesPerJob:          *maxNodes,
		MaxClustersPerJob:       *maxClusters,
		Tenants:                 tenants,
		TenantRatePerSec:        *tenantRate,
		TenantBurst:             *tenantBurst,
		MaxActivePerTenant:      *maxActive,
		MaxQueuedPerTenant:      *maxQueued,
		ShedWatermark:           *shedAt,
		DataDir:                 *dataDir,
		CheckpointEveryClusters: *ckEvery,
		MaxJobRetries:           *retries,
		Logger:                  obs.NewLogger(stderr, format),
		EnableTracing:           *trace,
		SlowJobThreshold:        slow,
		Mode:                    *mode,
		LeaseTTL:                *leaseTTL,
		DistLocalWorkers:        distLocal,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "regserver: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "regserver: shutting down")

	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the job manager first: new submissions are rejected immediately
	// and cluster streams close as their jobs settle, so the subsequent HTTP
	// shutdown is not held open by long-lived /stream requests. Both phases
	// share the grace period.
	drainErr := svc.Shutdown(graceCtx)
	httpErr := httpSrv.Shutdown(graceCtx)
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	fmt.Fprintln(stdout, "regserver: bye")
	return nil
}

// workerOptions is the worker-mode slice of the flag set.
type workerOptions struct {
	addr      string
	join      string
	advertise string
	slots     int
	format    obs.Format
}

// runWorker turns the process into a mining worker: it registers with the
// coordinator at -join, long-polls for subtree leases, and serves only a
// local /healthz (liveness plus lease counters) on -addr. It blocks until ctx
// is cancelled; mining in flight at that point is abandoned and the
// coordinator re-issues it after one lease TTL.
func runWorker(ctx context.Context, opt workerOptions, stdout, stderr io.Writer) error {
	if opt.join == "" {
		return errors.New("-mode worker requires -join (coordinator base URL)")
	}
	name := opt.advertise
	if name == "" {
		name, _ = os.Hostname()
	}
	logger := obs.NewLogger(stderr, opt.format)
	w := dist.NewWorker(dist.WorkerConfig{
		Coordinator: opt.join,
		Name:        name,
		Slots:       opt.slots,
		Logf:        logger.Printf,
	})

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "regserver: worker listening on http://%s (coordinator %s)\n", ln.Addr(), opt.join)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(map[string]any{ //nolint:errcheck // best-effort probe body
			"status":           "ok",
			"mode":             "worker",
			"coordinator":      opt.join,
			"leases_completed": w.Completed.Load(),
			"leases_abandoned": w.Abandoned.Load(),
			"leases_nacked":    w.Nacked.Load(),
			"replicas_fetched": w.Replicated.Load(),
		})
	})
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(ctx) }()

	select {
	case err := <-serveErr:
		return err
	case err := <-runErr:
		if err != nil {
			return err
		}
	case <-ctx.Done():
		<-runErr // Run returns once its lease loops notice the cancellation.
	}
	fmt.Fprintln(stdout, "regserver: worker shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(stdout, "regserver: bye")
	return nil
}
