package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/paperdata"
)

// lineBuffer is a concurrency-safe writer the server goroutine logs into.
type lineBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerLifecycle boots regserver on a random port, runs one mining job
// end to end over HTTP, verifies the cache hit on resubmission, and shuts the
// process down cleanly via context cancellation (the signal path).
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr lineBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-jobs", "1", "-grace", "5s"}, &stdout, &stderr)
	}()

	// The first stdout line announces the bound address.
	base := ""
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			if j := strings.IndexByte(out[i:], '\n'); j > 0 {
				base = strings.TrimSpace(out[i : i+j])
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no listening line printed; stdout %q stderr %q", stdout.String(), stderr.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	// Upload the Table 1 matrix.
	m := paperdata.RunningExample()
	var tsv bytes.Buffer
	if err := m.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/datasets?name=table1", "text/tab-separated-values", &tsv)
	if err != nil {
		t.Fatal(err)
	}
	var ds struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	submit := func() (id string, cached bool) {
		body, _ := json.Marshal(map[string]any{
			"dataset": ds.ID,
			"params":  core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1},
		})
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit %d: %s", resp.StatusCode, msg)
		}
		var v struct {
			ID     string `json:"id"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.ID, v.Cached
	}

	jobID, cached := submit()
	if cached {
		t.Fatal("first submission cached")
	}
	var status string
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Status   string `json:"status"`
			Clusters int    `json:"clusters"`
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		status = v.Status
		if status == "done" {
			if v.Clusters != 1 {
				t.Fatalf("table 1 mined %d clusters, want 1", v.Clusters)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status != "done" {
		t.Fatalf("job stuck in %q", status)
	}
	if _, cached := submit(); !cached {
		t.Fatal("resubmission not served from cache")
	}

	// Context cancellation must drain and exit cleanly, like SIGTERM.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v; stderr %q", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if out := stdout.String(); !strings.Contains(out, "bye") {
		t.Fatalf("no clean-shutdown line in %q", out)
	}
}

// startProc launches run() with the given args and returns the base URL it
// announced on stdout plus the error channel; the server dies with ctx.
func startProc(t *testing.T, ctx context.Context, args ...string) (string, *lineBuffer, chan error) {
	t.Helper()
	var stdout, stderr lineBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, args, &stdout, &stderr) }()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			if j := strings.IndexByte(out[i:], '\n'); j > 0 {
				// The line may carry trailing detail ("... (coordinator ...)");
				// the URL is its first token.
				return strings.Fields(out[i : i+j])[0], &stdout, runErr
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no listening line printed; stdout %q stderr %q", stdout.String(), stderr.String())
	return "", nil, nil
}

// TestDistributedLifecycle boots a coordinator with no local mining loops and
// two worker processes (all via run(), the real CLI entry point), mines the
// Table 1 job through them, checks the worker-side probe, and shuts everything
// down cleanly.
func TestDistributedLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, _, coordErr := startProc(t, ctx,
		"-addr", "127.0.0.1:0", "-mode", "coordinator", "-local-workers", "0",
		"-lease-ttl", "2s", "-grace", "5s")
	wbase1, _, werr1 := startProc(t, ctx, "-addr", "127.0.0.1:0", "-mode", "worker", "-join", base, "-advertise", "w1")
	_, _, werr2 := startProc(t, ctx, "-addr", "127.0.0.1:0", "-mode", "worker", "-join", base, "-advertise", "w2")

	m := paperdata.RunningExample()
	var tsv bytes.Buffer
	if err := m.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets?name=table1", "text/tab-separated-values", &tsv)
	if err != nil {
		t.Fatal(err)
	}
	var ds struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body, _ := json.Marshal(map[string]any{
		"dataset": ds.ID,
		"params":  core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1},
	})
	resp, err = http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status := ""
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline) && status != "done"; {
		resp, err := http.Get(base + "/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var jv struct {
			Status   string `json:"status"`
			Clusters int    `json:"clusters"`
			Error    string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		status = jv.Status
		if status == "done" && jv.Clusters != 1 {
			t.Fatalf("distributed table 1 mined %d clusters, want 1", jv.Clusters)
		}
		if status == "failed" {
			t.Fatalf("distributed job failed: %s", jv.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status != "done" {
		t.Fatalf("distributed job stuck in %q", status)
	}

	// The worker probe reports its lease work.
	resp, err = http.Get(wbase1 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var wh struct {
		Mode string `json:"mode"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if wh.Mode != "worker" {
		t.Fatalf("worker probe mode %q", wh.Mode)
	}

	cancel()
	for _, ch := range []chan error{coordErr, werr1, werr2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("process exited with %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("process did not shut down")
		}
	}
}

// TestModeFlagValidation covers the distributed flag-error paths.
func TestModeFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "worker"}, // worker without -join
		{"-mode", "single", "-join", "http://localhost"}, // -join outside worker mode
		{"-mode", "shard", "-addr", "127.0.0.1:0"},       // unknown mode
	}
	for _, args := range cases {
		var stdout, stderr lineBuffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestBadFlags covers the flag-error path.
func TestBadFlags(t *testing.T) {
	var stdout, stderr lineBuffer
	err := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestListenError covers an unbindable address.
func TestListenError(t *testing.T) {
	var stdout, stderr lineBuffer
	err := run(context.Background(), []string{"-addr", "256.0.0.1:1"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("bogus address accepted")
	}
	_ = fmt.Sprint(err)
}
