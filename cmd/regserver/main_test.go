package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/paperdata"
)

// lineBuffer is a concurrency-safe writer the server goroutine logs into.
type lineBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServerLifecycle boots regserver on a random port, runs one mining job
// end to end over HTTP, verifies the cache hit on resubmission, and shuts the
// process down cleanly via context cancellation (the signal path).
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr lineBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-jobs", "1", "-grace", "5s"}, &stdout, &stderr)
	}()

	// The first stdout line announces the bound address.
	base := ""
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			if j := strings.IndexByte(out[i:], '\n'); j > 0 {
				base = strings.TrimSpace(out[i : i+j])
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no listening line printed; stdout %q stderr %q", stdout.String(), stderr.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	// Upload the Table 1 matrix.
	m := paperdata.RunningExample()
	var tsv bytes.Buffer
	if err := m.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/datasets?name=table1", "text/tab-separated-values", &tsv)
	if err != nil {
		t.Fatal(err)
	}
	var ds struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	submit := func() (id string, cached bool) {
		body, _ := json.Marshal(map[string]any{
			"dataset": ds.ID,
			"params":  core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1},
		})
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit %d: %s", resp.StatusCode, msg)
		}
		var v struct {
			ID     string `json:"id"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.ID, v.Cached
	}

	jobID, cached := submit()
	if cached {
		t.Fatal("first submission cached")
	}
	var status string
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Status   string `json:"status"`
			Clusters int    `json:"clusters"`
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		status = v.Status
		if status == "done" {
			if v.Clusters != 1 {
				t.Fatalf("table 1 mined %d clusters, want 1", v.Clusters)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status != "done" {
		t.Fatalf("job stuck in %q", status)
	}
	if _, cached := submit(); !cached {
		t.Fatal("resubmission not served from cache")
	}

	// Context cancellation must drain and exit cleanly, like SIGTERM.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v; stderr %q", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if out := stdout.String(); !strings.Contains(out, "bye") {
		t.Fatalf("no clean-shutdown line in %q", out)
	}
}

// TestBadFlags covers the flag-error path.
func TestBadFlags(t *testing.T) {
	var stdout, stderr lineBuffer
	err := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestListenError covers an unbindable address.
func TestListenError(t *testing.T) {
	var stdout, stderr lineBuffer
	err := run(context.Background(), []string{"-addr", "256.0.0.1:1"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("bogus address accepted")
	}
	_ = fmt.Sprint(err)
}
