package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regcluster/internal/paperdata"
)

func writeRunningExample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "running.tsv")
	if err := paperdata.RunningExample().WriteTSVFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextOutput(t *testing.T) {
	path := writeRunningExample(t)
	var out, errb strings.Builder
	err := run([]string{
		"-in", path, "-ming", "3", "-minc", "5", "-gamma", "0.15", "-epsilon", "0.1",
		"-stats", "-validate",
	}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"cluster 1: 3 genes x 5 conditions", "chain: c7 c9 c5 c1 c3", "p-members: g1 g3", "n-members: g2"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errb.String(), "validate against Definition 3.2") {
		t.Errorf("stderr missing validation note: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "mined 1 clusters") {
		t.Errorf("stderr missing stats: %s", errb.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeRunningExample(t)
	var out strings.Builder
	err := run([]string{
		"-in", path, "-ming", "3", "-minc", "5", "-gamma", "0.15", "-epsilon", "0.1",
		"-json", "-parallel", "0",
	}, &out, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Clusters []struct {
			Chain    []string `json:"chain"`
			PMembers []string `json:"p_members"`
			NMembers []string `json:"n_members"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(doc.Clusters) != 1 || len(doc.Clusters[0].Chain) != 5 {
		t.Fatalf("JSON document wrong: %+v", doc)
	}
	if doc.Clusters[0].NMembers[0] != "g2" {
		t.Fatalf("n-members: %v", doc.Clusters[0].NMembers)
	}
}

func TestRunMaximalAndMax(t *testing.T) {
	path := writeRunningExample(t)
	var out strings.Builder
	err := run([]string{
		"-in", path, "-ming", "2", "-minc", "3", "-gamma", "0.15", "-epsilon", "0.1",
		"-maximal", "-max", "50",
	}, &out, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cluster 1:") {
		t.Fatalf("no clusters printed:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sink strings.Builder
	if err := run([]string{}, &sink, &sink); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/x.tsv"}, &sink, &sink); err == nil {
		t.Error("missing file accepted")
	}
	path := writeRunningExample(t)
	if err := run([]string{"-in", path, "-ming", "0"}, &sink, &sink); err == nil {
		t.Error("invalid params accepted")
	}
	if err := run([]string{"-badflag"}, &sink, &sink); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunGammaModes(t *testing.T) {
	path := writeRunningExample(t)
	for _, mode := range []string{"range", "mean", "nearestpair"} {
		var out strings.Builder
		err := run([]string{
			"-in", path, "-ming", "2", "-minc", "4", "-gamma", "0.1", "-epsilon", "0.5",
			"-gammamode", mode, "-validate",
		}, &out, &strings.Builder{})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	var sink strings.Builder
	if err := run([]string{"-in", path, "-gammamode", "weird"}, &sink, &sink); err == nil {
		t.Error("unknown gamma mode accepted")
	}
}

func TestRunProfiles(t *testing.T) {
	path := writeRunningExample(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	err := run([]string{
		"-in", path, "-ming", "3", "-minc", "5", "-gamma", "0.15", "-epsilon", "0.1",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// A CPU profile path that cannot be created must fail loudly, not mine.
	if err := run([]string{"-in", path, "-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x")},
		&out, &strings.Builder{}); err == nil {
		t.Error("unwritable -cpuprofile accepted")
	}
}

func TestRunTrace(t *testing.T) {
	path := writeRunningExample(t)
	var out, errb strings.Builder
	err := run([]string{
		"-in", path, "-ming", "3", "-minc", "5", "-gamma", "0.15", "-epsilon", "0.1",
		"-trace",
	}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cluster 1: 3 genes x 5 conditions") {
		t.Errorf("trace run changed the mining output:\n%s", out.String())
	}
	trace := errb.String()
	for _, want := range []string{"mine ", "rwave.build", "subtree", "cond="} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace tree missing %q:\n%s", want, trace)
		}
	}

	// JSON format: the tree must decode as []obs.Node-shaped objects.
	errb.Reset()
	out.Reset()
	err = run([]string{
		"-in", path, "-ming", "3", "-minc", "5", "-gamma", "0.15", "-epsilon", "0.1",
		"-trace", "-log-format", "json",
	}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []struct {
		Name     string            `json:"name"`
		Done     bool              `json:"done"`
		Children []json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal([]byte(errb.String()), &nodes); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, errb.String())
	}
	if len(nodes) != 1 || nodes[0].Name != "mine" || !nodes[0].Done || len(nodes[0].Children) == 0 {
		t.Fatalf("unexpected JSON trace root: %+v", nodes)
	}

	if err := run([]string{"-in", path, "-log-format", "yaml"}, &out, &errb); err == nil {
		t.Fatal("bad -log-format accepted")
	}
}
