// Command regcluster mines reg-clusters from a tab-separated gene expression
// matrix and prints them in the paper's chain notation.
//
// Usage:
//
//	regcluster -in expression.tsv -ming 20 -minc 6 -gamma 0.05 -epsilon 1.0
//
// The input format is one header line (gene column label plus condition
// names) followed by one line per gene; "NA"/empty cells are treated as
// missing and imputed with the row mean. With -json the clusters are emitted
// as a report document instead of text.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the heap
// profile is taken right after mining, before report rendering), so perf
// work never needs a code edit to capture one:
//
//	regcluster -in expression.tsv -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/dataset"
	"regcluster/internal/eval"
	"regcluster/internal/matrix"
	"regcluster/internal/obs"
	"regcluster/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "regcluster:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("regcluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input TSV file (required)")
		minG      = fs.Int("ming", 20, "minimum number of genes per cluster (MinG)")
		minC      = fs.Int("minc", 6, "minimum number of conditions per cluster (MinC)")
		gamma     = fs.Float64("gamma", 0.05, "regulation threshold γ (fraction of each gene's range)")
		epsilon   = fs.Float64("epsilon", 1.0, "coherence threshold ε")
		absGamma  = fs.Bool("absgamma", false, "treat -gamma as an absolute per-gene threshold")
		gammaMode = fs.String("gammamode", "range", `per-gene threshold scheme: "range" (Equation 4), "mean" (γ × mean|expr|), "nearestpair" (average adjacent gap; ignores -gamma)`)
		maxOut    = fs.Int("max", 0, "stop after this many clusters, enforced globally across workers (0 = unlimited)")
		maxNodes  = fs.Int("maxnodes", 0, "bound the search-tree nodes visited, enforced globally across workers (0 = unlimited)")
		timeout   = fs.Duration("timeout", 0, "abort mining after this duration (0 = no limit)")
		maximal   = fs.Bool("maximal", false, "post-filter: drop clusters contained in another cluster")
		asJSON    = fs.Bool("json", false, "emit JSON instead of text")
		showStats = fs.Bool("stats", false, "print search statistics to stderr")
		parallel  = fs.Int("parallel", 1, "worker count (0 = all cores, 1 = sequential)")
		validate  = fs.Bool("validate", false, "re-check every cluster against Definition 3.2 before output")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = fs.String("memprofile", "", "write a heap profile taken after mining to this file")
		traceRun  = fs.Bool("trace", false, "record a span trace of the run (index build, per-subtree mining) and print it to stderr after mining")
		logFormat = fs.String("log-format", "text", `-trace output format: "text" (indented tree) or "json"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	traceFmt, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	m, err := dataset.LoadTSV(*in)
	if err != nil {
		return err
	}
	p := core.Params{
		MinG: *minG, MinC: *minC,
		Gamma: *gamma, Epsilon: *epsilon,
		AbsoluteGamma: *absGamma,
		MaxClusters:   *maxOut,
		MaxNodes:      *maxNodes,
	}
	switch *gammaMode {
	case "range":
		// Equation 4 default; Gamma/AbsoluteGamma apply as-is.
	case "mean":
		p.CustomGammas = core.ThresholdsMeanFraction(m, *gamma)
	case "nearestpair":
		p.CustomGammas = core.ThresholdsNearestPair(m)
	default:
		return fmt.Errorf("unknown -gammamode %q", *gammaMode)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	// A worker count beyond any plausible machine is a typo, not a request.
	if err := core.ValidateWorkers(*parallel, 4096); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	var res *core.Result
	var tracer *obs.Tracer
	switch {
	case *traceRun:
		// The observed entry point threads a span through the run; mining
		// output is deterministic for any worker count, so the collected
		// clusters match the plain paths exactly.
		tracer = obs.New()
		sp := tracer.Start("mine")
		var ob core.Observer
		ob.SetSpan(sp)
		var clusters []*core.Bicluster
		var st core.Stats
		st, err = core.MineParallelFuncObserved(ctx, m, p, *parallel, func(b *core.Bicluster) bool {
			clusters = append(clusters, b)
			return true
		}, &ob)
		sp.End()
		res = &core.Result{Clusters: clusters, Stats: st}
	case *parallel == 1:
		res, err = core.MineContext(ctx, m, p)
	default:
		res, err = core.MineParallelContext(ctx, m, p, *parallel)
	}
	if err != nil {
		return err
	}
	if tracer != nil {
		if traceFmt == obs.FormatJSON {
			enc := json.NewEncoder(stderr)
			enc.SetIndent("", "  ")
			enc.Encode(tracer.Tree())
		} else {
			fmt.Fprint(stderr, obs.RenderTree(tracer.Tree()))
		}
	}
	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			return fmt.Errorf("memprofile: %v", werr)
		}
	}
	clusters := res.Clusters
	if *maximal {
		clusters = eval.MaximalOnly(clusters)
	}
	if *validate {
		if err := eval.ValidateAll(m, p, clusters); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "regcluster: all clusters validate against Definition 3.2")
	}
	if *showStats {
		fmt.Fprintf(stderr, "mined %d clusters (%d after filters) in %s; stats %+v\n",
			len(res.Clusters), len(clusters), time.Since(start).Round(time.Millisecond), res.Stats)
	}
	if *asJSON {
		doc := report.FromResult(m, p, &core.Result{Clusters: clusters, Stats: res.Stats})
		return doc.Write(stdout)
	}
	writeText(stdout, m, clusters)
	return nil
}

func writeText(w io.Writer, m *matrix.Matrix, clusters []*core.Bicluster) {
	for i, b := range clusters {
		g, c := b.Dims()
		fmt.Fprintf(w, "cluster %d: %d genes x %d conditions\n", i+1, g, c)
		fmt.Fprintf(w, "  chain:")
		for _, cc := range b.Chain {
			fmt.Fprintf(w, " %s", m.ColName(cc))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  p-members:")
		for _, gg := range b.PMembers {
			fmt.Fprintf(w, " %s", m.RowName(gg))
		}
		fmt.Fprintln(w)
		if len(b.NMembers) > 0 {
			fmt.Fprintf(w, "  n-members:")
			for _, gg := range b.NMembers {
				fmt.Fprintf(w, " %s", m.RowName(gg))
			}
			fmt.Fprintln(w)
		}
	}
}
