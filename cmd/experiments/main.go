// Command experiments regenerates the tables and figures of the reg-cluster
// paper's evaluation. Each experiment id matches the DESIGN.md index:
//
//	fig7-genes      E1: runtime vs #genes (Figure 7 left)
//	fig7-conds      E2: runtime vs #conditions (Figure 7 middle)
//	fig7-clus       E3: runtime vs #clusters (Figure 7 right)
//	yeast           E4+E5: Section 5.2 effectiveness, Figure 8 detail, Table 2
//	running-example E6: Table 1 / Figures 3 & 6 walk-through
//	comparison      E7: Figure 1 / Figure 4 model comparison
//	ablation        E8: pruning-strategy ablation
//	recovery        E9: planted-cluster recovery across all implemented models
//	noise           E10: recovery under increasing measurement noise vs ε
//	tricluster3d    E11: 3-D triCluster planted-block recovery
//	all             everything above in sequence
//
// Usage:
//
//	experiments -exp all
//	experiments -exp yeast -yeastfile tavazoie.tsv   # use the real benchmark
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"regcluster/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

const line = "================================================================"

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment id (see package doc)")
		seed      = fs.Int64("seed", 1, "random seed for synthetic workloads")
		yeastFile = fs.String("yeastfile", "", "path to the real Tavazoie TSV (default: generated substitute)")
		quick     = fs.Bool("quick", false, "use reduced sweeps for a fast smoke run")
		workers   = fs.Int("workers", 1, "miner worker count for the Figure 7 sweeps (0 = all cores, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	one := func(id string) error {
		switch id {
		case "fig7-genes":
			return figure7(stdout, experiments.AxisGenes, *seed, *quick, *workers)
		case "fig7-conds":
			return figure7(stdout, experiments.AxisConds, *seed, *quick, *workers)
		case "fig7-clus":
			return figure7(stdout, experiments.AxisClusters, *seed, *quick, *workers)
		case "yeast":
			r, err := experiments.Yeast(*yeastFile, 2006)
			if err != nil {
				return err
			}
			experiments.WriteYeast(stdout, r)
			return nil
		case "running-example":
			return experiments.RunningExampleReport(stdout)
		case "comparison":
			r, err := experiments.Comparison()
			if err != nil {
				return err
			}
			experiments.WriteComparison(stdout, r)
			return nil
		case "noise":
			pts, err := experiments.NoiseSensitivity(*seed)
			if err != nil {
				return err
			}
			experiments.WriteNoise(stdout, pts)
			return nil
		case "tricluster3d":
			r, err := experiments.Tricluster3D(*seed)
			if err != nil {
				return err
			}
			experiments.WriteTricluster3D(stdout, r)
			return nil
		case "recovery":
			pts, err := experiments.Recovery(*seed)
			if err != nil {
				return err
			}
			experiments.WriteRecovery(stdout, pts)
			return nil
		case "ablation":
			genes, conds, clusters := 3000, 30, 30
			if *quick {
				genes, conds, clusters = 500, 15, 8
			}
			pts, err := experiments.Ablation(genes, conds, clusters, *seed)
			if err != nil {
				return err
			}
			experiments.WriteAblation(stdout, pts)
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"running-example", "comparison", "recovery", "noise", "tricluster3d", "fig7-genes", "fig7-conds", "fig7-clus", "yeast", "ablation"}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintf(stdout, "\n%s\n\n", line)
		}
		if err := one(id); err != nil {
			return err
		}
	}
	return nil
}

func figure7(w io.Writer, axis experiments.Figure7Axis, seed int64, quick bool, workers int) error {
	points := experiments.DefaultSweep(axis)
	if quick {
		points = points[:2]
	}
	pts, err := experiments.Figure7(axis, points, seed, workers)
	if err != nil {
		return err
	}
	experiments.WriteFigure7(w, axis, pts)
	return nil
}
