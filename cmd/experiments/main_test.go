package main

import (
	"strings"
	"testing"
)

func TestRunRunningExample(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "running-example"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RWave", "mined clusters (1)", "γ=0.15"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunComparison(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "comparison"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "reg-cluster groups all six profiles:        true") {
		t.Errorf("comparison result wrong:\n%s", out.String())
	}
}

func TestRunQuickSweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig7-genes", "-quick"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// Quick mode runs only the first two sweep points.
	if !strings.Contains(out.String(), "1000") || !strings.Contains(out.String(), "2000") {
		t.Errorf("sweep points missing:\n%s", out.String())
	}
	if strings.Contains(out.String(), "5000") {
		t.Error("quick mode ran the full sweep")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sink strings.Builder
	if err := run([]string{"-exp", "nope"}, &sink, &sink); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &sink, &sink); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRecovery(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "recovery"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "reg-cluster") {
		t.Errorf("recovery report incomplete:\n%s", out.String())
	}
}

func TestRunYeastAndNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiments in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-exp", "yeast"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 2") {
		t.Error("yeast report incomplete")
	}
	out.Reset()
	if err := run([]string{"-exp", "noise"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E10") {
		t.Error("noise report incomplete")
	}
}

func TestRunAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiments in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-exp", "ablation", "-quick"}, &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "full (paper)") {
		t.Errorf("ablation report incomplete:\n%s", out.String())
	}
}

func TestRunFig7OtherAxes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiments in -short mode")
	}
	for _, exp := range []string{"fig7-conds", "fig7-clus"} {
		var out strings.Builder
		if err := run([]string{"-exp", exp, "-quick"}, &out, &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "Figure 7") {
			t.Errorf("%s report incomplete", exp)
		}
	}
}
