package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/paperdata"
	"regcluster/internal/report"
)

// fixture writes an expression panel and a matching annotation file where
// genes g1 and g3 share the "co-reg" process term.
func fixture(t *testing.T) (exprPath, annotPath string) {
	t.Helper()
	dir := t.TempDir()
	exprPath = filepath.Join(dir, "expr.tsv")
	if err := paperdata.RunningExample().WriteTSVFile(exprPath); err != nil {
		t.Fatal(err)
	}
	annotPath = filepath.Join(dir, "go.tsv")
	annots := `! test annotations
g1	GO:0000100	co-reg process	P
g3	GO:0000100	co-reg process	P
g2	GO:0000200	other process	P
g1	GO:0000300	shared function	F
g2	GO:0000300	shared function	F
g3	GO:0000300	shared function	F
`
	if err := os.WriteFile(annotPath, []byte(annots), 0o644); err != nil {
		t.Fatal(err)
	}
	return exprPath, annotPath
}

func TestRunGeneList(t *testing.T) {
	expr, annot := fixture(t)
	var out strings.Builder
	err := run([]string{
		"-expr", expr, "-annotations", annot, "-genes", "g1, g3",
	}, strings.NewReader(""), &out, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "co-reg process") {
		t.Errorf("top process term missing:\n%s", text)
	}
	if !strings.Contains(text, "2/2 genes") {
		t.Errorf("overlap missing:\n%s", text)
	}
}

func TestRunClustersFromReport(t *testing.T) {
	expr, annot := fixture(t)
	// Build a report document for the paper's cluster {g1, g3 | g2}.
	m := paperdata.RunningExample()
	p := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	res, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	doc := report.FromResult(m, p, res)
	var docBuf strings.Builder
	if err := doc.Write(&docBuf); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = run([]string{
		"-expr", expr, "-annotations", annot, "-clusters", "-",
	}, strings.NewReader(docBuf.String()), &out, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "cluster 1 (3 genes)") {
		t.Errorf("cluster header missing:\n%s", text)
	}
	// All three genes carry the shared function term: 3/3 overlap.
	if !strings.Contains(text, "shared function (p=") || !strings.Contains(text, "3/3 genes") {
		t.Errorf("function enrichment missing:\n%s", text)
	}
}

func TestRunSkipsForeignAnnotations(t *testing.T) {
	expr, annot := fixture(t)
	raw, err := os.ReadFile(annot)
	if err != nil {
		t.Fatal(err)
	}
	withForeign := string(raw) + "NOTAGENE\tGO:0000100\tco-reg process\tP\n"
	if err := os.WriteFile(annot, []byte(withForeign), 0o644); err != nil {
		t.Fatal(err)
	}
	var errOut strings.Builder
	err = run([]string{"-expr", expr, "-annotations", annot, "-genes", "g1"},
		strings.NewReader(""), &strings.Builder{}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "1 annotations") {
		t.Errorf("skip note missing: %s", errOut.String())
	}
}

func TestRunValidation(t *testing.T) {
	expr, annot := fixture(t)
	var sink strings.Builder
	cases := [][]string{
		{},                                     // missing required flags
		{"-expr", expr},                        // missing annotations
		{"-expr", expr, "-annotations", annot}, // neither genes nor clusters
		{"-expr", expr, "-annotations", annot, "-genes", "a", "-clusters", "-"}, // both
		{"-expr", expr, "-annotations", annot, "-genes", "ghost"},               // unknown gene
		{"-expr", "/missing.tsv", "-annotations", annot, "-genes", "g1"},        // missing expr
		{"-expr", expr, "-annotations", "/missing.tsv", "-genes", "g1"},         // missing annotations
	}
	for i, args := range cases {
		if err := run(args, strings.NewReader(""), &sink, &sink); err == nil {
			t.Errorf("case %d accepted: %v", i, args)
		}
	}
}
