// Command goenrich scores gene sets against a GO annotation file with the
// hypergeometric term finder — the offline equivalent of the yeast genome GO
// Term Finder the paper uses for Table 2.
//
// Usage:
//
//	goenrich -expr expression.tsv -annotations go.tsv -genes "YAL001C,YAL002W,..."
//	regcluster -in expression.tsv -json | goenrich -expr expression.tsv -annotations go.tsv -clusters -
//
// With -clusters, a regcluster JSON report document is read (from a file or
// stdin with "-") and every cluster's gene set is scored; otherwise -genes
// supplies one comma-separated gene list.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"regcluster/internal/matrix"
	"regcluster/internal/ontology"
	"regcluster/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "goenrich:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("goenrich", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exprPath  = fs.String("expr", "", "expression TSV defining the gene universe (required)")
		annotPath = fs.String("annotations", "", "GO annotation TSV: gene, termID, termName, namespace (required)")
		genesCSV  = fs.String("genes", "", "comma-separated gene names to score")
		clusters  = fs.String("clusters", "", `regcluster JSON report to score per cluster ("-" = stdin)`)
		top       = fs.Int("top", 1, "terms reported per namespace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exprPath == "" || *annotPath == "" {
		fs.Usage()
		return fmt.Errorf("-expr and -annotations are required")
	}
	if (*genesCSV == "") == (*clusters == "") {
		return fmt.Errorf("exactly one of -genes or -clusters must be given")
	}

	m, err := matrix.ReadTSVFile(*exprPath)
	if err != nil {
		return err
	}
	geneIndex := make(map[string]int, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		geneIndex[m.RowName(i)] = i
	}
	af, err := os.Open(*annotPath)
	if err != nil {
		return err
	}
	corpus, skipped, err := ontology.ReadAnnotations(af, geneIndex, m.Rows())
	af.Close()
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "goenrich: %d annotations for genes outside the expression panel skipped\n", skipped)
	}

	score := func(label string, genes []int) {
		fmt.Fprintf(stdout, "%s (%d genes):\n", label, len(genes))
		for _, ns := range ontology.Namespaces() {
			es := corpus.TermFinder(genes, ns)
			if len(es) == 0 {
				fmt.Fprintf(stdout, "  %-20s —\n", ns)
				continue
			}
			n := *top
			if n > len(es) {
				n = len(es)
			}
			for _, e := range es[:n] {
				fmt.Fprintf(stdout, "  %-20s %s %s (p=%.3g, %d/%d genes)\n",
					ns, e.Term.ID, e.Term.Name, e.PValue, e.Overlap, e.Query)
			}
		}
	}

	if *genesCSV != "" {
		var genes []int
		for _, name := range strings.Split(*genesCSV, ",") {
			name = strings.TrimSpace(name)
			g, ok := geneIndex[name]
			if !ok {
				return fmt.Errorf("gene %q not in the expression panel", name)
			}
			genes = append(genes, g)
		}
		score("query", genes)
		return nil
	}

	var r io.Reader
	if *clusters == "-" {
		r = stdin
	} else {
		f, err := os.Open(*clusters)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := report.Read(r)
	if err != nil {
		return err
	}
	resolved, err := doc.Resolve(m)
	if err != nil {
		return err
	}
	for i, b := range resolved {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		score(fmt.Sprintf("cluster %d", i+1), b.Genes())
	}
	return nil
}
