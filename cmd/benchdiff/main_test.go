package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: regcluster
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunningExample-8   	    9634	    124093 ns/op	   35712 B/op	     418 allocs/op
BenchmarkFig7Genes/g=3000-8 	       3	1114964186 ns/op	175875896 B/op	  347112 allocs/op
BenchmarkPruningAblation/full-8         	       1	 312000000 ns/op	         1091 nodes	       27305 candidates	 1000000 B/op	    5000 allocs/op
PASS
ok  	regcluster	4.2s
`

func TestParseBench(t *testing.T) {
	b, err := ParseBench(strings.NewReader(sampleBench), "BENCH_T", 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != BaselineSchema || b.Label != "BENCH_T" {
		t.Fatalf("bad header: %+v", b)
	}
	if b.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("bad cpu: %q", b.CPU)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(b.Benchmarks), b.Benchmarks)
	}
	m, ok := b.Benchmarks["BenchmarkFig7Genes/g=3000"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", b.Benchmarks)
	}
	if m.Iters != 3 || m.NsPerOp != 1114964186 || m.BPerOp != 175875896 || m.AllocsPerOp != 347112 {
		t.Fatalf("bad measurement: %+v", m)
	}
	// Custom -benchmem metrics (nodes, candidates) must not clobber B/op.
	abl := b.Benchmarks["BenchmarkPruningAblation/full"]
	if abl.BPerOp != 1000000 || abl.AllocsPerOp != 5000 {
		t.Fatalf("custom metrics mis-parsed: %+v", abl)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\n"), "", 1); err == nil {
		t.Fatal("want error on output without benchmarks")
	}
}

const repeatedBench = `BenchmarkRunningExample-8   	    9634	    130000 ns/op	   35712 B/op	     418 allocs/op
BenchmarkRunningExample-8   	    9634	    124093 ns/op	   35712 B/op	     418 allocs/op
BenchmarkRunningExample-8   	    9634	    128500 ns/op	   35712 B/op	     418 allocs/op
BenchmarkRWaveBuild-8       	     100	  10000000 ns/op
`

// TestParseBenchBestOf: with -best-of, the fastest of the duplicate result
// lines of a -count N run wins; without it, the last one does. Either way the
// sample count is recorded.
func TestParseBenchBestOf(t *testing.T) {
	best, err := ParseBench(strings.NewReader(repeatedBench), "", 3)
	if err != nil {
		t.Fatal(err)
	}
	m := best.Benchmarks["BenchmarkRunningExample"]
	if m.NsPerOp != 124093 || m.Samples != 3 {
		t.Fatalf("best-of kept %+v, want the 124093 ns/op sample of 3", m)
	}
	if single := best.Benchmarks["BenchmarkRWaveBuild"]; single.Samples != 1 {
		t.Fatalf("single-line benchmark has %d samples", single.Samples)
	}

	last, err := ParseBench(strings.NewReader(repeatedBench), "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m := last.Benchmarks["BenchmarkRunningExample"]; m.NsPerOp != 128500 || m.Samples != 3 {
		t.Fatalf("last-wins kept %+v, want the final 128500 ns/op sample", m)
	}
}

func mkBaseline(bench map[string]Measurement) *Baseline {
	return &Baseline{Schema: BaselineSchema, Go: "go1.24.0", Benchmarks: bench}
}

func TestCompareThresholds(t *testing.T) {
	oldB := mkBaseline(map[string]Measurement{
		"BenchmarkA": {Iters: 10, NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {Iters: 10, NsPerOp: 2000, AllocsPerOp: 50},
		"BenchmarkC": {Iters: 10, NsPerOp: 500, AllocsPerOp: 10},
	})
	newB := mkBaseline(map[string]Measurement{
		"BenchmarkA": {Iters: 10, NsPerOp: 700, AllocsPerOp: 40},   // improvement
		"BenchmarkB": {Iters: 10, NsPerOp: 2600, AllocsPerOp: 50},  // +30% ns regression
		"BenchmarkC": {Iters: 10, NsPerOp: 510, AllocsPerOp: 12},   // +20% allocs regression
		"BenchmarkD": {Iters: 10, NsPerOp: 9999, AllocsPerOp: 999}, // new, ignored
	})
	rep := Compare(oldB, newB, 15, 5, false)
	if len(rep.Deltas) != 3 {
		t.Fatalf("want 3 deltas, got %+v", rep.Deltas)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("want 2 failures (B ns, C allocs), got %v", rep.Failures)
	}
	for _, f := range rep.Failures {
		if !strings.HasPrefix(f, "BenchmarkB:") && !strings.HasPrefix(f, "BenchmarkC:") {
			t.Fatalf("unexpected failure %q", f)
		}
	}
	if !strings.Contains(rep.Table(), "BenchmarkA") {
		t.Fatalf("table misses rows:\n%s", rep.Table())
	}
}

func TestCompareMissingStrict(t *testing.T) {
	oldB := mkBaseline(map[string]Measurement{"BenchmarkA": {Iters: 1, NsPerOp: 1}})
	newB := mkBaseline(map[string]Measurement{})
	if rep := Compare(oldB, newB, 15, 5, false); len(rep.Failures) != 0 {
		t.Fatalf("non-strict compare must tolerate missing benchmarks: %v", rep.Failures)
	}
	if rep := Compare(oldB, newB, 15, 5, true); len(rep.Failures) != 1 {
		t.Fatalf("strict compare must flag missing benchmarks: %v", rep.Failures)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Parse the sample into a baseline file.
	var out bytes.Buffer
	if err := run([]string{"-parse", "-label", "BENCH_0"}, strings.NewReader(sampleBench), &out, os.Stderr); err != nil {
		t.Fatal(err)
	}
	oldPath := filepath.Join(dir, "BENCH_0.json")
	if err := os.WriteFile(oldPath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var doc Baseline
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("parse mode emitted invalid JSON: %v", err)
	}

	// An identical candidate passes the comparison.
	var diff bytes.Buffer
	if err := run([]string{"-old", oldPath, "-new", oldPath}, nil, &diff, os.Stderr); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, diff.String())
	}

	// A regressed candidate fails it.
	doc.Benchmarks["BenchmarkRunningExample"] = Measurement{
		Iters: 9634, NsPerOp: 124093 * 3, AllocsPerOp: 418,
	}
	regressed, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "BENCH_X.json")
	if err := os.WriteFile(newPath, regressed, 0o644); err != nil {
		t.Fatal(err)
	}
	diff.Reset()
	if err := run([]string{"-old", oldPath, "-new", newPath}, nil, &diff, os.Stderr); err == nil {
		t.Fatalf("3x ns/op regression passed the gate:\n%s", diff.String())
	}

	// -report-only surfaces the same regression but exits clean.
	diff.Reset()
	if err := run([]string{"-old", oldPath, "-new", newPath, "-report-only"}, nil, &diff, os.Stderr); err != nil {
		t.Fatalf("-report-only failed on a regression: %v", err)
	}
	if !strings.Contains(diff.String(), "report-only: ignoring 1 regression") {
		t.Fatalf("-report-only output does not name the ignored regression:\n%s", diff.String())
	}
}

func TestLoadBaselineRejectsForeignSchema(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x.json")
	if err := os.WriteFile(p, []byte(`{"schema":"other/v9","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(p); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
