// Command benchdiff turns `go test -bench -benchmem` output into the
// machine-readable BENCH_<n>.json baseline format and diffs two such
// baselines with benchstat-style regression thresholds.
//
// Parse mode (stdin -> JSON on stdout):
//
//	go test -run XXX -bench . -benchmem . | benchdiff -parse -label BENCH_0
//
// Compare mode (exit status 1 when a regression exceeds a threshold):
//
//	benchdiff -old BENCH_0.json -new BENCH_1.json -max-ns-regress 15 -max-allocs-regress 5
//
// scripts/bench_baseline.sh and `make bench-compare` wrap both modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BaselineSchema identifies the JSON document format of a recorded baseline.
const BaselineSchema = "regcluster.bench/v1"

// Measurement is one benchmark's recorded figures.
type Measurement struct {
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Samples counts the result lines that backed this measurement (one
	// unless the run used -count > 1).
	Samples int `json:"samples,omitempty"`
}

// Baseline is one BENCH_<n>.json document.
type Baseline struct {
	Schema     string                 `json:"schema"`
	Label      string                 `json:"label,omitempty"`
	Go         string                 `json:"go"`
	CPU        string                 `json:"cpu,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parse      = fs.Bool("parse", false, "parse `go test -bench` output from stdin and emit baseline JSON")
		label      = fs.String("label", "", "label to embed in the parsed baseline")
		bestOf     = fs.Int("best-of", 1, "with -parse: keep the fastest of the duplicate result lines per benchmark (pair with go test -count N to record min-of-N); 1 keeps the last line")
		oldPath    = fs.String("old", "", "baseline JSON to compare against")
		newPath    = fs.String("new", "", "candidate JSON to compare")
		maxNs      = fs.Float64("max-ns-regress", 15, "fail when ns/op regresses by more than this percentage")
		maxAllocs  = fs.Float64("max-allocs-regress", 5, "fail when allocs/op regresses by more than this percentage")
		strictKeys = fs.Bool("strict", false, "fail when a baseline benchmark is missing from the candidate")
		reportOnly = fs.Bool("report-only", false, "print the comparison table but always exit zero (CI visibility runs on noisy shared runners)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parse {
		b, err := ParseBench(stdin, *label, *bestOf)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(b)
	}
	if *oldPath == "" || *newPath == "" {
		fs.Usage()
		return fmt.Errorf("need -parse, or both -old and -new")
	}
	oldB, err := loadBaseline(*oldPath)
	if err != nil {
		return err
	}
	newB, err := loadBaseline(*newPath)
	if err != nil {
		return err
	}
	rep := Compare(oldB, newB, *maxNs, *maxAllocs, *strictKeys)
	fmt.Fprint(stdout, rep.Table())
	if len(rep.Failures) > 0 {
		if *reportOnly {
			fmt.Fprintf(stdout, "report-only: ignoring %d regression(s) beyond thresholds:\n  %s\n",
				len(rep.Failures), strings.Join(rep.Failures, "\n  "))
			return nil
		}
		return fmt.Errorf("%d regression(s) beyond thresholds:\n  %s",
			len(rep.Failures), strings.Join(rep.Failures, "\n  "))
	}
	return nil
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// benchLine matches one result line of `go test -bench -benchmem` output,
// e.g. "BenchmarkFig7Genes/g=3000-8  3  1114964186 ns/op  175875896 B/op  347112 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metricField matches one trailing "<value> <unit>" pair after ns/op.
var metricField = regexp.MustCompile(`([0-9.]+) ([^\s]+)`)

// ParseBench reads `go test -bench` text and collects every benchmark result
// line into a Baseline. The -<GOMAXPROCS> suffix is stripped so keys stay
// stable across machines. A benchmark appearing more than once (e.g. under
// -count > 1) keeps the later line when bestOf <= 1, or the fastest line
// (minimum ns/op — benchstat's noise-robust summary for a mostly-idle
// machine) when bestOf > 1; either way Samples records how many lines were
// seen. CPU and go fields come from the runtime, and the "cpu:" header line
// of the output when present.
func ParseBench(r io.Reader, label string, bestOf int) (*Baseline, error) {
	b := &Baseline{
		Schema:     BaselineSchema,
		Label:      label,
		Go:         runtime.Version(),
		Benchmarks: map[string]Measurement{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			b.CPU = strings.TrimSpace(rest)
			continue
		}
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		iters, err := strconv.Atoi(mm[2])
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		ns, err := strconv.ParseFloat(mm[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q", line)
		}
		m := Measurement{Iters: iters, NsPerOp: ns}
		for _, f := range metricField.FindAllStringSubmatch(mm[4], -1) {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				continue
			}
			switch f[2] {
			case "B/op":
				m.BPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		m.Samples = 1
		if prev, ok := b.Benchmarks[mm[1]]; ok {
			m.Samples = prev.Samples + 1
			if bestOf > 1 && prev.NsPerOp < m.NsPerOp {
				m = prev
				m.Samples++
			}
		}
		b.Benchmarks[mm[1]] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return b, nil
}

// Delta is the old-vs-new comparison of one benchmark.
type Delta struct {
	Name     string
	Old, New Measurement
	// NsPct/AllocPct are signed percentage changes; positive = regression.
	NsPct, AllocPct float64
	Missing         bool // present in old, absent from new
}

// Report is the outcome of one Compare call.
type Report struct {
	Deltas   []Delta
	Failures []string
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// Compare diffs every benchmark of old against new. A benchmark regresses
// when its ns/op (allocs/op) grows by more than maxNs (maxAllocs) percent;
// benchmarks only present in new are reported but never fail.
func Compare(oldB, newB *Baseline, maxNs, maxAllocs float64, strict bool) *Report {
	rep := &Report{}
	names := make([]string, 0, len(oldB.Benchmarks))
	for name := range oldB.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldB.Benchmarks[name]
		n, ok := newB.Benchmarks[name]
		if !ok {
			rep.Deltas = append(rep.Deltas, Delta{Name: name, Old: o, Missing: true})
			if strict {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: missing from candidate", name))
			}
			continue
		}
		d := Delta{Name: name, Old: o, New: n,
			NsPct: pct(o.NsPerOp, n.NsPerOp), AllocPct: pct(o.AllocsPerOp, n.AllocsPerOp)}
		rep.Deltas = append(rep.Deltas, d)
		if maxNs > 0 && d.NsPct > maxNs {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: ns/op %+.1f%% (limit +%.1f%%)", name, d.NsPct, maxNs))
		}
		if maxAllocs > 0 && d.AllocPct > maxAllocs {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: allocs/op %+.1f%% (limit +%.1f%%)", name, d.AllocPct, maxAllocs))
		}
	}
	return rep
}

// Table renders the comparison in benchstat-style columns.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	for _, d := range r.Deltas {
		if d.Missing {
			fmt.Fprintf(&sb, "%-44s %14.0f %14s %8s %12.0f %12s %8s\n",
				d.Name, d.Old.NsPerOp, "-", "-", d.Old.AllocsPerOp, "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "%-44s %14.0f %14.0f %+7.1f%% %12.0f %12.0f %+7.1f%%\n",
			d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.NsPct,
			d.Old.AllocsPerOp, d.New.AllocsPerOp, d.AllocPct)
	}
	return sb.String()
}
