// Command datagen writes synthetic expression datasets to TSV: either the
// Section 5 generator (uniform background with planted perfect
// shifting-and-scaling clusters) or the 2884×17 yeast-substitute of the
// Section 5.2 effectiveness study. The planted ground truth can be written
// alongside for evaluation.
//
// Usage:
//
//	datagen -kind synthetic -genes 3000 -conds 30 -clusters 30 -out data.tsv -truth truth.json
//	datagen -kind yeast -out yeast.tsv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"regcluster/internal/dataset"
	"regcluster/internal/matrix"
	"regcluster/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("kind", "synthetic", `dataset kind: "synthetic" (Section 5 generator) or "yeast" (2884x17 substitute)`)
		genes    = fs.Int("genes", 3000, "number of genes (#g)")
		conds    = fs.Int("conds", 30, "number of conditions (#cond)")
		clusters = fs.Int("clusters", 30, "number of embedded clusters (#clus); modules for -kind yeast")
		size     = fs.Int("clustersize", 0, "average genes per embedded cluster (synthetic only; 0 = 1% of genes)")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("out", "", "output TSV path (required)")
		truth    = fs.String("truth", "", "optional path for the planted ground truth (JSON)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}

	var (
		m   *matrix.Matrix
		gt  interface{}
		err error
	)
	switch *kind {
	case "synthetic":
		cfg := synthetic.Config{Genes: *genes, Conds: *conds, Clusters: *clusters, AvgClusterGenes: *size, Seed: *seed}
		var emb []synthetic.Embedded
		m, emb, err = synthetic.Generate(cfg)
		gt = emb
	case "yeast":
		cfg := dataset.DefaultYeastConfig()
		cfg.Seed = *seed
		if *clusters != 30 { // explicitly overridden
			cfg.Modules = *clusters
		}
		var mods []dataset.Module
		m, mods, err = dataset.GenerateYeastLike(cfg)
		gt = mods
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if err := m.WriteTSVFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %dx%d matrix to %s\n", m.Rows(), m.Cols(), *out)
	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(gt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote ground truth to %s\n", *truth)
	}
	return nil
}
