package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regcluster/internal/matrix"
)

func TestRunSynthetic(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.tsv")
	truth := filepath.Join(dir, "t.json")
	var stdout strings.Builder
	err := run([]string{
		"-kind", "synthetic", "-genes", "100", "-conds", "12", "-clusters", "3",
		"-seed", "4", "-out", out, "-truth", truth,
	}, &stdout, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := matrix.ReadTSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 100 || m.Cols() != 12 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	raw, err := os.ReadFile(truth)
	if err != nil {
		t.Fatal(err)
	}
	var gt []struct {
		Chain    []int `json:"Chain"`
		PMembers []int `json:"PMembers"`
	}
	if err := json.Unmarshal(raw, &gt); err != nil {
		t.Fatal(err)
	}
	if len(gt) != 3 {
		t.Fatalf("%d planted clusters in truth file", len(gt))
	}
	if !strings.Contains(stdout.String(), "wrote 100x12 matrix") {
		t.Errorf("stdout: %s", stdout.String())
	}
}

func TestRunYeast(t *testing.T) {
	out := filepath.Join(t.TempDir(), "y.tsv")
	var stdout strings.Builder
	err := run([]string{"-kind", "yeast", "-clusters", "2", "-out", out}, &stdout, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := matrix.ReadTSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2884 || m.Cols() != 17 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestRunErrors(t *testing.T) {
	var sink strings.Builder
	if err := run([]string{}, &sink, &sink); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-kind", "weird", "-out", filepath.Join(t.TempDir(), "x.tsv")}, &sink, &sink); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-genes", "0", "-out", filepath.Join(t.TempDir(), "x.tsv")}, &sink, &sink); err == nil {
		t.Error("invalid generator config accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.tsv", "-genes", "10", "-conds", "5", "-clusters", "0"}, &sink, &sink); err == nil {
		t.Error("unwritable output accepted")
	}
}
