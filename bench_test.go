package regcluster_test

// Benchmark harness: one testing.B benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// measured results).
//
//	go test -bench=. -benchmem
//
// Figure 7 panels sweep one generator input with the others at the paper
// defaults; BenchmarkYeast is the Section 5.2 effectiveness run; the
// remaining benchmarks cover Table 2 (GO term finder), the running example
// and the pruning ablation (E8).

import (
	"context"
	"fmt"
	"testing"

	"regcluster"
	"regcluster/internal/ccbicluster"
	"regcluster/internal/core"
	"regcluster/internal/dataset"
	"regcluster/internal/experiments"
	"regcluster/internal/ontology"
	"regcluster/internal/opcluster"
	"regcluster/internal/opsm"
	"regcluster/internal/paperdata"
	"regcluster/internal/pcluster"
	"regcluster/internal/rwave"
	"regcluster/internal/scaling"
	"regcluster/internal/synthetic"
)

// genMatrix builds the Figure 7 synthetic dataset for one sweep point.
func genMatrix(b *testing.B, genes, conds, clusters int) *regcluster.Matrix {
	b.Helper()
	cfg := synthetic.Config{Genes: genes, Conds: conds, Clusters: clusters, Seed: 1}
	m, _, err := synthetic.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func mineBench(b *testing.B, m *regcluster.Matrix, p core.Params) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Mine(m, p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkFig7Genes is E1 (Figure 7 left): runtime vs #genes at
// #cond=30, #clus=30, MinG=0.01*#g, MinC=6, γ=0.1, ε=0.01.
func BenchmarkFig7Genes(b *testing.B) {
	for _, genes := range []int{1000, 2000, 3000, 4000, 5000} {
		b.Run(fmt.Sprintf("g=%d", genes), func(b *testing.B) {
			m := genMatrix(b, genes, 30, 30)
			mineBench(b, m, experiments.MiningDefaults(genes))
		})
	}
}

// BenchmarkFig7Conds is E2 (Figure 7 middle): runtime vs #conditions at
// #g=3000, #clus=30.
func BenchmarkFig7Conds(b *testing.B) {
	for _, conds := range []int{10, 15, 20, 25, 30} {
		b.Run(fmt.Sprintf("c=%d", conds), func(b *testing.B) {
			m := genMatrix(b, 3000, conds, 30)
			mineBench(b, m, experiments.MiningDefaults(3000))
		})
	}
}

// BenchmarkFig7Clusters is E3 (Figure 7 right): runtime vs #clusters at
// #g=3000, #cond=30.
func BenchmarkFig7Clusters(b *testing.B) {
	for _, clus := range []int{10, 20, 30, 40, 50} {
		b.Run(fmt.Sprintf("k=%d", clus), func(b *testing.B) {
			m := genMatrix(b, 3000, 30, clus)
			mineBench(b, m, experiments.MiningDefaults(3000))
		})
	}
}

// BenchmarkYeast is E4 (Section 5.2): mining the 2884×17 yeast substitute at
// MinG=20, MinC=6, γ=0.05, ε=1.0.
func BenchmarkYeast(b *testing.B) {
	m, _, err := dataset.GenerateYeastLike(dataset.DefaultYeastConfig())
	if err != nil {
		b.Fatal(err)
	}
	mineBench(b, m, experiments.YeastParams())
}

// BenchmarkTable2TermFinder is E5: scoring a 21-gene cluster against the GO
// substrate across all three namespaces.
func BenchmarkTable2TermFinder(b *testing.B) {
	modules := make([][]int, 12)
	for k := range modules {
		for i := 0; i < 25; i++ {
			modules[k] = append(modules[k], k*25+i)
		}
	}
	corpus := ontology.Synthesize(dataset.YeastGenes, modules, 1)
	query := modules[3][:21]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ns := range ontology.Namespaces() {
			if es := corpus.TermFinder(query, ns); len(es) == 0 {
				b.Fatal("no enrichment")
			}
		}
	}
}

// BenchmarkRunningExample is E6: the complete Table 1 walk-through (index
// construction plus mining).
func BenchmarkRunningExample(b *testing.B) {
	m := paperdata.RunningExample()
	p := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Mine(m, p)
		if err != nil || len(res.Clusters) != 1 {
			b.Fatalf("unexpected result: %v %v", res, err)
		}
	}
}

// BenchmarkPruningAblation is E8: the paper configuration versus each
// pruning disabled, on a mid-size synthetic dataset. Work counters are
// reported as custom metrics.
func BenchmarkPruningAblation(b *testing.B) {
	m := genMatrix(b, 1000, 20, 10)
	base := experiments.MiningDefaults(1000)
	for _, v := range experiments.AblationVariants() {
		b.Run(v.Name, func(b *testing.B) {
			p := base
			v.Modify(&p)
			b.ReportAllocs()
			var nodes, cands int
			for i := 0; i < b.N; i++ {
				res, err := core.Mine(m, p)
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Stats.Nodes
				cands = res.Stats.CandidatesExamined
			}
			b.ReportMetric(float64(nodes), "nodes")
			b.ReportMetric(float64(cands), "candidates")
		})
	}
}

// BenchmarkRWaveBuild measures the index construction cost in isolation
// (the preprocessing phase of Figure 5).
func BenchmarkRWaveBuild(b *testing.B) {
	m := genMatrix(b, 3000, 30, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		models := rwave.BuildAll(m, 0.1)
		if len(models) != 3000 {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkSweepSharedModel measures what the model cache buys an ε-sweep:
// "rebuild" runs a 4-point sweep the naive way (each point constructs its own
// RWave index), "shared" builds the index once and re-mines with it. The gap
// is the amortized preprocessing cost of Figure 5.
func BenchmarkSweepSharedModel(b *testing.B) {
	m := genMatrix(b, 1000, 20, 10)
	base := experiments.MiningDefaults(1000)
	epsilons := []float64{0.005, 0.01, 0.02, 0.04}
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range epsilons {
				p := base
				p.Epsilon = e
				if _, err := core.Mine(m, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			models, err := core.BuildModels(m, base, nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range epsilons {
				p := base
				p.Epsilon = e
				if _, err := core.MineWithModels(m, p, models); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIncrementalRemine measures the append-delta re-mine against a
// cold mine of the same grown matrix (DESIGN.md §15, E13). A condition is
// clean only when the appended arrays stay within γ of it in EVERY gene, so
// the scenario that benefits is the live-pipeline steady state: new arrays
// that are near-replicates of an existing condition band. 400 genes share a
// shifted ladder profile — 24 baseline arrays inside one γ band plus six
// expression rungs at spacing 3 — under an absolute γ=2; the two appended
// arrays land inside the baseline band, so they regulate only against the
// six rungs and 24 of 32 subtrees splice from the parent run. The
// incremental side pays RWave repair plus the dirty subtrees (each dirty
// old root re-mined on both parent and child for the stats reconciliation);
// both sides emit byte-identical output (pinned by the core differential
// suite), so the delta is pure runtime.
func BenchmarkIncrementalRemine(b *testing.B) {
	const genes, baseConds, rungs, workers = 400, 24, 6, 4
	parent := regcluster.NewMatrix(genes, baseConds+rungs)
	for j := 0; j < baseConds+rungs; j++ {
		parent.SetColName(j, fmt.Sprintf("c%02d", j))
	}
	for g := 0; g < genes; g++ {
		parent.SetRowName(g, fmt.Sprintf("g%03d", g))
		shift := 0.001 * float64(g)
		for j := 0; j < baseConds; j++ {
			parent.Set(g, j, 0.02*float64(j)+shift)
		}
		for k := 0; k < rungs; k++ {
			parent.Set(g, baseConds+k, 3*float64(k+1)+shift)
		}
	}
	delta := regcluster.NewMatrix(genes, 2)
	delta.SetColName(0, "new-a")
	delta.SetColName(1, "new-b")
	for g := 0; g < genes; g++ {
		delta.SetRowName(g, parent.RowName(g))
		shift := 0.001 * float64(g)
		delta.Set(g, 0, 0.25+shift)
		delta.Set(g, 1, 0.31+shift)
	}
	grown, err := regcluster.AppendConditions(parent, delta)
	if err != nil {
		b.Fatal(err)
	}
	p := core.Params{MinG: 40, MinC: 4, Gamma: 2, AbsoluteGamma: true, Epsilon: 0.05}

	parentModels, err := core.BuildModels(parent, p, nil)
	if err != nil {
		b.Fatal(err)
	}
	parentResult, err := core.MineParallelWithModels(parent, p, workers, parentModels)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.MineParallel(grown, p, workers)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Clusters) == 0 {
				b.Fatal("no clusters")
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			childModels, _, err := core.RepairModels(grown, p, parentModels, nil)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			visit := func(*core.Bicluster) bool { n++; return true }
			_, info, err := core.MineIncremental(context.Background(), grown, parent, p,
				workers, visit, nil, childModels, parentModels, parentResult)
			if err != nil {
				b.Fatal(err)
			}
			if !info.Incremental {
				b.Fatal("fell back to a cold mine:", info.Fallback)
			}
			if info.SubtreesReused != baseConds {
				b.Fatalf("reused %d subtrees, want the %d baseline roots", info.SubtreesReused, baseConds)
			}
			if n == 0 {
				b.Fatal("no clusters")
			}
		}
	})
}

// BenchmarkOverlapStats measures the Section 5.2 overlap statistic on a
// full yeast result set.
func BenchmarkOverlapStats(b *testing.B) {
	m, _, err := dataset.GenerateYeastLike(dataset.DefaultYeastConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Mine(m, experiments.YeastParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := regcluster.Overlaps(res.Clusters)
		if s.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkBaselines measures each comparison model on the E9 workload, for
// the runtime column of the recovery table.
func BenchmarkBaselines(b *testing.B) {
	m := genMatrix(b, 60, 10, 2)
	b.Run("pcluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pcluster.Mine(m, pcluster.Params{Delta: 0.5, MinG: 4, MinC: 5, MaxNodes: 200000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scaling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scaling.Mine(m, scaling.Params{Epsilon: 0.05, MinG: 4, MinC: 5, MaxNodes: 200000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("opcluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := opcluster.Mine(m, opcluster.Params{MinG: 4, MinC: 5, Strict: true, MaxNodes: 500000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cheng-church", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ccbicluster.Mine(m, ccbicluster.DefaultParams(25, 4)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("opsm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := opsm.Mine(m, opsm.Params{Size: 5, Beam: 100}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTricluster3D measures the 3-D miner on a planted tensor.
func BenchmarkTricluster3D(b *testing.B) {
	ten, _, err := regcluster.GenerateTensor(regcluster.TensorConfig{
		Genes: 60, Samples: 8, Times: 6,
		Clusters: 2, ClusterGenes: 8, ClusterSamples: 4, ClusterTimes: 3, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := regcluster.MineTriclusters(ten, regcluster.TriclusterParams{
			Epsilon: 0.001, MinG: 8, MinS: 4, MinT: 3,
		})
		if err != nil || len(got) == 0 {
			b.Fatalf("%v / %d blocks", err, len(got))
		}
	}
}

// BenchmarkMineParallel compares the sequential and parallel miners on the
// paper-scale workload.
func BenchmarkMineParallel(b *testing.B) {
	m := genMatrix(b, 3000, 30, 30)
	p := experiments.MiningDefaults(3000)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Mine(m, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineParallel(m, p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-func", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if _, err := core.MineParallelFunc(m, p, 0, func(*core.Bicluster) bool {
				n++
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The truncated path exercises the global budget plus the emitter's
	// reconciliation rerun; it must stay bounded by ~2x the cap's work.
	b.Run("parallel-truncated", func(b *testing.B) {
		pt := p
		pt.MaxNodes = 50000
		for i := 0; i < b.N; i++ {
			if _, err := core.MineParallel(m, pt, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
