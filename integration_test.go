package regcluster_test

// End-to-end pipeline test: build the real binaries and chain them the way a
// user would — generate data, mine clusters to a JSON report, and score the
// clusters against a GO annotation file.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"regcluster"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("binary pipeline in -short mode")
	}
	dir := t.TempDir()
	datagen := buildTool(t, dir, "datagen")
	miner := buildTool(t, dir, "regcluster")
	goenrich := buildTool(t, dir, "goenrich")

	// 1. Generate a dataset with planted clusters + ground truth.
	data := filepath.Join(dir, "expr.tsv")
	truthPath := filepath.Join(dir, "truth.json")
	out, err := exec.Command(datagen,
		"-kind", "synthetic", "-genes", "200", "-conds", "12", "-clusters", "2",
		"-clustersize", "10", "-seed", "6", "-out", data, "-truth", truthPath).CombinedOutput()
	if err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}

	// 2. Mine it to a JSON report.
	reportPath := filepath.Join(dir, "clusters.json")
	mineCmd := exec.Command(miner,
		"-in", data, "-ming", "5", "-minc", "5", "-gamma", "0.1", "-epsilon", "0.01",
		"-maximal", "-validate", "-json")
	rep, err := os.Create(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	mineCmd.Stdout = rep
	var mineErr strings.Builder
	mineCmd.Stderr = &mineErr
	if err := mineCmd.Run(); err != nil {
		t.Fatalf("regcluster: %v\n%s", err, mineErr.String())
	}
	rep.Close()
	if !strings.Contains(mineErr.String(), "validate against Definition 3.2") {
		t.Fatalf("validation note missing: %s", mineErr.String())
	}

	// Parse the report and cross-check against the planted truth.
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Clusters []struct {
			PMembers []string `json:"p_members"`
			NMembers []string `json:"n_members"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(doc.Clusters) < 2 {
		t.Fatalf("%d clusters in report, want the 2 planted ones", len(doc.Clusters))
	}

	// 3. Build an annotation file from the mined clusters themselves (each
	// cluster's genes share a term) and run goenrich over the report.
	var annot strings.Builder
	annot.WriteString("! pipeline annotations\n")
	for i, c := range doc.Clusters {
		for _, g := range append(append([]string(nil), c.PMembers...), c.NMembers...) {
			annot.WriteString(g + "\tGO:000000" + string(rune('1'+i)) + "\tmodule term\tP\n")
		}
	}
	annotPath := filepath.Join(dir, "go.tsv")
	if err := os.WriteFile(annotPath, []byte(annot.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	enrichOut, err := exec.Command(goenrich,
		"-expr", data, "-annotations", annotPath, "-clusters", reportPath).CombinedOutput()
	if err != nil {
		t.Fatalf("goenrich: %v\n%s", err, enrichOut)
	}
	if !strings.Contains(string(enrichOut), "module term (p=") {
		t.Fatalf("enrichment output missing:\n%s", enrichOut)
	}
}

// TestCLIPipelineLibraryParity: the binaries' behaviour matches the public
// API on the same inputs.
func TestCLIPipelineLibraryParity(t *testing.T) {
	cfg := regcluster.SyntheticConfig{Genes: 200, Conds: 12, Clusters: 2, AvgClusterGenes: 10, Seed: 6}
	m, _, err := regcluster.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcluster.Mine(m, regcluster.Params{MinG: 5, MinC: 5, Gamma: 0.1, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	maximal := regcluster.MaximalOnly(res.Clusters)
	if len(maximal) < 2 {
		t.Fatalf("library found %d maximal clusters", len(maximal))
	}
}
