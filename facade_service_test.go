package regcluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"regcluster"
)

func facadeMatrix() *regcluster.Matrix {
	return regcluster.MatrixFromRows([][]float64{
		{0, 10, 20, 30, 40},
		{0, 20, 40, 60, 80},
		{100, 75, 50, 25, 0},
	})
}

func TestPublicAPIReportRoundTrip(t *testing.T) {
	m := facadeMatrix()
	p := regcluster.Params{MinG: 3, MinC: 5, Gamma: 0.2, Epsilon: 1e-9}
	res, err := regcluster.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	doc := regcluster.Report(m, p, res)
	if doc.Schema != regcluster.ResultSchemaID {
		t.Fatalf("schema %q", doc.Schema)
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := regcluster.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Clusters) != len(res.Clusters) {
		t.Fatalf("round trip lost clusters: %d vs %d", len(back.Clusters), len(res.Clusters))
	}
	nc := regcluster.NamedFromBicluster(m, res.Clusters[0])
	if len(nc.Members) != 3 {
		t.Fatalf("members %+v", nc.Members)
	}
	signs := map[string]string{}
	for _, mb := range nc.Members {
		signs[mb.Gene] = mb.Sign
	}
	if signs[m.RowName(2)] != "-" {
		t.Fatalf("anti-regulated gene not signed '-': %v", signs)
	}
}

func TestPublicAPIObservedMining(t *testing.T) {
	m := facadeMatrix()
	p := regcluster.Params{MinG: 3, MinC: 5, Gamma: 0.2, Epsilon: 1e-9}
	var obs regcluster.Observer
	var streamed int
	stats, err := regcluster.MineParallelFuncObserved(context.Background(), m, p, 2,
		func(b *regcluster.Bicluster) bool { streamed++; return true }, &obs)
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 1 || obs.Nodes() != int64(stats.Nodes) {
		t.Fatalf("streamed %d, observed %d nodes vs stats %d", streamed, obs.Nodes(), stats.Nodes)
	}
	if err := regcluster.ValidateWorkers(8, 4); err == nil {
		t.Fatal("worker limit not enforced through the facade")
	}
}

func TestPublicAPIServiceEmbedding(t *testing.T) {
	svc := regcluster.NewService(regcluster.ServiceConfig{MaxConcurrentJobs: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var tsv bytes.Buffer
	if err := facadeMatrix().WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/datasets", "text/tab-separated-values", &tsv)
	if err != nil {
		t.Fatal(err)
	}
	var ds struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ds.ID == "" {
		t.Fatal("no dataset ID")
	}
	resp, err = ts.Client().Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"dataset":"`+ds.ID+`","params":{"MinG":3,"MinC":5,"Gamma":0.2,"Epsilon":0.000000001}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
