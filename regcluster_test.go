package regcluster_test

import (
	"reflect"
	"strings"
	"testing"

	"regcluster"
	"regcluster/internal/paperdata"
)

// TestPublicAPIRunningExample drives the whole public surface on the paper's
// Table 1 running example.
func TestPublicAPIRunningExample(t *testing.T) {
	m := paperdata.RunningExample()
	p := regcluster.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	res, err := regcluster.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	b := res.Clusters[0]
	if !reflect.DeepEqual(b.Chain, []int{6, 8, 4, 0, 2}) {
		t.Errorf("chain %v", b.Chain)
	}
	if err := regcluster.CheckBicluster(m, p, b); err != nil {
		t.Error(err)
	}
	if h := regcluster.CoherenceH(m, 0, 6, 8, 4, 0); h != 1.0 {
		t.Errorf("H(g1, c7,c9, c5,c1) = %v, want 1.0", h)
	}
}

func TestPublicAPITSVRoundTrip(t *testing.T) {
	m := regcluster.MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	var sb strings.Builder
	if err := m.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := regcluster.ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("round trip mismatch")
	}
	if regcluster.NewMatrix(2, 3).Rows() != 2 {
		t.Fatal("NewMatrix wrong shape")
	}
}

func TestPublicAPISyntheticPipeline(t *testing.T) {
	cfg := regcluster.SyntheticConfig{Genes: 200, Conds: 12, Clusters: 3, AvgClusterGenes: 10, Seed: 6}
	m, truth, err := regcluster.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := regcluster.Mine(m, regcluster.Params{MinG: 6, MinC: 5, Gamma: 0.1, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	_, rec := regcluster.RelevanceRecovery(res.Clusters, truth)
	if rec < 0.9 {
		t.Errorf("recovery %v", rec)
	}
	ov := regcluster.Overlaps(res.Clusters)
	if len(res.Clusters) >= 2 && ov.Pairs == 0 {
		t.Error("overlap stats empty")
	}
	if got := regcluster.NonOverlapping(res.Clusters, 2); len(got) > 2 {
		t.Error("NonOverlapping ignored k")
	}
	if got := regcluster.MaximalOnly(res.Clusters); len(got) > len(res.Clusters) {
		t.Error("MaximalOnly grew the set")
	}
	if def := regcluster.DefaultSyntheticConfig(); def.Genes != 3000 {
		t.Error("default synthetic config wrong")
	}
}
