package regcluster_test

import (
	"fmt"

	"regcluster"
)

// The paper's Table 1 running example: three genes, ten conditions, one
// shifting-and-scaling reg-cluster with a negatively co-regulated member.
func ExampleMine() {
	m := regcluster.MatrixFromRows([][]float64{
		{10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5}, // g1
		{20, 15, 15, 43.5, 30, 44, 45, 43, 35, 20},     // g2
		{6, -3.8, 8, 6.2, 2, 7.8, -4, 2, 0, 0},         // g3
	})
	res, err := regcluster.Mine(m, regcluster.Params{
		MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1,
	})
	if err != nil {
		panic(err)
	}
	for _, b := range res.Clusters {
		fmt.Println(b)
	}
	// Output:
	// reg-cluster Y=c6↶c8↶c4↶c0↶c2 pX=[0 2] nX=[1]
}

// CheckBicluster validates any cluster against Definition 3.2 directly from
// the expression values.
func ExampleCheckBicluster() {
	m := regcluster.MatrixFromRows([][]float64{
		{1, 5, 9},
		{2, 10, 18},
	})
	p := regcluster.Params{MinG: 2, MinC: 3, Gamma: 0.2, Epsilon: 0.01}
	ok := &regcluster.Bicluster{Chain: []int{0, 1, 2}, PMembers: []int{0, 1}}
	fmt.Println(regcluster.CheckBicluster(m, p, ok))

	bad := &regcluster.Bicluster{Chain: []int{2, 1, 0}, PMembers: []int{0, 1}}
	fmt.Println(regcluster.CheckBicluster(m, p, bad) != nil)
	// Output:
	// <nil>
	// true
}

// CoherenceH is the Equation 7 score: identical for every member of a
// perfect shifting-and-scaling pattern, whatever the scaling sign.
func ExampleCoherenceH() {
	m := regcluster.MatrixFromRows([][]float64{
		{1, 3, 7},   // base
		{22, 16, 4}, // -3*base + 25
	})
	for g := 0; g < 2; g++ {
		fmt.Printf("%.1f\n", regcluster.CoherenceH(m, g, 0, 1, 1, 2))
	}
	// Output:
	// 2.0
	// 2.0
}

// GenerateSynthetic reproduces the paper's Section 5 workload generator.
func ExampleGenerateSynthetic() {
	cfg := regcluster.SyntheticConfig{Genes: 100, Conds: 10, Clusters: 2, Seed: 1}
	m, truth, err := regcluster.GenerateSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Rows(), m.Cols(), len(truth))
	// Output:
	// 100 10 2
}

// MineTriclusters works on the 3-D tensor substrate of the triCluster
// baseline.
func ExampleMineTriclusters() {
	ten, truth, err := regcluster.GenerateTensor(regcluster.TensorConfig{
		Genes: 30, Samples: 6, Times: 5,
		Clusters: 1, ClusterGenes: 5, ClusterSamples: 3, ClusterTimes: 3, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	got, err := regcluster.MineTriclusters(ten, regcluster.TriclusterParams{
		Epsilon: 0.001, MinG: 5, MinS: 3, MinT: 3,
	})
	if err != nil {
		panic(err)
	}
	best := got[0]
	fmt.Println(len(best.Genes) == len(truth[0].Genes), len(best.Times))
	// Output:
	// true 3
}

// NonOverlapping picks the paper's "three non-overlapping bi-reg-clusters".
func ExampleNonOverlapping() {
	a := &regcluster.Bicluster{Chain: []int{0, 1, 2}, PMembers: []int{0, 1, 2, 3}}
	b := &regcluster.Bicluster{Chain: []int{0, 1}, PMembers: []int{0, 1}} // inside a
	c := &regcluster.Bicluster{Chain: []int{5, 6}, PMembers: []int{9, 10}}
	picked := regcluster.NonOverlapping([]*regcluster.Bicluster{a, b, c}, 3)
	fmt.Println(len(picked))
	// Output:
	// 2
}
