package regcluster_test

import (
	"math"
	"path/filepath"
	"testing"

	"regcluster"
)

func TestPublicAPIParallelAndThresholds(t *testing.T) {
	m := regcluster.MatrixFromRows([][]float64{
		{0, 10, 20, 30, 40},
		{0, 20, 40, 60, 80},
		{100, 75, 50, 25, 0},
	})
	p := regcluster.Params{MinG: 3, MinC: 5, Gamma: 0.2, Epsilon: 1e-9}
	seq, err := regcluster.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := regcluster.MineParallel(m, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Clusters) != 1 || len(par.Clusters) != 1 {
		t.Fatalf("seq %d, par %d clusters", len(seq.Clusters), len(par.Clusters))
	}
	if seq.Clusters[0].Key() != par.Clusters[0].Key() {
		t.Fatal("parallel diverged")
	}

	// Threshold helpers.
	rf := regcluster.ThresholdsRangeFraction(m, 0.5)
	if rf[0] != 20 || rf[2] != 50 {
		t.Errorf("range fraction thresholds %v", rf)
	}
	mf := regcluster.ThresholdsMeanFraction(m, 1)
	if mf[0] != 20 { // mean |{0,10,20,30,40}| = 20
		t.Errorf("mean fraction thresholds %v", mf)
	}
	np := regcluster.ThresholdsNearestPair(m)
	if np[0] != 10 {
		t.Errorf("nearest pair thresholds %v", np)
	}
	p.CustomGammas = np
	if _, err := regcluster.Mine(m, p); err != nil {
		t.Fatalf("custom gammas via public API: %v", err)
	}
}

// TestPublicAPISharedModels covers the model-sharing surface: BuildModels +
// Mine*WithModels reproduce Mine exactly across an ε variation, and ModelKey
// distinguishes γ-schemes but not ε.
func TestPublicAPISharedModels(t *testing.T) {
	m := regcluster.MatrixFromRows([][]float64{
		{0, 10, 20, 30, 40},
		{0, 20, 40, 60, 80},
		{100, 75, 50, 25, 0},
	})
	p := regcluster.Params{MinG: 3, MinC: 5, Gamma: 0.2, Epsilon: 1e-9}
	models, err := regcluster.BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{1e-9, 0.5} {
		q := p
		q.Epsilon = eps
		want, err := regcluster.Mine(m, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := regcluster.MineWithModels(m, q, models)
		if err != nil {
			t.Fatal(err)
		}
		gotPar, err := regcluster.MineParallelWithModels(m, q, 2, models)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Clusters) != len(want.Clusters) || len(gotPar.Clusters) != len(want.Clusters) {
			t.Fatalf("ε=%v: %d/%d clusters with shared models, want %d",
				eps, len(got.Clusters), len(gotPar.Clusters), len(want.Clusters))
		}
		for i := range want.Clusters {
			if got.Clusters[i].Key() != want.Clusters[i].Key() ||
				gotPar.Clusters[i].Key() != want.Clusters[i].Key() {
				t.Fatalf("ε=%v cluster %d diverges with shared models", eps, i)
			}
		}
	}
	q := p
	q.Epsilon = 0.5
	if regcluster.ModelKey("ds", p) != regcluster.ModelKey("ds", q) {
		t.Fatal("ε changed the model key")
	}
	q = p
	q.Gamma = 0.3
	if regcluster.ModelKey("ds", p) == regcluster.ModelKey("ds", q) {
		t.Fatal("γ did not change the model key")
	}
}

func TestPublicAPIYeastAndGO(t *testing.T) {
	cfg := regcluster.YeastConfig{Genes: 300, Conds: 17, Modules: 3, Seed: 11}
	m, modules, err := regcluster.GenerateYeastLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 300 || len(modules) != 3 {
		t.Fatalf("yeast substitute %dx%d, %d modules", m.Rows(), m.Cols(), len(modules))
	}
	if def := regcluster.DefaultYeastConfig(); def.Genes != 2884 || def.Conds != 17 {
		t.Errorf("default yeast config %+v", def)
	}

	sets := make([][]int, len(modules))
	for i := range modules {
		sets[i] = modules[i].Genes()
	}
	corpus := regcluster.SynthesizeGO(m.Rows(), sets, 5)
	for _, ns := range []regcluster.GONamespace{regcluster.GOProcess, regcluster.GOFunction, regcluster.GOComponent} {
		es := corpus.TermFinder(sets[0], ns)
		if len(es) == 0 || es[0].PValue > 1e-6 {
			t.Errorf("%v: planted module not enriched: %+v", ns, es)
		}
	}

	// Hypergeometric sanity through the façade.
	if p := regcluster.HypergeomTail(10, 4, 3, 1); math.Abs(p-5.0/6) > 1e-12 {
		t.Errorf("HypergeomTail = %v", p)
	}
}

func TestPublicAPILoadExpressionFile(t *testing.T) {
	m := regcluster.MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	path := filepath.Join(t.TempDir(), "e.tsv")
	if err := m.WriteTSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := regcluster.LoadExpressionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("round trip mismatch")
	}
	if _, err := regcluster.LoadExpressionFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPublicAPIReadTSVFileMissing(t *testing.T) {
	if _, err := regcluster.ReadTSVFile(filepath.Join(t.TempDir(), "nope.tsv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
