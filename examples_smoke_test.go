package regcluster_test

// Smoke test: every example under examples/ must build and run to completion
// (deliverable (b) stays runnable as the API evolves).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			args := []string{"run", "./" + filepath.Join("examples", name)}
			// Keep the slower demos small where they accept flags.
			if name == "synthetic" {
				args = append(args, "-genes", "300", "-conds", "12", "-clusters", "3")
			}
			cmd := exec.Command("go", args...)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if strings.TrimSpace(string(out)) == "" {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
