// Package faultinject is a test-only fault hook registry: production code
// calls Hook at named sites (journal appends, registry writes, miner subtree
// starts, stream writes), and tests arm errors, panics, or delays at those
// sites to drive crash-recovery and containment scenarios that are otherwise
// unreachable. Nothing is ever armed outside tests, and a disarmed Hook call
// costs a single atomic load, so the hooks stay compiled into the hot paths.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by an armed error site whose Spec
// carries no explicit Err.
var ErrInjected = errors.New("faultinject: injected error")

// Spec describes one armed fault. Exactly one of Err/Panic should be set for
// error or panic injection; Delay may accompany either (or stand alone).
type Spec struct {
	// Err is returned by Hook when the fault fires. When nil and Panic is
	// empty, ErrInjected is returned.
	Err error
	// Panic, when non-empty, makes Hook panic with this message instead of
	// returning an error.
	Panic string
	// Delay is slept before the fault fires (and before a pass-through when
	// the fault is exhausted or not yet due).
	Delay time.Duration
	// After skips the first After matching Hook calls before firing.
	After int
	// Times bounds how often the fault fires; 0 means every call after After.
	Times int
}

// TransientError marks an injected failure as transient so that retry
// policies (the service's capped-backoff job retry) recognize it.
type TransientError struct{ Err error }

func (e *TransientError) Error() string   { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error   { return e.Err }
func (e *TransientError) Transient() bool { return true }

// armedFault is the registry entry of one site.
type armedFault struct {
	spec  Spec
	calls int // Hook invocations at this site since arming
	fired int // faults actually delivered
}

var (
	active atomic.Int32 // number of armed sites; fast-path gate
	mu     sync.Mutex
	sites  map[string]*armedFault
	hits   map[string]int // per-site fire counts, survive disarm until Reset
)

// Arm installs spec at site, replacing any previous fault there, and returns
// a disarm function. Tests should defer the disarm (or call Reset in a test
// cleanup) so faults never leak across tests.
func Arm(site string, spec Spec) (disarm func()) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*armedFault)
		hits = make(map[string]int)
	}
	if _, exists := sites[site]; !exists {
		active.Add(1)
	}
	sites[site] = &armedFault{spec: spec}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if _, exists := sites[site]; exists {
			delete(sites, site)
			active.Add(-1)
		}
	}
}

// Reset disarms every site and clears the fire counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(sites)))
	sites = nil
	hits = nil
}

// Fired returns how many faults have been delivered at site since the last
// Reset (across re-arms).
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Hook triggers the fault armed at site, if any: it sleeps Spec.Delay, then
// panics (Spec.Panic) or returns an error (Spec.Err or ErrInjected) once the
// After/Times window admits this call. Disarmed sites return nil after one
// atomic load.
func Hook(site string) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	f.calls++
	due := f.calls > f.spec.After && (f.spec.Times == 0 || f.fired < f.spec.Times)
	if due {
		f.fired++
		hits[site]++
	}
	spec := f.spec
	mu.Unlock()

	if spec.Delay > 0 {
		time.Sleep(spec.Delay)
	}
	if !due {
		return nil
	}
	if spec.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, spec.Panic))
	}
	if spec.Err != nil {
		return spec.Err
	}
	return ErrInjected
}
