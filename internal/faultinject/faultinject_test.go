package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHookIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Hook("nothing.armed"); err != nil {
		t.Fatalf("disarmed hook returned %v", err)
	}
}

func TestErrorInjectionAfterTimes(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	disarm := Arm("site.err", Spec{Err: boom, After: 2, Times: 2})
	defer disarm()

	var got []error
	for i := 0; i < 6; i++ {
		got = append(got, Hook("site.err"))
	}
	want := []error{nil, nil, boom, boom, nil, nil}
	for i := range want {
		if !errors.Is(got[i], want[i]) && got[i] != want[i] {
			t.Fatalf("call %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if Fired("site.err") != 2 {
		t.Fatalf("fired %d times", Fired("site.err"))
	}
}

func TestDefaultErrAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	disarm := Arm("site.def", Spec{})
	if err := Hook("site.def"); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	disarm()
	if err := Hook("site.def"); err != nil {
		t.Fatalf("disarmed site still fires: %v", err)
	}
	disarm() // double disarm is harmless
}

func TestPanicInjection(t *testing.T) {
	t.Cleanup(Reset)
	Arm("site.panic", Spec{Panic: "kaboom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "kaboom") {
			t.Fatalf("panic value %v", r)
		}
	}()
	Hook("site.panic")
}

func TestDelayInjection(t *testing.T) {
	t.Cleanup(Reset)
	Arm("site.delay", Spec{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hook("site.delay"); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("hook returned after %v, want >= 30ms", d)
	}
}

func TestTransientError(t *testing.T) {
	inner := errors.New("disk hiccup")
	var te *TransientError = &TransientError{Err: inner}
	if !errors.Is(te, inner) {
		t.Fatal("TransientError does not unwrap")
	}
	var marker interface{ Transient() bool }
	if !errors.As(error(te), &marker) || !marker.Transient() {
		t.Fatal("TransientError not recognized via the Transient interface")
	}
}

func TestConcurrentHooks(t *testing.T) {
	t.Cleanup(Reset)
	Arm("site.conc", Spec{Times: 10})
	var wg sync.WaitGroup
	var fired sync.Map
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if err := Hook("site.conc"); err != nil {
					fired.Store(err, true)
				}
			}
		}()
	}
	wg.Wait()
	if Fired("site.conc") != 10 {
		t.Fatalf("fired %d, want 10", Fired("site.conc"))
	}
}
