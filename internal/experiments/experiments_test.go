package experiments

import (
	"strings"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/dataset"
	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

// TestFigure7SmallSweep runs a miniature Figure 7 panel end to end.
func TestFigure7SmallSweep(t *testing.T) {
	pts, err := Figure7(AxisGenes, []int{200, 400}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Param != 200 || pts[1].Param != 400 {
		t.Fatalf("points = %+v", pts)
	}
	for _, p := range pts {
		if p.Runtime <= 0 || p.Nodes == 0 {
			t.Errorf("empty measurement: %+v", p)
		}
	}
	var sb strings.Builder
	WriteFigure7(&sb, AxisGenes, pts)
	if !strings.Contains(sb.String(), "#genes") {
		t.Errorf("report missing axis label:\n%s", sb.String())
	}
}

func TestFigure7DefaultSweeps(t *testing.T) {
	if got := DefaultSweep(AxisGenes); len(got) != 5 || got[2] != 3000 {
		t.Errorf("genes sweep %v", got)
	}
	if got := DefaultSweep(AxisConds); got[len(got)-1] != 30 {
		t.Errorf("conds sweep %v", got)
	}
	if got := DefaultSweep(AxisClusters); got[2] != 30 {
		t.Errorf("clusters sweep %v", got)
	}
	for _, a := range []Figure7Axis{AxisGenes, AxisConds, AxisClusters} {
		if a.String() == "?" {
			t.Error("unnamed axis")
		}
	}
}

// TestYeastSmall runs the Section 5.2 pipeline on a reduced substitute.
func TestYeastSmall(t *testing.T) {
	cfg := dataset.YeastConfig{Genes: 600, Conds: 17, Modules: 4, Seed: 3}
	m, modules, err := dataset.GenerateYeastLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 600 || len(modules) != 4 {
		t.Fatalf("setup: %dx%d, %d modules", m.Rows(), m.Cols(), len(modules))
	}
	// Drive the full experiment on the default substitute but through a
	// fast path: mine the small matrix directly with the Section 5.2
	// parameters and check the structural claims.
	res, err := core.Mine(m, YeastParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters on the yeast-like substitute")
	}
	withN := 0
	for _, b := range res.Clusters {
		if len(b.NMembers) > 0 {
			withN++
		}
	}
	if withN == 0 {
		t.Error("no cluster has n-members — negative co-regulation lost")
	}
	// Crossovers are the Figure 8 signature.
	sawCrossover := false
	for _, b := range res.Clusters {
		if CrossoverCount(m, b) > 0 {
			sawCrossover = true
			break
		}
	}
	if !sawCrossover {
		t.Error("no p/n crossovers observed")
	}
}

// TestYeastFullPipeline exercises Yeast() itself on a tiny config via the
// real entry point — we shrink through the package seam by running on the
// default-path but asserting only invariants. Kept moderate to bound test
// time.
func TestYeastFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full yeast pipeline in -short mode")
	}
	r, err := Yeast("", 2006)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Clusters) < 10 {
		t.Errorf("only %d clusters; expected tens", len(r.Clusters))
	}
	if r.Maximal == 0 || r.Maximal > len(r.Clusters) {
		t.Errorf("maximal count %d of %d", r.Maximal, len(r.Clusters))
	}
	if len(r.Selected) == 0 {
		t.Error("no non-overlapping clusters selected")
	}
	if r.GO == nil || len(r.TopTerms) != len(r.Selected) {
		t.Fatal("GO enrichment missing")
	}
	for i, terms := range r.TopTerms {
		for ns, e := range terms {
			if e.PValue > 1e-10 {
				t.Errorf("cluster %d %v p-value %v — expected Table-2-style extremes", i, ns, e.PValue)
			}
		}
	}
	var sb strings.Builder
	WriteYeast(&sb, r)
	out := sb.String()
	for _, want := range []string{"Section 5.2", "Figure 8", "Table 2", "p="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestComparison verifies the E7 claims programmatically.
func TestComparison(t *testing.T) {
	r, err := Comparison()
	if err != nil {
		t.Fatal(err)
	}
	if !r.RegClusterAllSix {
		t.Error("reg-cluster must group all six Figure 1 profiles")
	}
	if r.PClusterAllSix {
		t.Error("pCluster must NOT group all six (it cannot mix shifting with scaling)")
	}
	if r.ScalingAllSix {
		t.Error("the scaling model must NOT group all six")
	}
	if r.PClusterBestGroup < 4 {
		t.Errorf("pCluster should at least find the 4 shifted profiles, got %d", r.PClusterBestGroup)
	}
	if r.ScalingBestGroup < 4 {
		t.Errorf("scaling should at least find the 4 scaled profiles, got %d", r.ScalingBestGroup)
	}
	if !r.RegClusterExcludesOutlier {
		t.Error("reg-cluster must exclude the Figure 4 outlier")
	}
	if !r.TendencyKeepsOutlier {
		t.Error("the tendency model should wrongly keep the Figure 4 outlier")
	}
	var sb strings.Builder
	WriteComparison(&sb, r)
	if !strings.Contains(sb.String(), "Figure 1") || !strings.Contains(sb.String(), "Figure 4") {
		t.Error("comparison report incomplete")
	}
}

// TestAblationSmall verifies E8: all variants agree on output and the
// all-disabled variant does at least as much work.
func TestAblationSmall(t *testing.T) {
	pts, err := Ablation(300, 12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(AblationVariants()) {
		t.Fatalf("%d points", len(pts))
	}
	base := pts[0]
	for _, p := range pts {
		if !p.SameOutput {
			t.Errorf("variant %q changed the output", p.Name)
		}
		if p.Clusters != base.Clusters {
			t.Errorf("variant %q cluster count %d != %d", p.Name, p.Clusters, base.Clusters)
		}
	}
	all := pts[len(pts)-1]
	if all.Stats.Nodes < base.Stats.Nodes {
		t.Errorf("all-disabled visited fewer nodes (%d) than the paper config (%d)",
			all.Stats.Nodes, base.Stats.Nodes)
	}
	var sb strings.Builder
	WriteAblation(&sb, pts)
	if !strings.Contains(sb.String(), "variant") {
		t.Error("ablation report incomplete")
	}
}

func TestRunningExampleReport(t *testing.T) {
	var sb strings.Builder
	if err := RunningExampleReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"RWave", "mined clusters (1)", "c7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCrossoverCount(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{0, 10, 20}, // rises through the faller
		{15, 8, 1},  // falls through the riser
		{100, 110, 120},
	})
	b := &core.Bicluster{Chain: []int{0, 1, 2}, PMembers: []int{0, 2}, NMembers: []int{1}}
	// g0 crosses g1 between c0 and c1 (difference flips sign); g2 stays
	// above g1 throughout.
	if got := CrossoverCount(m, b); got == 0 {
		t.Errorf("expected crossovers, got %d", got)
	}
	noN := &core.Bicluster{Chain: b.Chain, PMembers: []int{0, 2}}
	if CrossoverCount(m, noN) != 0 {
		t.Error("no n-members should mean no crossovers")
	}
	// The paper's running example profiles touch at the chain end but never
	// strictly cross inside it.
	rm := paperdata.RunningExample()
	rb := &core.Bicluster{Chain: paperdata.RunningExampleChain(), PMembers: []int{0, 2}, NMembers: []int{1}}
	if got := CrossoverCount(rm, rb); got != 0 {
		t.Errorf("running example should have no strict crossovers, got %d", got)
	}
}

func TestMiningDefaults(t *testing.T) {
	p := MiningDefaults(3000)
	if p.MinG != 30 || p.MinC != 6 || p.Gamma != 0.1 || p.Epsilon != 0.01 {
		t.Errorf("defaults %+v", p)
	}
	if MiningDefaults(50).MinG != 2 {
		t.Error("MinG floor missing")
	}
}
