package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/dataset"
	"regcluster/internal/eval"
	"regcluster/internal/matrix"
	"regcluster/internal/ontology"
	"regcluster/internal/plot"
)

// YeastParams are the Section 5.2 mining parameters: MinG=20, MinC=6,
// γ=0.05, ε=1.0.
func YeastParams() core.Params {
	return core.Params{MinG: 20, MinC: 6, Gamma: 0.05, Epsilon: 1.0}
}

// YeastResult captures the Section 5.2 + Figure 8 + Table 2 outputs.
type YeastResult struct {
	// Matrix is the 2884×17 dataset (substitute or real file).
	Matrix *matrix.Matrix
	// Clusters are all mined bi-reg-clusters.
	Clusters []*core.Bicluster
	// Runtime is the mining wall-clock time (the paper reports 2.5 s).
	Runtime time.Duration
	// Overlap summarizes pairwise cell overlaps (paper: 0%–85%).
	Overlap eval.OverlapStats
	// Maximal counts the clusters that survive the subsumption filter
	// (sub-chain outputs of a longer chain are folded away).
	Maximal int
	// Selected are up to three non-overlapping clusters (Figure 8 detail).
	Selected []*core.Bicluster
	// GO is the enrichment substrate (nil when mining a real file without
	// ground-truth modules).
	GO *ontology.GO
	// TopTerms maps each selected cluster index to its most enriched term
	// per namespace (Table 2).
	TopTerms []map[ontology.Namespace]ontology.Enrichment
}

// Yeast runs the effectiveness experiment on the yeast-substitute dataset
// (or on the real benchmark file when path is non-empty).
func Yeast(path string, seed int64) (*YeastResult, error) {
	var (
		m       *matrix.Matrix
		modules []dataset.Module
		err     error
	)
	if path != "" {
		m, err = dataset.LoadTSV(path)
	} else {
		cfg := dataset.DefaultYeastConfig()
		cfg.Seed = seed
		m, modules, err = dataset.GenerateYeastLike(cfg)
	}
	if err != nil {
		return nil, err
	}
	p := YeastParams()
	start := time.Now()
	res, err := core.Mine(m, p)
	if err != nil {
		return nil, err
	}
	out := &YeastResult{
		Matrix:   m,
		Clusters: res.Clusters,
		Runtime:  time.Since(start),
		Overlap:  eval.Overlaps(res.Clusters),
		Maximal:  len(eval.MaximalOnly(res.Clusters)),
		Selected: eval.NonOverlapping(res.Clusters, 3),
	}
	if modules != nil {
		sets := make([][]int, len(modules))
		for i, mod := range modules {
			sets[i] = mod.Genes()
		}
		out.GO = ontology.Synthesize(m.Rows(), sets, seed+17)
		for _, b := range out.Selected {
			out.TopTerms = append(out.TopTerms, out.GO.TopTerms(b.Genes()))
		}
	}
	return out, nil
}

// WriteYeast renders the Section 5.2 narrative, the Figure 8 profile detail
// and the Table 2 enrichment rows.
func WriteYeast(w io.Writer, r *YeastResult) {
	p := YeastParams()
	fmt.Fprintf(w, "Section 5.2 — effectiveness on %dx%d dataset (MinG=%d MinC=%d γ=%g ε=%g)\n",
		r.Matrix.Rows(), r.Matrix.Cols(), p.MinG, p.MinC, p.Gamma, p.Epsilon)
	fmt.Fprintf(w, "%d bi-reg-clusters (%d maximal) output in %s; pairwise cell overlap %.0f%%–%.0f%% (mean %.0f%%)\n",
		len(r.Clusters), r.Maximal, r.Runtime.Round(time.Millisecond),
		100*r.Overlap.Min, 100*r.Overlap.Max, 100*r.Overlap.Mean)

	fmt.Fprintf(w, "\nFigure 8 — %d non-overlapping bi-reg-clusters:\n", len(r.Selected))
	for i, b := range r.Selected {
		g, c := b.Dims()
		fmt.Fprintf(w, "\ncluster c2_%d: %d genes (%d p-members, %d n-members) × %d conditions, chain %s\n",
			i+1, g, len(b.PMembers), len(b.NMembers), c, chainString(r.Matrix, b))
		writeProfiles(w, r.Matrix, b, 4)
		fmt.Fprint(w, profilePlot(r.Matrix, b))
	}

	if r.GO != nil {
		fmt.Fprintf(w, "\nTable 2 — top GO terms of the selected clusters:\n")
		fmt.Fprintf(w, "%-10s %-45s %-45s %-45s\n", "Cluster", "Process", "Function", "Cellular Component")
		for i := range r.Selected {
			row := fmt.Sprintf("%-10s", fmt.Sprintf("c2_%d", i+1))
			for _, ns := range ontology.Namespaces() {
				if e, ok := r.TopTerms[i][ns]; ok {
					row += fmt.Sprintf(" %-45s", fmt.Sprintf("%s (p=%.3g)", e.Term.Name, e.PValue))
				} else {
					row += fmt.Sprintf(" %-45s", "—")
				}
			}
			fmt.Fprintln(w, row)
		}
	}
}

// chainString renders a chain in the paper's c_a ↶ c_b notation with
// condition names.
func chainString(m *matrix.Matrix, b *core.Bicluster) string {
	parts := make([]string, len(b.Chain))
	for i, c := range b.Chain {
		parts[i] = m.ColName(c)
	}
	return strings.Join(parts, " ↶ ")
}

// writeProfiles prints up to maxPerKind p- and n-member expression profiles
// along the chain — the textual analogue of the Figure 8 line plots (solid
// p-members, dashed n-members; crossovers visible as value orderings that
// swap between columns).
func writeProfiles(w io.Writer, m *matrix.Matrix, b *core.Bicluster, maxPerKind int) {
	write := func(kind string, genes []int) {
		n := len(genes)
		if n > maxPerKind {
			n = maxPerKind
		}
		for _, g := range genes[:n] {
			fmt.Fprintf(w, "  %s %-10s", kind, m.RowName(g))
			for _, c := range b.Chain {
				fmt.Fprintf(w, " %8.1f", m.At(g, c))
			}
			fmt.Fprintln(w)
		}
		if len(genes) > n {
			fmt.Fprintf(w, "  %s ... %d more\n", kind, len(genes)-n)
		}
	}
	write("p", b.PMembers)
	write("n", b.NMembers)
}

// profilePlot draws a Figure 8 style ASCII chart of up to three p-member
// ('*') and three n-member ('o') profiles along the chain.
func profilePlot(m *matrix.Matrix, b *core.Bicluster) string {
	ch := plot.New(56, 12).Title("profiles along the chain (* p-members, o n-members)")
	take := func(genes []int, glyph byte) {
		n := len(genes)
		if n > 3 {
			n = 3
		}
		for _, g := range genes[:n] {
			ys := make([]float64, len(b.Chain))
			for i, c := range b.Chain {
				ys[i] = m.At(g, c)
			}
			ch.Add(plot.Series{Name: m.RowName(g), Ys: ys, Glyph: glyph})
		}
	}
	take(b.PMembers, '*')
	take(b.NMembers, 'o')
	labels := make([]string, len(b.Chain))
	for i, c := range b.Chain {
		labels[i] = m.ColName(c)
	}
	return ch.XLabels(labels).Render()
}

// CrossoverCount counts, over all (p-member, n-member) pairs and adjacent
// chain steps, how often the two profiles cross — the paper highlights
// frequent crossovers as the signature of combined shifting and scaling.
func CrossoverCount(m *matrix.Matrix, b *core.Bicluster) int {
	count := 0
	for _, pg := range b.PMembers {
		for _, ng := range b.NMembers {
			for k := 0; k+1 < len(b.Chain); k++ {
				d1 := m.At(pg, b.Chain[k]) - m.At(ng, b.Chain[k])
				d2 := m.At(pg, b.Chain[k+1]) - m.At(ng, b.Chain[k+1])
				if d1*d2 < 0 {
					count++
				}
			}
		}
	}
	return count
}
