package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"regcluster/internal/ccbicluster"
	"regcluster/internal/core"
	"regcluster/internal/deltacluster"
	"regcluster/internal/diametrical"
	"regcluster/internal/eval"
	"regcluster/internal/fullspace"
	"regcluster/internal/opcluster"
	"regcluster/internal/opsm"
	"regcluster/internal/pcluster"
	"regcluster/internal/proclus"
	"regcluster/internal/scaling"
	"regcluster/internal/synthetic"
)

// RecoveryPoint is one model's score in experiment E9.
type RecoveryPoint struct {
	Model string
	// Recovery is the Prelić match score S(truth → mined) over gene sets:
	// 1.0 means every planted cluster's gene set is reproduced exactly by
	// some mined cluster.
	Recovery float64
	Clusters int
	Runtime  time.Duration
}

// Recovery runs E9: every implemented model mines the same dataset with
// planted shifting-and-scaling clusters (positive AND negative members), and
// is scored on how well it recovers the planted gene groups. This quantifies
// the paper's central claim — only the reg-cluster model captures the
// general pattern class.
func Recovery(seed int64) ([]RecoveryPoint, error) {
	cfg := synthetic.Config{
		Genes: 60, Conds: 10, Clusters: 2,
		AvgClusterGenes: 12, AvgDims: 6, Seed: seed,
	}
	m, truth, err := synthetic.Generate(cfg)
	if err != nil {
		return nil, err
	}
	truthSets := make([][]int, len(truth))
	for i, e := range truth {
		truthSets[i] = e.Genes()
	}
	score := func(mined [][]int) float64 { return eval.GeneMatchScore(truthSets, mined) }

	var out []RecoveryPoint
	add := func(model string, f func() ([][]int, error)) error {
		start := time.Now()
		sets, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", model, err)
		}
		out = append(out, RecoveryPoint{
			Model:    model,
			Recovery: score(sets),
			Clusters: len(sets),
			Runtime:  time.Since(start),
		})
		return nil
	}

	steps := []struct {
		name string
		f    func() ([][]int, error)
	}{
		{"reg-cluster", func() ([][]int, error) {
			res, err := core.Mine(m, core.Params{MinG: 6, MinC: 5, Gamma: 0.1, Epsilon: 0.05})
			if err != nil {
				return nil, err
			}
			return coreSets(res.Clusters), nil
		}},
		{"pCluster (shifting)", func() ([][]int, error) {
			bs, err := pcluster.Mine(m, pcluster.Params{Delta: 0.5, MinG: 4, MinC: 5, MaxNodes: 200000})
			if err != nil {
				return nil, err
			}
			return pairSets(bs), nil
		}},
		{"pCluster on log-data (Eq. 1)", func() ([][]int, error) {
			lg := m.LogTransform()
			if lg.HasNaN() {
				// Non-positive values make the Equation 1 transform
				// undefined; impute so the baseline can run at all.
				lg.FillNaN()
			}
			bs, err := pcluster.Mine(lg, pcluster.Params{Delta: 0.05, MinG: 4, MinC: 5, MaxNodes: 200000})
			if err != nil {
				return nil, err
			}
			return pairSets(bs), nil
		}},
		{"scaling (triCluster)", func() ([][]int, error) {
			bs, err := scaling.Mine(m, scaling.Params{Epsilon: 0.05, MinG: 4, MinC: 5, MaxNodes: 200000})
			if err != nil {
				return nil, err
			}
			return pairSets(bs), nil
		}},
		{"OP-cluster (tendency)", func() ([][]int, error) {
			bs, err := opcluster.Mine(m, opcluster.Params{MinG: 4, MinC: 5, Strict: true, MaxNodes: 500000})
			if err != nil {
				return nil, err
			}
			sets := make([][]int, len(bs))
			for i, b := range bs {
				sets[i] = b.Genes
			}
			return sets, nil
		}},
		{"Cheng-Church (MSR)", func() ([][]int, error) {
			bs, err := ccbicluster.Mine(m, ccbicluster.DefaultParams(25, 4))
			if err != nil {
				return nil, err
			}
			sets := make([][]int, len(bs))
			for i, b := range bs {
				sets[i] = b.Rows
			}
			return sets, nil
		}},
		{"δ-cluster (FLOC)", func() ([][]int, error) {
			bs, err := deltacluster.Mine(m, deltacluster.DefaultParams(4))
			if err != nil {
				return nil, err
			}
			sets := make([][]int, len(bs))
			for i, b := range bs {
				sets[i] = b.Genes
			}
			return sets, nil
		}},
		{"PROCLUS (projected)", func() ([][]int, error) {
			cs, _, err := proclus.Mine(m, proclus.Params{K: 4, AvgDims: 5, MaxIter: 20, Seed: seed})
			if err != nil {
				return nil, err
			}
			sets := make([][]int, len(cs))
			for i, c := range cs {
				sets[i] = c.Genes
			}
			return sets, nil
		}},
		{"hierarchical (full space)", func() ([][]int, error) {
			return fullspace.Hierarchical(m, 6, fullspace.PearsonDist)
		}},
		{"k-means (full space)", func() ([][]int, error) {
			return fullspace.KMeans(m, 6, 50, seed)
		}},
		{"OPSM (Ben-Dor)", func() ([][]int, error) {
			models, err := opsm.Mine(m, opsm.Params{Size: 5, Beam: 100})
			if err != nil {
				return nil, err
			}
			sets := make([][]int, len(models))
			for i, mod := range models {
				sets[i] = mod.Genes
			}
			return sets, nil
		}},
		{"diametrical (full space, ±corr)", func() ([][]int, error) {
			cs, err := diametrical.ClusterGenes(m, diametrical.Params{K: 6, Seed: seed})
			if err != nil {
				return nil, err
			}
			sets := make([][]int, len(cs))
			for i := range cs {
				sets[i] = cs[i].Genes()
			}
			return sets, nil
		}},
	}
	for _, s := range steps {
		if err := add(s.name, s.f); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Recovery > out[b].Recovery })
	return out, nil
}

// WriteRecovery renders the E9 report.
func WriteRecovery(w io.Writer, points []RecoveryPoint) {
	fmt.Fprintln(w, "E9 — planted shifting-and-scaling recovery per model (gene-set match score; 1.0 = perfect)")
	fmt.Fprintf(w, "%-30s %10s %10s %12s\n", "model", "recovery", "clusters", "runtime")
	for _, p := range points {
		fmt.Fprintf(w, "%-30s %10.3f %10d %12s\n", p.Model, p.Recovery, p.Clusters, p.Runtime.Round(time.Millisecond))
	}
}

func coreSets(bs []*core.Bicluster) [][]int {
	out := make([][]int, len(bs))
	for i, b := range bs {
		out[i] = b.Genes()
	}
	return out
}

func pairSets(bs []pcluster.Bicluster) [][]int {
	out := make([][]int, len(bs))
	for i, b := range bs {
		out[i] = b.Genes
	}
	return out
}
