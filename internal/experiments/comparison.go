package experiments

import (
	"fmt"
	"io"

	"regcluster/internal/core"
	"regcluster/internal/opcluster"
	"regcluster/internal/paperdata"
	"regcluster/internal/pcluster"
	"regcluster/internal/rwave"
	"regcluster/internal/scaling"
)

// ComparisonResult records which models capture which pattern structures on
// the paper's two motivating datasets (Figure 1 and Figure 4).
type ComparisonResult struct {
	// Figure 1 (six shifting-and-scaling related profiles over 8 conds):
	// does each model produce a cluster containing all six profiles?
	RegClusterAllSix bool
	PClusterAllSix   bool
	ScalingAllSix    bool
	// Largest profile group each baseline does manage on Figure 1.
	PClusterBestGroup int
	ScalingBestGroup  int

	// Figure 4 (outlier projection): does each model exclude the outlier
	// gene g2 while grouping g1 and g3?
	RegClusterExcludesOutlier bool
	TendencyKeepsOutlier      bool
}

// Comparison runs E7: reg-cluster versus the pattern-based and
// tendency-based baselines on the Figure 1 and Figure 4 data.
func Comparison() (*ComparisonResult, error) {
	out := &ComparisonResult{}

	// --- Figure 1: six patterns, P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3.
	six := paperdata.SixPatterns()
	regRes, err := core.Mine(six, core.Params{MinG: 2, MinC: 8, Gamma: 0.1, Epsilon: 0.01})
	if err != nil {
		return nil, err
	}
	out.RegClusterAllSix = hasGroupOfSize(clusterGeneSets(regRes.Clusters), 6)

	pcRes, err := pcluster.Mine(six, pcluster.Params{Delta: 0.5, MinG: 2, MinC: 8})
	if err != nil {
		return nil, err
	}
	pcSets := biclusterGeneSets(pcRes)
	out.PClusterAllSix = hasGroupOfSize(pcSets, 6)
	out.PClusterBestGroup = largestGroup(pcSets)

	scRes, err := scaling.Mine(six, scaling.Params{Epsilon: 0.05, MinG: 2, MinC: 8})
	if err != nil {
		return nil, err
	}
	scSets := biclusterGeneSets(scRes)
	out.ScalingAllSix = hasGroupOfSize(scSets, 6)
	out.ScalingBestGroup = largestGroup(scSets)

	// --- Figure 4: outlier projection of the running example.
	proj := paperdata.OutlierProjection()
	regProj, err := core.Mine(proj, core.Params{MinG: 2, MinC: 4, Gamma: 0.15, Epsilon: 0.1})
	if err != nil {
		return nil, err
	}
	out.RegClusterExcludesOutlier = true
	for _, b := range regProj.Clusters {
		for _, g := range b.Genes() {
			if g == 1 { // g2 is row index 1
				out.RegClusterExcludesOutlier = false
			}
		}
	}
	opRes, err := opcluster.Mine(proj, opcluster.Params{MinG: 3, MinC: 4, Strict: true})
	if err != nil {
		return nil, err
	}
	for _, b := range opRes {
		if len(b.Genes) == 3 {
			out.TendencyKeepsOutlier = true
		}
	}
	return out, nil
}

// WriteComparison renders the E7 report.
func WriteComparison(w io.Writer, r *ComparisonResult) {
	fmt.Fprintln(w, "E7 — model comparison on the paper's motivating data")
	fmt.Fprintln(w, "\nFigure 1 (P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3, 8 conditions):")
	fmt.Fprintf(w, "  reg-cluster groups all six profiles:        %v\n", r.RegClusterAllSix)
	fmt.Fprintf(w, "  pCluster (pure shifting) groups all six:    %v (best group: %d — the shifted subset)\n",
		r.PClusterAllSix, r.PClusterBestGroup)
	fmt.Fprintf(w, "  scaling model (triCluster) groups all six:  %v (best group: %d — the scaled subset)\n",
		r.ScalingAllSix, r.ScalingBestGroup)
	fmt.Fprintln(w, "\nFigure 4 (projection of Table 1 on c2,c4,c8,c10; g2 is a structural outlier):")
	fmt.Fprintf(w, "  reg-cluster excludes the outlier g2:        %v\n", r.RegClusterExcludesOutlier)
	fmt.Fprintf(w, "  tendency model keeps the outlier g2:        %v\n", r.TendencyKeepsOutlier)
}

func clusterGeneSets(bs []*core.Bicluster) [][]int {
	out := make([][]int, len(bs))
	for i, b := range bs {
		out[i] = b.Genes()
	}
	return out
}

func biclusterGeneSets(bs []pcluster.Bicluster) [][]int {
	out := make([][]int, len(bs))
	for i, b := range bs {
		out[i] = b.Genes
	}
	return out
}

func hasGroupOfSize(sets [][]int, n int) bool {
	for _, s := range sets {
		if len(s) >= n {
			return true
		}
	}
	return false
}

func largestGroup(sets [][]int) int {
	best := 0
	for _, s := range sets {
		if len(s) > best {
			best = len(s)
		}
	}
	return best
}

// RunningExampleReport renders the Section 3/4 walk-through: the RWave^0.15
// models of Figure 3 and the unique cluster of Figure 6.
func RunningExampleReport(w io.Writer) error {
	m := paperdata.RunningExample()
	fmt.Fprintln(w, "E6 — running example (Table 1), γ=0.15 ε=0.1 MinG=3 MinC=5")
	fmt.Fprintln(w, "\nRWave^0.15 models (Figure 3):")
	for g := 0; g < m.Rows(); g++ {
		fmt.Fprintf(w, "  %s\n", rwave.Build(m, g, 0.15))
	}
	res, err := core.Mine(m, core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmined clusters (%d):\n", len(res.Clusters))
	for _, b := range res.Clusters {
		fmt.Fprintf(w, "  %s  (chain: %s)\n", b, chainString(m, b))
	}
	fmt.Fprintf(w, "\nsearch stats: %+v\n", res.Stats)
	return nil
}
