package experiments

import (
	"fmt"
	"io"
	"time"

	"regcluster/internal/tensor"
	"regcluster/internal/tricluster"
)

// Tricluster3DResult captures experiment E11: recovery of planted 3-D
// multiplicative blocks by the triCluster miner.
type Tricluster3DResult struct {
	TensorDims [3]int
	Planted    int
	Mined      int
	// Recovered counts planted blocks reproduced exactly (same genes,
	// samples and times).
	Recovered int
	Runtime   time.Duration
}

// Tricluster3D runs E11 on a planted tensor.
func Tricluster3D(seed int64) (*Tricluster3DResult, error) {
	cfg := tensor.GenerateConfig{
		Genes: 80, Samples: 10, Times: 6,
		Clusters: 3, ClusterGenes: 8, ClusterSamples: 4, ClusterTimes: 3,
		Seed: seed,
	}
	ten, truth, err := tensor.Generate(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	got, err := tricluster.Mine(ten, tricluster.Params{
		Epsilon: 0.001, MinG: cfg.ClusterGenes, MinS: cfg.ClusterSamples, MinT: cfg.ClusterTimes,
	})
	if err != nil {
		return nil, err
	}
	res := &Tricluster3DResult{
		TensorDims: [3]int{cfg.Genes, cfg.Samples, cfg.Times},
		Planted:    len(truth),
		Mined:      len(got),
		Runtime:    time.Since(start),
	}
	for _, e := range truth {
		for _, tc := range got {
			if equalInts(tc.Genes, e.Genes) && equalInts(tc.Samples, e.Samples) && equalInts(tc.Times, e.Times) {
				res.Recovered++
				break
			}
		}
	}
	return res, nil
}

// WriteTricluster3D renders the E11 report.
func WriteTricluster3D(w io.Writer, r *Tricluster3DResult) {
	fmt.Fprintln(w, "E11 — 3-D triCluster substrate: planted multiplicative block recovery")
	fmt.Fprintf(w, "tensor %dx%dx%d, %d planted blocks → %d mined, %d/%d recovered exactly in %s\n",
		r.TensorDims[0], r.TensorDims[1], r.TensorDims[2],
		r.Planted, r.Mined, r.Recovered, r.Planted, r.Runtime.Round(time.Millisecond))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
