package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/eval"
	"regcluster/internal/synthetic"
)

// NoisePoint is one measurement of experiment E10.
type NoisePoint struct {
	// Sigma is the noise level: each planted cell is perturbed by a uniform
	// offset in ±Sigma × (gene range).
	Sigma float64
	// Epsilon is the coherence threshold used for mining at this level.
	Epsilon float64
	// Recovery is the gene-set match score S(truth → mined).
	Recovery float64
	// RecoveryTightEps is the recovery when mining keeps the noise-free
	// ε = 0.01 — demonstrating why the threshold must scale with noise.
	RecoveryTightEps float64
	Clusters         int
	Runtime          time.Duration
}

// NoiseSensitivity runs E10: planted shifting-and-scaling clusters are
// perturbed with increasing relative noise; at each level the miner runs
// twice — once with ε matched to the noise and once with the tight
// noise-free ε. Recovery with matched ε should degrade gracefully while the
// tight setting collapses, quantifying the role of the coherence threshold.
func NoiseSensitivity(seed int64) ([]NoisePoint, error) {
	cfg := synthetic.Config{
		Genes: 400, Conds: 14, Clusters: 4, AvgClusterGenes: 14, Seed: seed,
	}
	sigmas := []float64{0, 0.005, 0.01, 0.02, 0.04}
	var out []NoisePoint
	for _, sigma := range sigmas {
		m, truth, err := synthetic.Generate(cfg)
		if err != nil {
			return nil, err
		}
		// Perturb every planted cell by ±sigma × rowRange.
		rng := rand.New(rand.NewSource(seed + int64(sigma*10000)))
		for _, e := range truth {
			for _, g := range e.Genes() {
				spread := m.RowRange(g)
				for _, c := range e.Chain {
					m.Set(g, c, m.At(g, c)+(rng.Float64()*2-1)*sigma*spread)
				}
			}
		}
		// Matched ε: H scores move by O(noise / minimum step). The planted
		// steps are ≳ γ_embed × range, so ε ≈ 4·sigma/γ_embed covers the
		// spread with margin.
		matched := 0.01 + 4*sigma/0.15
		p := core.Params{MinG: 8, MinC: 5, Gamma: 0.08, Epsilon: matched}
		start := time.Now()
		res, err := core.Mine(m, p)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		_, rec := eval.RelevanceRecovery(res.Clusters, truth)

		tight := p
		tight.Epsilon = 0.01
		resTight, err := core.Mine(m, tight)
		if err != nil {
			return nil, err
		}
		_, recTight := eval.RelevanceRecovery(resTight.Clusters, truth)

		out = append(out, NoisePoint{
			Sigma:            sigma,
			Epsilon:          matched,
			Recovery:         rec,
			RecoveryTightEps: recTight,
			Clusters:         len(res.Clusters),
			Runtime:          elapsed,
		})
	}
	return out, nil
}

// WriteNoise renders the E10 report.
func WriteNoise(w io.Writer, points []NoisePoint) {
	fmt.Fprintln(w, "E10 — noise sensitivity: recovery of planted clusters under per-cell noise ±σ×range")
	fmt.Fprintf(w, "%8s %10s %18s %18s %10s %12s\n",
		"σ", "matched ε", "recovery(matched)", "recovery(ε=0.01)", "clusters", "runtime")
	for _, p := range points {
		fmt.Fprintf(w, "%8.3f %10.3f %18.3f %18.3f %10d %12s\n",
			p.Sigma, p.Epsilon, p.Recovery, p.RecoveryTightEps, p.Clusters,
			p.Runtime.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "\nthe coherence threshold must scale with measurement noise: matched ε degrades")
	fmt.Fprintln(w, "gracefully while the noise-free setting collapses once σ exceeds its window.")
}
