package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/synthetic"
)

// AblationVariant is one pruning configuration of experiment E8.
type AblationVariant struct {
	Name   string
	Modify func(*core.Params)
}

// AblationVariants lists the paper configuration and each pruning disabled
// in turn. Every variant is output-preserving: the mined cluster set is
// identical; only the work differs.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{"full (paper)", func(p *core.Params) {}},
		{"no pruning (2) MinC length", func(p *core.Params) { p.DisableChainLengthPruning = true }},
		{"no pruning (3a) majority", func(p *core.Params) { p.DisableMajorityPruning = true }},
		{"no pruning (3b) dedup cut", func(p *core.Params) { p.DisableDedupPruning = true }},
		{"naive candidates (no RWave scan)", func(p *core.Params) { p.NaiveCandidates = true }},
		{"all disabled", func(p *core.Params) {
			p.DisableChainLengthPruning = true
			p.DisableMajorityPruning = true
			p.DisableDedupPruning = true
			p.NaiveCandidates = true
		}},
	}
}

// AblationPoint is the measurement of one variant.
type AblationPoint struct {
	Name     string
	Runtime  time.Duration
	Clusters int
	Stats    core.Stats
	// SameOutput reports whether the variant's cluster set matches the
	// paper configuration's (it always should).
	SameOutput bool
}

// Ablation runs E8 on a synthetic dataset of the given size.
func Ablation(genes, conds, clusters int, seed int64) ([]AblationPoint, error) {
	cfg := synthetic.Config{Genes: genes, Conds: conds, Clusters: clusters, Seed: seed}
	m, _, err := synthetic.Generate(cfg)
	if err != nil {
		return nil, err
	}
	base := MiningDefaults(genes)
	var reference []string
	var out []AblationPoint
	for i, v := range AblationVariants() {
		p := base
		v.Modify(&p)
		start := time.Now()
		res, err := core.Mine(m, p)
		if err != nil {
			return nil, err
		}
		keys := make([]string, len(res.Clusters))
		for k, b := range res.Clusters {
			keys[k] = b.Key()
		}
		sort.Strings(keys)
		if i == 0 {
			reference = keys
		}
		out = append(out, AblationPoint{
			Name:       v.Name,
			Runtime:    time.Since(start),
			Clusters:   len(res.Clusters),
			Stats:      res.Stats,
			SameOutput: equalStrings(keys, reference),
		})
	}
	return out, nil
}

// WriteAblation renders the E8 report.
func WriteAblation(w io.Writer, points []AblationPoint) {
	fmt.Fprintln(w, "E8 — pruning-strategy ablation (output-preserving; work should rise as prunings drop)")
	fmt.Fprintf(w, "%-35s %12s %10s %10s %12s %6s\n", "variant", "runtime", "clusters", "nodes", "candidates", "same?")
	for _, p := range points {
		fmt.Fprintf(w, "%-35s %12s %10d %10d %12d %6v\n",
			p.Name, p.Runtime.Round(time.Millisecond), p.Clusters, p.Stats.Nodes,
			p.Stats.CandidatesExamined, p.SameOutput)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
