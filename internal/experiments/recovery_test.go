package experiments

import (
	"strings"
	"testing"
)

// TestRecoveryOrdering verifies the E9 headline: the reg-cluster model
// recovers the planted shifting-and-scaling clusters perfectly while the
// pure-pattern baselines cannot.
func TestRecoveryOrdering(t *testing.T) {
	pts, err := Recovery(3)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, p := range pts {
		scores[p.Model] = p.Recovery
	}
	if scores["reg-cluster"] < 0.999 {
		t.Errorf("reg-cluster recovery = %v, want 1.0", scores["reg-cluster"])
	}
	for _, model := range []string{"pCluster (shifting)", "scaling (triCluster)"} {
		if scores[model] > 0.3 {
			t.Errorf("%s recovery = %v — pure-pattern model should fail on shifting-and-scaling data",
				model, scores[model])
		}
	}
	// The tendency model catches positive members but not the full mixed
	// cluster, so it lands strictly between.
	if op := scores["OP-cluster (tendency)"]; op >= scores["reg-cluster"] || op <= scores["pCluster (shifting)"] {
		t.Errorf("OP-cluster recovery = %v, want strictly between pattern baselines and reg-cluster", op)
	}
	// Report renders.
	var sb strings.Builder
	WriteRecovery(&sb, pts)
	if !strings.Contains(sb.String(), "reg-cluster") {
		t.Error("report incomplete")
	}
	// Sorted descending.
	for i := 1; i < len(pts); i++ {
		if pts[i].Recovery > pts[i-1].Recovery {
			t.Fatal("points not sorted by recovery")
		}
	}
}

// TestNoiseSensitivity verifies the E10 claims: with matched ε recovery
// stays high as noise grows, while the noise-free ε collapses.
func TestNoiseSensitivity(t *testing.T) {
	pts, err := NoiseSensitivity(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Recovery < 0.999 || pts[0].RecoveryTightEps < 0.999 {
		t.Errorf("noise-free recovery should be perfect: %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Recovery < 0.8 {
		t.Errorf("matched ε should keep recovery high at σ=%v, got %v", last.Sigma, last.Recovery)
	}
	if last.RecoveryTightEps > 0.2 {
		t.Errorf("tight ε should collapse at σ=%v, got %v", last.Sigma, last.RecoveryTightEps)
	}
	var sb strings.Builder
	WriteNoise(&sb, pts)
	if !strings.Contains(sb.String(), "E10") {
		t.Error("report incomplete")
	}
}

func TestTricluster3D(t *testing.T) {
	r, err := Tricluster3D(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered != r.Planted {
		t.Errorf("recovered %d of %d planted 3-D blocks", r.Recovered, r.Planted)
	}
	var sb strings.Builder
	WriteTricluster3D(&sb, r)
	if !strings.Contains(sb.String(), "E11") {
		t.Error("report incomplete")
	}
}
