// Package experiments regenerates every table and figure of the reg-cluster
// paper's evaluation (Section 5), plus the running-example walk-through and
// the pruning ablation of DESIGN.md. Each experiment returns structured
// results and can render a textual report; cmd/experiments is the CLI front
// end and bench_test.go wraps the same entry points in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/plot"
	"regcluster/internal/synthetic"
)

// MiningDefaults are the parameters of the Figure 7 efficiency experiments:
// MinG = 0.01 × #g, MinC = 6, γ = 0.1, ε = 0.01.
func MiningDefaults(genes int) core.Params {
	minG := genes / 100
	if minG < 2 {
		minG = 2
	}
	return core.Params{MinG: minG, MinC: 6, Gamma: 0.1, Epsilon: 0.01}
}

// SweepPoint is one measurement of a Figure 7 series.
type SweepPoint struct {
	// Param is the swept value (#genes, #conditions or #clusters).
	Param int
	// Runtime is the wall-clock mining time (excluding data generation).
	Runtime time.Duration
	// Clusters is the number of reg-clusters output.
	Clusters int
	// Nodes is the number of search-tree nodes visited.
	Nodes int
}

// Figure7Axis selects one of the three Figure 7 panels.
type Figure7Axis int

const (
	// AxisGenes varies #g (left panel).
	AxisGenes Figure7Axis = iota
	// AxisConds varies #cond (middle panel).
	AxisConds
	// AxisClusters varies #clus (right panel).
	AxisClusters
)

func (a Figure7Axis) String() string {
	switch a {
	case AxisGenes:
		return "#genes"
	case AxisConds:
		return "#conditions"
	case AxisClusters:
		return "#clusters"
	}
	return "?"
}

// DefaultSweep returns the points used for each panel.
func DefaultSweep(axis Figure7Axis) []int {
	switch axis {
	case AxisGenes:
		return []int{1000, 2000, 3000, 4000, 5000}
	case AxisConds:
		return []int{10, 15, 20, 25, 30}
	case AxisClusters:
		return []int{10, 20, 30, 40, 50}
	}
	return nil
}

// Figure7 runs one panel of the efficiency experiment: it varies one
// generator input over the given points while keeping the paper defaults
// (#g = 3000, #cond = 30, #clus = 30) for the other two, mines each dataset
// with MiningDefaults, and reports the runtime per point. workers > 1 (or
// <= 0 for GOMAXPROCS) mines with the parallel worker pool, whose output is
// identical to the sequential miner's.
func Figure7(axis Figure7Axis, points []int, seed int64, workers int) ([]SweepPoint, error) {
	if points == nil {
		points = DefaultSweep(axis)
	}
	out := make([]SweepPoint, 0, len(points))
	for _, v := range points {
		cfg := synthetic.DefaultConfig()
		cfg.Seed = seed
		switch axis {
		case AxisGenes:
			cfg.Genes = v
		case AxisConds:
			cfg.Conds = v
		case AxisClusters:
			cfg.Clusters = v
		}
		m, _, err := synthetic.Generate(cfg)
		if err != nil {
			return nil, err
		}
		p := MiningDefaults(cfg.Genes)
		start := time.Now()
		var res *core.Result
		if workers == 1 {
			res, err = core.Mine(m, p)
		} else {
			res, err = core.MineParallel(m, p, workers)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Param:    v,
			Runtime:  time.Since(start),
			Clusters: len(res.Clusters),
			Nodes:    res.Stats.Nodes,
		})
	}
	return out, nil
}

// WriteFigure7 renders one panel as the paper's series (runtime versus the
// swept parameter), with an ASCII curve.
func WriteFigure7(w io.Writer, axis Figure7Axis, points []SweepPoint) {
	fmt.Fprintf(w, "Figure 7 — runtime vs %s (defaults: #g=3000 #cond=30 #clus=30; MinG=0.01*#g MinC=6 γ=0.1 ε=0.01)\n", axis)
	fmt.Fprintf(w, "%12s %12s %10s %10s\n", axis, "runtime", "clusters", "nodes")
	ys := make([]float64, len(points))
	xs := make([]string, len(points))
	for i, p := range points {
		fmt.Fprintf(w, "%12d %12s %10d %10d\n", p.Param, p.Runtime.Round(time.Millisecond), p.Clusters, p.Nodes)
		ys[i] = p.Runtime.Seconds()
		xs[i] = fmt.Sprintf("%d", p.Param)
	}
	fmt.Fprint(w, plot.New(48, 10).
		Title(fmt.Sprintf("runtime (s) vs %s", axis)).
		Add(plot.Series{Name: "runtime", Ys: ys}).
		XLabels(xs).
		Render())
}
