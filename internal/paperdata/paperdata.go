// Package paperdata embeds the small datasets printed in the reg-cluster
// paper so that tests, examples and the experiment harness can reproduce the
// running example (Table 1, Figures 2-6) and the motivating pattern sets
// (Figures 1 and 4) exactly.
package paperdata

import "regcluster/internal/matrix"

// RunningExample returns the 3×10 dataset of Table 1. Row i is gene g(i+1),
// column j is condition c(j+1); names follow the paper ("g1".."g3",
// "c1".."c10").
func RunningExample() *matrix.Matrix {
	rows := [][]float64{
		{10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5}, // g1
		{20, 15, 15, 43.5, 30, 44, 45, 43, 35, 20},     // g2
		{6, -3.8, 8, 6.2, 2, 7.8, -4, 2, 0, 0},         // g3
	}
	m := matrix.FromRows(rows)
	for i := 0; i < 3; i++ {
		m.SetRowName(i, nameG(i+1))
	}
	for j := 0; j < 10; j++ {
		m.SetColName(j, nameC(j+1))
	}
	return m
}

// SixPatterns returns a dataset realizing Figure 1: six profiles related by
// P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3 over eight conditions. Every pair is
// a perfect shifting-and-scaling pattern, but only subsets are pure shifting
// (P1,P2,P3,P4) or pure scaling (P1,P4,P5,P6) of one another.
func SixPatterns() *matrix.Matrix {
	p1 := []float64{2, 5, 3, 7, 4, 9, 6, 8}
	rel := []struct {
		scale, shift float64
	}{
		{1, 0},   // P1
		{1, 5},   // P2 = P1 + 5
		{1, 15},  // P3 = P1 + 15
		{1, 0},   // P4 = P1
		{1.5, 0}, // P5 = 1.5 * P1
		{3, 0},   // P6 = 3 * P1
	}
	m := matrix.New(len(rel), len(p1))
	for i, r := range rel {
		m.SetRowName(i, nameP(i+1))
		for j, v := range p1 {
			m.Set(i, j, r.scale*v+r.shift)
		}
	}
	return m
}

// OutlierProjection returns the projection of the running example on
// conditions c2, c4, c8, c10 (Figure 4): g1 and g3 remain in a perfect
// shifting-and-scaling relationship (d3 = 0.4*d1 + 2) while g2 is an outlier.
// Column names are preserved from Table 1.
func OutlierProjection() *matrix.Matrix {
	m := RunningExample()
	return m.Submatrix([]int{0, 1, 2}, []int{1, 3, 7, 9})
}

// RunningExampleChain returns the condition indices (0-based into Table 1
// columns) of the unique representative regulation chain discovered by the
// paper at γ=0.15, ε=0.1, MinG=3, MinC=5: c7 ↶ c9 ↶ c5 ↶ c1 ↶ c3.
func RunningExampleChain() []int { return []int{6, 8, 4, 0, 2} }

func nameG(i int) string { return "g" + itoa(i) }
func nameC(i int) string { return "c" + itoa(i) }
func nameP(i int) string { return "P" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
