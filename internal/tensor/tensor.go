// Package tensor provides the labelled 3-D expression tensor
// (genes × samples × times) that the triCluster baseline (Zhao & Zaki 2005)
// mines. The reg-cluster paper evaluates in 2-D, but its triCluster
// comparison point is inherently three-dimensional; this substrate lets the
// repository reproduce that system faithfully rather than only its 2-D
// shadow.
package tensor

import (
	"fmt"
	"math/rand"

	"regcluster/internal/matrix"
)

// Tensor is a dense genes × samples × times array of expression values.
type Tensor struct {
	genes, samples, times int
	data                  []float64
	geneNames             []string
	sampleNames           []string
	timeNames             []string
}

// New returns a zeroed tensor with generated axis names.
func New(genes, samples, times int) *Tensor {
	if genes < 0 || samples < 0 || times < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%dx%d", genes, samples, times))
	}
	t := &Tensor{
		genes: genes, samples: samples, times: times,
		data:        make([]float64, genes*samples*times),
		geneNames:   make([]string, genes),
		sampleNames: make([]string, samples),
		timeNames:   make([]string, times),
	}
	for i := range t.geneNames {
		t.geneNames[i] = fmt.Sprintf("g%d", i)
	}
	for i := range t.sampleNames {
		t.sampleNames[i] = fmt.Sprintf("s%d", i)
	}
	for i := range t.timeNames {
		t.timeNames[i] = fmt.Sprintf("t%d", i)
	}
	return t
}

// Genes, Samples and Times return the axis lengths.
func (t *Tensor) Genes() int   { return t.genes }
func (t *Tensor) Samples() int { return t.samples }
func (t *Tensor) Times() int   { return t.times }

// At returns the value at (gene, sample, time).
func (t *Tensor) At(g, s, tm int) float64 {
	t.boundsCheck(g, s, tm)
	return t.data[(g*t.samples+s)*t.times+tm]
}

// Set assigns the value at (gene, sample, time).
func (t *Tensor) Set(g, s, tm int, v float64) {
	t.boundsCheck(g, s, tm)
	t.data[(g*t.samples+s)*t.times+tm] = v
}

func (t *Tensor) boundsCheck(g, s, tm int) {
	if g < 0 || g >= t.genes || s < 0 || s >= t.samples || tm < 0 || tm >= t.times {
		panic(fmt.Sprintf("tensor: index (%d,%d,%d) out of range %dx%dx%d",
			g, s, tm, t.genes, t.samples, t.times))
	}
}

// GeneName, SampleName and TimeName return axis labels.
func (t *Tensor) GeneName(i int) string   { return t.geneNames[i] }
func (t *Tensor) SampleName(i int) string { return t.sampleNames[i] }
func (t *Tensor) TimeName(i int) string   { return t.timeNames[i] }

// SetGeneName, SetSampleName, SetTimeName assign axis labels.
func (t *Tensor) SetGeneName(i int, n string)   { t.geneNames[i] = n }
func (t *Tensor) SetSampleName(i int, n string) { t.sampleNames[i] = n }
func (t *Tensor) SetTimeName(i int, n string)   { t.timeNames[i] = n }

// TimeSlice extracts the genes × samples matrix at a fixed time.
func (t *Tensor) TimeSlice(tm int) *matrix.Matrix {
	m := matrix.NewWithNames(t.geneNames, t.sampleNames)
	for g := 0; g < t.genes; g++ {
		for s := 0; s < t.samples; s++ {
			m.Set(g, s, t.At(g, s, tm))
		}
	}
	return m
}

// SampleSlice extracts the genes × times matrix at a fixed sample.
func (t *Tensor) SampleSlice(s int) *matrix.Matrix {
	m := matrix.NewWithNames(t.geneNames, t.timeNames)
	for g := 0; g < t.genes; g++ {
		for tm := 0; tm < t.times; tm++ {
			m.Set(g, tm, t.At(g, s, tm))
		}
	}
	return m
}

// Embedded3D is the ground truth of one planted tricluster.
type Embedded3D struct {
	Genes, Samples, Times []int
}

// GenerateConfig parameterizes the 3-D synthetic generator.
type GenerateConfig struct {
	Genes, Samples, Times int
	// Clusters is the number of planted multiplicative triclusters.
	Clusters int
	// ClusterGenes/Samples/Times are the planted block dimensions.
	ClusterGenes, ClusterSamples, ClusterTimes int
	Seed                                       int64
}

// Generate builds a random background tensor (values in [1, 11) — strictly
// positive, as ratio-based mining requires) with planted rank-1
// multiplicative blocks T[g,s,t] = rg·cs·dt, which are perfect scaling
// triclusters along every axis pair.
func Generate(cfg GenerateConfig) (*Tensor, []Embedded3D, error) {
	if cfg.Genes < 1 || cfg.Samples < 1 || cfg.Times < 1 {
		return nil, nil, fmt.Errorf("tensor: bad dimensions %+v", cfg)
	}
	if cfg.ClusterGenes > cfg.Genes || cfg.ClusterSamples > cfg.Samples || cfg.ClusterTimes > cfg.Times {
		return nil, nil, fmt.Errorf("tensor: planted block exceeds tensor %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := New(cfg.Genes, cfg.Samples, cfg.Times)
	for i := range t.data {
		t.data[i] = 1 + rng.Float64()*10
	}
	var truth []Embedded3D
	genePool := rng.Perm(cfg.Genes)
	for k := 0; k < cfg.Clusters; k++ {
		if (k+1)*cfg.ClusterGenes > cfg.Genes {
			break
		}
		genes := append([]int(nil), genePool[k*cfg.ClusterGenes:(k+1)*cfg.ClusterGenes]...)
		samples := rng.Perm(cfg.Samples)[:cfg.ClusterSamples]
		times := rng.Perm(cfg.Times)[:cfg.ClusterTimes]
		rg := factors(rng, len(genes))
		cs := factors(rng, len(samples))
		dt := factors(rng, len(times))
		for gi, g := range genes {
			for si, s := range samples {
				for ti, tm := range times {
					t.Set(g, s, tm, rg[gi]*cs[si]*dt[ti])
				}
			}
		}
		sortInts(genes)
		sortInts(samples)
		sortInts(times)
		truth = append(truth, Embedded3D{Genes: genes, Samples: samples, Times: times})
	}
	return t, truth, nil
}

func factors(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + rng.Float64()*3
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
