package tensor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serializes the tensor as a sequence of time-slice blocks:
//
//	#tensor	genes=G	samples=S	times=T
//	time	<time name>
//	gene	<sample names...>
//	<gene name>	<values...>
//	...                         (one block per time point)
//
// The format is self-describing and diff-friendly; ReadTSV parses it back.
func (t *Tensor) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#tensor\tgenes=%d\tsamples=%d\ttimes=%d\n", t.genes, t.samples, t.times)
	for tm := 0; tm < t.times; tm++ {
		fmt.Fprintf(bw, "time\t%s\n", t.timeNames[tm])
		bw.WriteString("gene")
		for s := 0; s < t.samples; s++ {
			bw.WriteByte('\t')
			bw.WriteString(t.sampleNames[s])
		}
		bw.WriteByte('\n')
		for g := 0; g < t.genes; g++ {
			bw.WriteString(t.geneNames[g])
			for s := 0; s < t.samples; s++ {
				bw.WriteByte('\t')
				bw.WriteString(strconv.FormatFloat(t.At(g, s, tm), 'g', -1, 64))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadTSV parses the WriteTSV format.
func ReadTSV(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("tensor: empty input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), "\t")
	if len(header) != 4 || header[0] != "#tensor" {
		return nil, fmt.Errorf("tensor: bad header %q", sc.Text())
	}
	dims := make([]int, 3)
	for i, field := range header[1:] {
		parts := strings.SplitN(field, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("tensor: bad header field %q", field)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("tensor: bad dimension %q", field)
		}
		dims[i] = v
	}
	t := New(dims[0], dims[1], dims[2])
	for tm := 0; tm < t.times; tm++ {
		// "time" line.
		if !sc.Scan() {
			return nil, fmt.Errorf("tensor: truncated before time block %d", tm)
		}
		tl := strings.SplitN(strings.TrimRight(sc.Text(), "\r\n"), "\t", 2)
		if len(tl) != 2 || tl[0] != "time" {
			return nil, fmt.Errorf("tensor: expected time line, got %q", sc.Text())
		}
		t.timeNames[tm] = tl[1]
		// sample header line.
		if !sc.Scan() {
			return nil, fmt.Errorf("tensor: truncated sample header in block %d", tm)
		}
		sh := strings.Split(strings.TrimRight(sc.Text(), "\r\n"), "\t")
		if len(sh) != t.samples+1 {
			return nil, fmt.Errorf("tensor: block %d: %d sample columns, want %d", tm, len(sh)-1, t.samples)
		}
		copy(t.sampleNames, sh[1:])
		for g := 0; g < t.genes; g++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("tensor: truncated gene rows in block %d", tm)
			}
			fields := strings.Split(strings.TrimRight(sc.Text(), "\r\n"), "\t")
			if len(fields) != t.samples+1 {
				return nil, fmt.Errorf("tensor: block %d gene %d: %d values, want %d",
					tm, g, len(fields)-1, t.samples)
			}
			t.geneNames[g] = fields[0]
			for s, f := range fields[1:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("tensor: block %d gene %d sample %d: %v", tm, g, s, err)
				}
				t.Set(g, s, tm, v)
			}
		}
	}
	return t, sc.Err()
}

// Equal reports whether two tensors have identical shape, names and values.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.genes != o.genes || t.samples != o.samples || t.times != o.times {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	for i := range t.geneNames {
		if t.geneNames[i] != o.geneNames[i] {
			return false
		}
	}
	for i := range t.sampleNames {
		if t.sampleNames[i] != o.sampleNames[i] {
			return false
		}
	}
	for i := range t.timeNames {
		if t.timeNames[i] != o.timeNames[i] {
			return false
		}
	}
	return true
}
