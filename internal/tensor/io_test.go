package tensor

import (
	"strings"
	"testing"
)

func TestTensorTSVRoundTrip(t *testing.T) {
	ten, _, err := Generate(GenerateConfig{
		Genes: 6, Samples: 4, Times: 3,
		Clusters: 1, ClusterGenes: 3, ClusterSamples: 2, ClusterTimes: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ten.SetGeneName(0, "YAL001C")
	ten.SetTimeName(2, "late")
	var sb strings.Builder
	if err := ten.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !ten.Equal(back) {
		t.Fatal("round trip mismatch")
	}
}

func TestTensorReadErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"#tensor\tgenes=x\tsamples=2\ttimes=1\n",
		"#tensor\tgenes=1\tsamples=1\ttimes=1\n", // truncated
		"#tensor\tgenes=1\tsamples=1\ttimes=1\nwrong\tt0\n",                      // bad time line
		"#tensor\tgenes=1\tsamples=1\ttimes=1\ntime\tt0\ngene\ts0\ts1\n",         // header width
		"#tensor\tgenes=1\tsamples=1\ttimes=1\ntime\tt0\ngene\ts0\ng0\tnotnum\n", // bad value
		"#tensor\tgenes=2\tsamples=1\ttimes=1\ntime\tt0\ngene\ts0\ng0\t1\n",      // missing row
		"#tensor\tgenes=1\tsamples=2\ttimes=1\ntime\tt0\ngene\ts0\ts1\ng0\t1\n",  // short row
		"#tensor\tgenes=1\tsamples=1\ttimes=0\ntime\tt0\ngene\ts0\ng0\t1\n",      // zero dim
	}
	for i, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestTensorEqual(t *testing.T) {
	a := New(2, 2, 2)
	b := New(2, 2, 2)
	if !a.Equal(b) {
		t.Fatal("identical tensors unequal")
	}
	b.Set(1, 1, 1, 5)
	if a.Equal(b) {
		t.Fatal("different values equal")
	}
	c := New(2, 2, 1)
	if a.Equal(c) {
		t.Fatal("different shapes equal")
	}
	d := New(2, 2, 2)
	d.SetGeneName(0, "x")
	if a.Equal(d) {
		t.Fatal("different names equal")
	}
}
