package tensor

import (
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	ten := New(2, 3, 4)
	if ten.Genes() != 2 || ten.Samples() != 3 || ten.Times() != 4 {
		t.Fatalf("dims %d %d %d", ten.Genes(), ten.Samples(), ten.Times())
	}
	ten.Set(1, 2, 3, 42)
	if ten.At(1, 2, 3) != 42 {
		t.Fatal("Set/At mismatch")
	}
	if ten.At(0, 0, 0) != 0 {
		t.Fatal("zero init broken")
	}
	if ten.GeneName(0) != "g0" || ten.SampleName(2) != "s2" || ten.TimeName(3) != "t3" {
		t.Fatal("default names wrong")
	}
	ten.SetGeneName(0, "YAL001C")
	ten.SetSampleName(0, "wildtype")
	ten.SetTimeName(0, "0min")
	if ten.GeneName(0) != "YAL001C" || ten.SampleName(0) != "wildtype" || ten.TimeName(0) != "0min" {
		t.Fatal("name setters broken")
	}
}

func TestBoundsPanics(t *testing.T) {
	ten := New(2, 2, 2)
	for _, idx := range [][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At%v did not panic", idx)
				}
			}()
			ten.At(idx[0], idx[1], idx[2])
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("negative New did not panic")
		}
	}()
	New(-1, 1, 1)
}

func TestSlices(t *testing.T) {
	ten := New(2, 3, 2)
	// Fill with a distinguishing pattern.
	for g := 0; g < 2; g++ {
		for s := 0; s < 3; s++ {
			for tm := 0; tm < 2; tm++ {
				ten.Set(g, s, tm, float64(100*g+10*s+tm))
			}
		}
	}
	ts := ten.TimeSlice(1)
	if ts.Rows() != 2 || ts.Cols() != 3 {
		t.Fatalf("time slice %dx%d", ts.Rows(), ts.Cols())
	}
	if ts.At(1, 2) != 121 {
		t.Fatalf("time slice value %v", ts.At(1, 2))
	}
	if ts.ColName(2) != "s2" {
		t.Fatalf("time slice col name %q", ts.ColName(2))
	}
	ss := ten.SampleSlice(2)
	if ss.Rows() != 2 || ss.Cols() != 2 {
		t.Fatalf("sample slice %dx%d", ss.Rows(), ss.Cols())
	}
	if ss.At(0, 1) != 21 {
		t.Fatalf("sample slice value %v", ss.At(0, 1))
	}
	if ss.ColName(1) != "t1" {
		t.Fatalf("sample slice col name %q", ss.ColName(1))
	}
}

func TestGenerate(t *testing.T) {
	cfg := GenerateConfig{
		Genes: 30, Samples: 6, Times: 5,
		Clusters: 2, ClusterGenes: 6, ClusterSamples: 3, ClusterTimes: 3,
		Seed: 1,
	}
	ten, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 2 {
		t.Fatalf("planted %d", len(truth))
	}
	// Values strictly positive.
	for g := 0; g < 30; g++ {
		for s := 0; s < 6; s++ {
			for tm := 0; tm < 5; tm++ {
				if ten.At(g, s, tm) <= 0 {
					t.Fatalf("non-positive cell at (%d,%d,%d)", g, s, tm)
				}
			}
		}
	}
	// Planted blocks are multiplicative: ratios along any two samples are
	// constant across the block's genes within each time.
	e := truth[0]
	for _, tm := range e.Times {
		r0 := ten.At(e.Genes[0], e.Samples[0], tm) / ten.At(e.Genes[0], e.Samples[1], tm)
		for _, g := range e.Genes {
			r := ten.At(g, e.Samples[0], tm) / ten.At(g, e.Samples[1], tm)
			if diff := r/r0 - 1; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("planted block not multiplicative: %v vs %v", r, r0)
			}
		}
	}
	// Determinism.
	ten2, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ten.At(3, 3, 3) != ten2.At(3, 3, 3) {
		t.Fatal("nondeterministic under fixed seed")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := Generate(GenerateConfig{Genes: 0, Samples: 1, Times: 1}); err == nil {
		t.Error("zero genes accepted")
	}
	if _, _, err := Generate(GenerateConfig{Genes: 2, Samples: 2, Times: 2, Clusters: 1, ClusterGenes: 5, ClusterSamples: 2, ClusterTimes: 2}); err == nil {
		t.Error("oversized block accepted")
	}
}
