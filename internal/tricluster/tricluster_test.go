package tricluster

import (
	"reflect"
	"testing"

	"regcluster/internal/tensor"
)

func planted(t *testing.T) (*tensor.Tensor, tensor.Embedded3D) {
	t.Helper()
	cfg := tensor.GenerateConfig{
		Genes: 25, Samples: 6, Times: 5,
		Clusters: 1, ClusterGenes: 5, ClusterSamples: 3, ClusterTimes: 3,
		Seed: 7,
	}
	ten, truth, err := tensor.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ten, truth[0]
}

func TestIsTriclusterOnPlantedBlock(t *testing.T) {
	ten, e := planted(t)
	if !IsTricluster(ten, e.Genes, e.Samples, e.Times, 1e-9) {
		t.Fatal("planted multiplicative block rejected")
	}
	// Perturb one cell: the block must fail.
	g, s, tm := e.Genes[0], e.Samples[0], e.Times[0]
	old := ten.At(g, s, tm)
	ten.Set(g, s, tm, old*3)
	if IsTricluster(ten, e.Genes, e.Samples, e.Times, 0.01) {
		t.Fatal("perturbed block accepted")
	}
	ten.Set(g, s, tm, old)
}

func TestMineRecoversPlantedBlock(t *testing.T) {
	ten, e := planted(t)
	got, err := Mine(ten, Params{Epsilon: 0.001, MinG: 5, MinS: 3, MinT: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("nothing mined")
	}
	// The largest result must be exactly the planted block.
	best := got[0]
	if !reflect.DeepEqual(best.Genes, e.Genes) ||
		!reflect.DeepEqual(best.Samples, e.Samples) ||
		!reflect.DeepEqual(best.Times, e.Times) {
		t.Fatalf("planted %+v, mined %+v", e, best)
	}
	for _, tc := range got {
		if !IsTricluster(ten, tc.Genes, tc.Samples, tc.Times, 0.001) {
			t.Fatalf("unsound output %+v", tc)
		}
	}
}

func TestMineTwoBlocks(t *testing.T) {
	cfg := tensor.GenerateConfig{
		Genes: 40, Samples: 8, Times: 6,
		Clusters: 2, ClusterGenes: 6, ClusterSamples: 3, ClusterTimes: 3,
		Seed: 11,
	}
	ten, truth, err := tensor.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(ten, Params{Epsilon: 0.001, MinG: 6, MinS: 3, MinT: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range truth {
		found := false
		for _, tc := range got {
			if reflect.DeepEqual(tc.Genes, e.Genes) &&
				reflect.DeepEqual(tc.Samples, e.Samples) &&
				reflect.DeepEqual(tc.Times, e.Times) {
				found = true
			}
		}
		if !found {
			t.Errorf("planted block %+v not recovered among %d results", e, len(got))
		}
	}
}

func TestTimeAxisCoherenceEnforced(t *testing.T) {
	// Build a tensor where each time slice contains the same 2-D scaling
	// bicluster, but the time profiles are gene-dependent — a valid slice
	// intersection that must FAIL the 3-D check.
	ten := tensor.New(4, 3, 3)
	rg := []float64{1, 2, 3, 4}
	cs := []float64{1, 2, 4}
	for g := 0; g < 4; g++ {
		for s := 0; s < 3; s++ {
			for tm := 0; tm < 3; tm++ {
				// The per-time factor depends on the gene — breaking
				// time-pair ratio coherence across genes.
				dt := 1.0 + float64(tm)*float64(g+1)
				ten.Set(g, s, tm, rg[g]*cs[s]*dt)
			}
		}
	}
	if IsTricluster(ten, []int{0, 1, 2, 3}, []int{0, 1, 2}, []int{0, 1, 2}, 0.01) {
		t.Fatal("gene-dependent time factors must break 3-D coherence")
	}
	got, err := Mine(ten, Params{Epsilon: 0.01, MinG: 4, MinS: 3, MinT: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("miner output an incoherent block: %+v", got)
	}
}

func TestZeroCellsRejected(t *testing.T) {
	ten := tensor.New(3, 3, 3) // all zeros
	if IsTricluster(ten, []int{0, 1}, []int{0, 1}, []int{0, 1}, 1) {
		t.Fatal("zero cells must not form ratio clusters")
	}
}

func TestMineValidation(t *testing.T) {
	ten := tensor.New(3, 3, 3)
	if _, err := Mine(ten, Params{Epsilon: 0.1, MinG: 1, MinS: 2, MinT: 2}); err == nil {
		t.Error("MinG=1 accepted")
	}
	if _, err := Mine(ten, Params{Epsilon: -1, MinG: 2, MinS: 2, MinT: 2}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := Tricluster{Genes: []int{1}, Samples: []int{2}, Times: []int{3}}
	b := Tricluster{Genes: []int{1, 2}, Samples: nil, Times: []int{3}}
	if a.Key() == b.Key() {
		t.Error("key collision")
	}
}
