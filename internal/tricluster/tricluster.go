// Package tricluster implements a triCluster-style 3-D coherent cluster
// miner (Zhao & Zaki — SIGMOD 2005) over the tensor substrate: a tricluster
// (X genes × Y samples × Z times) is valid when the expression ratios are
// coherent along every axis pair — for every fixed time the gene × sample
// block is a scaling bicluster, and for every fixed sample the gene × time
// block is one too.
//
// Mining strategy (the original's slice-and-merge idea): 2-D scaling
// biclusters are mined per time slice with the shared pairwise-window
// engine, then time subsets are grown depth-first by intersecting the
// slice-wise biclusters; every candidate is verified against the full 3-D
// coherence definition before output, so results are always sound.
package tricluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"regcluster/internal/scaling"
	"regcluster/internal/tensor"
)

// Params configures the miner.
type Params struct {
	// Epsilon is the multiplicative ratio tolerance along every axis.
	Epsilon float64
	// MinG, MinS, MinT are the minimum block dimensions.
	MinG, MinS, MinT int
	// MaxNodes caps the per-slice 2-D search (0 = a generous default).
	MaxNodes int
}

// Tricluster is one mined block (all axes ascending).
type Tricluster struct {
	Genes, Samples, Times []int
}

// Key returns a canonical identity string.
func (tc Tricluster) Key() string {
	var sb strings.Builder
	for _, xs := range [][]int{tc.Genes, tc.Samples, tc.Times} {
		for _, x := range xs {
			sb.WriteString(strconv.Itoa(x))
			sb.WriteByte(',')
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// IsTricluster verifies the full 3-D coherence definition: every sample-pair
// ratio window per time, and every time-pair ratio window per sample, over
// the gene set.
func IsTricluster(t *tensor.Tensor, genes, samples, times []int, eps float64) bool {
	// Sample pairs within each time.
	for _, tm := range times {
		for a := 0; a < len(samples); a++ {
			for b := a + 1; b < len(samples); b++ {
				if !ratioWindowOK(genes, eps, func(g int) (float64, float64) {
					return t.At(g, samples[a], tm), t.At(g, samples[b], tm)
				}) {
					return false
				}
			}
		}
	}
	// Time pairs within each sample.
	for _, s := range samples {
		for a := 0; a < len(times); a++ {
			for b := a + 1; b < len(times); b++ {
				if !ratioWindowOK(genes, eps, func(g int) (float64, float64) {
					return t.At(g, s, times[a]), t.At(g, s, times[b])
				}) {
					return false
				}
			}
		}
	}
	return true
}

func ratioWindowOK(genes []int, eps float64, cell func(g int) (num, den float64)) bool {
	lo, hi := 0.0, 0.0
	for i, g := range genes {
		num, den := cell(g)
		if den == 0 {
			return false
		}
		r := num / den
		if i == 0 {
			lo, hi = r, r
			continue
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return len(genes) == 0 || scaling.RatioFit(lo, hi, eps)
}

// Mine discovers triclusters of t under p. Results are deduplicated and
// sorted by descending volume.
func Mine(t *tensor.Tensor, p Params) ([]Tricluster, error) {
	if p.MinG < 2 || p.MinS < 2 || p.MinT < 2 {
		return nil, fmt.Errorf("tricluster: minimum dimensions must be >= 2, got %d/%d/%d",
			p.MinG, p.MinS, p.MinT)
	}
	if p.Epsilon < 0 {
		return nil, fmt.Errorf("tricluster: negative epsilon")
	}
	maxNodes := p.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1 << 20
	}

	// Phase 1: 2-D scaling biclusters per time slice.
	perTime := make([][]scaling.Bicluster, t.Times())
	for tm := 0; tm < t.Times(); tm++ {
		slice := t.TimeSlice(tm)
		bs, err := scaling.Mine(slice, scaling.Params{
			Epsilon: p.Epsilon, MinG: p.MinG, MinC: p.MinS, MaxNodes: maxNodes,
		})
		if err != nil {
			return nil, err
		}
		perTime[tm] = bs
	}

	// Phase 2: depth-first growth over ascending time subsets, intersecting
	// slice biclusters.
	e := &engine{t: t, p: p, perTime: perTime, seen: map[string]bool{}}
	for tm := 0; tm+p.MinT <= t.Times(); tm++ {
		for _, b := range perTime[tm] {
			e.grow([]int{tm}, b.Genes, b.Conds)
		}
	}
	sort.Slice(e.out, func(a, b int) bool {
		va := len(e.out[a].Genes) * len(e.out[a].Samples) * len(e.out[a].Times)
		vb := len(e.out[b].Genes) * len(e.out[b].Samples) * len(e.out[b].Times)
		if va != vb {
			return va > vb
		}
		return e.out[a].Key() < e.out[b].Key()
	})
	return e.out, nil
}

type engine struct {
	t       *tensor.Tensor
	p       Params
	perTime [][]scaling.Bicluster
	seen    map[string]bool
	out     []Tricluster
}

func (e *engine) grow(times, genes, samples []int) {
	if len(genes) < e.p.MinG || len(samples) < e.p.MinS {
		return
	}
	if len(times) >= e.p.MinT {
		// Verify the full 3-D definition (time-pair coherence is not
		// implied by the per-slice mining).
		if IsTricluster(e.t, genes, samples, times, e.p.Epsilon) {
			tc := Tricluster{
				Genes:   append([]int(nil), genes...),
				Samples: append([]int(nil), samples...),
				Times:   append([]int(nil), times...),
			}
			key := tc.Key()
			if !e.seen[key] {
				e.seen[key] = true
				e.out = append(e.out, tc)
			}
		}
	}
	last := times[len(times)-1]
	for tm := last + 1; tm < e.t.Times(); tm++ {
		if len(times)+1+(e.t.Times()-tm-1) < e.p.MinT {
			break
		}
		for _, b := range e.perTime[tm] {
			g := intersect(genes, b.Genes)
			if len(g) < e.p.MinG {
				continue
			}
			s := intersect(samples, b.Conds)
			if len(s) < e.p.MinS {
				continue
			}
			e.grow(append(append([]int(nil), times...), tm), g, s)
		}
	}
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
