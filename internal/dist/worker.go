package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
)

// WorkerConfig tunes a worker agent.
type WorkerConfig struct {
	Coordinator string // base URL of the coordinator, e.g. http://host:8080
	Name        string // advertised name (host:port or any label)
	Slots       int    // concurrent subtree leases to hold; default 1
	Client      *http.Client
	Logf        func(format string, args ...any)
}

// errLeaseRevoked reports that the coordinator no longer recognises the
// lease a heartbeat was for — the unit has moved on without us.
var errLeaseRevoked = errors.New("dist: lease revoked")

// Worker is the agent side of the protocol: it registers with a
// coordinator, long-polls for subtree leases, replicates datasets by
// content hash (verifying the bytes actually hash to the advertised id
// before mining them), mines each leased subtree uncapped, and ships
// clusters back in heartbeat batches carrying a subtree checkpoint.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	mu       sync.Mutex
	id       string
	hb       time.Duration
	datasets map[string]*matrix.Matrix
	models   map[string][]*core.RWaveModel

	// Lifetime counters, exported for tests and diagnostics.
	Completed  atomic.Int64 // subtrees mined to a successful final heartbeat
	Abandoned  atomic.Int64 // leases given up (revoked, cancelled, or simulated death)
	Nacked     atomic.Int64 // leases rejected before mining (bad replica, bad params)
	Replicated atomic.Int64 // datasets fetched and hash-verified
}

// NewWorker builds a worker agent from cfg.
func NewWorker(cfg WorkerConfig) *Worker {
	w := &Worker{
		cfg:      cfg,
		client:   cfg.Client,
		datasets: make(map[string]*matrix.Matrix),
		models:   make(map[string][]*core.RWaveModel),
	}
	if w.client == nil {
		w.client = &http.Client{}
	}
	return w
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// ID returns the coordinator-assigned worker id (empty before registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Run registers with the coordinator (retrying until ctx is cancelled) and
// serves leases until ctx is cancelled. A cancelled context is a clean stop
// and returns nil; any lease in flight at that moment is abandoned and will
// be re-issued by the coordinator after its TTL.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	slots := w.cfg.Slots
	if slots <= 0 {
		slots = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		resp, err := postJSON[registerResponse](ctx, w.client, w.cfg.Coordinator+"/dist/register",
			registerRequest{Name: w.cfg.Name})
		if err == nil {
			hb := time.Duration(resp.HeartbeatMS) * time.Millisecond
			if hb <= 0 {
				hb = time.Second
			}
			w.mu.Lock()
			w.id, w.hb = resp.Worker, hb
			w.mu.Unlock()
			w.logf("dist: registered as %s with %s", resp.Worker, w.cfg.Coordinator)
			return nil
		}
		w.logf("dist: register with %s: %v (retrying)", w.cfg.Coordinator, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (w *Worker) loop(ctx context.Context) {
	for ctx.Err() == nil {
		resp, err := postJSON[leaseResponse](ctx, w.client, w.cfg.Coordinator+"/dist/lease",
			leaseRequest{Worker: w.ID(), WaitMS: 2000})
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		if resp.Lease == nil {
			continue
		}
		w.process(ctx, resp.Lease)
	}
}

// process serves one lease end to end: replicate + verify the dataset,
// build (or reuse) the RWave models, mine the subtree uncapped, and ship
// clusters in heartbeat batches with the first lease.Skip suppressed.
func (w *Worker) process(ctx context.Context, lease *Lease) {
	mat, err := w.replica(ctx, lease.Dataset)
	if err != nil {
		w.logf("dist: lease %s: %v", lease.ID, err)
		w.Nacked.Add(1)
		w.nack(ctx, lease, err)
		return
	}
	models, err := w.modelsFor(mat, lease)
	if err != nil {
		w.logf("dist: lease %s: models: %v", lease.ID, err)
		w.Nacked.Add(1)
		w.nack(ctx, lease, err)
		return
	}

	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		bufMu   sync.Mutex
		buf     []core.SubtreeCluster
		flushMu sync.Mutex
		shipped = lease.Skip
		revoked atomic.Bool
	)
	// flush ships everything buffered so far as one heartbeat. The subtree
	// checkpoint watermark commits the batch: the coordinator accepts it
	// only if it extends the prefix it already verified.
	flush := func(done bool, stats *core.Stats) error {
		flushMu.Lock()
		defer flushMu.Unlock()
		bufMu.Lock()
		batch := buf
		buf = nil
		bufMu.Unlock()
		resp, err := postJSON[heartbeatResponse](ctx, w.client, w.cfg.Coordinator+"/dist/heartbeat",
			heartbeatRequest{
				Worker:   w.ID(),
				Lease:    lease.ID,
				Clusters: batch,
				Ckpt:     SubtreeCheckpoint{Cond: lease.Cond, Delivered: shipped + len(batch)},
				Done:     done,
				Stats:    stats,
			})
		if err != nil {
			bufMu.Lock()
			buf = append(batch, buf...) // unshipped; retry in order next time
			bufMu.Unlock()
			return err
		}
		shipped += len(batch)
		if resp.Revoked {
			revoked.Store(true)
			return errLeaseRevoked
		}
		return nil
	}

	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.mu.Lock()
		interval := w.hb
		w.mu.Unlock()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-mctx.Done():
				return
			case <-t.C:
			}
			if err := flush(false, nil); err != nil {
				if revoked.Load() {
					cancel() // the unit moved on; stop mining it
					return
				}
				// Transient transport failure: batches stay buffered and the
				// next tick retries. If the outage outlives the TTL the
				// coordinator re-leases — that is the recovery path.
			}
		}
	}()

	emitted := 0
	aborted := false
	stats, err := core.MineSubtreeFunc(mctx, mat, lease.Params, lease.Cond, models, func(sc core.SubtreeCluster) bool {
		if ferr := faultinject.Hook("dist.worker.mine"); ferr != nil {
			aborted = true // simulated mid-lease death: vanish without a nack
			return false
		}
		emitted++
		if emitted <= lease.Skip {
			return true
		}
		bufMu.Lock()
		buf = append(buf, sc)
		bufMu.Unlock()
		return true
	})
	close(hbStop)
	hbWG.Wait()

	if aborted || revoked.Load() || err != nil || stats.Truncated {
		// Abandon silently: no final heartbeat, no nack. The coordinator's
		// TTL revocation re-queues the unit at the shipped watermark.
		w.Abandoned.Add(1)
		return
	}
	var ferr error
	for attempt := 0; attempt < 3; attempt++ {
		if ferr = flush(true, &stats); ferr == nil {
			w.Completed.Add(1)
			return
		}
		if revoked.Load() || ctx.Err() != nil {
			break
		}
		time.Sleep(50 * time.Millisecond << attempt)
	}
	w.Abandoned.Add(1)
	w.logf("dist: lease %s: final heartbeat failed: %v", lease.ID, ferr)
}

// nack rejects a lease the worker cannot serve, returning it to the queue
// immediately instead of waiting out the TTL.
func (w *Worker) nack(ctx context.Context, lease *Lease, cause error) {
	_, err := postJSON[heartbeatResponse](ctx, w.client, w.cfg.Coordinator+"/dist/heartbeat",
		heartbeatRequest{Worker: w.ID(), Lease: lease.ID, Error: cause.Error()})
	if err != nil {
		w.logf("dist: lease %s: nack failed: %v", lease.ID, err)
	}
}

// replica returns the dataset for a content hash, fetching it from the
// coordinator on first use. The fetched bytes are re-hashed and must match
// the advertised id exactly — a worker never mines data it cannot verify.
func (w *Worker) replica(ctx context.Context, id string) (*matrix.Matrix, error) {
	w.mu.Lock()
	if m := w.datasets[id]; m != nil {
		w.mu.Unlock()
		return m, nil
	}
	w.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/dist/datasets/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: replica %s: %w", shortHash(id), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: replica %s: %s", shortHash(id), resp.Status)
	}
	m, err := matrix.ReadTSV(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: replica %s: %w", shortHash(id), err)
	}
	m.FillNaN()
	if got := m.Hash(); got != id {
		return nil, fmt.Errorf("dist: replica hash %s does not match advertised %s; refusing corrupt data",
			shortHash(got), shortHash(id))
	}
	w.mu.Lock()
	w.datasets[id] = m
	w.mu.Unlock()
	w.Replicated.Add(1)
	w.logf("dist: replicated dataset %s (%dx%d)", shortHash(id), m.Rows(), m.Cols())
	return m, nil
}

func (w *Worker) modelsFor(mat *matrix.Matrix, lease *Lease) ([]*core.RWaveModel, error) {
	key := core.ModelKey(lease.Dataset, lease.Params)
	w.mu.Lock()
	if ms := w.models[key]; ms != nil {
		w.mu.Unlock()
		return ms, nil
	}
	w.mu.Unlock()
	ms, err := core.BuildModels(mat, lease.Params, nil)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.models[key] = ms
	w.mu.Unlock()
	return ms, nil
}

func shortHash(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

func postJSON[T any](ctx context.Context, cl *http.Client, url string, body any) (T, error) {
	var out T
	payload, err := json.Marshal(body)
	if err != nil {
		return out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}
