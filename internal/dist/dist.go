// Package dist turns the subtree work units of internal/core into a
// coordinator/worker protocol over HTTP.
//
// A coordinator splits a mining job into per-condition level-1 subtrees
// (core.SubtreeOrder), leases them to registered workers, and folds the
// streamed partial results through core.SubtreeMerger — the same
// reconciliation accounting the in-process parallel engine uses — so the
// distributed output is byte-identical to a single-node run for any number
// or placement of workers.
//
// The protocol is deliberately small and pull-based:
//
//	POST /dist/register            worker announces itself, learns its id and
//	                               the heartbeat interval
//	POST /dist/lease               long-poll for the next subtree lease
//	POST /dist/heartbeat           ship a batch of clusters + a subtree
//	                               checkpoint; also carries completion (Done)
//	                               and rejection (Error) of a lease
//	GET  /dist/datasets/{id}       replicate a dataset by content hash (TSV)
//
// A lease names a subtree (condition index), the dataset content hash, the
// mining Params, and a resume watermark Skip — the number of the subtree's
// clusters the coordinator already holds from a previous holder of the same
// unit. Workers mine the subtree uncapped (global MaxNodes/MaxClusters are
// enforced by the coordinator's merger), suppress the first Skip clusters,
// and ship the rest in heartbeat batches. Every heartbeat extends the lease
// TTL; a lease whose TTL lapses is revoked and its unit re-queued with Skip
// advanced to what was already received, so a SIGKILLed worker costs only
// the unshipped tail of its subtree.
package dist

import (
	"regcluster/internal/core"
)

// Lease is a grant of one subtree work unit to one worker.
type Lease struct {
	ID      string      `json:"id"`
	Run     string      `json:"run"`     // coordinator-side run (job attempt) id
	Dataset string      `json:"dataset"` // content hash; replicate via GET /dist/datasets/{id}
	Params  core.Params `json:"params"`
	Cond    int         `json:"cond"`   // starting condition of the subtree
	Skip    int         `json:"skip"`   // clusters already received; ship only later ones
	TTLMS   int64       `json:"ttl_ms"` // lease expires this long after the last heartbeat
}

// SubtreeCheckpoint is the progress watermark a worker ships with every
// heartbeat: after the accompanying batch is applied, the coordinator holds
// the first Delivered clusters of subtree Cond. The coordinator verifies the
// watermark against what it has actually received, so a lost or duplicated
// heartbeat cannot silently corrupt a unit.
type SubtreeCheckpoint struct {
	Cond      int `json:"cond"`
	Delivered int `json:"delivered"`
}

type registerRequest struct {
	Name string `json:"name"` // advertised worker name (host:port or label)
}

type registerResponse struct {
	Worker      string `json:"worker"`       // coordinator-assigned worker id
	HeartbeatMS int64  `json:"heartbeat_ms"` // send heartbeats at least this often
}

type leaseRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms"` // long-poll: hold the request up to this long
}

type leaseResponse struct {
	Lease *Lease `json:"lease"` // null when no work was available within WaitMS
}

type heartbeatRequest struct {
	Worker   string                `json:"worker"`
	Lease    string                `json:"lease"`
	Clusters []core.SubtreeCluster `json:"clusters,omitempty"`
	Ckpt     SubtreeCheckpoint     `json:"ckpt"`
	Done     bool                  `json:"done,omitempty"`  // final heartbeat: subtree complete
	Stats    *core.Stats           `json:"stats,omitempty"` // isolated subtree Stats, with Done
	Error    string                `json:"error,omitempty"` // nack: worker rejects the lease
}

type heartbeatResponse struct {
	OK      bool `json:"ok"`
	Revoked bool `json:"revoked,omitempty"` // lease no longer held; stop mining it
}

// EventKind labels coordinator lifecycle events for the host's journal and
// metrics.
type EventKind string

const (
	EventWorkerJoined    EventKind = "worker_joined"
	EventLeaseIssued     EventKind = "lease_issued"
	EventLeaseCompleted  EventKind = "lease_completed"
	EventLeaseReassigned EventKind = "lease_reassigned" // revoked (TTL or nack) and re-queued
)

// Event is one coordinator lifecycle notification. Job is the host-side job
// id the run was started for (empty for worker-scoped events).
type Event struct {
	Kind   EventKind
	Worker string
	Addr   string // advertised worker name (EventWorkerJoined)
	Job    string
	Lease  string
	Cond   int
	Skip   int    // received watermark at issue/reassign time
	Reason string // why a lease was reassigned: "expired" or the nack error
}
