package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
	"regcluster/internal/obs"
)

// DatasetSource resolves a content hash to a matrix for replication. The
// service's registry satisfies it; tests use a map.
type DatasetSource interface {
	Dataset(id string) (*matrix.Matrix, bool)
}

// Config tunes a Coordinator. The zero value is usable.
type Config struct {
	// LeaseTTL is how long a remote lease survives without a heartbeat
	// before it is revoked and re-queued. Default 5s.
	LeaseTTL time.Duration
	// LocalWorkers is the number of in-process mining loops each run gets
	// when MineRequest does not override it: 0 means 1 (a coordinator can
	// always make progress alone), negative means none (remote workers
	// only).
	LocalWorkers int
	// MaxUnitFailures bounds explicit worker rejections (nacks) of one
	// subtree before the whole run fails. Default 3. TTL expiries do not
	// count — a dead worker says nothing about the unit.
	MaxUnitFailures int
	// Datasets serves replicas for GET /dist/datasets/{id}.
	Datasets DatasetSource
	// Events, when set, observes worker and lease lifecycle transitions.
	// Called without internal locks held; must be safe for concurrent use.
	Events func(Event)
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)
}

// Coordinator owns the distributed side of mining runs: it turns each run
// into per-condition subtree work units, leases them to workers (remote over
// HTTP, or in-process loops), enforces heartbeat TTLs, and folds completed
// units through a core.SubtreeMerger so the output is byte-identical to a
// single-node run. One Coordinator serves any number of concurrent runs.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	runs      map[string]*run
	leases    map[string]*leaseState
	workers   map[string]*workerInfo
	runSeq    int
	leaseSeq  int
	workerSeq int

	joined     atomic.Int64
	issued     atomic.Int64
	reassigned atomic.Int64
	completed  atomic.Int64
}

type workerInfo struct {
	id       string
	name     string
	lastSeen time.Time
}

// run is one distributed mining attempt (one jobManager.mine call).
type run struct {
	id      string
	job     string
	dataset string
	m       *matrix.Matrix
	p       core.Params
	models  []*core.RWaveModel
	ctx     context.Context
	span    *obs.Span

	queue []int         // undispatched subtree conditions, dispatch order
	units map[int]*unit // every subtree of this run, keyed by condition

	completed chan int   // conditions whose unit just completed (buffered)
	failed    chan error // first fatal unit error (buffered 1)
}

func (r *run) fail(err error) {
	select {
	case r.failed <- err:
	default:
	}
}

// unit is one subtree work item. All fields are guarded by Coordinator.mu
// until complete is set; after that the run goroutine owns received/stats.
type unit struct {
	cond     int
	received []core.SubtreeCluster // verified prefix of the subtree's clusters
	stats    core.Stats
	complete bool
	leaseID  string // current lease, "" when queued or complete
	failures int    // explicit nacks
}

type leaseState struct {
	id      string
	run     *run
	unit    *unit
	worker  string
	local   bool // in-process lease: exempt from TTL expiry
	skip    int  // received watermark when issued
	expires time.Time
	span    *obs.Span
}

// NewCoordinator builds a Coordinator from cfg.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg,
		runs:    make(map[string]*run),
		leases:  make(map[string]*leaseState),
		workers: make(map[string]*workerInfo),
	}
}

func (c *Coordinator) ttl() time.Duration {
	if c.cfg.LeaseTTL > 0 {
		return c.cfg.LeaseTTL
	}
	return 5 * time.Second
}

func (c *Coordinator) maxFailures() int {
	if c.cfg.MaxUnitFailures > 0 {
		return c.cfg.MaxUnitFailures
	}
	return 3
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) notify(ev Event) {
	if c.cfg.Events != nil {
		c.cfg.Events(ev)
	}
}

// WorkersConnected counts workers heard from within the last three TTLs.
func (c *Coordinator) WorkersConnected() int {
	cutoff := time.Now().Add(-3 * c.ttl())
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			n++
		}
	}
	return n
}

// ActiveLeases counts currently outstanding leases across all runs.
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// Counters returns the lifetime worker/lease counters for metrics export.
func (c *Coordinator) Counters() (joined, issued, reassigned, completed int64) {
	return c.joined.Load(), c.issued.Load(), c.reassigned.Load(), c.completed.Load()
}

// MineRequest describes one distributed mining run.
type MineRequest struct {
	Job       string         // host-side job id, for events and lease spans
	Matrix    *matrix.Matrix // the dataset (coordinator-side copy)
	DatasetID string         // content hash workers replicate by
	Params    core.Params
	Models    []*core.RWaveModel    // optional prebuilt RWave models
	Resume    *core.Checkpoint      // optional resume position
	Ck        core.CheckpointConfig // checkpoint emission, as in MineParallelFuncResumable
	Span      *obs.Span             // optional trace parent
	// LocalWorkers overrides Config.LocalWorkers for this run when nonzero
	// (negative means none).
	LocalWorkers int
}

// Mine runs req distributed and streams merged clusters to visit in exact
// sequential order. It blocks until the run settles and returns Stats
// byte-identical to a single-node MineParallelFuncResumable of the same
// request, regardless of worker count, placement, or mid-run worker loss.
func (c *Coordinator) Mine(ctx context.Context, req MineRequest, visit core.Visitor) (core.Stats, error) {
	if req.Matrix == nil {
		return core.Stats{}, fmt.Errorf("dist: MineRequest requires a matrix")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	models := req.Models
	if models == nil {
		var err error
		if models, err = core.BuildModels(req.Matrix, req.Params, nil); err != nil {
			return core.Stats{}, err
		}
	}
	merger, err := core.NewSubtreeMerger(ctx, req.Matrix, req.Params, models, visit, req.Resume, req.Ck)
	if err != nil {
		return core.Stats{}, err
	}
	merger.SetSpan(req.Span)
	if merger.Done() { // checkpoint already covers the whole run
		return merger.Result()
	}
	order, err := core.SubtreeOrder(req.Matrix, req.Params, models)
	if err != nil {
		return core.Stats{}, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	r := c.startRun(runCtx, req, models, merger.NextCond(), order)
	var wg sync.WaitGroup
	defer func() {
		cancel()
		c.finishRun(r)
		wg.Wait()
	}()

	nLocal := req.LocalWorkers
	if nLocal == 0 {
		nLocal = c.cfg.LocalWorkers
	}
	if nLocal == 0 {
		nLocal = 1
	}
	for i := 0; i < nLocal; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.localWorker(runCtx, r)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.revoker(runCtx, r)
	}()

	for !merger.Done() {
		select {
		case cond := <-r.completed:
			c.mu.Lock()
			u := r.units[cond]
			part := &core.SubtreePartial{Cond: cond, Clusters: u.received, Stats: u.stats}
			c.mu.Unlock()
			if _, err := merger.Offer(part); err != nil {
				return core.Stats{}, err
			}
		case err := <-r.failed:
			return core.Stats{}, err
		case <-ctx.Done():
			return core.Stats{}, ctx.Err()
		}
	}
	return merger.Result()
}

func (c *Coordinator) startRun(ctx context.Context, req MineRequest, models []*core.RWaveModel, start int, order []int) *run {
	queue := make([]int, 0, len(order))
	for _, cond := range order {
		if cond >= start {
			queue = append(queue, cond)
		}
	}
	units := make(map[int]*unit, len(queue))
	for _, cond := range queue {
		units[cond] = &unit{cond: cond}
	}
	r := &run{
		job:       req.Job,
		dataset:   req.DatasetID,
		m:         req.Matrix,
		p:         req.Params,
		models:    models,
		ctx:       ctx,
		span:      req.Span,
		queue:     queue,
		units:     units,
		completed: make(chan int, len(queue)+1),
		failed:    make(chan error, 1),
	}
	c.mu.Lock()
	c.runSeq++
	r.id = fmt.Sprintf("run-%06d", c.runSeq)
	c.runs[r.id] = r
	c.mu.Unlock()
	c.logf("dist: run %s job %q: %d subtree units", r.id, r.job, len(queue))
	return r
}

func (c *Coordinator) finishRun(r *run) {
	c.mu.Lock()
	delete(c.runs, r.id)
	for id, ls := range c.leases {
		if ls.run == r {
			delete(c.leases, id)
			endLeaseSpan(ls, "run_finished")
		}
	}
	c.mu.Unlock()
}

func endLeaseSpan(ls *leaseState, outcome string) {
	if ls.span == nil {
		return
	}
	ls.span.SetAttr("outcome", outcome)
	ls.span.End()
}

// take issues the next queued subtree lease to worker. When only is non-nil
// the search is restricted to that run (local loops serve their own run);
// otherwise runs are scanned in id order for determinism. Returns nil when
// no work is available right now.
func (c *Coordinator) take(worker string, local bool, only *run) *leaseState {
	now := time.Now()
	c.mu.Lock()
	var r *run
	if only != nil {
		if only.ctx.Err() == nil && len(only.queue) > 0 {
			r = only
		}
	} else {
		ids := make([]string, 0, len(c.runs))
		for id := range c.runs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			cand := c.runs[id]
			if cand.ctx.Err() == nil && len(cand.queue) > 0 {
				r = cand
				break
			}
		}
	}
	if r == nil {
		c.mu.Unlock()
		return nil
	}
	cond := r.queue[0]
	r.queue = r.queue[1:]
	u := r.units[cond]
	c.leaseSeq++
	ls := &leaseState{
		id:      fmt.Sprintf("lease-%06d", c.leaseSeq),
		run:     r,
		unit:    u,
		worker:  worker,
		local:   local,
		skip:    len(u.received),
		expires: now.Add(c.ttl()),
	}
	if sp := r.span.Start("lease"); sp != nil {
		sp.SetAttr("lease", ls.id)
		sp.SetAttr("worker", worker)
		sp.SetInt("cond", int64(cond))
		sp.SetInt("skip", int64(ls.skip))
		ls.span = sp
	}
	u.leaseID = ls.id
	c.leases[ls.id] = ls
	c.issued.Add(1)
	ev := Event{Kind: EventLeaseIssued, Worker: worker, Job: r.job, Lease: ls.id, Cond: cond, Skip: ls.skip}
	c.mu.Unlock()
	c.notify(ev)
	return ls
}

// wire renders a leaseState as the Lease handed to its holder.
func (c *Coordinator) wire(ls *leaseState) *Lease {
	return &Lease{
		ID:      ls.id,
		Run:     ls.run.id,
		Dataset: ls.run.dataset,
		Params:  ls.run.p,
		Cond:    ls.unit.cond,
		Skip:    ls.skip,
		TTLMS:   c.ttl().Milliseconds(),
	}
}

// revokeLocked drops ls and re-queues its unit at the front of the run's
// queue with the verified watermark preserved, so the next holder resumes
// from what the coordinator already received. Caller holds c.mu.
func (c *Coordinator) revokeLocked(ls *leaseState, reason string) Event {
	delete(c.leases, ls.id)
	u, r := ls.unit, ls.run
	u.leaseID = ""
	r.queue = append([]int{u.cond}, r.queue...)
	c.reassigned.Add(1)
	if ls.span != nil {
		ls.span.SetAttr("reason", reason)
	}
	endLeaseSpan(ls, "revoked")
	return Event{Kind: EventLeaseReassigned, Worker: ls.worker, Job: r.job, Lease: ls.id,
		Cond: u.cond, Skip: len(u.received), Reason: reason}
}

// progress applies one heartbeat: batch append with watermark verification,
// TTL extension, completion, or nack. It is the single merge entry point for
// local and remote workers alike.
func (c *Coordinator) progress(req heartbeatRequest) heartbeatResponse {
	now := time.Now()
	c.mu.Lock()
	if w := c.workers[req.Worker]; w != nil {
		w.lastSeen = now
	}
	ls, ok := c.leases[req.Lease]
	if !ok {
		c.mu.Unlock()
		return heartbeatResponse{Revoked: true}
	}
	r, u := ls.run, ls.unit

	if req.Error != "" { // worker rejects the lease
		ev := c.revokeLocked(ls, req.Error)
		u.failures++
		failed := u.failures >= c.maxFailures()
		var runErr error
		if failed {
			runErr = fmt.Errorf("dist: subtree %d rejected %d times, last: %s", u.cond, u.failures, req.Error)
		}
		c.mu.Unlock()
		c.logf("dist: lease %s (cond %d) nacked by %s: %s", req.Lease, u.cond, req.Worker, req.Error)
		c.notify(ev)
		if failed {
			r.fail(runErr)
		}
		return heartbeatResponse{OK: true}
	}

	if req.Ckpt.Cond != u.cond || req.Ckpt.Delivered != len(u.received)+len(req.Clusters) {
		// A shipment that does not extend the verified prefix exactly —
		// replayed, reordered, or from a confused holder. Revoke; the unit
		// is re-leased from the watermark that did verify.
		ev := c.revokeLocked(ls, "watermark mismatch")
		c.mu.Unlock()
		c.logf("dist: lease %s (cond %d): watermark %d/%d does not extend received %d",
			req.Lease, u.cond, req.Ckpt.Delivered, len(req.Clusters), ev.Skip)
		c.notify(ev)
		return heartbeatResponse{Revoked: true}
	}

	u.received = append(u.received, req.Clusters...)
	ls.expires = now.Add(c.ttl())
	if ls.span != nil && len(req.Clusters) > 0 {
		ls.span.Add("clusters", int64(len(req.Clusters)))
	}
	if !req.Done {
		c.mu.Unlock()
		return heartbeatResponse{OK: true}
	}

	if req.Stats == nil || req.Stats.Truncated {
		// A final heartbeat without complete isolated Stats cannot be merged.
		ev := c.revokeLocked(ls, "incomplete final heartbeat")
		c.mu.Unlock()
		c.notify(ev)
		return heartbeatResponse{Revoked: true}
	}
	u.stats = *req.Stats
	u.complete = true
	u.leaseID = ""
	delete(c.leases, ls.id)
	endLeaseSpan(ls, "completed")
	c.completed.Add(1)
	ev := Event{Kind: EventLeaseCompleted, Worker: req.Worker, Job: r.job, Lease: ls.id,
		Cond: u.cond, Skip: len(u.received)}
	c.mu.Unlock()
	c.notify(ev)
	r.completed <- u.cond // buffered to unit count; never blocks
	return heartbeatResponse{OK: true}
}

// revoker expires remote leases whose holders stopped heartbeating.
func (c *Coordinator) revoker(ctx context.Context, r *run) {
	tick := c.ttl() / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		var evs []Event
		c.mu.Lock()
		for _, ls := range c.leases {
			if ls.run != r || ls.local {
				continue
			}
			if now.After(ls.expires) {
				evs = append(evs, c.revokeLocked(ls, "expired"))
			}
		}
		c.mu.Unlock()
		for _, ev := range evs {
			c.logf("dist: lease %s (cond %d) held by %s expired; re-queued at skip %d",
				ev.Lease, ev.Cond, ev.Worker, ev.Skip)
			c.notify(ev)
		}
	}
}

// localWorker is one in-process mining loop bound to a single run. Local
// leases go through the same lease/heartbeat machinery as remote ones, so
// there is exactly one merge path.
func (c *Coordinator) localWorker(ctx context.Context, r *run) {
	for ctx.Err() == nil {
		ls := c.take("local", true, r)
		if ls == nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		c.mineLocal(ctx, r, ls)
	}
}

func (c *Coordinator) mineLocal(ctx context.Context, r *run, ls *leaseState) {
	var batch []core.SubtreeCluster
	emitted := 0
	stats, err := core.MineSubtreeFunc(ctx, r.m, r.p, ls.unit.cond, r.models, func(sc core.SubtreeCluster) bool {
		emitted++
		if emitted <= ls.skip {
			return true
		}
		batch = append(batch, sc)
		return true
	})
	if err != nil { // context cancelled: release the lease, keep the unit re-issuable
		c.mu.Lock()
		var ev Event
		emit := false
		if cur := c.leases[ls.id]; cur == ls {
			ev = c.revokeLocked(ls, "cancelled")
			emit = true
		}
		c.mu.Unlock()
		if emit {
			c.notify(ev)
		}
		return
	}
	c.progress(heartbeatRequest{
		Worker:   ls.worker,
		Lease:    ls.id,
		Clusters: batch,
		Ckpt:     SubtreeCheckpoint{Cond: ls.unit.cond, Delivered: ls.skip + len(batch)},
		Done:     true,
		Stats:    &stats,
	})
}

// Routes registers the coordinator's HTTP surface on mux.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/register", c.handleRegister)
	mux.HandleFunc("POST /dist/lease", c.handleLease)
	mux.HandleFunc("POST /dist/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /dist/datasets/{id}", c.handleDataset)
}

func distJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.workerSeq++
	wi := &workerInfo{id: fmt.Sprintf("w-%06d", c.workerSeq), name: req.Name, lastSeen: time.Now()}
	c.workers[wi.id] = wi
	c.mu.Unlock()
	c.joined.Add(1)
	c.logf("dist: worker %s joined (%s)", wi.id, req.Name)
	c.notify(Event{Kind: EventWorkerJoined, Worker: wi.id, Addr: req.Name})
	distJSON(w, http.StatusOK, registerResponse{Worker: wi.id, HeartbeatMS: (c.ttl() / 3).Milliseconds()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	c.touch(req.Worker)
	deadline := time.Now().Add(wait)
	var ls *leaseState
	for {
		if ls = c.take(req.Worker, false, nil); ls != nil {
			break
		}
		if r.Context().Err() != nil || !time.Now().Before(deadline) {
			break
		}
		select {
		case <-r.Context().Done():
		case <-time.After(25 * time.Millisecond):
		}
	}
	resp := leaseResponse{}
	if ls != nil {
		resp.Lease = c.wire(ls)
	}
	distJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) touch(worker string) {
	c.mu.Lock()
	if w := c.workers[worker]; w != nil {
		w.lastSeen = time.Now()
	}
	c.mu.Unlock()
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	distJSON(w, http.StatusOK, c.progress(req))
}

func (c *Coordinator) handleDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if c.cfg.Datasets == nil {
		http.Error(w, "no dataset source", http.StatusNotFound)
		return
	}
	m, ok := c.cfg.Datasets.Dataset(id)
	if !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if err := m.WriteTSV(w); err != nil {
		c.logf("dist: replicating %s: %v", id, err)
	}
}
