package dist

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
	"regcluster/internal/synthetic"
)

func distTestMatrix(t *testing.T) (*matrix.Matrix, core.Params) {
	t.Helper()
	mm, _, err := synthetic.Generate(synthetic.Config{Genes: 110, Conds: 12, Clusters: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return mm, core.Params{MinG: 4, MinC: 4, Gamma: 0.08, Epsilon: 0.05}
}

// mapSource serves replicas from a map, content-addressed like the registry.
type mapSource map[string]*matrix.Matrix

func (s mapSource) Dataset(id string) (*matrix.Matrix, bool) {
	m, ok := s[id]
	return m, ok
}

func assertSameClusters(t *testing.T, want, got []*core.Bicluster) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("cluster count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("cluster %d differs:\n want %s\n got  %s", i, want[i], got[i])
		}
	}
}

// Two remote workers over real HTTP, no local mining: the merged stream and
// Stats must be byte-identical to the single-node sequential miner.
func TestDistributedMineByteIdenticalAcrossWorkers(t *testing.T) {
	m, p := distTestMatrix(t)
	want, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	id := m.Hash()
	c := NewCoordinator(Config{LeaseTTL: 500 * time.Millisecond, Datasets: mapSource{id: m}, Logf: t.Logf})
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workers := make([]*Worker, 2)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{Coordinator: srv.URL, Name: fmt.Sprintf("test-worker-%d", i)})
		go workers[i].Run(wctx) //nolint:errcheck // cancelled at test end
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var got []*core.Bicluster
	stats, err := c.Mine(ctx, MineRequest{
		Job: "job-e2e", Matrix: m, DatasetID: id, Params: p, LocalWorkers: -1,
	}, func(b *core.Bicluster) bool {
		got = append(got, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameClusters(t, want.Clusters, got)
	if !reflect.DeepEqual(want.Stats, stats) {
		t.Errorf("stats: want %+v, got %+v", want.Stats, stats)
	}
	joined, issued, _, completed := c.Counters()
	if joined != 2 {
		t.Errorf("workers joined: want 2, got %d", joined)
	}
	if completed != int64(m.Cols()) || issued < completed {
		t.Errorf("lease counters: issued %d, completed %d (want %d units)", issued, completed, m.Cols())
	}
	if n := c.ActiveLeases(); n != 0 {
		t.Errorf("leases still active after run: %d", n)
	}
	if c.WorkersConnected() != 2 {
		t.Errorf("workers connected: want 2, got %d", c.WorkersConnected())
	}
	// Workers bump Completed after the coordinator has already merged their
	// final heartbeat; give the counters a moment to settle.
	mined := func() int64 { return workers[0].Completed.Load() + workers[1].Completed.Load() }
	for deadline := time.Now().Add(2 * time.Second); mined() != int64(m.Cols()) && time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
	}
	if mined() != int64(m.Cols()) {
		t.Errorf("worker completions: want %d, got %d", m.Cols(), mined())
	}
	if workers[0].Completed.Load() == 0 || workers[1].Completed.Load() == 0 {
		t.Errorf("work not spread across workers: %d vs %d",
			workers[0].Completed.Load(), workers[1].Completed.Load())
	}
}

// A worker dying mid-lease (faultinject at dist.worker.mine — it stops
// mining and never heartbeats again) must cost only a TTL: the lease is
// revoked, the subtree re-leased, and the final output stays byte-identical.
func TestDistributedMineSurvivesWorkerDeathMidLease(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm("dist.worker.mine", faultinject.Spec{After: 8, Times: 1})

	m, p := distTestMatrix(t)
	want, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	id := m.Hash()
	c := NewCoordinator(Config{LeaseTTL: 120 * time.Millisecond, Datasets: mapSource{id: m}, Logf: t.Logf})
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var abandoned func() int64
	{
		ws := make([]*Worker, 2)
		for i := range ws {
			ws[i] = NewWorker(WorkerConfig{Coordinator: srv.URL, Name: fmt.Sprintf("doomed-%d", i)})
			go ws[i].Run(wctx) //nolint:errcheck
		}
		abandoned = func() int64 { return ws[0].Abandoned.Load() + ws[1].Abandoned.Load() }
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var got []*core.Bicluster
	stats, err := c.Mine(ctx, MineRequest{
		Job: "job-kill", Matrix: m, DatasetID: id, Params: p, LocalWorkers: -1,
	}, func(b *core.Bicluster) bool {
		got = append(got, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if faultinject.Fired("dist.worker.mine") == 0 {
		t.Fatal("kill site never fired; test exercised nothing")
	}
	if abandoned() == 0 {
		t.Error("no worker abandoned a lease")
	}
	if _, _, reassigned, _ := c.Counters(); reassigned == 0 {
		t.Error("no lease was reassigned after the simulated death")
	}
	assertSameClusters(t, want.Clusters, got)
	if !reflect.DeepEqual(want.Stats, stats) {
		t.Errorf("stats: want %+v, got %+v", want.Stats, stats)
	}
}

// Deterministic watermark recovery, driving the lease protocol directly: a
// holder ships half a subtree and vanishes; the re-issued lease must carry
// Skip equal to exactly what the coordinator verified, and the re-mined
// remainder must complete the run byte-identically.
func TestKilledWorkerResumesFromReceivedWatermark(t *testing.T) {
	m, p := distTestMatrix(t)
	models, err := core.BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Config{LeaseTTL: 40 * time.Millisecond, Logf: t.Logf})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var got []*core.Bicluster
	var stats core.Stats
	var mineErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		stats, mineErr = c.Mine(ctx, MineRequest{
			Matrix: m, Params: p, Models: models, LocalWorkers: -1,
		}, func(b *core.Bicluster) bool {
			got = append(got, b)
			return true
		})
	}()

	killed := false
	killedShipped := 0
	resumedSkip := -1
	for {
		select {
		case <-done:
			goto settled
		default:
		}
		ls := c.take("w1", false, nil)
		if ls == nil {
			time.Sleep(3 * time.Millisecond)
			continue
		}
		part, err := core.MineSubtree(ctx, m, p, ls.unit.cond, models)
		if err != nil {
			t.Fatal(err)
		}
		rest := part.Clusters[ls.skip:]
		if !killed && ls.skip == 0 && len(rest) >= 2 {
			// Ship half, then vanish: no Done, no further heartbeats.
			killed = true
			killedShipped = len(rest) / 2
			resp := c.progress(heartbeatRequest{Worker: "w1", Lease: ls.id,
				Clusters: rest[:killedShipped],
				Ckpt:     SubtreeCheckpoint{Cond: ls.unit.cond, Delivered: killedShipped}})
			if !resp.OK {
				t.Fatalf("half shipment rejected: %+v", resp)
			}
			continue
		}
		if ls.skip > 0 {
			resumedSkip = ls.skip
		}
		resp := c.progress(heartbeatRequest{Worker: "w1", Lease: ls.id, Clusters: rest,
			Ckpt: SubtreeCheckpoint{Cond: ls.unit.cond, Delivered: ls.skip + len(rest)},
			Done: true, Stats: &part.Stats})
		if !resp.OK || resp.Revoked {
			t.Fatalf("completion rejected: %+v", resp)
		}
	}
settled:
	if mineErr != nil {
		t.Fatal(mineErr)
	}
	if !killed {
		t.Fatal("never found a subtree worth killing; test is vacuous")
	}
	if resumedSkip != killedShipped {
		t.Errorf("re-issued lease skip: want %d (received watermark), got %d", killedShipped, resumedSkip)
	}
	if _, _, reassigned, _ := c.Counters(); reassigned == 0 {
		t.Error("revoker never reassigned the abandoned lease")
	}
	assertSameClusters(t, want.Clusters, got)
	if !reflect.DeepEqual(want.Stats, stats) {
		t.Errorf("stats: want %+v, got %+v", want.Stats, stats)
	}
}

// A heartbeat whose watermark does not extend the verified prefix exactly
// must revoke the lease instead of corrupting the unit.
func TestWatermarkMismatchRevokesLease(t *testing.T) {
	m, p := distTestMatrix(t)
	c := NewCoordinator(Config{LeaseTTL: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.Mine(ctx, MineRequest{Matrix: m, Params: p, LocalWorkers: -1}, func(*core.Bicluster) bool { return true })
	}()
	var ls *leaseState
	for ls == nil {
		if ls = c.take("w1", false, nil); ls == nil {
			time.Sleep(3 * time.Millisecond)
		}
	}
	resp := c.progress(heartbeatRequest{Worker: "w1", Lease: ls.id,
		Ckpt: SubtreeCheckpoint{Cond: ls.unit.cond, Delivered: 7}}) // nothing shipped, claims 7
	if !resp.Revoked {
		t.Fatalf("inconsistent watermark accepted: %+v", resp)
	}
	if resp := c.progress(heartbeatRequest{Worker: "w1", Lease: ls.id,
		Ckpt: SubtreeCheckpoint{Cond: ls.unit.cond, Delivered: 0}}); !resp.Revoked {
		t.Fatalf("heartbeat for a revoked lease accepted: %+v", resp)
	}
	cancel()
	<-done
}

// Satellite: a replica whose bytes do not hash to the advertised id must be
// rejected before mining — the worker nacks the lease and mines nothing.
func TestWorkerRejectsCorruptReplica(t *testing.T) {
	m, p := distTestMatrix(t)
	evil, _, err := synthetic.Generate(synthetic.Config{Genes: 110, Conds: 12, Clusters: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	id := m.Hash() // advertise the honest hash, serve different bytes
	c := NewCoordinator(Config{
		LeaseTTL: 300 * time.Millisecond, MaxUnitFailures: 2,
		Datasets: mapSource{id: evil}, Logf: t.Logf,
	})
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	w := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "gullible", Logf: t.Logf})
	go w.Run(wctx) //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var got []*core.Bicluster
	_, err = c.Mine(ctx, MineRequest{
		Job: "job-corrupt", Matrix: m, DatasetID: id, Params: p, LocalWorkers: -1,
	}, func(b *core.Bicluster) bool {
		got = append(got, b)
		return true
	})
	if err == nil {
		t.Fatal("run with a corrupt replica source did not fail")
	}
	if !strings.Contains(err.Error(), "rejected") || !strings.Contains(err.Error(), "hash") {
		t.Errorf("error does not surface the hash rejection: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("%d clusters mined from unverifiable data", len(got))
	}
	if w.Nacked.Load() == 0 {
		t.Error("worker never nacked the corrupt replica")
	}
	if w.Completed.Load() != 0 || w.Replicated.Load() != 0 {
		t.Errorf("worker accepted corrupt data: completed %d, replicated %d",
			w.Completed.Load(), w.Replicated.Load())
	}
}

// Distributed runs resume from engine checkpoints like local ones: a run cut
// by a visitor stop hands back a checkpoint, and a fresh distributed run
// resumed from it delivers exactly the missing suffix.
func TestDistributedResumeFromCheckpoint(t *testing.T) {
	m, p := distTestMatrix(t)
	models, err := core.BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var full []*core.Bicluster
	ref, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	full = ref.Clusters

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := NewCoordinator(Config{LeaseTTL: time.Second})

	// First run: capture cadence checkpoints, let it complete via local mining.
	var cks []core.Checkpoint
	var first []*core.Bicluster
	if _, err := c.Mine(ctx, MineRequest{
		Matrix: m, Params: p, Models: models,
		Ck: core.CheckpointConfig{EveryClusters: 9, OnCheckpoint: func(ck core.Checkpoint) { cks = append(cks, ck) }},
	}, func(b *core.Bicluster) bool {
		first = append(first, b)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	assertSameClusters(t, full, first)
	if len(cks) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	ck := cks[len(cks)/2]
	if ck.Delivered() == 0 || ck.Delivered() >= len(full) {
		t.Fatalf("checkpoint watermark %d not mid-run (of %d)", ck.Delivered(), len(full))
	}

	var tail []*core.Bicluster
	stats, err := c.Mine(ctx, MineRequest{
		Matrix: m, Params: p, Models: models, Resume: &ck,
	}, func(b *core.Bicluster) bool {
		tail = append(tail, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameClusters(t, full[ck.Delivered():], tail)
	if !reflect.DeepEqual(ref.Stats, stats) {
		t.Errorf("resumed stats: want %+v, got %+v", ref.Stats, stats)
	}
}
