package opcluster

import (
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func TestMineSimpleOrder(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3},
		{10, 20, 30},
		{3, 2, 1},
	})
	got, err := Mine(m, Params{MinG: 2, MinC: 3, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rising pair {g0, g1} along c0,c1,c2 must be found; falling g2 along
	// the reverse is alone (below MinG).
	found := false
	for _, b := range got {
		if len(b.Genes) == 2 && b.Genes[0] == 0 && b.Genes[1] == 1 &&
			len(b.Seq) == 3 && b.Seq[0] == 0 && b.Seq[2] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rising pair not found: %v", got)
	}
	for _, b := range got {
		if !IsOrderPreserving(m, b.Genes, b.Seq, true) {
			t.Errorf("invalid OPSM output: %+v", b)
		}
	}
}

// TestFigure4OutlierIsKept reproduces the paper's Section 3.3 comparison: on
// the projection of Table 1 onto c2, c4, c8, c10, the tendency model groups
// all three genes — including the outlier g2 — because they share the same
// condition ordering, while reg-cluster rejects g2.
func TestFigure4OutlierIsKept(t *testing.T) {
	m := paperdata.OutlierProjection()
	got, err := Mine(m, Params{MinG: 3, MinC: 4, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range got {
		if len(b.Genes) == 3 && len(b.Seq) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tendency model should group all three genes on the Figure 4 projection: %v", got)
	}
}

func TestFallingGenesFormTheirOwnCluster(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3},
		{6, 5, 4},
		{9, 8, 7},
	})
	got, err := Mine(m, Params{MinG: 2, MinC: 3, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range got {
		if len(b.Genes) == 2 && b.Genes[0] == 1 && b.Genes[1] == 2 &&
			b.Seq[0] == 2 && b.Seq[2] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("falling pair along reversed sequence not found: %v", got)
	}
}

func TestTies(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 1, 2},
		{3, 3, 4},
	})
	// Strict: the tie c0/c1 cannot be part of a strict sequence.
	got, err := Mine(m, Params{MinG: 2, MinC: 3, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("strict mode must reject ties: %v", got)
	}
	// Non-strict accepts them.
	got, err = Mine(m, Params{MinG: 2, MinC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("non-strict mode should accept ties")
	}
}

func TestMineValidationAndCap(t *testing.T) {
	m := matrix.New(3, 3)
	if _, err := Mine(m, Params{MinG: 0, MinC: 2}); err == nil {
		t.Error("MinG=0 accepted")
	}
	if _, err := Mine(m, Params{MinG: 1, MinC: 1}); err == nil {
		t.Error("MinC=1 accepted")
	}
	// All-zero matrix, non-strict: explosion capped by MaxNodes.
	got, err := Mine(matrix.New(5, 6), Params{MinG: 2, MinC: 2, MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 10 {
		t.Fatalf("MaxNodes ignored: %d", len(got))
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := Bicluster{Seq: []int{1, 2}, Genes: []int{3}}
	b := Bicluster{Seq: []int{2, 1}, Genes: []int{3}}
	c := Bicluster{Seq: []int{1, 2}, Genes: []int{4}}
	if a.Key() == b.Key() || a.Key() == c.Key() {
		t.Error("keys collide")
	}
	// The naive comma-free concatenation pitfall: {12} vs {1,2}.
	d := Bicluster{Seq: []int{12}, Genes: []int{3}}
	if a.Key() == d.Key() {
		t.Error("key ambiguity between {1,2} and {12}")
	}
}
