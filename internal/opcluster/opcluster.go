// Package opcluster implements an OP-Cluster / OPSM-style *tendency-based*
// baseline (Liu & Wang — ICDM 2003; Ben-Dor et al. — RECOMB 2002): it mines
// order-preserving submatrices, i.e. gene sets whose expression values rise
// synchronously along some condition sequence, with no coherence or
// regulation guarantee.
//
// The paper's comparison points (Sections 1.3 and 3.3): tendency models
// cannot apply a non-zero regulation threshold, and on the Figure 4
// projection they wrongly keep the outlier gene g2 because it shares the
// same condition ordering as g1 and g3.
package opcluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"regcluster/internal/matrix"
)

// Params configures the miner.
type Params struct {
	// MinG and MinC are the minimum bicluster dimensions.
	MinG, MinC int
	// Strict requires strictly increasing values along the sequence; when
	// false, ties are allowed to continue a sequence.
	Strict bool
	// MaxNodes optionally caps the search.
	MaxNodes int
}

// Bicluster is one order-preserving submatrix: the condition sequence along
// which every member gene's expression is non-decreasing (or strictly
// increasing under Strict), and the member genes (ascending).
type Bicluster struct {
	Seq   []int
	Genes []int
}

// Key returns a canonical identity string.
func (b Bicluster) Key() string {
	var sb strings.Builder
	for _, c := range b.Seq {
		sb.WriteString(strconv.Itoa(c))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, g := range b.Genes {
		sb.WriteString(strconv.Itoa(g))
		sb.WriteByte(',')
	}
	return sb.String()
}

// IsOrderPreserving verifies that every gene's values follow the sequence.
func IsOrderPreserving(m *matrix.Matrix, genes, seq []int, strict bool) bool {
	for _, g := range genes {
		for k := 0; k+1 < len(seq); k++ {
			a, b := m.At(g, seq[k]), m.At(g, seq[k+1])
			if strict && b <= a || !strict && b < a {
				return false
			}
		}
	}
	return true
}

// Mine enumerates all order-preserving submatrices of m with at least MinG
// genes and MinC conditions. A sequence and its reverse are distinct
// clusters: they collect the genes that rise, respectively fall, along the
// sequence.
func Mine(m *matrix.Matrix, p Params) ([]Bicluster, error) {
	if p.MinG < 1 || p.MinC < 2 {
		return nil, fmt.Errorf("opcluster: need MinG >= 1 and MinC >= 2, got %d/%d", p.MinG, p.MinC)
	}
	e := &engine{m: m, p: p, seen: map[string]bool{}}
	all := make([]int, m.Rows())
	for g := range all {
		all[g] = g
	}
	for c := 0; c < m.Cols() && !e.stop; c++ {
		e.grow([]int{c}, all)
	}
	return e.out, nil
}

type engine struct {
	m     *matrix.Matrix
	p     Params
	seen  map[string]bool
	out   []Bicluster
	nodes int
	stop  bool
}

func (e *engine) grow(seq []int, genes []int) {
	if e.stop {
		return
	}
	e.nodes++
	if e.p.MaxNodes > 0 && e.nodes > e.p.MaxNodes {
		e.stop = true
		return
	}
	if len(genes) < e.p.MinG {
		return
	}
	if len(seq) >= e.p.MinC {
		b := Bicluster{Seq: append([]int(nil), seq...), Genes: append([]int(nil), genes...)}
		sort.Ints(b.Genes)
		key := b.Key()
		if !e.seen[key] {
			e.seen[key] = true
			e.out = append(e.out, b)
		}
	}
	last := seq[len(seq)-1]
	inSeq := make(map[int]bool, len(seq))
	for _, c := range seq {
		inSeq[c] = true
	}
	for c := 0; c < e.m.Cols(); c++ {
		if inSeq[c] {
			continue
		}
		var keep []int
		for _, g := range genes {
			a, b := e.m.At(g, last), e.m.At(g, c)
			if e.p.Strict && b > a || !e.p.Strict && b >= a {
				keep = append(keep, g)
			}
		}
		if len(keep) >= e.p.MinG {
			e.grow(append(append([]int(nil), seq...), c), keep)
		}
	}
}
