package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := New(20, 6).
		Title("demo").
		Add(Series{Name: "up", Ys: []float64{1, 2, 3, 4, 5}}).
		Add(Series{Name: "down", Ys: []float64{5, 4, 3, 2, 1}}).
		XLabels([]string{"a", "b", "c", "d", "e"}).
		Render()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "legend: *=up o=down") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Max and min y labels.
	if !strings.Contains(out, "5") || !strings.Contains(out, "1") {
		t.Errorf("y labels missing:\n%s", out)
	}
	// Rising series: '*' appears in the top row at the right edge.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") || !strings.Contains(top, "o") {
		t.Errorf("extremes not on top row: %q", top)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "e") {
		t.Errorf("x labels missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := New(10, 4).Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart: %q", out)
	}
	out = New(10, 4).Add(Series{Ys: []float64{math.NaN()}}).Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("all-NaN chart: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := New(10, 4).Add(Series{Name: "flat", Ys: []float64{2, 2, 2}}).Render()
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := New(10, 4).Add(Series{Name: "dot", Ys: []float64{7}}).Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestNaNPointsSkipped(t *testing.T) {
	out := New(12, 5).Add(Series{Name: "gappy", Ys: []float64{1, math.NaN(), 3}}).Render()
	grid := out[:strings.Index(out, "+--")] // cut the axis and legend rows
	if got := strings.Count(grid, "*"); got != 2 {
		t.Errorf("expected exactly 2 plotted points, got %d:\n%s", got, out)
	}
}

func TestGlyphRotationAndExplicit(t *testing.T) {
	c := New(10, 4).
		Add(Series{Name: "a", Ys: []float64{1}}).
		Add(Series{Name: "b", Ys: []float64{2}}).
		Add(Series{Name: "c", Ys: []float64{3}, Glyph: 'Z'})
	out := c.Render()
	if !strings.Contains(out, "Z=c") {
		t.Errorf("explicit glyph ignored:\n%s", out)
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Errorf("rotation wrong:\n%s", out)
	}
}

func TestClampedDimensions(t *testing.T) {
	out := New(1, 1).Add(Series{Name: "x", Ys: []float64{1, 2}}).Render()
	if out == "" {
		t.Fatal("render failed on clamped chart")
	}
}

func TestSpreadLabelsCollision(t *testing.T) {
	s := spreadLabels([]string{"aaaa", "bbbb", "cccc"}, 8)
	// Not all labels fit in 8 columns; collisions must be dropped, not
	// overwritten.
	if strings.Contains(s, "ab") || strings.Contains(s, "bc") {
		t.Errorf("labels overlap: %q", s)
	}
	if len(s) > 8 {
		t.Errorf("label row too wide: %q", s)
	}
}
