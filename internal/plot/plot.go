// Package plot renders small ASCII line charts for the experiment reports:
// Figure 7 style runtime curves and Figure 8 style expression profiles
// (p-members as '*', n-members as 'o', in the spirit of the paper's solid
// and dashed lines). Pure text — the reports stay grep-able and diff-able.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name  string
	Ys    []float64
	Glyph byte
}

// Chart accumulates series sharing an x-axis and renders them onto a
// character grid.
type Chart struct {
	width, height int
	xLabels       []string
	series        []Series
	title         string
}

// New returns a chart with the given plot-area size (columns × rows of
// characters, excluding axes). Sizes are clamped to sane minimums.
func New(width, height int) *Chart {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	return &Chart{width: width, height: height}
}

// Title sets an optional heading line.
func (c *Chart) Title(t string) *Chart { c.title = t; return c }

// XLabels sets the x-axis tick labels (one per data point; rendered sparsely
// if they do not fit).
func (c *Chart) XLabels(labels []string) *Chart {
	c.xLabels = append([]string(nil), labels...)
	return c
}

// Add appends a series. A zero glyph picks '*', 'o', '+', 'x', '#', '@' in
// rotation.
func (c *Chart) Add(s Series) *Chart {
	if s.Glyph == 0 {
		glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
		s.Glyph = glyphs[len(c.series)%len(glyphs)]
	}
	c.series = append(c.series, s)
	return c
}

// Render draws the chart. Series may have different lengths; each is spread
// over the full width. NaN points are skipped.
func (c *Chart) Render() string {
	var sb strings.Builder
	if c.title != "" {
		sb.WriteString(c.title)
		sb.WriteByte('\n')
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.series {
		if len(s.Ys) > maxLen {
			maxLen = len(s.Ys)
		}
		for _, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return sb.String() + "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, c.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.width))
	}
	for _, s := range c.series {
		n := len(s.Ys)
		for i, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			col := 0
			if n > 1 {
				col = i * (c.width - 1) / (n - 1)
			}
			rowF := (y - lo) / (hi - lo) * float64(c.height-1)
			row := c.height - 1 - int(rowF+0.5)
			if row < 0 {
				row = 0
			}
			if row >= c.height {
				row = c.height - 1
			}
			grid[row][col] = s.Glyph
		}
	}

	yLabelW := 0
	yTop := fmt.Sprintf("%.4g", hi)
	yBot := fmt.Sprintf("%.4g", lo)
	if len(yTop) > yLabelW {
		yLabelW = len(yTop)
	}
	if len(yBot) > yLabelW {
		yLabelW = len(yBot)
	}
	for r := 0; r < c.height; r++ {
		label := strings.Repeat(" ", yLabelW)
		switch r {
		case 0:
			label = pad(yTop, yLabelW)
		case c.height - 1:
			label = pad(yBot, yLabelW)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", yLabelW))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", c.width))
	sb.WriteByte('\n')
	if len(c.xLabels) > 0 {
		sb.WriteString(strings.Repeat(" ", yLabelW))
		sb.WriteString("  ")
		sb.WriteString(spreadLabels(c.xLabels, c.width))
		sb.WriteByte('\n')
	}
	if len(c.series) > 1 || c.series[0].Name != "" {
		sb.WriteString("legend:")
		for _, s := range c.series {
			fmt.Fprintf(&sb, " %c=%s", s.Glyph, s.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// spreadLabels places labels across the width, dropping labels that would
// collide.
func spreadLabels(labels []string, width int) string {
	out := []byte(strings.Repeat(" ", width))
	n := len(labels)
	lastEnd := -2
	for i, l := range labels {
		col := 0
		if n > 1 {
			col = i * (width - 1) / (n - 1)
		}
		start := col - len(l)/2
		if start < 0 {
			start = 0
		}
		if start+len(l) > width {
			start = width - len(l)
		}
		if start <= lastEnd+1 {
			continue
		}
		copy(out[start:], l)
		lastEnd = start + len(l) - 1
	}
	return strings.TrimRight(string(out), " ")
}
