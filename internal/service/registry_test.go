package service

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func tsvOf(t *testing.T, m *matrix.Matrix) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRegistryContentAddressing(t *testing.T) {
	r := newRegistry(4)
	m := paperdata.RunningExample()
	tsv := tsvOf(t, m)

	ds, created, err := r.add("table1", strings.NewReader(tsv))
	if err != nil || !created {
		t.Fatalf("first add: %v created=%v", err, created)
	}
	if ds.ID != m.Hash() {
		t.Fatalf("ID %s, want content hash %s", ds.ID, m.Hash())
	}
	if ds.Genes != m.Rows() || ds.Conditions != m.Cols() {
		t.Fatalf("shape %dx%d", ds.Genes, ds.Conditions)
	}

	// Identical re-upload is idempotent, keeps the original name, and does
	// not consume capacity.
	again, created, err := r.add("other-name", strings.NewReader(tsv))
	if err != nil || created {
		t.Fatalf("re-add: %v created=%v", err, created)
	}
	if again != ds || again.Name != "table1" {
		t.Fatal("re-upload did not dedupe to the original dataset")
	}
	if r.size() != 1 {
		t.Fatalf("size %d", r.size())
	}
}

func TestRegistryDefaultNameAndCapacity(t *testing.T) {
	r := newRegistry(1)
	ds, _, err := r.add("", strings.NewReader("gene\ta\tb\ng1\t1\t2\ng2\t3\t4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ds.Name, "dataset-") || len(ds.Name) != len("dataset-")+12 {
		t.Fatalf("default name %q", ds.Name)
	}
	if _, _, err := r.add("x", strings.NewReader("gene\ta\tb\ng1\t5\t6\ng2\t7\t8\n")); err == nil {
		t.Fatal("capacity bound not enforced")
	}
	if !r.remove(ds.ID) {
		t.Fatal("remove failed")
	}
	if r.remove(ds.ID) {
		t.Fatal("double remove succeeded")
	}
	if _, _, err := r.add("x", strings.NewReader("gene\ta\tb\ng1\t5\t6\ng2\t7\t8\n")); err != nil {
		t.Fatalf("add after remove: %v", err)
	}
}

func TestRegistryImputesAndComputesRowStats(t *testing.T) {
	r := newRegistry(0)
	// g1 has one missing cell; the registry imputes it with the row mean (2).
	ds, _, err := r.add("holes", strings.NewReader("gene\tc1\tc2\tc3\ng1\t1\tNA\t3\ng2\t2\t4\t6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.ImputedCells != 1 {
		t.Fatalf("imputed %d cells", ds.ImputedCells)
	}
	rs := ds.RowStats()
	if len(rs) != 2 || rs[0].Gene != "g1" {
		t.Fatalf("row stats %+v", rs)
	}
	if rs[0].Min != 1 || rs[0].Max != 3 || rs[0].Range != 2 || rs[0].Mean != 2 {
		t.Fatalf("g1 stats %+v", rs[0])
	}
	if math.Abs(rs[1].Mean-4) > 1e-12 || math.Abs(rs[1].Range-4) > 1e-12 {
		t.Fatalf("g2 stats %+v", rs[1])
	}
}

func TestRegistryRejectsBadTSV(t *testing.T) {
	r := newRegistry(0)
	if _, _, err := r.add("ragged", strings.NewReader("gene\ta\tb\ng1\t1\t2\ng2\t3\n")); err == nil {
		t.Fatal("ragged TSV accepted")
	}
	if r.size() != 0 {
		t.Fatalf("size %d after rejected upload", r.size())
	}
}

func TestRegistryListOrder(t *testing.T) {
	r := newRegistry(0)
	a, _, _ := r.add("a", strings.NewReader("gene\tx\ty\ng1\t1\t2\ng2\t3\t4\n"))
	b, _, _ := r.add("b", strings.NewReader("gene\tx\ty\ng1\t5\t6\ng2\t7\t8\n"))
	got := r.list()
	if len(got) != 2 {
		t.Fatalf("list %d", len(got))
	}
	// Uploads share a coarse timestamp, so order falls back to ID.
	wantFirst, wantSecond := a, b
	if b.UploadedAt.Before(a.UploadedAt) || (a.UploadedAt.Equal(b.UploadedAt) && b.ID < a.ID) {
		wantFirst, wantSecond = b, a
	}
	if got[0] != wantFirst || got[1] != wantSecond {
		t.Fatal("list order not deterministic oldest-first")
	}
}
