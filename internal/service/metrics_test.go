package service

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsExposition(t *testing.T) {
	mt := NewMetrics()
	mt.JobsSubmitted.Add(3)
	mt.CacheHits.Add(2)
	mt.ObserveMiningLatency(2 * time.Millisecond)   // ≤ 0.004 bucket
	mt.ObserveMiningLatency(500 * time.Millisecond) // ≤ 1.024 bucket
	mt.ObserveMiningLatency(time.Minute)            // +Inf bucket

	var sb strings.Builder
	mt.WriteTo(&sb, []gauge{{name: "regcluster_test_gauge", help: "A gauge.", value: func() int64 { return 7 }}})
	out := sb.String()

	for _, want := range []string{
		"# TYPE regcluster_jobs_submitted_total counter",
		"regcluster_jobs_submitted_total 3",
		"regcluster_cache_hits_total 2",
		"regcluster_cache_misses_total 0",
		"# TYPE regcluster_test_gauge gauge",
		"regcluster_test_gauge 7",
		"# TYPE regcluster_mining_latency_seconds histogram",
		`regcluster_mining_latency_seconds_bucket{le="0.001"} 0`,
		`regcluster_mining_latency_seconds_bucket{le="0.004"} 1`,
		`regcluster_mining_latency_seconds_bucket{le="1.024"} 2`,
		`regcluster_mining_latency_seconds_bucket{le="+Inf"} 3`,
		"regcluster_mining_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Buckets are cumulative: every bound's count must be <= the next.
	if strings.Contains(out, `le="16.384"} 2`) == false {
		t.Errorf("largest finite bucket should hold 2 observations:\n%s", out)
	}
}

func TestHistogramSum(t *testing.T) {
	mt := NewMetrics()
	mt.ObserveMiningLatency(1500 * time.Millisecond)
	var sb strings.Builder
	mt.WriteTo(&sb, nil)
	if !strings.Contains(sb.String(), "regcluster_mining_latency_seconds_sum 1.5") {
		t.Errorf("sum not rendered in seconds:\n%s", sb.String())
	}
}
