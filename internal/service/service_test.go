package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
	"regcluster/internal/report"
	"regcluster/internal/synthetic"
)

// runningParams are the paper's Table 1 mining parameters (E6).
func runningParams() core.Params {
	return core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func uploadMatrix(t *testing.T, ts *httptest.Server, m *matrix.Matrix, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/datasets?name="+name, "text/tab-separated-values", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var ds Dataset
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	return ds.ID
}

func submitJob(t *testing.T, ts *httptest.Server, req submitRequest) JobView {
	t.Helper()
	v, status := trySubmit(t, ts, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", status, v)
	}
	return v
}

func trySubmit(t *testing.T, ts *httptest.Server, req submitRequest) (JobView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.Status.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return JobView{}
}

// streamClusters drains /jobs/{id}/stream, returning the cluster lines and
// the final summary line.
func streamClusters(t *testing.T, ts *httptest.Server, id string) ([]report.NamedCluster, streamSummary) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var clusters []report.NamedCluster
	var summary streamSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done":true`)) {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatalf("summary line: %v", err)
			}
			continue
		}
		var nc report.NamedCluster
		if err := json.Unmarshal(line, &nc); err != nil {
			t.Fatalf("cluster line %q: %v", line, err)
		}
		clusters = append(clusters, nc)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !summary.Done {
		t.Fatal("stream ended without a summary line")
	}
	return clusters, summary
}

func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%d", &v); err != nil {
				t.Fatalf("parse metric %q from %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not exposed", name)
	return 0
}

// TestEndToEndCacheHit is the acceptance scenario: upload the Table 1 paper
// matrix, submit identical Params twice. The first submission mines and its
// streamed clusters equal Mine's output exactly; the second is served from
// the cache — cache_hits increments and no new miner nodes are counted.
func TestEndToEndCacheHit(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")
	if id != m.Hash() {
		t.Fatalf("dataset not content-addressed: %s vs %s", id, m.Hash())
	}

	want, err := core.Mine(m, runningParams())
	if err != nil {
		t.Fatal(err)
	}
	wantNamed := make([]report.NamedCluster, len(want.Clusters))
	for i, b := range want.Clusters {
		wantNamed[i] = report.Named(m, b)
	}

	// First submission mines.
	v1 := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams(), Workers: 4})
	if v1.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	fin1 := waitTerminal(t, ts, v1.ID)
	if fin1.Status != StatusDone {
		t.Fatalf("first job ended %s (%s)", fin1.Status, fin1.Error)
	}
	if fin1.Stats == nil || *fin1.Stats != want.Stats {
		t.Fatalf("job stats %+v, want %+v", fin1.Stats, want.Stats)
	}
	streamed, summary := streamClusters(t, ts, v1.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatalf("streamed clusters diverge from Mine:\n%+v\nvs\n%+v", streamed, wantNamed)
	}
	if summary.Status != StatusDone || summary.Clusters != len(wantNamed) {
		t.Fatalf("summary %+v", summary)
	}

	nodesBefore := metricValue(t, ts, "regcluster_nodes_visited_total")
	if nodesBefore != int64(want.Stats.Nodes) {
		t.Fatalf("nodes_visited %d, want %d", nodesBefore, want.Stats.Nodes)
	}
	if hits := metricValue(t, ts, "regcluster_cache_hits_total"); hits != 0 {
		t.Fatalf("cache hits %d before second submission", hits)
	}

	// Second submission: identical params (different worker count — the
	// cache key ignores parallelism) must be served from memory.
	v2 := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams(), Workers: 1})
	if !v2.Cached {
		t.Fatal("second submission did not hit the cache")
	}
	fin2 := waitTerminal(t, ts, v2.ID)
	if fin2.Status != StatusDone || fin2.Clusters != len(wantNamed) {
		t.Fatalf("cached job view %+v", fin2)
	}
	streamed2, _ := streamClusters(t, ts, v2.ID)
	if !reflect.DeepEqual(streamed2, wantNamed) {
		t.Fatal("cached stream diverges from the mined stream")
	}
	if hits := metricValue(t, ts, "regcluster_cache_hits_total"); hits != 1 {
		t.Fatalf("cache hits %d, want 1", hits)
	}
	if nodesAfter := metricValue(t, ts, "regcluster_nodes_visited_total"); nodesAfter != nodesBefore {
		t.Fatalf("cache hit mined %d new nodes", nodesAfter-nodesBefore)
	}
	if srv.cache.len() != 1 {
		t.Fatalf("cache entries %d", srv.cache.len())
	}

	// Different params miss the cache.
	p3 := runningParams()
	p3.Epsilon = 0.2
	v3 := submitJob(t, ts, submitRequest{Dataset: id, Params: p3})
	if v3.Cached {
		t.Fatal("changed Epsilon still hit the cache")
	}
	waitTerminal(t, ts, v3.ID)

	// The settled result document carries the stable schema.
	resp, err := http.Get(ts.URL + "/jobs/" + v1.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, err := report.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != report.SchemaID || len(doc.Clusters) != len(wantNamed) {
		t.Fatalf("result document schema %q, %d clusters", doc.Schema, len(doc.Clusters))
	}
}

// slowWorkload returns a matrix + params that mine for at least a second or
// two, so tests can observe and interrupt a running job.
func slowWorkload(t *testing.T) (*matrix.Matrix, core.Params) {
	t.Helper()
	m, _, err := synthetic.Generate(synthetic.Config{Genes: 500, Conds: 26, Clusters: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m, core.Params{MinG: 3, MinC: 3, Gamma: 0.02, Epsilon: 2}
}

// TestCancellationFreesSlot cancels a job mid-mine and verifies both prompt
// settlement and that the mining slot is released for the next job.
func TestCancellationFreesSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentJobs: 1})
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")

	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p, Workers: 2})
	// Wait until the job is demonstrably mining.
	deadline := time.Now().Add(20 * time.Second)
	for {
		jv := getJob(t, ts, v.ID)
		if jv.Status == StatusRunning && jv.LiveNodes > 0 {
			break
		}
		if jv.Status.terminal() {
			t.Fatalf("workload finished before it could be cancelled (%s); enlarge slowWorkload", jv.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started mining")
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancelStart := time.Now()
	resp, err := http.Post(ts.URL+"/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, v.ID)
	promptness := time.Since(cancelStart)
	if fin.Status != StatusCancelled {
		t.Fatalf("status %s after cancel", fin.Status)
	}
	if promptness > 5*time.Second {
		t.Fatalf("cancellation took %v", promptness)
	}
	if got := metricValue(t, ts, "regcluster_jobs_cancelled_total"); got != 1 {
		t.Fatalf("jobs_cancelled %d", got)
	}

	// The slot must be free: a small job on the same server completes.
	t1 := paperdata.RunningExample()
	tid := uploadMatrix(t, ts, t1, "table1")
	v2 := submitJob(t, ts, submitRequest{Dataset: tid, Params: runningParams()})
	if fin2 := waitTerminal(t, ts, v2.ID); fin2.Status != StatusDone {
		t.Fatalf("post-cancel job ended %s", fin2.Status)
	}
	if running := metricValue(t, ts, "regcluster_jobs_running"); running != 0 {
		t.Fatalf("%d jobs still hold slots", running)
	}
}

// TestQueuedJobCancellation cancels a job that is still waiting for a slot.
func TestQueuedJobCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentJobs: 1})
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")

	blocker := submitJob(t, ts, submitRequest{Dataset: id, Params: p})
	p2 := p
	p2.Epsilon = 3 // distinct cache key so the second submission really queues
	queued := submitJob(t, ts, submitRequest{Dataset: id, Params: p2})

	resp, err := http.Post(ts.URL+"/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, queued.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("queued job ended %s", fin.Status)
	}
	if fin.LiveNodes != 0 {
		t.Fatalf("queued job mined %d nodes", fin.LiveNodes)
	}
	resp, err = http.Post(ts.URL+"/jobs/"+blocker.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitTerminal(t, ts, blocker.ID)
}

// TestJobDeadline verifies the server-side per-job deadline path.
func TestJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p, TimeoutMS: 30})
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("deadline job ended %s (%q)", fin.Status, fin.Error)
	}
	if got := metricValue(t, ts, "regcluster_jobs_failed_total"); got != 1 {
		t.Fatalf("jobs_failed %d", got)
	}
}

// TestSubmitNonFiniteParamsRejected is the end-to-end regression for the
// cacheKey panic: a submission carrying non-finite parameters must be
// rejected with a 4xx — at JSON decode for out-of-range literals like 1e999,
// or by core.Params.Validate for anything that gets through — and the server
// must stay alive afterwards. Before the fix, such params passed Validate
// (NaN beats every range check) and panicked json.Marshal inside cacheKey.
func TestSubmitNonFiniteParamsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "table1")

	bodies := []string{
		`{"dataset":"` + id + `","params":{"MinG":3,"MinC":5,"Gamma":1e999,"Epsilon":1}}`,
		`{"dataset":"` + id + `","params":{"MinG":3,"MinC":5,"Gamma":0.1,"Epsilon":-1e999}}`,
		`{"dataset":"` + id + `","params":{"MinG":3,"MinC":5,"Gamma":0.1,"Epsilon":1,"CustomGammas":[1e999]}}`,
	}
	for i, body := range bodies {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("case %d: status %d, want 4xx", i, resp.StatusCode)
		}
	}
	// The server survived every rejection.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after rejections", resp.StatusCode)
	}
}

// TestSubmitValidation exercises the 4xx paths of the submit handler.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorkersPerJob: 4})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	cases := []struct {
		name string
		req  submitRequest
		code int
	}{
		{"unknown dataset", submitRequest{Dataset: "nope", Params: runningParams()}, http.StatusNotFound},
		{"bad MinG", submitRequest{Dataset: id, Params: core.Params{MinG: 1, MinC: 5, Gamma: 0.1, Epsilon: 1}}, http.StatusBadRequest},
		{"bad MinC", submitRequest{Dataset: id, Params: core.Params{MinG: 3, MinC: 1, Gamma: 0.1, Epsilon: 1}}, http.StatusBadRequest},
		{"negative gamma", submitRequest{Dataset: id, Params: core.Params{MinG: 3, MinC: 5, Gamma: -0.1, Epsilon: 1}}, http.StatusBadRequest},
		{"negative epsilon", submitRequest{Dataset: id, Params: core.Params{MinG: 3, MinC: 5, Gamma: 0.1, Epsilon: -1}}, http.StatusBadRequest},
		{"too many workers", submitRequest{Dataset: id, Params: runningParams(), Workers: 100}, http.StatusBadRequest},
		{"negative timeout", submitRequest{Dataset: id, Params: runningParams(), TimeoutMS: -5}, http.StatusBadRequest},
		{"wrong CustomGammas length", submitRequest{Dataset: id,
			Params: core.Params{MinG: 3, MinC: 5, Gamma: 0.1, Epsilon: 1, CustomGammas: []float64{1, 2}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, code := trySubmit(t, ts, tc.req); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
}

// TestServerSideClamps verifies that server budget caps apply before cache
// keying, so a clamped submission shares the entry with an explicit one.
func TestServerSideClamps(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNodesPerJob: 10})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	v1 := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()}) // unlimited → clamped to 10
	fin := waitTerminal(t, ts, v1.ID)
	if fin.Status != StatusDone {
		t.Fatalf("clamped job ended %s (%s)", fin.Status, fin.Error)
	}
	explicit := runningParams()
	explicit.MaxNodes = 10
	wantCapped, err := core.Mine(m, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Stats == nil || !fin.Stats.Truncated || *fin.Stats != wantCapped.Stats {
		t.Fatalf("server cap not applied: got %+v, want %+v", fin.Stats, wantCapped.Stats)
	}
	v2 := submitJob(t, ts, submitRequest{Dataset: id, Params: explicit})
	if !v2.Cached {
		t.Fatal("explicit MaxNodes=10 did not share the clamped cache entry")
	}
}

// TestShutdownDrains verifies Shutdown semantics: submissions are rejected,
// running jobs drain (or are cancelled at the deadline).
func TestShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p})

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx) // deadline forces cancellation of the slow job
	if err == nil {
		// The job may legitimately have finished before the deadline; only
		// then is a nil error acceptable.
		if jv := getJob(t, ts, v.ID); jv.Status != StatusDone {
			t.Fatalf("clean drain but job is %s", jv.Status)
		}
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("shutdown took %v", d)
	}
	if jv := waitTerminal(t, ts, v.ID); !jv.Status.terminal() {
		t.Fatalf("job not settled after shutdown: %s", jv.Status)
	}
	if _, code := trySubmit(t, ts, submitRequest{Dataset: id, Params: p}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit status %d", code)
	}
}
