package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"regcluster/internal/core"
	"regcluster/internal/report"
)

// cacheKey derives the result-cache key from the dataset's content hash and
// an explicit field-by-field encoding of the mining parameters. Every Params
// field participates — the ablation switches change only work, not output,
// but keying on them keeps the derivation trivially audit-able, and
// MaxClusters/MaxNodes MUST participate because capped runs return a
// truncated prefix. The worker count deliberately does not: mining output is
// deterministic for any worker count, so a sweep re-submitted with different
// parallelism still hits.
//
// The encoding is total: floats enter by IEEE-754 bit pattern, so the
// function is defined for ANY Params value, non-finite floats included.
// (An earlier version round-tripped Params through json.Marshal under a
// "marshalling cannot fail" comment — but encoding/json rejects NaN/±Inf, so
// a non-finite value that slipped past validation panicked the server here.
// Validate now fences those values at the API boundary; this derivation no
// longer cares either way.)
//
// Adding a field to core.Params without extending this encoding would make
// the cache conflate distinct jobs; TestCacheKeySensitivity pins every field.
func cacheKey(datasetID string, p core.Params) string {
	h := sha256.New()
	h.Write([]byte(datasetID))
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	u64(uint64(p.MinG))
	u64(uint64(p.MinC))
	f64(p.Gamma)
	f64(p.Epsilon)
	b(p.AbsoluteGamma)
	b(p.CustomGammas != nil)
	u64(uint64(len(p.CustomGammas)))
	for _, v := range p.CustomGammas {
		f64(v)
	}
	u64(uint64(p.MaxClusters))
	u64(uint64(p.MaxNodes))
	b(p.DisableChainLengthPruning)
	b(p.DisableMajorityPruning)
	b(p.DisableDedupPruning)
	b(p.NaiveCandidates)
	return hex.EncodeToString(h.Sum(nil))
}

// cachedResult is one settled mining outcome.
type cachedResult struct {
	clusters []report.NamedCluster
	stats    core.Stats
}

// resultCache is a strict-LRU map from cacheKey to settled results, bounded
// by entry count. Only deterministic outcomes are stored (the job manager
// never caches deadline- or cancel-interrupted runs), so a hit is always
// byte-identical to re-mining.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *cacheItem
	items map[string]*list.Element
	// onEvict, when set, observes every LRU eviction (not explicit
	// replacements) — the durable server hooks it to delete the evicted
	// entry's result file so disk usage tracks the cache bound.
	onEvict func(key string)
}

type cacheItem struct {
	key string
	res cachedResult
}

func newResultCache(maxEntries int) *resultCache {
	return &resultCache{max: maxEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, promoting it to most-recently-used.
func (c *resultCache) get(key string) (cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cachedResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// put stores a settled result, evicting the least-recently-used entry when
// the cache is full. Re-putting an existing key refreshes its recency.
func (c *resultCache) put(key string, res cachedResult) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		old := oldest.Value.(*cacheItem).key
		delete(c.items, old)
		if c.onEvict != nil {
			c.onEvict(old)
		}
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
