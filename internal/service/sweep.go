package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"regcluster/internal/core"
)

// Batch parameter sweeps. A sweep mines one dataset under a grid of
// parameters — the paper's Figure 7 sensitivity studies as one request. Each
// grid point is an ordinary job: individually journaled, checkpointed,
// result-cached and streamable, so a crash resumes the unfinished points and
// a repeated sweep hits the result cache point-by-point. The grid is ordered
// γ-major, i.e. grouped by core.ModelKey, and the job manager's shared model
// cache then performs exactly one RWave build per group (the index depends
// only on dataset + γ-scheme, not on ε/MinG/MinC).

// SweepSchemaID identifies the JSON summary schema of GET /sweeps/{id}.
const SweepSchemaID = "regcluster.sweep/v1"

// maxSweepPoints bounds one sweep's grid; grids are cheap to enumerate but
// every point is a mining job, and a runaway cartesian product should fail
// loudly at submit time rather than queue for hours.
const maxSweepPoints = 256

// sweepState is the manager-side record of one sweep: immutable after
// creation, point outcomes read live from the job table.
type sweepState struct {
	id        string
	dataset   string
	jobIDs    []string
	params    []core.Params // same order as jobIDs
	created   time.Time
	recovered bool
}

// sweepManager owns the sweep table. Separate from jobManager's mutex domain:
// sweeps are bookkeeping over jobs, never the other way around.
type sweepManager struct {
	mu    sync.Mutex
	seq   int
	byID  map[string]*sweepState
	order []string
}

func newSweepManager() *sweepManager {
	return &sweepManager{byID: make(map[string]*sweepState)}
}

func (sm *sweepManager) nextID() string {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.seq++
	return fmt.Sprintf("sweep-%06d", sm.seq)
}

func (sm *sweepManager) add(sw *sweepState) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.byID[sw.id] = sw
	sm.order = append(sm.order, sw.id)
}

func (sm *sweepManager) get(id string) (*sweepState, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sw, ok := sm.byID[id]
	return sw, ok
}

func (sm *sweepManager) list() []*sweepState {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]*sweepState, 0, len(sm.order))
	for _, id := range sm.order {
		out = append(out, sm.byID[id])
	}
	return out
}

// noteSeq raises the ID sequence past a recovered sweep's number so fresh
// sweeps never collide with replayed ones.
func (sm *sweepManager) noteSeq(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "sweep-%d", &n); err != nil {
		return
	}
	sm.mu.Lock()
	if n > sm.seq {
		sm.seq = n
	}
	sm.mu.Unlock()
}

// sweepRequest is the body of POST /sweep: a base Params plus optional value
// lists. The grid is the cartesian product over the lists; an absent list
// contributes the base value. CustomGammas, when set on the base, apply to
// every point (one γ-scheme, one model build) and Gammas must then be empty.
type sweepRequest struct {
	Dataset string      `json:"dataset"`
	Params  core.Params `json:"params"`
	// Grid axes. Gammas entries are interpreted through the base Params'
	// AbsoluteGamma switch, exactly like Params.Gamma.
	Gammas   []float64 `json:"gammas"`
	Epsilons []float64 `json:"epsilons"`
	MinGs    []int     `json:"min_gs"`
	MinCs    []int     `json:"min_cs"`
	// Workers/TimeoutMS apply per point, with the same server defaults and
	// clamps as POST /jobs.
	Workers   int   `json:"workers"`
	TimeoutMS int64 `json:"timeout_ms"`
}

// sweepGrid enumerates the request's parameter grid, γ-major so that points
// sharing a model build are contiguous, with exact duplicates dropped.
func sweepGrid(req sweepRequest) ([]core.Params, error) {
	if req.Params.CustomGammas != nil && len(req.Gammas) > 0 {
		return nil, errors.New("gammas cannot be combined with CustomGammas (which fix the γ-scheme)")
	}
	gammas := req.Gammas
	if len(gammas) == 0 {
		gammas = []float64{req.Params.Gamma}
	}
	epsilons := req.Epsilons
	if len(epsilons) == 0 {
		epsilons = []float64{req.Params.Epsilon}
	}
	minGs := req.MinGs
	if len(minGs) == 0 {
		minGs = []int{req.Params.MinG}
	}
	minCs := req.MinCs
	if len(minCs) == 0 {
		minCs = []int{req.Params.MinC}
	}
	total := len(gammas) * len(epsilons) * len(minGs) * len(minCs)
	if total > maxSweepPoints {
		return nil, fmt.Errorf("grid has %d points, limit %d", total, maxSweepPoints)
	}
	seen := make(map[string]bool, total)
	out := make([]core.Params, 0, total)
	for _, g := range gammas {
		for _, mg := range minGs {
			for _, mc := range minCs {
				for _, e := range epsilons {
					p := req.Params
					p.Gamma, p.MinG, p.MinC, p.Epsilon = g, mg, mc, e
					key := cacheKey("", p)
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, p)
				}
			}
		}
	}
	return out, nil
}

// sweepPointView is one grid point of a sweep summary.
type sweepPointView struct {
	Params core.Params `json:"params"`
	Job    string      `json:"job"`
	Status JobStatus   `json:"status"`
	Cached bool        `json:"cached,omitempty"`
	// Clusters is the number delivered so far (final once Status is
	// terminal); Stats settles with the point.
	Clusters int         `json:"clusters"`
	Stats    *core.Stats `json:"stats,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// sweepView is the regcluster.sweep/v1 summary: per-point cluster counts and
// Stats, enough to pick "the ε yielding 10–50 clusters" without fetching any
// full result.
type sweepView struct {
	Schema    string    `json:"schema"`
	ID        string    `json:"id"`
	Dataset   string    `json:"dataset"`
	Recovered bool      `json:"recovered,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// Done is true once every point is terminal.
	Done bool `json:"done"`
	// ModelGroups is the number of distinct γ-schemes in the grid — the
	// number of RWave builds the sweep needs at most (fewer when a group's
	// build is already cached from earlier jobs).
	ModelGroups int              `json:"model_groups"`
	Points      []sweepPointView `json:"points"`
}

// view assembles the live summary of one sweep from the job table.
func (s *Server) sweepViewOf(sw *sweepState) sweepView {
	v := sweepView{
		Schema:    SweepSchemaID,
		ID:        sw.id,
		Dataset:   sw.dataset,
		Recovered: sw.recovered,
		CreatedAt: sw.created,
		Done:      true,
		Points:    make([]sweepPointView, len(sw.jobIDs)),
	}
	groups := make(map[string]bool)
	for i, jobID := range sw.jobIDs {
		groups[core.ModelKey(sw.dataset, sw.params[i])] = true
		pv := sweepPointView{Params: sw.params[i], Job: jobID}
		if j, ok := s.jobs.get(jobID); ok {
			jv := j.View()
			pv.Status = jv.Status
			pv.Cached = jv.Cached
			pv.Clusters = jv.Clusters
			pv.Stats = jv.Stats
			pv.Error = jv.Error
		} else {
			// The job vanished (journal corruption); surface it as failed
			// rather than omitting the point.
			pv.Status = StatusFailed
			pv.Error = "point job not found"
		}
		if !pv.Status.terminal() {
			v.Done = false
		}
		v.Points[i] = pv
	}
	v.ModelGroups = len(groups)
	return v
}

// handleSweep is POST /sweep: validate the grid, submit one job per point
// (journaled, cached, streamable like any other job), journal the sweep
// binding, and return the initial summary.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	// Drain pre-check BEFORE any point submits: a sweep accepted during
	// graceful drain would land a batch of jobs only to interrupt them at
	// grace expiry. 503 + Retry-After, like POST /jobs.
	if s.jobs.isClosed() {
		s.rejectDraining(w)
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	ds, ok := s.registry.get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	grid, err := sweepGrid(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep: %v", err)
		return
	}
	for i := range grid {
		if err := grid[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid params at grid point %d: %v", i, err)
			return
		}
		if grid[i].CustomGammas != nil && len(grid[i].CustomGammas) != ds.Genes {
			writeError(w, http.StatusBadRequest, "invalid params: %d CustomGammas for %d genes", len(grid[i].CustomGammas), ds.Genes)
			return
		}
		// Server- and tenant-side clamps, identical to POST /jobs (before
		// cache keying).
		grid[i].MaxNodes = clampCap(grid[i].MaxNodes, s.cfg.MaxNodesPerJob)
		grid[i].MaxClusters = clampCap(grid[i].MaxClusters, s.cfg.MaxClustersPerJob)
		grid[i].MaxNodes = clampCap(grid[i].MaxNodes, tn.maxNodes)
		grid[i].MaxClusters = clampCap(grid[i].MaxClusters, tn.maxClusters)
		if tn.nodes != nil {
			grid[i].MaxNodes = clampCap(grid[i].MaxNodes, int(tn.nodes.Capacity()))
		}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.DefaultWorkers
	}
	if err := core.ValidateWorkers(workers, s.cfg.MaxWorkersPerJob); err != nil {
		writeError(w, http.StatusBadRequest, "invalid workers: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "invalid timeout_ms: %d", req.TimeoutMS)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if s.cfg.MaxJobDuration > 0 && (timeout == 0 || timeout > s.cfg.MaxJobDuration) {
		timeout = s.cfg.MaxJobDuration
	}

	sw := &sweepState{
		id:      s.sweeps.nextID(),
		dataset: ds.ID,
		params:  grid,
		created: time.Now().UTC(),
		jobIDs:  make([]string, 0, len(grid)),
	}
	for _, p := range grid {
		j, err := s.jobs.submitAs(tn, ds, p, workers, timeout)
		var adm *admissionError
		switch {
		case errors.Is(err, ErrDraining):
			// Points already submitted keep running as ordinary jobs; the
			// sweep itself is not recorded.
			s.rejectDraining(w)
			return
		case errors.As(err, &adm):
			// Admission (quota/rate/overload) stopped the sweep mid-grid; the
			// accepted points keep mining as ordinary jobs under the tenant's
			// fair share, and the client retries the whole sweep later — every
			// settled point then resolves from the result cache.
			writeAdmissionError(w, adm)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		sw.jobIDs = append(sw.jobIDs, j.ID)
	}
	s.sweeps.add(sw)
	s.jobs.journalAppend(journalRecord{Type: recSweep, Sweep: sw.id,
		Dataset: sw.dataset, PointJobs: sw.jobIDs})
	writeJSON(w, http.StatusAccepted, s.sweepViewOf(sw))
}

func (s *Server) handleListSweeps(w http.ResponseWriter, _ *http.Request) {
	list := s.sweeps.list()
	views := make([]sweepView, len(list))
	for i, sw := range list {
		views[i] = s.sweepViewOf(sw)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweeps.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.sweepViewOf(sw))
}

// restoreSweep rebuilds one sweep from its journal record at boot. Point
// params are read back from the restored jobs themselves — the sweep record
// deliberately stores only the binding, never a second copy of the params.
func (s *Server) restoreSweep(rec journalRecord) {
	if rec.Sweep == "" || len(rec.PointJobs) == 0 {
		s.logf("service: journal: malformed sweep record %q; skipping", rec.Sweep)
		return
	}
	sw := &sweepState{
		id:        rec.Sweep,
		dataset:   rec.Dataset,
		created:   rec.Time,
		recovered: true,
		jobIDs:    rec.PointJobs,
		params:    make([]core.Params, len(rec.PointJobs)),
	}
	for i, jobID := range rec.PointJobs {
		if j, ok := s.jobs.get(jobID); ok {
			sw.params[i] = j.Params
		}
	}
	s.sweeps.noteSeq(sw.id)
	s.sweeps.add(sw)
}
