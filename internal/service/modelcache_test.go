package service

import (
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/paperdata"
	"regcluster/internal/report"
	"regcluster/internal/rwave"
)

// TestModelCacheSingleFlight forces the in-flight-sharing path
// deterministically: N goroutines request the same key while the one running
// build blocks until every other goroutine has had a chance to join it. The
// build runs exactly once, the starter counts as the miss, and every joiner
// counts as a hit. Run under -race this also proves the publication of the
// shared slice is properly synchronized.
func TestModelCacheSingleFlight(t *testing.T) {
	mt := NewMetrics()
	c := newModelCache(4, mt)

	const waiters = 8
	builds := 0
	started := make(chan struct{})
	release := make(chan struct{})
	want := []*rwave.Model{nil, nil} // identity is what matters, not contents

	var wg sync.WaitGroup
	results := make([][]*rwave.Model, waiters+1)
	launch := func(i int) {
		defer wg.Done()
		got, err := c.getOrBuild("k", func() ([]*rwave.Model, error) {
			builds++
			close(started)
			<-release
			return want, nil
		})
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
		results[i] = got
	}
	wg.Add(1)
	go launch(0)
	<-started // the build is in flight and holds no lock
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go launch(i)
	}
	// Joiners count their hit BEFORE blocking on the build, so waiting for
	// the metric is race-free and guarantees they joined rather than raced
	// past the inflight entry.
	for mt.ModelCacheHits.Load() < waiters {
	}
	close(release)
	wg.Wait()

	if builds != 1 {
		t.Fatalf("%d builds, want 1", builds)
	}
	for i, got := range results {
		if len(got) != len(want) {
			t.Fatalf("goroutine %d got %d models", i, len(got))
		}
	}
	if h, m := mt.ModelCacheHits.Load(), mt.ModelCacheMisses.Load(); h != waiters || m != 1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", h, m, waiters)
	}
	// A follow-up lookup is a retained-entry hit, no build.
	if _, err := c.getOrBuild("k", func() ([]*rwave.Model, error) {
		t.Fatal("rebuilt a retained entry")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.len() != 1 {
		t.Fatalf("len %d", c.len())
	}
}

// TestModelCacheEviction: LRU order under pressure, eviction counter, and the
// onEvict hook firing symmetrically with resultCache's.
func TestModelCacheEviction(t *testing.T) {
	mt := NewMetrics()
	c := newModelCache(2, mt)
	var evicted []string
	c.onEvict = func(key string) { evicted = append(evicted, key) }

	put := func(key string) {
		if _, err := c.getOrBuild(key, func() ([]*rwave.Model, error) {
			return []*rwave.Model{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // promote a over b
	put("c") // evicts b
	if !reflect.DeepEqual(evicted, []string{"b"}) {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if mt.ModelCacheEvictions.Load() != 1 {
		t.Fatalf("evictions %d", mt.ModelCacheEvictions.Load())
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
	// a survived its promotion; a fresh build for it would be a bug.
	if _, err := c.getOrBuild("a", func() ([]*rwave.Model, error) {
		t.Fatal("a was evicted despite promotion")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	// Disabled retention: nothing stored, every lookup builds.
	d := newModelCache(0, NewMetrics())
	put2 := 0
	for i := 0; i < 2; i++ {
		d.getOrBuild("x", func() ([]*rwave.Model, error) { put2++; return nil, nil })
	}
	if put2 != 2 || d.len() != 0 {
		t.Fatalf("disabled cache: %d builds, len %d", put2, d.len())
	}
}

// TestModelCacheErrorNotCached: a failed build propagates to its caller and
// is not retained — the next lookup retries and can succeed. A panicking
// build is contained the same way.
func TestModelCacheErrorNotCached(t *testing.T) {
	c := newModelCache(4, NewMetrics())
	boom := errors.New("boom")
	if _, err := c.getOrBuild("k", func() ([]*rwave.Model, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if _, err := c.getOrBuild("p", func() ([]*rwave.Model, error) { panic("kaboom") }); err == nil {
		t.Fatal("panicking build did not surface an error")
	}
	if c.len() != 0 {
		t.Fatalf("failed builds retained: len %d", c.len())
	}
	ok := false
	if _, err := c.getOrBuild("k", func() ([]*rwave.Model, error) { ok = true; return nil, nil }); err != nil || !ok {
		t.Fatalf("retry after failure: err=%v ok=%v", err, ok)
	}
}

// TestModelCacheSharedBuildByteIdentical is the differential check at the
// service level: two jobs sharing one γ (hence one RWave build) but differing
// in ε must produce results byte-identical — compared on their JSON encoding
// — to plain core.Mine runs that build their own index. Exactly one model
// build happens for the pair, visible on /metrics.
func TestModelCacheSharedBuildByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	params := []core.Params{
		{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1},
		{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.3}, // same γ ⇒ shared build
	}
	for i, p := range params {
		v := submitJob(t, ts, submitRequest{Dataset: id, Params: p})
		fin := waitTerminal(t, ts, v.ID)
		if fin.Status != StatusDone {
			t.Fatalf("job %d ended %s (%s)", i, fin.Status, fin.Error)
		}
		clusters, _ := streamClusters(t, ts, v.ID)

		want, err := core.Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		wantNamed := make([]report.NamedCluster, len(want.Clusters))
		for k, b := range want.Clusters {
			wantNamed[k] = report.Named(m, b)
		}
		gotJSON, _ := json.Marshal(clusters)
		wantJSON, _ := json.Marshal(wantNamed)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("job %d (ε=%v): shared-build clusters diverge from cold Mine", i, p.Epsilon)
		}
		if fin.Stats == nil || *fin.Stats != want.Stats {
			t.Fatalf("job %d stats diverge: %+v vs %+v", i, fin.Stats, want.Stats)
		}
	}
	if misses := metricValue(t, ts, "regserver_model_cache_misses_total"); misses != 1 {
		t.Fatalf("%d model builds for one γ group, want 1", misses)
	}
	if hits := metricValue(t, ts, "regserver_model_cache_hits_total"); hits != 1 {
		t.Fatalf("model cache hits %d, want 1", hits)
	}
	if entries := metricValue(t, ts, "regserver_model_cache_entries"); entries != 1 {
		t.Fatalf("model cache entries %d, want 1", entries)
	}
}

// TestModelCacheConcurrentJobs: a burst of concurrent jobs over two γ groups
// performs exactly two builds total, whatever the interleaving (retained hit
// or in-flight join — both avoid a build). Run with -race in CI.
func TestModelCacheConcurrentJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentJobs: 4})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	epsilons := []float64{0.05, 0.1, 0.2, 0.3}
	gammas := []float64{0.15, 0.3}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for _, g := range gammas {
		for _, e := range epsilons {
			wg.Add(1)
			go func(g, e float64) {
				defer wg.Done()
				v := submitJob(t, ts, submitRequest{Dataset: id,
					Params: core.Params{MinG: 3, MinC: 5, Gamma: g, Epsilon: e}})
				mu.Lock()
				ids = append(ids, v.ID)
				mu.Unlock()
			}(g, e)
		}
	}
	wg.Wait()
	for _, jid := range ids {
		if fin := waitTerminal(t, ts, jid); fin.Status != StatusDone {
			t.Fatalf("job %s ended %s (%s)", jid, fin.Status, fin.Error)
		}
	}
	if misses := metricValue(t, ts, "regserver_model_cache_misses_total"); misses != int64(len(gammas)) {
		t.Fatalf("%d model builds for %d γ groups", misses, len(gammas))
	}
	wantHits := int64(len(gammas)*len(epsilons) - len(gammas))
	if hits := metricValue(t, ts, "regserver_model_cache_hits_total"); hits != wantHits {
		t.Fatalf("model cache hits %d, want %d", hits, wantHits)
	}
}
