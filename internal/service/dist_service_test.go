package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/dist"
	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
	"regcluster/internal/synthetic"
)

// distWorkload is a multi-condition workload small enough that remote
// workers finish it in seconds; every condition becomes one lease.
func distWorkload(t *testing.T) (*matrix.Matrix, core.Params) {
	t.Helper()
	m, _, err := synthetic.Generate(synthetic.Config{Genes: 110, Conds: 12, Clusters: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return m, core.Params{MinG: 4, MinC: 4, Gamma: 0.08, Epsilon: 0.05}
}

// startDistWorkers connects n in-process dist workers to a coordinator-mode
// server and tears them down with the test.
func startDistWorkers(t *testing.T, ts *httptest.Server, n int) []*dist.Worker {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	workers := make([]*dist.Worker, n)
	for i := range workers {
		workers[i] = dist.NewWorker(dist.WorkerConfig{
			Coordinator: ts.URL,
			Name:        fmt.Sprintf("svc-worker-%d", i),
			Logf:        t.Logf,
		})
		go workers[i].Run(ctx) //nolint:errcheck // cancelled at test end
	}
	return workers
}

// TestCoordinatorModeByteIdenticalAcrossWorkers is the distributed acceptance
// scenario at the service layer: a job submitted to a coordinator-mode server
// with no local mining loops (DistLocalWorkers < 0) is mined entirely by two
// remote workers over HTTP, and the streamed result — clusters and Stats —
// byte-equals the single-node run.
func TestCoordinatorModeByteIdenticalAcrossWorkers(t *testing.T) {
	m, p := distWorkload(t)
	wantNamed, wantStats := minedReference(t, m, p)

	_, ts := newTestServer(t, Config{
		Mode: "coordinator", DistLocalWorkers: -1,
		LeaseTTL: 500 * time.Millisecond, Logf: t.Logf,
	})
	startDistWorkers(t, ts, 2)

	id := uploadMatrix(t, ts, m, "dist")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p})
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("distributed job ended %s (%s)", fin.Status, fin.Error)
	}
	if fin.Stats == nil || *fin.Stats != wantStats {
		t.Fatalf("distributed stats %+v, want %+v", fin.Stats, wantStats)
	}
	streamed, _ := streamClusters(t, ts, v.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatalf("distributed result diverges from single-node run (%d vs %d clusters)",
			len(streamed), len(wantNamed))
	}

	if n := metricValue(t, ts, "regserver_workers_connected"); n != 2 {
		t.Errorf("workers_connected %d, want 2", n)
	}
	if n := metricValue(t, ts, "regserver_leases_completed_total"); n != int64(m.Cols()) {
		t.Errorf("leases_completed %d, want %d", n, m.Cols())
	}
	if n := metricValue(t, ts, "regserver_leases_reassigned_total"); n != 0 {
		t.Errorf("leases_reassigned %d on a healthy run", n)
	}
	if n := metricValue(t, ts, "regserver_leases_active"); n != 0 {
		t.Errorf("leases_active %d after the run settled", n)
	}
}

// TestCoordinatorModeSurvivesWorkerKill kills one of two remote workers
// mid-lease (the injected fault stops its miner and silences its heartbeats,
// exactly what SIGKILL does to a worker process). The coordinator must revoke
// the lease after the TTL, re-issue the subtree from the received watermark,
// and still finish with the byte-identical result. With a durable data-dir,
// the reassignment leaves recWorker/recLease audit records in the journal;
// a restart replays past them cleanly and compaction drops them (the
// forward-compatibility satellite, end to end).
func TestCoordinatorModeSurvivesWorkerKill(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	m, p := distWorkload(t)
	wantNamed, wantStats := minedReference(t, m, p)

	cfg := Config{
		DataDir: dir, Mode: "coordinator", DistLocalWorkers: -1,
		LeaseTTL: 150 * time.Millisecond, Logf: t.Logf,
	}
	srvA, tsA := openTestServer(t, cfg)
	startDistWorkers(t, tsA, 2)

	// The 9th subtree cluster mined anywhere kills that worker's lease.
	faultinject.Arm("dist.worker.mine", faultinject.Spec{After: 8, Times: 1})

	id := uploadMatrix(t, tsA, m, "dist-kill")
	v := submitJob(t, tsA, submitRequest{Dataset: id, Params: p})
	fin := waitTerminal(t, tsA, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job ended %s (%s) after worker kill", fin.Status, fin.Error)
	}
	if faultinject.Fired("dist.worker.mine") == 0 {
		t.Fatal("kill fault never fired; the test exercised nothing")
	}
	if n := metricValue(t, tsA, "regserver_leases_reassigned_total"); n == 0 {
		t.Error("no lease reassignment recorded after a worker died mid-lease")
	}
	if fin.Stats == nil || *fin.Stats != wantStats {
		t.Fatalf("stats after reassignment %+v, want %+v", fin.Stats, wantStats)
	}
	streamed, _ := streamClusters(t, tsA, v.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatal("result after worker kill diverges from single-node run")
	}

	// The journal holds the audit trail of the run.
	raw, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	wal := string(raw)
	for _, want := range []string{
		`"type":"worker"`,
		`"type":"lease"`,
		`"lease_event":"lease_reassigned"`,
	} {
		if !strings.Contains(wal, want) {
			t.Errorf("journal missing %s", want)
		}
	}
	tsA.Close()
	srvA.Close()

	// Restart on the same data-dir in plain single mode: the audit records
	// replay as no-ops, the settled job comes back intact, and compaction
	// drops them from the rewritten journal.
	_, tsB := openTestServer(t, Config{DataDir: dir, Logf: t.Logf})
	jv := getJob(t, tsB, v.ID)
	if jv.Status != StatusDone || jv.Clusters != len(wantNamed) {
		t.Fatalf("recovered job view %+v, want done with %d clusters", jv, len(wantNamed))
	}
	streamed2, _ := streamClusters(t, tsB, v.ID)
	if !reflect.DeepEqual(streamed2, wantNamed) {
		t.Fatal("recovered result diverges after replaying audit records")
	}
	raw, err = os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	if s := string(raw); strings.Contains(s, `"type":"worker"`) || strings.Contains(s, `"type":"lease"`) {
		t.Error("compaction kept transient audit records")
	}
}

// TestReplayAuditRecordsSkipped pins the forward-compatibility contract of
// the audit records at the replay layer: recWorker/recLease lines interleaved
// with job records change nothing about the replayed job state, raise no
// "unknown record type" warning here, and a replayer predating them (its
// journalRecord lacks the fields, its switch lacks the cases) still decodes
// every line and skips them through its default branch.
func TestReplayAuditRecordsSkipped(t *testing.T) {
	cond := 3
	audit := []journalRecord{
		{Type: recWorker, Worker: "w-000001", Addr: "worker-a"},
		{Type: recLease, Job: "job-000001", Worker: "w-000001", Lease: "lease-000001",
			LeaseEvent: "lease_issued", Cond: &cond},
		{Type: recLease, Job: "job-000001", Worker: "w-000001", Lease: "lease-000001",
			LeaseEvent: "lease_reassigned", Cond: &cond, Skip: 5, Reason: "heartbeat ttl expired"},
	}
	p := runningParams()
	jobRecs := []journalRecord{
		{Type: recSubmit, Job: "job-000001", Seq: 1, Dataset: "ds", Params: &p},
		{Type: recCheckpoint, Job: "job-000001",
			Ckpt:        &core.Checkpoint{Version: 1, NextCond: 1, SkipClusters: 2},
			NewClusters: namedClusters("a", "b")},
		{Type: recDone, Job: "job-000001", CacheKey: "k"},
	}
	withAudit := []journalRecord{jobRecs[0], audit[0], audit[1], jobRecs[1], audit[2], jobRecs[2]}

	var lcPlain, lcAudit logCapture
	plainJobs, _, _, _, plainSeq := replayRecords(jobRecs, lcPlain.logf)
	auditJobs, _, _, _, auditSeq := replayRecords(withAudit, lcAudit.logf)
	if !reflect.DeepEqual(plainJobs, auditJobs) || plainSeq != auditSeq {
		t.Fatalf("audit records changed replayed state:\n%+v\nvs\n%+v", auditJobs, plainJobs)
	}
	if lcAudit.contains("unknown record type") {
		t.Fatalf("audit records hit the unknown-type path: %v", lcAudit.snapshot())
	}
	for _, rec := range canonicalRecords(auditJobs, nil, nil, nil) {
		if rec.Type == recWorker || rec.Type == recLease {
			t.Fatalf("compaction kept audit record %+v", rec)
		}
	}

	// A predating replayer: json decoding ignores the fields it does not
	// know, so every audit line still parses, carries an unrecognized Type,
	// and rides the default skip branch.
	type oldRecord struct {
		Type string `json:"type"`
		Job  string `json:"job,omitempty"`
	}
	for _, rec := range audit {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var old oldRecord
		if err := json.Unmarshal(line, &old); err != nil {
			t.Fatalf("predating replayer cannot decode %s: %v", line, err)
		}
		switch old.Type {
		case recSubmit, recCheckpoint, recDone, recFailed, recCancelled, recInterrupted, recSweep:
			t.Fatalf("audit record %q collides with a replayable type", old.Type)
		}
	}
}

// TestHealthzReadiness covers the readiness probe satellite: 200 with
// ready=true while the server accepts work, 503 with status=draining once
// Shutdown has begun; coordinator mode additionally reports its worker pool.
func TestHealthzReadiness(t *testing.T) {
	health := func(ts *httptest.Server) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	srv, ts := newTestServer(t, Config{})
	code, body := health(ts)
	if code != http.StatusOK || body["ready"] != true || body["mode"] != "single" {
		t.Fatalf("healthz %d %+v, want 200 ready single", code, body)
	}
	if _, ok := body["workers_connected"]; ok {
		t.Fatal("single mode reports a worker pool")
	}

	coord, cts := newTestServer(t, Config{Mode: "coordinator", Logf: t.Logf})
	code, body = health(cts)
	if code != http.StatusOK || body["mode"] != "coordinator" {
		t.Fatalf("coordinator healthz %d %+v", code, body)
	}
	if _, ok := body["workers_connected"]; !ok {
		t.Fatal("coordinator healthz omits workers_connected")
	}
	if _, ok := body["leases_active"]; !ok {
		t.Fatal("coordinator healthz omits leases_active")
	}

	// Draining flips the probe to 503 so load balancers steer away.
	for _, s := range []*Server{srv, coord} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
	for _, u := range []*httptest.Server{ts, cts} {
		code, body = health(u)
		if code != http.StatusServiceUnavailable || body["ready"] != false || body["status"] != "draining" {
			t.Fatalf("post-shutdown healthz %d %+v, want 503 draining", code, body)
		}
	}
}
