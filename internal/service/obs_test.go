package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"regcluster/internal/obs"
	"regcluster/internal/paperdata"
)

// traceResponse mirrors the GET /jobs/{id}/trace body.
type traceResponse struct {
	Job    string      `json:"job"`
	Status JobStatus   `json:"status"`
	Trace  []*obs.Node `json:"trace"`
}

func getTrace(t *testing.T, url string) (traceResponse, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr traceResponse
	json.NewDecoder(resp.Body).Decode(&tr)
	return tr, resp.StatusCode
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableTracing: true})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "running")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	waitTerminal(t, ts, v.ID)

	tr, status := getTrace(t, ts.URL+"/jobs/"+v.ID+"/trace")
	if status != http.StatusOK {
		t.Fatalf("trace status %d", status)
	}
	if tr.Job != v.ID || len(tr.Trace) != 1 {
		t.Fatalf("bad trace envelope: %+v", tr)
	}
	root := tr.Trace[0]
	if root.Name != "job" || !root.Done {
		t.Fatalf("root span not a finished job: %+v", root)
	}
	if root.Attrs["status"] != string(StatusDone) {
		t.Fatalf("job span status attr = %q", root.Attrs["status"])
	}
	names := map[string]int{}
	var walk func(ns []*obs.Node)
	walk = func(ns []*obs.Node) {
		for _, n := range ns {
			names[n.Name]++
			walk(n.Children)
		}
	}
	walk(root.Children)
	for _, want := range []string{"queue", "attempt", "rwave.build", "subtree"} {
		if names[want] == 0 {
			t.Fatalf("span %q missing from trace (have %v)", want, names)
		}
	}

	// A cached re-submission still gets a (terminal, cached) job span.
	v2 := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	tr2, _ := getTrace(t, ts.URL+"/jobs/"+v2.ID+"/trace")
	if len(tr2.Trace) != 1 || tr2.Trace[0].Attrs["cached"] != "true" {
		t.Fatalf("cached job trace: %+v", tr2.Trace)
	}

	if _, status := getTrace(t, ts.URL+"/jobs/nope/trace"); status != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d", status)
	}
}

func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "running")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	waitTerminal(t, ts, v.ID)
	if _, status := getTrace(t, ts.URL+"/jobs/"+v.ID+"/trace"); status != http.StatusNotFound {
		t.Fatalf("trace without -trace: status %d, want 404", status)
	}
}

func TestRequestLogMiddleware(t *testing.T) {
	var lc logCapture
	_, ts := newTestServer(t, Config{Logf: lc.logf})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("no X-Request-Id header")
	}
	if !lc.contains("http request") || !lc.contains("req="+rid) ||
		!lc.contains("path=/healthz") || !lc.contains("status=200") {
		t.Fatalf("request log incomplete: %v", lc.snapshot())
	}
}

func TestSlowJobWarning(t *testing.T) {
	var lc logCapture
	// Any job is "slow" against a 1ns threshold.
	_, ts := newTestServer(t, Config{Logf: lc.logf, SlowJobThreshold: time.Nanosecond})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "running")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	waitTerminal(t, ts, v.ID)
	if !lc.contains("slow job") || !lc.contains("job="+v.ID) ||
		!lc.contains("queue_ms=") || !lc.contains("run_ms=") {
		t.Fatalf("no slow-job breakdown logged: %v", lc.snapshot())
	}

	// Negative threshold disables the warning.
	var quiet logCapture
	_, ts2 := newTestServer(t, Config{Logf: quiet.logf, SlowJobThreshold: -1})
	id2 := uploadMatrix(t, ts2, paperdata.RunningExample(), "running")
	v2 := submitJob(t, ts2, submitRequest{Dataset: id2, Params: runningParams()})
	waitTerminal(t, ts2, v2.ID)
	if quiet.contains("slow job") {
		t.Fatalf("slow-job warning despite disabled threshold: %v", quiet.snapshot())
	}
}

func TestMetricsObservability(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "running")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	waitTerminal(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE regserver_phase_duration_seconds histogram",
		`regserver_phase_duration_seconds_bucket{phase="queue",le="+Inf"} 1`,
		`regserver_phase_duration_seconds_bucket{phase="run",le="+Inf"} 1`,
		`regserver_phase_duration_seconds_count{phase="queue"} 1`,
		"# TYPE regserver_jobs_queued gauge",
		"# TYPE regserver_streams_inflight gauge",
		"# TYPE regserver_goroutines gauge",
		"# TYPE regserver_heap_alloc_bytes gauge",
		"# TYPE regserver_gc_pause_seconds_total gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
