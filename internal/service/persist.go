package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
	"regcluster/internal/report"
)

// Durable layout under Config.DataDir:
//
//	datasets/<id>.tsv    canonical TSV of a registered matrix (content-addressed,
//	                     so every file is self-verifying against its name)
//	datasets/<id>.json   upload metadata (name, time, imputed cells)
//	results/<key>.json   one settled result per cache key (clusters + stats)
//	journal.wal          append-only job journal (see journal.go)
//
// Every file is written atomically: the bytes go to a tmp file in the target
// directory, are fsynced, and the tmp is renamed over the destination (with a
// directory fsync), so a crash can never leave a half-written dataset or
// result — only a stale tmp file, which boot sweeps away.
const (
	datasetsDirName = "datasets"
	resultsDirName  = "results"
	journalFileName = "journal.wal"
	tmpPrefix       = ".tmp-"
)

// store is the durable side of one Server: dataset and result files under a
// data directory. All methods are safe for concurrent use (atomic writes
// never collide: tmp names are unique and renames are atomic).
type store struct {
	dir  string
	logf func(format string, args ...any)
}

func openStore(dir string, logf func(string, ...any)) (*store, error) {
	for _, d := range []string{dir, filepath.Join(dir, datasetsDirName), filepath.Join(dir, resultsDirName)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: create data dir: %w", err)
		}
	}
	s := &store{dir: dir, logf: logf}
	s.sweepTmp()
	return s, nil
}

func (s *store) journalPath() string { return filepath.Join(s.dir, journalFileName) }

// sweepTmp removes tmp files a crash may have left behind mid-write.
func (s *store) sweepTmp() {
	for _, sub := range []string{s.dir, filepath.Join(s.dir, datasetsDirName), filepath.Join(s.dir, resultsDirName)} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), tmpPrefix) {
				os.Remove(filepath.Join(sub, e.Name()))
			}
		}
	}
}

// writeFileAtomic durably replaces path with data: tmp file in the same
// directory, write, fsync, rename, fsync directory.
func writeFileAtomic(path string, data []byte) error {
	if err := faultinject.Hook("persist.write"); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// datasetMeta is the sidecar JSON of one persisted dataset.
type datasetMeta struct {
	Name         string    `json:"name"`
	UploadedAt   time.Time `json:"uploaded_at"`
	ImputedCells int       `json:"imputed_cells"`
}

func (s *store) datasetPath(id, ext string) string {
	return filepath.Join(s.dir, datasetsDirName, id+ext)
}

// saveDataset persists a registered dataset: canonical TSV plus metadata.
func (s *store) saveDataset(ds *Dataset) error {
	if err := faultinject.Hook("persist.dataset"); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := ds.Matrix().WriteTSV(&buf); err != nil {
		return err
	}
	if err := writeFileAtomic(s.datasetPath(ds.ID, ".tsv"), buf.Bytes()); err != nil {
		return err
	}
	meta, err := json.Marshal(datasetMeta{Name: ds.Name, UploadedAt: ds.UploadedAt, ImputedCells: ds.ImputedCells})
	if err != nil {
		return err
	}
	return writeFileAtomic(s.datasetPath(ds.ID, ".json"), meta)
}

func (s *store) deleteDataset(id string) {
	os.Remove(s.datasetPath(id, ".tsv"))
	os.Remove(s.datasetPath(id, ".json"))
}

// loadDatasets reads every persisted dataset, verifying each file against its
// content-addressed name; corrupt or mismatched files are skipped with a
// warning, never fatal — recovery prefers a partial registry over no boot.
func (s *store) loadDatasets() []*Dataset {
	dir := filepath.Join(s.dir, datasetsDirName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.logf("service: read %s: %v; booting with an empty registry", dir, err)
		return nil
	}
	var out []*Dataset
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".tsv") || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		id := strings.TrimSuffix(name, ".tsv")
		m, err := matrix.ReadTSVFile(filepath.Join(dir, name))
		if err != nil {
			s.logf("service: dataset %s unreadable (%v); skipping", id, err)
			continue
		}
		m.FillNaN() // persisted matrices are already imputed; normalize anyway
		if got := m.Hash(); got != id {
			s.logf("service: dataset file %s hashes to %s; corrupt, skipping", id, got)
			continue
		}
		meta := datasetMeta{Name: "dataset-" + id[:12], UploadedAt: time.Now().UTC()}
		if raw, err := os.ReadFile(s.datasetPath(id, ".json")); err == nil {
			if err := json.Unmarshal(raw, &meta); err != nil {
				s.logf("service: dataset %s metadata corrupt (%v); using defaults", id, err)
			}
		}
		out = append(out, newDataset(m, meta.Name, meta.ImputedCells, meta.UploadedAt))
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].UploadedAt.Equal(out[j].UploadedAt) {
			return out[i].UploadedAt.Before(out[j].UploadedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// resultFile is the persisted form of one cached mining outcome.
type resultFile struct {
	Clusters []report.NamedCluster `json:"clusters"`
	Stats    core.Stats            `json:"stats"`
}

func (s *store) resultPath(key string) string {
	return filepath.Join(s.dir, resultsDirName, key+".json")
}

// saveResult persists one settled result under its cache key.
func (s *store) saveResult(key string, res cachedResult) error {
	if err := faultinject.Hook("persist.result"); err != nil {
		return err
	}
	clusters := res.clusters
	if clusters == nil {
		clusters = []report.NamedCluster{}
	}
	data, err := json.Marshal(resultFile{Clusters: clusters, Stats: res.stats})
	if err != nil {
		return err
	}
	return writeFileAtomic(s.resultPath(key), data)
}

func (s *store) deleteResult(key string) { os.Remove(s.resultPath(key)) }

// storedResult is one recovered cache entry.
type storedResult struct {
	key string
	res cachedResult
}

// loadResults restores persisted results oldest-first (so re-inserting them
// in order rebuilds a sensible LRU recency). When more results exist than the
// cache admits, the oldest overflow files are deleted.
func (s *store) loadResults(max int) []storedResult {
	dir := filepath.Join(s.dir, resultsDirName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.logf("service: read %s: %v; booting with an empty cache", dir, err)
		return nil
	}
	type fileInfo struct {
		key string
		mod time.Time
	}
	var files []fileInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{key: strings.TrimSuffix(name, ".json"), mod: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].key < files[j].key
	})
	if max > 0 && len(files) > max {
		for _, f := range files[:len(files)-max] {
			s.deleteResult(f.key)
		}
		files = files[len(files)-max:]
	}
	var out []storedResult
	for _, f := range files {
		raw, err := os.ReadFile(s.resultPath(f.key))
		if err != nil {
			s.logf("service: result %s unreadable (%v); skipping", f.key, err)
			continue
		}
		var rf resultFile
		if err := json.Unmarshal(raw, &rf); err != nil {
			s.logf("service: result %s corrupt (%v); deleting", f.key, err)
			s.deleteResult(f.key)
			continue
		}
		out = append(out, storedResult{key: f.key, res: cachedResult{clusters: rf.Clusters, stats: rf.Stats}})
	}
	return out
}
