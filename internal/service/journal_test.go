package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/report"
)

// logCapture collects Logf lines for assertions, safe for concurrent use.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) contains(substr string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func (lc *logCapture) snapshot() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.lines...)
}

func writeJournalLines(t *testing.T, dir string, lines ...string) string {
	t.Helper()
	path := filepath.Join(dir, journalFileName)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func submitLine(t *testing.T, job string, seq int, dataset string) string {
	t.Helper()
	p := runningParams()
	raw, err := json.Marshal(journalRecord{Type: recSubmit, Job: job, Seq: seq, Dataset: dataset, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestReplayTornFinalRecord simulates the torn write a crash mid-append
// leaves behind: the final, truncated line is dropped with a warning and
// every record before it replays.
func TestReplayTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	path := writeJournalLines(t, dir,
		submitLine(t, "job-000001", 1, "ds1"),
		submitLine(t, "job-000002", 2, "ds1"),
		`{"type":"done","job":"job-00`) // torn mid-append
	recs := replayJournalFile(path, lc.logf)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if !lc.contains("torn final record") {
		t.Fatalf("torn record not warned about: %v", lc.lines)
	}
}

// TestReplayUnknownRecordType: a record type from a newer server is skipped
// with a warning; everything else still replays (forward compatibility).
func TestReplayUnknownRecordType(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	path := writeJournalLines(t, dir,
		submitLine(t, "job-000001", 1, "ds1"),
		`{"type":"lease_renewed","job":"job-000001","holder":"node-7"}`,
		`{"type":"failed","job":"job-000001","error":"boom"}`)
	recs := replayJournalFile(path, lc.logf)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	jobs, _, _, _, maxSeq := replayRecords(recs, lc.logf)
	if len(jobs) != 1 || maxSeq != 1 {
		t.Fatalf("replay state: %d jobs, seq %d", len(jobs), maxSeq)
	}
	if !lc.contains("unknown record type") {
		t.Fatalf("unknown type not warned about: %v", lc.lines)
	}
	if jobs[0].terminal == nil || jobs[0].terminal.Type != recFailed {
		t.Fatal("records after the unknown type were lost")
	}
}

// TestReplayMidFileCorruption: an undecodable record that is NOT the final
// line means real corruption; replay keeps the prefix and stops there.
func TestReplayMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	path := writeJournalLines(t, dir,
		submitLine(t, "job-000001", 1, "ds1"),
		`%%% not json at all %%%`,
		submitLine(t, "job-000002", 2, "ds1"))
	recs := replayJournalFile(path, lc.logf)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 (prefix before corruption)", len(recs))
	}
	if !lc.contains("replay stops here") {
		t.Fatalf("corruption not warned about: %v", lc.lines)
	}
}

// namedClusters builds distinguishable NamedCluster stand-ins for replay
// tests; only the first chain entry matters to the assertions.
func namedClusters(tags ...string) []report.NamedCluster {
	out := make([]report.NamedCluster, len(tags))
	for i, tag := range tags {
		out[i] = report.NamedCluster{Chain: []string{tag}, Direction: report.DirectionRising}
	}
	return out
}

func clusterTags(cs []report.NamedCluster) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Chain[0]
	}
	return out
}

// TestReplayRecordsReconcilesOverlap: when a checkpoint append failed and a
// later one re-journaled the overlapping clusters, replay must not duplicate
// them — the snapshot watermark decides.
func TestReplayRecordsReconcilesOverlap(t *testing.T) {
	var lc logCapture
	p := runningParams()
	recs := []journalRecord{
		{Type: recSubmit, Job: "job-000001", Seq: 1, Dataset: "ds", Params: &p},
		{Type: recCheckpoint, Job: "job-000001",
			Ckpt:        &core.Checkpoint{Version: 1, NextCond: 1, SkipClusters: 2},
			NewClusters: namedClusters("a", "b")},
		// The next append failed; this one re-journals b and c.
		{Type: recCheckpoint, Job: "job-000001",
			Ckpt:        &core.Checkpoint{Version: 1, NextCond: 1, SkipClusters: 3},
			NewClusters: namedClusters("b", "c")},
	}
	jobs, _, _, _, _ := replayRecords(recs, lc.logf)
	if len(jobs) != 1 {
		t.Fatalf("%d jobs", len(jobs))
	}
	got := clusterTags(jobs[0].clusters)
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("reconciled clusters %v, want [a b c]", got)
	}
}

// TestBootCorruptDataDir: a data-dir full of garbage must degrade to a clean
// boot with logged warnings — never a refused start.
func TestBootCorruptDataDir(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	// Garbage journal, garbage dataset, stale tmp litter.
	writeJournalLines(t, dir, `{"type":`, `garbage`)
	for _, f := range []struct{ sub, name, body string }{
		{datasetsDirName, "deadbeef.tsv", "not\ta\tmatrix"},
		{datasetsDirName, tmpPrefix + "123", "partial"},
		{resultsDirName, "badresult.json", "{corrupt"},
	} {
		if err := os.MkdirAll(filepath.Join(dir, f.sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, f.sub, f.name), []byte(f.body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Config{DataDir: dir, Logf: lc.logf})
	if err != nil {
		t.Fatalf("corrupt data-dir refused to boot: %v", err)
	}
	defer s.Close()
	if n := s.registry.size(); n != 0 {
		t.Fatalf("%d datasets from garbage", n)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("%d cache entries from garbage", n)
	}
	if len(s.jobs.list()) != 0 {
		t.Fatal("jobs materialized from a corrupt journal")
	}
	if len(lc.lines) == 0 {
		t.Fatal("corruption swallowed silently; want logged warnings")
	}
	// The stale tmp file was swept.
	if _, err := os.Stat(filepath.Join(dir, datasetsDirName, tmpPrefix+"123")); !os.IsNotExist(err) {
		t.Fatal("stale tmp file survived boot")
	}
}

// TestBootEmptyAndFreshDataDir: an empty (or not-yet-existing) data-dir is a
// clean boot, and the directory layout is created.
func TestBootEmptyAndFreshDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-existed")
	var lc logCapture
	s, err := Open(Config{DataDir: dir, Logf: lc.logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, sub := range []string{datasetsDirName, resultsDirName} {
		if fi, err := os.Stat(filepath.Join(dir, sub)); err != nil || !fi.IsDir() {
			t.Fatalf("layout dir %s missing: %v", sub, err)
		}
	}
	if s.wal == nil {
		t.Fatal("durable server booted without a journal")
	}
}

// TestJournalCompaction: boot rewrites the replayed journal canonically —
// one submit plus one terminal or merged-checkpoint record per job — so the
// WAL does not grow without bound across restarts.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	var lc logCapture
	mk := func(rec journalRecord) string {
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	writeJournalLines(t, dir,
		submitLine(t, "job-000001", 1, "ds1"),
		mk(journalRecord{Type: recCheckpoint, Job: "job-000001",
			Ckpt: &core.Checkpoint{Version: 1, NextCond: 1, SkipClusters: 1}, NewClusters: namedClusters("a")}),
		mk(journalRecord{Type: recCheckpoint, Job: "job-000001",
			Ckpt: &core.Checkpoint{Version: 1, NextCond: 2, SkipClusters: 2}, NewClusters: namedClusters("b")}),
		mk(journalRecord{Type: recCancelled, Job: "job-000001"}),
		submitLine(t, "job-000002", 2, "ds2"))

	s, err := Open(Config{DataDir: dir, Logf: lc.logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	raw, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// job-000001 compacts to submit+cancelled; job-000002's dataset is gone,
	// so it settles as failed at boot and appends its own terminal record.
	var types []string
	for _, l := range lines {
		var rec journalRecord
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("compacted journal line %q: %v", l, err)
		}
		types = append(types, rec.Type+":"+rec.Job)
	}
	want := []string{
		"submit:job-000001", "cancelled:job-000001",
		"submit:job-000002", "failed:job-000002",
	}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("compacted journal %v, want %v", types, want)
	}
	// Sequence numbering continues past the replayed jobs.
	s.jobs.mu.Lock()
	seq := s.jobs.seq
	s.jobs.mu.Unlock()
	if seq != 2 {
		t.Fatalf("restored seq %d, want 2", seq)
	}
}
