package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"regcluster/internal/paperdata"
)

// submitWithKey posts a submission authenticated by an API key, returning the
// decoded view, the status, and the Retry-After header (empty when absent).
func submitWithKey(t *testing.T, ts *httptest.Server, req submitRequest, key string) (JobView, int, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if key != "" {
		hr.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode, resp.Header.Get("Retry-After")
}

// getTenantUsage fetches GET /tenants/{id}/usage.
func getTenantUsage(t *testing.T, ts *httptest.Server, id string) (tenantView, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/tenants/" + id + "/usage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v tenantView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// labeledMetricValue reads one labeled series (name{tenant="id"}) from
// /metrics; metricValue only matches unlabeled lines.
func labeledMetricValue(t *testing.T, ts *httptest.Server, name, tenantID string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prefix := fmt.Sprintf("%s{tenant=%q} ", name, tenantID)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseInt(strings.TrimPrefix(line, prefix), 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s{tenant=%q} not exposed", name, tenantID)
	return 0
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// waitRunning polls until the job demonstrably holds a mining slot.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		jv := getJob(t, ts, id)
		if jv.Status == StatusRunning {
			return
		}
		if jv.Status.terminal() {
			t.Fatalf("job settled (%s) before running", jv.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never started running")
}

// TestTenantAuthUsageAndMetrics: an authenticated submission is attributed to
// its tenant end to end — job view, usage ledger, labeled metrics — while a
// wrong key fails loudly with 401 and keyless requests stay anonymous.
func TestTenantAuthUsageAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: []TenantConfig{
		{ID: "alpha", APIKey: "ka", Weight: 2},
		{ID: "beta", APIKey: "kb", Priority: "high"},
	}})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "table1")

	v, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: runningParams()}, "ka")
	if code != http.StatusAccepted || v.Tenant != "alpha" {
		t.Fatalf("authenticated submit: %d %+v", code, v)
	}
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusDone || fin.Tenant != "alpha" {
		t.Fatalf("settled view %+v", fin)
	}

	// Keyless requests resolve to the anonymous tenant; its view omits the
	// tenant field so pre-tenancy clients see an unchanged schema.
	av, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: runningParams()}, "")
	if code != http.StatusAccepted || av.Tenant != "" {
		t.Fatalf("anonymous submit: %d %+v", code, av)
	}
	waitTerminal(t, ts, av.ID)

	// A typo'd key must 401, never demote to anonymous limits.
	if _, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: runningParams()}, "typo"); code != http.StatusUnauthorized {
		t.Fatalf("unknown key status %d, want 401", code)
	}

	u, code := getTenantUsage(t, ts, "alpha")
	if code != http.StatusOK {
		t.Fatalf("usage status %d", code)
	}
	if u.ID != "alpha" || u.Weight != 2 || u.Usage.Jobs != 1 || u.Usage.Completed != 1 || u.Usage.Nodes == 0 {
		t.Fatalf("alpha usage %+v", u)
	}
	if _, code := getTenantUsage(t, ts, "ghost"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant usage status %d", code)
	}

	// GET /tenants lists every tenant, anonymous first, keys never echoed.
	resp, err := http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	var list struct {
		Tenants []tenantView `json:"tenants"`
	}
	if err := json.Unmarshal(raw.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 3 || list.Tenants[0].ID != AnonymousTenant {
		t.Fatalf("tenant list %+v", list.Tenants)
	}
	if strings.Contains(raw.String(), "ka") || strings.Contains(raw.String(), `"api_key"`) {
		t.Fatal("tenant list leaked an API key")
	}

	if got := labeledMetricValue(t, ts, "regserver_tenant_jobs_total", "alpha"); got != 1 {
		t.Fatalf(`jobs_total{tenant="alpha"} = %d`, got)
	}
	if got := labeledMetricValue(t, ts, "regserver_tenant_jobs_completed_total", "alpha"); got != 1 {
		t.Fatalf(`jobs_completed_total{tenant="alpha"} = %d`, got)
	}
	if got := labeledMetricValue(t, ts, "regserver_tenant_jobs_total", AnonymousTenant); got != 1 {
		t.Fatalf(`jobs_total{tenant="anonymous"} = %d`, got)
	}
}

// TestTenantRateLimit429: exhausting a tenant's token bucket rejects with 429
// and a Retry-After header, accounts the rejection, and leaves other tenants
// unaffected.
func TestTenantRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: []TenantConfig{
		{ID: "slow-lane", APIKey: "ks", RatePerSec: 0.01, Burst: 1},
		{ID: "fast-lane", APIKey: "kf"},
	}})
	id := uploadMatrix(t, ts, paperdata.RunningExample(), "table1")

	v, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: runningParams()}, "ks")
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	waitTerminal(t, ts, v.ID)

	_, code, retry := submitWithKey(t, ts, submitRequest{Dataset: id, Params: runningParams()}, "ks")
	if code != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit status %d, want 429", code)
	}
	secs, err := strconv.Atoi(retry)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", retry)
	}

	// The rejection lands in the ledger and the labeled metric; the other
	// tenant's bucket is untouched.
	u, _ := getTenantUsage(t, ts, "slow-lane")
	if u.Usage.Rejected != 1 || u.Usage.Jobs != 1 {
		t.Fatalf("slow-lane usage %+v", u.Usage)
	}
	if got := labeledMetricValue(t, ts, "regserver_tenant_jobs_rejected_total", "slow-lane"); got != 1 {
		t.Fatalf("rejected_total %d", got)
	}
	if got := metricValue(t, ts, "regserver_jobs_rejected_total"); got != 1 {
		t.Fatalf("global rejected_total %d", got)
	}
	if _, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: runningParams()}, "kf"); code != http.StatusAccepted {
		t.Fatalf("unrelated tenant rejected: %d", code)
	}
}

// TestTenantQuota429: the concurrent-job quota rejects the second in-flight
// job of a bounded tenant with 429 + Retry-After, and releases with the slot.
func TestTenantQuota429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentJobs: 1, Tenants: []TenantConfig{
		{ID: "capped", APIKey: "kc", MaxActive: 1},
	}})
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")

	v, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: p}, "kc")
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	waitRunning(t, ts, v.ID)

	p2 := p
	p2.Epsilon = 3
	_, code, retry := submitWithKey(t, ts, submitRequest{Dataset: id, Params: p2}, "kc")
	if code != http.StatusTooManyRequests || retry == "" {
		t.Fatalf("over-quota submit: %d Retry-After %q, want 429 with header", code, retry)
	}

	cancelJob(t, ts, v.ID)
	waitTerminal(t, ts, v.ID)
	// With the first job settled the quota is free again.
	v3, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: p2}, "kc")
	if code != http.StatusAccepted {
		t.Fatalf("post-settle submit status %d", code)
	}
	cancelJob(t, ts, v3.ID)
	waitTerminal(t, ts, v3.ID)
}

// TestDrainWindowRejectsWithRetryAfter is the drain-window regression test:
// from the instant graceful drain begins, POST /jobs and POST /sweep reject
// with 503 + Retry-After instead of accepting work that the grace deadline
// would interrupt moments later.
func TestDrainWindowRejectsWithRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p})
	waitRunning(t, ts, v.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	// Wait for the drain window to open (healthz flips to 503/draining).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never began")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Mid-drain, with the slow job still running: submissions must 503 with
	// a Retry-After, not 202.
	_, code, retry := submitWithKey(t, ts, submitRequest{Dataset: id, Params: p}, "")
	if code != http.StatusServiceUnavailable || retry == "" {
		t.Fatalf("mid-drain submit: %d Retry-After %q, want 503 with header", code, retry)
	}
	sweepBody, _ := json.Marshal(map[string]any{
		"dataset": id, "params": p, "epsilons": []float64{2, 3},
	})
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mid-drain sweep: %d Retry-After %q, want 503 with header",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	cancelJob(t, ts, v.ID)
	waitTerminal(t, ts, v.ID)
	if err := <-done; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}
}

// TestShedSettlesJobAndSurvivesRestart: a queued low-priority job displaced
// by a high-priority arrival settles as cancelled-by-shed, is journaled, and
// a restart neither resurrects it nor loses any tenant's usage totals.
func TestShedSettlesJobAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	tenants := []TenantConfig{
		{ID: "batch", APIKey: "kb", Priority: "low"},
		{ID: "inter", APIKey: "ki", Priority: "high"},
	}
	cfg := Config{DataDir: dir, MaxConcurrentJobs: 1, ShedWatermark: 1,
		Tenants: tenants, Logf: t.Logf}
	srv, ts := openTestServer(t, cfg)
	m, p := slowWorkload(t)
	id := uploadMatrix(t, ts, m, "slow")

	// Anonymous blocker takes the only slot.
	blocker := submitJob(t, ts, submitRequest{Dataset: id, Params: p})
	waitRunning(t, ts, blocker.ID)

	// The batch tenant queues one job — exactly at the watermark.
	pb := p
	pb.Epsilon = 3
	bv, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: pb}, "kb")
	if code != http.StatusAccepted {
		t.Fatalf("batch submit status %d", code)
	}

	// A high-priority arrival crosses the watermark; the shedder evicts the
	// queued batch job rather than the newcomer.
	pi := p
	pi.Epsilon = 4
	iv, code, _ := submitWithKey(t, ts, submitRequest{Dataset: id, Params: pi}, "ki")
	if code != http.StatusAccepted {
		t.Fatalf("inter submit status %d", code)
	}

	shedded := waitTerminal(t, ts, bv.ID)
	if shedded.Status != StatusCancelled || !shedded.Shed || !strings.Contains(shedded.Error, "shed") {
		t.Fatalf("shed job settled as %+v", shedded)
	}
	u, _ := getTenantUsage(t, ts, "batch")
	if u.Usage.Shed != 1 {
		t.Fatalf("batch usage after shed %+v", u.Usage)
	}
	if got := metricValue(t, ts, "regserver_jobs_shed_total"); got != 1 {
		t.Fatalf("jobs_shed_total %d", got)
	}

	// Settle everything else, snapshot the ledgers, and drain.
	cancelJob(t, ts, blocker.ID)
	cancelJob(t, ts, iv.ID)
	waitTerminal(t, ts, blocker.ID)
	waitTerminal(t, ts, iv.ID)
	before := map[string]TenantUsage{}
	for _, tid := range []string{AnonymousTenant, "batch", "inter"} {
		v, _ := getTenantUsage(t, ts, tid)
		before[tid] = v.Usage
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	srv.Close()

	// Restart on the same data-dir: the shed job must come back settled —
	// never re-enqueued — and every usage ledger must replay to the exact
	// pre-restart totals.
	_, ts2 := openTestServer(t, cfg)
	replayed := getJob(t, ts2, bv.ID)
	if replayed.Status != StatusCancelled || !replayed.Shed {
		t.Fatalf("shed job after restart %+v", replayed)
	}
	if replayed.Recovered {
		t.Fatal("shed job was re-enqueued by recovery")
	}
	for tid, want := range before {
		v, code := getTenantUsage(t, ts2, tid)
		if code != http.StatusOK || !reflect.DeepEqual(v.Usage, want) {
			t.Fatalf("tenant %s usage after restart:\n got %+v\nwant %+v", tid, v.Usage, want)
		}
	}
}

// TestReplayShedAndUsageRecords mirrors TestReplayAuditRecordsSkipped for the
// admission-control record types: shed records settle their job on replay,
// usage records replay last-snapshot-wins and survive compaction (one per
// tenant), and both ride the default skip branch of a predating replayer.
func TestReplayShedAndUsageRecords(t *testing.T) {
	p := runningParams()
	u1 := TenantUsage{Jobs: 2, Completed: 1, Nodes: 10}
	u2 := TenantUsage{Jobs: 3, Completed: 2, Nodes: 25, NodeSeconds: 1.5}
	recs := []journalRecord{
		{Type: recSubmit, Job: "job-000001", Seq: 1, Dataset: "ds", Params: &p, Tenant: "acme"},
		{Type: recUsage, Tenant: "acme", Usage: &u1},
		{Type: recShed, Job: "job-000001"},
		{Type: recUsage, Tenant: "acme", Usage: &u2}, // cumulative: last wins
		{Type: recUsage}, // malformed: no tenant, skipped
	}

	var lc logCapture
	jobs, _, _, usage, _ := replayRecords(recs, lc.logf)
	if len(jobs) != 1 || jobs[0].terminal == nil || jobs[0].terminal.Type != recShed {
		t.Fatalf("shed record did not settle the job: %+v", jobs)
	}
	if lc.contains("unknown record type") {
		t.Fatalf("new record types hit the unknown-type path: %v", lc.snapshot())
	}
	if len(usage) != 1 || !reflect.DeepEqual(usage["acme"], u2) {
		t.Fatalf("usage replay %+v, want last snapshot %+v", usage, u2)
	}

	// Compaction keeps the shed terminal record and exactly one usage record
	// per tenant — unlike audit records, these survive rewrites.
	var shedKept bool
	var usageKept int
	for _, rec := range canonicalRecords(jobs, nil, nil, usage) {
		switch rec.Type {
		case recShed:
			shedKept = true
		case recUsage:
			usageKept++
			if rec.Tenant != "acme" || !reflect.DeepEqual(*rec.Usage, u2) {
				t.Fatalf("compacted usage record %+v", rec)
			}
		}
	}
	if !shedKept || usageKept != 1 {
		t.Fatalf("compaction kept shed=%v usage=%d, want true/1", shedKept, usageKept)
	}

	// A predating replayer decodes both new types fine and skips them: their
	// Type strings collide with none it replays.
	type oldRecord struct {
		Type string `json:"type"`
		Job  string `json:"job,omitempty"`
	}
	for _, rec := range recs[1:4] {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var old oldRecord
		if err := json.Unmarshal(line, &old); err != nil {
			t.Fatalf("predating replayer cannot decode %s: %v", line, err)
		}
		switch old.Type {
		case recSubmit, recCheckpoint, recDone, recFailed, recCancelled, recInterrupted, recSweep:
			t.Fatalf("record %q collides with a pre-tenancy replayable type", old.Type)
		}
	}
}
