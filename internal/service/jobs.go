package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/report"
)

// JobStatus is the lifecycle state of a mining job.
//
//	queued ──▶ running ──▶ done
//	   │           ├─────▶ failed
//	   └───────────┴─────▶ cancelled
//
// Cache hits are born terminal: a submission whose result is cached is
// recorded as done with Cached set, without ever occupying a mining slot.
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// terminal reports whether no further state changes can happen.
func (s JobStatus) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// ErrDraining is returned by submit once shutdown has begun.
var ErrDraining = errors.New("service: shutting down, not accepting jobs")

// Job is one submitted mining request. All mutable state is guarded by mu;
// clusters only ever grows, so snapshot readers may retain the returned
// slice prefix without copying.
type Job struct {
	ID      string
	Dataset *Dataset
	Params  core.Params
	Workers int
	Timeout time.Duration

	obs core.Observer // live node/cluster counters while mining

	mu       sync.Mutex
	status   JobStatus
	cached   bool
	err      string
	clusters []report.NamedCluster
	stats    core.Stats
	created  time.Time
	started  time.Time
	finished time.Time
	changed  chan struct{} // closed and replaced on every state change
	cancel   context.CancelFunc
	done     chan struct{} // closed once status is terminal
}

// JobView is the JSON form of a job's state at one instant.
type JobView struct {
	ID      string      `json:"id"`
	Dataset string      `json:"dataset"`
	Status  JobStatus   `json:"status"`
	Cached  bool        `json:"cached"`
	Workers int         `json:"workers"`
	Params  core.Params `json:"params"`
	Error   string      `json:"error,omitempty"`
	// Clusters is the number of clusters delivered so far (final once the
	// status is terminal).
	Clusters int `json:"clusters"`
	// LiveNodes/LiveClusters are the miner's live progress counters; they
	// may slightly overshoot the settled Stats on truncated runs.
	LiveNodes    int64       `json:"live_nodes"`
	LiveClusters int64       `json:"live_clusters"`
	Stats        *core.Stats `json:"stats,omitempty"` // settled, terminal only
	CreatedAt    time.Time   `json:"created_at"`
	StartedAt    *time.Time  `json:"started_at,omitempty"`
	FinishedAt   *time.Time  `json:"finished_at,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		Dataset: j.Dataset.ID,
		Status:  j.status,
		Cached:  j.cached,
		Workers: j.Workers,
		Params:  j.Params,
		Error:   j.err,

		Clusters:     len(j.clusters),
		LiveNodes:    j.obs.Nodes(),
		LiveClusters: j.obs.Clusters(),
		CreatedAt:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.status.terminal() {
		st := j.stats
		v.Stats = &st
	}
	return v
}

// Status returns the job's current status.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the clusters delivered so far starting at index from,
// whether the job is terminal, and a channel that signals the next change.
// The returned slice aliases the job's grow-only buffer.
func (j *Job) Snapshot(from int) (clusters []report.NamedCluster, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from > len(j.clusters) {
		from = len(j.clusters)
	}
	return j.clusters[from:], j.status.terminal(), j.changed
}

// Result returns the settled outcome of a terminal job.
func (j *Job) Result() (clusters []report.NamedCluster, stats core.Stats, errMsg string, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.clusters, j.stats, j.err, j.status.terminal()
}

// bump wakes every Snapshot waiter. Callers hold j.mu.
func (j *Job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// jobManager owns the job table, the mining-slot semaphore and the
// result-cache interaction. One manager serves one Server.
type jobManager struct {
	cache   *resultCache
	metrics *Metrics
	slots   chan struct{} // buffered; one token per concurrent mining job

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order for listing
	seq     int
	closed  bool
	running sync.WaitGroup // one count per live mining goroutine
}

func newJobManager(maxConcurrent int, cache *resultCache, metrics *Metrics) *jobManager {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &jobManager{
		cache:   cache,
		metrics: metrics,
		slots:   make(chan struct{}, maxConcurrent),
		jobs:    make(map[string]*Job),
	}
}

// submit registers a mining job for (ds, p) and returns it. When the result
// cache already holds the outcome, the returned job is already done with
// Cached set and no mining slot is consumed. Parameters must be validated by
// the caller; p is stored as submitted (post server-side clamping).
func (m *jobManager) submit(ds *Dataset, p core.Params, workers int, timeout time.Duration) (*Job, error) {
	key := cacheKey(ds.ID, p)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", m.seq),
		Dataset: ds,
		Params:  p,
		Workers: workers,
		Timeout: timeout,
		status:  StatusQueued,
		created: time.Now().UTC(),
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.metrics.JobsSubmitted.Add(1)

	if res, ok := m.cache.get(key); ok {
		m.metrics.CacheHits.Add(1)
		m.mu.Unlock()
		j.mu.Lock()
		j.cached = true
		j.clusters = res.clusters
		j.stats = res.stats
		now := time.Now().UTC()
		j.started, j.finished = now, now
		j.status = StatusDone
		j.bump()
		close(j.done)
		j.mu.Unlock()
		return j, nil
	}
	m.metrics.CacheMisses.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	m.running.Add(1)
	m.mu.Unlock()

	go m.run(ctx, j, key)
	return j, nil
}

// run executes one mining job: wait for a slot, mine with streaming, settle.
func (m *jobManager) run(ctx context.Context, j *Job, key string) {
	defer m.running.Done()
	select {
	case m.slots <- struct{}{}:
		defer func() { <-m.slots }()
	case <-ctx.Done():
		m.settle(j, key, core.Stats{}, ctx.Err())
		return
	}
	if ctx.Err() != nil {
		m.settle(j, key, core.Stats{}, ctx.Err())
		return
	}

	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now().UTC()
	j.bump()
	j.mu.Unlock()
	m.metrics.JobsStarted.Add(1)

	mineCtx := ctx
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		mineCtx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}

	mat := j.Dataset.Matrix()
	start := time.Now()
	stats, err := core.MineParallelFuncObserved(mineCtx, mat, j.Params, j.Workers, func(b *core.Bicluster) bool {
		nc := report.Named(mat, b)
		j.mu.Lock()
		j.clusters = append(j.clusters, nc)
		j.bump()
		j.mu.Unlock()
		m.metrics.ClustersStreamed.Add(1)
		return true
	}, &j.obs)
	m.metrics.ObserveMiningLatency(time.Since(start))
	m.settle(j, key, stats, err)
}

// settle moves a job to its terminal state and, on success, publishes the
// result to the cache. Interrupted runs (cancel or deadline) are never
// cached: their truncation point is schedule-dependent, unlike MaxNodes/
// MaxClusters truncation, which is deterministic and therefore cacheable.
func (m *jobManager) settle(j *Job, key string, stats core.Stats, err error) {
	j.mu.Lock()
	j.stats = stats
	j.finished = time.Now().UTC()
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, context.Canceled):
		j.status = StatusCancelled
		j.err = "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		j.status = StatusFailed
		j.err = "deadline exceeded"
	default:
		j.status = StatusFailed
		j.err = err.Error()
	}
	status := j.status
	clusters := j.clusters
	j.bump()
	close(j.done)
	j.mu.Unlock()

	switch status {
	case StatusDone:
		m.metrics.JobsFinished.Add(1)
		m.metrics.NodesVisited.Add(int64(stats.Nodes))
		m.cache.put(key, cachedResult{clusters: clusters, stats: stats})
	case StatusCancelled:
		m.metrics.JobsCancelled.Add(1)
	case StatusFailed:
		m.metrics.JobsFailed.Add(1)
	}
}

// get returns the job with the given ID.
func (m *jobManager) get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (m *jobManager) list() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// cancelJob requests cooperative cancellation. Cancelling a terminal job is
// a no-op; the returned bool reports whether the job exists.
func (m *jobManager) cancelJob(id string) (*Job, bool) {
	j, ok := m.get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, true
}

// runningCount returns the number of jobs currently holding a mining slot.
func (m *jobManager) runningCount() int { return len(m.slots) }

// queuedOrRunning returns the number of non-terminal jobs.
func (m *jobManager) queuedOrRunning() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if !j.Status().terminal() {
			n++
		}
	}
	return n
}

// drain stops accepting new jobs and waits for in-flight ones. While ctx is
// live the running jobs finish naturally; once it expires they are cancelled
// and drain waits for the cooperative stop (prompt: miners observe
// cancellation at every node boundary).
func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.running.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	for _, j := range jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	<-finished
	return ctx.Err()
}
