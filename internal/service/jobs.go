package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/dist"
	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
	"regcluster/internal/obs"
	"regcluster/internal/report"
)

// JobStatus is the lifecycle state of a mining job.
//
//	queued ──▶ running ──▶ done
//	   │           ├─────▶ failed
//	   │           ├─────▶ interrupted   (shutdown; resumes on next boot)
//	   └───────────┴─────▶ cancelled
//
// Cache hits are born terminal: a submission whose result is cached is
// recorded as done with Cached set, without ever occupying a mining slot.
// Interrupted is terminal *within this process* — the job's checkpoint is
// journaled and the next boot re-enqueues it.
type JobStatus string

const (
	StatusQueued      JobStatus = "queued"
	StatusRunning     JobStatus = "running"
	StatusDone        JobStatus = "done"
	StatusFailed      JobStatus = "failed"
	StatusCancelled   JobStatus = "cancelled"
	StatusInterrupted JobStatus = "interrupted"
)

// terminal reports whether no further state changes can happen in this
// process.
func (s JobStatus) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled || s == StatusInterrupted
}

// ErrDraining is returned by submit once shutdown has begun.
var ErrDraining = errors.New("service: shutting down, not accepting jobs")

// Job is one submitted mining request. All mutable state is guarded by mu;
// clusters only ever grows during one attempt, so snapshot readers may retain
// the returned slice prefix without copying (rewindTo re-allocates rather
// than truncating in place for the same reason).
type Job struct {
	ID      string
	Dataset *Dataset
	Params  core.Params
	Workers int
	Timeout time.Duration

	// tn is the owning tenant (never nil once submitted: keyless submissions
	// belong to the anonymous tenant). nodeCost is the reservation this job
	// holds in the tenant's aggregate node-budget pool, released at settle.
	tn       *tenant
	nodeCost int64

	obs core.Observer // live node/cluster counters while mining

	// Tracing state, armed by startTrace before the job is published (so
	// handlers read the fields without locking). All nil when tracing is off;
	// every span operation degrades to a no-op then.
	tracer    *obs.Tracer
	root      *obs.Span // the "job" span: queue + attempts + streams
	queueSpan *obs.Span

	mu        sync.Mutex
	status    JobStatus
	cached    bool
	recovered bool // re-enqueued from the journal at boot
	shed      bool // evicted from the queue by the overload shedder
	err       string
	stack     string // panic stack when a contained worker panic failed the job
	clusters  []report.NamedCluster
	stats     core.Stats
	created   time.Time
	started   time.Time
	finished  time.Time
	changed   chan struct{} // closed and replaced on every state change
	cancel    context.CancelFunc
	done      chan struct{} // closed once status is terminal

	// Crash-recovery state. lastCkpt is the most recent miner snapshot (the
	// resume point of the next attempt or the next boot); journaled is the
	// cluster watermark already written to the WAL; attempts counts
	// transient-failure retries.
	lastCkpt  *core.Checkpoint
	journaled int
	attempts  int

	// incr reports how the incremental re-mine path handled this job (nil
	// when the job had no delta lineage to exploit).
	incr *core.IncrementalInfo

	// Phase durations, settled as each phase ends (for the slow-job log).
	queuedFor time.Duration
	ranFor    time.Duration
}

// startTrace arms per-job span recording: a "job" root span with a "queue"
// child that ends when the job takes a mining slot. Must run before the job
// is published to the manager's table — handlers read the span fields
// without locking, relying on that happens-before.
func (j *Job) startTrace() {
	j.tracer = obs.New()
	j.root = j.tracer.Start("job")
	j.root.SetAttr("id", j.ID)
	j.root.SetAttr("dataset", j.Dataset.ID)
	j.queueSpan = j.root.Start("queue")
}

// Trace snapshots the job's span forest; nil when tracing is off.
func (j *Job) Trace() []*obs.Node { return j.tracer.Tree() }

// JobView is the JSON form of a job's state at one instant.
type JobView struct {
	ID      string    `json:"id"`
	Dataset string    `json:"dataset"`
	Status  JobStatus `json:"status"`
	Cached  bool      `json:"cached"`
	// Tenant is the owning tenant's ID (omitted for anonymous submissions,
	// so pre-tenancy clients see an unchanged schema).
	Tenant string `json:"tenant,omitempty"`
	// Shed marks a job the overload shedder evicted from the queue; its
	// status is cancelled.
	Shed bool `json:"shed,omitempty"`
	// Recovered marks a job re-enqueued from the journal after a restart.
	Recovered bool        `json:"recovered,omitempty"`
	Workers   int         `json:"workers"`
	Params    core.Params `json:"params"`
	Error     string      `json:"error,omitempty"`
	// Stack is the captured goroutine stack when a contained worker panic
	// failed the job.
	Stack string `json:"stack,omitempty"`
	// Attempts counts transient-failure retries already spent.
	Attempts int `json:"attempts,omitempty"`
	// Clusters is the number of clusters delivered so far (final once the
	// status is terminal).
	Clusters int `json:"clusters"`
	// LiveNodes/LiveClusters are the miner's live progress counters; they
	// may slightly overshoot the settled Stats on truncated runs.
	LiveNodes    int64       `json:"live_nodes"`
	LiveClusters int64       `json:"live_clusters"`
	Stats        *core.Stats `json:"stats,omitempty"` // settled, terminal only
	// Incremental reports how the delta-reuse path handled the job: subtrees
	// spliced from the parent result versus re-mined, or the fallback reason.
	// Omitted for jobs without delta lineage.
	Incremental *core.IncrementalInfo `json:"incremental,omitempty"`
	CreatedAt   time.Time             `json:"created_at"`
	StartedAt   *time.Time            `json:"started_at,omitempty"`
	FinishedAt  *time.Time            `json:"finished_at,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Dataset:   j.Dataset.ID,
		Status:    j.status,
		Cached:    j.cached,
		Shed:      j.shed,
		Recovered: j.recovered,
		Workers:   j.Workers,
		Params:    j.Params,
		Error:     j.err,
		Stack:     j.stack,
		Attempts:  j.attempts,

		Clusters:     len(j.clusters),
		LiveNodes:    j.obs.Nodes(),
		LiveClusters: j.obs.Clusters(),
		CreatedAt:    j.created,
	}
	if j.tn != nil && j.tn.id != AnonymousTenant {
		v.Tenant = j.tn.id
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.status.terminal() {
		st := j.stats
		v.Stats = &st
	}
	if j.incr != nil {
		inf := *j.incr
		v.Incremental = &inf
	}
	return v
}

// Status returns the job's current status.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the clusters delivered so far starting at index from,
// whether the job is terminal, and a channel that signals the next change.
// The returned slice aliases the job's grow-only buffer.
func (j *Job) Snapshot(from int) (clusters []report.NamedCluster, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from > len(j.clusters) {
		from = len(j.clusters)
	}
	return j.clusters[from:], j.status.terminal(), j.changed
}

// Result returns the settled outcome of a terminal job.
func (j *Job) Result() (clusters []report.NamedCluster, stats core.Stats, errMsg string, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.clusters, j.stats, j.err, j.status.terminal()
}

// bump wakes every Snapshot waiter. Callers hold j.mu.
func (j *Job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// rewindTo discards clusters past the checkpoint watermark before a retry
// resumes from that checkpoint, so the resumed attempt never re-delivers
// them. The prefix is COPIED into a fresh backing array: stream readers may
// still hold aliases of the old one, and the re-mined appends must not write
// through those (the re-mined values are identical — mining is deterministic
// — but the race detector rightly objects to the overlapping writes).
func (j *Job) rewindTo(watermark int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if watermark < len(j.clusters) {
		j.clusters = append([]report.NamedCluster(nil), j.clusters[:watermark]...)
	}
	if j.journaled > watermark {
		j.journaled = watermark
	}
}

// resumePoint returns the snapshot the next mining attempt starts from.
func (j *Job) resumePoint() *core.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastCkpt
}

// jobManager owns the job table, the weighted-fair mining-slot scheduler,
// the tenant table, the result-cache interaction, and — when the server is
// durable — the job journal. One manager serves one Server.
type jobManager struct {
	cache   *resultCache
	metrics *Metrics

	// sched shares the mining slots across tenants (weighted-fair with
	// priority classes); tenants resolves API keys and holds quotas + usage.
	sched   *scheduler
	tenants *tenantSet

	// models is the shared RWave-build cache; nil means every attempt builds
	// its own index (the pre-cache behavior, kept for bare-manager tests).
	models *modelCache

	// datasets resolves a dataset ID to its live registry entry; the Server
	// wires it so delta-lineage jobs can reach their parent matrix. Nil (bare
	// managers) disables the incremental path.
	datasets func(id string) (*Dataset, bool)

	// coord, when non-nil, routes mining through the distributed
	// coordinator (subtree leases to remote workers plus local loops)
	// instead of the in-process parallel engine. Output is byte-identical
	// either way; distLocalWorkers carries the Config.DistLocalWorkers
	// override into each run.
	coord            *dist.Coordinator
	distLocalWorkers int

	// Durability plumbing; wal/store are nil on an in-memory server.
	wal     *journal
	store   *store
	ckEvery int // checkpoint cadence in delivered clusters
	logf    func(format string, args ...any)

	// Observability plumbing set by the Server: log is the structured logger
	// (nil-safe), trace arms per-job span recording, and slowJob is the
	// threshold above which a settled job emits a per-phase breakdown warning
	// (0 disables).
	log     *obs.Logger
	trace   bool
	slowJob time.Duration

	// Transient-failure retry policy: up to maxRetries re-attempts, sleeping
	// retryBase<<attempt (capped at retryMax) plus up to 50% jitter.
	maxRetries int
	retryBase  time.Duration
	retryMax   time.Duration

	draining atomic.Bool // drain() began; cancellations become interruptions

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order for listing
	seq     int
	closed  bool
	running sync.WaitGroup // one count per live mining goroutine
}

func newJobManager(maxConcurrent int, cache *resultCache, metrics *Metrics) *jobManager {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	// Bare managers (tests, embedders) run with the anonymous tenant only,
	// no quotas, and shedding disabled — the pre-tenancy behavior.
	tenants, err := newTenantSet(nil, tenantDefaults{})
	if err != nil {
		panic("service: default tenant set: " + err.Error())
	}
	return &jobManager{
		cache:      cache,
		metrics:    metrics,
		sched:      newScheduler(maxConcurrent, 0, metrics),
		tenants:    tenants,
		jobs:       make(map[string]*Job),
		ckEvery:    64,
		logf:       func(string, ...any) {},
		maxRetries: 2,
		retryBase:  100 * time.Millisecond,
		retryMax:   5 * time.Second,
	}
}

// journalAppend writes one WAL record, tolerating failure: the journal is a
// recovery aid, and a disk error must degrade durability, never availability.
func (m *jobManager) journalAppend(rec journalRecord) bool {
	if m.wal == nil {
		return false
	}
	if err := m.wal.append(rec); err != nil {
		m.logf("service: journal %s for %s: %v (continuing without durability)", rec.Type, rec.Job, err)
		return false
	}
	return true
}

// submit registers a mining job for (ds, p) under the anonymous tenant —
// the pre-tenancy entry point, kept for embedders and tests.
func (m *jobManager) submit(ds *Dataset, p core.Params, workers int, timeout time.Duration) (*Job, error) {
	return m.submitAs(m.tenants.anonymous, ds, p, workers, timeout)
}

// admit runs the tenant's admission checks for one would-mine submission:
// the token-bucket rate limit, the aggregate node-budget pool, and the
// scheduler's queue/concurrency bounds. On success the caller holds one
// scheduler reservation plus a nodeCost-unit pool reservation; on failure it
// holds nothing and the returned error is an *admissionError carrying the
// HTTP status and Retry-After.
func (m *jobManager) admit(tn *tenant, p core.Params, cached bool) (nodeCost int64, err error) {
	if err := faultinject.Hook("admission.submit"); err != nil {
		return 0, err
	}
	if tn.bucket != nil {
		if ok, retry := tn.bucket.take(1); !ok {
			return 0, &admissionError{status: 429, retryAfter: retry,
				msg: fmt.Sprintf("tenant %s: submission rate limit exceeded", tn.id)}
		}
	}
	if cached {
		// A cached submission settles instantly without a slot or any node
		// budget: the rate limit is the only check that applies.
		return 0, nil
	}
	if tn.nodes != nil {
		nodeCost = int64(p.MaxNodes)
		if nodeCost <= 0 {
			// Defense in depth: the HTTP layer clamps unlimited submissions
			// to the pool capacity before keying the cache; a direct caller
			// that skipped the clamp still charges the whole pool.
			nodeCost = tn.nodes.Capacity()
		}
		if !tn.nodes.TryReserve(nodeCost) {
			return 0, &admissionError{status: 429, retryAfter: m.sched.retryAfter(1),
				msg: fmt.Sprintf("tenant %s: node budget exhausted (%d of %d in flight)",
					tn.id, tn.nodes.InUse(), tn.nodes.Capacity())}
		}
	}
	if err := m.sched.reserve(tn, 1, false); err != nil {
		if tn.nodes != nil {
			tn.nodes.Release(nodeCost)
		}
		return 0, err
	}
	return nodeCost, nil
}

// noteRejected accounts one 429 on the tenant and the global metrics.
func (m *jobManager) noteRejected(tn *tenant) {
	tn.account(TenantUsage{Rejected: 1})
	m.metrics.JobsRejected.Add(1)
}

// submitAs registers a mining job for (ds, p) owned by tn, running tenant
// admission first. When the result cache already holds the outcome, the
// returned job is already done with Cached set and no mining slot or quota
// is consumed. Parameters must be validated by the caller; p is stored as
// submitted (post server- and tenant-side clamping). A rejection returns an
// *admissionError (429 + Retry-After) before anything is journaled.
func (m *jobManager) submitAs(tn *tenant, ds *Dataset, p core.Params, workers int, timeout time.Duration) (*Job, error) {
	if m.isClosed() {
		return nil, ErrDraining
	}
	key := cacheKey(ds.ID, p)
	_, cached := m.cache.get(key)
	nodeCost, err := m.admit(tn, p, cached)
	if err != nil {
		var adm *admissionError
		if errors.As(err, &adm) {
			m.noteRejected(tn)
		}
		return nil, err
	}
	reserved := !cached

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		if reserved {
			m.sched.unreserve(tn, 1)
			tn.nodes.Release(nodeCost)
		}
		return nil, ErrDraining
	}
	m.seq++
	j := &Job{
		ID:       fmt.Sprintf("job-%06d", m.seq),
		Dataset:  ds,
		Params:   p,
		Workers:  workers,
		Timeout:  timeout,
		tn:       tn,
		nodeCost: nodeCost,
		status:   StatusQueued,
		created:  time.Now().UTC(),
		changed:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	if m.trace {
		j.startTrace()
	}
	seq := m.seq
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.metrics.JobsSubmitted.Add(1)
	m.mu.Unlock()
	tn.account(TenantUsage{Jobs: 1})

	pp := p
	m.journalAppend(journalRecord{Type: recSubmit, Job: j.ID, Seq: seq, Tenant: tn.id,
		Dataset: ds.ID, Params: &pp, Workers: workers, TimeoutMS: timeout.Milliseconds()})
	m.launch(j, reserved)
	return j, nil
}

// launch settles a job from the cache or starts its mining goroutine. It is
// shared by submit and boot-time recovery. reserved reports whether the job
// holds a scheduler reservation: a cache hit settles without ever queueing,
// so the reservation (and any node-budget charge) is returned immediately.
func (m *jobManager) launch(j *Job, reserved bool) {
	key := cacheKey(j.Dataset.ID, j.Params)
	if res, ok := m.cache.get(key); ok {
		if reserved {
			m.sched.unreserve(j.tn, 1)
			j.tn.nodes.Release(j.nodeCost)
		}
		m.metrics.CacheHits.Add(1)
		j.queueSpan.End()
		if j.root != nil {
			j.root.SetAttr("status", string(StatusDone))
			j.root.SetAttr("cached", "true")
			j.root.End()
		}
		j.mu.Lock()
		j.cached = true
		j.clusters = res.clusters
		j.stats = res.stats
		now := time.Now().UTC()
		j.started, j.finished = now, now
		j.status = StatusDone
		j.bump()
		close(j.done)
		j.mu.Unlock()
		st := res.stats
		m.journalAppend(journalRecord{Type: recDone, Job: j.ID, CacheKey: key, Cached: true, Stats: &st})
		usage := j.tn.account(TenantUsage{Completed: 1, Clusters: int64(len(res.clusters))})
		m.journalUsage(j.tn, usage)
		return
	}
	m.metrics.CacheMisses.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	m.running.Add(1)
	go m.run(ctx, j, key)
}

// journalUsage appends the tenant's cumulative usage snapshot. Usage records
// are cumulative, so replay keeps only the last one per tenant and a lost
// append costs at most the delta since the previous settlement.
func (m *jobManager) journalUsage(tn *tenant, usage TenantUsage) {
	u := usage
	m.journalAppend(journalRecord{Type: recUsage, Tenant: tn.id, Usage: &u})
}

// recover re-enqueues a job reconstructed from the journal at boot: prefix
// clusters already delivered before the crash, plus the snapshot to resume
// from. Runs before the server accepts traffic. Recovery bypasses admission
// — journaled work was admitted once and is never re-rejected — but still
// takes a (forced) scheduler reservation so fairness accounting balances.
func (m *jobManager) recover(j *Job) {
	if m.trace {
		j.startTrace()
	}
	if j.tn == nil {
		j.tn = m.tenants.anonymous
	}
	_ = m.sched.reserve(j.tn, 1, true)
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	m.metrics.Recoveries.Add(1)
	m.launch(j, true)
}

// restoreTerminal installs the shell of a job that had already settled before
// the restart, so /jobs keeps answering for it.
func (m *jobManager) restoreTerminal(j *Job) {
	close(j.done)
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
}

// run executes one mining job: wait for a weighted-fair slot grant, mine
// (with checkpointing and transient-failure retries), settle. A queued job
// may leave the scheduler three ways: granted (mine), cancelled (the ctx
// fired), or shed (the overload watermark evicted it).
func (m *jobManager) run(ctx context.Context, j *Job, key string) {
	defer m.running.Done()
	qstart := time.Now()
	if err := m.sched.acquire(ctx, j); err != nil {
		m.settle(j, key, core.Stats{}, err)
		return
	}
	defer m.sched.release(j)
	if ctx.Err() != nil {
		m.settle(j, key, core.Stats{}, ctx.Err())
		return
	}
	wait := time.Since(qstart)
	m.metrics.ObservePhase(PhaseQueue, wait)
	j.queueSpan.End()

	j.mu.Lock()
	j.queuedFor = wait
	j.status = StatusRunning
	j.started = time.Now().UTC()
	j.bump()
	j.mu.Unlock()
	m.metrics.JobsStarted.Add(1)

	mineCtx := ctx
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		mineCtx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}

	start := time.Now()
	var stats core.Stats
	var err error
	for attempt := 0; ; attempt++ {
		asp := j.root.Start("attempt")
		if asp != nil {
			asp.SetInt("n", int64(attempt))
			j.obs.SetSpan(asp)
		}
		stats, err = m.mine(mineCtx, j)
		asp.End()
		if err == nil || !isTransient(err) || attempt >= m.maxRetries || mineCtx.Err() != nil {
			break
		}
		m.metrics.JobRetries.Add(1)
		j.mu.Lock()
		j.attempts++
		j.mu.Unlock()
		delay := m.backoff(attempt)
		m.logf("service: job %s attempt %d failed transiently (%v); retrying in %v", j.ID, attempt+1, err, delay)
		select {
		case <-time.After(delay):
		case <-mineCtx.Done():
		}
	}
	j.obs.SetSpan(nil)
	ran := time.Since(start)
	m.metrics.ObserveMiningLatency(ran)
	m.metrics.ObservePhase(PhaseRun, ran)
	j.mu.Lock()
	j.ranFor = ran
	j.mu.Unlock()
	m.settle(j, key, stats, err)
}

// mine runs one attempt over the resumable miner. The attempt resumes from
// the job's last checkpoint (nil on the first attempt of a fresh job),
// having first rewound the delivered clusters to that checkpoint's watermark
// so a retry never duplicates deliveries.
func (m *jobManager) mine(ctx context.Context, j *Job) (core.Stats, error) {
	if err := faultinject.Hook("jobs.mine"); err != nil {
		return core.Stats{}, err
	}
	resume := j.resumePoint()
	if resume != nil {
		j.rewindTo(resume.Delivered())
	} else {
		j.rewindTo(0)
	}
	mat := j.Dataset.Matrix()
	ck := core.CheckpointConfig{
		EveryClusters: m.ckEvery,
		OnCheckpoint:  func(c core.Checkpoint) { m.noteCheckpoint(j, c) },
	}
	var models []*core.RWaveModel
	if m.models != nil {
		// One RWave build per (dataset, γ-scheme), shared across every job
		// and retry that agrees on the ModelKey. Passing the job's Observer
		// lands the "rwave.build" span under this job's attempt span when the
		// build actually runs here; jobs that reuse the set skip the span
		// along with the work. A dataset grown by an append-conditions delta
		// builds by repairing the parent's cached models where that set is
		// still resident — same key, same output, less work.
		var err error
		models, err = m.models.getOrBuild(core.ModelKey(j.Dataset.ID, j.Params), func() ([]*core.RWaveModel, error) {
			if d := j.Dataset.Delta; d != nil && d.Axis == DeltaAxisConditions {
				if old, ok := m.models.peek(core.ModelKey(d.Parent, j.Params)); ok {
					ms, repaired, err := core.RepairModels(mat, j.Params, old, &j.obs)
					if err == nil {
						m.metrics.ModelRepairs.Add(int64(repaired))
					}
					return ms, err
				}
			}
			return core.BuildModels(mat, j.Params, &j.obs)
		})
		if err != nil {
			return core.Stats{}, err
		}
	}
	visit := func(b *core.Bicluster) bool {
		nc := report.Named(mat, b)
		j.mu.Lock()
		j.clusters = append(j.clusters, nc)
		j.bump()
		j.mu.Unlock()
		m.metrics.ClustersStreamed.Add(1)
		return true
	}
	if m.coord == nil && resume == nil && models != nil {
		if plan := m.incrementalPlan(j); plan != nil {
			// Subtree-reuse attempt. The incremental engine takes no
			// checkpoint cadence: a crash mid-run restarts the attempt from
			// scratch, which is cheap by construction (only dirty subtrees
			// mine). Output — cluster stream and Stats — is byte-identical
			// to the cold path, so the cache and journal are oblivious.
			stats, info, err := core.MineIncremental(ctx, mat, plan.parentMat, j.Params, j.Workers,
				visit, &j.obs, models, plan.parentModels, plan.parentResult)
			if err == nil {
				if info.Incremental {
					m.metrics.IncrementalMines.Add(1)
					m.metrics.IncrementalSubtreesReused.Add(int64(info.SubtreesReused))
					m.metrics.IncrementalSubtreesMined.Add(int64(info.SubtreesMined))
				} else {
					m.metrics.IncrementalFallbacks.Add(1)
				}
				inf := info
				j.mu.Lock()
				j.incr = &inf
				j.mu.Unlock()
			}
			return stats, err
		}
	}
	if m.coord != nil {
		// Coordinator mode: the same visitor, resume point, and checkpoint
		// cadence feed the distributed merger, so the journal/recovery path
		// is oblivious to where the subtrees were mined.
		return m.coord.Mine(ctx, dist.MineRequest{
			Job:          j.ID,
			Matrix:       mat,
			DatasetID:    j.Dataset.ID,
			Params:       j.Params,
			Models:       models,
			Resume:       resume,
			Ck:           ck,
			Span:         j.obs.TraceSpan(),
			LocalWorkers: m.distLocalWorkers,
		}, visit)
	}
	return core.MineParallelFuncResumableWithModels(ctx, mat, j.Params, j.Workers, visit, &j.obs, resume, ck, models)
}

// incrPlan holds everything a delta-lineage job needs to take the
// subtree-reuse path: the parent's live matrix, its cached RWave model set,
// and its settled result resolved back to index form.
type incrPlan struct {
	parentMat    *matrix.Matrix
	parentModels []*core.RWaveModel
	parentResult *core.Result
}

// incrementalPlan assembles the subtree-reuse inputs for a delta-lineage job.
// Any missing piece — no lineage, a gene-axis delta, an unregistered parent,
// an evicted parent model set or result, or names that no longer resolve —
// returns nil and the job mines cold without touching the incremental
// metrics: the fallback counter is reserved for runs where reuse was
// plausible but the engine itself declined.
func (m *jobManager) incrementalPlan(j *Job) *incrPlan {
	d := j.Dataset.Delta
	if d == nil || d.Axis != DeltaAxisConditions || m.datasets == nil || m.models == nil || m.cache == nil {
		return nil
	}
	parent, ok := m.datasets(d.Parent)
	if !ok {
		return nil
	}
	pm, ok := m.models.peek(core.ModelKey(d.Parent, j.Params))
	if !ok {
		return nil
	}
	res, ok := m.cache.get(cacheKey(d.Parent, j.Params))
	if !ok {
		return nil
	}
	// The child grew by appending, so the parent's gene/condition names keep
	// their indices; resolving against the child therefore reproduces the
	// parent result's index form exactly (and validates the lineage while
	// doing so).
	doc := report.Document{Clusters: res.clusters}
	bs, err := doc.Resolve(j.Dataset.Matrix())
	if err != nil {
		return nil
	}
	return &incrPlan{
		parentMat:    parent.Matrix(),
		parentModels: pm,
		parentResult: &core.Result{Clusters: bs, Stats: res.stats},
	}
}

// noteCheckpoint records a miner snapshot: it becomes the job's resume point
// and — on a durable server — is journaled together with every cluster
// delivered since the previous journaled watermark. The callback runs
// synchronously on the mining emitter goroutine, so the append completes
// before any further cluster is delivered: the WAL watermark never runs
// ahead of delivery.
func (m *jobManager) noteCheckpoint(j *Job, ck core.Checkpoint) {
	m.metrics.Checkpoints.Add(1)
	j.mu.Lock()
	ckCopy := ck
	j.lastCkpt = &ckCopy
	watermark := ck.Delivered()
	if watermark > len(j.clusters) {
		watermark = len(j.clusters)
	}
	var fresh []report.NamedCluster
	if m.wal != nil && watermark > j.journaled {
		fresh = append([]report.NamedCluster(nil), j.clusters[j.journaled:watermark]...)
	}
	j.mu.Unlock()
	if m.wal == nil {
		return
	}
	if m.journalAppend(journalRecord{Type: recCheckpoint, Job: j.ID, Ckpt: &ckCopy, NewClusters: fresh}) {
		j.mu.Lock()
		j.journaled = watermark
		j.mu.Unlock()
	}
}

// backoff returns the capped exponential delay before retry `attempt`+1,
// with up to 50% uniform jitter so a herd of failing jobs does not retry in
// lockstep.
func (m *jobManager) backoff(attempt int) time.Duration {
	d := m.retryBase << attempt
	if d > m.retryMax || d <= 0 {
		d = m.retryMax
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// isTransient reports whether an error is worth retrying: anything that
// declares itself transient (e.g. injected faults, wrapped I/O hiccups).
// Cancellation, deadlines, and worker panics are never transient — the first
// two are caller decisions, and a panic is a bug to surface, not retry.
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// settle moves a job to its terminal state and, on success, publishes the
// result to the cache (and, on a durable server, to disk and the journal).
// Interrupted runs (cancel or deadline) are never cached: their truncation
// point is schedule-dependent, unlike MaxNodes/MaxClusters truncation, which
// is deterministic and therefore cacheable. A worker panic surfaces as
// failed with the captured stack; shutdown-driven cancellation surfaces as
// interrupted, journaled with the resume checkpoint.
func (m *jobManager) settle(j *Job, key string, stats core.Stats, err error) {
	var perr *core.PanicError
	j.mu.Lock()
	j.stats = stats
	j.finished = time.Now().UTC()
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.As(err, &perr):
		j.status = StatusFailed
		j.err = perr.Error()
		j.stack = string(perr.Stack)
	case errors.Is(err, errShedOverload):
		j.status = StatusCancelled
		j.err = "shed by overload"
		j.shed = true
	case errors.Is(err, context.Canceled):
		if m.draining.Load() {
			j.status = StatusInterrupted
			j.err = "interrupted by shutdown"
		} else {
			j.status = StatusCancelled
			j.err = "cancelled"
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.status = StatusFailed
		j.err = "deadline exceeded"
	default:
		j.status = StatusFailed
		j.err = err.Error()
	}
	status := j.status
	shed := j.shed
	errMsg := j.err
	clusters := j.clusters
	ckpt := j.lastCkpt
	queuedFor, ranFor := j.queuedFor, j.ranFor
	attempts := j.attempts
	total := j.finished.Sub(j.created)
	j.bump()
	close(j.done)
	j.mu.Unlock()

	j.queueSpan.End() // still open when the job never took a slot
	if j.root != nil {
		j.root.SetAttr("status", string(status))
		if errMsg != "" {
			j.root.SetAttr("error", errMsg)
		}
		j.root.End()
	}
	if m.slowJob > 0 && total > m.slowJob {
		m.log.Warn("slow job",
			"job", j.ID,
			"status", string(status),
			"total_ms", total.Milliseconds(),
			"queue_ms", queuedFor.Milliseconds(),
			"run_ms", ranFor.Milliseconds(),
			"attempts", attempts,
			"clusters", len(clusters),
			"nodes", stats.Nodes,
		)
	}

	switch status {
	case StatusDone:
		m.metrics.JobsFinished.Add(1)
		m.metrics.NodesVisited.Add(int64(stats.Nodes))
		res := cachedResult{clusters: clusters, stats: stats}
		m.cache.put(key, res)
		if m.store != nil {
			if err := m.store.saveResult(key, res); err != nil {
				m.logf("service: persist result of %s: %v", j.ID, err)
			}
		}
		st := stats
		m.journalAppend(journalRecord{Type: recDone, Job: j.ID, CacheKey: key, Stats: &st})
	case StatusCancelled:
		if shed {
			// Shed evictions are journaled with their own terminal record so a
			// restart neither resurrects them nor miscounts them as caller
			// cancellations (JobsShed was counted by the shedder).
			m.journalAppend(journalRecord{Type: recShed, Job: j.ID})
		} else {
			m.metrics.JobsCancelled.Add(1)
			m.journalAppend(journalRecord{Type: recCancelled, Job: j.ID})
		}
	case StatusInterrupted:
		m.journalAppend(journalRecord{Type: recInterrupted, Job: j.ID, Ckpt: ckpt})
	case StatusFailed:
		if perr != nil {
			m.metrics.PanicsRecovered.Add(1)
			m.logf("service: job %s failed on a contained worker panic: %v", j.ID, perr.Value)
		}
		m.metrics.JobsFailed.Add(1)
		m.journalAppend(journalRecord{Type: recFailed, Job: j.ID, Error: errMsg})
	}

	// Usage accounting: interrupted jobs settle for real after the next boot's
	// resume, so only truly terminal outcomes contribute to the ledger (a
	// restart would otherwise double-count the resumed prefix).
	if status != StatusInterrupted {
		usage := j.tn.account(jobUsageDelta(status, shed, stats, len(clusters), ranFor))
		m.journalUsage(j.tn, usage)
	}
	j.tn.nodes.Release(j.nodeCost)
}

// get returns the job with the given ID.
func (m *jobManager) get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (m *jobManager) list() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// cancelJob requests cooperative cancellation. Cancelling a terminal job is
// a no-op; the returned bool reports whether the job exists.
func (m *jobManager) cancelJob(id string) (*Job, bool) {
	j, ok := m.get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, true
}

// runningCount returns the number of jobs currently holding a mining slot.
func (m *jobManager) runningCount() int { return m.sched.runningSlots() }

// isClosed reports whether drain has begun: the manager no longer accepts
// submissions, so readiness probes should steer traffic elsewhere.
func (m *jobManager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// queuedOrRunning returns the number of non-terminal jobs.
func (m *jobManager) queuedOrRunning() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if !j.Status().terminal() {
			n++
		}
	}
	return n
}

// drain stops accepting new jobs and waits for in-flight ones. While ctx is
// live the running jobs finish naturally; once it expires they are cancelled
// and drain waits for the cooperative stop (prompt: miners observe
// cancellation at every node boundary). On a durable server a job cancelled
// by the expiring grace period settles as interrupted — its checkpoint is
// journaled and the next boot resumes it — rather than as a dead-end
// cancellation.
func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		m.running.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}
	m.draining.Store(true)
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	for _, j := range jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	<-finished
	return ctx.Err()
}
