// Package service is the long-running mining service layer over the
// parallel reg-cluster miner: a content-addressed dataset registry, an async
// job manager with server-side budgets and deadlines, an LRU result cache
// keyed by (matrix content hash, canonical Params), and an in-process
// metrics registry. cmd/regserver exposes it over HTTP JSON.
//
// # HTTP surface
//
//	POST /datasets?name=N         upload a TSV matrix (idempotent by content hash)
//	GET  /datasets                list datasets
//	GET  /datasets/{id}           dataset detail including per-gene row stats
//	GET  /datasets/{id}/tsv       download the canonical TSV serialization
//	DELETE /datasets/{id}         unregister a dataset
//	POST /datasets/{id}/append    grow a dataset by a delta TSV (?axis=conditions|genes)
//	GET  /datasets/{id}/diff/{p}  result diff vs dataset p (regcluster.diff/v1)
//	POST /jobs                    submit {dataset, params, workers, timeout_ms}
//	POST /sweep                   submit a batch ε/γ/MinG/MinC parameter sweep
//	GET  /sweeps                  list sweeps with per-point status
//	GET  /sweeps/{id}             sweep summary (regcluster.sweep/v1)
//	GET  /jobs                    list jobs
//	GET  /jobs/{id}               job status with live progress counters
//	POST /jobs/{id}/cancel        cooperative cancellation
//	GET  /jobs/{id}/stream        NDJSON: one cluster per line as mined, then a summary line
//	GET  /jobs/{id}/result        the settled result as a report.Document
//	GET  /tenants                 list tenants with live occupancy and usage
//	GET  /tenants/{id}/usage      one tenant's quota state and usage ledger
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness + scheduler saturation
//	GET  /debug/pprof/...         net/http/pprof
//
// Mining output is deterministic for any worker count, so the result cache
// is exact: a hit returns byte-identical clusters to re-mining, and repeated
// parameter sweeps over one dataset pay the mining cost once per distinct
// Params. A second cache sits below it: prebuilt RWave model sets keyed by
// (dataset, γ-scheme), shared across jobs and sweep points that differ only
// in ε/MinG/MinC/caps, so an ε-sweep performs exactly one index build.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"reflect"
	"strings"
	"sync/atomic"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/dist"
	"regcluster/internal/faultinject"
	"regcluster/internal/obs"
	"regcluster/internal/report"
)

// Config bounds one Server. The zero value is usable: every limit defaults
// to the value documented on its field.
type Config struct {
	// MaxConcurrentJobs is the number of jobs that may mine at once
	// (default 2); further jobs queue.
	MaxConcurrentJobs int
	// DefaultWorkers is the per-job worker count used when a submission
	// does not specify one (default 0 = GOMAXPROCS).
	DefaultWorkers int
	// MaxWorkersPerJob rejects submissions asking for more parallelism
	// (default 64; 0 keeps the default).
	MaxWorkersPerJob int
	// CacheEntries bounds the result cache (default 256; negative disables
	// caching).
	CacheEntries int
	// ModelCacheEntries bounds the shared RWave-model cache: prebuilt
	// per-gene index sets keyed by (dataset, γ-scheme), reused across jobs
	// and sweep points that differ only in ε/MinG/MinC/caps (default 16;
	// negative disables retention — concurrent duplicate builds still
	// coalesce). Each entry holds one model per gene of its dataset.
	ModelCacheEntries int
	// MaxDatasets bounds the registry (default 64).
	MaxDatasets int
	// MaxUploadBytes bounds one dataset upload (default 64 MiB).
	MaxUploadBytes int64
	// MaxJobDuration caps (and defaults) the per-job mining deadline; a
	// submission asking for more is clamped (default 0 = unlimited).
	MaxJobDuration time.Duration
	// MaxNodesPerJob / MaxClustersPerJob are server-side budget caps: a
	// submission with a larger (or unlimited) Params.MaxNodes/MaxClusters
	// is clamped down to them (default 0 = unlimited).
	MaxNodesPerJob    int
	MaxClustersPerJob int

	// Tenants configures API-key tenants (the -tenants file). Requests
	// without a key run as the built-in anonymous tenant, so an empty list
	// keeps every pre-tenancy flow working. The per-tenant fields below are
	// the server-wide defaults a TenantConfig zero field inherits.
	Tenants []TenantConfig
	// TenantRatePerSec / TenantBurst are the default submission token-bucket
	// parameters (0 = unlimited rate; burst defaults to ceil(rate)).
	TenantRatePerSec float64
	TenantBurst      int
	// MaxActivePerTenant bounds one tenant's jobs queued or running at once;
	// MaxQueuedPerTenant bounds its scheduler queue depth. Exceeding either
	// rejects the submission with 429 + Retry-After (0 = unlimited).
	MaxActivePerTenant int
	MaxQueuedPerTenant int
	// ShedWatermark is the global queued-work bound: when the total queue
	// exceeds it, the scheduler sheds the newest lowest-priority queued jobs
	// (journaled as cancelled-by-shed) until it is back at the watermark, and
	// keeps rejecting sheddable submissions until the queue drains to half the
	// watermark (0 = shedding disabled).
	ShedWatermark int

	// DataDir enables durability: datasets, settled results, and the job
	// journal live under this directory, written atomically, and a restart
	// replays them — re-registering datasets, restoring the result cache,
	// and resuming interrupted jobs from their checkpoints. Empty keeps the
	// fully in-memory behavior.
	DataDir string
	// CheckpointEveryClusters is the miner snapshot cadence: a checkpoint
	// is journaled every N delivered clusters, plus at every subtree
	// boundary (default 64; negative keeps only the boundary snapshots).
	CheckpointEveryClusters int
	// MaxJobRetries bounds transient-failure retries per job (default 2;
	// negative disables retrying).
	MaxJobRetries int
	// RetryBaseDelay seeds the capped exponential backoff between retries
	// (default 100ms, doubling per attempt, capped at 5s, plus jitter).
	RetryBaseDelay time.Duration
	// Logf receives recovery and durability diagnostics (default log.Printf).
	Logf func(format string, args ...any)

	// Logger is the structured logger for request logs, slow-job warnings,
	// and recovery events. When nil, one is derived from Logf (text format),
	// so legacy printf sinks keep receiving every line.
	Logger *obs.Logger
	// EnableTracing records a span tree per job (queue wait, mining attempts
	// with per-phase children, stream replays), served by
	// GET /jobs/{id}/trace. Off by default: the tracing hooks then degrade to
	// nil no-ops that allocate nothing.
	EnableTracing bool
	// SlowJobThreshold emits a warning with a per-phase breakdown for any job
	// whose total wall time (queue + mining) exceeds it (default 30s;
	// negative disables).
	SlowJobThreshold time.Duration

	// Mode selects how jobs mine: "single" (default) uses the in-process
	// parallel engine; "coordinator" splits every job into per-condition
	// subtree leases served to remote workers over the /dist/* endpoints
	// (plus DistLocalWorkers in-process loops) and merges the partials
	// through the same reconciliation path, so the output is byte-identical
	// either way. (Worker mode is a different process shape entirely and
	// lives in cmd/regserver, not here.)
	Mode string
	// LeaseTTL is how long a coordinator lease survives without a worker
	// heartbeat before its subtree is re-queued (default 5s).
	LeaseTTL time.Duration
	// DistLocalWorkers is the number of in-process mining loops each
	// coordinator-mode job runs alongside remote workers: 0 means 1 (the
	// coordinator can always finish a job alone), negative means none —
	// jobs then wait for remote workers.
	DistLocalWorkers int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.MaxWorkersPerJob <= 0 {
		c.MaxWorkersPerJob = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.ModelCacheEntries == 0 {
		c.ModelCacheEntries = 16
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	switch {
	case c.CheckpointEveryClusters == 0:
		c.CheckpointEveryClusters = 64
	case c.CheckpointEveryClusters < 0:
		c.CheckpointEveryClusters = 0 // boundary-only snapshots
	}
	if c.MaxJobRetries == 0 {
		c.MaxJobRetries = 2
	} else if c.MaxJobRetries < 0 {
		c.MaxJobRetries = 0
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Logger == nil {
		logf := c.Logf
		c.Logger = obs.NewFuncLogger(func(line string) { logf("%s", line) }, obs.FormatText)
	}
	switch {
	case c.SlowJobThreshold == 0:
		c.SlowJobThreshold = 30 * time.Second
	case c.SlowJobThreshold < 0:
		c.SlowJobThreshold = 0 // disabled
	}
	return c
}

// Server wires the registry, job manager, cache and metrics behind one
// http.Handler; with Config.DataDir set it also owns the durable store and
// the job journal.
type Server struct {
	cfg      Config
	registry *registry
	jobs     *jobManager
	sweeps   *sweepManager
	cache    *resultCache
	metrics  *Metrics
	mux      *http.ServeMux
	logf     func(format string, args ...any)

	// Observability: the structured logger every diagnostic routes through,
	// the periodic runtime sampler feeding /metrics gauges, and the request
	// sequence for log correlation IDs.
	obsLog  *obs.Logger
	sampler *obs.RuntimeSampler
	reqSeq  atomic.Int64

	// Durable state; nil on an in-memory server.
	store *store
	wal   *journal

	// coord is the distributed-mining coordinator; nil outside
	// Mode == "coordinator".
	coord *dist.Coordinator
}

// Open boots a Server. With Config.DataDir set it runs the full recovery
// sequence — load datasets, restore the result cache, replay and compact the
// job journal, re-enqueue interrupted jobs — before returning, so by the
// time the handler serves its first request the service has caught up with
// its pre-crash self. Errors are reserved for an unusable data-dir (cannot
// create, cannot write the journal); data corruption degrades to logged
// warnings and a partial (or clean) boot.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: newRegistry(cfg.MaxDatasets),
		cache:    newResultCache(cfg.CacheEntries),
		metrics:  NewMetrics(),
		obsLog:   cfg.Logger,
	}
	// Legacy printf sinks route through the structured logger's bridge, so
	// every diagnostic gets the envelope (and the configured format).
	s.logf = s.obsLog.Printf
	s.jobs = newJobManager(cfg.MaxConcurrentJobs, s.cache, s.metrics)
	tenants, err := newTenantSet(cfg.Tenants, tenantDefaults{
		ratePerSec: cfg.TenantRatePerSec,
		burst:      cfg.TenantBurst,
		maxActive:  cfg.MaxActivePerTenant,
		maxQueued:  cfg.MaxQueuedPerTenant,
	})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.jobs.tenants = tenants
	s.jobs.sched = newScheduler(cfg.MaxConcurrentJobs, cfg.ShedWatermark, s.metrics)
	s.jobs.models = newModelCache(cfg.ModelCacheEntries, s.metrics)
	s.jobs.datasets = s.registry.get
	s.sweeps = newSweepManager()
	s.jobs.ckEvery = cfg.CheckpointEveryClusters
	s.jobs.maxRetries = cfg.MaxJobRetries
	s.jobs.retryBase = cfg.RetryBaseDelay
	s.jobs.logf = s.logf
	s.jobs.log = s.obsLog
	s.jobs.trace = cfg.EnableTracing
	s.jobs.slowJob = cfg.SlowJobThreshold
	switch cfg.Mode {
	case "", "single":
	case "coordinator":
		// The coordinator must exist before recovery: interrupted jobs
		// re-enqueued at boot mine through it like fresh ones.
		s.coord = dist.NewCoordinator(dist.Config{
			LeaseTTL:     cfg.LeaseTTL,
			LocalWorkers: cfg.DistLocalWorkers,
			Datasets:     registrySource{s.registry},
			Events:       s.distEvent,
			Logf:         s.logf,
		})
		s.jobs.coord = s.coord
		s.jobs.distLocalWorkers = cfg.DistLocalWorkers
	default:
		return nil, fmt.Errorf("service: unknown mode %q (want single or coordinator)", cfg.Mode)
	}
	if cfg.DataDir != "" {
		st, err := openStore(cfg.DataDir, s.logf)
		if err != nil {
			return nil, err
		}
		s.store = st
		s.jobs.store = st
		s.cache.onEvict = st.deleteResult
		t0 := time.Now()
		if err := s.bootRecover(); err != nil {
			return nil, err
		}
		replay := time.Since(t0)
		s.metrics.ObservePhase(PhaseReplay, replay)
		s.obsLog.Info("boot recovery complete",
			"dur_ms", replay.Milliseconds(),
			"datasets", s.registry.size(),
			"jobs", len(s.jobs.list()),
		)
	}
	s.sampler = obs.NewRuntimeSampler(0, nil)
	s.sampler.Start()
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// New returns a ready-to-serve Server. It cannot fail without a DataDir;
// callers configuring one should prefer Open, since New panics on a boot
// error instead of returning it.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic("service: " + err.Error())
	}
	return s
}

// Close releases the server's durable resources (the journal file handle)
// and stops the runtime sampler. Call it after Shutdown.
func (s *Server) Close() error {
	s.sampler.Stop()
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}

// Handler returns the HTTP surface of the service, wrapped in the request
// logging middleware.
func (s *Server) Handler() http.Handler { return s.requestLog(s.mux) }

// statusWriter captures the response status for the request log while
// passing streaming (http.Flusher) through to the underlying writer — the
// NDJSON stream handler depends on it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog assigns each request a correlation ID (echoed in X-Request-Id)
// and emits one structured line per completed request.
func (s *Server) requestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.obsLog.Info("http request",
			"req", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"dur_ms", time.Since(start).Milliseconds(),
		)
	})
}

// Metrics returns the server's metrics registry (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains the service: new submissions are rejected with 503, jobs
// already accepted keep running until done or until ctx expires, at which
// point they are cancelled cooperatively and awaited. It returns ctx's error
// when the deadline forced cancellations, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobs.drain(ctx)
}

// distEvent bridges coordinator lifecycle events into the journal (as
// recWorker/recLease audit records — dropped on replay and by compaction)
// and the structured log. Reassignments warn: they mean a worker died or
// fell behind its heartbeat TTL.
func (s *Server) distEvent(ev dist.Event) {
	switch ev.Kind {
	case dist.EventWorkerJoined:
		s.obsLog.Info("worker joined", "worker", ev.Worker, "addr", ev.Addr)
		s.jobs.journalAppend(journalRecord{Type: recWorker, Worker: ev.Worker, Addr: ev.Addr})
	default:
		cond := ev.Cond
		s.jobs.journalAppend(journalRecord{Type: recLease, Job: ev.Job, Worker: ev.Worker,
			Lease: ev.Lease, LeaseEvent: string(ev.Kind), Cond: &cond, Skip: ev.Skip, Reason: ev.Reason})
		if ev.Kind == dist.EventLeaseReassigned {
			s.obsLog.Warn("lease reassigned",
				"job", ev.Job, "lease", ev.Lease, "worker", ev.Worker,
				"cond", int64(ev.Cond), "skip", int64(ev.Skip), "reason", ev.Reason)
		}
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /datasets", s.handleUpload)
	s.mux.HandleFunc("GET /datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /datasets/{id}", s.handleGetDataset)
	s.mux.HandleFunc("GET /datasets/{id}/tsv", s.handleDatasetTSV)
	s.mux.HandleFunc("DELETE /datasets/{id}", s.handleDeleteDataset)
	s.mux.HandleFunc("POST /datasets/{id}/append", s.handleAppend)
	s.mux.HandleFunc("GET /datasets/{id}/diff/{parent}", s.handleDiff)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /sweeps", s.handleListSweeps)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /tenants", s.handleListTenants)
	s.mux.HandleFunc("GET /tenants/{id}/usage", s.handleTenantUsage)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.coord != nil {
		s.coord.Routes(s.mux)
	}
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// datasetView is the JSON form of a dataset; row stats only on detail.
type datasetView struct {
	Dataset
	RowStats []RowStat `json:"row_stats,omitempty"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ds, created, err := s.registry.add(r.URL.Query().Get("name"), body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "parse dataset: %v", err)
		return
	}
	if created && s.store != nil {
		if err := s.store.saveDataset(ds); err != nil {
			// A dataset the store cannot persist would silently vanish on
			// restart, breaking the durability promise; reject the upload.
			s.registry.remove(ds.ID)
			writeError(w, http.StatusInternalServerError, "persist dataset: %v", err)
			return
		}
	}
	s.metrics.DatasetsUploaded.Add(1)
	status := http.StatusOK // existing dataset, idempotent re-upload
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, datasetView{Dataset: *ds})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	list := s.registry.list()
	views := make([]datasetView, len(list))
	for i, ds := range list {
		views[i] = datasetView{Dataset: *ds}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": views})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	ds, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, datasetView{Dataset: *ds, RowStats: ds.RowStats()})
}

func (s *Server) handleDatasetTSV(w http.ResponseWriter, r *http.Request) {
	ds, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	ds.Matrix().WriteTSV(w)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if !s.registry.remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	if s.store != nil {
		s.store.deleteDataset(r.PathValue("id"))
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleAppend grows a dataset by an append delta. The body is a TSV holding
// only the appended entries — new columns for axis=conditions (the default),
// new rows for axis=genes. The result is a NEW content-addressed dataset
// version with its lineage recorded and journaled; the parent is never
// mutated, so prior results stay valid and diffable.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	axis := r.URL.Query().Get("axis")
	if axis == "" {
		axis = DeltaAxisConditions
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	ds, created, err := s.registry.appendDelta(r.PathValue("id"), axis, r.URL.Query().Get("name"), body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "delta exceeds %d bytes", tooBig.Limit)
			return
		}
		if _, ok := s.registry.get(r.PathValue("id")); !ok {
			writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
			return
		}
		writeError(w, http.StatusBadRequest, "append delta: %v", err)
		return
	}
	if created && s.store != nil {
		if err := s.store.saveDataset(ds); err != nil {
			s.registry.remove(ds.ID)
			writeError(w, http.StatusInternalServerError, "persist dataset: %v", err)
			return
		}
	}
	status := http.StatusOK // delta converged on an existing dataset
	if created {
		s.metrics.DatasetAppends.Add(1)
		if ds.Delta != nil {
			// Journal the lineage so incremental re-mining survives restarts.
			// Best-effort like every WAL append: a failure degrades the next
			// boot to cold mining, never availability.
			s.jobs.journalAppend(journalRecord{Type: recDelta, Dataset: ds.ID, Delta: ds.Delta})
		}
		status = http.StatusCreated
	}
	writeJSON(w, status, datasetView{Dataset: *ds})
}

// DiffSchemaID identifies the result-diff document format.
const DiffSchemaID = "regcluster.diff/v1"

// ClusterGrowth pairs the parent- and child-side versions of one cluster
// whose chain survived the delta but whose membership changed.
type ClusterGrowth struct {
	Before report.NamedCluster `json:"before"`
	After  report.NamedCluster `json:"after"`
}

// DiffDocument is the response of GET /datasets/{id}/diff/{parent}: the
// settled child result compared against the parent's, keyed by (chain,
// direction). Added/Removed hold clusters present on only one side; Grown
// holds chains present on both with different membership; Unchanged counts
// identical clusters.
type DiffDocument struct {
	Schema    string                `json:"schema"`
	Dataset   string                `json:"dataset"`
	Parent    string                `json:"parent"`
	Job       string                `json:"job"`
	Params    core.Params           `json:"params"`
	Added     []report.NamedCluster `json:"added"`
	Removed   []report.NamedCluster `json:"removed"`
	Grown     []ClusterGrowth       `json:"grown"`
	Unchanged int                   `json:"unchanged"`
}

// diffKey identifies a cluster across the two results: the condition chain
// (names, in chain order) plus the orientation.
func diffKey(nc report.NamedCluster) string {
	return strings.Join(nc.Chain, "\x1f") + "\x1f|" + nc.Direction
}

// handleDiff compares the latest settled result on a dataset against the
// parent's cached result under the same parameters. The endpoint works for
// any dataset pair that has both results resident — lineage makes the diff
// meaningful but is not required.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	childID, parentID := r.PathValue("id"), r.PathValue("parent")
	if _, ok := s.registry.get(childID); !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", childID)
		return
	}
	if _, ok := s.registry.get(parentID); !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", parentID)
		return
	}
	// Latest done job on the child fixes the parameter point of the diff.
	var child *JobView
	for _, j := range s.jobs.list() {
		v := j.View()
		if v.Dataset == childID && v.Status == StatusDone {
			child = &v
		}
	}
	if child == nil {
		writeError(w, http.StatusNotFound, "no settled result for dataset %q; mine it first", childID)
		return
	}
	childRes, ok := s.cache.get(cacheKey(childID, child.Params))
	if !ok {
		writeError(w, http.StatusNotFound, "result for dataset %q evicted; re-mine it", childID)
		return
	}
	parentRes, ok := s.cache.get(cacheKey(parentID, child.Params))
	if !ok {
		writeError(w, http.StatusNotFound, "no result for dataset %q under the same params; mine it first", parentID)
		return
	}

	parentBy := make(map[string]report.NamedCluster, len(parentRes.clusters))
	for _, nc := range parentRes.clusters {
		parentBy[diffKey(nc)] = nc
	}
	diff := DiffDocument{
		Schema:  DiffSchemaID,
		Dataset: childID,
		Parent:  parentID,
		Job:     child.ID,
		Params:  child.Params,
		Added:   []report.NamedCluster{},
		Removed: []report.NamedCluster{},
		Grown:   []ClusterGrowth{},
	}
	seen := make(map[string]bool, len(childRes.clusters))
	for _, nc := range childRes.clusters {
		key := diffKey(nc)
		seen[key] = true
		old, ok := parentBy[key]
		switch {
		case !ok:
			diff.Added = append(diff.Added, nc)
		case reflect.DeepEqual(old.Members, nc.Members):
			diff.Unchanged++
		default:
			diff.Grown = append(diff.Grown, ClusterGrowth{Before: old, After: nc})
		}
	}
	for _, nc := range parentRes.clusters {
		if !seen[diffKey(nc)] {
			diff.Removed = append(diff.Removed, nc)
		}
	}
	writeJSON(w, http.StatusOK, diff)
}

// submitRequest is the body of POST /jobs.
type submitRequest struct {
	Dataset string      `json:"dataset"`
	Params  core.Params `json:"params"`
	// Workers is the per-job worker count; 0 uses the server default. The
	// cluster output is identical for every worker count.
	Workers int `json:"workers"`
	// TimeoutMS is the mining deadline in milliseconds; 0 uses the server
	// maximum (if any). Values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	// Drain pre-check: during graceful shutdown new work must be turned away
	// immediately with 503 + Retry-After, not accepted only to be interrupted
	// when the grace period expires.
	if s.jobs.isClosed() {
		s.rejectDraining(w)
		return
	}
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	ds, ok := s.registry.get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	p := req.Params
	if err := p.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid params: %v", err)
		return
	}
	if p.CustomGammas != nil && len(p.CustomGammas) != ds.Genes {
		writeError(w, http.StatusBadRequest, "invalid params: %d CustomGammas for %d genes", len(p.CustomGammas), ds.Genes)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.DefaultWorkers
	}
	if err := core.ValidateWorkers(workers, s.cfg.MaxWorkersPerJob); err != nil {
		writeError(w, http.StatusBadRequest, "invalid workers: %v", err)
		return
	}
	// Server- and tenant-side budget caps: clamp BEFORE the cache key is
	// derived so a clamped submission and an explicit submission of the same
	// effective budget share a cache entry. A tenant with an aggregate node
	// pool additionally clamps unlimited node budgets to the pool capacity, so
	// every one of its jobs charges the pool a finite amount.
	p.MaxNodes = clampCap(p.MaxNodes, s.cfg.MaxNodesPerJob)
	p.MaxClusters = clampCap(p.MaxClusters, s.cfg.MaxClustersPerJob)
	p.MaxNodes = clampCap(p.MaxNodes, tn.maxNodes)
	p.MaxClusters = clampCap(p.MaxClusters, tn.maxClusters)
	if tn.nodes != nil {
		p.MaxNodes = clampCap(p.MaxNodes, int(tn.nodes.Capacity()))
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "invalid timeout_ms: %d", req.TimeoutMS)
		return
	}
	if s.cfg.MaxJobDuration > 0 && (timeout == 0 || timeout > s.cfg.MaxJobDuration) {
		timeout = s.cfg.MaxJobDuration
	}

	j, err := s.jobs.submitAs(tn, ds, p, workers, timeout)
	var adm *admissionError
	switch {
	case errors.Is(err, ErrDraining):
		s.rejectDraining(w)
	case errors.As(err, &adm):
		writeAdmissionError(w, adm)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, j.View())
	}
}

// resolveTenant authenticates the request's tenant; an unknown API key is a
// 401 (a typo'd key must fail loudly, never demote to anonymous limits).
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	tn, err := s.jobs.tenants.resolve(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, "%v", err)
		return nil, false
	}
	return tn, true
}

// writeAdmissionError renders a 429/503 admission rejection with its
// Retry-After header (whole seconds, at least 1).
func writeAdmissionError(w http.ResponseWriter, adm *admissionError) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(adm.retryAfter)))
	writeError(w, adm.status, "%s", adm.msg)
}

// rejectDraining turns away a submission during graceful drain: 503 plus a
// Retry-After derived from the backlog still draining, so clients and load
// balancers know when a replacement instance is worth trying.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	depth := s.jobs.queuedOrRunning()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.jobs.sched.retryAfter(depth))))
	writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
}

// clampCap lowers a requested budget cap to the server limit; 0 means the
// caller asked for unlimited, which a configured server limit overrides.
func clampCap(requested, limit int) int {
	if limit > 0 && (requested == 0 || requested > limit) {
		return limit
	}
	return requested
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.list()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// streamSummary is the final NDJSON line of a job stream; its Done field
// distinguishes it from cluster lines.
type streamSummary struct {
	Done     bool        `json:"done"`
	Status   JobStatus   `json:"status"`
	Error    string      `json:"error,omitempty"`
	Clusters int         `json:"clusters"`
	Stats    *core.Stats `json:"stats,omitempty"`
}

// handleStream replays the job's clusters from the beginning and then
// follows the live run, one compact JSON cluster per line (the NamedCluster
// schema), flushing after every batch; the last line is a streamSummary. A
// cached job streams its full result immediately.
//
// The handler is a pure subscriber: an encoder error, a vanished client, or
// even a panic inside the response path ends THIS stream only — the mining
// job it watches is untouched, and other subscribers keep streaming.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.metrics.StreamsInflight.Add(1)
	defer s.metrics.StreamsInflight.Add(-1)
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.PanicsRecovered.Add(1)
			s.logf("service: stream %s: contained panic: %v", j.ID, rec)
		}
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sent := 0
	ssp := j.root.Start("stream") // a replay may outlive the job span; that's fine
	defer func() {
		ssp.SetInt("clusters", int64(sent))
		ssp.End()
	}()
	for {
		clusters, terminal, changed := j.Snapshot(sent)
		for _, nc := range clusters {
			if err := faultinject.Hook("stream.write"); err != nil {
				return // injected subscriber failure
			}
			if err := enc.Encode(nc); err != nil {
				return // client went away
			}
			sent++
		}
		if len(clusters) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			break
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
	_, stats, errMsg, _ := j.Result()
	enc.Encode(streamSummary{Done: true, Status: j.Status(), Error: errMsg, Clusters: sent, Stats: &stats})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleResult returns the settled outcome as a report.Document — the same
// stable schema cmd/regcluster -json emits.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	clusters, stats, errMsg, terminal := j.Result()
	if !terminal {
		writeError(w, http.StatusConflict, "job %s is %s; poll or stream instead", j.ID, j.Status())
		return
	}
	if errMsg != "" {
		writeError(w, http.StatusConflict, "job %s ended %s: %s", j.ID, j.Status(), errMsg)
		return
	}
	doc := &report.Document{Schema: report.SchemaID, Params: j.Params, Stats: stats, Clusters: clusters}
	w.Header().Set("Content-Type", "application/json")
	doc.Write(w)
}

// handleTrace returns the finished (or still-growing) span tree of one job.
// 404 covers both an unknown job and a server running without -trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	tree := j.Trace()
	if tree == nil {
		writeError(w, http.StatusNotFound, "no trace for job %s (run the server with tracing enabled)", j.ID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":    j.ID,
		"status": j.Status(),
		"trace":  tree,
	})
}

// tenantView builds the JSON view of one tenant: identity, live scheduler
// occupancy, node-pool state, and the cumulative usage ledger.
func (s *Server) tenantView(tn *tenant) tenantView {
	g := s.jobs.sched.gauges(tn)
	return tenantView{
		ID:                 tn.id,
		Weight:             tn.weight,
		Priority:           priorityNames[tn.priority],
		Queued:             g.queued,
		Running:            g.running,
		NodeBudgetInUse:    tn.nodes.InUse(),
		NodeBudgetCapacity: tn.nodes.Capacity(),
		Usage:              tn.usageSnapshot(),
	}
}

// handleListTenants lists every tenant (anonymous first) with live occupancy
// and usage. API keys are never echoed.
func (s *Server) handleListTenants(w http.ResponseWriter, _ *http.Request) {
	tenants := s.jobs.tenants.list()
	views := make([]tenantView, len(tenants))
	for i, tn := range tenants {
		views[i] = s.tenantView(tn)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": views})
}

// handleTenantUsage is the per-tenant accounting endpoint.
func (s *Server) handleTenantUsage(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.jobs.tenants.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.tenantView(tn))
}

// handleHealthz is the readiness probe. By the time Open returns, the
// registry is loaded and the journal replayed, so readiness reduces to "not
// draining": 200 while the server accepts submissions, 503 once Shutdown has
// begun (load balancers and coordinator placement checks steer away). The
// body reports the mode, the scheduler's saturation (queue depth, shed state,
// per-class backlog — so balancers can stop routing BEFORE hard 429s), and,
// in coordinator mode, the worker pool state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	draining := s.jobs.isClosed()
	mode := s.cfg.Mode
	if mode == "" {
		mode = "single"
	}
	sat := s.jobs.sched.saturationSnapshot()
	backlog := make(map[string]int, numPriorities)
	for class, n := range sat.byClass {
		backlog[priorityNames[class]] = n
	}
	resp := map[string]any{
		"status":           "ok",
		"ready":            !draining,
		"mode":             mode,
		"datasets":         s.registry.size(),
		"jobs_active":      s.jobs.queuedOrRunning(),
		"queue_depth":      sat.queued,
		"slots_busy":       sat.running,
		"shedding":         sat.shedding,
		"backlog_by_class": backlog,
	}
	status := http.StatusOK
	if draining {
		resp["status"] = "draining"
		status = http.StatusServiceUnavailable
	}
	if s.coord != nil {
		resp["workers_connected"] = s.coord.WorkersConnected()
		resp["leases_active"] = s.coord.ActiveLeases()
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, []gauge{
		{"regcluster_datasets", "Registered datasets.", func() int64 { return int64(s.registry.size()) }},
		{"regcluster_cache_entries", "Entries in the result cache.", func() int64 { return int64(s.cache.len()) }},
		{"regserver_model_cache_entries", "Shared RWave model sets currently retained.", func() int64 { return int64(s.jobs.models.len()) }},
		{"regcluster_jobs_running", "Jobs holding a mining slot.", func() int64 { return int64(s.jobs.runningCount()) }},
		{"regcluster_jobs_active", "Jobs queued or running.", func() int64 { return int64(s.jobs.queuedOrRunning()) }},
		{"regserver_jobs_queued", "Jobs waiting for a mining slot.", func() int64 {
			q := s.jobs.queuedOrRunning() - s.jobs.runningCount()
			if q < 0 {
				q = 0
			}
			return int64(q)
		}},
		{"regserver_streams_inflight", "Live cluster-stream subscribers.", func() int64 { return s.metrics.StreamsInflight.Load() }},
		{"regserver_goroutines", "Goroutines at the last runtime sample.", func() int64 { return int64(s.sampler.Latest().Goroutines) }},
		{"regserver_heap_alloc_bytes", "Heap bytes in use at the last runtime sample.", func() int64 { return int64(s.sampler.Latest().HeapAllocBytes) }},
		{"regserver_gc_runs", "Completed GC cycles at the last runtime sample.", func() int64 { return int64(s.sampler.Latest().NumGC) }},
	})
	gp := "regserver_gc_pause_seconds_total"
	fmt.Fprintf(w, "# HELP %s Cumulative GC pause at the last runtime sample.\n# TYPE %s gauge\n%s %g\n",
		gp, gp, gp, s.sampler.Latest().GCPauseTotal.Seconds())
	s.writeTenantMetrics(w)
	if s.coord != nil {
		joined, issued, reassigned, completed := s.coord.Counters()
		writeMetric := func(kind, name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, v)
		}
		writeMetric("gauge", "regserver_workers_connected", "Workers heard from within the last three lease TTLs.", int64(s.coord.WorkersConnected()))
		writeMetric("gauge", "regserver_leases_active", "Subtree leases currently outstanding.", int64(s.coord.ActiveLeases()))
		writeMetric("counter", "regserver_workers_joined_total", "Worker registrations accepted.", joined)
		writeMetric("counter", "regserver_leases_issued_total", "Subtree leases issued (re-issues included).", issued)
		writeMetric("counter", "regserver_leases_reassigned_total", "Leases revoked (heartbeat TTL or worker nack) and re-queued.", reassigned)
		writeMetric("counter", "regserver_leases_completed_total", "Subtree leases completed by a final heartbeat.", completed)
	}
}

// writeTenantMetrics renders the per-tenant families, one labeled series per
// tenant: the cumulative usage counters and the live queue/slot gauges.
func (s *Server) writeTenantMetrics(w io.Writer) {
	tenants := s.jobs.tenants.list()
	family := func(kind, name, help string, value func(*tenant) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, tn := range tenants {
			fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, tn.id, value(tn))
		}
	}
	usage := make(map[string]TenantUsage, len(tenants))
	gauges := make(map[string]tenantGauges, len(tenants))
	for _, tn := range tenants {
		usage[tn.id] = tn.usageSnapshot()
		gauges[tn.id] = s.jobs.sched.gauges(tn)
	}
	i := func(f func(TenantUsage) int64) func(*tenant) string {
		return func(tn *tenant) string { return fmt.Sprintf("%d", f(usage[tn.id])) }
	}
	family("counter", "regserver_tenant_jobs_total", "Submissions accepted per tenant.", i(func(u TenantUsage) int64 { return u.Jobs }))
	family("counter", "regserver_tenant_jobs_completed_total", "Jobs settled done per tenant.", i(func(u TenantUsage) int64 { return u.Completed }))
	family("counter", "regserver_tenant_jobs_failed_total", "Jobs settled failed per tenant.", i(func(u TenantUsage) int64 { return u.Failed }))
	family("counter", "regserver_tenant_jobs_cancelled_total", "Caller cancellations per tenant.", i(func(u TenantUsage) int64 { return u.Cancelled }))
	family("counter", "regserver_tenant_jobs_shed_total", "Queued jobs evicted by overload shedding per tenant.", i(func(u TenantUsage) int64 { return u.Shed }))
	family("counter", "regserver_tenant_jobs_rejected_total", "Submissions refused with 429 per tenant.", i(func(u TenantUsage) int64 { return u.Rejected }))
	family("counter", "regserver_tenant_nodes_total", "Search-tree nodes mined by settled jobs per tenant.", i(func(u TenantUsage) int64 { return u.Nodes }))
	family("counter", "regserver_tenant_clusters_total", "Clusters emitted by settled jobs per tenant.", i(func(u TenantUsage) int64 { return u.Clusters }))
	family("counter", "regserver_tenant_node_seconds_total", "Mining-slot seconds consumed per tenant.",
		func(tn *tenant) string { return fmt.Sprintf("%g", usage[tn.id].NodeSeconds) })
	family("gauge", "regserver_tenant_jobs_queued", "Jobs waiting for a slot per tenant.",
		func(tn *tenant) string { return fmt.Sprintf("%d", gauges[tn.id].queued) })
	family("gauge", "regserver_tenant_jobs_running", "Jobs holding a slot per tenant.",
		func(tn *tenant) string { return fmt.Sprintf("%d", gauges[tn.id].running) })
}
