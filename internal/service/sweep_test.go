package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/faultinject"
	"regcluster/internal/paperdata"
	"regcluster/internal/report"
)

// postSweep submits a sweep request and decodes the response (a sweepView on
// success, ignored on error); the status code is returned either way.
func postSweep(t *testing.T, ts *httptest.Server, req any) (sweepView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v sweepView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getSweep(t *testing.T, ts *httptest.Server, id string) sweepView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sweeps/%s status %d", id, resp.StatusCode)
	}
	var v sweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitSweepDone polls a sweep until every point is terminal.
func waitSweepDone(t *testing.T, ts *httptest.Server, id string) sweepView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getSweep(t, ts, id)
		if v.Done {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s never finished", id)
	return sweepView{}
}

// TestSweepSharedBuildByteIdentical is the tentpole acceptance test: an
// ε-sweep under one γ performs exactly one RWave build (metrics-asserted),
// and every point's result is byte-identical — compared on the JSON encoding
// — to a standalone core.Mine run with the same Params.
func TestSweepSharedBuildByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	epsilons := []float64{0.05, 0.1, 0.2, 0.3}
	v, code := postSweep(t, ts, sweepRequest{
		Dataset:  id,
		Params:   core.Params{MinG: 3, MinC: 5, Gamma: 0.15},
		Epsilons: epsilons,
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d", code)
	}
	if v.Schema != SweepSchemaID {
		t.Fatalf("schema %q, want %q", v.Schema, SweepSchemaID)
	}
	if len(v.Points) != len(epsilons) || v.ModelGroups != 1 {
		t.Fatalf("%d points in %d model groups, want %d in 1", len(v.Points), v.ModelGroups, len(epsilons))
	}

	fin := waitSweepDone(t, ts, v.ID)
	for i, pt := range fin.Points {
		if pt.Status != StatusDone {
			t.Fatalf("point %d ended %s (%s)", i, pt.Status, pt.Error)
		}
		if pt.Params.Epsilon != epsilons[i] {
			t.Fatalf("point %d has ε=%v, want grid order preserved (%v)", i, pt.Params.Epsilon, epsilons[i])
		}
		want, err := core.Mine(m, pt.Params)
		if err != nil {
			t.Fatal(err)
		}
		wantNamed := make([]report.NamedCluster, len(want.Clusters))
		for k, b := range want.Clusters {
			wantNamed[k] = report.Named(m, b)
		}
		got, _ := streamClusters(t, ts, pt.Job)
		gotJSON, _ := json.Marshal(got)
		wantJSON, _ := json.Marshal(wantNamed)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("point %d (ε=%v) diverges from standalone Mine", i, pt.Params.Epsilon)
		}
		if pt.Clusters != len(wantNamed) || pt.Stats == nil || *pt.Stats != want.Stats {
			t.Fatalf("point %d summary: %d clusters, stats %+v; want %d, %+v",
				i, pt.Clusters, pt.Stats, len(wantNamed), want.Stats)
		}
	}

	// One γ group ⇒ exactly one model build for the whole sweep.
	if misses := metricValue(t, ts, "regserver_model_cache_misses_total"); misses != 1 {
		t.Fatalf("%d model builds for a one-γ sweep, want 1", misses)
	}
	if hits := metricValue(t, ts, "regserver_model_cache_hits_total"); hits != int64(len(epsilons)-1) {
		t.Fatalf("model cache hits %d, want %d", metricValue(t, ts, "regserver_model_cache_hits_total"), len(epsilons)-1)
	}

	// Resubmitting the sweep is a pure result-cache replay: every point comes
	// back Cached, and no further model build (or avoided build) is counted —
	// cache-hit jobs never reach the miner.
	v2, _ := postSweep(t, ts, sweepRequest{
		Dataset:  id,
		Params:   core.Params{MinG: 3, MinC: 5, Gamma: 0.15},
		Epsilons: epsilons,
	})
	fin2 := waitSweepDone(t, ts, v2.ID)
	for i, pt := range fin2.Points {
		if !pt.Cached || pt.Status != StatusDone {
			t.Fatalf("resubmitted point %d: cached=%v status=%s", i, pt.Cached, pt.Status)
		}
	}
	if misses := metricValue(t, ts, "regserver_model_cache_misses_total"); misses != 1 {
		t.Fatalf("cached sweep re-built models (misses %d)", misses)
	}
}

// TestSweepMultiGammaGroups: a 2γ×2ε grid builds exactly one model set per γ
// group, in grid (γ-major) order.
func TestSweepMultiGammaGroups(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	v, code := postSweep(t, ts, sweepRequest{
		Dataset:  id,
		Params:   core.Params{MinG: 3, MinC: 5},
		Gammas:   []float64{0.15, 0.3},
		Epsilons: []float64{0.1, 0.3},
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d", code)
	}
	if len(v.Points) != 4 || v.ModelGroups != 2 {
		t.Fatalf("%d points in %d groups, want 4 in 2", len(v.Points), v.ModelGroups)
	}
	fin := waitSweepDone(t, ts, v.ID)
	for i, pt := range fin.Points {
		if pt.Status != StatusDone {
			t.Fatalf("point %d ended %s (%s)", i, pt.Status, pt.Error)
		}
	}
	if misses := metricValue(t, ts, "regserver_model_cache_misses_total"); misses != 2 {
		t.Fatalf("%d model builds for 2 γ groups", misses)
	}
	if hits := metricValue(t, ts, "regserver_model_cache_hits_total"); hits != 2 {
		t.Fatalf("model cache hits %d, want 2", hits)
	}
}

// TestSweepValidation: malformed grids are rejected atomically — no point
// jobs are created for a request that fails validation.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")
	base := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}

	cases := []struct {
		name string
		req  any
		code int
	}{
		{"unknown dataset", sweepRequest{Dataset: "nope", Params: base}, http.StatusNotFound},
		{"oversized grid", sweepRequest{Dataset: id, Params: base,
			Epsilons: make([]float64, maxSweepPoints+1)}, http.StatusBadRequest},
		{"invalid gamma point", sweepRequest{Dataset: id, Params: base,
			Gammas: []float64{0.1, 1.5}}, http.StatusBadRequest},
		{"non-finite epsilon", json.RawMessage(`{"dataset":"` + id + `","params":{"MinG":3,"MinC":5,"Gamma":0.15},"epsilons":[0.1,1e999]}`), http.StatusBadRequest},
		{"gammas with CustomGammas", sweepRequest{Dataset: id,
			Params: core.Params{MinG: 3, MinC: 5, Epsilon: 0.1,
				CustomGammas: make([]float64, m.Rows())},
			Gammas: []float64{0.1, 0.2}}, http.StatusBadRequest},
		{"negative timeout", sweepRequest{Dataset: id, Params: base, TimeoutMS: -1}, http.StatusBadRequest},
		{"excess workers", sweepRequest{Dataset: id, Params: base, Workers: 1 << 20}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, code := postSweep(t, ts, tc.req); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs.Jobs) != 0 {
		t.Fatalf("rejected sweeps created %d jobs", len(jobs.Jobs))
	}
	if _, code := postSweep(t, ts, sweepRequest{Dataset: id, Params: base}); code != http.StatusAccepted {
		t.Fatalf("degenerate one-point sweep rejected: %d", code)
	}
}

// TestSweepDedupesGrid: duplicate axis values collapse to one point (one job,
// one cache entry), not N identical jobs.
func TestSweepDedupesGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	v, code := postSweep(t, ts, sweepRequest{
		Dataset:  id,
		Params:   core.Params{MinG: 3, MinC: 5, Gamma: 0.15},
		Epsilons: []float64{0.1, 0.1, 0.3, 0.1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d", code)
	}
	if len(v.Points) != 2 {
		t.Fatalf("%d points after dedupe, want 2", len(v.Points))
	}
	waitSweepDone(t, ts, v.ID)
}

// TestSweepListEndpoint: GET /sweeps enumerates submitted sweeps in order and
// GET /sweeps/{id} 404s on unknown IDs.
func TestSweepListEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")
	base := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}

	v1, _ := postSweep(t, ts, sweepRequest{Dataset: id, Params: base})
	v2, _ := postSweep(t, ts, sweepRequest{Dataset: id, Params: base, Epsilons: []float64{0.2, 0.3}})

	resp, err := http.Get(ts.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Sweeps []sweepView `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 2 || list.Sweeps[0].ID != v1.ID || list.Sweeps[1].ID != v2.ID {
		t.Fatalf("sweep list %+v, want [%s %s]", list.Sweeps, v1.ID, v2.ID)
	}
	r404, err := http.Get(ts.URL + "/sweeps/sweep-999999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep status %d", r404.StatusCode)
	}
	waitSweepDone(t, ts, v1.ID)
	waitSweepDone(t, ts, v2.ID)
}

// TestSweepSurvivesRestart: a durable server drained mid-sweep journals the
// sweep binding and the interrupted points; the next boot restores the sweep
// view (marked recovered), resumes the unfinished points, and the sweep
// completes with every point done.
func TestSweepSurvivesRestart(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	m, p := recoveryWorkload(t)

	cfg := Config{DataDir: dir, CheckpointEveryClusters: 1, MaxConcurrentJobs: 2, Logf: t.Logf}
	srvA, tsA := openTestServer(t, cfg)
	disarmDelay := faultinject.Arm("core.mine.subtree", faultinject.Spec{Delay: 40 * time.Millisecond})
	defer disarmDelay()

	id := uploadMatrix(t, tsA, m, "sweepy")
	v, code := postSweep(t, tsA, sweepRequest{
		Dataset:  id,
		Params:   p,
		Epsilons: []float64{p.Epsilon, p.Epsilon / 2},
		Workers:  2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep status %d", code)
	}
	waitClusters(t, tsA, v.Points[0].Job, 1)

	// Drain with an expiring grace period: running points settle interrupted,
	// queued ones stay queued in the journal; then the process "dies".
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srvA.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err %v, want deadline", err)
	}
	tsA.Close()
	srvA.Close()
	disarmDelay()

	_, tsB := openTestServer(t, cfg)
	got := getSweep(t, tsB, v.ID)
	if !got.Recovered || got.Dataset != id || len(got.Points) != 2 {
		t.Fatalf("restored sweep %+v", got)
	}
	for i, pt := range got.Points {
		if pt.Params.Epsilon != v.Points[i].Params.Epsilon || pt.Job != v.Points[i].Job {
			t.Fatalf("restored point %d: %+v vs submitted %+v", i, pt, v.Points[i])
		}
	}
	fin := waitSweepDone(t, tsB, v.ID)
	for i, pt := range fin.Points {
		if pt.Status != StatusDone {
			t.Fatalf("resumed point %d ended %s (%s)", i, pt.Status, pt.Error)
		}
		want, err := core.Mine(m, pt.Params)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Clusters != len(want.Clusters) || pt.Stats == nil || *pt.Stats != want.Stats {
			t.Fatalf("resumed point %d: %d clusters, stats %+v; want %d, %+v",
				i, pt.Clusters, pt.Stats, len(want.Clusters), want.Stats)
		}
	}
}
