package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"regcluster/internal/faultinject"
)

// Weighted-fair mining-slot scheduler. It replaces the FIFO slot semaphore:
// instead of one global queue a heavy tenant can saturate, every tenant has
// its own bounded FIFO, and free slots are granted by stride scheduling —
// strict priority across classes (high before normal before low), and
// within a class the tenant with the smallest virtual "pass" wins, advancing
// its pass by strideScale/weight per grant. A weight-2 tenant therefore
// receives twice the grants of a weight-1 tenant under contention, and an
// idle tenant's unused share is redistributed instead of banked (its pass is
// re-synchronized when it becomes active again).
//
// Overload degrades in two honest steps rather than by silent queue growth:
// per-tenant queue bounds reject at submit time with 429 + Retry-After, and
// a global shed watermark evicts already-queued work from the lowest
// priority class first (each eviction settles its job as cancelled-by-shed
// and is journaled, so a restart does not resurrect it).

// errShedOverload is returned by acquire when the load shedder evicted the
// queued job; the manager settles it as cancelled-by-shed.
var errShedOverload = errors.New("service: shed by overload")

// strideScale is the stride numerator: pass advances by strideScale/weight
// per grant, so larger weights advance slower and win more often.
const strideScale = 1 << 16

// schedEntry is one queued slot request.
type schedEntry struct {
	job   *Job
	tq    *tenantQueue
	grant chan struct{} // closed when a slot is granted
	shed  chan struct{} // closed when the overload shedder evicts the entry
	enq   time.Time
}

// tenantQueue is the scheduler-side state of one tenant.
type tenantQueue struct {
	tn      *tenant
	pass    uint64 // stride virtual time; smallest active pass is granted next
	q       []*schedEntry
	pending int // reservations made at admission, not yet enqueued by run()
	running int // entries currently holding a slot
}

func (tq *tenantQueue) stride() uint64 { return strideScale / uint64(tq.tn.weight) }

// occupancy is the tenant's total claim on the scheduler: queued entries,
// reservations in flight between submit and run, and held slots.
func (tq *tenantQueue) occupancy() int { return len(tq.q) + tq.pending + tq.running }

// scheduler owns the slot pool and the per-tenant queues. All state is
// guarded by mu; grants and sheds are delivered by closing entry channels
// under the lock, so observers never see a half-granted entry.
type scheduler struct {
	mu      sync.Mutex
	slots   int
	inUse   int
	tenants map[string]*tenantQueue

	queuedTotal int
	pendingTot  int

	// Shed watermark state machine: "ok" until queued work crosses shedHigh,
	// then "shedding" until it drains to shedLow. While shedding, admission
	// refuses work that would itself be shed (lowest-class), and enqueue
	// evicts from the lowest class until the total is back at the watermark.
	shedHigh int // <=0 disables shedding
	shedLow  int
	shedding bool

	drain   drainEstimator
	metrics *Metrics
	now     func() time.Time
}

func newScheduler(slots, shedWatermark int, metrics *Metrics) *scheduler {
	if slots < 1 {
		slots = 1
	}
	s := &scheduler{
		slots:    slots,
		tenants:  make(map[string]*tenantQueue),
		shedHigh: shedWatermark,
		shedLow:  shedWatermark / 2,
		metrics:  metrics,
		now:      time.Now,
	}
	return s
}

func (s *scheduler) tq(tn *tenant) *tenantQueue {
	tq, ok := s.tenants[tn.id]
	if !ok {
		tq = &tenantQueue{tn: tn}
		s.tenants[tn.id] = tq
	}
	return tq
}

// lowestQueuedClassLocked returns the lowest priority class with queued
// entries, or numPriorities when nothing is queued.
func (s *scheduler) lowestQueuedClassLocked() int {
	lowest := numPriorities
	for _, tq := range s.tenants {
		if len(tq.q) > 0 && tq.tn.priority < lowest {
			lowest = tq.tn.priority
		}
	}
	return lowest
}

// reserve claims admission capacity for n upcoming enqueues by tn. It
// enforces the per-tenant queue bound, the concurrent-job quota, and — while
// the shedder is active — refuses work that would immediately be shed.
// forced reservations (boot-time recovery) bypass every bound: journaled
// work is never re-rejected. The returned error is an *admissionError.
func (s *scheduler) reserve(tn *tenant, n int, forced bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tq(tn)
	if !forced {
		if tn.maxQueued > 0 && len(tq.q)+tq.pending+n > tn.maxQueued {
			return &admissionError{
				status:     429,
				retryAfter: s.retryAfterLocked(len(tq.q) + tq.pending),
				msg:        fmt.Sprintf("tenant %s: queue full (%d queued, limit %d)", tn.id, len(tq.q)+tq.pending, tn.maxQueued),
			}
		}
		if tn.maxActive > 0 && tq.occupancy()+n > tn.maxActive {
			return &admissionError{
				status:     429,
				retryAfter: s.retryAfterLocked(tq.occupancy()),
				msg:        fmt.Sprintf("tenant %s: concurrent-job quota reached (%d active, limit %d)", tn.id, tq.occupancy(), tn.maxActive),
			}
		}
		if s.shedding && tn.priority <= s.lowestQueuedClassLocked() {
			return &admissionError{
				status:     429,
				retryAfter: s.retryAfterLocked(s.queuedTotal),
				msg:        fmt.Sprintf("server overloaded: shedding %s-priority work", priorityNames[tn.priority]),
			}
		}
		if s.shedHigh > 0 && s.queuedTotal+s.pendingTot+n > s.shedHigh && tn.priority <= s.lowestQueuedClassLocked() {
			// The global watermark is reached and this work does not outrank
			// anything sheddable: reject it now instead of queueing it only
			// to evict it.
			return &admissionError{
				status:     429,
				retryAfter: s.retryAfterLocked(s.queuedTotal),
				msg:        fmt.Sprintf("server overloaded: %d jobs queued (watermark %d)", s.queuedTotal+s.pendingTot, s.shedHigh),
			}
		}
	}
	tq.pending += n
	s.pendingTot += n
	return nil
}

// unreserve returns unused reservations (a submission that settled from the
// result cache without ever queueing).
func (s *scheduler) unreserve(tn *tenant, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tq(tn)
	tq.pending -= n
	s.pendingTot -= n
	if tq.pending < 0 {
		tq.pending = 0
	}
	if s.pendingTot < 0 {
		s.pendingTot = 0
	}
}

// enqueue converts one reservation into a queued entry and dispatches. The
// entry's tenant re-synchronizes its stride pass against the active minimum
// of its class when it transitions from idle, so sitting out never banks
// scheduling credit.
func (s *scheduler) enqueue(j *Job) *schedEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tq(j.tn)
	if tq.pending > 0 {
		tq.pending--
		s.pendingTot--
	}
	if len(tq.q) == 0 && tq.running == 0 {
		if min, ok := s.minActivePassLocked(j.tn.priority, tq); ok && tq.pass < min {
			tq.pass = min
		}
	}
	e := &schedEntry{
		job:   j,
		tq:    tq,
		grant: make(chan struct{}),
		shed:  make(chan struct{}),
		enq:   s.now(),
	}
	tq.q = append(tq.q, e)
	s.queuedTotal++
	s.maybeShedLocked()
	s.dispatchLocked()
	return e
}

// minActivePassLocked returns the smallest pass among active tenants (queued
// or running work) of the given class, excluding self.
func (s *scheduler) minActivePassLocked(class int, self *tenantQueue) (uint64, bool) {
	var min uint64
	found := false
	for _, tq := range s.tenants {
		if tq == self || tq.tn.priority != class || (len(tq.q) == 0 && tq.running == 0) {
			continue
		}
		if !found || tq.pass < min {
			min, found = tq.pass, true
		}
	}
	return min, found
}

// acquire blocks until the job is granted a slot, shed, or cancelled. A nil
// return means the caller holds a slot and must release(j) when done.
func (s *scheduler) acquire(ctx context.Context, j *Job) error {
	e := s.enqueue(j)
	select {
	case <-e.grant:
		return nil
	case <-e.shed:
		return errShedOverload
	case <-ctx.Done():
	}
	if s.removeQueued(e) {
		return ctx.Err()
	}
	// Lost the race: a grant or shed landed while the cancellation was being
	// processed. A granted slot must go back to the pool.
	select {
	case <-e.grant:
		s.release(j)
	default:
	}
	return ctx.Err()
}

// removeQueued withdraws a still-queued entry (cancel-while-queued); false
// means the entry had already been granted or shed.
func (s *scheduler) removeQueued(e *schedEntry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, cand := range e.tq.q {
		if cand == e {
			e.tq.q = append(e.tq.q[:i], e.tq.q[i+1:]...)
			s.queuedTotal--
			s.exitShedLocked()
			return true
		}
	}
	return false
}

// release returns the slot held by j and dispatches the next entry.
func (s *scheduler) release(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tq(j.tn)
	if tq.running > 0 {
		tq.running--
	}
	if s.inUse > 0 {
		s.inUse--
	}
	s.drain.note(s.now())
	s.exitShedLocked()
	s.dispatchLocked()
}

// dispatchLocked grants free slots to the next entries in weighted-fair
// order: strict priority across classes, smallest stride pass within a
// class, FIFO within a tenant, tenant ID as the deterministic tie-break.
func (s *scheduler) dispatchLocked() {
	for s.inUse < s.slots {
		e := s.nextLocked()
		if e == nil {
			return
		}
		s.inUse++
		e.tq.running++
		e.tq.pass += e.tq.stride()
		close(e.grant)
	}
}

func (s *scheduler) nextLocked() *schedEntry {
	for class := PriorityHigh; class >= PriorityLow; class-- {
		var best *tenantQueue
		for _, tq := range s.tenants {
			if tq.tn.priority != class || len(tq.q) == 0 {
				continue
			}
			if best == nil || tq.pass < best.pass || (tq.pass == best.pass && tq.tn.id < best.tn.id) {
				best = tq
			}
		}
		if best != nil {
			e := best.q[0]
			best.q = best.q[1:]
			s.queuedTotal--
			s.exitShedLocked()
			return e
		}
	}
	return nil
}

// maybeShedLocked runs the shed half of the watermark state machine: once
// queued work crosses shedHigh the scheduler enters shedding and evicts the
// newest entries of the lowest priority class until the total is back at the
// watermark. Evicting newest-first preserves the oldest admitted work (it
// has waited longest and is closest to a slot).
func (s *scheduler) maybeShedLocked() {
	if s.shedHigh <= 0 || s.queuedTotal <= s.shedHigh {
		return
	}
	s.shedding = true
	for s.queuedTotal > s.shedHigh {
		victim := s.shedVictimLocked()
		if victim == nil {
			return
		}
		_ = faultinject.Hook("sched.shed")
		tq := victim.tq
		for i, cand := range tq.q {
			if cand == victim {
				tq.q = append(tq.q[:i], tq.q[i+1:]...)
				break
			}
		}
		s.queuedTotal--
		if s.metrics != nil {
			s.metrics.JobsShed.Add(1)
		}
		close(victim.shed)
	}
}

// shedVictimLocked picks the newest queued entry of the lowest non-empty
// priority class (largest-backlog tenant as the tie-break, so shedding also
// rebalances).
func (s *scheduler) shedVictimLocked() *schedEntry {
	class := s.lowestQueuedClassLocked()
	if class >= numPriorities {
		return nil
	}
	var victim *schedEntry
	var from *tenantQueue
	for _, tq := range s.tenants {
		if tq.tn.priority != class || len(tq.q) == 0 {
			continue
		}
		if from == nil || len(tq.q) > len(from.q) ||
			(len(tq.q) == len(from.q) && tq.tn.id < from.tn.id) {
			from = tq
			victim = tq.q[len(tq.q)-1]
		}
	}
	return victim
}

// exitShedLocked is the recovery half of the state machine: shedding ends
// once the queue drains to the low watermark.
func (s *scheduler) exitShedLocked() {
	if s.shedding && s.queuedTotal <= s.shedLow {
		s.shedding = false
	}
}

// retryAfterLocked derives a Retry-After from the observed drain rate: with
// depth entries ahead and the scheduler completing rate jobs per second, the
// backlog clears in ~depth/rate seconds. With no drain history yet the
// estimate falls back to a per-entry constant. Clamped to [1s, 120s].
func (s *scheduler) retryAfterLocked(depth int) time.Duration {
	if depth < 1 {
		depth = 1
	}
	var est time.Duration
	if rate := s.drain.rate(s.now()); rate > 0 {
		est = time.Duration(float64(depth) / rate * float64(time.Second))
	} else {
		est = time.Duration(depth) * 2 * time.Second / time.Duration(s.slots)
	}
	if est < time.Second {
		est = time.Second
	}
	if est > 120*time.Second {
		est = 120 * time.Second
	}
	return est
}

// retryAfter is the exported-to-handlers form of retryAfterLocked.
func (s *scheduler) retryAfter(depth int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked(depth)
}

// saturation is the scheduler's health snapshot for /healthz and /metrics.
type saturation struct {
	queued   int
	running  int
	shedding bool
	byClass  [numPriorities]int
}

func (s *scheduler) saturationSnapshot() saturation {
	s.mu.Lock()
	defer s.mu.Unlock()
	sat := saturation{queued: s.queuedTotal + s.pendingTot, running: s.inUse, shedding: s.shedding}
	for _, tq := range s.tenants {
		sat.byClass[tq.tn.priority] += len(tq.q) + tq.pending
	}
	return sat
}

// gauges returns one tenant's live queue occupancy.
func (s *scheduler) gauges(tn *tenant) tenantGauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq, ok := s.tenants[tn.id]
	if !ok {
		return tenantGauges{}
	}
	return tenantGauges{queued: len(tq.q) + tq.pending, running: tq.running}
}

// runningSlots returns the number of slots currently held.
func (s *scheduler) runningSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// drainEstimator tracks recent slot releases in a ring and reports the
// observed drain rate (slot completions per second) over that window.
type drainEstimator struct {
	mu    sync.Mutex
	times [64]time.Time
	n     int // filled entries
	idx   int // next write position
}

func (d *drainEstimator) note(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.times[d.idx] = t
	d.idx = (d.idx + 1) % len(d.times)
	if d.n < len(d.times) {
		d.n++
	}
}

// rate returns completions per second over the retained window; 0 when
// fewer than two samples exist (no estimate yet).
func (d *drainEstimator) rate(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n < 2 {
		return 0
	}
	oldest := d.times[(d.idx-d.n+len(d.times))%len(d.times)]
	span := now.Sub(oldest)
	if span <= 0 {
		return 0
	}
	return float64(d.n) / span.Seconds()
}
