package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
	"regcluster/internal/report"
)

// incrParentMatrix is a handcrafted parent whose dirty set under
// incrDeltaMatrix is known exactly: condition values per gene are
// (0, 2, 3, 0) and the appended condition sits at 0.9, so with absolute γ=2
// (regulation is strict: |Δ| > γ) only c2 (|0.9-3| > 2) and the appended c4
// root dirty subtrees while c0/c1/c3 splice from the parent result.
func incrParentMatrix() *matrix.Matrix {
	m := matrix.NewWithNames(
		[]string{"g0", "g1", "g2"},
		[]string{"c0", "c1", "c2", "c3"})
	rows := [][]float64{
		{0, 2, 3, 0},
		{0, 2, 3, 0},
		{0.5, 2.5, 3.5, 0.5}, // shifted copy: a shifting-pattern co-member
	}
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return m
}

func incrDeltaMatrix() *matrix.Matrix {
	d := matrix.NewWithNames([]string{"g0", "g1", "g2"}, []string{"c4"})
	d.Set(0, 0, 0.9)
	d.Set(1, 0, 0.9)
	d.Set(2, 0, 1.4)
	return d
}

func incrParams() core.Params {
	return core.Params{MinG: 2, MinC: 2, Gamma: 2, AbsoluteGamma: true, Epsilon: 1}
}

// appendDeltaHTTP posts a delta TSV to /datasets/{id}/append and returns the
// decoded dataset view plus the HTTP status.
func appendDeltaHTTP(t *testing.T, ts *httptest.Server, parentID, query string, delta *matrix.Matrix) (datasetView, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := delta.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/datasets/"+parentID+"/append"+query, "text/tab-separated-values", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v datasetView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// TestAppendDeltaEndpoint covers the upload surface: a conditions append
// creates a new content-addressed version with lineage recorded, re-appending
// the same delta converges on it, and the error paths answer with the right
// statuses.
func TestAppendDeltaEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	parent := incrParentMatrix()
	parentID := uploadMatrix(t, ts, parent, "parent")

	child, status := appendDeltaHTTP(t, ts, parentID, "?name=grown", incrDeltaMatrix())
	if status != http.StatusCreated {
		t.Fatalf("append status %d, want 201", status)
	}
	if child.ID == parentID {
		t.Fatal("append returned the parent dataset")
	}
	if child.Genes != 3 || child.Conditions != 5 {
		t.Fatalf("child dims %dx%d, want 3x5", child.Genes, child.Conditions)
	}
	want := &DeltaInfo{Parent: parentID, Axis: DeltaAxisConditions, OldConds: 4, OldGenes: 3}
	if !reflect.DeepEqual(child.Delta, want) {
		t.Fatalf("child lineage %+v, want %+v", child.Delta, want)
	}
	if got := metricValue(t, ts, "regserver_dataset_appends_total"); got != 1 {
		t.Fatalf("appends metric %d, want 1", got)
	}

	// Re-appending the identical delta converges on the same version.
	again, status := appendDeltaHTTP(t, ts, parentID, "", incrDeltaMatrix())
	if status != http.StatusOK || again.ID != child.ID {
		t.Fatalf("re-append: status %d id %s, want 200 %s", status, again.ID, child.ID)
	}
	if got := metricValue(t, ts, "regserver_dataset_appends_total"); got != 1 {
		t.Fatalf("appends metric after re-append %d, want 1", got)
	}

	// The grown matrix is content-addressed exactly like a direct upload.
	grown, err := matrix.AppendConditions(parent, incrDeltaMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if direct := uploadMatrix(t, ts, grown, "direct"); direct != child.ID {
		t.Fatalf("direct upload of the grown matrix got id %s, want %s", direct, child.ID)
	}

	// A gene-axis append records the other lineage kind.
	gdelta := matrix.NewWithNames([]string{"g9"}, []string{"c0", "c1", "c2", "c3"})
	gchild, status := appendDeltaHTTP(t, ts, parentID, "?axis=genes", gdelta)
	if status != http.StatusCreated {
		t.Fatalf("gene append status %d", status)
	}
	if gchild.Delta == nil || gchild.Delta.Axis != DeltaAxisGenes || gchild.Delta.OldGenes != 3 {
		t.Fatalf("gene append lineage %+v", gchild.Delta)
	}

	// Error paths: unknown parent, unknown axis, malformed delta.
	if _, status := appendDeltaHTTP(t, ts, "no-such-dataset", "", incrDeltaMatrix()); status != http.StatusNotFound {
		t.Fatalf("unknown parent: status %d, want 404", status)
	}
	if _, status := appendDeltaHTTP(t, ts, parentID, "?axis=sideways", incrDeltaMatrix()); status != http.StatusBadRequest {
		t.Fatalf("unknown axis: status %d, want 400", status)
	}
	bad := matrix.NewWithNames([]string{"g0", "g1"}, []string{"c9"}) // wrong gene axis
	if _, status := appendDeltaHTTP(t, ts, parentID, "", bad); status != http.StatusBadRequest {
		t.Fatalf("mismatched delta: status %d, want 400", status)
	}
}

// TestIncrementalJobEndToEnd drives the whole reuse pipeline over HTTP: mine
// the parent, append a delta, re-mine under identical params — the job must
// take the incremental path (models repaired, clean subtrees spliced) and its
// cluster stream plus Stats must be byte-identical to a cold mine of the
// grown matrix. Then the diff endpoint summarizes the two results.
func TestIncrementalJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := incrParams()
	parent := incrParentMatrix()
	parentID := uploadMatrix(t, ts, parent, "parent")

	pj := submitJob(t, ts, submitRequest{Dataset: parentID, Params: p, Workers: 2})
	if v := waitTerminal(t, ts, pj.ID); v.Status != StatusDone {
		t.Fatalf("parent job ended %s: %s", v.Status, v.Error)
	}
	parentClusters, _ := streamClusters(t, ts, pj.ID)
	if len(parentClusters) == 0 {
		t.Fatal("parent mine found no clusters; the fixture is supposed to produce some")
	}

	child, status := appendDeltaHTTP(t, ts, parentID, "", incrDeltaMatrix())
	if status != http.StatusCreated {
		t.Fatalf("append status %d", status)
	}
	cj := submitJob(t, ts, submitRequest{Dataset: child.ID, Params: p, Workers: 2})
	cv := waitTerminal(t, ts, cj.ID)
	if cv.Status != StatusDone {
		t.Fatalf("child job ended %s: %s", cv.Status, cv.Error)
	}

	if cv.Incremental == nil {
		t.Fatal("child job carries no incremental info; the reuse path never ran")
	}
	if !cv.Incremental.Incremental {
		t.Fatalf("child job fell back to a cold mine: %q", cv.Incremental.Fallback)
	}
	// Dirty set under the fixture: c2 and the appended c4.
	if cv.Incremental.SubtreesReused != 3 || cv.Incremental.SubtreesMined != 2 {
		t.Fatalf("subtrees reused/mined = %d/%d, want 3/2",
			cv.Incremental.SubtreesReused, cv.Incremental.SubtreesMined)
	}

	// Byte-identity: the streamed clusters and settled Stats must equal a
	// cold mine of the grown matrix.
	grown, err := matrix.AppendConditions(parent, incrDeltaMatrix())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.MineParallel(grown, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := streamClusters(t, ts, cj.ID)
	wantClusters := make([]report.NamedCluster, len(cold.Clusters))
	for i, b := range cold.Clusters {
		wantClusters[i] = report.Named(grown, b)
	}
	if !reflect.DeepEqual(got, wantClusters) {
		t.Fatalf("incremental cluster stream differs from cold mine:\n got %+v\nwant %+v", got, wantClusters)
	}
	if cv.Stats == nil || *cv.Stats != cold.Stats {
		t.Fatalf("incremental stats %+v differ from cold %+v", cv.Stats, cold.Stats)
	}

	// Metrics: one append, one incremental mine, per-gene repairs, subtree
	// counters matching the job view.
	for name, want := range map[string]int64{
		"regserver_dataset_appends_total":             1,
		"regserver_incremental_mines_total":           1,
		"regserver_incremental_fallbacks_total":       0,
		"regserver_incremental_subtrees_reused_total": 3,
		"regserver_incremental_subtrees_mined_total":  2,
		"regserver_model_repairs_total":               3, // one per gene
	} {
		if got := metricValue(t, ts, name); got != want {
			t.Fatalf("metric %s = %d, want %d", name, got, want)
		}
	}

	// Diff surface: child vs parent under the same params.
	resp, err := http.Get(ts.URL + "/datasets/" + child.ID + "/diff/" + parentID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status %d", resp.StatusCode)
	}
	var diff DiffDocument
	if err := json.NewDecoder(resp.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	if diff.Schema != DiffSchemaID {
		t.Fatalf("diff schema %q", diff.Schema)
	}
	if diff.Dataset != child.ID || diff.Parent != parentID || diff.Job != cj.ID {
		t.Fatalf("diff identity %s/%s job %s", diff.Dataset, diff.Parent, diff.Job)
	}
	// The diff must account for every cluster on both sides exactly once.
	if n := diff.Unchanged + len(diff.Grown) + len(diff.Added); n != len(got) {
		t.Fatalf("diff covers %d child clusters, stream has %d", n, len(got))
	}
	if n := diff.Unchanged + len(diff.Grown) + len(diff.Removed); n != len(parentClusters) {
		t.Fatalf("diff covers %d parent clusters, parent has %d", n, len(parentClusters))
	}
	for _, g := range diff.Grown {
		if !reflect.DeepEqual(g.Before.Chain, g.After.Chain) || g.Before.Direction != g.After.Direction {
			t.Fatalf("grown entry pairs different chains: %+v", g)
		}
		if reflect.DeepEqual(g.Before.Members, g.After.Members) {
			t.Fatalf("grown entry with identical members: %+v", g)
		}
	}
}

// TestDiffEndpointErrors pins the 404 surface of the diff endpoint.
func TestDiffEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	parentID := uploadMatrix(t, ts, incrParentMatrix(), "parent")
	child, _ := appendDeltaHTTP(t, ts, parentID, "", incrDeltaMatrix())

	get := func(child, parent string) int {
		resp, err := http.Get(ts.URL + "/datasets/" + child + "/diff/" + parent)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := get("nope", parentID); s != http.StatusNotFound {
		t.Fatalf("unknown child: %d", s)
	}
	if s := get(child.ID, "nope"); s != http.StatusNotFound {
		t.Fatalf("unknown parent: %d", s)
	}
	// Both datasets exist but the child was never mined.
	if s := get(child.ID, parentID); s != http.StatusNotFound {
		t.Fatalf("unmined child: %d", s)
	}
	// Child mined, parent not mined under those params.
	cj := submitJob(t, ts, submitRequest{Dataset: child.ID, Params: incrParams()})
	waitTerminal(t, ts, cj.ID)
	if s := get(child.ID, parentID); s != http.StatusNotFound {
		t.Fatalf("unmined parent: %d", s)
	}
}

// TestDeltaLineageSurvivesRestart proves the recDelta journal path end to
// end: an appended dataset's lineage is journaled, restored onto the
// reloaded dataset at boot, kept (first, in child-ID order) by compaction,
// and compacted away once the child dataset is deleted.
func TestDeltaLineageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	parentID := uploadMatrix(t, ts, incrParentMatrix(), "parent")
	child, status := appendDeltaHTTP(t, ts, parentID, "", incrDeltaMatrix())
	if status != http.StatusCreated {
		t.Fatalf("append status %d", status)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := s2.registry.get(child.ID)
	if !ok {
		t.Fatal("child dataset not restored")
	}
	want := &DeltaInfo{Parent: parentID, Axis: DeltaAxisConditions, OldConds: 4, OldGenes: 3}
	if !reflect.DeepEqual(ds.Delta, want) {
		t.Fatalf("restored lineage %+v, want %+v", ds.Delta, want)
	}
	// Compaction kept exactly one delta record, ahead of any job records.
	recs := journalRecords(t, dir)
	if len(recs) == 0 || recs[0].Type != recDelta || recs[0].Dataset != child.ID {
		t.Fatalf("compacted journal does not lead with the delta record: %+v", recs)
	}
	if countType(recs, recDelta) != 1 {
		t.Fatalf("compacted journal holds %d delta records, want 1", countType(recs, recDelta))
	}

	// Deleting the child drops its lineage at the next compaction.
	ts2 := httptest.NewServer(s2.Handler())
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/datasets/"+child.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete child: %v status %v", err, resp.StatusCode)
	}
	ts2.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if n := countType(journalRecords(t, dir), recDelta); n != 0 {
		t.Fatalf("delta record for a deleted dataset survived compaction (%d left)", n)
	}
}

func journalRecords(t *testing.T, dir string) []journalRecord {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	var out []journalRecord
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func countType(recs []journalRecord, typ string) int {
	n := 0
	for _, r := range recs {
		if r.Type == typ {
			n++
		}
	}
	return n
}

// TestReplayDeltaRecords pins the replay semantics of recDelta: last record
// per child wins, malformed records are skipped with a warning, job replay is
// undisturbed, and canonical compaction emits lineage first in child-ID
// order. A predating replayer sees the same lines through its default
// unknown-type branch — the final sub-test decodes a delta line into the
// pre-delta record shape to prove nothing in the encoding trips it.
func TestReplayDeltaRecords(t *testing.T) {
	var lc logCapture
	d1 := DeltaInfo{Parent: "p1", Axis: DeltaAxisConditions, OldConds: 4, OldGenes: 3}
	d2 := DeltaInfo{Parent: "p1", Axis: DeltaAxisConditions, OldConds: 5, OldGenes: 3}
	p := runningParams()
	recs := []journalRecord{
		{Type: recDelta, Dataset: "child-b", Delta: &d1},
		{Type: recSubmit, Job: "job-000001", Seq: 1, Dataset: "child-b", Params: &p},
		{Type: recDelta, Dataset: "child-a", Delta: &d1},
		{Type: recDelta}, // malformed: no dataset, no lineage
		{Type: recDelta, Dataset: "child-b", Delta: &d2}, // supersedes the first
		{Type: recDone, Job: "job-000001"},
	}
	jobs, _, deltas, _, _ := replayRecords(recs, lc.logf)
	if len(jobs) != 1 || jobs[0].terminal == nil {
		t.Fatalf("job replay disturbed by delta records: %+v", jobs)
	}
	if len(deltas) != 2 || !reflect.DeepEqual(deltas["child-b"], &d2) || !reflect.DeepEqual(deltas["child-a"], &d1) {
		t.Fatalf("replayed deltas %+v", deltas)
	}
	if !lc.contains("malformed delta record") {
		t.Fatalf("malformed delta not warned about: %v", lc.snapshot())
	}

	out := canonicalRecords(jobs, nil, deltas, nil)
	if len(out) != 4 || out[0].Type != recDelta || out[0].Dataset != "child-a" ||
		out[1].Type != recDelta || out[1].Dataset != "child-b" {
		t.Fatalf("canonical records %+v: lineage must lead in child-ID order", out)
	}

	// Forward compatibility: the serialized delta record decodes cleanly into
	// the pre-delta record shape (unknown JSON fields are ignored), where its
	// type matches no case and falls through to the skip branch replayRecords
	// uses for unknown types.
	raw, err := json.Marshal(journalRecord{Type: recDelta, Dataset: "child-a", Delta: &d1})
	if err != nil {
		t.Fatal(err)
	}
	var legacy struct {
		Type    string `json:"type"`
		Job     string `json:"job"`
		Dataset string `json:"dataset"`
	}
	if err := json.Unmarshal(raw, &legacy); err != nil {
		t.Fatalf("pre-delta readers cannot decode a delta line: %v", err)
	}
	if legacy.Type != "delta" || legacy.Job != "" {
		t.Fatalf("decoded legacy view %+v", legacy)
	}
}
