package service

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"regcluster/internal/core"
)

func writeTenantsFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTenants(t *testing.T) {
	array := writeTenantsFile(t, `[{"id":"acme","api_key":"k1","weight":2}]`)
	got, err := LoadTenants(array)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "acme" || got[0].Weight != 2 {
		t.Fatalf("array form parsed %+v", got)
	}

	wrapped := writeTenantsFile(t, `{"tenants":[{"id":"acme","api_key":"k1"},{"id":"beta","api_key":"k2","priority":"high"}]}`)
	got, err = LoadTenants(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Priority != "high" {
		t.Fatalf("wrapped form parsed %+v", got)
	}

	if _, err := LoadTenants(writeTenantsFile(t, `{"nope": true}`)); err == nil {
		t.Fatal("accepted a file with no tenant list")
	}
	if _, err := LoadTenants(writeTenantsFile(t, `not json`)); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("accepted a missing file")
	}
}

func TestNewTenantSetValidation(t *testing.T) {
	cases := []struct {
		name string
		cfgs []TenantConfig
		want string
	}{
		{"missing id", []TenantConfig{{APIKey: "k"}}, "missing id"},
		{"missing key", []TenantConfig{{ID: "a"}}, "missing api_key"},
		{"anon with key", []TenantConfig{{ID: AnonymousTenant, APIKey: "k"}}, "cannot carry an API key"},
		{"dup id", []TenantConfig{{ID: "a", APIKey: "k1"}, {ID: "a", APIKey: "k2"}}, "duplicate tenant id"},
		{"dup key", []TenantConfig{{ID: "a", APIKey: "k"}, {ID: "b", APIKey: "k"}}, "already in use"},
		{"bad priority", []TenantConfig{{ID: "a", APIKey: "k", Priority: "urgent"}}, "unknown priority"},
	}
	for _, tc := range cases {
		if _, err := newTenantSet(tc.cfgs, tenantDefaults{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestTenantSetDefaultsAndOverrides(t *testing.T) {
	cfgs := []TenantConfig{
		{ID: "acme", APIKey: "k1", Weight: 3, Priority: "high", NodeBudget: 500},
		{ID: "free", APIKey: "k2", RatePerSec: -1, MaxActive: -1},
		{ID: AnonymousTenant, MaxQueued: 7},
	}
	def := tenantDefaults{ratePerSec: 2, burst: 4, maxActive: 10, maxQueued: 20}
	ts, err := newTenantSet(cfgs, def)
	if err != nil {
		t.Fatal(err)
	}

	acme, _ := ts.get("acme")
	if acme.weight != 3 || acme.priority != PriorityHigh {
		t.Fatalf("acme weight/priority = %d/%d", acme.weight, acme.priority)
	}
	if acme.bucket == nil || acme.bucket.rate != 2 || acme.bucket.burst != 4 {
		t.Fatalf("acme bucket did not inherit server defaults: %+v", acme.bucket)
	}
	if acme.nodes == nil || acme.nodes.Capacity() != 500 {
		t.Fatal("acme node budget pool not built")
	}
	if acme.maxActive != 10 || acme.maxQueued != 20 {
		t.Fatalf("acme limits = %d/%d, want inherited 10/20", acme.maxActive, acme.maxQueued)
	}

	// Negative values opt out of the server defaults entirely.
	free, _ := ts.get("free")
	if free.bucket != nil {
		t.Fatal("negative rate_per_sec did not disable the rate limit")
	}
	if free.maxActive > 0 {
		t.Fatalf("negative max_active did not mean unlimited: %d", free.maxActive)
	}

	// The anonymous tenant is always present and can be re-limited by config.
	if ts.anonymous.maxQueued != 7 {
		t.Fatalf("anonymous maxQueued = %d, want 7", ts.anonymous.maxQueued)
	}
	if list := ts.list(); len(list) != 3 || list[0].id != AnonymousTenant {
		t.Fatalf("list order %v", list)
	}

	// Default burst falls back to ceil(rate) when neither config nor server
	// set one.
	ts2, err := newTenantSet([]TenantConfig{{ID: "x", APIKey: "k", RatePerSec: 2.5}}, tenantDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ts2.get("x")
	if x.bucket == nil || x.bucket.burst != 3 {
		t.Fatalf("burst fallback = %+v, want ceil(2.5)=3", x.bucket)
	}
}

func TestTenantResolve(t *testing.T) {
	ts, err := newTenantSet([]TenantConfig{{ID: "acme", APIKey: "secret"}}, tenantDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	req := func(hdr, val string) *http.Request {
		r, _ := http.NewRequest("POST", "/jobs", nil)
		if hdr != "" {
			r.Header.Set(hdr, val)
		}
		return r
	}

	if tn, err := ts.resolve(req("", "")); err != nil || tn.id != AnonymousTenant {
		t.Fatalf("keyless request resolved (%v, %v)", tn, err)
	}
	if tn, err := ts.resolve(req("X-API-Key", "secret")); err != nil || tn.id != "acme" {
		t.Fatalf("X-API-Key resolved (%v, %v)", tn, err)
	}
	if tn, err := ts.resolve(req("Authorization", "Bearer secret")); err != nil || tn.id != "acme" {
		t.Fatalf("Bearer resolved (%v, %v)", tn, err)
	}
	// A wrong key must fail loudly, never demote to anonymous.
	if _, err := ts.resolve(req("X-API-Key", "typo")); err != errUnknownAPIKey {
		t.Fatalf("unknown key error %v", err)
	}
	if _, err := ts.resolve(req("Authorization", "Bearer typo")); err != errUnknownAPIKey {
		t.Fatalf("unknown bearer error %v", err)
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(2, 4) // 2 tokens/sec, burst 4
	b.now = func() time.Time { return now }
	b.tokens, b.last = 4, now

	for i := 0; i < 4; i++ {
		if ok, _ := b.take(1); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, retry := b.take(1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	// One whole token refills in 1/rate = 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter %v, want ≈500ms", retry)
	}

	now = now.Add(time.Second) // refills 2 tokens
	if ok, _ := b.take(2); !ok {
		t.Fatal("refill did not restore tokens")
	}
	if ok, _ := b.take(1); ok {
		t.Fatal("bucket over-refilled")
	}

	now = now.Add(time.Hour) // refill clamps at burst, not rate*3600
	for i := 0; i < 4; i++ {
		if ok, _ := b.take(1); !ok {
			t.Fatalf("take %d after clamp refused", i)
		}
	}
	if ok, _ := b.take(1); ok {
		t.Fatal("burst clamp not applied")
	}
}

func TestParsePriority(t *testing.T) {
	for in, want := range map[string]int{
		"": PriorityNormal, "normal": PriorityNormal,
		"low": PriorityLow, "batch": PriorityLow,
		"high": PriorityHigh, "interactive": PriorityHigh, "HIGH": PriorityHigh,
	} {
		got, err := parsePriority(in)
		if err != nil || got != want {
			t.Errorf("parsePriority(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := parsePriority("urgent"); err == nil {
		t.Error("parsePriority accepted an unknown class")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{0, 1}, {-time.Second, 1}, {300 * time.Millisecond, 1},
		{time.Second, 1}, {1100 * time.Millisecond, 2}, {90 * time.Second, 90},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestJobUsageDelta(t *testing.T) {
	stats := core.Stats{Nodes: 42}
	d := jobUsageDelta(StatusDone, false, stats, 7, 1500*time.Millisecond)
	if d.Completed != 1 || d.Nodes != 42 || d.Clusters != 7 || d.NodeSeconds != 1.5 {
		t.Fatalf("done delta %+v", d)
	}
	if d := jobUsageDelta(StatusFailed, false, stats, 0, 0); d.Failed != 1 || d.Completed != 0 {
		t.Fatalf("failed delta %+v", d)
	}
	if d := jobUsageDelta(StatusCancelled, false, stats, 0, 0); d.Cancelled != 1 {
		t.Fatalf("cancelled delta %+v", d)
	}
	// A shed job is recorded as shed, not as a caller cancellation.
	if d := jobUsageDelta(StatusCancelled, true, stats, 0, 0); d.Shed != 1 || d.Cancelled != 0 {
		t.Fatalf("shed delta %+v", d)
	}
}

func TestTenantAccounting(t *testing.T) {
	tn := schedTenant("a", 1, PriorityNormal)
	snap := tn.account(TenantUsage{Jobs: 1, Completed: 1, Nodes: 10})
	if snap.Jobs != 1 || snap.Nodes != 10 {
		t.Fatalf("first snapshot %+v", snap)
	}
	snap = tn.account(TenantUsage{Jobs: 1, Failed: 1, Nodes: 5, NodeSeconds: 0.5})
	if snap.Jobs != 2 || snap.Completed != 1 || snap.Failed != 1 || snap.Nodes != 15 {
		t.Fatalf("cumulative snapshot %+v", snap)
	}
	// restoreUsage replaces the ledger wholesale (replay installs the last
	// journaled snapshot, it does not re-add deltas).
	tn.restoreUsage(TenantUsage{Jobs: 9})
	if got := tn.usageSnapshot(); got.Jobs != 9 || got.Nodes != 0 {
		t.Fatalf("restored snapshot %+v", got)
	}
}
