package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// schedTenant builds a bare tenant for scheduler unit tests.
func schedTenant(id string, weight, priority int) *tenant {
	return &tenant{id: id, weight: weight, priority: priority}
}

// granted reports whether the entry has been granted a slot (non-blocking).
func granted(e *schedEntry) bool {
	select {
	case <-e.grant:
		return true
	default:
		return false
	}
}

// shedded reports whether the entry was evicted by the overload shedder.
func shedded(e *schedEntry) bool {
	select {
	case <-e.shed:
		return true
	default:
		return false
	}
}

// enqueueN reserves and enqueues n jobs for tn, returning their entries.
func enqueueN(t *testing.T, s *scheduler, tn *tenant, n int) []*schedEntry {
	t.Helper()
	out := make([]*schedEntry, 0, n)
	for i := 0; i < n; i++ {
		if err := s.reserve(tn, 1, false); err != nil {
			t.Fatalf("reserve for %s: %v", tn.id, err)
		}
		out = append(out, s.enqueue(&Job{ID: fmt.Sprintf("%s-%d", tn.id, i), tn: tn}))
	}
	return out
}

// TestSchedulerWeightedFairness: with one slot and two backlogged tenants of
// weights 2 and 1, stride scheduling grants the heavy tenant twice the slots
// of the light one while both stay backlogged.
func TestSchedulerWeightedFairness(t *testing.T) {
	s := newScheduler(1, 0, NewMetrics())
	heavy := schedTenant("heavy", 2, PriorityNormal)
	light := schedTenant("light", 1, PriorityNormal)

	// Occupy the slot so everything below queues.
	be := enqueueN(t, s, schedTenant("blocker", 1, PriorityNormal), 1)[0]
	if !granted(be) {
		t.Fatal("first entry did not take the free slot")
	}

	hs := enqueueN(t, s, heavy, 6)
	ls := enqueueN(t, s, light, 6)

	// Drain: release the current holder, observe who got the slot next.
	seen := make(map[*schedEntry]bool)
	var order []string
	release := func(holder *Job) *Job {
		s.release(holder)
		for _, e := range append(append([]*schedEntry{}, hs...), ls...) {
			if granted(e) && !seen[e] {
				seen[e] = true
				order = append(order, e.job.tn.id)
				return e.job
			}
		}
		t.Fatalf("release granted nobody (order so far %v)", order)
		return nil
	}
	holder := be.job
	for i := 0; i < 12; i++ {
		holder = release(holder)
	}
	heavyCount := 0
	for _, id := range order[:9] {
		if id == "heavy" {
			heavyCount++
		}
	}
	// Over the first 9 grants both tenants are still backlogged, so the 2:1
	// weights must show exactly 6:3.
	if heavyCount != 6 {
		t.Fatalf("heavy got %d of the first 9 grants, want 6 (order %v)", heavyCount, order)
	}
}

// TestSchedulerPriorityClasses: queued high-priority entries always outrank
// normal and low ones, regardless of stride passes or arrival order.
func TestSchedulerPriorityClasses(t *testing.T) {
	s := newScheduler(1, 0, NewMetrics())
	lowT := schedTenant("low", 10, PriorityLow)
	normT := schedTenant("norm", 10, PriorityNormal)
	highT := schedTenant("high", 1, PriorityHigh)

	be := enqueueN(t, s, schedTenant("blocker", 1, PriorityNormal), 1)[0]
	le := enqueueN(t, s, lowT, 2)
	ne := enqueueN(t, s, normT, 2)
	he := enqueueN(t, s, highT, 1)

	s.release(be.job)
	if !granted(he[0]) {
		t.Fatal("high-priority entry not granted first")
	}
	s.release(he[0].job)
	if !granted(ne[0]) || granted(le[0]) {
		t.Fatal("normal class not granted before low")
	}
	s.release(ne[0].job)
	if !granted(ne[1]) {
		t.Fatal("second normal entry skipped")
	}
	s.release(ne[1].job)
	if !granted(le[0]) {
		t.Fatal("low entry starved after higher classes drained")
	}
}

// TestSchedulerShedWatermark drives the shed state machine end to end: at the
// watermark admission refuses sheddable work outright; work that slips past
// admission (forced reservations) activates the shedder, which evicts the
// newest lowest-class entry; higher-class arrivals displace queued low work;
// draining to the low watermark ends shedding.
func TestSchedulerShedWatermark(t *testing.T) {
	s := newScheduler(1, 2, NewMetrics()) // shedHigh=2, shedLow=1
	low := schedTenant("batch", 1, PriorityLow)
	high := schedTenant("inter", 1, PriorityHigh)

	be := enqueueN(t, s, schedTenant("blocker", 1, PriorityNormal), 1)[0]
	ls := enqueueN(t, s, low, 2) // queued: 2 == watermark, no shed yet
	if shedded(ls[0]) || shedded(ls[1]) {
		t.Fatal("shed below the watermark")
	}

	// At the watermark, admission rejects sheddable work instead of queueing
	// it only to evict it.
	err := s.reserve(low, 1, false)
	if err == nil {
		t.Fatal("sheddable work admitted at the watermark")
	}
	if adm, ok := err.(*admissionError); !ok || adm.status != 429 || adm.retryAfter <= 0 {
		t.Fatalf("watermark rejection %v, want 429 with Retry-After", err)
	}

	// A forced reservation (boot-time recovery bypasses admission) crosses
	// the watermark: the shedder activates and evicts the NEWEST entry of the
	// lowest class — the one that just arrived — keeping the oldest work.
	if err := s.reserve(low, 1, true); err != nil {
		t.Fatal(err)
	}
	e3 := s.enqueue(&Job{ID: "batch-late", tn: low})
	if !shedded(e3) {
		t.Fatal("entry crossing the watermark was not shed")
	}
	if shedded(ls[0]) || shedded(ls[1]) {
		t.Fatal("older entries shed before the newest")
	}
	if !s.saturationSnapshot().shedding {
		t.Fatal("scheduler not in shedding state")
	}
	if got := s.metrics.JobsShed.Load(); got != 1 {
		t.Fatalf("JobsShed %d, want 1", got)
	}

	// While shedding, low-priority admission stays refused...
	if err := s.reserve(low, 1, false); err == nil {
		t.Fatal("sheddable work admitted while shedding")
	}
	// ...but a high-priority entry is admitted, and — the queue being over
	// the watermark again — its arrival displaces the newest queued low entry.
	hs := enqueueN(t, s, high, 1)
	if !shedded(ls[1]) {
		t.Fatal("high-priority arrival did not displace the newest low entry")
	}

	// Granting the high entry drains the queue to shedLow: shedding ends and
	// low-priority admission reopens.
	s.release(be.job)
	if !granted(hs[0]) {
		t.Fatal("high entry not granted on release")
	}
	if s.saturationSnapshot().shedding {
		t.Fatal("shedding did not end at the low watermark")
	}
	if err := s.reserve(low, 1, false); err != nil {
		t.Fatalf("admission still refusing after shedding ended: %v", err)
	}
}

// TestSchedulerReserveBounds covers the per-tenant queue and concurrency
// bounds enforced at reservation time.
func TestSchedulerReserveBounds(t *testing.T) {
	s := newScheduler(1, 0, NewMetrics())
	tn := schedTenant("q", 1, PriorityNormal)
	tn.maxQueued = 3
	tn.maxActive = 3

	for i := 0; i < 3; i++ {
		if err := s.reserve(tn, 1, false); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if err := s.reserve(tn, 1, false); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("queue bound not enforced: %v", err)
	}
	// Converting one reservation to a running grant frees queue space, but
	// the grant still counts against maxActive (queued + running).
	e := s.enqueue(&Job{ID: "q-0", tn: tn})
	if !granted(e) {
		t.Fatal("entry not granted on an idle scheduler")
	}
	if err := s.reserve(tn, 1, false); err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("maxActive bound not enforced (1 running + 2 reserved): %v", err)
	}
	// Forced reservations (boot recovery) bypass every bound.
	if err := s.reserve(tn, 1, true); err != nil {
		t.Fatalf("forced reservation rejected: %v", err)
	}
}

// TestSchedulerCancelWhileQueued: entries withdrawn by context cancellation —
// racing against concurrent grants and releases — leave no slot leaked and no
// queue residue. Meaningful under -race.
func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := newScheduler(2, 0, NewMetrics())
	tn := schedTenant("c", 1, PriorityNormal)

	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := s.reserve(tn, 1, false); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := &Job{ID: fmt.Sprintf("c-%d", i), tn: tn}
			ctx, cancel := context.WithCancel(context.Background())
			if i%2 == 0 {
				cancel() // half the entries cancel as fast as possible
			} else {
				defer cancel()
			}
			if err := s.acquire(ctx, j); err == nil {
				time.Sleep(time.Millisecond)
				s.release(j)
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		sat := s.saturationSnapshot()
		if sat.queued == 0 && s.runningSlots() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler did not drain: %+v inUse=%d", sat, s.runningSlots())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerSubmitDuringShedRace hammers reserve/enqueue/shed/cancel from
// three priority classes at once — forced reservations keep pushing the queue
// over the watermark, so evictions race against grants, withdrawals, and
// releases. Every entry must resolve and the scheduler must drain to zero.
// Meaningful under -race.
func TestSchedulerSubmitDuringShedRace(t *testing.T) {
	s := newScheduler(2, 3, NewMetrics())
	tenants := []*tenant{
		schedTenant("batch", 1, PriorityLow),
		schedTenant("std", 2, PriorityNormal),
		schedTenant("vip", 1, PriorityHigh),
	}
	const perTenant = 30
	var wg sync.WaitGroup
	for _, tn := range tenants {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				forced := i%3 == 0 // some work bypasses admission and must be shed
				if err := s.reserve(tn, 1, forced); err != nil {
					continue // honest 429 path
				}
				j := &Job{ID: fmt.Sprintf("%s-%d", tn.id, i), tn: tn}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				err := s.acquire(ctx, j)
				cancel()
				if err == nil {
					s.release(j)
				}
			}
		}()
	}
	wg.Wait()
	sat := s.saturationSnapshot()
	if sat.queued != 0 || s.runningSlots() != 0 {
		t.Fatalf("residue after race: queued=%d inUse=%d", sat.queued, s.runningSlots())
	}
	if sat.shedding {
		t.Fatal("shedding flag stuck after the queue drained")
	}
}

// TestRetryAfterDerivation: with drain history, Retry-After ≈ depth/rate;
// without it, the per-entry fallback applies; both clamp to [1s, 120s].
func TestRetryAfterDerivation(t *testing.T) {
	s := newScheduler(2, 0, NewMetrics())
	base := time.Unix(1000, 0)
	now := base
	s.now = func() time.Time { return now }

	// No history: fallback = depth * 2s / slots, clamped at 120s.
	if got := s.retryAfter(4); got != 4*time.Second {
		t.Fatalf("fallback Retry-After %v, want 4s", got)
	}
	if got := s.retryAfter(1000); got != 120*time.Second {
		t.Fatalf("uncapped Retry-After %v", got)
	}

	// Ten completions over 9 seconds → ~1.1 jobs/sec → depth 8 ≈ 7s.
	for i := 0; i < 10; i++ {
		now = base.Add(time.Duration(i) * time.Second)
		s.drain.note(now)
	}
	now = base.Add(9 * time.Second)
	got := s.retryAfter(8)
	if got < 6*time.Second || got > 10*time.Second {
		t.Fatalf("derived Retry-After %v, want ≈7s", got)
	}
	// Sub-second estimates clamp up to 1s so clients never busy-loop.
	if got := s.retryAfter(1); got < time.Second {
		t.Fatalf("Retry-After %v below the 1s floor", got)
	}
}

// TestSchedulerIdleTenantPassResync: a tenant that sat idle while others
// accumulated pass must not bank scheduling credit — on re-activation its
// pass jumps to the active minimum, so the two tenants alternate instead of
// the newcomer monopolizing the slot.
func TestSchedulerIdleTenantPassResync(t *testing.T) {
	s := newScheduler(1, 0, NewMetrics())
	a := schedTenant("a", 1, PriorityNormal)
	b := schedTenant("b", 1, PriorityNormal)

	be := enqueueN(t, s, schedTenant("blocker", 1, PriorityNormal), 1)[0]
	as := enqueueN(t, s, a, 4)
	holder := be.job
	for _, e := range as {
		s.release(holder)
		if !granted(e) {
			t.Fatal("backlogged tenant not granted")
		}
		holder = e.job
	}
	// Tenant a has advanced its pass by four grants; b enqueues fresh.
	// Without re-sync b's pass of zero would win four grants in a row.
	bs := enqueueN(t, s, b, 2)
	as2 := enqueueN(t, s, a, 2)
	s.release(holder)
	var first, second *schedEntry
	switch {
	case granted(bs[0]):
		first, second = bs[0], as2[0]
	case granted(as2[0]):
		first, second = as2[0], bs[0]
	default:
		t.Fatal("nobody granted after release")
	}
	s.release(first.job)
	if !granted(second) {
		t.Fatal("pass re-sync failed: one tenant monopolized the slot")
	}
}
