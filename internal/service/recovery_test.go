package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
	"regcluster/internal/report"
	"regcluster/internal/synthetic"
)

// openTestServer boots a (usually durable) server via Open and serves it.
func openTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// recoveryWorkload is a deterministic multi-hundred-cluster run, bounded by
// MaxClusters so the uninterrupted reference is itself deterministic (capped
// runs return the exact sequential prefix and are cacheable).
func recoveryWorkload(t *testing.T) (*matrix.Matrix, core.Params) {
	t.Helper()
	m, _, err := synthetic.Generate(synthetic.Config{Genes: 220, Conds: 14, Clusters: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m, core.Params{MinG: 3, MinC: 3, Gamma: 0.03, Epsilon: 1.5, MaxClusters: 400}
}

// minedReference mines the workload uninterrupted and returns the named form.
func minedReference(t *testing.T, m *matrix.Matrix, p core.Params) ([]report.NamedCluster, core.Stats) {
	t.Helper()
	want, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	named := make([]report.NamedCluster, len(want.Clusters))
	for i, b := range want.Clusters {
		named[i] = report.Named(m, b)
	}
	return named, want.Stats
}

// waitClusters polls a job until it has delivered at least n clusters,
// failing if it settles first.
func waitClusters(t *testing.T, ts *httptest.Server, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.Clusters >= n {
			return
		}
		if v.Status.terminal() {
			t.Fatalf("job settled (%s) before delivering %d clusters (has %d); slow the workload down",
				v.Status, n, v.Clusters)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never delivered %d clusters", n)
}

// TestKillAndRestartResumesFromCheckpoint is the acceptance scenario: a job
// whose process dies mid-run (simulated by failing every journal append from
// the crash point on, so the WAL freezes exactly as a SIGKILL would leave
// it) is re-enqueued from its last checkpoint on the next boot, and the
// recovered result — journaled prefix plus resumed suffix — byte-equals the
// uninterrupted deterministic run.
func TestKillAndRestartResumesFromCheckpoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	m, p := recoveryWorkload(t)
	wantNamed, wantStats := minedReference(t, m, p)
	if len(wantNamed) < 50 {
		t.Fatalf("workload too small for a mid-run crash: %d clusters", len(wantNamed))
	}

	cfg := Config{DataDir: dir, CheckpointEveryClusters: 1, Logf: t.Logf}
	srvA, tsA := openTestServer(t, cfg)

	// Slow the miner down so the "crash" lands mid-enumeration.
	disarmDelay := faultinject.Arm("core.mine.subtree", faultinject.Spec{Delay: 25 * time.Millisecond})
	defer disarmDelay()

	id := uploadMatrix(t, tsA, m, "recovery")
	v := submitJob(t, tsA, submitRequest{Dataset: id, Params: p, Workers: 4})
	waitClusters(t, tsA, v.ID, 20)

	// Crash: from here on nothing reaches the WAL — the journal on disk is
	// frozen at the last completed append, exactly the state a SIGKILL
	// leaves. Then tear the process state down.
	disarmWAL := faultinject.Arm("journal.append", faultinject.Spec{Err: errors.New("simulated crash: process died")})
	resp, err := http.Post(tsA.URL+"/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitTerminal(t, tsA, v.ID)
	tsA.Close()
	srvA.Close()
	disarmWAL()
	disarmDelay()

	// Restart on the same data-dir: the job must come back, resume, and
	// finish with the uninterrupted run's exact output.
	srvB, tsB := openTestServer(t, cfg)
	jv := getJob(t, tsB, v.ID)
	if !jv.Recovered {
		t.Fatalf("job not marked recovered after restart: %+v", jv)
	}
	if jv.Clusters == 0 {
		t.Fatal("recovered job lost its journaled cluster prefix")
	}
	if recov := metricValue(t, tsB, "regserver_recoveries_total"); recov != 1 {
		t.Fatalf("recoveries_total %d, want 1", recov)
	}
	fin := waitTerminal(t, tsB, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("recovered job ended %s (%s)", fin.Status, fin.Error)
	}
	if fin.Stats == nil || *fin.Stats != wantStats {
		t.Fatalf("recovered stats %+v, want %+v", fin.Stats, wantStats)
	}
	streamed, _ := streamClusters(t, tsB, v.ID)
	gotJSON, _ := json.Marshal(streamed)
	wantJSON, _ := json.Marshal(wantNamed)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("recovered result does not byte-equal the uninterrupted run (%d vs %d clusters)",
			len(streamed), len(wantNamed))
	}

	// The recovered result was cached and persisted: resubmitting is a hit.
	v2 := submitJob(t, tsB, submitRequest{Dataset: id, Params: p})
	if !v2.Cached {
		t.Fatal("recovered result not cached")
	}
	_ = srvB
}

// TestDrainJournalsInterrupted covers the graceful-shutdown satellite: a job
// still running when the grace period expires settles as `interrupted` (not
// a dead-end cancellation), its checkpoint is journaled, and the next boot
// resumes it to the exact uninterrupted result.
func TestDrainJournalsInterrupted(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	m, p := recoveryWorkload(t)
	wantNamed, wantStats := minedReference(t, m, p)

	cfg := Config{DataDir: dir, CheckpointEveryClusters: 1, Logf: t.Logf}
	srvA, tsA := openTestServer(t, cfg)
	// A hefty per-subtree stall guarantees the job outlives the grace period.
	disarmDelay := faultinject.Arm("core.mine.subtree", faultinject.Spec{Delay: 150 * time.Millisecond})
	defer disarmDelay()

	id := uploadMatrix(t, tsA, m, "drain")
	v := submitJob(t, tsA, submitRequest{Dataset: id, Params: p, Workers: 2})
	waitClusters(t, tsA, v.ID, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srvA.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err %v, want deadline (the job should outlive the grace period)", err)
	}
	fin := waitTerminal(t, tsA, v.ID)
	if fin.Status != StatusInterrupted {
		t.Fatalf("drained job ended %s, want interrupted", fin.Status)
	}
	tsA.Close()
	srvA.Close()
	disarmDelay()

	_, tsB := openTestServer(t, cfg)
	fin2 := waitTerminal(t, tsB, v.ID)
	if fin2.Status != StatusDone || !fin2.Recovered {
		t.Fatalf("resumed job %+v", fin2)
	}
	if fin2.Stats == nil || *fin2.Stats != wantStats {
		t.Fatalf("resumed stats %+v, want %+v", fin2.Stats, wantStats)
	}
	streamed, _ := streamClusters(t, tsB, v.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatal("resumed result diverges from the uninterrupted run")
	}
}

// TestSettledStateSurvivesRestart: datasets, done jobs, and the result cache
// all come back after a clean restart; a resubmission is a cache hit served
// from recovered files without re-mining.
func TestSettledStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Logf: t.Logf}
	srvA, tsA := openTestServer(t, cfg)

	m := paperdata.RunningExample()
	wantNamed, wantStats := minedReference(t, m, runningParams())
	id := uploadMatrix(t, tsA, m, "table1")
	v := submitJob(t, tsA, submitRequest{Dataset: id, Params: runningParams()})
	if fin := waitTerminal(t, tsA, v.ID); fin.Status != StatusDone {
		t.Fatalf("job ended %s", fin.Status)
	}
	tsA.Close()
	srvA.Close()

	srvB, tsB := openTestServer(t, cfg)
	// Dataset is back, content-addressed as before.
	resp, err := http.Get(tsB.URL + "/datasets/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered dataset GET status %d", resp.StatusCode)
	}
	// The settled job answers with its full result.
	jv := getJob(t, tsB, v.ID)
	if jv.Status != StatusDone || jv.Clusters != len(wantNamed) {
		t.Fatalf("recovered job view %+v, want done with %d clusters", jv, len(wantNamed))
	}
	if jv.Stats == nil || *jv.Stats != wantStats {
		t.Fatalf("recovered job stats %+v", jv.Stats)
	}
	streamed, _ := streamClusters(t, tsB, v.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatal("recovered done job streams different clusters")
	}
	// Resubmission hits the recovered cache — no mining.
	v2 := submitJob(t, tsB, submitRequest{Dataset: id, Params: runningParams()})
	if !v2.Cached {
		t.Fatal("recovered cache missed")
	}
	if nodes := metricValue(t, tsB, "regcluster_nodes_visited_total"); nodes != 0 {
		t.Fatalf("restart re-mined %d nodes", nodes)
	}
	if srvB.cache.len() == 0 {
		t.Fatal("result cache empty after recovery")
	}
}

// TestWorkerPanicFailsJobOnly: an injected panic on a mining worker yields a
// failed job carrying the captured stack, while the server keeps serving —
// the next job on the same server completes.
func TestWorkerPanicFailsJobOnly(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Logf: t.Logf})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	disarm := faultinject.Arm("core.mine.subtree", faultinject.Spec{Panic: "injected worker panic", Times: 1})
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams(), Workers: 4})
	fin := waitTerminal(t, ts, v.ID)
	disarm()
	if fin.Status != StatusFailed {
		t.Fatalf("panicked job ended %s", fin.Status)
	}
	if !strings.Contains(fin.Error, "injected worker panic") {
		t.Fatalf("panic message lost: %q", fin.Error)
	}
	if !strings.Contains(fin.Stack, "goroutine") {
		t.Fatalf("no stack captured: %q", fin.Stack)
	}
	if got := metricValue(t, ts, "regserver_panics_recovered_total"); got != 1 {
		t.Fatalf("panics_recovered %d", got)
	}

	// The server is not wounded: the same submission now succeeds.
	v2 := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	if fin2 := waitTerminal(t, ts, v2.ID); fin2.Status != StatusDone {
		t.Fatalf("post-panic job ended %s (%s)", fin2.Status, fin2.Error)
	}
}

// TestTransientFailureRetries: transient errors retry with backoff until the
// run succeeds; the retry count is metered and surfaced on the job view.
func TestTransientFailureRetries(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{RetryBaseDelay: time.Millisecond, Logf: t.Logf})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	disarm := faultinject.Arm("jobs.mine",
		faultinject.Spec{Err: &faultinject.TransientError{Err: errors.New("blip")}, Times: 2})
	defer disarm()
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("retried job ended %s (%s)", fin.Status, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", fin.Attempts)
	}
	if got := metricValue(t, ts, "regserver_job_retries_total"); got != 2 {
		t.Fatalf("job_retries %d, want 2", got)
	}
}

// TestTransientFailureExhausts: a persistently transient failure surfaces
// after the retry budget, as failed (never an endless loop).
func TestTransientFailureExhausts(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{MaxJobRetries: 1, RetryBaseDelay: time.Millisecond, Logf: t.Logf})
	m := paperdata.RunningExample()
	id := uploadMatrix(t, ts, m, "table1")

	disarm := faultinject.Arm("jobs.mine",
		faultinject.Spec{Err: &faultinject.TransientError{Err: errors.New("disk flaky")}})
	defer disarm()
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: runningParams()})
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "disk flaky") {
		t.Fatalf("exhausted job: %s (%q)", fin.Status, fin.Error)
	}
	if fin.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", fin.Attempts)
	}
}

// TestStreamSubscriberDisconnect covers the streaming satellite: a client
// that reads part of the stream and vanishes kills only its own stream — the
// job runs to completion and a later subscriber replays everything.
func TestStreamSubscriberDisconnect(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Logf: t.Logf})
	m, p := recoveryWorkload(t)
	wantNamed, _ := minedReference(t, m, p)
	disarmDelay := faultinject.Arm("core.mine.subtree", faultinject.Spec{Delay: 15 * time.Millisecond})
	defer disarmDelay()

	id := uploadMatrix(t, ts, m, "streamy")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p, Workers: 4})
	waitClusters(t, ts, v.ID, 5)

	// Slow subscriber: read a handful of lines, then slam the connection.
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
		time.Sleep(10 * time.Millisecond) // simulate a slow reader
	}
	resp.Body.Close() // disconnect mid-stream

	// The job is unharmed and finishes with the full deterministic output.
	fin := waitTerminal(t, ts, v.ID)
	if fin.Status != StatusDone {
		t.Fatalf("job ended %s after a subscriber vanished", fin.Status)
	}
	streamed, summary := streamClusters(t, ts, v.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatal("replay after disconnect diverges")
	}
	if summary.Clusters != len(wantNamed) {
		t.Fatalf("summary counts %d clusters, want %d", summary.Clusters, len(wantNamed))
	}
}

// TestStreamPanicContained: a panic inside the stream write path (injected
// at the encoder site) cancels only that subscriber; the job and the server
// survive, and the panic is metered.
func TestStreamPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{Logf: t.Logf})
	m, p := recoveryWorkload(t)
	wantNamed, _ := minedReference(t, m, p)
	id := uploadMatrix(t, ts, m, "streampanic")
	v := submitJob(t, ts, submitRequest{Dataset: id, Params: p})
	if fin := waitTerminal(t, ts, v.ID); fin.Status != StatusDone {
		t.Fatalf("job ended %s", fin.Status)
	}

	disarm := faultinject.Arm("stream.write", faultinject.Spec{Panic: "encoder exploded", After: 5, Times: 1})
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	got, readErr := countNDJSONLines(resp.Body)
	resp.Body.Close()
	disarm()
	if readErr == nil && got > len(wantNamed) {
		t.Fatalf("read %d lines from a panicked stream of %d clusters", got, len(wantNamed))
	}
	if fired := faultinject.Fired("stream.write"); fired != 1 {
		t.Fatalf("stream fault fired %d times", fired)
	}
	if panics := metricValue(t, ts, "regserver_panics_recovered_total"); panics != 1 {
		t.Fatalf("panics_recovered %d, want 1", panics)
	}
	// The same stream replays fully once the fault is gone.
	streamed, _ := streamClusters(t, ts, v.ID)
	if !reflect.DeepEqual(streamed, wantNamed) {
		t.Fatal("post-panic replay diverges")
	}
}

// countNDJSONLines drains a reader, counting lines; the read error (if any)
// is returned rather than fatal — a mid-stream panic may cut the body off.
func countNDJSONLines(r interface{ Read([]byte) (int, error) }) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := 0
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}
