package service

import (
	"fmt"
	"math"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/report"
)

func TestCacheKeySensitivity(t *testing.T) {
	base := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	k0 := cacheKey("ds1", base)

	if cacheKey("ds1", base) != k0 {
		t.Fatal("cache key is not deterministic")
	}
	if cacheKey("ds2", base) == k0 {
		t.Fatal("dataset ID does not affect the key")
	}
	mutations := []func(*core.Params){
		func(p *core.Params) { p.MinG = 4 },
		func(p *core.Params) { p.MinC = 6 },
		func(p *core.Params) { p.Gamma = 0.2 },
		func(p *core.Params) { p.Epsilon = 0.05 },
		func(p *core.Params) { p.AbsoluteGamma = true },
		func(p *core.Params) { p.MaxNodes = 100 },
		func(p *core.Params) { p.MaxClusters = 10 },
		func(p *core.Params) { p.CustomGammas = []float64{1, 2, 3} },
		func(p *core.Params) { p.CustomGammas = []float64{} }, // nil vs empty is a real difference: empty overrides Gamma
		func(p *core.Params) { p.DisableChainLengthPruning = true },
		func(p *core.Params) { p.DisableMajorityPruning = true },
		func(p *core.Params) { p.DisableDedupPruning = true },
		func(p *core.Params) { p.NaiveCandidates = true },
	}
	keys := map[string]int{k0: -1}
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		k := cacheKey("ds1", p)
		if prev, dup := keys[k]; dup {
			t.Errorf("mutations %d and %d collide", i, prev)
		}
		keys[k] = i
	}
}

// TestCacheKeyTotalOnNonFinite is the regression for the "marshalling cannot
// fail" panic: the old JSON-based derivation panicked on NaN/±Inf (which
// encoding/json rejects), so a non-finite Params that slipped past the old
// Validate crashed the server at submit time. The bitwise encoding is total —
// any Params value keys without panicking, deterministically, and distinct
// non-finite values get distinct keys.
func TestCacheKeyTotalOnNonFinite(t *testing.T) {
	bad := []core.Params{
		{MinG: 3, MinC: 5, Gamma: math.NaN(), Epsilon: 0.1},
		{MinG: 3, MinC: 5, Gamma: math.Inf(1), Epsilon: 0.1},
		{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: math.Inf(-1)},
		{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1, CustomGammas: []float64{1, math.NaN()}},
	}
	seen := map[string]int{}
	for i, p := range bad {
		k := cacheKey("ds1", p) // must not panic
		if k != cacheKey("ds1", p) {
			t.Errorf("case %d: key not deterministic", i)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("cases %d and %d collide", i, prev)
		}
		seen[k] = i
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	entry := func(n int) cachedResult {
		return cachedResult{stats: core.Stats{Nodes: n}}
	}
	c.put("a", entry(1))
	c.put("b", entry(2))
	if _, ok := c.get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.put("c", entry(3)) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite promotion")
	}
	if got, ok := c.get("c"); !ok || got.stats.Nodes != 3 {
		t.Fatalf("c: %v %v", got, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}

	// Overwriting an existing key must not grow the cache.
	c.put("c", entry(4))
	if c.len() != 2 {
		t.Fatalf("len %d after overwrite", c.len())
	}
	if got, _ := c.get("c"); got.stats.Nodes != 4 {
		t.Fatal("overwrite did not replace the value")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put("a", cachedResult{clusters: []report.NamedCluster{{}}})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.len() != 0 {
		t.Fatalf("len %d", c.len())
	}
}

func TestCacheManyEntriesStayBounded(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%03d", i), cachedResult{stats: core.Stats{Nodes: i}})
	}
	if c.len() != 8 {
		t.Fatalf("len %d, want 8", c.len())
	}
	for i := 92; i < 100; i++ { // the eight most recent survive
		if _, ok := c.get(fmt.Sprintf("k%03d", i)); !ok {
			t.Fatalf("recent key k%03d evicted", i)
		}
	}
}
