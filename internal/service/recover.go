package service

import (
	"sort"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/report"
)

// Boot-time crash recovery. The sequence (run by Open before the server
// accepts traffic):
//
//  1. load persisted datasets into the registry (each file verified against
//     its content-addressed name; corrupt files are skipped with a warning);
//  2. load persisted results into the LRU cache, oldest first;
//  3. replay the job journal into per-job states: submit parameters, the
//     cluster prefix delivered before the crash, the last checkpoint, and
//     the terminal record if one was written;
//  4. compact the journal — the replayed state is rewritten in canonical
//     form (submit + final checkpoint or terminal per job) so the WAL does
//     not grow without bound across restarts;
//  5. rebuild the job table: settled jobs become read-only shells, and jobs
//     the crash interrupted are re-enqueued from their checkpoints.
//
// Recovery is tolerant end to end: a missing, empty, or corrupt data-dir
// degrades to a clean boot with logged warnings, never a refusal to start.

// replayedJob is the journal-derived state of one job.
type replayedJob struct {
	submit      journalRecord
	clusters    []report.NamedCluster
	ckpt        *core.Checkpoint
	terminal    *journalRecord
	interrupted bool
}

// replayRecords folds journal records into per-job states, returning the
// states in submission order, the sweep-binding records in append order, the
// last cumulative usage snapshot per tenant, and the highest journaled
// sequence number. Unknown record types are skipped (forward compatibility: a
// journal written by a newer server still boots here), as are records for
// jobs whose submit record was lost.
func replayRecords(recs []journalRecord, logf func(string, ...any)) (ordered []*replayedJob, sweeps []journalRecord, deltas map[string]*DeltaInfo, usage map[string]TenantUsage, maxSeq int) {
	byID := make(map[string]*replayedJob)
	for _, rec := range recs {
		switch rec.Type {
		case recDelta:
			// Dataset lineage: the last record per child wins (appends are
			// idempotent on content hashes, so duplicates agree anyway).
			if rec.Dataset == "" || rec.Delta == nil {
				logf("service: journal: malformed delta record; skipping")
				continue
			}
			if deltas == nil {
				deltas = make(map[string]*DeltaInfo)
			}
			d := *rec.Delta
			deltas[rec.Dataset] = &d
		case recSubmit:
			if rec.Job == "" || rec.Params == nil || rec.Dataset == "" {
				logf("service: journal: malformed submit record for %q; skipping", rec.Job)
				continue
			}
			j := &replayedJob{submit: rec}
			byID[rec.Job] = j
			ordered = append(ordered, j)
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case recCheckpoint:
			j, ok := byID[rec.Job]
			if !ok {
				logf("service: journal: checkpoint for unknown job %q; skipping", rec.Job)
				continue
			}
			if rec.Ckpt == nil {
				logf("service: journal: checkpoint record for %q carries no snapshot; skipping", rec.Job)
				continue
			}
			j.ckpt = rec.Ckpt
			// A re-journaled overlap (an earlier append failed mid-run) is
			// reconciled against the snapshot's watermark: keep the prefix
			// this record does not cover, then append its clusters.
			before := rec.Ckpt.Delivered() - len(rec.NewClusters)
			if before < 0 {
				before = 0
			}
			if before < len(j.clusters) {
				j.clusters = j.clusters[:before]
			}
			j.clusters = append(j.clusters, rec.NewClusters...)
		case recDone, recFailed, recCancelled, recShed:
			j, ok := byID[rec.Job]
			if !ok {
				logf("service: journal: %s for unknown job %q; skipping", rec.Type, rec.Job)
				continue
			}
			r := rec
			j.terminal = &r
		case recInterrupted:
			j, ok := byID[rec.Job]
			if !ok {
				logf("service: journal: interrupted for unknown job %q; skipping", rec.Job)
				continue
			}
			j.interrupted = true
			if rec.Ckpt != nil {
				j.ckpt = rec.Ckpt
			}
		case recSweep:
			sweeps = append(sweeps, rec)
		case recUsage:
			// Usage snapshots are cumulative, so the last record per tenant is
			// the whole ledger; earlier ones are superseded and compact away.
			if rec.Tenant == "" || rec.Usage == nil {
				logf("service: journal: malformed usage record; skipping")
				continue
			}
			if usage == nil {
				usage = make(map[string]TenantUsage)
			}
			usage[rec.Tenant] = *rec.Usage
		case recWorker, recLease:
			// Coordinator-mode audit trail: leases and worker registrations
			// do not survive the coordinator process (an interrupted
			// distributed job resumes from its ordinary checkpoint records),
			// so these records carry no replayable state and compaction
			// drops them.
		default:
			logf("service: journal: unknown record type %q; skipping (newer server?)", rec.Type)
		}
	}
	return ordered, sweeps, deltas, usage, maxSeq
}

// canonicalRecords renders the replayed state back into a minimal journal
// for compaction: submit + terminal for settled jobs, submit + one merged
// checkpoint (full cluster prefix) for jobs about to be resumed, then the
// sweep bindings (which only reference jobs, so they compact verbatim and
// stay after every point's submit record), then one cumulative usage record
// per tenant (stable ID order).
func canonicalRecords(jobs []*replayedJob, sweeps []journalRecord, deltas map[string]*DeltaInfo, usage map[string]TenantUsage) []journalRecord {
	var out []journalRecord
	// Lineage records lead (stable child-ID order): they reference no jobs,
	// and replay attaches them to datasets before any job resumes.
	dsIDs := make([]string, 0, len(deltas))
	for id := range deltas {
		dsIDs = append(dsIDs, id)
	}
	sort.Strings(dsIDs)
	for _, id := range dsIDs {
		d := *deltas[id]
		out = append(out, journalRecord{Type: recDelta, Dataset: id, Delta: &d})
	}
	for _, j := range jobs {
		out = append(out, j.submit)
		switch {
		case j.terminal != nil:
			out = append(out, *j.terminal)
		case j.ckpt != nil:
			out = append(out, journalRecord{Type: recCheckpoint, Time: j.submit.Time,
				Job: j.submit.Job, Ckpt: j.ckpt, NewClusters: j.clusters})
		}
	}
	out = append(out, sweeps...)
	ids := make([]string, 0, len(usage))
	for id := range usage {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		u := usage[id]
		out = append(out, journalRecord{Type: recUsage, Tenant: id, Usage: &u})
	}
	return out
}

// bootRecover runs the recovery sequence against s.store. It returns an
// error only for a journal that exists but cannot be rewritten (a data-dir
// that accepts no writes is not durable, and pretending otherwise would
// break the service's promise); every data-corruption case degrades to a
// warning.
func (s *Server) bootRecover() error {
	for _, ds := range s.store.loadDatasets() {
		s.registry.restore(ds)
	}
	for _, r := range s.store.loadResults(s.cfg.CacheEntries) {
		s.cache.put(r.key, r.res)
	}

	recs := replayJournalFile(s.store.journalPath(), s.logf)
	jobs, sweeps, deltas, usage, maxSeq := replayRecords(recs, s.logf)
	// Lineage re-attaches to the restored datasets; records for datasets no
	// longer on disk (deleted, or lost to corruption) compact away.
	for id, d := range deltas {
		ds, ok := s.registry.get(id)
		if !ok {
			delete(deltas, id)
			continue
		}
		if ds.Delta == nil {
			ds.Delta = d
		}
	}
	s.jobs.mu.Lock()
	if maxSeq > s.jobs.seq {
		s.jobs.seq = maxSeq
	}
	s.jobs.mu.Unlock()
	// Replayed usage ledgers attach to their tenants before any settlement can
	// append a fresh snapshot; a tenant deleted from the config folds into the
	// anonymous ledger so no journaled totals vanish. Exact matches restore
	// first so a folded ledger merges on top instead of being overwritten.
	for id, u := range usage {
		if tn, ok := s.jobs.tenants.get(id); ok {
			tn.restoreUsage(u)
		}
	}
	for id, u := range usage {
		if _, ok := s.jobs.tenants.get(id); !ok {
			s.jobs.tenants.anonymous.account(u)
		}
	}

	if err := s.store.compactJournal(canonicalRecords(jobs, sweeps, deltas, usage)); err != nil {
		return err
	}
	wal, err := openJournal(s.store.journalPath())
	if err != nil {
		return err
	}
	s.wal = wal
	s.jobs.wal = wal

	for _, rj := range jobs {
		if rj.terminal != nil {
			s.restoreSettled(rj)
		} else {
			s.resumeInterrupted(rj)
		}
	}
	// Sweeps restore after their point jobs so the views bind to live state.
	for _, rec := range sweeps {
		s.restoreSweep(rec)
	}
	return nil
}

// jobShell rebuilds the common immutable part of a replayed job.
func (s *Server) jobShell(rj *replayedJob) *Job {
	sub := rj.submit
	ds, ok := s.registry.get(sub.Dataset)
	if !ok {
		// The dataset file was lost or corrupt; keep an ID-only stand-in so
		// views still render. Pending jobs against it fail in the caller.
		ds = &Dataset{ID: sub.Dataset, Name: "lost-" + shortID(sub.Dataset)}
	}
	var p core.Params
	if sub.Params != nil {
		p = *sub.Params
	}
	return &Job{
		ID:      sub.Job,
		Dataset: ds,
		Params:  p,
		Workers: sub.Workers,
		Timeout: time.Duration(sub.TimeoutMS) * time.Millisecond,
		tn:      s.jobs.tenants.getOrAnonymous(sub.Tenant),
		created: sub.Time,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// restoreSettled installs the read-only shell of a job that had settled
// before the restart. Done jobs re-attach their clusters from the restored
// result cache when the entry survived.
func (s *Server) restoreSettled(rj *replayedJob) {
	j := s.jobShell(rj)
	term := rj.terminal
	j.finished = term.Time
	j.started = term.Time
	j.stats = core.Stats{}
	if term.Stats != nil {
		j.stats = *term.Stats
	}
	switch term.Type {
	case recDone:
		j.status = StatusDone
		j.cached = term.Cached
		if res, ok := s.cache.get(term.CacheKey); ok {
			j.clusters = res.clusters
		} else if term.CacheKey != "" {
			s.logf("service: job %s: settled result %s not recovered; clusters unavailable", j.ID, shortID(term.CacheKey))
		}
	case recFailed:
		j.status = StatusFailed
		j.err = term.Error
	case recCancelled:
		j.status = StatusCancelled
		j.err = "cancelled"
	case recShed:
		j.status = StatusCancelled
		j.err = "shed by overload"
		j.shed = true
	}
	s.jobs.restoreTerminal(j)
}

// resumeInterrupted re-enqueues a job the previous process never settled —
// either it journaled an explicit interrupted record at shutdown, or it
// crashed with no terminal record at all. The job resumes from its last
// checkpoint with the journaled cluster prefix already in place; with no
// checkpoint it restarts from scratch.
func (s *Server) resumeInterrupted(rj *replayedJob) {
	j := s.jobShell(rj)
	if _, ok := s.registry.get(rj.submit.Dataset); !ok {
		j.status = StatusFailed
		j.err = "dataset " + rj.submit.Dataset + " not recovered after restart"
		j.finished = time.Now().UTC()
		s.jobs.restoreTerminal(j)
		s.jobs.metrics.JobsFailed.Add(1)
		// Journal the failure so the next boot does not re-fail it forever.
		s.jobs.journalAppend(journalRecord{Type: recFailed, Job: j.ID, Error: j.err})
		return
	}
	j.status = StatusQueued
	j.recovered = true
	if rj.ckpt != nil {
		if err := rj.ckpt.Validate(j.Dataset.Matrix().Cols()); err != nil {
			s.logf("service: job %s: checkpoint unusable (%v); restarting from scratch", j.ID, err)
		} else if len(rj.clusters) != rj.ckpt.Delivered() {
			// Lost checkpoint appends left a gap between the journaled
			// cluster prefix and the snapshot's watermark; resuming would
			// stream a hole. Mining is deterministic, so re-mining from
			// scratch costs time but never correctness.
			s.logf("service: job %s: journal holds %d clusters but the checkpoint covers %d; restarting from scratch",
				j.ID, len(rj.clusters), rj.ckpt.Delivered())
		} else {
			ck := *rj.ckpt
			j.lastCkpt = &ck
			j.clusters = append([]report.NamedCluster(nil), rj.clusters...)
			j.journaled = len(j.clusters)
		}
	}
	s.logf("service: resuming job %s from checkpoint (%d clusters already delivered)", j.ID, len(j.clusters))
	s.jobs.recover(j)
}

// shortID truncates a content hash for log lines.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
