package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"regcluster/internal/matrix"
)

// RowStat is the precomputed per-gene profile summary of a registered
// dataset: the Equation 4 inputs (range) plus the usual moments, computed
// once at upload so that parameter-exploration clients and the threshold
// endpoints never rescan the matrix.
type RowStat struct {
	Gene  string  `json:"gene"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Range float64 `json:"range"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
}

// Dataset is one registered expression matrix, content-addressed by
// matrix.Hash so that re-uploading identical data is idempotent.
type Dataset struct {
	// ID is the canonical content hash of the (imputed) matrix.
	ID string `json:"id"`
	// Name is the caller-supplied label of the first upload.
	Name       string `json:"name"`
	Genes      int    `json:"genes"`
	Conditions int    `json:"conditions"`
	// ImputedCells counts NaN cells replaced by the row mean at upload
	// (the miners require a complete matrix).
	ImputedCells int       `json:"imputed_cells"`
	UploadedAt   time.Time `json:"uploaded_at"`
	// Delta records how this dataset was derived from another via an append
	// delta (nil for direct uploads). Lineage is what makes the incremental
	// re-mine path eligible: the miner needs to know which prefix of this
	// matrix is the parent.
	Delta *DeltaInfo `json:"delta,omitempty"`

	mat      *matrix.Matrix
	rowStats []RowStat
}

// Delta axes: which dimension an append grew.
const (
	DeltaAxisConditions = "conditions"
	DeltaAxisGenes      = "genes"
)

// DeltaInfo is the lineage of a dataset produced by an append delta: the
// parent's content hash, the grown axis, and the parent's dimensions (the
// prefix sizes — appended entries always land after the old ones).
type DeltaInfo struct {
	Parent   string `json:"parent"`
	Axis     string `json:"axis"`
	OldConds int    `json:"old_conds"`
	OldGenes int    `json:"old_genes"`
}

// Matrix returns the dataset's matrix. The matrix is immutable once
// registered; callers must not modify it.
func (d *Dataset) Matrix() *matrix.Matrix { return d.mat }

// RowStats returns the precomputed per-gene summaries.
func (d *Dataset) RowStats() []RowStat { return d.rowStats }

// registrySource adapts the registry to the coordinator's replication
// interface: workers fetch datasets by the same content hash the registry
// keys on, so placement needs no extra bookkeeping.
type registrySource struct{ r *registry }

func (rs registrySource) Dataset(id string) (*matrix.Matrix, bool) {
	ds, ok := rs.r.get(id)
	if !ok {
		return nil, false
	}
	return ds.Matrix(), true
}

// registry is the in-memory dataset store: content-addressed, bounded, safe
// for concurrent use.
type registry struct {
	mu   sync.RWMutex
	max  int
	byID map[string]*Dataset
}

func newRegistry(maxDatasets int) *registry {
	return &registry{max: maxDatasets, byID: make(map[string]*Dataset)}
}

// add parses a TSV expression matrix, imputes missing cells, and registers
// it under its content hash. Re-uploading an identical matrix returns the
// existing dataset (created = false) and never counts against the capacity
// bound.
func (r *registry) add(name string, tsv io.Reader) (ds *Dataset, created bool, err error) {
	m, err := matrix.ReadTSV(tsv)
	if err != nil {
		return nil, false, err
	}
	imputed := m.FillNaN()
	id := m.Hash()

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byID[id]; ok {
		return existing, false, nil
	}
	if r.max > 0 && len(r.byID) >= r.max {
		return nil, false, fmt.Errorf("service: dataset registry full (%d datasets); delete one first", len(r.byID))
	}
	ds = newDataset(m, name, imputed, time.Now().UTC())
	r.byID[ds.ID] = ds
	return ds, true, nil
}

// appendDelta parses a delta TSV and registers the parent's matrix grown by
// it along the given axis, recording the lineage. The child is
// content-addressed like any dataset: appending the same delta twice (or
// uploading the full grown matrix directly) converges on one entry. When the
// grown matrix already exists the existing dataset is returned unchanged
// (created = false) — in particular a direct upload keeps its lineage-free
// identity, and re-appends keep the lineage recorded first.
func (r *registry) appendDelta(parentID, axis, name string, tsv io.Reader) (ds *Dataset, created bool, err error) {
	parent, ok := r.get(parentID)
	if !ok {
		return nil, false, fmt.Errorf("service: unknown dataset %q", parentID)
	}
	delta, err := matrix.ReadTSV(tsv)
	if err != nil {
		return nil, false, err
	}
	imputed := delta.FillNaN()
	var grown *matrix.Matrix
	switch axis {
	case DeltaAxisConditions:
		grown, err = matrix.AppendConditions(parent.mat, delta)
	case DeltaAxisGenes:
		grown, err = matrix.AppendGenes(parent.mat, delta)
	default:
		return nil, false, fmt.Errorf("service: unknown append axis %q (want %s or %s)",
			axis, DeltaAxisConditions, DeltaAxisGenes)
	}
	if err != nil {
		return nil, false, err
	}
	id := grown.Hash()

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byID[id]; ok {
		return existing, false, nil
	}
	if r.max > 0 && len(r.byID) >= r.max {
		return nil, false, fmt.Errorf("service: dataset registry full (%d datasets); delete one first", len(r.byID))
	}
	if name == "" {
		name = parent.Name + "+delta"
	}
	ds = newDataset(grown, name, parent.ImputedCells+imputed, time.Now().UTC())
	ds.Delta = &DeltaInfo{Parent: parentID, Axis: axis,
		OldConds: parent.mat.Cols(), OldGenes: parent.mat.Rows()}
	r.byID[ds.ID] = ds
	return ds, true, nil
}

// newDataset builds the registry entry of an already-imputed matrix; the
// upload path and boot-time recovery share it so a restored dataset is
// indistinguishable from a freshly uploaded one (same defaulted name, same
// precomputed row stats).
func newDataset(m *matrix.Matrix, name string, imputed int, uploadedAt time.Time) *Dataset {
	id := m.Hash()
	if name == "" {
		name = "dataset-" + id[:12]
	}
	return &Dataset{
		ID: id, Name: name,
		Genes: m.Rows(), Conditions: m.Cols(),
		ImputedCells: imputed,
		UploadedAt:   uploadedAt,
		mat:          m,
		rowStats:     computeRowStats(m),
	}
}

// restore re-registers a dataset recovered from disk at boot, before the
// server accepts traffic. Recovery never drops data over a capacity bound:
// a data-dir holding more datasets than the configured limit still boots
// complete (the bound keeps applying to new uploads).
func (r *registry) restore(ds *Dataset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[ds.ID]; !ok {
		r.byID[ds.ID] = ds
	}
}

// get returns the dataset with the given content hash.
func (r *registry) get(id string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.byID[id]
	return ds, ok
}

// remove deletes a dataset; already-submitted jobs keep their matrix
// reference and are unaffected.
func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return false
	}
	delete(r.byID, id)
	return true
}

// list returns all datasets, oldest upload first (ties broken by ID so the
// order is deterministic).
func (r *registry) list() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.byID))
	for _, ds := range r.byID {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].UploadedAt.Equal(out[j].UploadedAt) {
			return out[i].UploadedAt.Before(out[j].UploadedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// size returns the number of registered datasets.
func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

func computeRowStats(m *matrix.Matrix) []RowStat {
	out := make([]RowStat, m.Rows())
	for i := range out {
		out[i] = RowStat{
			Gene:  m.RowName(i),
			Min:   m.RowMin(i),
			Max:   m.RowMax(i),
			Range: m.RowRange(i),
			Mean:  m.RowMean(i),
			Std:   m.RowStd(i),
		}
	}
	return out
}
