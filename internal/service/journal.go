package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"regcluster/internal/core"
	"regcluster/internal/faultinject"
	"regcluster/internal/report"
)

// Journal record types. The journal is an append-only NDJSON log: one
// journalRecord per line, fsynced per append, replayed in order at boot to
// rebuild the job table. Unknown types are skipped on replay (a journal
// written by a newer server boots on an older one), and a torn final line —
// the only damage an append-crash can cause — is dropped with a warning.
const (
	recSubmit      = "submit"      // a job was accepted (cache hit or not)
	recCheckpoint  = "checkpoint"  // miner snapshot + clusters delivered since the previous record
	recDone        = "done"        // job finished; result persisted under CacheKey
	recFailed      = "failed"      // job ended in an error
	recCancelled   = "cancelled"   // job cancelled by the caller
	recInterrupted = "interrupted" // job stopped by shutdown; resumable from Ckpt
	// recSweep binds already-submitted point jobs into one sweep. It is
	// appended after the last point's submit record, so a crash mid-sweep
	// leaves at worst a set of ordinary jobs (each individually resumable);
	// a journal holding the record restores the sweep view intact. Older
	// servers skip it as an unknown type.
	recSweep = "sweep"
	// recWorker / recLease are coordinator-mode audit records: worker joins
	// and lease lifecycle transitions (issued / reassigned / completed).
	// They are transient by design — replay skips them (leases do not
	// survive the coordinator process; an interrupted distributed job
	// resumes from its ordinary checkpoint records), so compaction drops
	// them, and servers predating them skip them as unknown types.
	recWorker = "worker"
	recLease  = "lease"
	// recShed is the terminal record of a queued job the overload shedder
	// evicted: replay settles it as cancelled-by-shed and never resurrects it.
	// recUsage carries one tenant's CUMULATIVE usage snapshot, appended at
	// every settlement; replay keeps the last record per tenant and compaction
	// rewrites exactly one. Both are skipped as unknown types by servers that
	// predate them.
	recShed  = "shed"
	recUsage = "usage"
	// recDelta records a dataset produced by an append delta: the child's
	// content hash plus its lineage (parent hash, grown axis, prefix sizes).
	// Replay re-attaches the lineage to the restored dataset so incremental
	// re-mining survives restarts; compaction keeps one record per dataset
	// still present. Servers predating it skip it as an unknown type.
	recDelta = "delta"
)

// journalRecord is one line of the job journal. Fields are a union over the
// record types; unused ones are omitted from the encoding.
type journalRecord struct {
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	Seq  int       `json:"seq,omitempty"`
	Job  string    `json:"job,omitempty"`

	// submit
	Dataset   string       `json:"dataset,omitempty"`
	Params    *core.Params `json:"params,omitempty"`
	Workers   int          `json:"workers,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`

	// checkpoint / interrupted: the miner snapshot plus every cluster
	// delivered since the last journaled watermark, so replay reconstructs
	// exactly the prefix the snapshot covers.
	Ckpt        *core.Checkpoint      `json:"ckpt,omitempty"`
	NewClusters []report.NamedCluster `json:"new_clusters,omitempty"`

	// terminal records
	Stats    *core.Stats `json:"stats,omitempty"`
	CacheKey string      `json:"cache_key,omitempty"`
	Cached   bool        `json:"cached,omitempty"`
	Error    string      `json:"error,omitempty"`

	// sweep: the sweep ID and its point jobs, in grid order.
	Sweep     string   `json:"sweep,omitempty"`
	PointJobs []string `json:"point_jobs,omitempty"`

	// tenancy: Tenant owns the record's job (submit) or usage snapshot
	// (recUsage); Usage is the cumulative per-tenant ledger at append time.
	Tenant string       `json:"tenant,omitempty"`
	Usage  *TenantUsage `json:"usage,omitempty"`

	// delta: lineage of an appended dataset (recDelta); Dataset above carries
	// the child's content hash.
	Delta *DeltaInfo `json:"delta,omitempty"`

	// coordinator-mode audit records (recWorker / recLease)
	Worker     string `json:"worker,omitempty"`
	Addr       string `json:"addr,omitempty"`        // advertised worker name
	Lease      string `json:"lease,omitempty"`       // lease id
	LeaseEvent string `json:"lease_event,omitempty"` // issued / reassigned / completed
	Cond       *int   `json:"cond,omitempty"`        // subtree condition of the lease
	Skip       int    `json:"skip,omitempty"`        // received watermark at the event
	Reason     string `json:"reason,omitempty"`      // reassignment cause
}

// journal is the append side of the WAL. Appends are serialized and fsynced
// before returning, so a record that OnCheckpoint observed as written is
// durable — the checkpoint callback runs synchronously on the mining emitter,
// which is what makes "journaled watermark never runs ahead of delivery"
// hold.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (w *journal) append(rec journalRecord) error {
	if err := faultinject.Hook("journal.append"); err != nil {
		return err
	}
	rec.Time = time.Now().UTC()
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	if err := faultinject.Hook("journal.sync"); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *journal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// replayJournalFile reads every replayable record of a journal. Replay is
// tolerant by design: a missing file is an empty journal, and an undecodable
// line stops replay at that point with a warning — for the final line that is
// the expected torn-append signature of a crash; anything earlier means
// corruption, and the records before it are still the best available state.
func replayJournalFile(path string, logf func(string, ...any)) []journalRecord {
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			logf("service: read journal %s: %v; booting without it", path, err)
		}
		return nil
	}
	var out []journalRecord
	lines := bytes.Split(raw, []byte{'\n'})
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 || allEmpty(lines[i+1:]) {
				logf("service: journal %s: dropping torn final record (%v)", path, err)
			} else {
				logf("service: journal %s: undecodable record at line %d (%v); replay stops here", path, i+1, err)
			}
			break
		}
		out = append(out, rec)
	}
	return out
}

func allEmpty(lines [][]byte) bool {
	for _, l := range lines {
		if len(bytes.TrimSpace(l)) != 0 {
			return false
		}
	}
	return true
}

// compactJournal atomically replaces the journal with the given records —
// boot rewrites the replayed state in canonical form so the file does not
// grow without bound across restarts.
func (s *store) compactJournal(recs []journalRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return writeFileAtomic(s.journalPath(), buf.Bytes())
}
