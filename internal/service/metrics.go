package service

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// Metrics is the in-process observability registry of one Server. All
// counters are monotone atomics, safe for concurrent update from job
// goroutines and concurrent render from the /metrics handler. The exposition
// format is the Prometheus text format (counters + one histogram), so the
// endpoint can be scraped directly.
type Metrics struct {
	JobsSubmitted atomic.Int64 // every accepted submission, cached or not
	JobsStarted   atomic.Int64 // jobs that began mining (cache misses)
	JobsFinished  atomic.Int64 // jobs that completed successfully
	JobsCancelled atomic.Int64
	JobsFailed    atomic.Int64

	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	// Model-cache counters (the shared RWave-build cache). A hit is any
	// lookup that avoided a build — a retained entry or joining an in-flight
	// build; a miss is a lookup that started one. Misses therefore equal the
	// number of RWave builds performed.
	ModelCacheHits      atomic.Int64
	ModelCacheMisses    atomic.Int64
	ModelCacheEvictions atomic.Int64

	NodesVisited     atomic.Int64 // settled Stats.Nodes summed over finished jobs
	ClustersStreamed atomic.Int64 // clusters delivered by miners, live

	DatasetsUploaded atomic.Int64

	// Incremental-mining counters. DatasetAppends counts append-delta uploads
	// that created a new dataset version; ModelRepairs counts per-gene RWave
	// models spliced by the repair fast path (vs rebuilt cold); the
	// Incremental* counters split jobs that took the subtree-reuse path from
	// those that fell back to a cold mine, and total the subtrees spliced
	// versus re-mined across all incremental runs.
	DatasetAppends            atomic.Int64
	ModelRepairs              atomic.Int64
	IncrementalMines          atomic.Int64
	IncrementalFallbacks      atomic.Int64
	IncrementalSubtreesReused atomic.Int64
	IncrementalSubtreesMined  atomic.Int64

	// Durability and failure-containment counters (regserver_* exposition
	// names; they arrived with the crash-recovery layer, after the
	// regcluster_* counters above were already scraped in the wild).
	Recoveries      atomic.Int64 // interrupted jobs re-enqueued at boot
	Checkpoints     atomic.Int64 // miner snapshots taken
	JobRetries      atomic.Int64 // transient-failure retries (backoff waits)
	PanicsRecovered atomic.Int64 // worker/stream panics contained

	// Admission-control counters: fast rejections (429s) and queued work
	// evicted by the overload shedder.
	JobsRejected atomic.Int64
	JobsShed     atomic.Int64

	// StreamsInflight counts live /jobs/{id}/stream subscribers (a gauge:
	// incremented on subscribe, decremented when the stream ends).
	StreamsInflight atomic.Int64

	latency latencyHistogram
	phases  [numPhases]latencyHistogram
}

// Phase indexes the per-phase duration histograms: the time a job spends
// waiting for a mining slot, the time it spends mining, and the boot-time
// journal replay.
type Phase int

const (
	PhaseQueue Phase = iota
	PhaseRun
	PhaseReplay
	numPhases
)

var phaseNames = [numPhases]string{"queue", "run", "replay"}

// NewMetrics returns a registry with the default mining-latency buckets
// (1ms … ~16s, powers of four).
func NewMetrics() *Metrics {
	mt := &Metrics{latency: newLatencyHistogram()}
	for i := range mt.phases {
		mt.phases[i] = newLatencyHistogram()
	}
	return mt
}

func newLatencyHistogram() latencyHistogram {
	return latencyHistogram{
		bounds: []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384},
		counts: make([]atomic.Int64, 9),
	}
}

// ObserveMiningLatency records the wall-clock duration of one mining run.
func (mt *Metrics) ObserveMiningLatency(d time.Duration) { mt.latency.observe(d.Seconds()) }

// ObservePhase records the wall-clock duration of one job phase.
func (mt *Metrics) ObservePhase(p Phase, d time.Duration) { mt.phases[p].observe(d.Seconds()) }

// latencyHistogram is a fixed-bucket cumulative histogram.
// counts[i] accumulates observations <= bounds[i]; the final slot is +Inf.
type latencyHistogram struct {
	bounds []float64
	counts []atomic.Int64
	sumUs  atomic.Int64
	count  atomic.Int64
}

func (h *latencyHistogram) observe(seconds float64) {
	slot := len(h.bounds)
	for i, b := range h.bounds {
		if seconds <= b {
			slot = i
			break
		}
	}
	h.counts[slot].Add(1)
	h.sumUs.Add(int64(seconds * 1e6))
	h.count.Add(1)
}

// gauge is a point-in-time value contributed by another component (cache
// size, running jobs, registered datasets) at render time.
type gauge struct {
	name, help string
	value      func() int64
}

// WriteTo renders the registry in the Prometheus text exposition format,
// appending the given gauges.
func (mt *Metrics) WriteTo(w io.Writer, gauges []gauge) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("regcluster_jobs_submitted_total", "Mining jobs accepted (cached results included).", mt.JobsSubmitted.Load())
	counter("regcluster_jobs_started_total", "Mining jobs that began mining.", mt.JobsStarted.Load())
	counter("regcluster_jobs_finished_total", "Mining jobs that completed successfully.", mt.JobsFinished.Load())
	counter("regcluster_jobs_cancelled_total", "Mining jobs cancelled by the caller.", mt.JobsCancelled.Load())
	counter("regcluster_jobs_failed_total", "Mining jobs that ended in an error.", mt.JobsFailed.Load())
	counter("regcluster_cache_hits_total", "Submissions served from the result cache.", mt.CacheHits.Load())
	counter("regcluster_cache_misses_total", "Submissions that had to mine.", mt.CacheMisses.Load())
	counter("regcluster_nodes_visited_total", "Search-tree nodes visited by finished jobs.", mt.NodesVisited.Load())
	counter("regcluster_clusters_streamed_total", "Clusters emitted by miners.", mt.ClustersStreamed.Load())
	counter("regcluster_datasets_uploaded_total", "Dataset uploads accepted (re-uploads included).", mt.DatasetsUploaded.Load())
	counter("regserver_recoveries_total", "Interrupted jobs re-enqueued from their checkpoints at boot.", mt.Recoveries.Load())
	counter("regserver_checkpoints_total", "Miner checkpoints taken.", mt.Checkpoints.Load())
	counter("regserver_job_retries_total", "Transient job failures retried with backoff.", mt.JobRetries.Load())
	counter("regserver_panics_recovered_total", "Panics recovered inside workers and stream handlers.", mt.PanicsRecovered.Load())
	counter("regserver_model_cache_hits_total", "Jobs that reused a shared RWave model build (cached or in-flight).", mt.ModelCacheHits.Load())
	counter("regserver_model_cache_misses_total", "RWave model builds performed (one per distinct dataset+γ-scheme).", mt.ModelCacheMisses.Load())
	counter("regserver_model_cache_evictions_total", "Shared RWave model sets evicted by the LRU bound.", mt.ModelCacheEvictions.Load())
	counter("regserver_jobs_rejected_total", "Submissions refused by admission control (429s).", mt.JobsRejected.Load())
	counter("regserver_jobs_shed_total", "Queued jobs evicted by the overload shedder.", mt.JobsShed.Load())
	counter("regserver_dataset_appends_total", "Append-delta uploads that created a new dataset version.", mt.DatasetAppends.Load())
	counter("regserver_model_repairs_total", "Per-gene RWave models spliced by the repair fast path.", mt.ModelRepairs.Load())
	counter("regserver_incremental_mines_total", "Jobs mined via the incremental subtree-reuse path.", mt.IncrementalMines.Load())
	counter("regserver_incremental_fallbacks_total", "Delta-lineage jobs that fell back to a cold mine.", mt.IncrementalFallbacks.Load())
	counter("regserver_incremental_subtrees_reused_total", "Subtrees spliced from parent results without re-mining.", mt.IncrementalSubtreesReused.Load())
	counter("regserver_incremental_subtrees_mined_total", "Subtrees re-mined by incremental runs.", mt.IncrementalSubtreesMined.Load())
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value())
	}

	const hname = "regcluster_mining_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Wall-clock duration of mining runs.\n# TYPE %s histogram\n", hname, hname)
	mt.latency.write(w, hname, "")

	const pname = "regserver_phase_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall-clock duration of job phases (queue wait, mining run, boot journal replay).\n# TYPE %s histogram\n", pname, pname)
	for i := range mt.phases {
		mt.phases[i].write(w, pname, fmt.Sprintf("phase=%q,", phaseNames[i]))
	}
}

// write renders one histogram in the text exposition format. label, when
// non-empty, is a `key="value",` prefix injected into every brace set so
// several histograms can share one metric family.
func (h *latencyHistogram) write(w io.Writer, name, label string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, label, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, label, cum)
	suffix := ""
	if label != "" {
		suffix = "{" + strings.TrimSuffix(label, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(h.sumUs.Load())/1e6)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.count.Load())
}
