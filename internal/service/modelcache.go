package service

import (
	"container/list"
	"fmt"
	"sync"

	"regcluster/internal/rwave"
)

// modelCache is the shared-RWave-build cache: a strict LRU from core.ModelKey
// to an immutable prebuilt model set, plus single-flight build sharing. The
// RWave^γ index depends only on (dataset, γ-scheme) — Lemma 3.1 — so every
// job and sweep point that agrees on those reuses one build; ε/MinG/MinC/cap
// variations all hit.
//
// Accounting: a lookup that finds a cached entry OR joins an in-flight build
// counts as a hit (a build was avoided); only the lookup that actually starts
// a build counts as a miss. "misses == distinct γ groups built" is the
// invariant the sweep smoke test asserts.
//
// The cache deliberately mirrors resultCache: entry-count bound, LRU
// promotion on hit, and an onEvict hook observing every LRU eviction (the
// models are memory-only, so the default hook just counts; tests attach their
// own).
type modelCache struct {
	metrics *Metrics

	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used; values are *modelItem
	items    map[string]*list.Element
	inflight map[string]*modelBuild
	// onEvict, when set, observes every LRU eviction — symmetric with
	// resultCache.onEvict.
	onEvict func(key string)
}

type modelItem struct {
	key    string
	models []*rwave.Model
}

// modelBuild is one in-flight construction; waiters block on done and then
// read models/err (published before the close, so the channel ordering makes
// the reads safe).
type modelBuild struct {
	done   chan struct{}
	models []*rwave.Model
	err    error
}

// newModelCache returns a cache bounded to maxEntries. maxEntries <= 0
// disables retention — concurrent duplicate builds are still coalesced, but
// nothing survives the last waiter.
func newModelCache(maxEntries int, metrics *Metrics) *modelCache {
	return &modelCache{
		metrics:  metrics,
		max:      maxEntries,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*modelBuild),
	}
}

// getOrBuild returns the model set for key, building it via build() at most
// once across all concurrent callers. A failed or panicking build is
// propagated to every waiter as an error and cached nowhere, so a later
// caller retries.
func (c *modelCache) getOrBuild(key string, build func() ([]*rwave.Model, error)) ([]*rwave.Model, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		models := el.Value.(*modelItem).models
		c.mu.Unlock()
		c.metrics.ModelCacheHits.Add(1)
		return models, nil
	}
	if b, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		// Joining someone else's build avoids a build of our own: a hit.
		c.metrics.ModelCacheHits.Add(1)
		<-b.done
		return b.models, b.err
	}
	b := &modelBuild{done: make(chan struct{})}
	c.inflight[key] = b
	c.mu.Unlock()
	c.metrics.ModelCacheMisses.Add(1)

	func() {
		defer func() {
			if r := recover(); r != nil {
				// Contain builder panics so waiters never hang; validation
				// upstream makes this unreachable in practice.
				b.err = fmt.Errorf("service: model build panicked: %v", r)
			}
		}()
		b.models, b.err = build()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if b.err == nil && c.max > 0 {
		if _, dup := c.items[key]; !dup {
			for c.ll.Len() >= c.max {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				old := oldest.Value.(*modelItem).key
				delete(c.items, old)
				c.metrics.ModelCacheEvictions.Add(1)
				if c.onEvict != nil {
					c.onEvict(old)
				}
			}
			c.items[key] = c.ll.PushFront(&modelItem{key: key, models: b.models})
		}
	}
	c.mu.Unlock()
	close(b.done)
	return b.models, b.err
}

// peek returns the cached model set for key without building, joining an
// in-flight build, or touching the hit/miss counters — the "misses == distinct
// γ groups built" invariant is unaffected by peeks. A found entry is still
// promoted: a peek that enables a model repair is a use worth retaining.
func (c *modelCache) peek(key string) ([]*rwave.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*modelItem).models, true
}

// len returns the number of retained entries (in-flight builds excluded).
func (c *modelCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
