package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"regcluster/internal/core"
)

// Multi-tenant admission control. Every request is attributed to a tenant —
// resolved from its API key, or the built-in anonymous tenant when no key is
// presented — and admission happens at submit time: a token-bucket rate
// limit, a concurrent-job quota, a bounded per-tenant queue, and an
// aggregate in-flight node-budget pool (core.QuotaPool). A submission that
// fails admission is rejected fast and honestly — 429 with a Retry-After
// derived from the scheduler's observed drain rate — instead of joining an
// unbounded queue. The weighted-fair scheduler in sched.go then shares the
// mining slots across tenants by weight and priority class.

// AnonymousTenant is the ID of the built-in tenant serving unauthenticated
// requests, so every pre-tenancy client keeps working unchanged.
const AnonymousTenant = "anonymous"

// Priority classes order tenants for scheduling and load shedding: the
// scheduler grants slots to higher classes first, and the overload shedder
// evicts queued work from the lowest class first.
const (
	PriorityLow = iota
	PriorityNormal
	PriorityHigh
	numPriorities
)

var priorityNames = [numPriorities]string{"low", "normal", "high"}

// parsePriority maps a config string to a priority class; empty means normal.
func parsePriority(s string) (int, error) {
	switch strings.ToLower(s) {
	case "", "normal":
		return PriorityNormal, nil
	case "low", "batch":
		return PriorityLow, nil
	case "high", "interactive":
		return PriorityHigh, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want low, normal, or high)", s)
}

// TenantConfig declares one tenant in the static tenants file (-tenants).
// Zero fields inherit the server-wide defaults documented on Config.
type TenantConfig struct {
	// ID names the tenant in views, metrics labels, journal records, and
	// GET /tenants/{id}/usage. Required, unique.
	ID string `json:"id"`
	// APIKey authenticates the tenant (X-API-Key header or Bearer token).
	// Required for configured tenants; the anonymous tenant has none.
	APIKey string `json:"api_key"`
	// Weight is the tenant's fair share: the scheduler grants slots within a
	// priority class proportionally to weight (default 1).
	Weight int `json:"weight,omitempty"`
	// Priority is the scheduling class: "low", "normal" (default), "high".
	// Higher classes are always granted first; lower classes are shed first
	// under overload.
	Priority string `json:"priority,omitempty"`
	// RatePerSec refills the submission token bucket; 0 inherits the server
	// default, negative disables rate limiting for this tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`
	// MaxActive bounds the tenant's jobs queued or running at once; 0
	// inherits the server default, negative means unlimited.
	MaxActive int `json:"max_active,omitempty"`
	// MaxQueued bounds the tenant's scheduler queue depth; 0 inherits the
	// server default, negative means unlimited.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxNodesPerJob / MaxClustersPerJob clamp a submission's budget caps
	// below the server-wide clamps (0 = no tenant clamp).
	MaxNodesPerJob    int `json:"max_nodes_per_job,omitempty"`
	MaxClustersPerJob int `json:"max_clusters_per_job,omitempty"`
	// NodeBudget caps the SUM of node budgets (Params.MaxNodes) the tenant
	// may have in flight, enforced through a shared core.QuotaPool at submit
	// time. A submission with an unlimited node budget is clamped to the
	// whole pool first, so every job charges the pool. 0 = unlimited.
	NodeBudget int64 `json:"node_budget,omitempty"`
}

// LoadTenants reads a tenants file: a JSON array of TenantConfig (or an
// object with a "tenants" key, so the file can carry future settings).
func LoadTenants(path string) ([]TenantConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var list []TenantConfig
	if err := json.Unmarshal(raw, &list); err != nil {
		var wrapped struct {
			Tenants []TenantConfig `json:"tenants"`
		}
		if err2 := json.Unmarshal(raw, &wrapped); err2 != nil || wrapped.Tenants == nil {
			return nil, fmt.Errorf("tenants file %s: %v", path, err)
		}
		list = wrapped.Tenants
	}
	return list, nil
}

// TenantUsage is the cumulative resource accounting of one tenant, exposed
// at GET /tenants/{id}/usage, labeled into /metrics, and journaled as a
// usage record on every job settlement so a restart replays consistent
// totals. Counters only grow; Rejected/Shed count fast rejections and
// overload evictions, the honest-degradation half of the ledger.
type TenantUsage struct {
	Jobs        int64   `json:"jobs"`         // submissions accepted (cache hits included)
	Completed   int64   `json:"completed"`    // jobs that settled done
	Failed      int64   `json:"failed"`       // jobs that settled failed
	Cancelled   int64   `json:"cancelled"`    // caller cancellations
	Shed        int64   `json:"shed"`         // queued jobs evicted by overload shedding
	Rejected    int64   `json:"rejected"`     // submissions refused with 429
	Nodes       int64   `json:"nodes"`        // search-tree nodes mined by settled jobs
	Clusters    int64   `json:"clusters"`     // clusters emitted by settled jobs
	NodeSeconds float64 `json:"node_seconds"` // mining-slot seconds consumed
}

// add merges one settled job's contribution (used at settle time).
func (u *TenantUsage) add(other TenantUsage) {
	u.Jobs += other.Jobs
	u.Completed += other.Completed
	u.Failed += other.Failed
	u.Cancelled += other.Cancelled
	u.Shed += other.Shed
	u.Rejected += other.Rejected
	u.Nodes += other.Nodes
	u.Clusters += other.Clusters
	u.NodeSeconds += other.NodeSeconds
}

// tenant is the runtime state of one tenant: its resolved config, the
// submission token bucket, the in-flight node-budget pool, and the usage
// counters. Scheduler state (queue, stride pass) lives in the scheduler,
// keyed by tenant.
type tenant struct {
	id       string
	key      string
	weight   int
	priority int

	maxActive   int // queued+running bound; <=0 unlimited
	maxQueued   int // scheduler queue bound; <=0 unlimited
	maxNodes    int // per-job node-budget clamp; 0 none
	maxClusters int // per-job cluster clamp; 0 none

	bucket *tokenBucket    // nil = unlimited submission rate
	nodes  *core.QuotaPool // nil = no aggregate node budget

	mu    sync.Mutex
	usage TenantUsage
}

// account merges a delta into the tenant's usage ledger and returns the new
// cumulative snapshot (the value journaled as a usage record).
func (t *tenant) account(delta TenantUsage) TenantUsage {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.usage.add(delta)
	return t.usage
}

// usageSnapshot returns the current cumulative usage.
func (t *tenant) usageSnapshot() TenantUsage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.usage
}

// restoreUsage installs replayed totals (boot-time journal recovery). The
// journal holds cumulative snapshots, so the last record per tenant wins.
func (t *tenant) restoreUsage(u TenantUsage) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.usage = u
}

// tenantSet resolves tenants by API key and ID. Immutable after Open: the
// tenants file is static configuration, like the listen address.
type tenantSet struct {
	byKey     map[string]*tenant
	byID      map[string]*tenant
	order     []string // config order, anonymous first, for stable rendering
	anonymous *tenant
}

// tenantDefaults carries the server-wide fallbacks a TenantConfig zero field
// inherits.
type tenantDefaults struct {
	ratePerSec float64 // <=0 = unlimited
	burst      int
	maxActive  int // <=0 = unlimited
	maxQueued  int // <=0 = unlimited
}

// newTenantSet builds the runtime tenant table: the anonymous tenant first
// (always present, no API key), then one tenant per config entry.
func newTenantSet(cfgs []TenantConfig, def tenantDefaults) (*tenantSet, error) {
	ts := &tenantSet{byKey: make(map[string]*tenant), byID: make(map[string]*tenant)}
	anon := buildTenant(TenantConfig{ID: AnonymousTenant}, def)
	ts.anonymous = anon
	ts.byID[anon.id] = anon
	ts.order = append(ts.order, anon.id)
	for _, c := range cfgs {
		if c.ID == "" {
			return nil, fmt.Errorf("tenant config: missing id")
		}
		if c.ID == AnonymousTenant {
			// Overriding the anonymous tenant's limits is allowed; it keeps
			// serving keyless requests.
			if c.APIKey != "" {
				return nil, fmt.Errorf("tenant %q cannot carry an API key", AnonymousTenant)
			}
			prio, err := parsePriority(c.Priority)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: %v", c.ID, err)
			}
			*anon = *buildTenant(c, def)
			anon.priority = prio
			continue
		}
		if c.APIKey == "" {
			return nil, fmt.Errorf("tenant %q: missing api_key", c.ID)
		}
		if _, dup := ts.byID[c.ID]; dup {
			return nil, fmt.Errorf("duplicate tenant id %q", c.ID)
		}
		if _, dup := ts.byKey[c.APIKey]; dup {
			return nil, fmt.Errorf("tenant %q: api_key already in use", c.ID)
		}
		if _, err := parsePriority(c.Priority); err != nil {
			return nil, fmt.Errorf("tenant %q: %v", c.ID, err)
		}
		t := buildTenant(c, def)
		ts.byID[t.id] = t
		ts.byKey[t.key] = t
		ts.order = append(ts.order, t.id)
	}
	return ts, nil
}

// buildTenant resolves one config entry against the defaults. Priority is
// validated by the caller.
func buildTenant(c TenantConfig, def tenantDefaults) *tenant {
	prio, _ := parsePriority(c.Priority)
	t := &tenant{
		id:          c.ID,
		key:         c.APIKey,
		weight:      c.Weight,
		priority:    prio,
		maxActive:   c.MaxActive,
		maxQueued:   c.MaxQueued,
		maxNodes:    c.MaxNodesPerJob,
		maxClusters: c.MaxClustersPerJob,
	}
	if t.weight <= 0 {
		t.weight = 1
	}
	if t.maxActive == 0 {
		t.maxActive = def.maxActive
	}
	if t.maxQueued == 0 {
		t.maxQueued = def.maxQueued
	}
	rate := c.RatePerSec
	if rate == 0 {
		rate = def.ratePerSec
	}
	if rate > 0 {
		burst := c.Burst
		if burst <= 0 {
			burst = def.burst
		}
		if burst <= 0 {
			burst = int(math.Ceil(rate))
		}
		if burst < 1 {
			burst = 1
		}
		t.bucket = newTokenBucket(rate, float64(burst))
	}
	if c.NodeBudget > 0 {
		t.nodes = core.NewQuotaPool(c.NodeBudget)
	}
	return t
}

// get resolves a tenant by ID.
func (ts *tenantSet) get(id string) (*tenant, bool) {
	t, ok := ts.byID[id]
	return t, ok
}

// getOrAnonymous resolves a tenant by ID, falling back to anonymous — used
// by journal replay so records from a deleted tenant still account somewhere.
func (ts *tenantSet) getOrAnonymous(id string) *tenant {
	if t, ok := ts.byID[id]; ok {
		return t
	}
	return ts.anonymous
}

// list returns every tenant in stable order (anonymous first).
func (ts *tenantSet) list() []*tenant {
	out := make([]*tenant, 0, len(ts.order))
	for _, id := range ts.order {
		out = append(out, ts.byID[id])
	}
	return out
}

// errUnknownAPIKey rejects a request presenting a key no tenant owns — a
// typo'd key must fail loudly, not silently demote to anonymous limits.
var errUnknownAPIKey = fmt.Errorf("unknown API key")

// resolve authenticates a request: X-API-Key header first, then a Bearer
// token; no key at all resolves to the anonymous tenant.
func (ts *tenantSet) resolve(r *http.Request) (*tenant, error) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		return ts.anonymous, nil
	}
	if t, ok := ts.byKey[key]; ok {
		return t, nil
	}
	return nil, errUnknownAPIKey
}

// tokenBucket is a classic refill-on-read token bucket. now is swappable so
// tests drive time deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// take consumes n tokens if available; otherwise it reports how long until
// the deficit refills (the Retry-After for a rate rejection).
func (b *tokenBucket) take(n float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// admissionError is a typed submit rejection: the HTTP status it maps to
// (429 for quota/rate, 503 for drain) and the Retry-After to advertise.
type admissionError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *admissionError) Error() string { return e.msg }

// retryAfterSeconds renders the Retry-After header value: whole seconds,
// rounded up, at least 1 so clients never busy-loop on "0".
func retryAfterSeconds(d time.Duration) int64 {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// tenantView is the JSON shape of GET /tenants/{id}/usage: identity, limits,
// live scheduler state, and the cumulative usage ledger.
type tenantView struct {
	ID       string `json:"id"`
	Weight   int    `json:"weight"`
	Priority string `json:"priority"`
	// Queued/Running are the tenant's live scheduler occupancy.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// NodeBudgetInUse / NodeBudgetCapacity expose the aggregate in-flight
	// node-budget pool (0 capacity = unlimited).
	NodeBudgetInUse    int64       `json:"node_budget_in_use,omitempty"`
	NodeBudgetCapacity int64       `json:"node_budget_capacity,omitempty"`
	Usage              TenantUsage `json:"usage"`
}

// tenantGauges are the live per-tenant scheduler numbers used by views and
// metrics; filled by the scheduler.
type tenantGauges struct {
	queued  int
	running int
}

// jobUsageDelta converts one settled job into its usage contribution.
func jobUsageDelta(status JobStatus, shed bool, stats core.Stats, clusters int, ran time.Duration) TenantUsage {
	d := TenantUsage{
		Nodes:       int64(stats.Nodes),
		Clusters:    int64(clusters),
		NodeSeconds: ran.Seconds(),
	}
	switch {
	case shed:
		d.Shed = 1
	case status == StatusDone:
		d.Completed = 1
	case status == StatusFailed:
		d.Failed = 1
	case status == StatusCancelled:
		d.Cancelled = 1
	}
	return d
}
