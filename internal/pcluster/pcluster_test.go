package pcluster

import (
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func TestPScore(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 3},
		{2, 4},
		{2, 10},
	})
	// Rows 0,1: differences (1-3) and (2-4) are both -2 → pScore 0.
	if got := PScore(m, 0, 1, 0, 1); got != 0 {
		t.Errorf("pScore = %v, want 0", got)
	}
	// Rows 0,2: (1-3) vs (2-10): |-2 - (-8)| = 6.
	if got := PScore(m, 0, 2, 0, 1); got != 6 {
		t.Errorf("pScore = %v, want 6", got)
	}
}

func TestMineFindsShiftingPattern(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 5, 2, 8},
		{3, 7, 4, 10},  // row0 + 2
		{-1, 3, 0, 6},  // row0 - 2
		{10, 2, 50, 4}, // unrelated
	})
	got, err := Mine(m, Params{Delta: 1e-9, MinG: 3, MinC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("clusters = %v, want exactly the shifting trio", got)
	}
	b := got[0]
	if len(b.Genes) != 3 || b.Genes[0] != 0 || b.Genes[1] != 1 || b.Genes[2] != 2 {
		t.Errorf("genes = %v", b.Genes)
	}
	if len(b.Conds) != 4 {
		t.Errorf("conds = %v", b.Conds)
	}
	if !IsPCluster(m, b.Genes, b.Conds, 1e-9) {
		t.Error("mined cluster fails IsPCluster")
	}
}

// TestCannotGroupScaledPatterns demonstrates the paper's comparison point:
// on the Figure 1 data pCluster groups the shifted profiles {P1,P2,P3,P4}
// but cannot merge the scaled profiles P5 = 1.5·P1 and P6 = 3·P1 with them.
func TestCannotGroupScaledPatterns(t *testing.T) {
	m := paperdata.SixPatterns()
	got, err := Mine(m, Params{Delta: 0.5, MinG: 2, MinC: 8})
	if err != nil {
		t.Fatal(err)
	}
	foundShifting := false
	for _, b := range got {
		if containsAll(b.Genes, 0, 1, 2, 3) {
			foundShifting = true
		}
		if containsAll(b.Genes, 0, 4) || containsAll(b.Genes, 0, 5) {
			t.Errorf("pCluster wrongly grouped scaled profiles: %v", b)
		}
	}
	if !foundShifting {
		t.Error("pCluster failed to find the pure shifting group {P1..P4}")
	}
}

// TestCannotGroupNegativeCorrelation: mixing a gene with its negation blows
// up the pScore (Section 1.3).
func TestCannotGroupNegativeCorrelation(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 5, 2, 8},
		{-1, -5, -2, -8},
	})
	got, err := Mine(m, Params{Delta: 1.0, MinG: 2, MinC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("pCluster should not group negatively correlated genes: %v", got)
	}
}

func TestMineValidation(t *testing.T) {
	m := matrix.New(2, 2)
	if _, err := Mine(m, Params{Delta: 1, MinG: 0, MinC: 2}); err == nil {
		t.Error("MinG=0 accepted")
	}
	if _, err := Mine(m, Params{Delta: 1, MinG: 1, MinC: 1}); err == nil {
		t.Error("MinC=1 accepted")
	}
}

func TestMaxNodesCap(t *testing.T) {
	m := matrix.New(20, 10) // all zeros: everything is a pCluster
	got, err := Mine(m, Params{Delta: 1, MinG: 2, MinC: 2, MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 5 {
		t.Fatalf("MaxNodes ignored: %d clusters", len(got))
	}
}

func containsAll(xs []int, want ...int) bool {
	set := map[int]bool{}
	for _, x := range xs {
		set[x] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}
