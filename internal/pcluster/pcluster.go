// Package pcluster implements the δ-pCluster baseline (Wang, Wang, Yang, Yu
// — SIGMOD 2002): pattern-based biclustering for *pure shifting* patterns.
//
// A submatrix (X, C) is a δ-pCluster iff the pScore of every 2×2 submatrix is
// at most δ, where
//
//	pScore([[d_xa, d_xb], [d_ya, d_yb]]) = |(d_xa − d_xb) − (d_ya − d_yb)|.
//
// Equivalently, for every condition pair (a, b) the per-gene differences
// d_ga − d_gb must lie within a window of width δ. The paper's comparison
// point: pCluster captures d_i = d_j + s2 but not shifting-and-scaling
// d_i = s1·d_j + s2 with s1 ≠ 1, and it cannot group negatively correlated
// genes (the differences diverge, inflating the pScore — Section 1.3).
package pcluster

import (
	"math"

	"regcluster/internal/matrix"
	"regcluster/internal/pairwise"
)

// Params configures the miner.
type Params struct {
	// Delta is the pScore threshold δ.
	Delta float64
	// MinG and MinC are the minimum bicluster dimensions.
	MinG, MinC int
	// MaxNodes optionally caps the search.
	MaxNodes int
}

// Bicluster is one mined δ-pCluster.
type Bicluster = pairwise.Bicluster

// PScore computes the pScore of the 2×2 submatrix of genes x, y on
// conditions a, b.
func PScore(m *matrix.Matrix, x, y, a, b int) float64 {
	return math.Abs((m.At(x, a) - m.At(x, b)) - (m.At(y, a) - m.At(y, b)))
}

// IsPCluster verifies the δ-pCluster property exhaustively over all 2×2
// submatrices (used by tests and the comparison harness).
func IsPCluster(m *matrix.Matrix, genes, conds []int, delta float64) bool {
	for i := 0; i < len(genes); i++ {
		for j := i + 1; j < len(genes); j++ {
			for a := 0; a < len(conds); a++ {
				for b := a + 1; b < len(conds); b++ {
					if PScore(m, genes[i], genes[j], conds[a], conds[b]) > delta {
						return false
					}
				}
			}
		}
	}
	return true
}

// Mine enumerates maximal-window δ-pClusters of m with at least MinG genes
// and MinC conditions.
func Mine(m *matrix.Matrix, p Params) ([]Bicluster, error) {
	score := func(m *matrix.Matrix, g, a, b int) float64 {
		return m.At(g, a) - m.At(g, b)
	}
	fit := func(lo, hi float64) bool { return hi-lo <= p.Delta }
	return pairwise.Mine(m, score, fit, pairwise.Params{MinG: p.MinG, MinC: p.MinC, MaxNodes: p.MaxNodes})
}
