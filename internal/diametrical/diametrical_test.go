package diametrical

import (
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
)

// antiCorrelatedPair builds two diametrical groups: group A and its mirror
// share a cluster, group B (a different shape) forms another.
func antiCorrelatedPair(t *testing.T) (*matrix.Matrix, []int, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	shapeA := []float64{1, 5, 2, 8, 3, 9}
	shapeB := []float64{9, 1, 8, 2, 7, 3}
	m := matrix.New(24, 6)
	var groupA, groupB []int
	for g := 0; g < 24; g++ {
		var shape []float64
		sign := 1.0
		switch {
		case g < 8:
			shape = shapeA
			groupA = append(groupA, g)
		case g < 16:
			shape = shapeA
			sign = -1 // anti-correlated with A
			groupA = append(groupA, g)
		default:
			shape = shapeB
			groupB = append(groupB, g)
		}
		scale := 0.5 + rng.Float64()*2
		shift := rng.Float64() * 10
		for c, v := range shape {
			m.Set(g, c, sign*scale*v+shift+rng.Float64()*0.1)
		}
	}
	return m, groupA, groupB
}

func TestAntiCorrelatedGenesShareCluster(t *testing.T) {
	m, groupA, groupB := antiCorrelatedPair(t)
	clusters, err := ClusterGenes(m, Params{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("%d clusters", len(clusters))
	}
	// Find the cluster holding gene 0; it must hold (nearly) all of group A
	// including the mirrored half, and little of group B.
	var a *Cluster
	for i := range clusters {
		for _, g := range clusters[i].Genes() {
			if g == 0 {
				a = &clusters[i]
			}
		}
	}
	if a == nil {
		t.Fatal("gene 0 unassigned")
	}
	inA := map[int]bool{}
	for _, g := range a.Genes() {
		inA[g] = true
	}
	hitsA := 0
	for _, g := range groupA {
		if inA[g] {
			hitsA++
		}
	}
	if hitsA < len(groupA)-1 {
		t.Errorf("cluster holds %d/%d of the diametrical group", hitsA, len(groupA))
	}
	for _, g := range groupB {
		if inA[g] {
			t.Errorf("group B gene %d leaked into the diametrical cluster", g)
		}
	}
	// The mirrored half must appear on the Negative side.
	if len(a.Negative) == 0 {
		t.Error("no anti-correlated members recorded")
	}
}

func TestAllGenesAssignedOnce(t *testing.T) {
	m, _, _ := antiCorrelatedPair(t)
	clusters, err := ClusterGenes(m, Params{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, c := range clusters {
		for _, g := range c.Genes() {
			if seen[g] {
				t.Fatalf("gene %d assigned twice", g)
			}
			seen[g] = true
			total++
		}
	}
	if total != m.Rows() {
		t.Fatalf("%d of %d genes assigned", total, m.Rows())
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	m, _, _ := antiCorrelatedPair(t)
	a, err := ClusterGenes(m, Params{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterGenes(m, Params{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ag, bg := a[i].Genes(), b[i].Genes()
		if len(ag) != len(bg) {
			t.Fatal("nondeterministic")
		}
		for j := range ag {
			if ag[j] != bg[j] {
				t.Fatal("nondeterministic")
			}
		}
	}
}

func TestValidation(t *testing.T) {
	m := matrix.New(4, 3)
	if _, err := ClusterGenes(m, Params{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := ClusterGenes(m, Params{K: 5}); err == nil {
		t.Error("K>genes accepted")
	}
}

// TestFullSpaceLimitation documents the paper's criticism: diametrical
// clustering judges correlation over ALL conditions, so genes co-regulated
// only in a subspace do not pair up.
func TestFullSpaceLimitation(t *testing.T) {
	// Genes 0,1 perfectly anti-correlated on conditions 0..2 but identical
	// on 3..5 (which dominate): full-space correlation is positive and weak.
	m := matrix.FromRows([][]float64{
		{1, 5, 9, 100, 200, 300},
		{9, 5, 1, 100, 200, 300},
		{50, 50, 50, -100, -200, -300},
		{51, 49, 50, -100, -200, -300},
	})
	clusters, err := ClusterGenes(m, Params{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 0 and 1 cluster together — but as POSITIVE partners (the subspace
	// anti-correlation is invisible in full space).
	for _, c := range clusters {
		in := map[int]bool{}
		for _, g := range c.Genes() {
			in[g] = true
		}
		if in[0] && in[1] && len(c.Negative) > 0 {
			neg := map[int]bool{}
			for _, g := range c.Negative {
				neg[g] = true
			}
			if neg[0] != neg[1] {
				t.Error("full-space method unexpectedly detected the subspace anti-correlation")
			}
		}
	}
}
