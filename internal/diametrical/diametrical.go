// Package diametrical implements diametrical clustering (Dhillon, Marcotte &
// Roshan — Bioinformatics 2003), reference [9] of the reg-cluster paper: a
// k-means-style algorithm that groups genes by the SQUARED Pearson
// correlation to a cluster prototype, so strongly anti-correlated genes land
// in the same cluster. The paper cites it as the state of the art for
// negative correlation — but only in FULL space; the comparison tests show
// it cannot pick up subspace co-regulation, which reg-cluster does.
package diametrical

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// Params configures the clustering.
type Params struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds the refinement rounds.
	MaxIter int
	// Seed drives the initialization.
	Seed int64
}

// Cluster is one diametrical cluster: member genes split by the sign of
// their correlation with the prototype.
type Cluster struct {
	// Positive and Negative list member genes correlated, respectively
	// anti-correlated, with the cluster prototype (both ascending).
	Positive, Negative []int
}

// Genes returns all members ascending.
func (c *Cluster) Genes() []int {
	out := append(append([]int(nil), c.Positive...), c.Negative...)
	sort.Ints(out)
	return out
}

// Cluster partitions the gene rows into k diametrical clusters. Genes with
// constant profiles are assigned to the cluster whose prototype they match
// least badly (correlation 0), like any other gene.
func ClusterGenes(m *matrix.Matrix, p Params) ([]Cluster, error) {
	n := m.Rows()
	if p.K < 1 || p.K > n {
		return nil, fmt.Errorf("diametrical: K=%d out of 1..%d", p.K, n)
	}
	if p.MaxIter < 1 {
		p.MaxIter = 50
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Z-score profiles once; correlation becomes a dot product / dims.
	z := m.Clone().NormalizeRows()
	dims := m.Cols()

	// Prototypes start as random gene profiles.
	protos := make([][]float64, p.K)
	for i, g := range rng.Perm(n)[:p.K] {
		protos[i] = append([]float64(nil), z.Row(g)...)
	}
	assign := make([]int, n)
	for iter := 0; iter < p.MaxIter; iter++ {
		changed := false
		for g := 0; g < n; g++ {
			best, bestScore := 0, math.Inf(-1)
			for k := range protos {
				r := dot(z.Row(g), protos[k]) / float64(dims)
				if s := r * r; s > bestScore {
					best, bestScore = k, s
				}
			}
			if assign[g] != best {
				assign[g] = best
				changed = true
			}
		}
		// Prototype update: sign-aligned mean of members (the power-method
		// step of the original algorithm), re-normalized.
		for k := range protos {
			sum := make([]float64, dims)
			count := 0
			for g := 0; g < n; g++ {
				if assign[g] != k {
					continue
				}
				row := z.Row(g)
				sign := 1.0
				if dot(row, protos[k]) < 0 {
					sign = -1
				}
				for j := 0; j < dims; j++ {
					sum[j] += sign * row[j]
				}
				count++
			}
			if count == 0 {
				copy(sum, z.Row(rng.Intn(n)))
				count = 1
			}
			norm := 0.0
			for j := range sum {
				sum[j] /= float64(count)
				norm += sum[j] * sum[j]
			}
			norm = math.Sqrt(norm / float64(dims))
			if norm > 0 {
				for j := range sum {
					sum[j] /= norm
				}
			}
			protos[k] = sum
		}
		if !changed && iter > 0 {
			break
		}
	}

	out := make([]Cluster, p.K)
	for g := 0; g < n; g++ {
		k := assign[g]
		if dot(z.Row(g), protos[k]) >= 0 {
			out[k].Positive = append(out[k].Positive, g)
		} else {
			out[k].Negative = append(out[k].Negative, g)
		}
	}
	return out, nil
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
