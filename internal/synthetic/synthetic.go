// Package synthetic implements the data generator of Section 5 of the
// reg-cluster paper: a background matrix of uniform random values in [0, 10)
// into which a number of perfect shifting-and-scaling clusters are embedded.
// Every embedded cluster is a valid reg-cluster with ε = 0 and the configured
// regulation threshold (γ = 0.15 by default, matching the paper), containing
// both p-members and n-members.
package synthetic

import (
	"fmt"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// Config parameterizes the generator. The paper's defaults are #g = 3000,
// #cond = 30, #clus = 30, average cluster dimensionality 6 and average
// cluster size 0.01 × #g.
type Config struct {
	// Genes (#g), Conds (#cond) and Clusters (#clus) are the three input
	// parameters varied by the Figure 7 efficiency experiments.
	Genes    int
	Conds    int
	Clusters int
	// AvgClusterGenes is the average number of member genes per embedded
	// cluster (p-members plus n-members). Defaults to max(4, Genes/100).
	AvgClusterGenes int
	// AvgDims is the average embedded subspace dimensionality. Defaults
	// to 6. Individual clusters use AvgDims-1 .. AvgDims+1.
	AvgDims int
	// GammaEmbed is the regulation threshold every embedded cluster is
	// guaranteed to satisfy (with margin). Defaults to 0.15.
	GammaEmbed float64
	// NegFraction is the expected fraction of n-members per cluster,
	// clamped so p-members always form the majority. Defaults to 0.3.
	NegFraction float64
	// BackgroundLo/Hi bound the uniform background noise. Default [0, 10).
	BackgroundLo, BackgroundHi float64
	// Seed drives the deterministic random source.
	Seed int64
}

// DefaultConfig returns the paper's default generator setting.
func DefaultConfig() Config {
	return Config{Genes: 3000, Conds: 30, Clusters: 30}
}

func (c *Config) fillDefaults() {
	if c.AvgClusterGenes == 0 {
		c.AvgClusterGenes = c.Genes / 100
		if c.AvgClusterGenes < 4 {
			c.AvgClusterGenes = 4
		}
	}
	if c.AvgDims == 0 {
		c.AvgDims = 6
	}
	if c.GammaEmbed == 0 {
		c.GammaEmbed = 0.15
	}
	if c.NegFraction == 0 {
		c.NegFraction = 0.3
	}
	if c.BackgroundLo == 0 && c.BackgroundHi == 0 {
		c.BackgroundHi = 10
	}
}

func (c Config) validate() error {
	if c.Genes <= 0 || c.Conds < 2 {
		return fmt.Errorf("synthetic: need Genes > 0 and Conds >= 2, got %d/%d", c.Genes, c.Conds)
	}
	if c.Clusters < 0 {
		return fmt.Errorf("synthetic: negative Clusters")
	}
	if c.GammaEmbed < 0 || c.GammaEmbed >= 0.5 {
		return fmt.Errorf("synthetic: GammaEmbed %v out of [0, 0.5)", c.GammaEmbed)
	}
	if c.NegFraction < 0 || c.NegFraction > 0.5 {
		return fmt.Errorf("synthetic: NegFraction %v out of [0, 0.5]", c.NegFraction)
	}
	if c.BackgroundHi <= c.BackgroundLo {
		return fmt.Errorf("synthetic: empty background range")
	}
	return nil
}

// Embedded records the ground truth of one planted cluster.
type Embedded struct {
	// Chain lists the condition indices in increasing order of the base
	// profile — the representative regulation chain the miner should find.
	Chain []int
	// PMembers rise along Chain; NMembers fall. Both ascending.
	PMembers []int
	NMembers []int
}

// Genes returns all member genes of the planted cluster, ascending.
func (e *Embedded) Genes() []int {
	out := make([]int, 0, len(e.PMembers)+len(e.NMembers))
	out = append(out, e.PMembers...)
	out = append(out, e.NMembers...)
	sort.Ints(out)
	return out
}

// Generate builds the synthetic dataset and returns it together with the
// ground-truth embedded clusters. The same Config (including Seed) always
// produces the same output.
func Generate(cfg Config) (*matrix.Matrix, []Embedded, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := matrix.New(cfg.Genes, cfg.Conds)
	bgSpan := cfg.BackgroundHi - cfg.BackgroundLo
	for i := 0; i < cfg.Genes; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = cfg.BackgroundLo + rng.Float64()*bgSpan
		}
	}

	// Gene pool sampled without replacement across clusters so the planted
	// clusters do not overwrite each other; when the pool runs dry it is
	// reshuffled (documented overlap for extreme settings).
	pool := rng.Perm(cfg.Genes)
	poolAt := 0
	takeGenes := func(n int) []int {
		out := make([]int, 0, n)
		for len(out) < n {
			if poolAt == len(pool) {
				pool = rng.Perm(cfg.Genes)
				poolAt = 0
			}
			out = append(out, pool[poolAt])
			poolAt++
		}
		return out
	}

	var truth []Embedded
	for k := 0; k < cfg.Clusters; k++ {
		dims := cfg.AvgDims - 1 + rng.Intn(3) // AvgDims ± 1
		if dims < 2 {
			dims = 2
		}
		if dims > cfg.Conds {
			dims = cfg.Conds
		}
		// Guarantee every step fraction exceeds GammaEmbed with ≥5% margin;
		// shrink the subspace if the dimensionality makes that impossible
		// (steps of a d-condition chain are d-1 fractions summing to 1).
		gammaT := cfg.GammaEmbed * 1.05
		for gammaT > 0 && float64(dims-1)*gammaT >= 0.999 {
			dims--
		}
		size := varyAround(rng, cfg.AvgClusterGenes, 0.3)
		if size < 2 {
			size = 2
		}
		nNeg := int(float64(size) * cfg.NegFraction)
		if 2*nNeg > size { // p-members must be the majority
			nNeg = size / 2
			if size%2 == 0 && nNeg > 0 {
				nNeg--
			}
		}

		chain := rng.Perm(cfg.Conds)[:dims]
		genes := takeGenes(size)
		emb := Embedded{Chain: append([]int(nil), chain...)}

		// Step fractions: near-uniform with bounded variation so the
		// minimum fraction stays above gammaT.
		fractions := stepFractions(rng, dims-1, gammaT)

		for gi, g := range genes {
			neg := gi < nNeg
			// Each member spans its own range covering the background band,
			// so the gene's full-row range equals its embedded range and the
			// per-step regulation margin is exactly the step fraction.
			span := bgSpan * (1.2 + rng.Float64()*1.0) // 1.2–2.2 × background
			lo := cfg.BackgroundLo - (span-bgSpan)*rng.Float64()
			cum := 0.0
			for s, c := range chain {
				if s > 0 {
					cum += fractions[s-1]
				}
				v := lo + cum*span
				if neg {
					v = lo + (1-cum)*span
				}
				m.Set(g, c, v)
			}
			if neg {
				emb.NMembers = append(emb.NMembers, g)
			} else {
				emb.PMembers = append(emb.PMembers, g)
			}
		}
		sort.Ints(emb.PMembers)
		sort.Ints(emb.NMembers)
		truth = append(truth, emb)
	}
	return m, truth, nil
}

// stepFractions returns n positive fractions summing to 1 whose minimum
// exceeds gammaT (assuming n*gammaT < 1, which Generate arranges).
func stepFractions(rng *rand.Rand, n int, gammaT float64) []float64 {
	if n <= 0 {
		return nil
	}
	// Allowed relative variation v keeps min ≥ 1/(n(1+v)) > gammaT.
	vMax := 0.0
	if gammaT > 0 {
		vMax = 1/(float64(n)*gammaT) - 1
	} else {
		vMax = 1.0
	}
	v := vMax * 0.8
	if v > 1 {
		v = 1
	}
	raw := make([]float64, n)
	sum := 0.0
	for i := range raw {
		raw[i] = 1 + rng.Float64()*v
		sum += raw[i]
	}
	for i := range raw {
		raw[i] /= sum
	}
	return raw
}

func varyAround(rng *rand.Rand, center int, rel float64) int {
	lo := float64(center) * (1 - rel)
	hi := float64(center) * (1 + rel)
	return int(lo + rng.Float64()*(hi-lo) + 0.5)
}
