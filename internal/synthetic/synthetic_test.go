package synthetic

import (
	"testing"

	"regcluster/internal/core"
)

func smallConfig(seed int64) Config {
	return Config{Genes: 200, Conds: 15, Clusters: 5, Seed: seed}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	m1, truth1, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Rows() != 200 || m1.Cols() != 15 {
		t.Fatalf("shape %dx%d", m1.Rows(), m1.Cols())
	}
	if len(truth1) != 5 {
		t.Fatalf("planted %d clusters, want 5", len(truth1))
	}
	m2, truth2, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Fatal("same seed must reproduce the same matrix")
	}
	if len(truth2) != len(truth1) {
		t.Fatal("same seed must reproduce the same truth")
	}
	m3, _, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Equal(m3) {
		t.Fatal("different seeds produced identical matrices")
	}
}

// TestEmbeddedClustersAreValidRegClusters: every planted cluster must pass
// the Definition 3.2 checker at the embedding threshold with ε = 0 — the
// paper's stated property of the generator.
func TestEmbeddedClustersAreValidRegClusters(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := smallConfig(seed)
		m, truth, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := core.Params{MinG: 2, MinC: 2, Gamma: 0.15, Epsilon: 1e-9}
		for k, e := range truth {
			b := &core.Bicluster{Chain: e.Chain, PMembers: e.PMembers, NMembers: e.NMembers}
			if err := core.CheckBicluster(m, p, b); err != nil {
				t.Errorf("seed %d cluster %d invalid: %v", seed, k, err)
			}
		}
	}
}

func TestEmbeddedClustersHaveBothMemberKinds(t *testing.T) {
	_, truth, err := Generate(Config{Genes: 300, Conds: 20, Clusters: 8, AvgClusterGenes: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, e := range truth {
		if len(e.PMembers) == 0 {
			t.Errorf("cluster %d has no p-members", k)
		}
		if len(e.NMembers) == 0 {
			t.Errorf("cluster %d has no n-members (NegFraction default 0.3, size 12)", k)
		}
		if len(e.PMembers) < len(e.NMembers) {
			t.Errorf("cluster %d: n-members outnumber p-members", k)
		}
	}
}

func TestPlantedGeneSetsAreDisjoint(t *testing.T) {
	_, truth, err := Generate(Config{Genes: 500, Conds: 20, Clusters: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range truth {
		for _, g := range e.Genes() {
			if seen[g] {
				t.Fatalf("gene %d planted in two clusters despite spare pool", g)
			}
			seen[g] = true
		}
	}
}

// TestMinerRecoversPlantedClusters is the end-to-end sanity check behind the
// Figure 7 experiments: mining at the paper's settings must rediscover every
// planted cluster (as a superset of its genes on its chain).
func TestMinerRecoversPlantedClusters(t *testing.T) {
	cfg := Config{Genes: 300, Conds: 15, Clusters: 4, AvgClusterGenes: 10, Seed: 4}
	m, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{MinG: 8, MinC: 5, Gamma: 0.1, Epsilon: 0.01}
	res, err := core.Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for k, e := range truth {
		if len(e.Chain) < p.MinC || len(e.Genes()) < p.MinG {
			continue // too small for these mining thresholds
		}
		if !covered(res.Clusters, e) {
			t.Errorf("planted cluster %d (chain %v, %d genes) not recovered", k, e.Chain, len(e.Genes()))
		}
	}
}

// covered reports whether some mined cluster contains all genes of e over at
// least MinC conditions of e's chain.
func covered(mined []*core.Bicluster, e Embedded) bool {
	want := map[int]bool{}
	for _, g := range e.Genes() {
		want[g] = true
	}
	for _, b := range mined {
		got := map[int]bool{}
		for _, g := range b.Genes() {
			got[g] = true
		}
		all := true
		for g := range want {
			if !got[g] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		// Chain containment: b's conditions ⊆ e's chain is not required
		// (the miner may extend), but they must share most conditions.
		share := 0
		eC := map[int]bool{}
		for _, c := range e.Chain {
			eC[c] = true
		}
		for _, c := range b.Chain {
			if eC[c] {
				share++
			}
		}
		if share >= len(e.Chain)-1 {
			return true
		}
	}
	return false
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Genes: 0, Conds: 10},
		{Genes: 10, Conds: 1},
		{Genes: 10, Conds: 10, Clusters: -1},
		{Genes: 10, Conds: 10, GammaEmbed: 0.6},
		{Genes: 10, Conds: 10, NegFraction: 0.9},
		{Genes: 10, Conds: 10, BackgroundLo: 5, BackgroundHi: 1},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Genes != 3000 || cfg.Conds != 30 || cfg.Clusters != 30 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
}

func TestBackgroundWithinBounds(t *testing.T) {
	cfg := Config{Genes: 50, Conds: 10, Clusters: 0, Seed: 7}
	m, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := m.MinMax()
	if min < 0 || max >= 10 {
		t.Fatalf("background out of [0,10): [%v, %v]", min, max)
	}
}

func TestStepFractionsRespectGamma(t *testing.T) {
	cfg := Config{Genes: 100, Conds: 12, Clusters: 6, AvgDims: 7, Seed: 5}
	m, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Even at dims up to 8 the generator must keep each cluster valid at the
	// embedding gamma (shrinking dims when necessary).
	p := core.Params{MinG: 2, MinC: 2, Gamma: 0.15, Epsilon: 1e-9}
	for k, e := range truth {
		b := &core.Bicluster{Chain: e.Chain, PMembers: e.PMembers, NMembers: e.NMembers}
		if err := core.CheckBicluster(m, p, b); err != nil {
			t.Errorf("cluster %d (dims %d): %v", k, len(e.Chain), err)
		}
	}
}
