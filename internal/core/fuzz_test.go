package core

import (
	"testing"

	"regcluster/internal/matrix"
)

// FuzzMine throws arbitrary small matrices and parameters at the miner: it
// must never panic, every output must satisfy Definition 3.2, and the
// optimized hot path must reproduce the frozen pre-optimization reference
// (reference_test.go) exactly — clusters, enumeration order, and Stats.
func FuzzMine(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, 3, uint8(10), uint8(50))
	f.Add([]byte{0, 0, 0, 0}, 2, uint8(0), uint8(0))
	f.Add([]byte{255, 0, 255, 0, 128, 7}, 2, uint8(99), uint8(255))
	f.Fuzz(func(t *testing.T, cells []byte, cols int, gammaB, epsB uint8) {
		if cols < 2 || cols > 6 || len(cells) < 2*cols {
			return
		}
		rows := len(cells) / cols
		if rows > 8 {
			rows = 8
		}
		m := matrix.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, float64(cells[i*cols+j]))
			}
		}
		p := Params{
			MinG:    2,
			MinC:    2,
			Gamma:   float64(gammaB%101) / 100,
			Epsilon: float64(epsB) / 16,
		}
		res, err := Mine(m, p)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		for _, b := range res.Clusters {
			if err := CheckBicluster(m, p, b); err != nil {
				t.Fatalf("invalid output %v: %v\nmatrix %v params %+v", b, err, m, p)
			}
		}
		// The zero-allocation path must be indistinguishable from the seed
		// semantics.
		ref, err := referenceMine(m, p)
		if err != nil {
			t.Fatalf("reference error: %v", err)
		}
		if !sameClustersExact(ref.Clusters, res.Clusters) {
			t.Fatalf("optimized diverged from reference: %d vs %d clusters", len(res.Clusters), len(ref.Clusters))
		}
		if ref.Stats != res.Stats {
			t.Fatalf("Stats diverged from reference:\nref %+v\ngot %+v", ref.Stats, res.Stats)
		}
		// Parallel must agree.
		par, err := MineParallel(m, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !sameClusterKeys(res.Clusters, par.Clusters) {
			t.Fatalf("parallel diverged: %d vs %d clusters", len(par.Clusters), len(res.Clusters))
		}
	})
}
