package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// naiveAppendClear is the per-id reference for condSet.appendClear.
func naiveAppendClear(s condSet, dst []int, n int) []int {
	for c := 0; c < n; c++ {
		if !s.has(c) {
			dst = append(dst, c)
		}
	}
	return dst
}

// TestCondSetAppendClear drives the word-at-a-time complement walk across
// the boundary cases a 64-bit word layout can get wrong: empty sets, full
// sets, and universe sizes just below, at, and above word multiples.
func TestCondSetAppendClear(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	sizes := []int{1, 2, 63, 64, 65, 127, 128, 129, 200}
	for _, n := range sizes {
		for trial := 0; trial < 20; trial++ {
			s := newCondSet(n)
			for c := 0; c < n; c++ {
				switch trial {
				case 0: // empty set: every id is free
				case 1: // full set: nothing is free
					s.set(c)
				default:
					if rng.Intn(2) == 0 {
						s.set(c)
					}
				}
			}
			got := s.appendClear(nil, n)
			want := naiveAppendClear(s, nil, n)
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("n=%d trial=%d: appendClear = %v, want %v", n, trial, got, want)
			}
			// Appending onto a prefix must preserve it.
			prefix := []int{-1, -2}
			got = s.appendClear(prefix, n)
			if !reflect.DeepEqual(got[:2], prefix[:2]) || !reflect.DeepEqual(got[2:], want) &&
				!(len(got) == 2 && len(want) == 0) {
				t.Fatalf("n=%d trial=%d: appendClear with prefix = %v", n, trial, got)
			}
		}
	}
}

// TestCondSetCopyFromZero checks the word-level bulk ops against per-id state.
func TestCondSetCopyFromZero(t *testing.T) {
	const n = 130
	rng := rand.New(rand.NewSource(82))
	src := newCondSet(n)
	for c := 0; c < n; c++ {
		if rng.Intn(3) == 0 {
			src.set(c)
		}
	}
	dst := newCondSet(n)
	dst.set(7) // stale state that copyFrom must overwrite
	dst.copyFrom(src)
	for c := 0; c < n; c++ {
		if dst.has(c) != src.has(c) {
			t.Fatalf("copyFrom: id %d differs", c)
		}
	}
	dst.zero()
	for c := 0; c < n; c++ {
		if dst.has(c) {
			t.Fatalf("zero: id %d still set", c)
		}
	}
}
