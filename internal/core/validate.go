package core

import (
	"fmt"

	"regcluster/internal/matrix"
)

// CheckBicluster verifies that b is a valid reg-cluster of m under p by
// testing Definition 3.2 directly from the raw expression values (without the
// RWave index): every p-member must be strictly up-regulated across every
// adjacent chain step, every n-member strictly down-regulated, and all member
// H scores per adjacent pair must agree within Epsilon. It also checks the
// MinG/MinC sizes and the representative-majority rule. A nil error means b
// is valid.
func CheckBicluster(m *matrix.Matrix, p Params, b *Bicluster) error {
	if g, c := b.Dims(); g < p.MinG || c < p.MinC {
		return fmt.Errorf("core: cluster %dx%d below MinG=%d/MinC=%d", g, c, p.MinG, p.MinC)
	}
	if len(b.PMembers) < len(b.NMembers) {
		return fmt.Errorf("core: %d p-members < %d n-members: not a representative chain",
			len(b.PMembers), len(b.NMembers))
	}
	gammaOf := func(g int) float64 {
		switch {
		case p.CustomGammas != nil:
			return p.CustomGammas[g]
		case p.AbsoluteGamma:
			return p.Gamma
		default:
			return p.Gamma * m.RowRange(g)
		}
	}
	for _, g := range b.PMembers {
		gi := gammaOf(g)
		for k := 0; k+1 < len(b.Chain); k++ {
			d := m.At(g, b.Chain[k+1]) - m.At(g, b.Chain[k])
			if d <= gi {
				return fmt.Errorf("core: p-member g%d step c%d→c%d rises %v, need > γ_i=%v",
					g, b.Chain[k], b.Chain[k+1], d, gi)
			}
		}
	}
	for _, g := range b.NMembers {
		gi := gammaOf(g)
		for k := 0; k+1 < len(b.Chain); k++ {
			d := m.At(g, b.Chain[k]) - m.At(g, b.Chain[k+1])
			if d <= gi {
				return fmt.Errorf("core: n-member g%d step c%d→c%d falls %v, need > γ_i=%v",
					g, b.Chain[k], b.Chain[k+1], d, gi)
			}
		}
	}
	// Coherence (Definition 3.2 condition 2): per adjacent pair, the H
	// scores of all members must lie within Epsilon of each other.
	genes := append(append([]int(nil), b.PMembers...), b.NMembers...)
	for k := 1; k+1 < len(b.Chain); k++ {
		lo, hi := 0.0, 0.0
		for idx, g := range genes {
			h := coherenceH(m, g, b.Chain[0], b.Chain[1], b.Chain[k], b.Chain[k+1])
			if idx == 0 {
				lo, hi = h, h
				continue
			}
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		if hi-lo > p.Epsilon {
			return fmt.Errorf("core: pair c%d→c%d H spread %v exceeds ε=%v",
				b.Chain[k], b.Chain[k+1], hi-lo, p.Epsilon)
		}
	}
	return nil
}

// coherenceH computes H(i, c1, c2, ck, ck1) of Equation 7:
// (d[i][ck1]-d[i][ck]) / (d[i][c2]-d[i][c1]).
func coherenceH(m *matrix.Matrix, gene, c1, c2, ck, ck1 int) float64 {
	return (m.At(gene, ck1) - m.At(gene, ck)) / (m.At(gene, c2) - m.At(gene, c1))
}

// CoherenceH is the exported Equation 7 score, used by the evaluation
// toolkit and the experiment harness.
func CoherenceH(m *matrix.Matrix, gene, c1, c2, ck, ck1 int) float64 {
	return coherenceH(m, gene, c1, c2, ck, ck1)
}
