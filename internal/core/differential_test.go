package core

// Differential tests: the optimized miner (scratch arena, bitsets,
// non-reflective sorts, hashed dedup) must reproduce the frozen seed
// implementation of reference_test.go exactly — same clusters, same
// depth-first enumeration order, same Stats — on randomized inputs, for
// every parameter combination, and through the parallel front-end at
// 1/2/8 workers (which must in turn match the sequential result even when
// truncated by the global caps).

import (
	"fmt"
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
)

// diffRandomMatrix draws a rows×cols matrix from a small integer value grid so
// that ties, shared steps and γ-boundary pairs — the cases where the sort
// order and the RWave pointer structure are most delicate — occur often.
func diffRandomMatrix(rng *rand.Rand, rows, cols int) *matrix.Matrix {
	m := matrix.New(rows, cols)
	levels := 2 + rng.Intn(8)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, float64(rng.Intn(levels)))
		}
	}
	return m
}

// diffParams is the parameter grid one random matrix is mined under.
func diffParams(rng *rand.Rand) []Params {
	base := []Params{
		{MinG: 2, MinC: 2, Gamma: 0.1, Epsilon: 0.25},
		{MinG: 2, MinC: 3, Gamma: 0, Epsilon: 0},
		{MinG: 3, MinC: 2, Gamma: 0.3, Epsilon: 1.5},
		{MinG: 2, MinC: 2, Gamma: 0.1, Epsilon: 0.25, NaiveCandidates: true},
		{MinG: 2, MinC: 2, Gamma: 0.2, Epsilon: 0.5, DisableChainLengthPruning: true},
		{MinG: 2, MinC: 2, Gamma: 0.2, Epsilon: 0.5, DisableMajorityPruning: true, DisableDedupPruning: true},
	}
	// Truncated runs must agree too: the caps trip at the same node/cluster.
	capped := base[rng.Intn(len(base))]
	capped.MaxNodes = 1 + rng.Intn(40)
	base = append(base, capped)
	capped2 := base[rng.Intn(len(base)-1)]
	capped2.MaxClusters = 1 + rng.Intn(4)
	return append(base, capped2)
}

func sameClustersExact(a, b []*Bicluster) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalInts(a[i].Chain, b[i].Chain) ||
			!equalInts(a[i].PMembers, b[i].PMembers) ||
			!equalInts(a[i].NMembers, b[i].NMembers) {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDifferential mines m under p with every front-end and fails the test
// on the first divergence from the reference oracle.
func checkDifferential(t *testing.T, m *matrix.Matrix, p Params, label string) {
	t.Helper()
	ref, err := referenceMine(m, p)
	if err != nil {
		t.Fatalf("%s: reference error: %v", label, err)
	}
	got, err := Mine(m, p)
	if err != nil {
		t.Fatalf("%s: optimized error: %v", label, err)
	}
	if !sameClustersExact(ref.Clusters, got.Clusters) {
		t.Fatalf("%s: optimized clusters diverge from reference\nref: %v\ngot: %v",
			label, ref.Clusters, got.Clusters)
	}
	if ref.Stats != got.Stats {
		t.Fatalf("%s: optimized Stats diverge\nref: %+v\ngot: %+v", label, ref.Stats, got.Stats)
	}
	for _, workers := range []int{1, 2, 8} {
		par, err := MineParallel(m, p, workers)
		if err != nil {
			t.Fatalf("%s: parallel(%d) error: %v", label, workers, err)
		}
		if !sameClustersExact(ref.Clusters, par.Clusters) {
			t.Fatalf("%s: parallel(%d) clusters diverge\nref: %v\ngot: %v",
				label, workers, ref.Clusters, par.Clusters)
		}
		if ref.Stats != par.Stats {
			t.Fatalf("%s: parallel(%d) Stats diverge\nref: %+v\ngot: %+v",
				label, workers, ref.Stats, par.Stats)
		}
	}
}

// TestDifferentialRandomMatrices is the main property test. It runs under
// -race in CI (make check), covering the parallel workers too.
func TestDifferentialRandomMatrices(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 8
	}
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < cases; i++ {
		rows := 2 + rng.Intn(9)
		cols := 2 + rng.Intn(6)
		m := diffRandomMatrix(rng, rows, cols)
		for pi, p := range diffParams(rng) {
			checkDifferential(t, m, p, fmt.Sprintf("case %d (%dx%d) params %d {%+v}", i, rows, cols, pi, p))
		}
	}
}

// TestDifferentialRunningExample pins the oracle to the paper's Table 1
// walk-through as a known-answer anchor (the random grid above could in
// principle miss the long-chain regime).
func TestDifferentialRunningExample(t *testing.T) {
	m := matrix.New(4, 7)
	// The Figure 1 / Table 1 running example values (see paperdata): 4 genes
	// x 7 conditions with one planted reg-cluster.
	vals := [][]float64{
		{1.5, 2.5, 3.0, 4.0, 5.0, 5.5, 6.5},
		{3.0, 5.0, 6.0, 8.0, 10.0, 11.0, 13.0},
		{13.0, 11.0, 10.0, 8.0, 6.0, 5.0, 3.0},
		{4.0, 2.0, 7.0, 1.0, 9.0, 3.0, 8.0},
	}
	for i, row := range vals {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	for _, p := range []Params{
		{MinG: 2, MinC: 3, Gamma: 0.1, Epsilon: 0.5},
		{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1},
		{MinG: 2, MinC: 4, Gamma: 0.05, Epsilon: 1.0, NaiveCandidates: true},
	} {
		checkDifferential(t, m, p, fmt.Sprintf("running-example {%+v}", p))
	}
}

// TestDifferentialNaNGamma exercises the γ=0 denormal/NonFiniteH path.
func TestDifferentialNaNGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		m := diffRandomMatrix(rng, 2+rng.Intn(6), 2+rng.Intn(5))
		p := Params{MinG: 2, MinC: 2, Gamma: 0, Epsilon: 0.5}
		checkDifferential(t, m, p, fmt.Sprintf("gamma0 case %d", i))
	}
}
