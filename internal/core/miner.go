package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// Result is the outcome of one Mine call.
type Result struct {
	Clusters []*Bicluster
	Stats    Stats
}

// member is one (gene, direction) entry of the current search node: up means
// the gene complies with the chain (p-member), otherwise with its inversion
// (n-member). At chain lengths 0 and 1 a gene may appear in both directions;
// from length 2 on the directions are mutually exclusive.
type member struct {
	gene int
	up   bool
}

// extMember is a member that survived a candidate extension, with its
// coherence score H(j, c_{k1}, c_{k2}, c_{km}, c_i) (Equation 7).
type extMember struct {
	member
	h float64
}

// Mine discovers all reg-clusters of m under p (Definition 3.2), returning
// them in deterministic depth-first enumeration order.
func Mine(m *matrix.Matrix, p Params) (*Result, error) {
	return MineContext(context.Background(), m, p)
}

// MineContext is Mine with cooperative cancellation: the search checks the
// context at every node and candidate boundary and, once it expires, stops
// promptly and returns the context's error. The cancellation point is not
// deterministic, so no partial result is returned.
func MineContext(ctx context.Context, m *matrix.Matrix, p Params) (*Result, error) {
	mn, err := mineSequential(ctx, m, p, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Clusters: mn.out, Stats: mn.stats}, nil
}

// mineSequential runs one single-threaded mining session. With a nil visitor
// the clusters accumulate on the returned miner's out slice; otherwise they
// stream to the visitor as MineFunc documents.
func mineSequential(ctx context.Context, m *matrix.Matrix, p Params, visit Visitor) (*miner, error) {
	models, err := prepare(m, p)
	if err != nil {
		return nil, err
	}
	mn := &miner{m: m, p: p, models: models, bud: newBudget(p, ctx), seen: make(map[string]bool)}
	if visit != nil {
		mn.sink = func(b *Bicluster, _ int) bool { return visit(b) }
	}
	mn.run()
	if err := mn.bud.contextErr(); err != nil {
		return nil, err
	}
	return mn, nil
}

// prepare validates the inputs and builds the per-gene RWave models.
func prepare(m *matrix.Matrix, p Params) ([]*rwave.Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.CustomGammas != nil && len(p.CustomGammas) != m.Rows() {
		return nil, fmt.Errorf("core: %d CustomGammas for %d genes", len(p.CustomGammas), m.Rows())
	}
	if m.HasNaN() {
		return nil, fmt.Errorf("core: matrix contains NaN cells; impute first (matrix.FillNaN)")
	}
	models := make([]*rwave.Model, m.Rows())
	for g := range models {
		switch {
		case p.CustomGammas != nil:
			models[g] = rwave.BuildAbsolute(m, g, p.CustomGammas[g])
		case p.AbsoluteGamma:
			models[g] = rwave.BuildAbsolute(m, g, p.Gamma)
		default:
			models[g] = rwave.Build(m, g, p.Gamma)
		}
	}
	return models, nil
}

type miner struct {
	m      *matrix.Matrix
	p      Params
	models []*rwave.Model
	bud    *budget         // global caps + cancellation, shared across workers
	seen   map[string]bool // pruning (3b) duplicate-state keys
	out    []*Bicluster
	// sink, when set, receives each cluster as it is found together with the
	// miner-local node ordinal of its emission (stats.Nodes at that moment),
	// instead of the cluster landing on out. Returning false stops this
	// miner like a cap trip.
	sink  func(b *Bicluster, node int) bool
	obs   *Observer // optional live progress counters, shared across workers
	stats Stats
	stop  bool // set when a cap fires, the sink stops, or the budget cancels
}

func (mn *miner) run() {
	for c := 0; c < mn.m.Cols() && !mn.stop; c++ {
		mn.runFrom(c)
	}
}

// runFrom mines the level-1 subtree rooted at starting condition c. Every
// gene joins in each direction it could sustain (pruning (2) estimates the
// reachable chain length as MaxUp/DownChainFrom).
func (mn *miner) runFrom(c int) {
	nGenes := mn.m.Rows()
	members := make([]member, 0, nGenes)
	for g := 0; g < nGenes; g++ {
		mod := mn.models[g]
		if mn.p.DisableChainLengthPruning || mod.MaxUpChainFrom(c) >= mn.p.MinC {
			members = append(members, member{g, true})
		} else {
			mn.stats.MembersDroppedByLength++
		}
		if mn.p.DisableChainLengthPruning || mod.MaxDownChainFrom(c) >= mn.p.MinC {
			members = append(members, member{g, false})
		} else {
			mn.stats.MembersDroppedByLength++
		}
	}
	mn.mineC2([]int{c}, members)
}

// mineC2 is the MineC² subroutine of Figure 5.
func (mn *miner) mineC2(chain []int, members []member) {
	if mn.stop || mn.bud.stopped() {
		mn.stop = true
		return
	}
	mn.stats.Nodes++
	if mn.obs != nil {
		mn.obs.nodes.Add(1)
	}
	if !mn.bud.chargeNode() {
		mn.stats.Truncated = true
		mn.stop = true
		return
	}

	// Pruning (1): not enough distinct genes.
	if distinctGenes(members) < mn.p.MinG {
		mn.stats.PrunedMinG++
		return
	}
	// Pruning (3a): p-members can never reach a majority in this subtree.
	pCount := 0
	for _, mb := range members {
		if mb.up {
			pCount++
		}
	}
	if !mn.p.DisableMajorityPruning && 2*pCount < mn.p.MinG {
		mn.stats.PrunedMajority++
		return
	}

	// Output test + pruning (3b).
	if len(chain) >= mn.p.MinC && mn.isRepresentative(chain, members, pCount) {
		b := mn.toBicluster(chain, members)
		key := b.Key()
		if mn.seen[key] {
			mn.stats.Duplicates++
			if !mn.p.DisableDedupPruning {
				return // the subtree rooted here was fully explored before
			}
		} else {
			mn.seen[key] = true
			mn.stats.Clusters++
			if mn.obs != nil {
				mn.obs.clusters.Add(1)
			}
			delivered := true
			if mn.sink != nil {
				delivered = mn.sink(b, mn.stats.Nodes)
			} else {
				mn.out = append(mn.out, b)
			}
			if !mn.bud.chargeCluster() || !delivered {
				mn.stats.Truncated = true
				mn.stop = true
				return
			}
		}
	}

	mn.extend(chain, members, pCount)
}

// extend generates candidate successor conditions for the chain tail and
// recurses into every validated sliding window.
func (mn *miner) extend(chain []int, members []member, pCount int) {
	last := chain[len(chain)-1]
	inChain := make(map[int]bool, len(chain))
	for _, c := range chain {
		inChain[c] = true
	}

	var candidates []int
	if mn.p.NaiveCandidates {
		for c := 0; c < mn.m.Cols(); c++ {
			if !inChain[c] {
				candidates = append(candidates, c)
			}
		}
	} else {
		// Scan only the regulation successors of the chain tail over the
		// p-members' RWave models (justified by pruning (3a): a candidate
		// supported by no p-member cannot lead to a representative chain).
		seen := make(map[int]bool)
		for _, mb := range members {
			if !mb.up {
				continue
			}
			mod := mn.models[mb.gene]
			for r := mod.SuccessorStartRank(last); r < mod.Conditions(); r++ {
				c := mod.Order(r)
				if !seen[c] && !inChain[c] {
					seen[c] = true
					candidates = append(candidates, c)
				}
			}
		}
		sort.Ints(candidates)
	}

	for _, ci := range candidates {
		if mn.stop || mn.bud.stopped() {
			mn.stop = true
			return
		}
		mn.stats.CandidatesExamined++
		ext := mn.matchCandidate(chain, members, last, ci)
		if len(ext) == 0 {
			continue
		}
		windows := maximalWindows(ext, mn.p.Epsilon, mn.p.MinG)
		if len(windows) == 0 {
			mn.stats.PrunedCoherence++
			continue
		}
		newChain := append(chain[:len(chain):len(chain)], ci)
		for _, w := range windows {
			nm := make([]member, 0, w[1]-w[0]+1)
			for k := w[0]; k <= w[1]; k++ {
				nm = append(nm, ext[k].member)
			}
			sortMembers(nm)
			mn.mineC2(newChain, nm)
		}
	}
}

// matchCandidate returns the members of the current node that extend to
// chain+ci — p-members for which ci is a regulation successor of the tail,
// n-members for which it is a regulation predecessor — each with its
// Equation 7 coherence score, sorted by score.
func (mn *miner) matchCandidate(chain []int, members []member, last, ci int) []extMember {
	chainLen := len(chain)
	var ext []extMember
	for _, mb := range members {
		mod := mn.models[mb.gene]
		if mb.up {
			if !mod.IsSuccessor(last, ci) {
				continue
			}
			if !mn.p.DisableChainLengthPruning && chainLen+mod.MaxUpChainFrom(ci) < mn.p.MinC {
				mn.stats.MembersDroppedByLength++
				continue
			}
		} else {
			if !mod.IsPredecessor(last, ci) {
				continue
			}
			if !mn.p.DisableChainLengthPruning && chainLen+mod.MaxDownChainFrom(ci) < mn.p.MinC {
				mn.stats.MembersDroppedByLength++
				continue
			}
		}
		h := 1.0
		if chainLen >= 2 {
			// Equation 7: relative step size against the baseline step of the
			// first two chain conditions. γ_i = 0 admits regulation steps of
			// denormal (or, for an externally supplied chain, zero) magnitude,
			// so the quotient can overflow to ±Inf or degenerate to NaN. A
			// non-finite score can never satisfy an ε-window with any other
			// member, and NaN would corrupt the sort below, so such members
			// are dropped here and counted in stats.NonFiniteH.
			base := mod.ValueOf(chain[1]) - mod.ValueOf(chain[0])
			h = (mod.ValueOf(ci) - mod.ValueOf(last)) / base
			if math.IsInf(h, 0) || math.IsNaN(h) {
				mn.stats.NonFiniteH++
				continue
			}
		}
		ext = append(ext, extMember{member{mb.gene, mb.up}, h})
	}
	sort.Slice(ext, func(a, b int) bool {
		if ext[a].h != ext[b].h {
			return ext[a].h < ext[b].h
		}
		if ext[a].gene != ext[b].gene {
			return ext[a].gene < ext[b].gene
		}
		return ext[a].up && !ext[b].up
	})
	return ext
}

// isRepresentative implements the canonical-direction rule: the chain whose
// compliant genes form the majority is the representative; ties go to the
// chain starting at the larger condition id.
func (mn *miner) isRepresentative(chain []int, members []member, pCount int) bool {
	nCount := len(members) - pCount
	if pCount != nCount {
		return pCount > nCount
	}
	return chain[0] > chain[len(chain)-1]
}

func (mn *miner) toBicluster(chain []int, members []member) *Bicluster {
	b := &Bicluster{Chain: append([]int(nil), chain...)}
	for _, mb := range members {
		if mb.up {
			b.PMembers = append(b.PMembers, mb.gene)
		} else {
			b.NMembers = append(b.NMembers, mb.gene)
		}
	}
	sort.Ints(b.PMembers)
	sort.Ints(b.NMembers)
	return b
}

// maximalWindows returns the index ranges [l, r] (inclusive) of all maximal
// sliding windows over the score-sorted ext slice whose H spread is at most
// eps and whose size is at least minLen.
func maximalWindows(ext []extMember, eps float64, minLen int) [][2]int {
	var out [][2]int
	r := 0
	prevR := -1
	for l := 0; l < len(ext); l++ {
		if r < l {
			r = l
		}
		for r+1 < len(ext) && ext[r+1].h-ext[l].h <= eps {
			r++
		}
		if r-l+1 >= minLen && r > prevR {
			out = append(out, [2]int{l, r})
			prevR = r
		}
	}
	return out
}

func sortMembers(ms []member) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].gene != ms[b].gene {
			return ms[a].gene < ms[b].gene
		}
		return ms[a].up && !ms[b].up
	})
}

func distinctGenes(ms []member) int {
	// ms is sorted by gene.
	n := 0
	prev := -1
	for _, mb := range ms {
		if mb.gene != prev {
			n++
			prev = mb.gene
		}
	}
	return n
}
