package core

import (
	"context"
	"fmt"
	"math"
	"slices"

	"regcluster/internal/matrix"
	"regcluster/internal/obs"
	"regcluster/internal/rwave"
)

// Result is the outcome of one Mine call.
type Result struct {
	Clusters []*Bicluster
	Stats    Stats
}

// member is one (gene, direction) entry of the current search node: up means
// the gene complies with the chain (p-member), otherwise with its inversion
// (n-member). At chain lengths 0 and 1 a gene may appear in both directions;
// from length 2 on the directions are mutually exclusive.
type member struct {
	gene int
	up   bool
}

// extMember is a member that survived a candidate extension, with its
// coherence score H(j, c_{k1}, c_{k2}, c_{km}, c_i) (Equation 7).
type extMember struct {
	member
	h float64
}

// Mine discovers all reg-clusters of m under p (Definition 3.2), returning
// them in deterministic depth-first enumeration order.
func Mine(m *matrix.Matrix, p Params) (*Result, error) {
	return MineContext(context.Background(), m, p)
}

// MineContext is Mine with cooperative cancellation: the search checks the
// context at every node and candidate boundary and, once it expires, stops
// promptly and returns the context's error. The cancellation point is not
// deterministic, so no partial result is returned.
func MineContext(ctx context.Context, m *matrix.Matrix, p Params) (*Result, error) {
	mn, err := mineSequential(ctx, m, p, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Clusters: mn.out, Stats: mn.stats}, nil
}

// mineSequential runs one single-threaded mining session. With a nil visitor
// the clusters accumulate on the returned miner's out slice; otherwise they
// stream to the visitor as MineFunc documents. A non-nil models slice reuses
// a prebuilt RWave index instead of building one (see BuildModels).
func mineSequential(ctx context.Context, m *matrix.Matrix, p Params, models []*rwave.Model, visit Visitor) (*miner, error) {
	_, kern, err := resolveModels(m, p, models, nil)
	if err != nil {
		return nil, err
	}
	mn := newMiner(m, p, kern, newBudget(p, ctx))
	if visit != nil {
		mn.sink = func(b *Bicluster, _ int) bool { return visit(b) }
	}
	mn.run()
	if err := mn.bud.contextErr(); err != nil {
		return nil, err
	}
	return mn, nil
}

// validateInputs checks everything that gates a mining run or an index build:
// the parameters themselves (including the non-finite fence), the per-gene
// threshold count, and the absence of unimputed NaN cells.
func validateInputs(m *matrix.Matrix, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.CustomGammas != nil && len(p.CustomGammas) != m.Rows() {
		return fmt.Errorf("core: %d CustomGammas for %d genes", len(p.CustomGammas), m.Rows())
	}
	if m.HasNaN() {
		return fmt.Errorf("core: matrix contains NaN cells; impute first (matrix.FillNaN)")
	}
	return nil
}

// prepare validates the inputs, builds the per-gene RWave models — fanning
// the construction out across CPUs for large gene counts (the models are
// independent per gene, and MineParallel shares the one resulting slice
// between all workers and reconciliation reruns) — and packs the fresh set
// into a contiguous ModelSlab (rwave.PackModels), so every downstream miner
// walks a few large cache-friendly backing arrays instead of ~nGenes
// scattered objects. When sp is non-nil the index construction is recorded
// as an "rwave.build" child span with per-chunk children; a nil sp costs
// nothing.
func prepare(m *matrix.Matrix, p Params, sp *obs.Span) ([]*rwave.Model, error) {
	if err := validateInputs(m, p); err != nil {
		return nil, err
	}
	bsp := sp.Start("rwave.build")
	models := rwave.BuildAllSpan(m.Rows(), func(g int) *rwave.Model {
		switch {
		case p.CustomGammas != nil:
			return rwave.BuildAbsolute(m, g, p.CustomGammas[g])
		case p.AbsoluteGamma:
			return rwave.BuildAbsolute(m, g, p.Gamma)
		default:
			return rwave.Build(m, g, p.Gamma)
		}
	}, bsp)
	// Packing rebinds the models' storage in place; it must happen here,
	// while the freshly built set is still exclusively ours. Prebuilt sets
	// arriving through resolveModels are already packed (they came from
	// BuildModels) and may be shared concurrently, so they are never
	// repacked.
	rwave.PackModels(models)
	bsp.End()
	return models, nil
}

// resolveModels is the single entry every miner front-end funnels through:
// with nil models it validates and builds (prepare); with a caller-supplied
// slice it still validates the inputs — the prebuilt index must have come
// from an equivalent BuildModels call, which these checks keep honest — and
// only verifies the gene count, since re-deriving the per-gene thresholds to
// cross-check each Model would cost as much as rebuilding. Alongside the
// models it returns their flat kernel views (rwave.Kernels), which every
// miner of the run shares read-only.
func resolveModels(m *matrix.Matrix, p Params, models []*rwave.Model, sp *obs.Span) ([]*rwave.Model, []rwave.Kernel, error) {
	if models == nil {
		built, err := prepare(m, p, sp)
		if err != nil {
			return nil, nil, err
		}
		return built, rwave.Kernels(built), nil
	}
	if err := validateInputs(m, p); err != nil {
		return nil, nil, err
	}
	if len(models) != m.Rows() {
		return nil, nil, fmt.Errorf("core: %d prebuilt models for %d genes", len(models), m.Rows())
	}
	return models, rwave.Kernels(models), nil
}

type miner struct {
	m     *matrix.Matrix
	p     Params
	kern  []rwave.Kernel // flat per-gene model views, shared read-only across the run
	bud   *budget        // global caps + cancellation, shared across workers
	dedup dedupSet       // pruning (3b) duplicate-state suppression
	out   []*Bicluster
	// sink, when set, receives each cluster as it is found together with the
	// miner-local node ordinal of its emission (stats.Nodes at that moment),
	// instead of the cluster landing on out. Returning false stops this
	// miner like a cap trip.
	sink  func(b *Bicluster, node int) bool
	obs   *Observer // optional live progress counters, shared across workers
	span  *obs.Span // optional trace parent: run() nests one span per subtree
	stats Stats
	stop  bool // set when a cap fires, the sink stops, or the budget cancels

	sc scratch // reusable hot-path working storage (see scratch.go)
}

// newMiner builds one mining session bound to the given (usually shared)
// budget. Every construction site must come through here so the scratch
// arena and dedup set are always initialized. kern is the run's shared flat
// view of the model set (resolveModels builds it once per run).
func newMiner(m *matrix.Matrix, p Params, kern []rwave.Kernel, bud *budget) *miner {
	return &miner{m: m, p: p, kern: kern, bud: bud, dedup: newDedupSet()}
}

func (mn *miner) run() {
	for c := 0; c < mn.m.Cols() && !mn.stop; c++ {
		if mn.span == nil {
			mn.runFrom(c)
			continue
		}
		sp := mn.span.Start("subtree")
		n0, k0 := mn.stats.Nodes, mn.stats.Clusters
		mn.runFrom(c)
		sp.SetInt("cond", int64(c))
		sp.Add("nodes", int64(mn.stats.Nodes-n0))
		sp.Add("clusters", int64(mn.stats.Clusters-k0))
		sp.End()
	}
}

// pushChain appends c to the chain stack and marks it in the membership
// bitset; popChain undoes exactly one push. Biclusters copy the chain on
// emission, so the stack never escapes.
func (mn *miner) pushChain(c int) {
	mn.sc.chain = append(mn.sc.chain, c)
	mn.sc.inChain.set(c)
}

func (mn *miner) popChain() {
	n := len(mn.sc.chain) - 1
	mn.sc.inChain.clear(mn.sc.chain[n])
	mn.sc.chain = mn.sc.chain[:n]
}

// runFrom mines the level-1 subtree rooted at starting condition c. Every
// gene joins in each direction it could sustain (pruning (2) estimates the
// reachable chain length as MaxUp/DownChainFrom), so the root member list
// can hold up to two entries per gene.
func (mn *miner) runFrom(c int) {
	mn.sc.ensure(mn.m.Rows(), mn.m.Cols())
	nGenes := mn.m.Rows()
	members := mn.sc.root[:0]
	for g := 0; g < nGenes; g++ {
		k := &mn.kern[g]
		r := k.Rank[c]
		if mn.p.DisableChainLengthPruning || k.UpLen[r] >= mn.p.MinC {
			members = append(members, member{g, true})
		} else {
			mn.stats.MembersDroppedByLength++
		}
		if mn.p.DisableChainLengthPruning || k.DownLen[r] >= mn.p.MinC {
			members = append(members, member{g, false})
		} else {
			mn.stats.MembersDroppedByLength++
		}
	}
	mn.pushChain(c)
	mn.mineC2(members)
	mn.popChain()
}

// mineC2 is the MineC² subroutine of Figure 5; the current chain lives on
// the miner's chain stack.
func (mn *miner) mineC2(members []member) {
	if mn.stop || mn.bud.stopped() {
		mn.stop = true
		return
	}
	mn.stats.Nodes++
	if mn.obs != nil {
		mn.obs.nodes.Add(1)
	}
	if !mn.bud.chargeNode() {
		mn.stats.Truncated = true
		mn.stop = true
		return
	}

	// Pruning (1): not enough distinct genes.
	if distinctGenes(members) < mn.p.MinG {
		mn.stats.PrunedMinG++
		return
	}
	// Pruning (3a): p-members can never reach a majority in this subtree.
	pCount := 0
	for _, mb := range members {
		if mb.up {
			pCount++
		}
	}
	if !mn.p.DisableMajorityPruning && 2*pCount < mn.p.MinG {
		mn.stats.PrunedMajority++
		return
	}

	// Output test + pruning (3b).
	if len(mn.sc.chain) >= mn.p.MinC && mn.isRepresentative(members, pCount) {
		b := mn.toBicluster(members)
		if !mn.dedup.add(b) {
			mn.stats.Duplicates++
			if !mn.p.DisableDedupPruning {
				return // the subtree rooted here was fully explored before
			}
		} else {
			mn.stats.Clusters++
			if mn.obs != nil {
				mn.obs.clusters.Add(1)
			}
			delivered := true
			if mn.sink != nil {
				delivered = mn.sink(b, mn.stats.Nodes)
			} else {
				mn.out = append(mn.out, b)
			}
			if !mn.bud.chargeCluster() || !delivered {
				mn.stats.Truncated = true
				mn.stop = true
				return
			}
		}
	}

	mn.extend(members, pCount)
}

// extend generates candidate successor conditions for the chain tail and
// recurses into every validated sliding window. All working storage comes
// from the depth's scratch frame; the chain stack grows by the candidate
// condition around each recursion.
func (mn *miner) extend(members []member, pCount int) {
	depth := len(mn.sc.chain)
	f := mn.sc.frame(depth)
	last := mn.sc.chain[depth-1]

	cand := f.cand[:0]
	if mn.p.NaiveCandidates {
		// Walk the chain bitset one 64-condition word at a time and emit the
		// complement: identical to testing every condition, at 1/64th the
		// branches.
		cand = mn.sc.inChain.appendClear(cand, mn.m.Cols())
	} else {
		// Scan only the regulation successors of the chain tail over the
		// p-members' RWave models (justified by pruning (3a): a candidate
		// supported by no p-member cannot lead to a representative chain).
		// Seeding the dedup bitset with the chain membership (one word-wise
		// copy) folds the two per-condition tests of the loop into one.
		seen := mn.sc.candSeen
		seen.copyFrom(mn.sc.inChain)
		for _, mb := range members {
			if !mb.up {
				continue
			}
			k := &mn.kern[mb.gene]
			order := k.Order
			for r := k.SuccStart[k.Rank[last]]; r < len(order); r++ {
				c := order[r]
				if !seen.has(c) {
					seen.set(c)
					cand = append(cand, c)
				}
			}
		}
		seen.zero() // leave the shared bitset empty for the next extend
		slices.Sort(cand)
	}
	f.cand = cand

	for _, ci := range cand {
		if mn.stop || mn.bud.stopped() {
			mn.stop = true
			return
		}
		mn.stats.CandidatesExamined++
		ext := mn.matchCandidate(members, last, ci, f)
		if len(ext) == 0 {
			continue
		}
		f.win = maximalWindows(f.win[:0], ext, mn.p.Epsilon, mn.p.MinG)
		if len(f.win) == 0 {
			mn.stats.PrunedCoherence++
			continue
		}
		mn.pushChain(ci)
		for _, w := range f.win {
			nm := f.nm[:0]
			for k := w[0]; k <= w[1]; k++ {
				nm = append(nm, ext[k].member)
			}
			sortMembers(nm)
			f.nm = nm
			mn.mineC2(nm)
		}
		mn.popChain()
	}
}

// matchCandidate returns the members of the current node that extend to
// chain+ci — p-members for which ci is a regulation successor of the tail,
// n-members for which it is a regulation predecessor — each with its
// Equation 7 coherence score, sorted by score. The result lives in the
// frame's extension buffer and is valid until the next call on that frame.
func (mn *miner) matchCandidate(members []member, last, ci int, f *frame) []extMember {
	chain := mn.sc.chain
	chainLen := len(chain)
	scored := chainLen >= 2
	var c0, c1 int
	if scored {
		c0, c1 = chain[0], chain[1]
	}
	prune := !mn.p.DisableChainLengthPruning
	minC := mn.p.MinC
	ext := f.ext[:0]
	for _, mb := range members {
		// Every test below is a flat array load on the gene's kernel view:
		// the Lemma 3.1 frontier (SuccStart/PredEnd) and the chain-length
		// bound (UpLen/DownLen) were memoized at build time, and the
		// Equation 7 values come from the condition-indexed row copy, so the
		// member loop does arithmetic, not binary searches.
		k := &mn.kern[mb.gene]
		rLast, rCi := k.Rank[last], k.Rank[ci]
		if mb.up {
			if rCi < k.SuccStart[rLast] {
				continue
			}
			if prune && chainLen+k.UpLen[rCi] < minC {
				mn.stats.MembersDroppedByLength++
				continue
			}
		} else {
			if rCi > k.PredEnd[rLast] {
				continue
			}
			if prune && chainLen+k.DownLen[rCi] < minC {
				mn.stats.MembersDroppedByLength++
				continue
			}
		}
		h := 1.0
		if scored {
			// Equation 7: relative step size against the baseline step of the
			// first two chain conditions. γ_i = 0 admits regulation steps of
			// denormal (or, for an externally supplied chain, zero) magnitude,
			// so the quotient can overflow to ±Inf or degenerate to NaN. A
			// non-finite score can never satisfy an ε-window with any other
			// member, and NaN would corrupt the sort below, so such members
			// are dropped here and counted in stats.NonFiniteH.
			v := k.ValueByCond
			base := v[c1] - v[c0]
			h = (v[ci] - v[last]) / base
			if math.IsInf(h, 0) || math.IsNaN(h) {
				mn.stats.NonFiniteH++
				continue
			}
		}
		ext = append(ext, extMember{member{mb.gene, mb.up}, h})
	}
	f.ext = ext
	sortExtMembers(ext)
	return ext
}

// isRepresentative implements the canonical-direction rule: the chain whose
// compliant genes form the majority is the representative; ties go to the
// chain starting at the larger condition id.
func (mn *miner) isRepresentative(members []member, pCount int) bool {
	nCount := len(members) - pCount
	if pCount != nCount {
		return pCount > nCount
	}
	chain := mn.sc.chain
	return chain[0] > chain[len(chain)-1]
}

// toBicluster materializes the current node as an escaping Bicluster.
// Members arrive sorted by (gene, direction), so the split member lists are
// already in ascending gene order.
func (mn *miner) toBicluster(members []member) *Bicluster {
	nP := 0
	for _, mb := range members {
		if mb.up {
			nP++
		}
	}
	b := &Bicluster{Chain: append(make([]int, 0, len(mn.sc.chain)), mn.sc.chain...)}
	// An empty member list stays nil, exactly as the seed's append-built
	// slices did: report JSON and checkpoint byte-equality depend on it.
	if nP > 0 {
		b.PMembers = make([]int, 0, nP)
	}
	if nN := len(members) - nP; nN > 0 {
		b.NMembers = make([]int, 0, nN)
	}
	for _, mb := range members {
		if mb.up {
			b.PMembers = append(b.PMembers, mb.gene)
		} else {
			b.NMembers = append(b.NMembers, mb.gene)
		}
	}
	return b
}

// maximalWindows appends to dst the index ranges [l, r] (inclusive) of all
// maximal sliding windows over the score-sorted ext slice whose H spread is
// at most eps and whose size is at least minLen.
func maximalWindows(dst [][2]int, ext []extMember, eps float64, minLen int) [][2]int {
	r := 0
	prevR := -1
	for l := 0; l < len(ext); l++ {
		if r < l {
			r = l
		}
		for r+1 < len(ext) && ext[r+1].h-ext[l].h <= eps {
			r++
		}
		if r-l+1 >= minLen && r > prevR {
			dst = append(dst, [2]int{l, r})
			prevR = r
		}
	}
	return dst
}

func distinctGenes(ms []member) int {
	// ms is sorted by gene.
	n := 0
	prev := -1
	for _, mb := range ms {
		if mb.gene != prev {
			n++
			prev = mb.gene
		}
	}
	return n
}
