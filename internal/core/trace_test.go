package core

import (
	"context"
	"testing"

	"regcluster/internal/obs"
)

// collectNodes flattens a span forest depth-first.
func collectNodes(nodes []*obs.Node) []*obs.Node {
	var out []*obs.Node
	for _, n := range nodes {
		out = append(out, n)
		out = append(out, collectNodes(n.Children)...)
	}
	return out
}

func tracedMine(t *testing.T, workers int, maxNodes int) (*obs.Node, Stats) {
	t.Helper()
	m := randomMatrix(40, 8, 7)
	p := Params{MinG: 2, MinC: 2, Gamma: 0.1, MaxNodes: maxNodes}
	tr := obs.New()
	root := tr.Start("mine")
	var ob Observer
	ob.SetSpan(root)
	st, err := MineParallelFuncObserved(context.Background(), m, p, workers, func(*Bicluster) bool { return true }, &ob)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	root.End()
	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("got %d roots, want 1", len(tree))
	}
	return tree[0], st
}

// TestTracedMineSpanTree checks the span taxonomy of an observed run: the
// attached parent span gains an rwave.build child (with per-chunk children)
// and one subtree span per starting condition whose nodes counters sum to
// the run's Stats.
func TestTracedMineSpanTree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		root, st := tracedMine(t, workers, 0)
		all := collectNodes([]*obs.Node{root})
		byName := map[string][]*obs.Node{}
		for _, n := range all {
			byName[n.Name] = append(byName[n.Name], n)
			if !n.Done {
				t.Fatalf("workers=%d: span %q left open", workers, n.Name)
			}
		}
		if len(byName["rwave.build"]) != 1 {
			t.Fatalf("workers=%d: got %d rwave.build spans, want 1", workers, len(byName["rwave.build"]))
		}
		if len(byName["rwave.chunk"]) == 0 {
			t.Fatalf("workers=%d: no rwave.chunk spans", workers)
		}
		subs := byName["subtree"]
		if len(subs) != 8 {
			t.Fatalf("workers=%d: got %d subtree spans, want 8", workers, len(subs))
		}
		conds := map[string]bool{}
		var nodes, clusters int64
		for _, s := range subs {
			conds[s.Attrs["cond"]] = true
			nodes += s.Counters["nodes"]
			clusters += s.Counters["clusters"]
		}
		if len(conds) != 8 {
			t.Fatalf("workers=%d: subtree conds not distinct: %v", workers, conds)
		}
		if nodes != int64(st.Nodes) || clusters != int64(st.Clusters) {
			t.Fatalf("workers=%d: subtree counters %d/%d != stats %d/%d",
				workers, nodes, clusters, st.Nodes, st.Clusters)
		}
	}
}

// TestTracedMineBudgetTrip checks that a truncated run records a budget trip
// on the parent span (workers=1 hits the sequential branch; workers>1 hits
// the emitter's truncate path, which also runs a reconciliation rerun).
func TestTracedMineBudgetTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		root, st := tracedMine(t, workers, 20)
		if !st.Truncated {
			t.Fatalf("workers=%d: run not truncated at MaxNodes=20", workers)
		}
		trips := root.Counters["budget_trips"]
		for _, n := range collectNodes(root.Children) {
			trips += n.Counters["budget_trips"]
		}
		if trips == 0 {
			t.Fatalf("workers=%d: no budget_trips counter recorded", workers)
		}
		if workers > 1 {
			reruns := 0
			for _, n := range collectNodes([]*obs.Node{root}) {
				if n.Name == "rerun" {
					reruns++
				}
			}
			if reruns == 0 {
				t.Fatal("parallel truncated run recorded no rerun span")
			}
		}
	}
}

// TestNoopObserverAddsNoAllocs pins the acceptance criterion of the tracing
// layer: mining through an Observer with no span attached allocates exactly
// as much as mining without one, so the disabled path keeps the
// zero-allocation hot-path guarantee.
func TestNoopObserverAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	m := randomMatrix(30, 6, 11)
	p := Params{MinG: 2, MinC: 2, Gamma: 0.1}
	visit := func(*Bicluster) bool { return true }
	ctx := context.Background()
	plain := testing.AllocsPerRun(10, func() {
		if _, err := MineParallelFuncContext(ctx, m, p, 1, visit); err != nil {
			t.Fatal(err)
		}
	})
	var ob Observer
	observed := testing.AllocsPerRun(10, func() {
		if _, err := MineParallelFuncObserved(ctx, m, p, 1, visit, &ob); err != nil {
			t.Fatal(err)
		}
	})
	// Identical work; allow a whisper of slack for runtime-internal noise.
	if observed > plain+1 {
		t.Fatalf("span-less Observer added allocations: %.1f with vs %.1f without", observed, plain)
	}
}

// BenchmarkMineNoopTracer measures the mining path through a span-less
// Observer — the configuration every production caller gets with tracing
// off. Compare allocs/op against BenchmarkMineParallel/sequential to see
// the (intended: zero) cost of the instrumentation points.
func BenchmarkMineNoopTracer(b *testing.B) {
	m := randomMatrix(60, 10, 3)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.1}
	visit := func(*Bicluster) bool { return true }
	ctx := context.Background()
	var ob Observer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineParallelFuncObserved(ctx, m, p, 1, visit, &ob); err != nil {
			b.Fatal(err)
		}
	}
}
