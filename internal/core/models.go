package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// The RWave^γ index (Section 3, Lemma 3.1) depends only on the expression
// matrix and the per-gene regulation thresholds γ_i — not on ε, MinG, MinC or
// the budget caps. Parameter sweeps that vary only those knobs can therefore
// build the index once and re-mine many times; this file is that surface:
// BuildModels constructs a shareable model set, ModelKey names it
// canonically, and the Mine*WithModels entry points accept it.

// RWaveModel aliases rwave.Model so callers above internal/ (the facade, the
// service layer) can hold and exchange prebuilt model sets without importing
// the index package directly.
type RWaveModel = rwave.Model

// BuildModels validates (m, p) and constructs the per-gene RWave models that
// Mine would build internally, fanning the construction across CPUs for large
// gene counts. The result is immutable after construction and safe to share:
// between concurrent Mine*WithModels calls, across worker pools, and across
// any number of runs whose parameters agree on the γ-scheme — i.e. have the
// same ModelKey. Varying Epsilon, MinG, MinC, the caps, or the ablation
// switches does not invalidate a model set.
//
// A non-nil Observer with an attached span records the construction as an
// "rwave.build" child span, exactly as a plain Mine run would.
func BuildModels(m *matrix.Matrix, p Params, o *Observer) ([]*rwave.Model, error) {
	return prepare(m, p, o.traceSpan())
}

// ModelKey returns the canonical cache identity of the RWave model set that
// BuildModels(m, p) produces, for a matrix identified by datasetHash (any
// stable content identifier; the service uses the registry's content hash).
// Two (dataset, Params) pairs share a key exactly when they share a model
// set. The γ-values are encoded by their IEEE-754 bit patterns, so the key is
// total — defined even for non-finite values that Validate rejects — and
// never conflates 0 with -0 or distinct NaNs with numbers.
func ModelKey(datasetHash string, p Params) string {
	var scheme string
	switch {
	case p.CustomGammas != nil:
		h := sha256.New()
		var buf [8]byte
		for _, v := range p.CustomGammas {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		scheme = "custom:" + hex.EncodeToString(h.Sum(nil))
	case p.AbsoluteGamma:
		scheme = fmt.Sprintf("abs:%016x", math.Float64bits(p.Gamma))
	default:
		scheme = fmt.Sprintf("rel:%016x", math.Float64bits(p.Gamma))
	}
	return datasetHash + "|" + scheme
}

// MineWithModels is Mine reusing a prebuilt model set: models must come from
// a BuildModels call on the same matrix with a ModelKey-equivalent Params.
// Output is byte-identical to Mine(m, p).
func MineWithModels(m *matrix.Matrix, p Params, models []*rwave.Model) (*Result, error) {
	mn, err := mineSequential(context.Background(), m, p, models, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Clusters: mn.out, Stats: mn.stats}, nil
}

// MineParallelWithModels is MineParallel reusing a prebuilt model set, with
// the same determinism guarantee: results are identical to Mine's for any
// worker count.
func MineParallelWithModels(m *matrix.Matrix, p Params, workers int, models []*rwave.Model) (*Result, error) {
	res := &Result{}
	stats, err := mineParallelOpts(nil, m, p, workers, func(b *Bicluster) bool {
		res.Clusters = append(res.Clusters, b)
		return true
	}, mineOpts{models: models})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// MineParallelFuncResumableWithModels is MineParallelFuncResumable reusing a
// prebuilt model set: the full-option streaming entry (cancellation, live
// progress, checkpoint/resume) for callers that amortize the RWave build
// across jobs — the service's model cache in particular.
func MineParallelFuncResumableWithModels(ctx context.Context, m *matrix.Matrix, p Params, workers int, visit Visitor, obs *Observer, resume *Checkpoint, ck CheckpointConfig, models []*rwave.Model) (Stats, error) {
	if resume != nil {
		if err := resume.Validate(m.Cols()); err != nil {
			return Stats{}, err
		}
	}
	return mineParallelOpts(ctx, m, p, workers, visit, mineOpts{obs: obs, resume: resume, ck: ck, models: models})
}
