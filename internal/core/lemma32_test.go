package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"regcluster/internal/matrix"
)

// TestLemma32Forward: if d_i = s1·d_j + s2 then all adjacent-pair H scores
// agree exactly (the "only if" direction of Lemma 3.2).
func TestLemma32Forward(t *testing.T) {
	f := func(vals [6]float64, s1f, s2f float64) bool {
		s1 := math.Mod(math.Abs(s1f), 10) + 0.1 // bounded, non-zero
		if s1f < 0 {
			s1 = -s1
		}
		s2 := math.Mod(s2f, 100)
		base := make([]float64, 6)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			base[i] = math.Mod(v, 50)
		}
		// Need strictly distinct sorted values for well-defined chains.
		for i := range base {
			base[i] += float64(i) * 100 // force strict increase
		}
		m := matrix.New(2, 6)
		for c, v := range base {
			m.Set(0, c, v)
			m.Set(1, c, s1*v+s2)
		}
		chain := []int{0, 1, 2, 3, 4, 5}
		for k := 1; k+1 < len(chain); k++ {
			h0 := coherenceH(m, 0, chain[0], chain[1], chain[k], chain[k+1])
			h1 := coherenceH(m, 1, chain[0], chain[1], chain[k], chain[k+1])
			if math.Abs(h0-h1) > 1e-9*math.Max(1, math.Abs(h0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma32Backward: if all adjacent-pair H scores agree (ε = 0) then the
// two profiles are affinely related on the chain — recover s1 and s2 from
// the baseline pair and verify every other condition (the "if" direction).
func TestLemma32Backward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(4)
		// Build gene j with strictly increasing values, then gene i with the
		// SAME H profile but constructed step-by-step (not via an explicit
		// affine map): equality of H scores must force the affine relation.
		dj := make([]float64, n)
		dj[0] = rng.Float64() * 10
		for k := 1; k < n; k++ {
			dj[k] = dj[k-1] + 0.5 + rng.Float64()*5
		}
		baseI0 := rng.Float64() * 20
		baseStep := 0.5 + rng.Float64()*5 // d_i's first step
		di := make([]float64, n)
		di[0] = baseI0
		di[1] = baseI0 + baseStep
		for k := 1; k+1 < n; k++ {
			h := (dj[k+1] - dj[k]) / (dj[1] - dj[0])
			di[k+1] = di[k] + h*(di[1]-di[0])
		}
		// Now verify: s1 = Δi/Δj over the baseline, s2 = di0 − s1·dj0, and
		// di == s1·dj + s2 everywhere.
		s1 := (di[1] - di[0]) / (dj[1] - dj[0])
		s2 := di[0] - s1*dj[0]
		for k := 0; k < n; k++ {
			want := s1*dj[k] + s2
			if math.Abs(di[k]-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d: Lemma 3.2 backward failed at k=%d: %v vs %v",
					trial, k, di[k], want)
			}
		}
	}
}

// TestLemma32NegativeScaling: the equivalence holds for negative s1 with the
// n-member reading (values fall along the chain but H stays equal).
func TestLemma32NegativeScaling(t *testing.T) {
	base := []float64{2, 5, 9, 14, 20}
	m := matrix.New(2, 5)
	for c, v := range base {
		m.Set(0, c, v)
		m.Set(1, c, -2.5*v+100)
	}
	chain := []int{0, 1, 2, 3, 4}
	for k := 1; k+1 < len(chain); k++ {
		h0 := coherenceH(m, 0, chain[0], chain[1], chain[k], chain[k+1])
		h1 := coherenceH(m, 1, chain[0], chain[1], chain[k], chain[k+1])
		if math.Abs(h0-h1) > 1e-12 {
			t.Fatalf("pair %d: H %v vs %v", k, h0, h1)
		}
		if h0 <= 0 {
			t.Fatalf("H must stay positive for both orientations, got %v", h0)
		}
	}
}
