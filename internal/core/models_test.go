package core

import (
	"math"
	"reflect"
	"testing"
)

// TestWithModelsEquivalence: mining with a prebuilt model set must reproduce
// the plain Mine output exactly — clusters and Stats — sequentially and in
// parallel, for each γ-scheme.
func TestWithModelsEquivalence(t *testing.T) {
	m := randomMatrix(40, 10, 99)
	schemes := []struct {
		name string
		p    Params
	}{
		{"relative", Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.8}},
		{"absolute", Params{MinG: 3, MinC: 3, Gamma: 0.4, Epsilon: 0.8, AbsoluteGamma: true}},
		{"custom", Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.8,
			CustomGammas: ThresholdsMeanFraction(randomMatrix(40, 10, 99), 0.05)}},
	}
	for _, tc := range schemes {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Mine(m, tc.p)
			if err != nil {
				t.Fatalf("Mine: %v", err)
			}
			models, err := BuildModels(m, tc.p, nil)
			if err != nil {
				t.Fatalf("BuildModels: %v", err)
			}
			// The shared build serves runs that vary every non-γ knob.
			variants := []Params{tc.p}
			eps := tc.p
			eps.Epsilon = 0.5
			variants = append(variants, eps)
			for _, p := range variants {
				seqWant, err := Mine(m, p)
				if err != nil {
					t.Fatalf("Mine variant: %v", err)
				}
				got, err := MineWithModels(m, p, models)
				if err != nil {
					t.Fatalf("MineWithModels: %v", err)
				}
				if !reflect.DeepEqual(got, seqWant) {
					t.Fatalf("MineWithModels diverges from Mine (ε=%v)", p.Epsilon)
				}
				par, err := MineParallelWithModels(m, p, 4, models)
				if err != nil {
					t.Fatalf("MineParallelWithModels: %v", err)
				}
				if !reflect.DeepEqual(par, seqWant) {
					t.Fatalf("MineParallelWithModels diverges from Mine (ε=%v)", p.Epsilon)
				}
			}
			_ = want
		})
	}
}

// TestWithModelsResumable: the resumable entry accepts a shared build and
// still matches the sequential run.
func TestWithModelsResumable(t *testing.T) {
	m := randomMatrix(30, 9, 5)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.8}
	want, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	models, err := BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Bicluster
	stats, err := MineParallelFuncResumableWithModels(nil, m, p, 3, func(b *Bicluster) bool {
		got = append(got, b)
		return true
	}, nil, nil, CheckpointConfig{}, models)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Clusters) || !reflect.DeepEqual(stats, want.Stats) {
		t.Fatal("resumable WithModels run diverges from Mine")
	}
}

// TestWithModelsRejectsBadInputs: a prebuilt model set does not bypass input
// validation, and a gene-count mismatch is caught.
func TestWithModelsRejectsBadInputs(t *testing.T) {
	m := randomMatrix(20, 8, 1)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.8}
	models, err := BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Epsilon = math.NaN()
	if _, err := MineWithModels(m, bad, models); err == nil {
		t.Error("non-finite Epsilon accepted via WithModels")
	}
	if _, err := MineWithModels(m, p, models[:10]); err == nil {
		t.Error("model/gene count mismatch accepted")
	}
	if _, err := MineParallelWithModels(m, p, 2, models[:10]); err == nil {
		t.Error("model/gene count mismatch accepted by parallel entry")
	}
	if _, err := BuildModels(m, bad, nil); err == nil {
		t.Error("BuildModels accepted non-finite Epsilon")
	}
}

// TestModelKey pins the canonical key semantics: identity on the γ-scheme
// only, sensitivity to everything that changes the index.
func TestModelKey(t *testing.T) {
	base := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.8}
	key := ModelKey("ds1", base)

	// ε/MinG/MinC/caps/ablations do not change the key.
	same := base
	same.Epsilon = 2.5
	same.MinG, same.MinC = 10, 5
	same.MaxClusters, same.MaxNodes = 7, 7
	same.NaiveCandidates = true
	if got := ModelKey("ds1", same); got != key {
		t.Errorf("non-γ knobs changed the key: %q vs %q", got, key)
	}

	// Everything that changes the index changes the key.
	diff := map[string]Params{
		"gamma":    {Gamma: 0.06},
		"absolute": {Gamma: 0.05, AbsoluteGamma: true},
		"custom":   {Gamma: 0.05, CustomGammas: []float64{1, 2}},
	}
	seen := map[string]string{"base": key}
	for name, p := range diff {
		p.MinG, p.MinC, p.Epsilon = 3, 3, 0.8
		k := ModelKey("ds1", p)
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("ModelKey(%s) == ModelKey(%s)", name, prev)
			}
		}
		seen[name] = k
	}
	if ModelKey("ds2", base) == key {
		t.Error("dataset hash not part of the key")
	}

	// Same relative vs absolute γ value must not collide; custom digests are
	// order- and value-sensitive.
	if ModelKey("d", Params{Gamma: 0.1}) == ModelKey("d", Params{Gamma: 0.1, AbsoluteGamma: true}) {
		t.Error("rel/abs scheme collision")
	}
	c1 := ModelKey("d", Params{CustomGammas: []float64{1, 2}})
	c2 := ModelKey("d", Params{CustomGammas: []float64{2, 1}})
	if c1 == c2 {
		t.Error("custom digest ignores order")
	}

	// Total even on non-finite values (Validate rejects them upstream, but
	// the key function itself must never panic or conflate).
	n1 := ModelKey("d", Params{Gamma: math.NaN()})
	n2 := ModelKey("d", Params{Gamma: math.Inf(1)})
	if n1 == n2 || n1 == ModelKey("d", Params{Gamma: 0}) {
		t.Error("non-finite γ values conflated")
	}
}
