package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"regcluster/internal/matrix"
	"regcluster/internal/obs"
)

// Observer exposes live progress counters of an in-flight mining run. All
// methods are safe for concurrent use; a server can poll an Observer from a
// status endpoint while the miners run. The counters are monotone and
// *approximate* accounting of work in flight: on a truncated run the workers
// may briefly overshoot the exact sequential totals before cancellation
// reaches them, so the authoritative numbers remain the Stats returned when
// the run finishes. An uncapped, uninterrupted run ends with Nodes/Clusters
// equal to the final Stats.
type Observer struct {
	nodes    atomic.Int64
	clusters atomic.Int64
	span     atomic.Pointer[obs.Span]
}

// Nodes returns the number of search-tree nodes visited so far.
func (o *Observer) Nodes() int64 { return o.nodes.Load() }

// Clusters returns the number of clusters emitted by workers so far.
func (o *Observer) Clusters() int64 { return o.clusters.Load() }

// SetSpan attaches a parent tracing span: the next mining run started with
// this Observer records its phase spans (RWave index construction with
// per-chunk children, per-subtree enumeration, reconciliation reruns) and
// counters (checkpoints, budget trips) as children of sp. Store nil to
// detach. With no span attached — the default — the instrumentation degrades
// to nil no-ops that allocate nothing, preserving the zero-allocation hot
// path. Call between runs, not mid-run: miners read the span once at start.
func (o *Observer) SetSpan(sp *obs.Span) { o.span.Store(sp) }

// TraceSpan returns the currently attached span (nil when tracing is off);
// nil-safe on a nil Observer. Callers that route mining through an external
// engine — e.g. a distributed coordinator — use it to parent that engine's
// spans under the same attempt span SetSpan armed.
func (o *Observer) TraceSpan() *obs.Span { return o.traceSpan() }

// traceSpan returns the attached span; nil-safe on a nil Observer.
func (o *Observer) traceSpan() *obs.Span {
	if o == nil {
		return nil
	}
	return o.span.Load()
}

// MineParallelFuncContext is MineParallelFunc with cooperative cancellation:
// every worker observes ctx at node and candidate boundaries, and once it
// expires the call stops promptly and returns the context's error. Delivery
// order and truncation semantics are otherwise identical to MineParallelFunc.
func MineParallelFuncContext(ctx context.Context, m *matrix.Matrix, p Params, workers int, visit Visitor) (Stats, error) {
	return mineParallel(ctx, m, p, workers, visit, nil)
}

// MineParallelFuncObserved is MineParallelFuncContext with live progress
// reporting: the miners increment obs (when non-nil) as they visit nodes and
// emit clusters, so concurrent readers can watch the run advance.
func MineParallelFuncObserved(ctx context.Context, m *matrix.Matrix, p Params, workers int, visit Visitor, obs *Observer) (Stats, error) {
	return mineParallel(ctx, m, p, workers, visit, obs)
}

// ValidateWorkers reports whether a caller-supplied worker count is usable.
// Zero and negative counts are valid and select GOMAXPROCS (the documented
// Mine* convention) — except that servers accepting untrusted requests
// usually want a ceiling: a positive max rejects counts above it. Use it
// wherever a worker count crosses an API boundary (CLI flags, service
// submissions) so the error message is uniform.
func ValidateWorkers(workers, max int) error {
	if max > 0 && workers > max {
		return fmt.Errorf("core: %d workers exceeds the limit of %d", workers, max)
	}
	return nil
}
