package core

import (
	"reflect"
	"testing"

	"regcluster/internal/paperdata"
)

func TestMineFuncMatchesMine(t *testing.T) {
	m := randomMatrix(40, 9, 13)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Bicluster
	stats, err := MineFunc(m, p, func(b *Bicluster) bool {
		streamed = append(streamed, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Clusters) {
		t.Fatalf("streamed %d, accumulated %d", len(streamed), len(res.Clusters))
	}
	for i := range streamed {
		if streamed[i].Key() != res.Clusters[i].Key() {
			t.Fatalf("order diverged at %d", i)
		}
	}
	if stats.Clusters != res.Stats.Clusters || stats.Nodes != res.Stats.Nodes {
		t.Errorf("stats diverged: %+v vs %+v", stats, res.Stats)
	}
}

func TestMineFuncEarlyStop(t *testing.T) {
	m := randomMatrix(40, 9, 13)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	full, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Clusters) < 3 {
		t.Skip("not enough clusters on this seed")
	}
	var streamed []*Bicluster
	stats, err := MineFunc(m, p, func(b *Bicluster) bool {
		streamed = append(streamed, b)
		return len(streamed) < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 3 {
		t.Fatalf("streamed %d after early stop", len(streamed))
	}
	if !stats.Truncated {
		t.Error("early stop should mark Truncated")
	}
	// The prefix property.
	for i := range streamed {
		if streamed[i].Key() != full.Clusters[i].Key() {
			t.Fatal("streamed prefix diverged")
		}
	}
}

func TestMineFuncRunningExample(t *testing.T) {
	m := paperdata.RunningExample()
	var got []*Bicluster
	_, err := MineFunc(m, runningParams(), func(b *Bicluster) bool {
		got = append(got, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Chain, paperdata.RunningExampleChain()) {
		t.Fatalf("streamed result wrong: %v", got)
	}
}

func TestMineFuncValidation(t *testing.T) {
	m := paperdata.RunningExample()
	if _, err := MineFunc(m, Params{MinG: 0, MinC: 2, Gamma: 0.1}, func(*Bicluster) bool { return true }); err == nil {
		t.Fatal("invalid params accepted")
	}
}
