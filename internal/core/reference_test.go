package core

// This file freezes the PRE-OPTIMIZATION Figure 5 miner — the seed
// implementation as it stood before the zero-allocation hot-path rewrite:
// per-node maps for chain membership and candidate dedup, reflective
// sort.Slice/sort.Ints calls, per-level chain slice copies, and duplicate
// suppression keyed by the materialized Bicluster.Key() string. It exists
// solely as the differential-testing oracle: the optimized miner must
// reproduce its clusters, enumeration order, and Stats bit for bit (see
// differential_test.go). Do NOT optimize this copy.

import (
	"math"
	"sort"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

type refMiner struct {
	m      *matrix.Matrix
	p      Params
	models []*rwave.Model
	bud    *budget
	seen   map[string]bool
	out    []*Bicluster
	stats  Stats
	stop   bool
}

// referenceMine is the frozen equivalent of Mine.
func referenceMine(m *matrix.Matrix, p Params) (*Result, error) {
	models, err := prepare(m, p, nil)
	if err != nil {
		return nil, err
	}
	mn := &refMiner{m: m, p: p, models: models, bud: newBudget(p, nil), seen: make(map[string]bool)}
	for c := 0; c < m.Cols() && !mn.stop; c++ {
		mn.runFrom(c)
	}
	return &Result{Clusters: mn.out, Stats: mn.stats}, nil
}

func (mn *refMiner) runFrom(c int) {
	nGenes := mn.m.Rows()
	members := make([]member, 0, nGenes)
	for g := 0; g < nGenes; g++ {
		mod := mn.models[g]
		if mn.p.DisableChainLengthPruning || mod.MaxUpChainFrom(c) >= mn.p.MinC {
			members = append(members, member{g, true})
		} else {
			mn.stats.MembersDroppedByLength++
		}
		if mn.p.DisableChainLengthPruning || mod.MaxDownChainFrom(c) >= mn.p.MinC {
			members = append(members, member{g, false})
		} else {
			mn.stats.MembersDroppedByLength++
		}
	}
	mn.mineC2([]int{c}, members)
}

func (mn *refMiner) mineC2(chain []int, members []member) {
	if mn.stop || mn.bud.stopped() {
		mn.stop = true
		return
	}
	mn.stats.Nodes++
	if !mn.bud.chargeNode() {
		mn.stats.Truncated = true
		mn.stop = true
		return
	}

	if refDistinctGenes(members) < mn.p.MinG {
		mn.stats.PrunedMinG++
		return
	}
	pCount := 0
	for _, mb := range members {
		if mb.up {
			pCount++
		}
	}
	if !mn.p.DisableMajorityPruning && 2*pCount < mn.p.MinG {
		mn.stats.PrunedMajority++
		return
	}

	if len(chain) >= mn.p.MinC && mn.isRepresentative(chain, members, pCount) {
		b := mn.toBicluster(chain, members)
		key := b.Key()
		if mn.seen[key] {
			mn.stats.Duplicates++
			if !mn.p.DisableDedupPruning {
				return
			}
		} else {
			mn.seen[key] = true
			mn.stats.Clusters++
			mn.out = append(mn.out, b)
			if !mn.bud.chargeCluster() {
				mn.stats.Truncated = true
				mn.stop = true
				return
			}
		}
	}

	mn.extend(chain, members, pCount)
}

func (mn *refMiner) extend(chain []int, members []member, pCount int) {
	last := chain[len(chain)-1]
	inChain := make(map[int]bool, len(chain))
	for _, c := range chain {
		inChain[c] = true
	}

	var candidates []int
	if mn.p.NaiveCandidates {
		for c := 0; c < mn.m.Cols(); c++ {
			if !inChain[c] {
				candidates = append(candidates, c)
			}
		}
	} else {
		seen := make(map[int]bool)
		for _, mb := range members {
			if !mb.up {
				continue
			}
			mod := mn.models[mb.gene]
			for r := mod.SuccessorStartRank(last); r < mod.Conditions(); r++ {
				c := mod.Order(r)
				if !seen[c] && !inChain[c] {
					seen[c] = true
					candidates = append(candidates, c)
				}
			}
		}
		sort.Ints(candidates)
	}

	for _, ci := range candidates {
		if mn.stop || mn.bud.stopped() {
			mn.stop = true
			return
		}
		mn.stats.CandidatesExamined++
		ext := mn.matchCandidate(chain, members, last, ci)
		if len(ext) == 0 {
			continue
		}
		windows := refMaximalWindows(ext, mn.p.Epsilon, mn.p.MinG)
		if len(windows) == 0 {
			mn.stats.PrunedCoherence++
			continue
		}
		newChain := append(chain[:len(chain):len(chain)], ci)
		for _, w := range windows {
			nm := make([]member, 0, w[1]-w[0]+1)
			for k := w[0]; k <= w[1]; k++ {
				nm = append(nm, ext[k].member)
			}
			refSortMembers(nm)
			mn.mineC2(newChain, nm)
		}
	}
}

func (mn *refMiner) matchCandidate(chain []int, members []member, last, ci int) []extMember {
	chainLen := len(chain)
	var ext []extMember
	for _, mb := range members {
		mod := mn.models[mb.gene]
		if mb.up {
			if !mod.IsSuccessor(last, ci) {
				continue
			}
			if !mn.p.DisableChainLengthPruning && chainLen+mod.MaxUpChainFrom(ci) < mn.p.MinC {
				mn.stats.MembersDroppedByLength++
				continue
			}
		} else {
			if !mod.IsPredecessor(last, ci) {
				continue
			}
			if !mn.p.DisableChainLengthPruning && chainLen+mod.MaxDownChainFrom(ci) < mn.p.MinC {
				mn.stats.MembersDroppedByLength++
				continue
			}
		}
		h := 1.0
		if chainLen >= 2 {
			base := mod.ValueOf(chain[1]) - mod.ValueOf(chain[0])
			h = (mod.ValueOf(ci) - mod.ValueOf(last)) / base
			if math.IsInf(h, 0) || math.IsNaN(h) {
				mn.stats.NonFiniteH++
				continue
			}
		}
		ext = append(ext, extMember{member{mb.gene, mb.up}, h})
	}
	sort.Slice(ext, func(a, b int) bool {
		if ext[a].h != ext[b].h {
			return ext[a].h < ext[b].h
		}
		if ext[a].gene != ext[b].gene {
			return ext[a].gene < ext[b].gene
		}
		return ext[a].up && !ext[b].up
	})
	return ext
}

func (mn *refMiner) isRepresentative(chain []int, members []member, pCount int) bool {
	nCount := len(members) - pCount
	if pCount != nCount {
		return pCount > nCount
	}
	return chain[0] > chain[len(chain)-1]
}

func (mn *refMiner) toBicluster(chain []int, members []member) *Bicluster {
	b := &Bicluster{Chain: append([]int(nil), chain...)}
	for _, mb := range members {
		if mb.up {
			b.PMembers = append(b.PMembers, mb.gene)
		} else {
			b.NMembers = append(b.NMembers, mb.gene)
		}
	}
	sort.Ints(b.PMembers)
	sort.Ints(b.NMembers)
	return b
}

func refMaximalWindows(ext []extMember, eps float64, minLen int) [][2]int {
	var out [][2]int
	r := 0
	prevR := -1
	for l := 0; l < len(ext); l++ {
		if r < l {
			r = l
		}
		for r+1 < len(ext) && ext[r+1].h-ext[l].h <= eps {
			r++
		}
		if r-l+1 >= minLen && r > prevR {
			out = append(out, [2]int{l, r})
			prevR = r
		}
	}
	return out
}

func refSortMembers(ms []member) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].gene != ms[b].gene {
			return ms[a].gene < ms[b].gene
		}
		return ms[a].up && !ms[b].up
	})
}

func refDistinctGenes(ms []member) int {
	n := 0
	prev := -1
	for _, mb := range ms {
		if mb.gene != prev {
			n++
			prev = mb.gene
		}
	}
	return n
}
