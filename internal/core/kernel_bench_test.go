package core

// Kernel microbenchmarks — the `make bench-kernels` suite. Each benchmark
// isolates one inner-loop primitive of the columnar mining hot path (flat
// frontier lookups, the candidate scan, Equation 7 scoring, the word-wise
// bitset walk) on a slab-packed model set, so a regression in the packed
// layout or the memoized arrays shows up here before it shows up in the
// minutes-long Figure 7 runs.

import (
	"math"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
	"regcluster/internal/synthetic"
)

var kernelSink int
var kernelSinkF float64

func kernelBenchSetup(b *testing.B, genes, conds int) (*matrix.Matrix, []rwave.Kernel) {
	b.Helper()
	cfg := synthetic.Config{Genes: genes, Conds: conds, Clusters: 6, Seed: 3}
	m, _, err := synthetic.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	models, err := BuildModels(m, Params{MinG: 4, MinC: 4, Gamma: 0.1, Epsilon: 0.05}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return m, rwave.Kernels(models)
}

// BenchmarkKernelFrontierLookup measures the memoized Lemma 3.1 queries:
// one SuccStart and one PredEnd load per (gene, condition) pair.
func BenchmarkKernelFrontierLookup(b *testing.B) {
	m, kern := kernelBenchSetup(b, 500, 30)
	conds := m.Cols()
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for g := range kern {
			k := &kern[g]
			for c := 0; c < conds; c++ {
				r := k.Rank[c]
				sum += k.SuccStart[r] + k.PredEnd[r]
			}
		}
	}
	kernelSink = sum
}

// BenchmarkKernelCandidateScan measures the extend-style successor scan: for
// every gene, walk order[SuccStart(last):] and dedup against a chain-seeded
// bitset, exactly as the miner collects candidate conditions.
func BenchmarkKernelCandidateScan(b *testing.B) {
	m, kern := kernelBenchSetup(b, 500, 30)
	conds := m.Cols()
	inChain := newCondSet(conds)
	inChain.set(0)
	inChain.set(conds / 2)
	seen := newCondSet(conds)
	cand := make([]int, 0, conds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const last = 0
		cand = cand[:0]
		seen.copyFrom(inChain)
		for g := range kern {
			k := &kern[g]
			order := k.Order
			for r := k.SuccStart[k.Rank[last]]; r < len(order); r++ {
				if c := order[r]; !seen.has(c) {
					seen.set(c)
					cand = append(cand, c)
				}
			}
		}
		seen.zero()
		kernelSink += len(cand)
	}
}

// BenchmarkKernelEquation7 measures the flat-value coherence scoring: one
// Equation 7 quotient per gene against a fixed baseline chain, including the
// non-finite guard of the real member loop.
func BenchmarkKernelEquation7(b *testing.B) {
	m, kern := kernelBenchSetup(b, 500, 30)
	c0, c1 := 0, 1
	last, ci := 1, m.Cols()-1
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for g := range kern {
			v := kern[g].ValueByCond
			h := (v[ci] - v[last]) / (v[c1] - v[c0])
			if math.IsInf(h, 0) || math.IsNaN(h) {
				continue
			}
			sum += h
		}
	}
	kernelSinkF = sum
}

// BenchmarkKernelCondSetAppendClear measures the word-at-a-time complement
// walk the NaiveCandidates path uses to enumerate off-chain conditions.
func BenchmarkKernelCondSetAppendClear(b *testing.B) {
	const conds = 200
	s := newCondSet(conds)
	for c := 0; c < conds; c += 3 {
		s.set(c)
	}
	dst := make([]int, 0, conds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.appendClear(dst[:0], conds)
		kernelSink += len(dst)
	}
}

// BenchmarkKernelMineSmall ties the primitives together: a complete mining
// run on a small synthetic workload, cheap enough for the CI smoke pass.
func BenchmarkKernelMineSmall(b *testing.B) {
	cfg := synthetic.Config{Genes: 120, Conds: 14, Clusters: 4, Seed: 7}
	m, _, err := synthetic.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := Params{MinG: 4, MinC: 4, Gamma: 0.08, Epsilon: 0.05}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Mine(m, p)
		if err != nil {
			b.Fatal(err)
		}
		kernelSink += len(res.Clusters)
	}
}
