package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// TestStatsSubInvertsAdd mirrors TestStatsAddCoversAllFields: every counter
// set by reflection must survive an Add followed by a sub unchanged, so a
// Stats field extended into Add but forgotten in sub fails here instead of
// silently skewing incremental aggregates.
func TestStatsSubInvertsAdd(t *testing.T) {
	var sentinel Stats
	v := reflect.ValueOf(&sentinel).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(3)
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("Stats field %s has unhandled kind %s — extend Stats.sub and this test",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	got := sentinel
	got.Add(sentinel)
	got.sub(sentinel)
	if !reflect.DeepEqual(got, sentinel) {
		t.Fatalf("sub does not invert Add:\n  got  %+v\n  want %+v", got, sentinel)
	}
}

// grownMatrix draws a random parent and appends k random conditions to it,
// returning both the parent and the grown child.
func grownMatrix(t *testing.T, rng *rand.Rand, rows, oldC, k int) (parent, child *matrix.Matrix) {
	t.Helper()
	parent = diffRandomMatrix(rng, rows, oldC)
	delta := diffRandomMatrix(rng, rows, k)
	for j := 0; j < k; j++ {
		delta.SetColName(j, fmt.Sprintf("new%d", j))
	}
	child, err := matrix.AppendConditions(parent, delta)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return parent, child
}

// incrSchemes returns one Params per threshold scheme — relative, absolute
// and custom per-gene — all over the small-integer value grid the random
// matrices use.
func incrSchemes(rng *rand.Rand, rows int) []Params {
	custom := make([]float64, rows)
	for g := range custom {
		custom[g] = float64(rng.Intn(3))
	}
	return []Params{
		{MinG: 2, MinC: 2, Gamma: 0.2, Epsilon: 0.5},
		{MinG: 2, MinC: 2, Gamma: 1, AbsoluteGamma: true, Epsilon: 0.5},
		// A threshold near the top of the value grid keeps regulation sparse,
		// so appends leave most subtrees clean — the splice-heavy regime.
		{MinG: 2, MinC: 2, Gamma: 5, AbsoluteGamma: true, Epsilon: 0.5},
		{MinG: 2, MinC: 2, CustomGammas: custom, Epsilon: 0.25},
	}
}

// sameModels compares two model sets field for field through their exported
// views — the cross-package equivalent of the rwave package's byte-identity
// check.
func sameModels(t *testing.T, label string, got, want []*rwave.Model) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d models, want %d", label, len(got), len(want))
	}
	for g := range got {
		if got[g].Gene() != want[g].Gene() ||
			math.Float64bits(got[g].Gamma()) != math.Float64bits(want[g].Gamma()) {
			t.Fatalf("%s: gene %d scalar mismatch (gene %d/%d γ %v/%v)", label, g,
				got[g].Gene(), want[g].Gene(), got[g].Gamma(), want[g].Gamma())
		}
		if !reflect.DeepEqual(got[g].Kernel(), want[g].Kernel()) {
			t.Fatalf("%s: gene %d kernel mismatch\ngot:  %+v\nwant: %+v", label, g,
				got[g].Kernel(), want[g].Kernel())
		}
		if !reflect.DeepEqual(got[g].Pointers(), want[g].Pointers()) {
			t.Fatalf("%s: gene %d pointer set mismatch", label, g)
		}
	}
}

// TestDifferentialRepairVsBuildModels: across all three threshold schemes and
// random append deltas, RepairModels must produce a model set identical in
// every field to a cold BuildModels of the grown matrix. Runs under -race in
// CI alongside the other differential suites.
func TestDifferentialRepairVsBuildModels(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(20260807))
	fastTotal := 0
	for i := 0; i < trials; i++ {
		rows := 2 + rng.Intn(8)
		parent, child := grownMatrix(t, rng, rows, 2+rng.Intn(6), 1+rng.Intn(4))
		for pi, p := range incrSchemes(rng, rows) {
			label := fmt.Sprintf("trial %d scheme %d", i, pi)
			parentModels, err := BuildModels(parent, p, nil)
			if err != nil {
				t.Fatalf("%s: parent build: %v", label, err)
			}
			repaired, nFast, err := RepairModels(child, p, parentModels, nil)
			if err != nil {
				t.Fatalf("%s: repair: %v", label, err)
			}
			cold, err := BuildModels(child, p, nil)
			if err != nil {
				t.Fatalf("%s: cold build: %v", label, err)
			}
			sameModels(t, label, repaired, cold)
			// Absolute and custom thresholds never drift under an append, so
			// every gene must take the fast path there.
			if pi > 0 && nFast != rows {
				t.Fatalf("%s: %d/%d genes repaired under a drift-free scheme", label, nFast, rows)
			}
			fastTotal += nFast
		}
	}
	if fastTotal == 0 {
		t.Fatal("no gene ever took the repair fast path — the differential is vacuous")
	}
}

// TestDifferentialIncrementalVsCold is the tentpole differential: on random
// append deltas across all threshold schemes, MineIncremental's cluster
// stream and Stats must be byte-identical to a cold parallel mine of the
// grown matrix, at 1, 2 and 8 workers. Runs under -race in CI.
func TestDifferentialIncrementalVsCold(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(42))
	sawIncremental, sawReused, sawFallback := 0, 0, 0
	for i := 0; i < trials; i++ {
		rows := 2 + rng.Intn(8)
		parent, child := grownMatrix(t, rng, rows, 3+rng.Intn(5), 1+rng.Intn(3))
		for pi, p := range incrSchemes(rng, rows) {
			label := fmt.Sprintf("trial %d scheme %d", i, pi)
			parentModels, err := BuildModels(parent, p, nil)
			if err != nil {
				t.Fatalf("%s: parent models: %v", label, err)
			}
			parentRes, err := MineParallelWithModels(parent, p, 4, parentModels)
			if err != nil {
				t.Fatalf("%s: parent mine: %v", label, err)
			}
			childModels, _, err := RepairModels(child, p, parentModels, nil)
			if err != nil {
				t.Fatalf("%s: repair: %v", label, err)
			}
			cold, err := MineParallelWithModels(child, p, 4, childModels)
			if err != nil {
				t.Fatalf("%s: cold mine: %v", label, err)
			}
			for _, workers := range []int{1, 2, 8} {
				var got []*Bicluster
				stats, info, err := MineIncremental(context.Background(), child, parent, p, workers,
					func(b *Bicluster) bool { got = append(got, b); return true },
					nil, childModels, parentModels, parentRes)
				if err != nil {
					t.Fatalf("%s workers %d: %v", label, workers, err)
				}
				if !sameClustersExact(cold.Clusters, got) {
					t.Fatalf("%s workers %d: clusters diverge from cold mine\ncold: %v\ngot:  %v",
						label, workers, cold.Clusters, got)
				}
				if stats != cold.Stats {
					t.Fatalf("%s workers %d: stats diverge\ncold: %+v\ngot:  %+v",
						label, workers, cold.Stats, stats)
				}
				if info.Incremental {
					sawIncremental++
					sawReused += info.SubtreesReused
					if info.SubtreesReused+info.SubtreesMined != child.Cols() {
						t.Fatalf("%s workers %d: reused %d + mined %d != %d conditions",
							label, workers, info.SubtreesReused, info.SubtreesMined, child.Cols())
					}
				} else {
					sawFallback++
				}
			}
		}
	}
	if sawIncremental == 0 || sawReused == 0 {
		t.Fatalf("fast path never reused a subtree (incremental runs %d, reused %d) — the differential is vacuous",
			sawIncremental, sawReused)
	}
	t.Logf("incremental runs %d (reused %d subtrees), fallbacks %d", sawIncremental, sawReused, sawFallback)
}

// TestMineIncrementalFallbacks: every ineligible input must take the cold
// path — reporting a reason — and still produce output identical to a plain
// parallel mine under the same Params.
func TestMineIncrementalFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := 6
	parent, child := grownMatrix(t, rng, rows, 5, 2)
	p := Params{MinG: 2, MinC: 2, Gamma: 1, AbsoluteGamma: true, Epsilon: 0.5}
	parentModels, err := BuildModels(parent, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	parentRes, err := MineParallelWithModels(parent, p, 1, parentModels)
	if err != nil {
		t.Fatal(err)
	}
	childModels, _, err := RepairModels(child, p, parentModels, nil)
	if err != nil {
		t.Fatal(err)
	}

	geneDelta := diffRandomMatrix(rng, 1, child.Cols())
	geneDelta.SetRowName(0, "extra")
	for j := 0; j < child.Cols(); j++ {
		geneDelta.SetColName(j, child.ColName(j))
	}
	grownGenes, err := matrix.AppendGenes(child, geneDelta)
	if err != nil {
		t.Fatal(err)
	}
	grownGenesModels, _, err := RepairModels(grownGenes, p, parentModels, nil)
	if err != nil {
		t.Fatal(err)
	}
	rewritten := child.Clone()
	rewritten.Set(0, 0, rewritten.At(0, 0)+1)
	rewrittenModels, _, err := RepairModels(rewritten, p, parentModels, nil)
	if err != nil {
		t.Fatal(err)
	}
	truncatedRes := &Result{Clusters: parentRes.Clusters, Stats: parentRes.Stats}
	truncatedRes.Stats.Truncated = true
	capped := p
	capped.MaxClusters = 2
	naive := p
	naive.NaiveCandidates = true

	cases := []struct {
		name      string
		m, parent *matrix.Matrix
		p         Params
		models    []*rwave.Model
		parentRes *Result
		reason    string
	}{
		{"no parent", child, nil, p, childModels, nil, "no parent result"},
		{"gene axis changed", grownGenes, parent, p, grownGenesModels, parentRes, "gene axis changed"},
		{"no appended conditions", parent, parent, p, parentModels, parentRes, "no appended conditions"},
		{"caps set", child, parent, capped, childModels, parentRes, "budget caps require sequential accounting"},
		{"naive candidates", child, parent, naive, childModels, parentRes, "naive-candidates ablation"},
		{"parent truncated", child, parent, p, childModels, truncatedRes, "parent result truncated"},
		{"values rewritten", rewritten, parent, p, rewrittenModels, parentRes, "parent values rewritten"},
	}
	for _, tc := range cases {
		cold, err := MineParallelWithModels(tc.m, tc.p, 1, tc.models)
		if err != nil {
			t.Fatalf("%s: cold mine: %v", tc.name, err)
		}
		var got []*Bicluster
		stats, info, err := MineIncremental(context.Background(), tc.m, tc.parent, tc.p, 1,
			func(b *Bicluster) bool { got = append(got, b); return true },
			nil, tc.models, parentModels, tc.parentRes)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if info.Incremental || info.Fallback != tc.reason {
			t.Errorf("%s: info %+v, want fallback %q", tc.name, info, tc.reason)
		}
		if !sameClustersExact(cold.Clusters, got) || stats != cold.Stats {
			t.Errorf("%s: fallback output diverges from cold mine", tc.name)
		}
	}
}

// TestMineIncrementalVisitorStop: a stopping visitor must abandon the stream
// after the delivered prefix and mark the returned Stats truncated.
func TestMineIncrementalVisitorStop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := Params{MinG: 2, MinC: 2, Gamma: 1, AbsoluteGamma: true, Epsilon: 0.5}
	for trial := 0; trial < 20; trial++ {
		parent, child := grownMatrix(t, rng, 2+rng.Intn(6), 4, 2)
		parentModels, err := BuildModels(parent, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		parentRes, err := MineParallelWithModels(parent, p, 2, parentModels)
		if err != nil {
			t.Fatal(err)
		}
		childModels, _, err := RepairModels(child, p, parentModels, nil)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := MineParallelWithModels(child, p, 2, childModels)
		if err != nil {
			t.Fatal(err)
		}
		if len(cold.Clusters) < 2 {
			continue
		}
		var got []*Bicluster
		stats, _, err := MineIncremental(context.Background(), child, parent, p, 2,
			func(b *Bicluster) bool { got = append(got, b); return len(got) < 1 },
			nil, childModels, parentModels, parentRes)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !sameClustersExact(cold.Clusters[:1], got) {
			t.Fatalf("stop after 1: delivered %d clusters, want the cold prefix of 1", len(got))
		}
		if !stats.Truncated {
			t.Fatal("stats not marked truncated after a visitor stop")
		}
		return
	}
	t.Skip("no trial produced 2+ clusters")
}

// TestMineIncrementalCancelled: a pre-cancelled context must surface as an
// error from the fast path.
func TestMineIncrementalCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := Params{MinG: 2, MinC: 2, Gamma: 1, AbsoluteGamma: true, Epsilon: 0.5}
	parent, child := grownMatrix(t, rng, 6, 5, 2)
	parentModels, err := BuildModels(parent, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	parentRes, err := MineParallelWithModels(parent, p, 2, parentModels)
	if err != nil {
		t.Fatal(err)
	}
	childModels, _, err := RepairModels(child, p, parentModels, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = MineIncremental(ctx, child, parent, p, 2,
		func(*Bicluster) bool { return true },
		nil, childModels, parentModels, parentRes)
	if err == nil {
		t.Fatal("cancelled context produced no error")
	}
}
