package core

import (
	"fmt"
	"math"
)

// Params are the mining inputs of Figure 5 plus safety caps and the ablation
// switches used by experiment E8. The zero value is invalid; fill at least
// MinG, MinC, Gamma and Epsilon.
type Params struct {
	// MinG is the minimum number of genes (p-members plus n-members) of an
	// output reg-cluster.
	MinG int
	// MinC is the minimum number of conditions (chain length).
	MinC int
	// Gamma is the regulation threshold γ of Equation 4: the per-gene
	// absolute threshold is γ × (max−min) of the gene's expression values.
	// When AbsoluteGamma is set, Gamma is used directly as γ_i for every
	// gene instead.
	Gamma float64
	// Epsilon is the coherence threshold ε of Definition 3.2: the maximum
	// allowed spread of the H scores (Equation 7) within a cluster, per
	// adjacent condition-pair.
	Epsilon float64
	// AbsoluteGamma interprets Gamma as an absolute per-gene threshold
	// (Section 3.1 lists such alternatives).
	AbsoluteGamma bool
	// CustomGammas, when non-nil, supplies an explicit absolute regulation
	// threshold per gene and overrides Gamma/AbsoluteGamma. Its length must
	// equal the matrix row count. See ThresholdsMeanFraction and
	// ThresholdsNearestPair for the alternative schemes Section 3.1 cites.
	CustomGammas []float64

	// MaxClusters, when positive, stops the search after that many clusters
	// have been output. 0 means unlimited. The cap is global: MineParallel
	// and MineParallelFunc enforce it across all workers and return exactly
	// the clusters (and Stats) a truncated sequential Mine would.
	MaxClusters int
	// MaxNodes, when positive, bounds the number of search-tree nodes
	// visited; the search stops cleanly when exceeded. 0 means unlimited.
	// Like MaxClusters, the cap is global across parallel workers.
	MaxNodes int

	// Ablation switches (all default false = paper behaviour). Disabling any
	// of these must not change the mined cluster set, only the work done;
	// experiment E8 verifies and measures exactly that.

	// DisableChainLengthPruning turns off pruning (2): genes whose maximal
	// remaining chain length cannot reach MinC are no longer dropped early.
	DisableChainLengthPruning bool
	// DisableMajorityPruning turns off pruning (3a): subtrees where the
	// p-members cannot outnumber the n-members are no longer cut.
	DisableMajorityPruning bool
	// DisableDedupPruning turns off the subtree cut of pruning (3b);
	// duplicate clusters are still suppressed from the output.
	DisableDedupPruning bool
	// NaiveCandidates replaces RWave-driven candidate generation (scanning
	// the regulation successors of the chain tail) with testing every
	// condition, measuring the benefit of the RWave index.
	NaiveCandidates bool
}

// isFinite reports whether v is an ordinary float: not NaN and not ±Inf.
// Validation must test this explicitly — NaN compares false against every
// bound, so a plain `v < 0` range check silently admits it.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate reports whether the parameters are usable. Every float field must
// be finite: a NaN or ±Inf threshold would build a garbage RWave index (and
// NaN slips through ordinary range checks), so non-finite values are rejected
// up front rather than left to corrupt the mining downstream.
func (p Params) Validate() error {
	if p.MinG < 2 {
		return fmt.Errorf("core: MinG = %d, need at least 2", p.MinG)
	}
	if p.MinC < 2 {
		return fmt.Errorf("core: MinC = %d, need at least 2 (the coherence baseline is the first two chain conditions)", p.MinC)
	}
	if !isFinite(p.Gamma) {
		return fmt.Errorf("core: Gamma = %v, must be finite", p.Gamma)
	}
	if p.AbsoluteGamma {
		if p.Gamma < 0 {
			return fmt.Errorf("core: absolute Gamma = %v, must be non-negative", p.Gamma)
		}
	} else if p.Gamma < 0 || p.Gamma > 1 {
		return fmt.Errorf("core: relative Gamma = %v, must lie in [0,1] (Equation 4)", p.Gamma)
	}
	if !isFinite(p.Epsilon) {
		return fmt.Errorf("core: Epsilon = %v, must be finite", p.Epsilon)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("core: Epsilon = %v, must be non-negative", p.Epsilon)
	}
	for g, v := range p.CustomGammas {
		if !isFinite(v) {
			return fmt.Errorf("core: CustomGammas[%d] = %v, must be finite", g, v)
		}
		if v < 0 {
			return fmt.Errorf("core: CustomGammas[%d] = %v, must be non-negative", g, v)
		}
	}
	if p.MaxClusters < 0 || p.MaxNodes < 0 {
		return fmt.Errorf("core: negative safety caps")
	}
	return nil
}

// Stats counts the work performed by one Mine call; used by the efficiency
// experiments and the pruning ablation.
type Stats struct {
	// Nodes is the number of search-tree nodes visited (MineC² invocations).
	Nodes int
	// Clusters is the number of reg-clusters output.
	Clusters int
	// Duplicates is the number of duplicate validated clusters suppressed by
	// pruning (3b).
	Duplicates int
	// PrunedMinG counts subtree cuts by pruning (1).
	PrunedMinG int
	// PrunedMajority counts subtree cuts by pruning (3a).
	PrunedMajority int
	// PrunedCoherence counts candidate extensions discarded because no
	// sliding window validated (pruning (4)).
	PrunedCoherence int
	// MembersDroppedByLength counts gene-direction entries dropped by
	// pruning (2).
	MembersDroppedByLength int
	// CandidatesExamined counts (node, candidate condition) pairs evaluated.
	CandidatesExamined int
	// NonFiniteH counts members dropped during candidate extension because
	// their Equation 7 coherence score was not finite (a zero or denormal
	// baseline step, reachable when γ_i = 0).
	NonFiniteH int
	// Truncated is set when MaxClusters, MaxNodes, or a visitor stop ended
	// the search early.
	Truncated bool
}

// Add accumulates o into s: every counter is summed and Truncated is OR-ed.
// All code that merges Stats values — the parallel subtree merge in
// particular — must go through Add so that a newly added counter cannot be
// silently dropped from merged results; TestStatsAddCoversAllFields enforces
// full field coverage by reflection.
func (s *Stats) Add(o Stats) {
	s.Nodes += o.Nodes
	s.Clusters += o.Clusters
	s.Duplicates += o.Duplicates
	s.PrunedMinG += o.PrunedMinG
	s.PrunedMajority += o.PrunedMajority
	s.PrunedCoherence += o.PrunedCoherence
	s.MembersDroppedByLength += o.MembersDroppedByLength
	s.CandidatesExamined += o.CandidatesExamined
	s.NonFiniteH += o.NonFiniteH
	s.Truncated = s.Truncated || o.Truncated
}
