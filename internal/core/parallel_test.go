package core

import (
	"context"
	"reflect"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// equivalenceWorkers are the pool sizes the ISSUE acceptance criteria pin
// down for the cap-equivalence property.
var equivalenceWorkers = []int{1, 2, 8}

// assertSameRun asserts that a parallel run reproduced the sequential
// clusters exactly — same sequence, same order — and the same Stats.
func assertSameRun(t *testing.T, label string, seq *Result, gotClusters []*Bicluster, gotStats Stats) {
	t.Helper()
	if len(gotClusters) != len(seq.Clusters) {
		t.Fatalf("%s: %d clusters, sequential has %d", label, len(gotClusters), len(seq.Clusters))
	}
	for i := range gotClusters {
		if gotClusters[i].Key() != seq.Clusters[i].Key() {
			t.Fatalf("%s: cluster %d diverged:\n  got  %s\n  want %s",
				label, i, gotClusters[i].Key(), seq.Clusters[i].Key())
		}
	}
	if !reflect.DeepEqual(gotStats, seq.Stats) {
		t.Errorf("%s: stats diverged:\n  got  %+v\n  want %+v", label, gotStats, seq.Stats)
	}
}

func collectParallelFunc(t *testing.T, m *matrix.Matrix, p Params, workers int) ([]*Bicluster, Stats) {
	t.Helper()
	var got []*Bicluster
	stats, err := MineParallelFunc(m, p, workers, func(b *Bicluster) bool {
		got = append(got, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

// TestMinersEquivalentUntruncated pins the core contract on untruncated
// runs: Mine, MineFunc, MineParallel and MineParallelFunc produce identical
// cluster sequences and identical Stats.
func TestMinersEquivalentUntruncated(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		m := randomMatrix(60, 10, seed)
		p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
		seq, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []*Bicluster
		fStats, err := MineFunc(m, p, func(b *Bicluster) bool {
			streamed = append(streamed, b)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, "MineFunc", seq, streamed, fStats)
		for _, workers := range equivalenceWorkers {
			par, err := MineParallel(m, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "MineParallel", seq, par.Clusters, par.Stats)
			got, stats := collectParallelFunc(t, m, p, workers)
			assertSameRun(t, "MineParallelFunc", seq, got, stats)
		}
	}
}

// TestParallelTruncationMaxClusters is the headline bugfix property: with a
// global MaxClusters cap, MineParallel must return exactly the truncated
// sequential prefix — clusters AND stats — at any worker count.
func TestParallelTruncationMaxClusters(t *testing.T) {
	m := randomMatrix(60, 10, 1)
	base := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	full, err := Mine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Clusters) < 5 {
		t.Fatalf("workload too small: %d clusters", len(full.Clusters))
	}
	for _, cap := range []int{1, 2, len(full.Clusters) / 2, len(full.Clusters), len(full.Clusters) + 10} {
		p := base
		p.MaxClusters = cap
		seq, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range equivalenceWorkers {
			par, err := MineParallel(m, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "MineParallel", seq, par.Clusters, par.Stats)
			got, stats := collectParallelFunc(t, m, p, workers)
			assertSameRun(t, "MineParallelFunc", seq, got, stats)
		}
	}
}

// TestParallelTruncationMaxNodes: same property for the node budget, which
// can truncate between clusters and therefore exercises the node-ordinal
// gate of the emitter.
func TestParallelTruncationMaxNodes(t *testing.T) {
	m := randomMatrix(60, 10, 2)
	base := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	full, err := Mine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{1, 2, full.Stats.Nodes / 10, full.Stats.Nodes / 3,
		full.Stats.Nodes - 1, full.Stats.Nodes, full.Stats.Nodes + 5}
	for _, cap := range caps {
		if cap <= 0 {
			continue
		}
		p := base
		p.MaxNodes = cap
		seq, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range equivalenceWorkers {
			par, err := MineParallel(m, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "MineParallel", seq, par.Clusters, par.Stats)
			got, stats := collectParallelFunc(t, m, p, workers)
			assertSameRun(t, "MineParallelFunc", seq, got, stats)
		}
	}
}

// TestParallelTruncationBothCaps sets both budgets at once; whichever fires
// first sequentially must fire identically in parallel.
func TestParallelTruncationBothCaps(t *testing.T) {
	m := randomMatrix(60, 10, 3)
	base := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	full, err := Mine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ clusters, nodes int }{
		{2, full.Stats.Nodes / 2},
		{len(full.Clusters), 3},
		{3, 50},
	} {
		p := base
		p.MaxClusters, p.MaxNodes = tc.clusters, tc.nodes
		seq, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range equivalenceWorkers {
			par, err := MineParallel(m, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "MineParallel", seq, par.Clusters, par.Stats)
		}
	}
}

// TestParallelFuncVisitorEarlyStop: stopping the visitor after k clusters
// must leave exactly the same delivered prefix and the same Stats as the
// equivalent MineFunc early stop, at any worker count.
func TestParallelFuncVisitorEarlyStop(t *testing.T) {
	m := randomMatrix(60, 10, 1)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	full, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Clusters) < 4 {
		t.Fatalf("workload too small: %d clusters", len(full.Clusters))
	}
	for _, stopAfter := range []int{1, 3, len(full.Clusters) - 1} {
		var seqGot []*Bicluster
		seqStats, err := MineFunc(m, p, func(b *Bicluster) bool {
			seqGot = append(seqGot, b)
			return len(seqGot) < stopAfter
		})
		if err != nil {
			t.Fatal(err)
		}
		if !seqStats.Truncated {
			t.Fatalf("stopAfter=%d: sequential early stop not marked Truncated", stopAfter)
		}
		seq := &Result{Clusters: seqGot, Stats: seqStats}
		for _, workers := range equivalenceWorkers {
			var got []*Bicluster
			stats, err := MineParallelFunc(m, p, workers, func(b *Bicluster) bool {
				got = append(got, b)
				return len(got) < stopAfter
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "MineParallelFunc early stop", seq, got, stats)
		}
	}
}

// TestParallelFuncStreamsInOrder verifies the reordering-buffer contract on
// a matrix large enough for real interleaving: delivery order equals Mine's
// enumeration order even with many workers.
func TestParallelFuncStreamsInOrder(t *testing.T) {
	m := randomMatrix(120, 12, 7)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.3}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	got, stats := collectParallelFunc(t, m, p, 8)
	assertSameRun(t, "MineParallelFunc order", seq, got, stats)
}

func TestMineContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := randomMatrix(40, 9, 5)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	if _, err := MineContext(ctx, m, p); err != context.Canceled {
		t.Errorf("MineContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	for _, workers := range equivalenceWorkers {
		if _, err := MineParallelContext(ctx, m, p, workers); err != context.Canceled {
			t.Errorf("MineParallelContext(workers=%d) on cancelled ctx: err = %v, want context.Canceled",
				workers, err)
		}
	}
}

func TestMineContextBackground(t *testing.T) {
	m := randomMatrix(40, 9, 5)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(context.Background(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "MineContext", seq, res.Clusters, res.Stats)
	par, err := MineParallelContext(context.Background(), m, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "MineParallelContext", seq, par.Clusters, par.Stats)
}

// TestSubtreeOrderLargestFirst checks the dispatch heuristic is a
// permutation sorted by decreasing initial-member count.
func TestSubtreeOrderLargestFirst(t *testing.T) {
	m := randomMatrix(50, 8, 11)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	models, err := prepare(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := subtreeOrder(m, p, rwave.Kernels(models))
	if len(order) != m.Cols() {
		t.Fatalf("order has %d entries for %d conditions", len(order), m.Cols())
	}
	seen := make(map[int]bool)
	est := func(c int) int {
		n := 0
		for g := 0; g < m.Rows(); g++ {
			if models[g].MaxUpChainFrom(c) >= p.MinC {
				n++
			}
			if models[g].MaxDownChainFrom(c) >= p.MinC {
				n++
			}
		}
		return n
	}
	for i, c := range order {
		if seen[c] {
			t.Fatalf("condition %d dispatched twice", c)
		}
		seen[c] = true
		if i > 0 && est(order[i-1]) < est(c) {
			t.Errorf("dispatch not largest-first at %d: est(%d)=%d < est(%d)=%d",
				i, order[i-1], est(order[i-1]), c, est(c))
		}
	}
}
