package core

import (
	"math"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// TestThresholdsDegenerateRowsFinite pins the threshold helpers' behaviour on
// degenerate genes: a constant row (max−min = 0, all adjacent gaps 0) and an
// all-zero row must yield threshold 0, never NaN, for every helper. The
// resulting vectors pass Params.Validate as CustomGammas.
func TestThresholdsDegenerateRowsFinite(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{3, 3, 3, 3}, // constant
		{0, 0, 0, 0}, // all-zero
		{1, 2, 4, 8}, // ordinary, for contrast
	})
	vectors := map[string]struct {
		v        []float64
		constant float64 // expected threshold of the constant row {3,3,3,3}
	}{
		"range":   {ThresholdsRangeFraction(m, 0.5), 0},  // max−min = 0
		"mean":    {ThresholdsMeanFraction(m, 0.5), 1.5}, // 0.5 × mean(|3|)
		"nearest": {ThresholdsNearestPair(m), 0},         // all gaps 0
	}
	for name, tc := range vectors {
		v := tc.v
		if len(v) != 3 {
			t.Fatalf("%s: %d entries", name, len(v))
		}
		for g, x := range v {
			if !isFinite(x) {
				t.Errorf("%s[%d] = %v, want finite", name, g, x)
			}
		}
		if v[0] != tc.constant {
			t.Errorf("%s: constant row got threshold %v, want %v", name, v[0], tc.constant)
		}
		if v[1] != 0 {
			t.Errorf("%s: all-zero row got threshold %v, want 0", name, v[1])
		}
		if v[2] <= 0 {
			t.Errorf("%s: ordinary row got threshold %v, want > 0", name, v[2])
		}
		p := Params{MinG: 2, MinC: 2, Gamma: 0.1, CustomGammas: v}
		if err := p.Validate(); err != nil {
			t.Errorf("%s vector rejected by Validate: %v", name, err)
		}
	}
}

// TestThresholdsRejectNonFiniteGamma: a non-finite γ multiplier panics up
// front instead of leaking NaN thresholds (Inf × 0 = NaN on a constant row).
func TestThresholdsRejectNonFiniteGamma(t *testing.T) {
	m := matrix.FromRows([][]float64{{3, 3, 3}})
	for _, gamma := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, helper := range []struct {
			name string
			call func()
		}{
			{"range", func() { ThresholdsRangeFraction(m, gamma) }},
			{"mean", func() { ThresholdsMeanFraction(m, gamma) }},
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s(%v) did not panic", helper.name, gamma)
					}
				}()
				helper.call()
			}()
		}
	}
}

// TestRWaveGuardsRejectNaN: the rwave build guards use negated comparisons so
// a NaN γ — which passes `< 0 || > 1` checks — panics instead of silently
// producing a pointerless model. The core layer fences NaN earlier via
// Validate; this pins that the index layer holds its own regardless.
func TestRWaveGuardsRejectNaN(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2, 3}})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on NaN gamma", name)
			}
		}()
		f()
	}
	mustPanic("rwave.Build", func() { rwave.Build(m, 0, math.NaN()) })
	mustPanic("rwave.BuildAbsolute", func() { rwave.BuildAbsolute(m, 0, math.NaN()) })
	mustPanic("rwave.BuildAll", func() { rwave.BuildAll(m, math.NaN()) })
}
