package core

import (
	"context"
	"errors"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/synthetic"
)

func observeTestMatrix(t *testing.T) (*matrix.Matrix, Params) {
	t.Helper()
	cfg := synthetic.Config{Genes: 120, Conds: 14, Clusters: 4, Seed: 7}
	mm, _, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mm, Params{MinG: 4, MinC: 4, Gamma: 0.08, Epsilon: 0.05}
}

func TestMineParallelFuncObservedMatchesStats(t *testing.T) {
	m, p := observeTestMatrix(t)
	for _, workers := range []int{1, 4} {
		var obs Observer
		var streamed int
		stats, err := MineParallelFuncObserved(context.Background(), m, p, workers, func(b *Bicluster) bool {
			streamed++
			return true
		}, &obs)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Clusters == 0 {
			t.Fatal("workload mined no clusters; test is vacuous")
		}
		// An uncapped, uninterrupted run ends with the live counters equal to
		// the authoritative Stats.
		if obs.Nodes() != int64(stats.Nodes) {
			t.Errorf("workers=%d: observer nodes %d, stats %d", workers, obs.Nodes(), stats.Nodes)
		}
		if obs.Clusters() != int64(stats.Clusters) {
			t.Errorf("workers=%d: observer clusters %d, stats %d", workers, obs.Clusters(), stats.Clusters)
		}
		if streamed != stats.Clusters {
			t.Errorf("workers=%d: streamed %d, stats %d", workers, streamed, stats.Clusters)
		}
	}
}

func TestMineParallelFuncObservedTruncatedRunKeepsCounters(t *testing.T) {
	m, p := observeTestMatrix(t)
	p.MaxNodes = 50
	var obs Observer
	stats, err := MineParallelFuncObserved(context.Background(), m, p, 4, func(*Bicluster) bool { return true }, &obs)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("node cap did not truncate; test is vacuous")
	}
	// Live counters may overshoot the exact sequential totals (workers race
	// the cancellation) but never undershoot what the run settled on.
	if obs.Nodes() < int64(stats.Nodes) {
		t.Errorf("observer nodes %d < settled %d", obs.Nodes(), stats.Nodes)
	}
}

func TestMineParallelFuncContextMatchesMineFunc(t *testing.T) {
	m, p := observeTestMatrix(t)
	var seq []string
	if _, err := MineFunc(m, p, func(b *Bicluster) bool {
		seq = append(seq, b.Key())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var par []string
	stats, err := MineParallelFuncContext(context.Background(), m, p, 4, func(b *Bicluster) bool {
		par = append(par, b.Key())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) != stats.Clusters {
		t.Fatalf("sequential %d vs parallel %d clusters (stats %d)", len(seq), len(par), stats.Clusters)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cluster %d diverged", i)
		}
	}
}

func TestMineParallelFuncContextCancellation(t *testing.T) {
	m, p := observeTestMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MineParallelFuncContext(ctx, m, p, 4, func(*Bicluster) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValidateWorkers(t *testing.T) {
	if err := ValidateWorkers(0, 0); err != nil {
		t.Errorf("workers=0 (GOMAXPROCS) rejected: %v", err)
	}
	if err := ValidateWorkers(-1, 8); err != nil {
		t.Errorf("workers=-1 (GOMAXPROCS) rejected: %v", err)
	}
	if err := ValidateWorkers(8, 8); err != nil {
		t.Errorf("workers at the limit rejected: %v", err)
	}
	if err := ValidateWorkers(9, 8); err == nil {
		t.Error("workers above the limit accepted")
	}
	if err := ValidateWorkers(1000, 0); err != nil {
		t.Errorf("unlimited max rejected a large count: %v", err)
	}
}
