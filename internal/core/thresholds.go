package core

import (
	"math"
	"sort"

	"regcluster/internal/matrix"
)

// Section 3.1 of the paper defaults to γ_i = γ × (max−min) per gene but
// notes that other per-gene regulation thresholds can be plugged in (the
// normalized threshold of Ji & Tan, the nearest-pair average of OP-Cluster,
// the average expression value of Chen et al.). These helpers compute such
// alternatives as explicit per-gene threshold vectors for Params.CustomGammas.

// ThresholdsRangeFraction returns γ × (max−min) per gene — the paper's
// Equation 4 default, exposed for symmetry.
func ThresholdsRangeFraction(m *matrix.Matrix, gamma float64) []float64 {
	out := make([]float64, m.Rows())
	for g := range out {
		out[g] = gamma * m.RowRange(g)
	}
	return out
}

// ThresholdsMeanFraction returns γ × mean(|row|) per gene — the
// average-expression-value style threshold of Chen, Filkov & Skiena.
func ThresholdsMeanFraction(m *matrix.Matrix, gamma float64) []float64 {
	out := make([]float64, m.Rows())
	for g := range out {
		row := m.Row(g)
		sum := 0.0
		for _, v := range row {
			sum += math.Abs(v)
		}
		if len(row) > 0 {
			out[g] = gamma * sum / float64(len(row))
		}
	}
	return out
}

// ThresholdsNearestPair returns, per gene, the average difference between
// every pair of adjacent values in the sorted profile — the OP-Cluster
// (Liu & Wang) style threshold: steps smaller than the typical adjacent gap
// are treated as noise.
func ThresholdsNearestPair(m *matrix.Matrix) []float64 {
	out := make([]float64, m.Rows())
	for g := range out {
		row := append([]float64(nil), m.Row(g)...)
		sort.Float64s(row)
		if len(row) < 2 {
			continue
		}
		sum := 0.0
		for i := 1; i < len(row); i++ {
			sum += row[i] - row[i-1]
		}
		out[g] = sum / float64(len(row)-1)
	}
	return out
}
