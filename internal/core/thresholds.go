package core

import (
	"fmt"
	"math"
	"sort"

	"regcluster/internal/matrix"
)

// Section 3.1 of the paper defaults to γ_i = γ × (max−min) per gene but
// notes that other per-gene regulation thresholds can be plugged in (the
// normalized threshold of Ji & Tan, the nearest-pair average of OP-Cluster,
// the average expression value of Chen et al.). These helpers compute such
// alternatives as explicit per-gene threshold vectors for Params.CustomGammas.

// mustFiniteGamma fences the γ multiplier of the threshold helpers. A
// non-finite multiplier would leak NaN into the output vector on degenerate
// genes (Inf × 0 = NaN on a constant row, where max−min and the adjacent gaps
// are 0) and NaN γ contaminates every gene; Params.Validate would reject the
// resulting CustomGammas, but failing here names the actual mistake. The
// panic mirrors rwave.Build's contract for out-of-range γ.
func mustFiniteGamma(gamma float64) {
	if !isFinite(gamma) {
		panic(fmt.Sprintf("core: threshold gamma %v must be finite", gamma))
	}
}

// ThresholdsRangeFraction returns γ × (max−min) per gene — the paper's
// Equation 4 default, exposed for symmetry. A constant gene (max−min = 0)
// gets threshold 0. gamma must be finite.
func ThresholdsRangeFraction(m *matrix.Matrix, gamma float64) []float64 {
	mustFiniteGamma(gamma)
	out := make([]float64, m.Rows())
	for g := range out {
		out[g] = gamma * m.RowRange(g)
	}
	return out
}

// ThresholdsMeanFraction returns γ × mean(|row|) per gene — the
// average-expression-value style threshold of Chen, Filkov & Skiena. An
// all-zero gene gets threshold 0. gamma must be finite.
func ThresholdsMeanFraction(m *matrix.Matrix, gamma float64) []float64 {
	mustFiniteGamma(gamma)
	out := make([]float64, m.Rows())
	for g := range out {
		row := m.Row(g)
		sum := 0.0
		for _, v := range row {
			sum += math.Abs(v)
		}
		if len(row) > 0 {
			out[g] = gamma * sum / float64(len(row))
		}
	}
	return out
}

// ThresholdsNearestPair returns, per gene, the average difference between
// every pair of adjacent values in the sorted profile — the OP-Cluster
// (Liu & Wang) style threshold: steps smaller than the typical adjacent gap
// are treated as noise. The sum of adjacent gaps telescopes to max−min, so a
// constant gene (and a single-column matrix) gets threshold 0; the output is
// finite for any finite matrix.
func ThresholdsNearestPair(m *matrix.Matrix) []float64 {
	out := make([]float64, m.Rows())
	// One scratch buffer sized to the condition count serves every gene:
	// Row returns a live view of the matrix, and sorting must not mutate it.
	row := make([]float64, m.Cols())
	for g := range out {
		copy(row, m.Row(g))
		sort.Float64s(row)
		if len(row) < 2 {
			continue
		}
		sum := 0.0
		for i := 1; i < len(row); i++ {
			sum += row[i] - row[i-1]
		}
		out[g] = sum / float64(len(row)-1)
	}
	return out
}
