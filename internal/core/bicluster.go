// Package core implements the reg-cluster mining algorithm of the paper
// (Figure 5): a bi-directional depth-first enumeration of representative
// regulation chains over per-gene RWave^γ models, with the paper's four
// pruning strategies and the coherence sliding window.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Bicluster is one mined reg-cluster: a condition chain Y together with the
// genes that comply with it (p-members, expression strictly rising along the
// chain) and the genes that comply with its inversion (n-members, expression
// strictly falling). P-members are positively co-regulated with each other
// and negatively co-regulated with n-members.
type Bicluster struct {
	// Chain lists condition indices in representative regulation chain
	// order: c_{k1} ↶ c_{k2} ↶ ... ↶ c_{km}.
	Chain []int
	// PMembers and NMembers are gene indices in ascending order.
	PMembers []int
	NMembers []int
}

// Genes returns all member gene indices (p-members then n-members merged),
// in ascending order.
func (b *Bicluster) Genes() []int {
	out := make([]int, 0, len(b.PMembers)+len(b.NMembers))
	out = append(out, b.PMembers...)
	out = append(out, b.NMembers...)
	sort.Ints(out)
	return out
}

// Conditions returns the chain's condition indices in ascending order.
func (b *Bicluster) Conditions() []int {
	out := make([]int, len(b.Chain))
	copy(out, b.Chain)
	sort.Ints(out)
	return out
}

// Dims returns the number of genes and conditions.
func (b *Bicluster) Dims() (genes, conditions int) {
	return len(b.PMembers) + len(b.NMembers), len(b.Chain)
}

// Cells returns genes × conditions, the number of matrix cells covered.
func (b *Bicluster) Cells() int {
	g, c := b.Dims()
	return g * c
}

// OverlapCells returns the number of (gene, condition) cells shared with o.
func (b *Bicluster) OverlapCells(o *Bicluster) int {
	return len(intersectSorted(b.Genes(), o.Genes())) *
		len(intersectSorted(b.Conditions(), o.Conditions()))
}

// OverlapFraction returns OverlapCells(o) divided by the smaller of the two
// cell counts — the "percentage of overlapping cells" statistic of
// Section 5.2. It returns 0 when either cluster is empty.
func (b *Bicluster) OverlapFraction(o *Bicluster) float64 {
	min := b.Cells()
	if oc := o.Cells(); oc < min {
		min = oc
	}
	if min == 0 {
		return 0
	}
	return float64(b.OverlapCells(o)) / float64(min)
}

// Key returns a canonical string identifying (chain sequence, gene set,
// member split); used for duplicate suppression (pruning 3b).
func (b *Bicluster) Key() string {
	var sb strings.Builder
	for i, c := range b.Chain {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	sb.WriteByte('|')
	for i, g := range b.PMembers {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(g))
	}
	sb.WriteByte('|')
	for i, g := range b.NMembers {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(g))
	}
	return sb.String()
}

// String renders the cluster in the paper's notation.
func (b *Bicluster) String() string {
	var sb strings.Builder
	sb.WriteString("reg-cluster Y=")
	for i, c := range b.Chain {
		if i > 0 {
			sb.WriteString("↶")
		}
		fmt.Fprintf(&sb, "c%d", c)
	}
	fmt.Fprintf(&sb, " pX=%v nX=%v", b.PMembers, b.NMembers)
	return sb.String()
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
