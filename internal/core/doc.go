// Package core implements the reg-cluster mining algorithm of "Mining
// Shifting-and-Scaling Co-Regulation Patterns on Gene Expression Profiles"
// (Xu, Lu, Tung, Wang — ICDE 2006).
//
// # The model
//
// A reg-cluster (Definition 3.2) is a bicluster C = X × Y over a gene ×
// condition expression matrix, where Y = (c1, c2, ..., cn) is an ORDERED
// condition chain and X splits into p-members and n-members:
//
//   - every p-member's expression strictly rises along the chain, and every
//     adjacent step clears the gene's regulation threshold γ_i (Equation 3;
//     by default γ_i = γ × range(gene), Equation 4);
//
//   - every n-member strictly falls along the chain with the same per-step
//     significance;
//
//   - all members agree on the RELATIVE step sizes: for each adjacent pair
//     (ck, ck+1), the coherence scores
//
//     H(i) = (d[i][ck+1] − d[i][ck]) / (d[i][c2] − d[i][c1])
//
//     of all members lie within ε of each other (Equation 7).
//
// Lemma 3.2 shows the H-score agreement is equivalent to the existence of a
// perfect shifting-and-scaling relationship d_i = s1·d_j + s2 between any
// two members (when ε = 0), with s1 < 0 exactly between p- and n-members.
// That is why one model simultaneously captures pure shifting (s1 = 1), pure
// scaling (s2 = 0), the general affine mixture, and negative co-regulation.
//
// # The index
//
// Each gene gets an RWave^γ model (package internal/rwave): its conditions
// sorted by value with the minimal set of non-embedded regulation pointers.
// The index answers, in O(log n), "which conditions are up-regulated w.r.t.
// c?" and precomputes for every condition the longest up- and down-chain
// reachable from it — the engine of pruning (2).
//
// # The search
//
// mineC2 (Figure 5 of the paper) grows representative regulation chains
// depth-first. A search node holds the chain and its member list, each
// member being a (gene, direction) pair. Extension works as follows:
//
//  1. Candidate conditions are the regulation successors of the chain tail
//     over the P-MEMBERS' indexes only (sound because a candidate with no
//     p-member support can never yield a representative chain, see pruning
//     3a below).
//  2. For a candidate ci, each member is tested: p-members need ci to be a
//     regulation successor of the tail in their model, n-members a
//     regulation predecessor. Pruning (2) drops members whose maximal
//     remaining chain cannot reach MinC.
//  3. Surviving members are sorted by their H score for (tail, ci); every
//     maximal sliding window with H-spread ≤ ε and ≥ MinG members becomes a
//     child node (pruning 4 cuts candidates with no window).
//
// A node is output when the chain has ≥ MinC conditions, ≥ MinG distinct
// genes, and is the REPRESENTATIVE orientation: p-members outnumber
// n-members, or tie with the chain starting at the larger condition id. The
// mirrored orientation of every cluster is reached by the DFS from the other
// chain end and suppressed by this rule, so each cluster is reported once.
//
// # Prunings
//
//	(1)  |X| < MinG                   — subtree cannot reach MinG.
//	(2)  chainLen + maxChainFrom(ci) < MinC per member — member useless.
//	(3a) 2·|pX| < MinG                — p-members can never reach majority.
//	(3b) duplicate (chain, members) output state — identical subtree.
//	(4)  no coherence window          — candidate extension dies.
//
// All of (1), (2), (3a), (3b) are output-preserving accelerations; (4) is
// model semantics. Params carries ablation switches that disable each one,
// and the test suite verifies output preservation; completeness_test.go
// additionally cross-validates the whole miner against an exponential
// reference enumerator on randomized small inputs.
//
// # Beyond the paper
//
// Resource budgets are a first-class subsystem (budget.go): MaxNodes and
// MaxClusters charge one shared atomic budget no matter how many miners run,
// so sequential and parallel runs truncate at exactly the same global caps,
// and cancellation (a cap trip, a visitor stop, or a context deadline via
// MineContext/MineParallelContext) propagates cooperatively to every worker.
//
// MineParallel distributes level-1 subtrees over a worker pool through a
// largest-first work queue and returns output identical to Mine's — clusters
// and Stats, truncated runs included (see parallel.go for the reconciliation
// that makes truncated parallel runs exact). MineParallelFunc streams the
// same deterministic sequence to a visitor through per-subtree reordering
// buffers. Params.CustomGammas plugs in the alternative per-gene regulation
// thresholds Section 3.1 mentions (thresholds.go). CheckBicluster validates
// any cluster against Definition 3.2 directly from the raw matrix,
// independent of the index and search.
package core
