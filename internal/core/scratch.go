package core

// Scratch arena and duplicate-suppression machinery of the zero-allocation
// mining hot path. One miner owns one scratch: all per-node working storage
// — chain stack, condition bitsets, candidate/extension/member buffers — is
// reused across the millions of nodes a search visits, so steady-state
// mining allocates only for escaping outputs (emitted Biclusters) and dedup
// bookkeeping. The differential tests (differential_test.go) pin the
// resulting behaviour to the frozen pre-optimization reference bit for bit.

import (
	"math/bits"
	"slices"
)

// condSet is a bitset over condition ids (one uint64 word per 64 ids).
type condSet []uint64

func newCondSet(n int) condSet   { return make(condSet, (n+63)/64) }
func (s condSet) has(c int) bool { return s[c>>6]&(1<<(uint(c)&63)) != 0 }
func (s condSet) set(c int)      { s[c>>6] |= 1 << (uint(c) & 63) }
func (s condSet) clear(c int)    { s[c>>6] &^= 1 << (uint(c) & 63) }

// copyFrom overwrites s with o word for word. Both sets must come from the
// same newCondSet size.
func (s condSet) copyFrom(o condSet) { copy(s, o) }

// zero clears the whole set word-at-a-time.
func (s condSet) zero() { clear(s) }

// appendClear appends the ids in [0, n) NOT in s to dst, in ascending order,
// walking the set one 64-id word at a time and popping the complement's bits
// instead of testing every id.
func (s condSet) appendClear(dst []int, n int) []int {
	for w, word := range s {
		free := ^word
		base := w << 6
		if rest := n - base; rest < 64 {
			if rest <= 0 {
				break
			}
			free &= 1<<uint(rest) - 1
		}
		for free != 0 {
			dst = append(dst, base+bits.TrailingZeros64(free))
			free &= free - 1
		}
	}
	return dst
}

// frame is the reusable working set of one recursion depth: the candidate
// conditions, the surviving extensions with their H scores, the validated
// sliding windows, and the member list handed to the child node. A depth's
// frame stays live for the whole candidate loop of its extend call while
// deeper recursion uses deeper frames, so indexing frames by chain length
// makes reuse safe without copying.
type frame struct {
	cand []int
	ext  []extMember
	win  [][2]int
	nm   []member
}

// scratch is the per-miner arena.
type scratch struct {
	chain    []int   // current chain as a stack (replaces per-level copies)
	inChain  condSet // chain membership (replaces the per-node inChain map)
	candSeen condSet // candidate dedup within one extend (replaces the seen map)
	root     []member
	frames   []*frame
}

// ensure sizes the arena for an nGenes×nConds matrix; it runs once per
// miner (every later call is a cheap nil check). The root member buffer
// holds up to TWO entries per gene — both directions can join at level 1 —
// which also fixes the historical nGenes under-allocation that forced a
// mid-loop regrowth on every level-1 subtree.
func (s *scratch) ensure(nGenes, nConds int) {
	if s.inChain != nil {
		return
	}
	s.inChain = newCondSet(nConds)
	s.candSeen = newCondSet(nConds)
	s.chain = make([]int, 0, nConds)
	s.root = make([]member, 0, 2*nGenes)
}

// frame returns the scratch frame of the given recursion depth, growing the
// pool on first descent.
func (s *scratch) frame(depth int) *frame {
	for len(s.frames) <= depth {
		s.frames = append(s.frames, &frame{})
	}
	return s.frames[depth]
}

// dedupSet suppresses duplicate clusters (pruning 3b) without materializing
// Bicluster.Key() strings: clusters are hashed structurally into buckets and
// compared field by field only within a bucket, so the common non-duplicate
// case costs one hash and (almost always) an empty bucket probe.
type dedupSet struct {
	buckets map[uint64][]*Bicluster
}

func newDedupSet() dedupSet {
	return dedupSet{buckets: make(map[uint64][]*Bicluster)}
}

// add inserts b and reports true, or reports false when an identical
// cluster (same chain sequence, p-members, n-members) was added before.
func (d *dedupSet) add(b *Bicluster) bool {
	h := hashCluster(b)
	for _, o := range d.buckets[h] {
		if slices.Equal(o.Chain, b.Chain) &&
			slices.Equal(o.PMembers, b.PMembers) &&
			slices.Equal(o.NMembers, b.NMembers) {
			return false
		}
	}
	d.buckets[h] = append(d.buckets[h], b)
	return true
}

// hashCluster is FNV-1a over the cluster's three int sequences with distinct
// section separators. Collisions are harmless (add falls back to structural
// comparison), they only cost a bucket scan.
func hashCluster(b *Bicluster) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b.Chain {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ ^uint64(0)) * prime64
	for _, g := range b.PMembers {
		h = (h ^ uint64(g)) * prime64
	}
	h = (h ^ ^uint64(1)) * prime64
	for _, g := range b.NMembers {
		h = (h ^ uint64(g)) * prime64
	}
	return h
}

// insertionSortCutoff bounds the slice length below which the hand-rolled
// insertion sorts beat the generic pdqsort dispatch. Extension lists at deep
// nodes are usually tiny; level-1 lists are huge and take the slices path.
const insertionSortCutoff = 16

// lessExt is the extension ordering of matchCandidate: ascending H score,
// ties by gene then direction (p before n). Members are unique per (gene,
// direction), so the order is total and any comparison sort yields the same
// sequence the reference sort.Slice produced.
func lessExt(a, b extMember) bool {
	if a.h != b.h {
		return a.h < b.h
	}
	if a.gene != b.gene {
		return a.gene < b.gene
	}
	return a.up && !b.up
}

func sortExtMembers(ext []extMember) {
	if len(ext) <= insertionSortCutoff {
		for i := 1; i < len(ext); i++ {
			for j := i; j > 0 && lessExt(ext[j], ext[j-1]); j-- {
				ext[j], ext[j-1] = ext[j-1], ext[j]
			}
		}
		return
	}
	slices.SortFunc(ext, func(a, b extMember) int {
		switch {
		case lessExt(a, b):
			return -1
		case lessExt(b, a):
			return 1
		default:
			return 0
		}
	})
}

// lessMember is the node member ordering: ascending gene, p before n.
func lessMember(a, b member) bool {
	if a.gene != b.gene {
		return a.gene < b.gene
	}
	return a.up && !b.up
}

func sortMembers(ms []member) {
	if len(ms) <= insertionSortCutoff {
		for i := 1; i < len(ms); i++ {
			for j := i; j > 0 && lessMember(ms[j], ms[j-1]); j-- {
				ms[j], ms[j-1] = ms[j-1], ms[j]
			}
		}
		return
	}
	slices.SortFunc(ms, func(a, b member) int {
		switch {
		case lessMember(a, b):
			return -1
		case lessMember(b, a):
			return 1
		default:
			return 0
		}
	})
}
