package core

import (
	"context"
	"sync/atomic"
)

// budget is the global resource accounting shared by every miner of one
// mining run — the single miner of Mine/MineFunc or the whole pool of
// MineParallel/MineParallelFunc. All miners charge the same atomic counters,
// so MaxNodes and MaxClusters bound the RUN, not each worker, and a cap trip
// (or an external cancellation: a visitor stop, a sibling's truncation, a
// context expiry) is observed cooperatively by everyone at the next node or
// candidate boundary.
//
// Uncapped runs never touch the counters, so the hot path of an unlimited
// mining session stays free of shared atomic writes; the only cost is one
// atomic flag load per node and candidate.
type budget struct {
	maxNodes    int64 // > 0 bounds the total nodes charged across all miners
	maxClusters int64 // > 0 bounds the total clusters charged across all miners

	nodes     atomic.Int64
	clusters  atomic.Int64
	cancelled atomic.Bool

	done   <-chan struct{} // context cancellation; nil when no context is wired
	ctxErr func() error
	ctxHit atomic.Bool // the context fired while mining was still in progress
}

func newBudget(p Params, ctx context.Context) *budget {
	b := &budget{maxNodes: int64(p.MaxNodes), maxClusters: int64(p.MaxClusters)}
	if ctx != nil {
		b.done = ctx.Done()
		b.ctxErr = ctx.Err
	}
	return b
}

// prechargedBudget returns an unshared budget whose counters already hold
// the exact totals of a settled mining prefix. A sequential miner run
// against it behaves — truncation point, cluster output and every Stats
// counter — exactly like the sequential miner's continuation after that
// prefix; the parallel reconciliation path uses this to rebuild the
// sequential result of the subtree a global cap truncates.
func prechargedBudget(maxNodes, maxClusters, nodes, clusters int) *budget {
	b := &budget{maxNodes: int64(maxNodes), maxClusters: int64(maxClusters)}
	b.nodes.Store(int64(nodes))
	b.clusters.Store(int64(clusters))
	return b
}

// chargeNode accounts one search-tree node against the global node cap. A
// false return means this node pushed the total past the cap: the node is
// counted but must not be processed, and the whole run is cancelled.
func (b *budget) chargeNode() bool {
	if b.maxNodes <= 0 {
		return true
	}
	if b.nodes.Add(1) > b.maxNodes {
		b.cancelled.Store(true)
		return false
	}
	return true
}

// chargeCluster accounts one emitted cluster against the global cluster cap.
// A false return means the cluster just emitted is the last one the cap
// admits: the caller keeps it but must stop searching.
func (b *budget) chargeCluster() bool {
	if b.maxClusters <= 0 {
		return true
	}
	if b.clusters.Add(1) >= b.maxClusters {
		b.cancelled.Store(true)
		return false
	}
	return true
}

// cancel requests cooperative termination of every miner on this budget.
func (b *budget) cancel() { b.cancelled.Store(true) }

// stopped reports whether the run must halt: a cap tripped, cancel was
// called, or the wired context expired. The context is polled even after a
// cap already cancelled the run — a cap trip triggers sequential subtree
// reconciliation that can keep mining for a while, and an expiring context
// must interrupt that too, not just the initial parallel sweep.
func (b *budget) stopped() bool {
	if b.done != nil && !b.ctxHit.Load() {
		select {
		case <-b.done:
			b.ctxHit.Store(true)
			b.cancelled.Store(true)
			return true
		default:
		}
	}
	return b.cancelled.Load()
}

// contextErr returns the context's error if the context interrupted the run,
// nil otherwise (including when the context expired only after mining had
// already finished).
func (b *budget) contextErr() error {
	if b.ctxErr == nil || !b.ctxHit.Load() {
		return nil
	}
	return b.ctxErr()
}

// QuotaPool is a shared atomic reservation counter over an abstract resource
// budget — the admission-control companion to the per-run budget above. A
// caller reserves capacity before starting work that will consume it and
// releases the reservation when the work settles, so the pool bounds the
// AGGREGATE in-flight commitment across concurrent runs the way budget bounds
// one run. The service layer uses one pool per tenant to cap the sum of
// node budgets (Params.MaxNodes) a tenant may have mining at once.
//
// Reserve/Release pair like a semaphore but with weighted units and a
// lock-free compare-and-swap grant, so admission checks stay cheap under
// submission bursts.
type QuotaPool struct {
	capacity int64
	used     atomic.Int64
}

// NewQuotaPool returns a pool with the given capacity. Capacity <= 0 means
// unlimited: every reservation succeeds and nothing is accounted.
func NewQuotaPool(capacity int64) *QuotaPool {
	return &QuotaPool{capacity: capacity}
}

// TryReserve atomically reserves n units, failing without side effects when
// the reservation would push usage past the capacity. Non-positive n always
// succeeds and reserves nothing.
func (q *QuotaPool) TryReserve(n int64) bool {
	if q == nil || q.capacity <= 0 || n <= 0 {
		return true
	}
	for {
		used := q.used.Load()
		if used+n > q.capacity {
			return false
		}
		if q.used.CompareAndSwap(used, used+n) {
			return true
		}
	}
}

// Release returns n previously reserved units to the pool. Releasing more
// than is reserved clamps at zero rather than going negative — a double
// release must degrade accounting, never open the pool wider than its
// capacity.
func (q *QuotaPool) Release(n int64) {
	if q == nil || q.capacity <= 0 || n <= 0 {
		return
	}
	if q.used.Add(-n) < 0 {
		// Clamp: competing releases may both observe the transient negative;
		// CAS back to zero without double-adding.
		for {
			used := q.used.Load()
			if used >= 0 {
				return
			}
			if q.used.CompareAndSwap(used, 0) {
				return
			}
		}
	}
}

// InUse returns the units currently reserved.
func (q *QuotaPool) InUse() int64 {
	if q == nil {
		return 0
	}
	return q.used.Load()
}

// Capacity returns the pool's capacity (0 = unlimited).
func (q *QuotaPool) Capacity() int64 {
	if q == nil {
		return 0
	}
	return q.capacity
}
