package core

import (
	"math"
	"strings"
	"testing"
)

// TestValidateRejectsNonFinite pins the non-finite fence: NaN passes every
// ordinary `< 0` range check, so each float field needs an explicit finiteness
// test. A Params that slipped through here used to build a garbage RWave index
// (NaN Gamma) or panic the service cache key (non-finite CustomGammas).
func TestValidateRejectsNonFinite(t *testing.T) {
	valid := Params{MinG: 2, MinC: 2, Gamma: 0.1, Epsilon: 0.5}
	if err := valid.Validate(); err != nil {
		t.Fatalf("baseline params invalid: %v", err)
	}
	nonFinite := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	cases := []struct {
		name   string
		mutate func(*Params, float64)
	}{
		{"Gamma", func(p *Params, v float64) { p.Gamma = v }},
		{"absolute Gamma", func(p *Params, v float64) { p.Gamma = v; p.AbsoluteGamma = true }},
		{"Epsilon", func(p *Params, v float64) { p.Epsilon = v }},
		{"CustomGammas first", func(p *Params, v float64) { p.CustomGammas = []float64{v, 1} }},
		{"CustomGammas last", func(p *Params, v float64) { p.CustomGammas = []float64{1, v} }},
	}
	for _, tc := range cases {
		for _, v := range nonFinite {
			p := valid
			tc.mutate(&p, v)
			err := p.Validate()
			if err == nil {
				t.Errorf("%s = %v accepted", tc.name, v)
				continue
			}
			if !strings.Contains(err.Error(), "finite") {
				t.Errorf("%s = %v: error %q does not name finiteness", tc.name, v, err)
			}
		}
	}
}

// TestValidateFiniteEdgeValues checks that the finiteness fence does not
// over-reject: extreme but finite values stay valid where they were before.
func TestValidateFiniteEdgeValues(t *testing.T) {
	ok := []Params{
		{MinG: 2, MinC: 2, Gamma: 0, Epsilon: 0},
		{MinG: 2, MinC: 2, Gamma: 1, Epsilon: math.MaxFloat64},
		{MinG: 2, MinC: 2, Gamma: math.MaxFloat64, AbsoluteGamma: true},
		{MinG: 2, MinC: 2, Gamma: 0.1, CustomGammas: []float64{0, math.MaxFloat64}},
	}
	for i, p := range ok {
		if err := p.Validate(); err != nil {
			t.Errorf("case %d: finite params rejected: %v", i, err)
		}
	}
}
