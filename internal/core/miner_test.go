package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func runningParams() Params {
	return Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
}

// TestRunningExample reproduces the paper's Section 4 walk-through (Figure 6):
// with γ=0.15, ε=0.1, MinG=3 and MinC=5, the only validated representative
// regulation chain of Table 1 is c7 ↶ c9 ↶ c5 ↶ c1 ↶ c3 with p-members
// {g1, g3} and n-member {g2}.
func TestRunningExample(t *testing.T) {
	m := paperdata.RunningExample()
	res, err := Mine(m, runningParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("found %d clusters, want 1: %v", len(res.Clusters), res.Clusters)
	}
	b := res.Clusters[0]
	if !reflect.DeepEqual(b.Chain, paperdata.RunningExampleChain()) {
		t.Errorf("chain = %v, want %v", b.Chain, paperdata.RunningExampleChain())
	}
	if !reflect.DeepEqual(b.PMembers, []int{0, 2}) {
		t.Errorf("pX = %v, want [0 2] (g1, g3)", b.PMembers)
	}
	if !reflect.DeepEqual(b.NMembers, []int{1}) {
		t.Errorf("nX = %v, want [1] (g2)", b.NMembers)
	}
	if err := CheckBicluster(m, runningParams(), b); err != nil {
		t.Errorf("output fails Definition 3.2: %v", err)
	}
}

// TestRunningExamplePruningActivity checks that the Figure 6 prunings all
// fire on the running example.
func TestRunningExamplePruningActivity(t *testing.T) {
	m := paperdata.RunningExample()
	res, err := Mine(m, runningParams())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.PrunedMinG == 0 {
		t.Error("pruning (1) never fired (paper prunes c2c1, c2c9, c2c10c8, c7c10)")
	}
	if s.PrunedMajority == 0 {
		t.Error("pruning (3a) never fired (paper prunes node c3)")
	}
	if s.PrunedCoherence == 0 {
		t.Error("pruning (4) never fired (paper prunes c2c10c5)")
	}
	if s.MembersDroppedByLength == 0 {
		t.Error("pruning (2) never fired")
	}
	if s.Clusters != 1 {
		t.Errorf("stats.Clusters = %d", s.Clusters)
	}
	if s.Nodes == 0 || s.CandidatesExamined == 0 {
		t.Error("empty work counters")
	}
}

// TestSixPatterns verifies the Figure 1 motivation: the six profiles related
// by P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3 form one reg-cluster across all
// eight conditions.
func TestSixPatterns(t *testing.T) {
	m := paperdata.SixPatterns()
	res, err := Mine(m, Params{MinG: 6, MinC: 8, Gamma: 0.1, Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range res.Clusters {
		g, c := b.Dims()
		if g == 6 && c == 8 && len(b.NMembers) == 0 {
			found = true
			if err := CheckBicluster(m, Params{MinG: 6, MinC: 8, Gamma: 0.1, Epsilon: 1e-9}, b); err != nil {
				t.Errorf("six-pattern cluster invalid: %v", err)
			}
		}
	}
	if !found {
		t.Fatalf("no 6x8 all-positive cluster found; got %v", res.Clusters)
	}
}

// TestOutlierProjection verifies the Figure 4 comparison: on conditions
// c2, c4, c8, c10 of Table 1, reg-cluster groups g1 and g3 (which satisfy
// d3 = 0.4*d1 + 2) and rejects the outlier g2.
func TestOutlierProjection(t *testing.T) {
	m := paperdata.OutlierProjection()
	p := Params{MinG: 2, MinC: 4, Gamma: 0.15, Epsilon: 0.1}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no cluster found on the Figure 4 projection")
	}
	for _, b := range res.Clusters {
		for _, g := range b.Genes() {
			if g == 1 {
				t.Fatalf("outlier g2 wrongly clustered: %v", b)
			}
		}
	}
	// The {g1, g3} cluster over all four conditions must be among them.
	found := false
	for _, b := range res.Clusters {
		if g, c := b.Dims(); g == 2 && c == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a 2x4 cluster of g1 and g3, got %v", res.Clusters)
	}
}

// TestRepresentativeDirection: when the falling genes outnumber the rising
// ones, the representative chain must be the falling direction (those genes
// become p-members of the reversed chain).
func TestRepresentativeDirection(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3, 4, 5},      // rises along c0..c4
		{2, 4, 6, 8, 10},     // rises
		{10, 8, 6, 4, 2},     // falls
		{5, 4, 3, 2, 1},      // falls
		{50, 40, 30, 20, 10}, // falls
	})
	p := Params{MinG: 5, MinC: 5, Gamma: 0.1, Epsilon: 1e-9}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("got %d clusters, want 1: %v", len(res.Clusters), res.Clusters)
	}
	b := res.Clusters[0]
	if !reflect.DeepEqual(b.Chain, []int{4, 3, 2, 1, 0}) {
		t.Errorf("chain = %v, want [4 3 2 1 0]", b.Chain)
	}
	if !reflect.DeepEqual(b.PMembers, []int{2, 3, 4}) || !reflect.DeepEqual(b.NMembers, []int{0, 1}) {
		t.Errorf("pX=%v nX=%v, want pX=[2 3 4] nX=[0 1]", b.PMembers, b.NMembers)
	}
}

// TestTieBreakOnEqualMembership: with one rising and one falling gene the
// directions tie; exactly one orientation may be output, the one whose chain
// starts at the larger condition id.
func TestTieBreakOnEqualMembership(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3},
		{3, 2, 1},
	})
	p := Params{MinG: 2, MinC: 3, Gamma: 0.1, Epsilon: 1e-9}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("got %d clusters, want exactly 1 (tie-break): %v", len(res.Clusters), res.Clusters)
	}
	b := res.Clusters[0]
	if b.Chain[0] <= b.Chain[len(b.Chain)-1] {
		t.Errorf("tie-break violated: chain %v should start at the larger condition id", b.Chain)
	}
}

// TestNoDuplicateOutputs: output keys must be unique.
func TestNoDuplicateOutputs(t *testing.T) {
	m := randomMatrix(40, 10, 3)
	res, err := Mine(m, Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, b := range res.Clusters {
		k := b.Key()
		if seen[k] {
			t.Fatalf("duplicate cluster output: %s", k)
		}
		seen[k] = true
	}
}

// TestAllOutputsSatisfyDefinition: on random data every mined cluster must
// pass the independent Definition 3.2 checker.
func TestAllOutputsSatisfyDefinition(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := randomMatrix(30, 8, seed)
		p := Params{MinG: 3, MinC: 3, Gamma: 0.1, Epsilon: 0.3}
		res, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range res.Clusters {
			if err := CheckBicluster(m, p, b); err != nil {
				t.Fatalf("seed %d: invalid cluster %v: %v", seed, b, err)
			}
		}
	}
}

// TestAblationEquivalence: disabling the output-preserving prunings and the
// RWave candidate generation must not change the mined cluster set.
func TestAblationEquivalence(t *testing.T) {
	m := randomMatrix(25, 8, 11)
	base := Params{MinG: 3, MinC: 3, Gamma: 0.08, Epsilon: 0.4}
	want := clusterKeySet(t, m, base)
	variants := []func(*Params){
		func(p *Params) { p.DisableChainLengthPruning = true },
		func(p *Params) { p.DisableMajorityPruning = true },
		func(p *Params) { p.DisableDedupPruning = true },
		func(p *Params) { p.NaiveCandidates = true },
		func(p *Params) {
			p.DisableChainLengthPruning = true
			p.DisableMajorityPruning = true
			p.DisableDedupPruning = true
			p.NaiveCandidates = true
		},
	}
	for i, mod := range variants {
		p := base
		mod(&p)
		got := clusterKeySet(t, m, p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("variant %d changed the cluster set: %d vs %d clusters", i, len(got), len(want))
		}
	}
}

func clusterKeySet(t *testing.T, m *matrix.Matrix, p Params) []string {
	t.Helper()
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(res.Clusters))
	for i, b := range res.Clusters {
		keys[i] = b.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestShiftScaleInvariance: applying gene-wise shifting-and-scaling (with
// positive or negative scale) to cluster members must preserve the cluster,
// because both the Equation 4 threshold and the Equation 7 score are
// invariant under d := s1*d + s2.
func TestShiftScaleInvariance(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 3, 5, 7, 9},
		{1, 3, 5, 7, 9},
		{1, 3, 5, 7, 9},
	})
	m.ShiftScaleRow(1, 2.5, -4)  // positive scaling + shift
	m.ShiftScaleRow(2, -1.5, 20) // negative scaling + shift
	p := Params{MinG: 3, MinC: 5, Gamma: 0.2, Epsilon: 1e-9}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("got %d clusters, want 1: %v", len(res.Clusters), res.Clusters)
	}
	b := res.Clusters[0]
	if g, c := b.Dims(); g != 3 || c != 5 {
		t.Fatalf("cluster dims %dx%d, want 3x5", g, c)
	}
	if len(b.NMembers) != 1 || b.NMembers[0] != 2 {
		t.Errorf("negatively scaled gene should be the n-member: %v", b)
	}
}

func TestGammaFiltersWeakPatterns(t *testing.T) {
	// Two genes follow the same tendency, but gene 1's swings are a tiny
	// fraction of its own range except for one spike, so at γ=0.3 its small
	// steps are not regulations and no 4-condition cluster survives.
	m := matrix.FromRows([][]float64{
		{0, 10, 20, 30},
		{0, 0.1, 0.2, 100},
	})
	res, err := Mine(m, Params{MinG: 2, MinC: 4, Gamma: 0.3, Epsilon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Fatalf("γ should have filtered the weak pattern, got %v", res.Clusters)
	}
	// With γ=0 the tendency alone suffices.
	res, err = Mine(m, Params{MinG: 2, MinC: 4, Gamma: 0, Epsilon: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("γ=0 with huge ε should accept the shared tendency")
	}
}

func TestEpsilonControlsCoherence(t *testing.T) {
	// Same tendency, different shapes: H scores differ by 1.0 between the
	// genes on the middle pair.
	m := matrix.FromRows([][]float64{
		{0, 1, 2, 3},
		{0, 1, 3, 4},
	})
	tight := Params{MinG: 2, MinC: 4, Gamma: 0, Epsilon: 0.5}
	res, err := Mine(m, tight)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Fatalf("ε=0.5 should reject (H spread is 1.0), got %v", res.Clusters)
	}
	loose := tight
	loose.Epsilon = 1.0
	res, err = Mine(m, loose)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("ε=1.0 should accept the pair")
	}
}

func TestMaxClustersTruncation(t *testing.T) {
	m := randomMatrix(40, 10, 5)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.02, Epsilon: 1.0, MaxClusters: 4}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 || !res.Stats.Truncated {
		t.Fatalf("MaxClusters=4: got %d clusters, truncated=%v", len(res.Clusters), res.Stats.Truncated)
	}
}

func TestMaxNodesTruncation(t *testing.T) {
	m := randomMatrix(40, 10, 5)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.02, Epsilon: 1.0, MaxNodes: 10}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Fatal("MaxNodes=10 should truncate")
	}
	if res.Stats.Nodes > 11 {
		t.Fatalf("visited %d nodes with MaxNodes=10", res.Stats.Nodes)
	}
}

func TestParamValidation(t *testing.T) {
	m := matrix.New(2, 2)
	bad := []Params{
		{MinG: 1, MinC: 2, Gamma: 0.1},
		{MinG: 2, MinC: 1, Gamma: 0.1},
		{MinG: 2, MinC: 2, Gamma: -0.1},
		{MinG: 2, MinC: 2, Gamma: 1.5},
		{MinG: 2, MinC: 2, Gamma: 0.1, Epsilon: -1},
		{MinG: 2, MinC: 2, Gamma: -1, AbsoluteGamma: true},
		{MinG: 2, MinC: 2, Gamma: 0.1, MaxClusters: -1},
	}
	for i, p := range bad {
		if _, err := Mine(m, p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	// AbsoluteGamma may exceed 1.
	if _, err := Mine(m, Params{MinG: 2, MinC: 2, Gamma: 5, AbsoluteGamma: true}); err != nil {
		t.Errorf("absolute gamma 5 rejected: %v", err)
	}
}

func TestAbsoluteGamma(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{0, 10, 20, 30},
		{0, 10, 20, 30},
	})
	// Steps are 10; absolute γ=9 accepts, γ=11 rejects.
	if res, _ := Mine(m, Params{MinG: 2, MinC: 4, Gamma: 9, Epsilon: 0.1, AbsoluteGamma: true}); len(res.Clusters) == 0 {
		t.Error("absolute γ=9 should accept steps of 10")
	}
	if res, _ := Mine(m, Params{MinG: 2, MinC: 4, Gamma: 11, Epsilon: 0.1, AbsoluteGamma: true}); len(res.Clusters) != 0 {
		t.Error("absolute γ=11 should reject steps of 10")
	}
}

func TestEmptyAndTinyMatrices(t *testing.T) {
	res, err := Mine(matrix.New(0, 0), Params{MinG: 2, MinC: 2, Gamma: 0.1})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatalf("empty matrix: %v %v", res, err)
	}
	res, err = Mine(matrix.New(1, 5), Params{MinG: 2, MinC: 2, Gamma: 0.1})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatalf("single gene: %v %v", res, err)
	}
}

func randomMatrix(rows, cols int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Float64()*10)
		}
	}
	return m
}
