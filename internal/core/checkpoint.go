package core

import (
	"context"
	"fmt"

	"regcluster/internal/matrix"
)

// CheckpointVersion is the serialization version stamped into every snapshot;
// ResumeFrom rejects other versions so a journal written by a future format
// can never be silently misinterpreted.
const CheckpointVersion = 1

// Checkpoint is a serializable snapshot of a mining run's progress, taken at
// a deterministic point of the sequential enumeration order. Because the
// parallel miner's output is exactly the sequential DFS order for any worker
// count, a snapshot needs only three facts to restart the run:
//
//   - NextCond: the first starting condition (level-1 subtree) not yet fully
//     settled;
//   - SkipClusters: how many clusters of that subtree were already delivered
//     (the emitted-cluster watermark within the subtree);
//   - Prefix: the exact sequential Stats — budget counters included — of the
//     fully settled subtrees before NextCond.
//
// A resumed run re-mines only the subtree at NextCond (suppressing its first
// SkipClusters clusters) and everything after it; subtrees before NextCond
// are never revisited, and the returned Stats are the TOTAL run statistics
// (Prefix plus the continuation), identical to an uninterrupted run's.
//
// LastChain records the representative-chain prefix of the most recently
// delivered cluster — the DFS stack position at snapshot time. It is
// advisory: recovery logs and operators use it to see where a long run was,
// but resumption does not depend on it.
type Checkpoint struct {
	Version      int   `json:"v"`
	NextCond     int   `json:"next_cond"`
	SkipClusters int   `json:"skip_clusters"`
	Prefix       Stats `json:"prefix"`
	LastChain    []int `json:"last_chain,omitempty"`
}

// Delivered returns the total number of clusters the run had delivered when
// the snapshot was taken: the settled-prefix clusters plus the watermark
// within the subtree being streamed.
func (c *Checkpoint) Delivered() int { return c.Prefix.Clusters + c.SkipClusters }

// Validate reports whether the snapshot can resume a run over a matrix with
// the given number of conditions.
func (c *Checkpoint) Validate(conds int) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", c.Version, CheckpointVersion)
	}
	if c.NextCond < 0 || c.NextCond > conds {
		return fmt.Errorf("core: checkpoint NextCond %d outside [0,%d]", c.NextCond, conds)
	}
	if c.NextCond == conds && c.SkipClusters != 0 {
		return fmt.Errorf("core: checkpoint is past the last subtree but skips %d clusters", c.SkipClusters)
	}
	if c.SkipClusters < 0 || c.Prefix.Nodes < 0 || c.Prefix.Clusters < 0 {
		return fmt.Errorf("core: negative checkpoint counters")
	}
	return nil
}

// CheckpointConfig enables periodic snapshots on a resumable run.
type CheckpointConfig struct {
	// EveryClusters takes a snapshot each time this many clusters have been
	// delivered since the previous snapshot. 0 snapshots only at subtree
	// boundaries.
	EveryClusters int
	// OnCheckpoint receives every snapshot, synchronously on the emitting
	// (calling) goroutine, so a callback that persists the snapshot before
	// returning guarantees the WAL never runs ahead of delivery. Nil disables
	// checkpointing entirely.
	OnCheckpoint func(Checkpoint)
}

func (cc CheckpointConfig) enabled() bool { return cc.OnCheckpoint != nil }

// PanicError is returned (never re-thrown) by the parallel mining entry
// points when a worker goroutine panicked: the panic is contained, every
// sibling worker stops cooperatively, and the run fails with the recovered
// value and the panicking goroutine's stack.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("core: mining worker panic: %v", e.Value) }

// MineParallelFuncResumable is MineParallelFuncObserved with crash-recovery
// support: resume restarts the run from a prior snapshot instead of from
// scratch, and ck emits new snapshots as the run advances.
//
// A non-nil resume must come from a run over the same matrix and Params
// (callers persist and compare those identities; this function validates
// only structural bounds). The visitor then receives exactly the clusters
// after resume.Delivered() in sequential order, and the returned Stats are
// the uninterrupted run's totals. Unlike the other parallel entry points this
// one always routes through the worker engine, so worker panics surface as a
// *PanicError rather than crossing the API as a panic (with workers <= 1 the
// engine simply runs a one-goroutine pool).
func MineParallelFuncResumable(ctx context.Context, m *matrix.Matrix, p Params, workers int, visit Visitor, obs *Observer, resume *Checkpoint, ck CheckpointConfig) (Stats, error) {
	if resume != nil {
		if err := resume.Validate(m.Cols()); err != nil {
			return Stats{}, err
		}
	}
	return mineParallelOpts(ctx, m, p, workers, visit, mineOpts{obs: obs, resume: resume, ck: ck})
}
