package core

import "regcluster/internal/matrix"

// Visitor receives mined clusters as the depth-first search discovers them.
// Returning false stops the search immediately; the clusters seen so far are
// exactly the prefix of Mine's output.
type Visitor func(b *Bicluster) bool

// MineFunc streams reg-clusters to the visitor instead of accumulating them,
// bounding memory on result-heavy parameter settings and enabling early
// exit. The enumeration order is identical to Mine's. The returned Stats
// reflect the work done up to the stop point.
func MineFunc(m *matrix.Matrix, p Params, visit Visitor) (Stats, error) {
	mn, err := mineSequential(nil, m, p, nil, visit)
	if err != nil {
		return Stats{}, err
	}
	return mn.stats, nil
}
