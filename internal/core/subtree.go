package core

import (
	"context"
	"fmt"
	"sort"

	"regcluster/internal/matrix"
	"regcluster/internal/obs"
	"regcluster/internal/rwave"
)

// Subtree work units: the distribution surface of the miner.
//
// A level-1 subtree (one starting condition) is the natural shippable unit of
// a mining run — a representative chain lives entirely in the subtree of its
// first condition, so subtrees are independent and can be mined anywhere, in
// any order, by any process that holds the same matrix and Params. This file
// exposes that unit: MineSubtree produces one subtree's clusters and Stats in
// isolation, and SubtreeMerger reassembles any set of subtree partials into
// the exact sequential output, enforcing the global MaxNodes/MaxClusters caps
// through the same accounting the in-process parallel engine uses (see
// engine.emit in parallel.go). Distributed output is therefore byte-identical
// to Mine's for any placement of subtrees across workers.

// SubtreeCluster is one cluster found inside a subtree, tagged with the
// subtree-local node ordinal of its emission (the miner's Stats.Nodes at that
// moment). The ordinal lets a merger decide whether the sequential miner,
// charged with the preceding subtrees' nodes, would still have processed the
// emitting node. All fields are integers, so the JSON round-trip across a
// process boundary is exact.
type SubtreeCluster struct {
	Cluster *Bicluster `json:"cluster"`
	Node    int        `json:"node"`
}

// SubtreePartial is the complete output of mining one level-1 subtree in
// isolation: its clusters in DFS order and its isolated Stats (counted as if
// the subtree were the only work, with no global caps applied).
type SubtreePartial struct {
	Cond     int              `json:"cond"`
	Clusters []SubtreeCluster `json:"clusters,omitempty"`
	Stats    Stats            `json:"stats"`
}

// SubtreeOrder returns the starting conditions in the deterministic
// largest-estimated-subtree-first dispatch order the parallel engine uses.
// A coordinator leasing subtrees to workers should issue them in this order
// so the skewed tail does not land last.
func SubtreeOrder(m *matrix.Matrix, p Params, models []*rwave.Model) ([]int, error) {
	_, kern, err := resolveModels(m, p, models, nil)
	if err != nil {
		return nil, err
	}
	return subtreeOrder(m, p, kern), nil
}

// MineSubtreeFunc mines the single level-1 subtree rooted at cond, streaming
// every cluster to visit in DFS order together with its subtree-local node
// ordinal. The run is isolated: MaxNodes/MaxClusters are ignored (global caps
// are the merger's job, and a worker cannot know how much budget precedes
// it), and the returned Stats count only this subtree. A false return from
// visit abandons the subtree — the partial is then incomplete (Truncated is
// set) and must not be offered to a merger. ctx cancels cooperatively at node
// and candidate boundaries.
func MineSubtreeFunc(ctx context.Context, m *matrix.Matrix, p Params, cond int, models []*rwave.Model, visit func(SubtreeCluster) bool) (Stats, error) {
	if visit == nil {
		return Stats{}, fmt.Errorf("core: MineSubtreeFunc requires a visitor")
	}
	_, kern, err := resolveModels(m, p, models, nil)
	if err != nil {
		return Stats{}, err
	}
	if cond < 0 || cond >= m.Cols() {
		return Stats{}, fmt.Errorf("core: subtree condition %d outside [0,%d)", cond, m.Cols())
	}
	iso := p
	iso.MaxNodes, iso.MaxClusters = 0, 0
	bud := newBudget(iso, ctx)
	mn := newMiner(m, iso, kern, bud)
	mn.sink = func(b *Bicluster, node int) bool {
		return visit(SubtreeCluster{Cluster: b, Node: node})
	}
	mn.runFrom(cond)
	if err := bud.contextErr(); err != nil {
		return Stats{}, err
	}
	return mn.stats, nil
}

// MineSubtree is MineSubtreeFunc collecting into a SubtreePartial.
func MineSubtree(ctx context.Context, m *matrix.Matrix, p Params, cond int, models []*rwave.Model) (*SubtreePartial, error) {
	sp := &SubtreePartial{Cond: cond}
	stats, err := MineSubtreeFunc(ctx, m, p, cond, models, func(sc SubtreeCluster) bool {
		sp.Clusters = append(sp.Clusters, sc)
		return true
	})
	if err != nil {
		return nil, err
	}
	sp.Stats = stats
	return sp, nil
}

// SubtreeMerger reassembles complete subtree partials — produced by
// MineSubtree anywhere, in any order — into the exact sequential mining
// output. It mirrors the in-process emitter's accounting (engine.emit):
// clusters are delivered in starting-condition order, DFS within a subtree;
// the global MaxNodes/MaxClusters caps are enforced against the settled
// prefix using each cluster's subtree-local node ordinal; and any truncation
// (cap trip or visitor stop) re-mines the truncating subtree locally against
// a budget pre-charged with the prefix totals, reproducing the truncated
// sequential run's Stats exactly. Not safe for concurrent use; one goroutine
// owns a merger.
type SubtreeMerger struct {
	ctx   context.Context
	m     *matrix.Matrix
	p     Params
	kern  []rwave.Kernel // shared flat model views for reconciliation reruns
	visit Visitor
	ck    CheckpointConfig
	sp    *obs.Span // optional trace parent for reconciliation reruns

	next    int                     // first condition not yet folded
	resume  int                     // the resumed subtree; its first `skip` clusters are suppressed
	skip    int                     // remaining resume watermark of subtree `resume`
	pending map[int]*SubtreePartial // offered out of order, waiting for their turn

	// Exact sequential accounting of the settled prefix, as in engine.emit.
	agg         Stats
	cumNodes    int
	cumClusters int

	// Checkpoint emission state (see engine.noteDelivery/snapshot).
	ckFresh   int
	lastChain []int

	done bool
	err  error
}

// NewSubtreeMerger builds a merger over (m, p). The visitor receives clusters
// on the Offer caller's goroutine; resume positions the merger after a prior
// run's checkpoint (its prefix is never re-delivered), and ck emits new
// snapshots exactly as the in-process engine would — at subtree boundaries
// plus every EveryClusters deliveries. ctx bounds reconciliation reruns; nil
// means background.
func NewSubtreeMerger(ctx context.Context, m *matrix.Matrix, p Params, models []*rwave.Model, visit Visitor, resume *Checkpoint, ck CheckpointConfig) (*SubtreeMerger, error) {
	if visit == nil {
		return nil, fmt.Errorf("core: SubtreeMerger requires a visitor")
	}
	_, kern, err := resolveModels(m, p, models, nil)
	if err != nil {
		return nil, err
	}
	g := &SubtreeMerger{ctx: ctx, m: m, p: p, kern: kern, visit: visit, ck: ck,
		pending: make(map[int]*SubtreePartial)}
	if resume != nil {
		if err := resume.Validate(m.Cols()); err != nil {
			return nil, err
		}
		g.next = resume.NextCond
		g.resume = resume.NextCond
		g.skip = resume.SkipClusters
		g.agg = resume.Prefix
		g.cumNodes = resume.Prefix.Nodes
		g.cumClusters = resume.Prefix.Clusters
		g.lastChain = resume.LastChain
	}
	if g.next >= m.Cols() {
		g.done = true
	}
	return g, nil
}

// SetSpan attaches a trace parent: reconciliation reruns and budget trips are
// recorded under it. Nil (the default) disables tracing at zero cost.
func (g *SubtreeMerger) SetSpan(sp *obs.Span) { g.sp = sp }

// NextCond returns the first starting condition the merger still needs; it
// is meaningless once Done.
func (g *SubtreeMerger) NextCond() int { return g.next }

// Done reports whether the run has settled: every subtree folded, or a cap /
// visitor stop truncated it. No further Offer calls are needed (they are
// ignored).
func (g *SubtreeMerger) Done() bool { return g.done }

// Result returns the run's total Stats and error. Valid only once Done.
func (g *SubtreeMerger) Result() (Stats, error) { return g.agg, g.err }

// Offer folds one complete subtree partial. Partials may arrive in any
// order; out-of-order ones are parked until every earlier subtree has been
// folded. Offer returns the merger's Done state; after a truncation or error
// it stays done and further offers are no-ops. Offering a partial for an
// already-folded subtree, a duplicate, or one marked Truncated is an error.
func (g *SubtreeMerger) Offer(part *SubtreePartial) (bool, error) {
	if g.done {
		return true, g.err
	}
	c := part.Cond
	if c < g.next || c >= g.m.Cols() {
		return g.done, fmt.Errorf("core: subtree partial for condition %d outside [%d,%d)", c, g.next, g.m.Cols())
	}
	if _, dup := g.pending[c]; dup {
		return g.done, fmt.Errorf("core: duplicate subtree partial for condition %d", c)
	}
	if part.Stats.Truncated {
		return g.done, fmt.Errorf("core: subtree partial for condition %d is incomplete (abandoned mid-mine)", c)
	}
	g.pending[c] = part
	for !g.done {
		nxt, ok := g.pending[g.next]
		if !ok {
			break
		}
		delete(g.pending, g.next)
		g.foldOne(nxt)
	}
	if g.done {
		g.pending = nil
	}
	return g.done, g.err
}

// foldOne settles subtree part.Cond into the prefix, replicating the emitter
// loop of engine.emit for a complete subtree.
func (g *SubtreeMerger) foldOne(part *SubtreePartial) {
	c := part.Cond
	nodeCap, clusterCap := g.p.MaxNodes, g.p.MaxClusters
	skip := 0
	if c == g.resume {
		skip = g.skip
	}
	taken := 0
	for _, sc := range part.Clusters {
		if nodeCap > 0 && g.cumNodes+sc.Node > nodeCap {
			// The node that emitted this cluster lies beyond the global cap:
			// the sequential miner stops before it.
			g.truncate(c, taken, clusterCap)
			return
		}
		taken++
		if taken > skip {
			if !g.visit(sc.Cluster) {
				// A visitor stop right after this cluster is equivalent to a
				// MaxClusters cap at the delivered total.
				g.truncate(c, taken, g.cumClusters+taken)
				return
			}
			g.noteDelivery(c, taken, sc.Cluster)
		}
		if clusterCap > 0 && g.cumClusters+taken >= clusterCap {
			g.truncate(c, taken, clusterCap)
			return
		}
	}
	if nodeCap > 0 && g.cumNodes+part.Stats.Nodes > nodeCap {
		// The node cap fires inside this subtree after its last cluster.
		g.truncate(c, taken, clusterCap)
		return
	}
	g.account(part.Stats)
	g.next = c + 1
	if g.next >= g.m.Cols() {
		g.done = true
	}
	if g.ck.enabled() {
		g.snapshot(g.next, 0)
	}
}

// noteDelivery mirrors engine.noteDelivery: cadence checkpoints keyed to the
// subtree watermark of the delivery.
func (g *SubtreeMerger) noteDelivery(c, taken int, b *Bicluster) {
	if !g.ck.enabled() {
		return
	}
	g.ckFresh++
	g.lastChain = b.Chain
	if g.ck.EveryClusters > 0 && g.ckFresh >= g.ck.EveryClusters {
		g.snapshot(c, taken)
	}
}

func (g *SubtreeMerger) snapshot(nextCond, skip int) {
	g.ckFresh = 0
	g.sp.Add("checkpoints", 1)
	ck := Checkpoint{Version: CheckpointVersion, NextCond: nextCond, SkipClusters: skip, Prefix: g.agg}
	if len(g.lastChain) > 0 {
		ck.LastChain = append([]int(nil), g.lastChain...)
	}
	g.ck.OnCheckpoint(ck)
}

func (g *SubtreeMerger) account(st Stats) {
	g.agg.Add(st)
	g.cumNodes += st.Nodes
	g.cumClusters += st.Clusters
}

// truncate settles a truncation detected while folding subtree c, after
// `taken` of its clusters were admitted: the subtree is re-mined locally
// against the pre-charged continuation budget solely to reproduce the
// truncated sequential run's Stats. No further clusters are delivered.
func (g *SubtreeMerger) truncate(c, taken, effClusterCap int) {
	g.done = true
	g.sp.Add("budget_trips", 1)
	rsp := g.sp.Start("rerun")
	if rsp != nil {
		rsp.SetInt("cond", int64(c))
		rsp.SetInt("skip", int64(taken))
		defer rsp.End()
	}
	rbud := prechargedBudget(g.p.MaxNodes, effClusterCap, g.cumNodes, g.cumClusters)
	if g.ctx != nil {
		rbud.done = g.ctx.Done()
		rbud.ctxErr = g.ctx.Err
	}
	mn := newMiner(g.m, g.p, g.kern, rbud)
	mn.sink = func(*Bicluster, int) bool { return true }
	mn.runFrom(c)
	if err := rbud.contextErr(); err != nil {
		g.err = err
		g.agg = Stats{}
		return
	}
	g.agg.Add(mn.stats)
}

// MergeSubtreePartials folds a full set of subtree partials (one per
// condition, any order) into a Result identical to Mine(m, p)'s — including
// cap truncation, which re-mines the truncating subtree locally. It is the
// batch convenience over SubtreeMerger.
func MergeSubtreePartials(m *matrix.Matrix, p Params, models []*rwave.Model, partials []*SubtreePartial) (*Result, error) {
	res := &Result{}
	g, err := NewSubtreeMerger(nil, m, p, models, func(b *Bicluster) bool {
		res.Clusters = append(res.Clusters, b)
		return true
	}, nil, CheckpointConfig{})
	if err != nil {
		return nil, err
	}
	sorted := append([]*SubtreePartial(nil), partials...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cond < sorted[j].Cond })
	for _, part := range sorted {
		done, err := g.Offer(part)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if !g.Done() {
		return nil, fmt.Errorf("core: missing subtree partial for condition %d", g.NextCond())
	}
	stats, err := g.Result()
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
