package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"regcluster/internal/matrix"
)

// permuteConds returns a copy of m with columns permuted by perm
// (new column j holds old column perm[j]).
func permuteConds(m *matrix.Matrix, perm []int) *matrix.Matrix {
	out := matrix.New(m.Rows(), m.Cols())
	for g := 0; g < m.Rows(); g++ {
		for j, src := range perm {
			out.Set(g, j, m.At(g, src))
		}
	}
	return out
}

// permuteGenes returns a copy with rows permuted (new row i holds old row
// perm[i]).
func permuteGenes(m *matrix.Matrix, perm []int) *matrix.Matrix {
	out := matrix.New(m.Rows(), m.Cols())
	for i, src := range perm {
		for j := 0; j < m.Cols(); j++ {
			out.Set(i, j, m.At(src, j))
		}
	}
	return out
}

// canonicalKeys maps each cluster through the inverse relabeling and returns
// sorted keys, so results on permuted matrices can be compared directly.
func canonicalKeys(t *testing.T, clusters []*Bicluster, geneMap, condMap []int) []string {
	t.Helper()
	keys := make([]string, 0, len(clusters))
	for _, b := range clusters {
		nb := &Bicluster{}
		for _, c := range b.Chain {
			nb.Chain = append(nb.Chain, condMap[c])
		}
		for _, g := range b.PMembers {
			nb.PMembers = append(nb.PMembers, geneMap[g])
		}
		for _, g := range b.NMembers {
			nb.NMembers = append(nb.NMembers, geneMap[g])
		}
		sort.Ints(nb.PMembers)
		sort.Ints(nb.NMembers)
		keys = append(keys, nb.Key())
	}
	sort.Strings(keys)
	return keys
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestGenePermutationInvariance: relabeling genes must relabel the clusters
// and nothing else.
func TestGenePermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		m := randomMatrix(25, 8, int64(trial))
		p := Params{MinG: 3, MinC: 3, Gamma: 0.08, Epsilon: 0.3}
		base, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(m.Rows())
		pm := permuteGenes(m, perm)
		permuted, err := Mine(pm, p)
		if err != nil {
			t.Fatal(err)
		}
		want := canonicalKeys(t, base.Clusters, identity(m.Rows()), identity(m.Cols()))
		got := canonicalKeys(t, permuted.Clusters, perm, identity(m.Cols()))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: gene permutation changed the cluster set (%d vs %d)",
				trial, len(got), len(want))
		}
	}
}

// TestConditionPermutationInvariance: relabeling conditions must relabel the
// chains and nothing else, for clusters with a STRICT p-member majority.
// Clusters whose p- and n-members tie are inherently label-dependent: the
// paper's representative rule breaks ties by condition id, and the Equation 7
// baseline differs per orientation (so a tied cluster may only materialize
// as a maximal window in one orientation). We therefore compare the
// strict-majority subset, orientation-normalized.
func TestConditionPermutationInvariance(t *testing.T) {
	normalize := func(keys []string, clusters []*Bicluster, condMap []int) []string {
		out := make([]string, 0, len(clusters))
		for _, b := range clusters {
			if len(b.PMembers) == len(b.NMembers) {
				continue // tie: label-dependent by design
			}
			chain := make([]int, len(b.Chain))
			for i, c := range b.Chain {
				chain[i] = condMap[c]
			}
			// Orientation-normalize: represent by the lexicographically
			// smaller of (chain, reversed chain with p/n swapped).
			fwd := &Bicluster{Chain: chain, PMembers: append([]int(nil), b.PMembers...), NMembers: append([]int(nil), b.NMembers...)}
			rev := &Bicluster{Chain: reverseInts(chain), PMembers: append([]int(nil), b.NMembers...), NMembers: append([]int(nil), b.PMembers...)}
			sort.Ints(fwd.PMembers)
			sort.Ints(fwd.NMembers)
			sort.Ints(rev.PMembers)
			sort.Ints(rev.NMembers)
			k := fwd.Key()
			if rk := rev.Key(); rk < k {
				k = rk
			}
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m := randomMatrix(25, 7, int64(100+trial))
		p := Params{MinG: 3, MinC: 3, Gamma: 0.08, Epsilon: 0.3}
		base, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(m.Cols())
		// inverse permutation: new column j holds old column perm[j], so an
		// index c in the permuted matrix maps back to perm[c].
		pm := permuteConds(m, perm)
		permuted, err := Mine(pm, p)
		if err != nil {
			t.Fatal(err)
		}
		want := normalize(nil, base.Clusters, identity(m.Cols()))
		got := normalize(nil, permuted.Clusters, perm)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: condition permutation changed the cluster set (%d vs %d)",
				trial, len(got), len(want))
		}
	}
}

// TestShiftScaleWholeMatrixInvariance: applying one global affine transform
// d := s1*d + s2 (s1 > 0) to the WHOLE matrix preserves every cluster
// exactly — both the regulation threshold (Equation 4) and the coherence
// score (Equation 7) are affine-invariant.
func TestShiftScaleWholeMatrixInvariance(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		m := randomMatrix(20, 7, int64(200+trial))
		p := Params{MinG: 3, MinC: 3, Gamma: 0.1, Epsilon: 0.25}
		base, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		s1 := 0.5 + float64(trial)
		s2 := float64(trial*13) - 40
		tm := m.Clone()
		for g := 0; g < tm.Rows(); g++ {
			tm.ShiftScaleRow(g, s1, s2)
		}
		trans, err := Mine(tm, p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameClusterKeys(base.Clusters, trans.Clusters) {
			t.Fatalf("trial %d: global affine transform changed the cluster set (%d vs %d)",
				trial, len(trans.Clusters), len(base.Clusters))
		}
	}
}

// TestNegatedMatrixSwapsMembers: negating the whole matrix turns every
// cluster's chain around — p-members and n-members swap roles, the cluster
// structure is otherwise preserved.
func TestNegatedMatrixSwapsMembers(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 5, 9, 13},
		{2, 10, 18, 26},
		{40, 30, 20, 10},
	})
	p := Params{MinG: 3, MinC: 4, Gamma: 0.1, Epsilon: 1e-9}
	base, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Clusters) != 1 {
		t.Fatalf("setup: %d clusters", len(base.Clusters))
	}
	neg := m.Clone()
	for g := 0; g < neg.Rows(); g++ {
		neg.ShiftScaleRow(g, -1, 0)
	}
	negRes, err := Mine(neg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(negRes.Clusters) != 1 {
		t.Fatalf("negated: %d clusters", len(negRes.Clusters))
	}
	b, nb := base.Clusters[0], negRes.Clusters[0]
	if !reflect.DeepEqual(b.PMembers, nb.PMembers) || !reflect.DeepEqual(b.NMembers, nb.NMembers) {
		t.Fatalf("negation should preserve the p/n split via chain reversal: %v vs %v", b, nb)
	}
	if !reflect.DeepEqual(reverseInts(b.Chain), nb.Chain) {
		t.Fatalf("negation should reverse the chain: %v vs %v", b.Chain, nb.Chain)
	}
}

// TestInfiniteValuesNeverCluster documents behaviour on ±Inf cells: the
// affected gene's range is infinite, so its regulation threshold is infinite
// and it can never join a cluster; other genes are unaffected.
func TestInfiniteValuesNeverCluster(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{math.Inf(1), 1, 2, 3},
	})
	p := Params{MinG: 2, MinC: 4, Gamma: 0.1, Epsilon: 0.5}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Clusters {
		for _, g := range b.Genes() {
			if g == 2 {
				t.Fatalf("gene with Inf cell joined a cluster: %v", b)
			}
		}
	}
	if len(res.Clusters) == 0 {
		t.Fatal("finite genes should still cluster")
	}
}

func reverseInts(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}
