package core

import (
	"context"
	"reflect"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
	"regcluster/internal/synthetic"
)

func subtreeTestMatrix(t *testing.T) (*matrix.Matrix, Params) {
	t.Helper()
	cfg := synthetic.Config{Genes: 110, Conds: 12, Clusters: 4, Seed: 11}
	mm, _, err := synthetic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mm, Params{MinG: 4, MinC: 4, Gamma: 0.08, Epsilon: 0.05}
}

// mineAllSubtrees mines every level-1 subtree in isolation, in an order that
// deliberately differs from both the condition order and the engine's
// dispatch order, as distributed workers would.
func mineAllSubtrees(t *testing.T, m *matrix.Matrix, p Params) []*SubtreePartial {
	t.Helper()
	models, err := BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*SubtreePartial, 0, m.Cols())
	for c := m.Cols() - 1; c >= 0; c-- {
		part, err := MineSubtree(context.Background(), m, p, c, models)
		if err != nil {
			t.Fatalf("subtree %d: %v", c, err)
		}
		if part.Stats.Truncated {
			t.Fatalf("subtree %d: isolated mine reported truncation", c)
		}
		parts = append(parts, part)
	}
	return parts
}

func clustersEqual(t *testing.T, want, got []*Bicluster) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("cluster count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("cluster %d differs:\n want %s\n got  %s", i, want[i], got[i])
		}
	}
}

// The tentpole guarantee: per-subtree isolated mining plus the merger equals
// the sequential miner exactly — clusters and every Stats counter — with and
// without global caps.
func TestMergeSubtreePartialsMatchesMine(t *testing.T) {
	m, base := subtreeTestMatrix(t)
	ref, err := Mine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Clusters < 50 {
		t.Fatalf("workload too small (%d clusters); test is weak", ref.Stats.Clusters)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"uncapped", func(*Params) {}},
		{"node_cap", func(p *Params) { p.MaxNodes = ref.Stats.Nodes / 3 }},
		{"cluster_cap", func(p *Params) { p.MaxClusters = ref.Stats.Clusters / 2 }},
		{"both_caps", func(p *Params) { p.MaxNodes = ref.Stats.Nodes * 2 / 3; p.MaxClusters = ref.Stats.Clusters * 2 / 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mut(&p)
			want, err := Mine(m, p)
			if err != nil {
				t.Fatal(err)
			}
			// Partials are mined WITHOUT caps — the merger owns global budget
			// enforcement — so they are shared across all cap variants of the
			// same base parameters in a real coordinator. Mine them per-case
			// here to keep the test self-contained.
			parts := mineAllSubtrees(t, m, p)
			got, err := MergeSubtreePartials(m, p, nil, parts)
			if err != nil {
				t.Fatal(err)
			}
			clustersEqual(t, want.Clusters, got.Clusters)
			if !reflect.DeepEqual(want.Stats, got.Stats) {
				t.Errorf("stats: want %+v, got %+v", want.Stats, got.Stats)
			}
		})
	}
}

// A merger fed out of order must still deliver in sequential order, and its
// checkpoints must resume exactly like the engine's.
func TestSubtreeMergerResume(t *testing.T) {
	m, p := subtreeTestMatrix(t)
	parts := mineAllSubtrees(t, m, p)
	byCond := make(map[int]*SubtreePartial, len(parts))
	for _, part := range parts {
		byCond[part.Cond] = part
	}

	// Full merged run, capturing cadence checkpoints.
	var full []*Bicluster
	var cks []Checkpoint
	g, err := NewSubtreeMerger(nil, m, p, nil, func(b *Bicluster) bool {
		full = append(full, b)
		return true
	}, nil, CheckpointConfig{EveryClusters: 7, OnCheckpoint: func(ck Checkpoint) { cks = append(cks, ck) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range parts { // reverse condition order: all out of order
		if _, err := g.Offer(part); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Done() {
		t.Fatalf("merger not done; next cond %d", g.NextCond())
	}
	fullStats, err := g.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints emitted")
	}

	// Resume from a mid-run cadence checkpoint: only the suffix re-delivers.
	ck := cks[len(cks)/2]
	if ck.Delivered() == 0 || ck.Delivered() >= len(full) {
		t.Fatalf("checkpoint watermark %d not mid-run (of %d)", ck.Delivered(), len(full))
	}
	var tail []*Bicluster
	rg, err := NewSubtreeMerger(nil, m, p, nil, func(b *Bicluster) bool {
		tail = append(tail, b)
		return true
	}, &ck, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for c := ck.NextCond; c < m.Cols() && !rg.Done(); c++ {
		if _, err := rg.Offer(byCond[c]); err != nil {
			t.Fatal(err)
		}
	}
	if !rg.Done() {
		t.Fatalf("resumed merger not done; next cond %d", rg.NextCond())
	}
	resumedStats, err := rg.Result()
	if err != nil {
		t.Fatal(err)
	}
	clustersEqual(t, full[ck.Delivered():], tail)
	if !reflect.DeepEqual(fullStats, resumedStats) {
		t.Errorf("resumed stats: want %+v, got %+v", fullStats, resumedStats)
	}
}

// A visitor stop inside the merger must reproduce the sequential MineFunc
// truncation exactly.
func TestSubtreeMergerVisitorStopMatchesMineFunc(t *testing.T) {
	m, p := subtreeTestMatrix(t)
	const stopAfter = 23
	var want []*Bicluster
	wantStats, err := MineFunc(m, p, func(b *Bicluster) bool {
		want = append(want, b)
		return len(want) < stopAfter
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wantStats.Truncated {
		t.Fatal("sequential visitor stop did not truncate; test is vacuous")
	}

	parts := mineAllSubtrees(t, m, p)
	var got []*Bicluster
	g, err := NewSubtreeMerger(nil, m, p, nil, func(b *Bicluster) bool {
		got = append(got, b)
		return len(got) < stopAfter
	}, nil, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range parts {
		done, err := g.Offer(part)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if !g.Done() {
		t.Fatal("merger did not settle on visitor stop")
	}
	gotStats, err := g.Result()
	if err != nil {
		t.Fatal(err)
	}
	clustersEqual(t, want, got)
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Errorf("stats: want %+v, got %+v", wantStats, gotStats)
	}
}

func TestSubtreeMergerRejectsBadPartials(t *testing.T) {
	m, p := subtreeTestMatrix(t)
	models, err := BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewSubtreeMerger(nil, m, p, models, func(*Bicluster) bool { return true }, nil, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Offer(&SubtreePartial{Cond: m.Cols()}); err == nil {
		t.Error("out-of-range condition accepted")
	}
	if _, err := g.Offer(&SubtreePartial{Cond: 3, Stats: Stats{Truncated: true}}); err == nil {
		t.Error("truncated (abandoned) partial accepted")
	}
	if _, err := g.Offer(&SubtreePartial{Cond: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Offer(&SubtreePartial{Cond: 3}); err == nil {
		t.Error("duplicate pending partial accepted")
	}
	part, err := MineSubtree(context.Background(), m, p, 0, models)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Offer(part); err != nil {
		t.Fatal(err)
	}
	// Subtree 0 folded; re-offering it is now behind the merge frontier.
	if _, err := g.Offer(&SubtreePartial{Cond: 0}); err == nil {
		t.Error("already-folded partial accepted")
	}
	// A missing partial surfaces as an explicit merge error in the batch API.
	if _, err := MergeSubtreePartials(m, p, models, []*SubtreePartial{part}); err == nil {
		t.Error("incomplete partial set merged without error")
	}
}

func TestMineSubtreeFuncCancellation(t *testing.T) {
	m, p := subtreeTestMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MineSubtreeFunc(ctx, m, p, 0, nil, func(SubtreeCluster) bool { return true })
	if err == nil {
		t.Fatal("cancelled context did not interrupt the subtree mine")
	}
}

func TestSubtreeOrderMatchesEngineDispatch(t *testing.T) {
	m, p := subtreeTestMatrix(t)
	models, err := BuildModels(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SubtreeOrder(m, p, models)
	if err != nil {
		t.Fatal(err)
	}
	want := subtreeOrder(m, p, rwave.Kernels(models))
	if !reflect.DeepEqual(want, got) {
		t.Errorf("exported order %v != engine order %v", got, want)
	}
	if len(got) != m.Cols() {
		t.Errorf("order covers %d of %d conditions", len(got), m.Cols())
	}
}
