package core

import (
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
)

// bruteForceChains enumerates EVERY valid reg-cluster of m under p by brute
// force: all ordered condition sequences of length >= MinC (via DFS over
// permutations), with the maximal coherent gene windows per sequence,
// filtered by the representative rule. It is exponential and only usable on
// tiny matrices; the miner must reproduce its output exactly.
func bruteForceChains(m *matrix.Matrix, p Params) map[string]bool {
	out := map[string]bool{}
	n := m.Cols()
	gammas := make([]float64, m.Rows())
	for g := range gammas {
		gammas[g] = p.Gamma * m.RowRange(g)
	}

	type dirGene struct {
		gene int
		up   bool
	}
	// follows reports whether the gene (in direction up) steps from a to b
	// with a significant regulation.
	follows := func(dg dirGene, a, b int) bool {
		d := m.At(dg.gene, b) - m.At(dg.gene, a)
		if !dg.up {
			d = -d
		}
		return d > gammas[dg.gene]
	}
	hOf := func(dg dirGene, chain []int, k int) float64 {
		return (m.At(dg.gene, chain[k+1]) - m.At(dg.gene, chain[k])) /
			(m.At(dg.gene, chain[1]) - m.At(dg.gene, chain[0]))
	}

	var rec func(chain []int, members []dirGene)
	rec = func(chain []int, members []dirGene) {
		if len(chain) >= p.MinC {
			// Representative rule.
			pc := 0
			for _, dg := range members {
				if dg.up {
					pc++
				}
			}
			nc := len(members) - pc
			if (pc > nc || (pc == nc && chain[0] > chain[len(chain)-1])) && len(members) >= p.MinG {
				b := &Bicluster{Chain: append([]int(nil), chain...)}
				for _, dg := range members {
					if dg.up {
						b.PMembers = append(b.PMembers, dg.gene)
					} else {
						b.NMembers = append(b.NMembers, dg.gene)
					}
				}
				sortInts(b.PMembers)
				sortInts(b.NMembers)
				out[b.Key()] = true
			}
		}
		// Extend by every unused condition.
		used := map[int]bool{}
		for _, c := range chain {
			used[c] = true
		}
		for c := 0; c < n; c++ {
			if used[c] {
				continue
			}
			// Members stepping to c.
			var stepped []dirGene
			for _, dg := range members {
				if follows(dg, chain[len(chain)-1], c) {
					stepped = append(stepped, dg)
				}
			}
			if len(stepped) < p.MinG {
				continue
			}
			newChain := append(append([]int(nil), chain...), c)
			// All maximal coherent windows on the H score of the new pair
			// (pairs validated incrementally, as in Definition 3.2 the
			// earlier pairs were already enforced on a superset).
			if len(newChain) < 3 {
				rec(newChain, stepped)
				continue
			}
			type scored struct {
				dg dirGene
				h  float64
			}
			ss := make([]scored, len(stepped))
			for i, dg := range stepped {
				ss[i] = scored{dg, hOf(dg, newChain, len(newChain)-2)}
			}
			// Sort by h.
			for i := 1; i < len(ss); i++ {
				for j := i; j > 0 && (ss[j].h < ss[j-1].h || (ss[j].h == ss[j-1].h && less(ss[j].dg, ss[j-1].dg))); j-- {
					ss[j], ss[j-1] = ss[j-1], ss[j]
				}
			}
			prevR := -1
			r := 0
			for l := 0; l < len(ss); l++ {
				if r < l {
					r = l
				}
				for r+1 < len(ss) && ss[r+1].h-ss[l].h <= p.Epsilon {
					r++
				}
				if r-l+1 >= p.MinG && r > prevR {
					var w []dirGene
					for k := l; k <= r; k++ {
						w = append(w, ss[k].dg)
					}
					rec(newChain, w)
					prevR = r
				}
			}
		}
	}

	for c := 0; c < n; c++ {
		var members []dirGene
		for g := 0; g < m.Rows(); g++ {
			members = append(members, dirGene{g, true}, dirGene{g, false})
		}
		rec([]int{c}, members)
	}
	return out
}

func less(a, b struct {
	gene int
	up   bool
}) bool {
	if a.gene != b.gene {
		return a.gene < b.gene
	}
	return a.up && !b.up
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestMinerMatchesBruteForce cross-validates the production miner against
// the exponential reference enumerator on many small random matrices: the
// outputs must agree exactly (both soundness AND completeness).
func TestMinerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20060101))
	for trial := 0; trial < 60; trial++ {
		genes := 3 + rng.Intn(4) // 3..6
		conds := 3 + rng.Intn(3) // 3..5
		m := matrix.New(genes, conds)
		for g := 0; g < genes; g++ {
			for c := 0; c < conds; c++ {
				// Coarse values create ties and many boundary regulations.
				m.Set(g, c, float64(rng.Intn(12)))
			}
		}
		p := Params{
			MinG:    2,
			MinC:    2 + rng.Intn(2),
			Gamma:   []float64{0, 0.1, 0.2}[rng.Intn(3)],
			Epsilon: []float64{0, 0.25, 1.0}[rng.Intn(3)],
		}
		res, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, b := range res.Clusters {
			got[b.Key()] = true
		}
		want := bruteForceChains(m, p)
		for k := range want {
			if !got[k] {
				t.Errorf("trial %d (%dx%d, %+v): miner MISSED cluster %s\nmatrix:\n%v",
					trial, genes, conds, p, k, m)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("trial %d (%dx%d, %+v): miner INVENTED cluster %s\nmatrix:\n%v",
					trial, genes, conds, p, k, m)
			}
		}
		if t.Failed() {
			return
		}
	}
}
