package core

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func TestMineRejectsNaN(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, math.NaN()}, {2, 3}})
	if _, err := Mine(m, Params{MinG: 2, MinC: 2, Gamma: 0.1}); err == nil {
		t.Fatal("NaN matrix accepted")
	}
}

func TestCustomGammasOverride(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{0, 10, 20, 30},
		{0, 10, 20, 30},
	})
	// Steps are 10. Custom absolute thresholds of 9 accept; 11 reject.
	p := Params{MinG: 2, MinC: 4, Gamma: 0.9, Epsilon: 0.1, CustomGammas: []float64{9, 9}}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("custom γ=9 should accept: %v", res.Clusters)
	}
	if err := CheckBicluster(m, p, res.Clusters[0]); err != nil {
		t.Errorf("validator disagrees with miner under CustomGammas: %v", err)
	}
	p.CustomGammas = []float64{11, 11}
	res, err = Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Fatalf("custom γ=11 should reject: %v", res.Clusters)
	}
}

func TestCustomGammasValidation(t *testing.T) {
	m := matrix.New(2, 3)
	if _, err := Mine(m, Params{MinG: 2, MinC: 2, Gamma: 0.1, CustomGammas: []float64{1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Mine(m, Params{MinG: 2, MinC: 2, Gamma: 0.1, CustomGammas: []float64{1, -1}}); err == nil {
		t.Error("negative custom gamma accepted")
	}
}

func TestThresholdHelpers(t *testing.T) {
	m2 := matrix.FromRows([][]float64{{0, 10}, {-4, 4}})
	if got := ThresholdsRangeFraction(m2, 0.5); !reflect.DeepEqual(got, []float64{5, 4}) {
		t.Errorf("range fraction = %v", got)
	}
	if got := ThresholdsMeanFraction(m2, 1.0); !reflect.DeepEqual(got, []float64{5, 4}) {
		t.Errorf("mean fraction = %v", got)
	}
	m3 := matrix.FromRows([][]float64{{1, 5, 3, 11}})
	// Sorted: 1,3,5,11 → gaps 2,2,6 → mean 10/3.
	got := ThresholdsNearestPair(m3)
	if math.Abs(got[0]-10.0/3) > 1e-12 {
		t.Errorf("nearest pair = %v", got)
	}
	if ThresholdsNearestPair(matrix.New(1, 1))[0] != 0 {
		t.Error("single-condition nearest pair should be 0")
	}
}

func TestThresholdsEquivalence(t *testing.T) {
	// CustomGammas = ThresholdsRangeFraction(γ) must reproduce the default
	// Equation 4 behaviour exactly.
	m := paperdata.RunningExample()
	base := Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	custom := base
	custom.Gamma = 0
	custom.CustomGammas = ThresholdsRangeFraction(m, 0.15)
	a, err := Mine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(m, custom)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) || a.Clusters[0].Key() != b.Clusters[0].Key() {
		t.Fatal("CustomGammas(range fraction) diverged from Equation 4 default")
	}
}

func TestMineParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		m := randomMatrix(60, 10, seed)
		p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
		seq, err := Mine(m, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 16} {
			par, err := MineParallel(m, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !sameClusterKeys(seq.Clusters, par.Clusters) {
				t.Fatalf("seed %d workers %d: parallel output differs (%d vs %d clusters)",
					seed, workers, len(par.Clusters), len(seq.Clusters))
			}
			if par.Stats.Nodes != seq.Stats.Nodes {
				t.Errorf("seed %d workers %d: node counts differ: %d vs %d",
					seed, workers, par.Stats.Nodes, seq.Stats.Nodes)
			}
		}
	}
}

func TestMineParallelOrderDeterministic(t *testing.T) {
	m := randomMatrix(50, 8, 9)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	a, err := MineParallel(m, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MineParallel(m, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatal("nondeterministic count")
	}
	for i := range a.Clusters {
		if a.Clusters[i].Key() != b.Clusters[i].Key() {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestMineParallelRunningExample(t *testing.T) {
	m := paperdata.RunningExample()
	res, err := MineParallel(m, runningParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || !reflect.DeepEqual(res.Clusters[0].Chain, paperdata.RunningExampleChain()) {
		t.Fatalf("parallel run diverged on the running example: %v", res.Clusters)
	}
}

func TestMineParallelValidation(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, math.NaN()}})
	if _, err := MineParallel(m, Params{MinG: 2, MinC: 2, Gamma: 0.1}, 2); err == nil {
		t.Fatal("NaN matrix accepted by MineParallel")
	}
}

func sameClusterKeys(a, b []*Bicluster) bool {
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = a[i].Key()
	}
	for i := range b {
		kb[i] = b[i].Key()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}
