package core

import (
	"reflect"
	"strings"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func TestBiclusterAccessors(t *testing.T) {
	b := &Bicluster{Chain: []int{6, 8, 4, 0, 2}, PMembers: []int{0, 2}, NMembers: []int{1}}
	if got := b.Genes(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Genes = %v", got)
	}
	if got := b.Conditions(); !reflect.DeepEqual(got, []int{0, 2, 4, 6, 8}) {
		t.Errorf("Conditions = %v", got)
	}
	if g, c := b.Dims(); g != 3 || c != 5 {
		t.Errorf("Dims = %d,%d", g, c)
	}
	if b.Cells() != 15 {
		t.Errorf("Cells = %d", b.Cells())
	}
	// Conditions must not mutate Chain.
	if !reflect.DeepEqual(b.Chain, []int{6, 8, 4, 0, 2}) {
		t.Error("Conditions() mutated Chain")
	}
}

func TestOverlap(t *testing.T) {
	a := &Bicluster{Chain: []int{0, 1, 2}, PMembers: []int{0, 1, 2, 3}}
	b := &Bicluster{Chain: []int{2, 3}, PMembers: []int{2, 3}, NMembers: []int{4}}
	// Shared genes {2,3}, shared conditions {2} → 2 cells.
	if got := a.OverlapCells(b); got != 2 {
		t.Errorf("OverlapCells = %d, want 2", got)
	}
	// min cells = 6 (b), fraction = 2/6.
	if got := a.OverlapFraction(b); got < 0.333 || got > 0.334 {
		t.Errorf("OverlapFraction = %v", got)
	}
	if a.OverlapFraction(a) != 1 {
		t.Errorf("self overlap = %v, want 1", a.OverlapFraction(a))
	}
	empty := &Bicluster{}
	if empty.OverlapFraction(a) != 0 {
		t.Error("empty cluster overlap should be 0")
	}
}

func TestKeyDistinguishesMemberSplit(t *testing.T) {
	a := &Bicluster{Chain: []int{0, 1}, PMembers: []int{1, 2}, NMembers: []int{3}}
	b := &Bicluster{Chain: []int{0, 1}, PMembers: []int{1}, NMembers: []int{2, 3}}
	c := &Bicluster{Chain: []int{1, 0}, PMembers: []int{1, 2}, NMembers: []int{3}}
	if a.Key() == b.Key() {
		t.Error("keys must distinguish the p/n split")
	}
	if a.Key() == c.Key() {
		t.Error("keys must distinguish chain order")
	}
	if a.Key() != (&Bicluster{Chain: []int{0, 1}, PMembers: []int{1, 2}, NMembers: []int{3}}).Key() {
		t.Error("identical clusters must share a key")
	}
}

func TestBiclusterString(t *testing.T) {
	b := &Bicluster{Chain: []int{6, 8}, PMembers: []int{0}, NMembers: []int{1}}
	s := b.String()
	if !strings.Contains(s, "c6") || !strings.Contains(s, "c8") {
		t.Errorf("String() = %q", s)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 2, 3}, []int{2, 3, 4}, []int{2, 3}},
		{[]int{1, 2}, []int{3, 4}, nil},
		{nil, []int{1}, nil},
		{[]int{5}, []int{5}, []int{5}},
	}
	for _, tc := range cases {
		if got := intersectSorted(tc.a, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMaximalWindows(t *testing.T) {
	mk := func(hs ...float64) []extMember {
		out := make([]extMember, len(hs))
		for i, h := range hs {
			out[i] = extMember{member{i, true}, h}
		}
		return out
	}
	cases := []struct {
		hs     []float64
		eps    float64
		minLen int
		want   [][2]int
	}{
		{[]float64{1, 1, 1}, 0, 3, [][2]int{{0, 2}}},
		{[]float64{0, 0.5, 1, 1.5}, 0.5, 2, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{[]float64{0, 0.5, 1, 1.5}, 1.0, 3, [][2]int{{0, 2}, {1, 3}}},
		{[]float64{0, 10, 20}, 1, 2, nil},
		{[]float64{0, 0.1, 5, 5.1}, 0.2, 2, [][2]int{{0, 1}, {2, 3}}},
		// A maximal window smaller than minLen is dropped but must not
		// suppress later windows.
		{[]float64{0, 0.1, 5, 9, 9.1, 9.2}, 0.5, 3, [][2]int{{3, 5}}},
		{nil, 1, 1, nil},
	}
	for i, tc := range cases {
		got := maximalWindows(nil, mk(tc.hs...), tc.eps, tc.minLen)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("case %d: windows = %v, want %v", i, got, tc.want)
		}
	}
}

func TestCheckBiclusterRejectsBadClusters(t *testing.T) {
	m := runningMatrix()
	p := runningParams()
	good := &Bicluster{Chain: []int{6, 8, 4, 0, 2}, PMembers: []int{0, 2}, NMembers: []int{1}}
	if err := CheckBicluster(m, p, good); err != nil {
		t.Fatalf("paper cluster rejected: %v", err)
	}
	bad := []*Bicluster{
		// too few conditions
		{Chain: []int{6, 8}, PMembers: []int{0, 2}, NMembers: []int{1}},
		// n-members outnumber p-members
		{Chain: []int{6, 8, 4, 0, 2}, PMembers: []int{1}, NMembers: []int{0, 2}},
		// wrong direction for g2 (listed as p-member but falls)
		{Chain: []int{6, 8, 4, 0, 2}, PMembers: []int{0, 1, 2}},
	}
	for i, b := range bad {
		if err := CheckBicluster(m, p, b); err == nil {
			t.Errorf("bad cluster %d accepted", i)
		}
	}
}

func runningMatrix() *matrix.Matrix { return paperdata.RunningExample() }
