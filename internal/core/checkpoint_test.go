package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
)

// resumableRun drives MineParallelFuncResumable collecting clusters and
// snapshots; stopAfter > 0 stops the visitor after that many deliveries
// (simulating an interruption).
func resumableRun(t *testing.T, m *matrix.Matrix, p Params, workers int, resume *Checkpoint, every, stopAfter int) ([]*Bicluster, []Checkpoint, Stats, error) {
	t.Helper()
	var got []*Bicluster
	var snaps []Checkpoint
	stats, err := MineParallelFuncResumable(context.Background(), m, p, workers,
		func(b *Bicluster) bool {
			got = append(got, b)
			return stopAfter <= 0 || len(got) < stopAfter
		},
		nil, resume,
		CheckpointConfig{EveryClusters: every, OnCheckpoint: func(ck Checkpoint) {
			snaps = append(snaps, ck)
		}})
	return got, snaps, stats, err
}

// TestResumableMatchesSequential: the resumable entry point without a resume
// snapshot must reproduce the sequential run exactly, at any worker count and
// checkpoint cadence, while emitting internally consistent snapshots.
func TestResumableMatchesSequential(t *testing.T) {
	m := randomMatrix(60, 10, 4)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Clusters) < 8 {
		t.Fatalf("workload too small: %d clusters", len(seq.Clusters))
	}
	for _, workers := range equivalenceWorkers {
		for _, every := range []int{1, 3, 1000} {
			got, snaps, stats, err := resumableRun(t, m, p, workers, nil, every, 0)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "resumable", seq, got, stats)
			if len(snaps) == 0 {
				t.Fatal("no snapshots emitted")
			}
			prevDelivered := -1
			for i, ck := range snaps {
				if err := ck.Validate(m.Cols()); err != nil {
					t.Fatalf("snapshot %d invalid: %v", i, err)
				}
				if d := ck.Delivered(); d < prevDelivered {
					t.Fatalf("snapshot %d watermark went backwards: %d after %d", i, d, prevDelivered)
				} else {
					prevDelivered = d
				}
				if ck.Prefix.Truncated {
					t.Fatalf("snapshot %d prefix marked truncated", i)
				}
			}
			// The final boundary snapshot covers the whole run.
			last := snaps[len(snaps)-1]
			if last.NextCond != m.Cols() || last.Delivered() != len(seq.Clusters) {
				t.Fatalf("final snapshot %+v does not cover the run (%d clusters)", last, len(seq.Clusters))
			}
			if !reflect.DeepEqual(last.Prefix, seq.Stats) {
				t.Fatalf("final snapshot prefix %+v, want %+v", last.Prefix, seq.Stats)
			}
		}
	}
}

// TestResumeFromEverySnapshot is the recovery core property: resuming from
// ANY snapshot of a run delivers exactly the remaining sequential clusters,
// and the resumed run's Stats equal the uninterrupted run's.
func TestResumeFromEverySnapshot(t *testing.T) {
	m := randomMatrix(60, 10, 4)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot after every delivery for maximal coverage.
	_, snaps, _, err := resumableRun(t, m, p, 2, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, ck := range snaps {
		ck := ck
		for _, workers := range equivalenceWorkers {
			got, _, stats, err := resumableRun(t, m, p, workers, &ck, 1000, 0)
			if err != nil {
				t.Fatalf("resume from snapshot %d: %v", i, err)
			}
			wantSuffix := seq.Clusters[ck.Delivered():]
			if len(got) != len(wantSuffix) {
				t.Fatalf("snapshot %d workers %d: resumed %d clusters, want %d",
					i, workers, len(got), len(wantSuffix))
			}
			for k := range got {
				if got[k].Key() != wantSuffix[k].Key() {
					t.Fatalf("snapshot %d: resumed cluster %d diverged", i, k)
				}
			}
			if !reflect.DeepEqual(stats, seq.Stats) {
				t.Fatalf("snapshot %d workers %d: resumed stats %+v, want %+v",
					i, workers, stats, seq.Stats)
			}
		}
	}
}

// TestResumeAfterInterruption models the crash path end to end: a run is
// interrupted mid-flight (visitor stop), recovery restarts from the last
// snapshot, and prefix + resumed suffix reassemble the full sequential run.
func TestResumeAfterInterruption(t *testing.T) {
	m := randomMatrix(60, 10, 4)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, stopAfter := range []int{1, 3, len(seq.Clusters) / 2, len(seq.Clusters) - 1} {
		for _, every := range []int{1, 2} {
			got, snaps, _, err := resumableRun(t, m, p, 4, nil, every, stopAfter)
			if err != nil {
				t.Fatal(err)
			}
			// The crash loses everything after the last snapshot; the
			// journaled prefix is the snapshot's watermark.
			var resume *Checkpoint
			delivered := 0
			if len(snaps) > 0 {
				resume = &snaps[len(snaps)-1]
				delivered = resume.Delivered()
			}
			if delivered > len(got) {
				t.Fatalf("snapshot watermark %d beyond the %d delivered clusters", delivered, len(got))
			}
			suffix, _, stats, err := resumableRun(t, m, p, 2, resume, 1000, 0)
			if err != nil {
				t.Fatal(err)
			}
			total := append(append([]*Bicluster(nil), got[:delivered]...), suffix...)
			assertSameRun(t, "prefix+resumed suffix", seq, total, stats)
		}
	}
}

// TestResumeWithNodeCap: resumption composes with a global MaxNodes budget —
// the resumed continuation truncates at exactly the sequential stop point.
func TestResumeWithNodeCap(t *testing.T) {
	m := randomMatrix(60, 10, 2)
	base := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	full, err := Mine(m, base)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.MaxNodes = full.Stats.Nodes / 2
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Clusters) < 3 {
		t.Skipf("capped run too small: %d clusters", len(seq.Clusters))
	}
	stopAfter := len(seq.Clusters) / 2
	got, snaps, _, err := resumableRun(t, m, p, 4, nil, 1, stopAfter)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots before the interruption")
	}
	resume := snaps[len(snaps)-1]
	suffix, _, stats, err := resumableRun(t, m, p, 2, &resume, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := append(append([]*Bicluster(nil), got[:resume.Delivered()]...), suffix...)
	assertSameRun(t, "capped resume", seq, total, stats)
	if !stats.Truncated {
		t.Fatal("capped resumed run not marked Truncated")
	}
}

// TestResumePastEnd: a snapshot taken after the last subtree settled resumes
// into an immediately complete run delivering nothing new.
func TestResumePastEnd(t *testing.T) {
	m := randomMatrix(40, 8, 6)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	resume := &Checkpoint{Version: CheckpointVersion, NextCond: m.Cols(), Prefix: seq.Stats}
	got, _, stats, err := resumableRun(t, m, p, 2, resume, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("resume past end delivered %d clusters", len(got))
	}
	if !reflect.DeepEqual(stats, seq.Stats) {
		t.Fatalf("stats %+v, want %+v", stats, seq.Stats)
	}
}

func TestCheckpointValidate(t *testing.T) {
	cases := []struct {
		name string
		ck   Checkpoint
		ok   bool
	}{
		{"valid", Checkpoint{Version: 1, NextCond: 3}, true},
		{"wrong version", Checkpoint{Version: 2}, false},
		{"negative cond", Checkpoint{Version: 1, NextCond: -1}, false},
		{"cond past end", Checkpoint{Version: 1, NextCond: 11}, false},
		{"end with skip", Checkpoint{Version: 1, NextCond: 10, SkipClusters: 1}, false},
		{"negative skip", Checkpoint{Version: 1, SkipClusters: -1}, false},
		{"negative prefix", Checkpoint{Version: 1, Prefix: Stats{Nodes: -1}}, false},
	}
	for _, tc := range cases {
		if err := tc.ck.Validate(10); (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	m := randomMatrix(20, 6, 1)
	bad := &Checkpoint{Version: 99}
	if _, err := MineParallelFuncResumable(context.Background(), m,
		Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}, 2,
		func(*Bicluster) bool { return true }, nil, bad, CheckpointConfig{}); err == nil {
		t.Fatal("invalid checkpoint accepted")
	}
}

// TestWorkerPanicContained: a panic on a mining worker goroutine must surface
// as a *PanicError from the API — never crash the process or deadlock the
// emitter — and the pool must stay usable for the next run.
func TestWorkerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := randomMatrix(60, 10, 4)
	p := Params{MinG: 3, MinC: 3, Gamma: 0.05, Epsilon: 0.4}
	seq, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		disarm := faultinject.Arm("core.mine.subtree",
			faultinject.Spec{Panic: "boom on subtree 3", After: 3, Times: 1})
		_, _, _, err := resumableRun(t, m, p, workers, nil, 0, 0)
		disarm()
		var perr *PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if !strings.Contains(perr.Error(), "boom on subtree 3") {
			t.Fatalf("panic error lost the value: %v", perr)
		}
		if len(perr.Stack) == 0 {
			t.Fatal("panic error carries no stack")
		}
		// The same inputs succeed once the fault is disarmed.
		got, _, stats, err := resumableRun(t, m, p, workers, nil, 0, 0)
		if err != nil {
			t.Fatalf("post-panic run failed: %v", err)
		}
		assertSameRun(t, "post-panic", seq, got, stats)
	}
}
