package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// TestStatsAddCoversAllFields sets every Stats field to a sentinel by
// reflection and asserts Add carries each one over: adding a counter to
// Stats without extending Add fails here instead of silently dropping the
// counter from parallel merges.
func TestStatsAddCoversAllFields(t *testing.T) {
	var sentinel Stats
	v := reflect.ValueOf(&sentinel).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(1)
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("Stats field %s has unhandled kind %s — extend Stats.Add and this test",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	var sum Stats
	sum.Add(sentinel)
	if !reflect.DeepEqual(sum, sentinel) {
		t.Fatalf("Stats.Add dropped fields:\n  got  %+v\n  want %+v", sum, sentinel)
	}
	sum.Add(sentinel)
	v = reflect.ValueOf(sum)
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Int && f.Int() != 2 {
			t.Errorf("Stats.Add did not accumulate field %s: %d after two adds",
				v.Type().Field(i).Name, f.Int())
		}
	}
	if !sum.Truncated {
		t.Error("Stats.Add lost Truncated")
	}
}

func TestBudgetNodeCap(t *testing.T) {
	b := prechargedBudget(3, 0, 0, 0)
	for i := 0; i < 3; i++ {
		if !b.chargeNode() {
			t.Fatalf("node %d rejected under cap 3", i+1)
		}
	}
	if b.chargeNode() {
		t.Fatal("node 4 accepted under cap 3")
	}
	if !b.stopped() {
		t.Fatal("budget not stopped after node cap trip")
	}
}

func TestBudgetClusterCap(t *testing.T) {
	b := prechargedBudget(0, 2, 0, 0)
	if !b.chargeCluster() {
		t.Fatal("cluster 1 should be admitted and not be the last")
	}
	if b.chargeCluster() {
		t.Fatal("cluster 2 should be the last admitted under cap 2")
	}
	if !b.stopped() {
		t.Fatal("budget not stopped after cluster cap trip")
	}
}

func TestBudgetPrecharge(t *testing.T) {
	// Pre-charging makes the budget behave as the continuation of a settled
	// prefix: with 5 of 6 nodes spent, exactly one more node is admitted.
	b := prechargedBudget(6, 0, 5, 0)
	if !b.chargeNode() {
		t.Fatal("node 6 rejected")
	}
	if b.chargeNode() {
		t.Fatal("node 7 accepted past cap 6")
	}
}

func TestBudgetUncappedChargesNothing(t *testing.T) {
	b := prechargedBudget(0, 0, 0, 0)
	for i := 0; i < 100; i++ {
		if !b.chargeNode() || !b.chargeCluster() {
			t.Fatal("uncapped budget rejected a charge")
		}
	}
	if b.nodes.Load() != 0 || b.clusters.Load() != 0 {
		t.Error("uncapped budget touched its counters on the hot path")
	}
	if b.stopped() {
		t.Error("uncapped budget reports stopped")
	}
}

// TestMatchCandidateZeroBaseline exercises the Equation 7 guard directly
// with a degenerate chain whose baseline step is exactly zero: the member's
// H score would be ±Inf and must be dropped and counted, not sorted.
func TestMatchCandidateZeroBaseline(t *testing.T) {
	// Gene 0: conditions c0 and c1 share the value, c2 is higher. With an
	// absolute γ = 0 the model still orders c2 above both.
	m := matrix.FromRows([][]float64{{0, 0, 1}})
	p := Params{MinG: 2, MinC: 2, Gamma: 0, AbsoluteGamma: true, Epsilon: 1}
	models, err := prepare(m, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	mn := newMiner(m, p, rwave.Kernels(models), newBudget(p, nil))
	mn.sc.ensure(m.Rows(), m.Cols())
	// Chain (c0, c1) has baseline 0 for gene 0; candidate c2 is a regulation
	// successor of c1, so without the guard H = 1/0 = +Inf.
	mn.pushChain(0)
	mn.pushChain(1)
	ext := mn.matchCandidate([]member{{gene: 0, up: true}}, 1, 2, mn.sc.frame(2))
	if len(ext) != 0 {
		t.Fatalf("zero-baseline member not dropped: %+v", ext)
	}
	if mn.stats.NonFiniteH != 1 {
		t.Errorf("NonFiniteH = %d, want 1", mn.stats.NonFiniteH)
	}
}

// TestMineDenormalBaselineNoInf builds a mineable matrix where γ = 0 admits
// a denormal baseline step, so the Equation 7 quotient overflows to +Inf
// without the guard. The run must stay finite-H, count the drops, and keep
// every output validating against Definition 3.2.
func TestMineDenormalBaselineNoInf(t *testing.T) {
	tiny := math.SmallestNonzeroFloat64
	rows := [][]float64{
		{0, tiny, 1e308, 2e308 / 2},
		{0, tiny, 1e308, 2e308 / 2},
		{0, tiny, 1e308, 2e308 / 2},
	}
	m := matrix.FromRows(rows)
	p := Params{MinG: 2, MinC: 3, Gamma: 0, AbsoluteGamma: true, Epsilon: 10}
	res, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NonFiniteH == 0 {
		t.Error("denormal baseline produced no NonFiniteH drops — guard untested")
	}
	for _, b := range res.Clusters {
		if err := CheckBicluster(m, p, b); err != nil {
			t.Errorf("output fails Definition 3.2: %v", err)
		}
	}
	// The guard must behave identically under parallel mining.
	for _, workers := range equivalenceWorkers {
		par, err := MineParallel(m, p, workers)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, "MineParallel denormal", res, par.Clusters, par.Stats)
	}
}

// TestQuotaPoolReserveRelease covers the admission-control pool: bounded
// reservation, exact-capacity fill, rejection past capacity, and release
// making room again.
func TestQuotaPoolReserveRelease(t *testing.T) {
	q := NewQuotaPool(100)
	if !q.TryReserve(60) || !q.TryReserve(40) {
		t.Fatal("reservations within capacity rejected")
	}
	if q.InUse() != 100 {
		t.Fatalf("InUse %d, want 100", q.InUse())
	}
	if q.TryReserve(1) {
		t.Fatal("reservation past capacity granted")
	}
	q.Release(40)
	if !q.TryReserve(40) {
		t.Fatal("released capacity not reusable")
	}
	if q.Capacity() != 100 {
		t.Fatalf("Capacity %d, want 100", q.Capacity())
	}
}

// TestQuotaPoolUnlimitedAndNil: capacity <= 0 means unlimited (nothing is
// accounted), and every method is nil-safe so callers skip the nil checks.
func TestQuotaPoolUnlimitedAndNil(t *testing.T) {
	q := NewQuotaPool(0)
	if !q.TryReserve(1 << 40) {
		t.Fatal("unlimited pool rejected a reservation")
	}
	if q.InUse() != 0 {
		t.Fatalf("unlimited pool accounted %d", q.InUse())
	}
	var nilQ *QuotaPool
	if !nilQ.TryReserve(5) {
		t.Fatal("nil pool rejected a reservation")
	}
	nilQ.Release(5)
	if nilQ.InUse() != 0 || nilQ.Capacity() != 0 {
		t.Fatal("nil pool reports non-zero state")
	}
	// Non-positive n always succeeds and reserves nothing.
	full := NewQuotaPool(1)
	if !full.TryReserve(0) || !full.TryReserve(-3) || full.InUse() != 0 {
		t.Fatal("non-positive reservation was accounted")
	}
}

// TestQuotaPoolOverReleaseClamps: a double release degrades accounting toward
// zero, never opens the pool wider than its capacity.
func TestQuotaPoolOverReleaseClamps(t *testing.T) {
	q := NewQuotaPool(10)
	if !q.TryReserve(5) {
		t.Fatal("reserve failed")
	}
	q.Release(9) // over-release
	if q.InUse() != 0 {
		t.Fatalf("InUse %d after over-release, want 0", q.InUse())
	}
	if !q.TryReserve(10) {
		t.Fatal("pool did not recover full capacity")
	}
	if q.TryReserve(1) {
		t.Fatal("over-release opened the pool past its capacity")
	}
}

// TestQuotaPoolConcurrent hammers one pool from many goroutines; the invariant
// is that in-use never exceeds capacity and fully balances back to zero.
func TestQuotaPoolConcurrent(t *testing.T) {
	const (
		capacity = 64
		workers  = 8
		rounds   = 2000
	)
	q := NewQuotaPool(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				n := int64(rng.Intn(16) + 1)
				if q.TryReserve(n) {
					if used := q.InUse(); used > capacity {
						t.Errorf("in-use %d exceeds capacity %d", used, capacity)
					}
					q.Release(n)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if q.InUse() != 0 {
		t.Fatalf("pool did not balance: %d still in use", q.InUse())
	}
}
