package core

import (
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/opcluster"
)

// TestGammaZeroTendencyEquivalence: at γ = 0 and unbounded ε the regulation
// model degenerates to the strict tendency model — for every condition
// sequence, the genes strictly rising along it (an OP-cluster) are exactly
// the p-members a reg-cluster chain on that sequence may carry. We verify
// set equality per sequence between the two miners' outputs on random data.
func TestGammaZeroTendencyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		genes := 4 + rng.Intn(5)
		conds := 3 + rng.Intn(3)
		m := matrix.New(genes, conds)
		for g := 0; g < genes; g++ {
			for c := 0; c < conds; c++ {
				// Continuous values: no ties, so strict rising order is
				// unambiguous for both models.
				m.Set(g, c, rng.Float64()*100)
			}
		}
		minG, minC := 2, 3

		ops, err := opcluster.Mine(m, opcluster.Params{MinG: minG, MinC: minC, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		opByChain := map[string][]int{}
		for _, b := range ops {
			opByChain[chainKey(b.Seq)] = b.Genes
		}

		res, err := Mine(m, Params{MinG: minG, MinC: minC, Gamma: 0, Epsilon: 1e18})
		if err != nil {
			t.Fatal(err)
		}
		// Every reg-cluster's p-members must be a subset of the OP-cluster
		// on the same sequence, and its n-members of the reversed sequence.
		for _, b := range res.Clusters {
			if op, ok := opByChain[chainKey(b.Chain)]; ok {
				if !subsetOf(b.PMembers, op) {
					t.Fatalf("trial %d: p-members %v not within OPSM genes %v for chain %v",
						trial, b.PMembers, op, b.Chain)
				}
			} else if len(b.PMembers) >= minG {
				t.Fatalf("trial %d: chain %v with %d p-members missing from OPSM output",
					trial, b.Chain, len(b.PMembers))
			}
			rev := reverseInts(b.Chain)
			if op, ok := opByChain[chainKey(rev)]; ok {
				if !subsetOf(b.NMembers, op) {
					t.Fatalf("trial %d: n-members %v not within OPSM genes %v for reversed chain %v",
						trial, b.NMembers, op, rev)
				}
			} else if len(b.NMembers) >= minG {
				t.Fatalf("trial %d: reversed chain %v with %d n-members missing from OPSM output",
					trial, rev, len(b.NMembers))
			}
		}
		// Conversely: every OP-cluster must be recoverable as the p-member
		// set of SOME reg-cluster on its sequence (possibly split across
		// orientations by the representative rule — accept either
		// orientation carrying the genes).
		for _, ob := range ops {
			found := false
			for _, b := range res.Clusters {
				if chainKey(b.Chain) == chainKey(ob.Seq) && subsetOf(ob.Genes, b.PMembers) {
					found = true
					break
				}
				if chainKey(reverseInts(b.Chain)) == chainKey(ob.Seq) && subsetOf(ob.Genes, b.NMembers) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: OPSM (%v, %v) has no reg-cluster counterpart",
					trial, ob.Seq, ob.Genes)
			}
		}
	}
}

func chainKey(chain []int) string {
	out := make([]byte, 0, len(chain)*3)
	for _, c := range chain {
		out = append(out, byte('0'+c/10), byte('0'+c%10), ',')
	}
	return string(out)
}

func subsetOf(small, big []int) bool {
	set := map[int]bool{}
	for _, x := range big {
		set[x] = true
	}
	for _, x := range small {
		if !set[x] {
			return false
		}
	}
	return true
}
