package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"regcluster/internal/matrix"
	"regcluster/internal/rwave"
)

// Incremental re-mining under append-conditions deltas.
//
// A level-1 subtree (all clusters whose representative chain starts at one
// condition) depends only on the regulation structure reachable from its
// root within γ steps. When a dataset grows by appended conditions, most
// subtrees cannot change: a new condition d can influence the subtree rooted
// at c only if some gene regulates between c and d — that is, d lies in
// succ_g(c) or pred_g(c) for some gene g. Every way the miner's output for
// root c could differ — d entering a chain (chains only ever extend through
// per-gene successor/predecessor sets, which are transitive), d changing a
// candidate set (candidates are enumerated from the succ/pred sets of chain
// members, all within γ-reach of c), or d shifting a chain-length pruning
// bound (UpLen/DownLen recurse through the same sets) — requires exactly that
// regulation relation. A condition with no such gene is *clean*: its subtree
// in the grown dataset is identical to its subtree in the parent, clusters
// and isolated Stats both, so the parent's cached output can be spliced in
// unmined. MineIncremental exploits this: it re-mines only dirty subtrees
// and reuses the rest, producing output byte-identical to a cold mine of the
// grown matrix (the property TestDifferentialIncrementalVsCold pins).

// IncrementalInfo reports how an incremental re-mine executed: whether the
// subtree-reuse fast path ran, how many level-1 subtrees it spliced from the
// parent result versus re-mined, and — when it fell back to a cold parallel
// mine — why.
type IncrementalInfo struct {
	// Incremental is true when the subtree-reuse path produced the result.
	Incremental bool `json:"incremental"`
	// SubtreesReused counts parent subtrees spliced without re-mining.
	SubtreesReused int `json:"subtrees_reused"`
	// SubtreesMined counts subtrees mined fresh (dirty old conditions plus
	// every appended condition).
	SubtreesMined int `json:"subtrees_mined"`
	// Fallback names the reason the fast path was ineligible; empty when
	// Incremental is true.
	Fallback string `json:"fallback,omitempty"`
}

// sub removes a previously folded contribution from an aggregate — the
// inverse of Add for every counter. Truncated is left untouched: callers only
// subtract isolated subtree stats (never truncated) from untruncated parent
// aggregates, which the MineIncremental eligibility gate enforces.
// TestStatsSubInvertsAdd pins full field coverage by reflection.
func (s *Stats) sub(o Stats) {
	s.Nodes -= o.Nodes
	s.Clusters -= o.Clusters
	s.Duplicates -= o.Duplicates
	s.PrunedMinG -= o.PrunedMinG
	s.PrunedMajority -= o.PrunedMajority
	s.PrunedCoherence -= o.PrunedCoherence
	s.MembersDroppedByLength -= o.MembersDroppedByLength
	s.CandidatesExamined -= o.CandidatesExamined
	s.NonFiniteH -= o.NonFiniteH
}

// gammaAbsFor resolves the absolute per-gene threshold (m, p) implies for
// gene g, mirroring prepare's scheme dispatch: custom thresholds verbatim,
// AbsoluteGamma verbatim, and otherwise the paper's Equation 4 relative form
// γ_g = Gamma × RowRange(g) — the exact expression rwave.Build evaluates, so
// a model built with this threshold is bit-identical to prepare's.
func gammaAbsFor(m *matrix.Matrix, p Params, g int) float64 {
	switch {
	case p.CustomGammas != nil:
		return p.CustomGammas[g]
	case p.AbsoluteGamma:
		return p.Gamma
	default:
		return p.Gamma * m.RowRange(g)
	}
}

// RepairModels builds the packed model set for (child, p), splicing each
// gene's appended conditions into its parent model where rwave.Repair's fast
// path is sound (same gene, identical prefix values, unchanged absolute
// threshold) and rebuilding that gene cold otherwise — including the
// relative-gamma case where appended values grow a row's range and shift its
// threshold. parentModels may be shorter than the child's gene count (genes
// appended) or nil; missing genes build cold. The parent models are never
// mutated or rebound: the result is a fresh set, packed like BuildModels'
// output and byte-identical to it (TestDifferentialRepairVsBuildModels).
// The second return counts genes repaired on the fast path.
func RepairModels(child *matrix.Matrix, p Params, parentModels []*rwave.Model, o *Observer) ([]*rwave.Model, int, error) {
	if err := validateInputs(child, p); err != nil {
		return nil, 0, err
	}
	var repaired atomic.Int64
	sp := o.traceSpan()
	bsp := sp.Start("rwave.repair")
	models := rwave.BuildAllSpan(child.Rows(), func(g int) *rwave.Model {
		var old *rwave.Model
		if g < len(parentModels) {
			old = parentModels[g]
		}
		mod, fast := rwave.Repair(old, child, g, gammaAbsFor(child, p, g))
		if fast {
			repaired.Add(1)
		}
		return mod
	}, bsp)
	rwave.PackModels(models)
	if bsp != nil {
		bsp.SetInt("repaired", repaired.Load())
		bsp.End()
	}
	return models, int(repaired.Load()), nil
}

// dirtyConditions computes the append delta's per-condition dirty bitmap:
// condition c is dirty iff some gene regulates between c and an appended
// condition (index >= oldConds). Appended conditions are always dirty. Per
// gene the test is two rank intervals read off the exact frontiers: an
// appended d is a successor of every condition ranked <= PredEnd[rank(d)]
// and a predecessor of every condition ranked >= SuccStart[rank(d)], so one
// pass over the appended conditions yields the gene's dirty rank range.
func dirtyConditions(kern []rwave.Kernel, oldConds, conds int) []bool {
	dirty := make([]bool, conds)
	for c := oldConds; c < conds; c++ {
		dirty[c] = true
	}
	for g := range kern {
		k := &kern[g]
		hi, lo := -1, conds
		for d := oldConds; d < conds; d++ {
			r := k.Rank[d]
			if pe := k.PredEnd[r]; pe > hi {
				hi = pe
			}
			if ss := k.SuccStart[r]; ss < lo {
				lo = ss
			}
		}
		for r := 0; r <= hi; r++ {
			dirty[k.Order[r]] = true
		}
		for r := lo; r < conds; r++ {
			dirty[k.Order[r]] = true
		}
	}
	return dirty
}

// incrementalFallback names the first reason (parent, p, results) cannot take
// the subtree-reuse path; empty means eligible. The checks guard exactly the
// assumptions the splice relies on: a conditions-only append whose old values
// and per-gene thresholds are unchanged, a complete (untruncated, uncapped)
// parent result, and the default candidate enumeration whose reachability
// argument the dirty bitmap encodes.
func incrementalFallback(child, parent *matrix.Matrix, p Params, childModels, parentModels []*rwave.Model, parentResult *Result) string {
	switch {
	case parent == nil || parentResult == nil:
		return "no parent result"
	case child.Rows() != parent.Rows():
		return "gene axis changed"
	case child.Cols() <= parent.Cols():
		return "no appended conditions"
	case len(parentModels) != parent.Rows():
		return "parent model set incomplete"
	case p.MaxNodes > 0 || p.MaxClusters > 0:
		return "budget caps require sequential accounting"
	case p.NaiveCandidates:
		return "naive-candidates ablation"
	case parentResult.Stats.Truncated:
		return "parent result truncated"
	}
	oldConds := parent.Cols()
	for g := 0; g < child.Rows(); g++ {
		cm, pm := childModels[g], parentModels[g]
		if cm.Gamma() != pm.Gamma() {
			return "per-gene threshold drift"
		}
		for c := 0; c < oldConds; c++ {
			if cm.ValueOf(c) != pm.ValueOf(c) {
				return "parent values rewritten"
			}
		}
	}
	return ""
}

// incrTask is one unit of incremental re-mine work: a dirty subtree mined on
// the child (clusters + stats), or re-mined on the parent for stats only —
// the contribution to subtract from the parent's aggregate.
type incrTask struct {
	cond     int
	onParent bool
}

// MineIncremental re-mines the grown matrix child after an append-conditions
// delta over parent, reusing the parent's settled result where the delta
// provably cannot change it. Only subtrees rooted at dirty conditions — the
// appended ones, plus old conditions some gene regulates against an appended
// one — are mined (on childModels); for each dirty old condition the parent
// subtree is additionally re-mined stats-only (on parentModels) so its
// contribution can be subtracted from parentResult.Stats exactly. Clean
// subtrees splice the parent's clusters verbatim. Clusters stream to visit in
// starting-condition order, DFS within a subtree — the engine's delivery
// order — and the returned Stats equal a cold mine's bit for bit.
//
// Ineligible inputs (gene-axis growth, per-gene threshold drift under
// relative gamma, budget caps, a truncated parent, the naive-candidates
// ablation) fall back to a cold parallel mine of child; IncrementalInfo
// reports which path ran. A visit returning false abandons the run: delivery
// stops and the returned Stats are the full-run aggregate with Truncated set,
// not the cold engine's mid-run accounting — callers that stop mid-stream
// should not compare stats against a cold run. The live Observer counts
// nodes only for re-mined subtrees; cluster counts cover the full stream.
func MineIncremental(ctx context.Context, child, parent *matrix.Matrix, p Params, workers int,
	visit Visitor, o *Observer, childModels, parentModels []*rwave.Model, parentResult *Result) (Stats, IncrementalInfo, error) {
	if visit == nil {
		return Stats{}, IncrementalInfo{}, fmt.Errorf("core: MineIncremental requires a visitor")
	}
	_, childKern, err := resolveModels(child, p, childModels, nil)
	if err != nil {
		return Stats{}, IncrementalInfo{}, err
	}
	coldMine := func(reason string) (Stats, IncrementalInfo, error) {
		stats, err := mineParallelOpts(ctx, child, p, workers, visit, mineOpts{obs: o, models: childModels})
		return stats, IncrementalInfo{Fallback: reason}, err
	}
	if reason := incrementalFallback(child, parent, p, childModels, parentModels, parentResult); reason != "" {
		return coldMine(reason)
	}

	oldConds, conds := parent.Cols(), child.Cols()
	dirty := dirtyConditions(childKern, oldConds, conds)
	nDirtyOld := 0
	for c := 0; c < oldConds; c++ {
		if dirty[c] {
			nDirtyOld++
		}
	}
	if nDirtyOld == oldConds {
		return coldMine("every subtree dirtied by the delta")
	}

	// Group the parent's clusters by subtree root. Clusters arrive from the
	// engine in starting-condition order with DFS order inside each subtree,
	// so per-root grouping preserves the intra-subtree order exactly.
	parentByRoot := make([][]*Bicluster, oldConds)
	for _, b := range parentResult.Clusters {
		if len(b.Chain) == 0 || b.Chain[0] < 0 || b.Chain[0] >= oldConds {
			return coldMine("parent result malformed")
		}
		parentByRoot[b.Chain[0]] = append(parentByRoot[b.Chain[0]], b)
	}

	_, parentKern, err := resolveModels(parent, p, parentModels, nil)
	if err != nil {
		return Stats{}, IncrementalInfo{}, err
	}

	// Dirty subtrees on the child in the engine's largest-first dispatch
	// order, then their parent-side stats re-mines: output order is fixed by
	// the emission loop below, so task order only balances the pool.
	tasks := make([]incrTask, 0, nDirtyOld*2+(conds-oldConds))
	for _, c := range subtreeOrder(child, p, childKern) {
		if dirty[c] {
			tasks = append(tasks, incrTask{cond: c})
		}
	}
	for _, t := range tasks {
		if t.cond < oldConds {
			tasks = append(tasks, incrTask{cond: t.cond, onParent: true})
		}
	}

	sp := o.traceSpan()
	isp := sp.Start("incremental.mine")
	if isp != nil {
		isp.SetInt("subtrees_mined", int64(conds-oldConds+nDirtyOld))
		isp.SetInt("subtrees_reused", int64(oldConds-nDirtyOld))
		defer isp.End()
	}

	childClusters := make([][]*Bicluster, conds)
	childStats := make([]Stats, conds)
	parentStats := make([]Stats, oldConds)
	iso := p
	iso.MaxNodes, iso.MaxClusters = 0, 0

	nWorkers := workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if nWorkers > len(tasks) {
		nWorkers = len(tasks)
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		panicked atomic.Pointer[any]
		wg       sync.WaitGroup
	)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
					stop.Store(true)
				}
			}()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				bud := newBudget(iso, ctx)
				if t.onParent {
					mn := newMiner(parent, iso, parentKern, bud)
					mn.sink = func(*Bicluster, int) bool { return true }
					mn.runFrom(t.cond)
					parentStats[t.cond] = mn.stats
				} else {
					mn := newMiner(child, iso, childKern, bud)
					mn.obs = o
					mn.sink = func(b *Bicluster, _ int) bool {
						childClusters[t.cond] = append(childClusters[t.cond], b)
						return true
					}
					mn.runFrom(t.cond)
					childStats[t.cond] = mn.stats
				}
				if err := bud.contextErr(); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
	info := IncrementalInfo{
		Incremental:    true,
		SubtreesReused: oldConds - nDirtyOld,
		SubtreesMined:  conds - oldConds + nDirtyOld,
	}
	if firstErr != nil {
		return Stats{}, info, firstErr
	}

	// Exact aggregate: the parent's total, minus each dirty old subtree's
	// parent-side contribution, plus each dirty subtree's child-side stats.
	// Clean subtrees are untouched on both sides, so the sum telescopes to
	// exactly what a cold mine of the child totals.
	agg := parentResult.Stats
	for c := 0; c < conds; c++ {
		if !dirty[c] {
			continue
		}
		if c < oldConds {
			agg.sub(parentStats[c])
		}
		agg.Add(childStats[c])
	}

	for c := 0; c < conds; c++ {
		clusters, spliced := childClusters[c], false
		if !dirty[c] {
			clusters, spliced = parentByRoot[c], true
		}
		for _, b := range clusters {
			if spliced && o != nil {
				// Re-mined clusters tick the live counter at discovery inside
				// the miner; spliced ones tick here so the final Observer
				// cluster count covers the whole stream.
				o.clusters.Add(1)
			}
			if !visit(b) {
				agg.Truncated = true
				return agg, info, nil
			}
		}
	}
	return agg, info, nil
}
