package core

import (
	"runtime"
	"sync"

	"regcluster/internal/matrix"
)

// MineParallel mines the same cluster set as Mine using a pool of workers,
// one level-1 subtree (starting condition) per task. Subtrees are
// independent: a representative chain lives entirely in the subtree of its
// first condition, so no cross-worker deduplication is needed and the merged
// result — ordered by starting condition, then depth-first as in Mine — is
// identical to the sequential output.
//
// workers <= 0 selects GOMAXPROCS. The MaxClusters and MaxNodes caps are
// enforced per worker in parallel mode, so a truncated parallel run may
// return more clusters than a truncated sequential one; untruncated runs are
// always identical.
func MineParallel(m *matrix.Matrix, p Params, workers int) (*Result, error) {
	models, err := prepare(m, p)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nConds := m.Cols()
	if workers > nConds {
		workers = nConds
	}
	if workers <= 1 {
		mn := &miner{m: m, p: p, models: models, seen: make(map[string]bool)}
		mn.run()
		return &Result{Clusters: mn.out, Stats: mn.stats}, nil
	}

	type subtree struct {
		out   []*Bicluster
		stats Stats
	}
	results := make([]subtree, nConds)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				mn := &miner{m: m, p: p, models: models, seen: make(map[string]bool)}
				mn.runFrom(c)
				results[c] = subtree{out: mn.out, stats: mn.stats}
			}
		}()
	}
	for c := 0; c < nConds; c++ {
		next <- c
	}
	close(next)
	wg.Wait()

	res := &Result{}
	for _, sub := range results {
		res.Clusters = append(res.Clusters, sub.out...)
		res.Stats.Nodes += sub.stats.Nodes
		res.Stats.Clusters += sub.stats.Clusters
		res.Stats.Duplicates += sub.stats.Duplicates
		res.Stats.PrunedMinG += sub.stats.PrunedMinG
		res.Stats.PrunedMajority += sub.stats.PrunedMajority
		res.Stats.PrunedCoherence += sub.stats.PrunedCoherence
		res.Stats.MembersDroppedByLength += sub.stats.MembersDroppedByLength
		res.Stats.CandidatesExamined += sub.stats.CandidatesExamined
		res.Stats.Truncated = res.Stats.Truncated || sub.stats.Truncated
	}
	return res, nil
}
