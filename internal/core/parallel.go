package core

import (
	"context"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"regcluster/internal/faultinject"
	"regcluster/internal/matrix"
	"regcluster/internal/obs"

	"regcluster/internal/rwave"
)

// MineParallel mines the same cluster set as Mine using a pool of workers.
// Level-1 subtrees (starting conditions) are independent — a representative
// chain lives entirely in the subtree of its first condition — so they are
// dispatched through a work queue, largest-estimated-subtree first to keep
// the (highly skewed) load balanced, and the merged result is ordered by
// starting condition, then depth-first, exactly as in Mine.
//
// workers <= 0 selects GOMAXPROCS. The MaxClusters and MaxNodes caps are
// enforced GLOBALLY through a budget shared by all workers: a truncated
// parallel run returns exactly the clusters — and exactly the Stats — that
// the truncated sequential Mine returns, for any worker count.
func MineParallel(m *matrix.Matrix, p Params, workers int) (*Result, error) {
	return mineParallelCollect(nil, m, p, workers)
}

// MineParallelContext is MineParallel with cooperative cancellation: all
// workers observe the context at node and candidate boundaries. Once the
// context expires the call stops promptly and returns the context's error;
// the cancellation point is not deterministic, so no partial result is
// returned.
func MineParallelContext(ctx context.Context, m *matrix.Matrix, p Params, workers int) (*Result, error) {
	return mineParallelCollect(ctx, m, p, workers)
}

func mineParallelCollect(ctx context.Context, m *matrix.Matrix, p Params, workers int) (*Result, error) {
	res := &Result{}
	stats, err := mineParallel(ctx, m, p, workers, func(b *Bicluster) bool {
		res.Clusters = append(res.Clusters, b)
		return true
	}, nil)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// MineParallelFunc streams reg-clusters to the visitor from a pool of
// workers. Delivery order is deterministic and identical to MineFunc's:
// each level-1 subtree's clusters pass through a reordering buffer and the
// visitor receives them in starting-condition order, depth-first within a
// subtree, on the calling goroutine. Returning false from the visitor stops
// every worker cooperatively; the clusters delivered and the returned Stats
// are then exactly those of MineFunc with the same visitor. The visitor must
// be non-nil.
func MineParallelFunc(m *matrix.Matrix, p Params, workers int, visit Visitor) (Stats, error) {
	return mineParallel(nil, m, p, workers, visit, nil)
}

// mineParallel is the plain (non-resumable) engine entry shared by the
// pre-existing parallel front-ends.
func mineParallel(ctx context.Context, m *matrix.Matrix, p Params, workers int, visit Visitor, obs *Observer) (Stats, error) {
	return mineParallelOpts(ctx, m, p, workers, visit, mineOpts{obs: obs})
}

// mineOpts bundles the optional machinery of one parallel run: live progress
// counters, a resume snapshot, checkpoint emission, and a prebuilt RWave
// model set (nil = build one for this run).
type mineOpts struct {
	obs    *Observer
	resume *Checkpoint
	ck     CheckpointConfig
	models []*rwave.Model
}

// mineParallelOpts is the engine entry shared by every parallel front-end.
// The optional obs receives live node/cluster counts from every worker miner;
// reconciliation reruns do NOT feed it, since they re-walk subtrees whose
// nodes the interrupted workers already counted.
func mineParallelOpts(ctx context.Context, m *matrix.Matrix, p Params, workers int, visit Visitor, opts mineOpts) (Stats, error) {
	sp := opts.obs.traceSpan()
	_, kern, err := resolveModels(m, p, opts.models, sp)
	if err != nil {
		return Stats{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nConds := m.Cols()
	if workers > nConds {
		workers = nConds
	}
	bud := newBudget(p, ctx)
	resumable := opts.resume != nil || opts.ck.enabled()
	if workers <= 1 && !resumable {
		// One worker degenerates to the sequential miner on the same budget.
		// Resumable runs always take the engine path below: it is the emitter
		// accounting that knows subtree boundaries and watermarks, and its
		// worker pool contains panics instead of crossing the API with them.
		mn := newMiner(m, p, kern, bud)
		mn.obs = opts.obs
		mn.span = sp
		mn.sink = func(b *Bicluster, _ int) bool { return visit(b) }
		mn.run()
		if err := bud.contextErr(); err != nil {
			return Stats{}, err
		}
		if mn.stats.Truncated {
			sp.Add("budget_trips", 1)
		}
		return mn.stats, nil
	}
	if workers < 1 {
		workers = 1
	}

	e := &engine{m: m, p: p, kern: kern, bud: bud, visit: visit, obs: opts.obs, sp: sp,
		ck: opts.ck, subs: make([]*subtree, nConds)}
	if r := opts.resume; r != nil {
		e.start = r.NextCond
		e.skip = r.SkipClusters
		e.agg = r.Prefix
		e.cumNodes = r.Prefix.Nodes
		e.cumClusters = r.Prefix.Clusters
		e.lastChain = r.LastChain
		// Pre-charge the shared budget with the settled prefix so MaxNodes/
		// MaxClusters keep bounding the RUN, not the continuation.
		bud.nodes.Store(int64(r.Prefix.Nodes))
		bud.clusters.Store(int64(r.Prefix.Clusters))
	}
	for c := range e.subs {
		e.subs[c] = newSubtree()
	}
	queue := make(chan int)
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker(queue)
	}
	go func() {
		for _, c := range subtreeOrder(m, p, kern) {
			if c < e.start {
				continue // settled before the resume snapshot
			}
			queue <- c
		}
		close(queue)
	}()
	stats, err := e.emit()
	e.stopWorkers()
	return stats, err
}

// engine runs one parallel mining session: a worker pool mining level-1
// subtrees against a shared budget, and an in-order emitter (the calling
// goroutine, see emit) that reassembles the deterministic sequential output
// from the per-subtree reordering buffers.
type engine struct {
	m     *matrix.Matrix
	p     Params
	kern  []rwave.Kernel // shared flat model views (see resolveModels)
	bud   *budget
	visit Visitor
	obs   *Observer
	sp    *obs.Span // optional trace parent for subtree/rerun spans; nil = off
	subs  []*subtree
	wg    sync.WaitGroup

	// start/skip position a resumed run: subtrees before start are settled
	// (their totals pre-loaded into agg below), and the first skip clusters
	// of subtree start are re-found but not re-delivered.
	start int
	skip  int

	// Checkpoint emission state. ckFresh counts clusters delivered since the
	// last snapshot; lastChain is the chain of the most recent delivery.
	ck        CheckpointConfig
	ckFresh   int
	lastChain []int

	// Exact sequential accounting of the settled prefix: agg/cumNodes/
	// cumClusters cover whole subtrees already delivered, in starting-
	// condition order.
	agg         Stats
	cumNodes    int
	cumClusters int

	// First worker panic of the run, recovered on the worker goroutine and
	// returned from emit as the run's error.
	panicMu  sync.Mutex
	panicErr *PanicError
}

func (e *engine) worker(queue <-chan int) {
	defer e.wg.Done()
	for c := range queue {
		e.mineSubtree(c)
	}
}

// mineSubtree mines one level-1 subtree on a worker goroutine. A panic inside
// the miner is contained here, never crossing the goroutine: it is recorded
// as the run's PanicError, every sibling stops via the shared budget, and the
// subtree is finished-incomplete so the emitter cannot block on it.
func (e *engine) mineSubtree(c int) {
	sub := e.subs[c]
	defer func() {
		if r := recover(); r != nil {
			e.notePanic(r)
			sub.finish(Stats{}, false)
		}
	}()
	_ = faultinject.Hook("core.mine.subtree") // panic/delay injection for containment tests
	if e.bud.stopped() {
		sub.finish(Stats{}, false)
		return
	}
	ssp := e.sp.Start("subtree")
	mn := newMiner(e.m, e.p, e.kern, e.bud)
	mn.sink = sub.push
	mn.obs = e.obs
	mn.runFrom(c)
	if ssp != nil {
		ssp.SetInt("cond", int64(c))
		ssp.Add("nodes", int64(mn.stats.Nodes))
		ssp.Add("clusters", int64(mn.stats.Clusters))
		if mn.stop {
			ssp.SetAttr("interrupted", "true")
		}
		ssp.End()
	}
	// The subtree is complete exactly when the miner ran it to the end:
	// any stop (own cap trip or a sibling's cancellation) leaves it
	// schedule-dependent and the emitter will re-mine it if needed.
	sub.finish(mn.stats, !mn.stop)
}

// notePanic records the first worker panic (with the panicking goroutine's
// stack) and cancels the whole run.
func (e *engine) notePanic(r any) {
	e.panicMu.Lock()
	if e.panicErr == nil {
		e.panicErr = &PanicError{Value: r, Stack: debug.Stack()}
	}
	e.panicMu.Unlock()
	e.bud.cancel()
}

func (e *engine) runPanic() *PanicError {
	e.panicMu.Lock()
	defer e.panicMu.Unlock()
	return e.panicErr
}

func (e *engine) stopWorkers() {
	e.bud.cancel()
	e.wg.Wait()
}

// emit drains the subtree buffers in starting-condition order, delivering
// clusters to the visitor while enforcing the sequential-prefix semantics of
// the global caps:
//
//   - a streamed cluster is delivered only if the node that emitted it lies
//     within the global node cap (cumNodes + local node ordinal <= MaxNodes) —
//     the exact set of nodes the sequential miner processes;
//   - the cluster whose delivery reaches MaxClusters is delivered, then the
//     run truncates, as in the sequential miner;
//   - any truncation (cap or visitor stop) re-mines the affected subtree
//     against a budget pre-charged with the settled prefix totals, yielding
//     Stats identical to the truncated sequential run's.
//
// Workers mine subtrees in an arbitrary, schedule-dependent interleaving;
// only the accounting here decides what the run *returns*, which is why the
// output is deterministic and cap-exact regardless of worker count.
//
// On a resumed run the scan begins at the snapshot's subtree with the
// accounting pre-loaded, and the first skip clusters of that subtree are
// consumed (they count toward every cap, exactly as they did originally) but
// not re-delivered.
func (e *engine) emit() (Stats, error) {
	nodeCap, clusterCap := e.p.MaxNodes, e.p.MaxClusters
	for c := e.start; c < len(e.subs); c++ {
		sub := e.subs[c]
		taken := 0
		closed := false
		for !closed {
			var items []streamedCluster
			items, closed = sub.take(taken)
			for _, it := range items {
				if nodeCap > 0 && e.cumNodes+it.node > nodeCap {
					// The node that emitted this cluster lies beyond the
					// global cap: the sequential miner stops before it.
					return e.truncate(c, taken, clusterCap)
				}
				taken++
				if c != e.start || taken > e.skip {
					if !e.visit(it.b) {
						// A visitor stop right after this cluster is equivalent
						// to a MaxClusters cap at the delivered total.
						return e.truncate(c, taken, e.cumClusters+taken)
					}
					e.noteDelivery(c, taken, it.b)
				}
				if clusterCap > 0 && e.cumClusters+taken >= clusterCap {
					return e.truncate(c, taken, clusterCap)
				}
			}
			if !closed {
				sub.wait()
			}
		}
		st, complete := sub.final()
		if err := e.bud.contextErr(); err != nil {
			return Stats{}, err
		}
		if perr := e.runPanic(); perr != nil {
			e.stopWorkers()
			return Stats{}, perr
		}
		if !complete {
			// The worker was interrupted, so the recorded remainder of this
			// subtree is schedule-dependent. Re-mine it sequentially against
			// the exact continuation budget: the rerun either truncates at
			// the precise sequential stop point, or completes — proving the
			// interruption was spurious overshoot — and the scan resumes.
			e.stopWorkers()
			skip := taken
			if c == e.start && e.skip > skip {
				// The worker was interrupted before reaching the resume
				// watermark: the rerun must still suppress every cluster the
				// pre-crash run had already delivered.
				skip = e.skip
			}
			st = e.rerun(c, skip, true, clusterCap)
			if err := e.bud.contextErr(); err != nil {
				return Stats{}, err
			}
			e.accountSubtree(c, st)
			if st.Truncated {
				e.sp.Add("budget_trips", 1)
				return e.agg, nil
			}
			continue
		}
		if nodeCap > 0 && e.cumNodes+st.Nodes > nodeCap {
			// The node cap fires inside this subtree after its last
			// delivered cluster.
			return e.truncate(c, taken, clusterCap)
		}
		e.accountSubtree(c, st)
	}
	return e.agg, nil
}

// noteDelivery tracks one delivered cluster for checkpointing: it advances
// the cadence counter, remembers the DFS chain, and snapshots when the
// configured number of deliveries has accumulated. taken is the sequential
// within-subtree ordinal of the delivery, i.e. the subtree watermark.
func (e *engine) noteDelivery(c, taken int, b *Bicluster) {
	if !e.ck.enabled() {
		return
	}
	e.ckFresh++
	e.lastChain = b.Chain
	if e.ck.EveryClusters > 0 && e.ckFresh >= e.ck.EveryClusters {
		e.snapshot(c, taken)
	}
}

// accountSubtree folds a fully settled subtree into the prefix accounting and
// emits a boundary snapshot: after this point a resumed run starts cleanly at
// the next starting condition.
func (e *engine) accountSubtree(c int, st Stats) {
	e.account(st)
	if e.ck.enabled() && !st.Truncated {
		e.snapshot(c+1, 0)
	}
}

// snapshot emits one Checkpoint positioned before the skip-th undelivered
// cluster of subtree nextCond. Runs on the emitter goroutine.
func (e *engine) snapshot(nextCond, skip int) {
	e.ckFresh = 0
	e.sp.Add("checkpoints", 1)
	ck := Checkpoint{Version: CheckpointVersion, NextCond: nextCond, SkipClusters: skip, Prefix: e.agg}
	if len(e.lastChain) > 0 {
		ck.LastChain = append([]int(nil), e.lastChain...)
	}
	e.ck.OnCheckpoint(ck)
}

func (e *engine) account(st Stats) {
	e.agg.Add(st)
	e.cumNodes += st.Nodes
	e.cumClusters += st.Clusters
}

// truncate settles a truncation detected while streaming subtree c, after
// `taken` of its clusters were delivered: the pool stops, and the subtree is
// re-mined against the pre-charged continuation budget solely to reproduce
// the truncated sequential run's Stats. No further clusters are delivered.
func (e *engine) truncate(c, taken, effClusterCap int) (Stats, error) {
	e.sp.Add("budget_trips", 1)
	e.stopWorkers()
	if err := e.bud.contextErr(); err != nil {
		return Stats{}, err
	}
	if perr := e.runPanic(); perr != nil {
		return Stats{}, perr
	}
	e.agg.Add(e.rerun(c, taken, false, effClusterCap))
	if err := e.bud.contextErr(); err != nil {
		return Stats{}, err
	}
	return e.agg, nil
}

// rerun re-mines subtree c single-threaded against a fresh budget whose
// counters are pre-charged with the settled prefix totals, making its
// behavior — truncation point, cluster sequence and every Stats counter —
// identical to the sequential miner's continuation into this subtree. The
// first `skip` clusters were already delivered and are suppressed; when
// deliver is set the remainder streams to the visitor (whose stop truncates
// the rerun exactly like MineFunc).
func (e *engine) rerun(c, skip int, deliver bool, clusterCap int) Stats {
	rsp := e.sp.Start("rerun")
	if rsp != nil {
		rsp.SetInt("cond", int64(c))
		rsp.SetInt("skip", int64(skip))
		if deliver {
			rsp.SetAttr("deliver", "true")
		}
		defer rsp.End()
	}
	rbud := prechargedBudget(e.p.MaxNodes, clusterCap, e.cumNodes, e.cumClusters)
	// The rerun observes the run's context too: reconciliation after a cap
	// trip can mine for a while, and cancellation must interrupt it. A
	// context stop is propagated back to the shared budget so the emitter's
	// contextErr checks see it.
	rbud.done = e.bud.done
	rbud.ctxErr = e.bud.ctxErr
	defer func() {
		if rbud.ctxHit.Load() {
			e.bud.ctxHit.Store(true)
			e.bud.cancelled.Store(true)
		}
	}()
	emitted := 0
	mn := newMiner(e.m, e.p, e.kern, rbud)
	mn.sink = func(b *Bicluster, _ int) bool {
		emitted++
		if !deliver || emitted <= skip {
			return true
		}
		if !e.visit(b) {
			return false
		}
		e.noteDelivery(c, emitted, b)
		return true
	}
	mn.runFrom(c)
	return mn.stats
}

// streamedCluster is one buffered cluster of a level-1 subtree, tagged with
// the subtree-local node ordinal of its emission so the emitter can decide
// whether the sequential miner, charged with the preceding subtrees' nodes,
// would still have processed the emitting node.
type streamedCluster struct {
	b    *Bicluster
	node int
}

// subtree is the reordering buffer of one level-1 subtree: the mining worker
// pushes clusters as it finds them, and the in-order emitter drains the
// buffer once every earlier subtree has been settled.
type subtree struct {
	mu       sync.Mutex
	items    []streamedCluster
	stats    Stats
	complete bool          // runFrom finished without interruption
	closed   bool          // no more pushes will arrive
	note     chan struct{} // capacity-1 wakeup for the emitter
}

func newSubtree() *subtree {
	return &subtree{note: make(chan struct{}, 1)}
}

// push is the worker-side miner sink.
func (s *subtree) push(b *Bicluster, node int) bool {
	s.mu.Lock()
	s.items = append(s.items, streamedCluster{b: b, node: node})
	s.mu.Unlock()
	s.wake()
	return true
}

func (s *subtree) finish(stats Stats, complete bool) {
	s.mu.Lock()
	s.stats = stats
	s.complete = complete
	s.closed = true
	s.mu.Unlock()
	s.wake()
}

func (s *subtree) wake() {
	select {
	case s.note <- struct{}{}:
	default:
	}
}

// take returns the buffered clusters from index `from` on, plus the closed
// flag. Close happens under the same lock as the final push, so a take that
// observes closed has observed every cluster. The returned slice aliases the
// buffer: the worker only ever appends past its end, never rewrites it.
func (s *subtree) take(from int) ([]streamedCluster, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[from:], s.closed
}

// wait blocks until a push or finish has happened since the last take.
func (s *subtree) wait() { <-s.note }

func (s *subtree) final() (Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats, s.complete
}

// subtreeOrder returns the starting conditions sorted by decreasing subtree
// size estimate — the number of initial (gene, direction) members pruning
// (2) admits, the same count runFrom materializes. Level-1 subtree sizes are
// highly skewed, so dispatching the largest first keeps the pool busy to the
// end instead of leaving one worker grinding a giant subtree after the queue
// drains. Ties keep ascending condition order, so dispatch is deterministic.
func subtreeOrder(m *matrix.Matrix, p Params, kern []rwave.Kernel) []int {
	nConds := m.Cols()
	size := make([]int, nConds)
	// Gene-major walk so each kernel's Rank/UpLen/DownLen stripes are
	// streamed once, instead of revisiting every gene per condition.
	for g := range kern {
		k := &kern[g]
		for c := 0; c < nConds; c++ {
			r := k.Rank[c]
			if p.DisableChainLengthPruning || k.UpLen[r] >= p.MinC {
				size[c]++
			}
			if p.DisableChainLengthPruning || k.DownLen[r] >= p.MinC {
				size[c]++
			}
		}
	}
	order := make([]int, nConds)
	for c := range order {
		order[c] = c
	}
	sort.SliceStable(order, func(a, b int) bool { return size[order[a]] > size[order[b]] })
	return order
}
