// Package scaling implements a 2-D adaptation of the triCluster baseline
// (Zhao & Zaki — SIGMOD 2005): pattern-based biclustering for *pure scaling*
// patterns.
//
// A submatrix (X, C) is a scaling cluster iff for every condition pair (a, b)
// the per-gene expression ratios d_ga / d_gb agree within a multiplicative
// tolerance ε: max/min ≤ 1 + ε, all ratios sharing a sign. The paper's
// comparison point: the model captures d_i = s1·d_j but not
// shifting-and-scaling d_i = s1·d_j + s2 with s2 ≠ 0, and mixed
// positive/negative correlation blows up the ratio range (Section 1.3).
package scaling

import (
	"regcluster/internal/matrix"
	"regcluster/internal/pairwise"
)

// Params configures the miner.
type Params struct {
	// Epsilon is the multiplicative ratio tolerance ε.
	Epsilon float64
	// MinG and MinC are the minimum bicluster dimensions.
	MinG, MinC int
	// MaxNodes optionally caps the search.
	MaxNodes int
}

// Bicluster is one mined scaling cluster.
type Bicluster = pairwise.Bicluster

// RatioFit reports whether a sorted ratio window [lo, hi] is coherent under
// ε: both ends share a strict sign and hi/lo (or lo/hi for negatives) is at
// most 1+ε.
func RatioFit(lo, hi float64, eps float64) bool {
	switch {
	case lo > 0:
		return hi/lo <= 1+eps
	case hi < 0:
		return lo/hi <= 1+eps
	default:
		// Window crosses or touches zero: only a degenerate all-equal
		// window fits.
		return lo == hi && lo != 0
	}
}

// IsScalingCluster verifies the property exhaustively (tests, harness).
func IsScalingCluster(m *matrix.Matrix, genes, conds []int, eps float64) bool {
	for a := 0; a < len(conds); a++ {
		for b := a + 1; b < len(conds); b++ {
			lo, hi := 0.0, 0.0
			for i, g := range genes {
				den := m.At(g, conds[b])
				if den == 0 {
					return false
				}
				r := m.At(g, conds[a]) / den
				if i == 0 {
					lo, hi = r, r
					continue
				}
				if r < lo {
					lo = r
				}
				if r > hi {
					hi = r
				}
			}
			if len(genes) > 0 && !RatioFit(lo, hi, eps) {
				return false
			}
		}
	}
	return true
}

// Mine enumerates maximal-window scaling clusters of m with at least MinG
// genes and MinC conditions. Genes with a zero expression value on a touched
// condition pair never fit (their ratio is undefined or zero).
func Mine(m *matrix.Matrix, p Params) ([]Bicluster, error) {
	score := func(m *matrix.Matrix, g, a, b int) float64 {
		den := m.At(g, b)
		if den == 0 {
			return 0 // zero never fits a window (RatioFit rejects 0 ends)
		}
		return m.At(g, a) / den
	}
	fit := func(lo, hi float64) bool { return RatioFit(lo, hi, p.Epsilon) }
	return pairwise.Mine(m, score, fit, pairwise.Params{MinG: p.MinG, MinC: p.MinC, MaxNodes: p.MaxNodes})
}
