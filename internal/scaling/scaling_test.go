package scaling

import (
	"testing"

	"regcluster/internal/matrix"
	"regcluster/internal/paperdata"
)

func TestRatioFit(t *testing.T) {
	cases := []struct {
		lo, hi, eps float64
		want        bool
	}{
		{1, 1.05, 0.1, true},
		{1, 1.2, 0.1, false},
		{-2.1, -2, 0.1, true},
		{-3, -2, 0.1, false},
		{-1, 1, 10, false}, // sign change never fits
		{0, 0, 10, false},  // zero ratios never fit
		{2, 2, 0, true},
	}
	for _, tc := range cases {
		if got := RatioFit(tc.lo, tc.hi, tc.eps); got != tc.want {
			t.Errorf("RatioFit(%v,%v,%v) = %v, want %v", tc.lo, tc.hi, tc.eps, got, tc.want)
		}
	}
}

func TestMineFindsScalingPattern(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 5, 2, 8},
		{2, 10, 4, 16},     // ×2
		{0.5, 2.5, 1, 4},   // ×0.5
		{1.1, 4.4, 2.7, 9}, // roughly similar but not scaled
	})
	got, err := Mine(m, Params{Epsilon: 1e-9, MinG: 3, MinC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("clusters = %v, want exactly the scaling trio", got)
	}
	b := got[0]
	if len(b.Genes) != 3 || b.Genes[2] != 2 {
		t.Errorf("genes = %v", b.Genes)
	}
	if !IsScalingCluster(m, b.Genes, b.Conds, 1e-6) {
		t.Error("mined cluster fails IsScalingCluster")
	}
}

// TestCannotGroupShiftedPatterns demonstrates the paper's comparison point:
// on the Figure 1 data the scaling model groups {P1, P4, P5, P6} but cannot
// merge the shifted profiles P2 = P1+5 and P3 = P1+15 with them.
func TestCannotGroupShiftedPatterns(t *testing.T) {
	m := paperdata.SixPatterns()
	got, err := Mine(m, Params{Epsilon: 0.05, MinG: 2, MinC: 8})
	if err != nil {
		t.Fatal(err)
	}
	foundScaling := false
	for _, b := range got {
		if containsAll(b.Genes, 0, 3, 4, 5) {
			foundScaling = true
		}
		if containsAll(b.Genes, 0, 1) || containsAll(b.Genes, 0, 2) {
			t.Errorf("scaling model wrongly grouped shifted profiles: %v", b)
		}
	}
	if !foundScaling {
		t.Error("scaling model failed to find the pure scaling group {P1,P4,P5,P6}")
	}
}

func TestNegativeScalingSameSignRatios(t *testing.T) {
	// g2 = -2 × g1: ratios across conditions stay constant per condition
	// pair, so a pure (negative) scaling IS capturable by the ratio model —
	// but only without a shift.
	m := matrix.FromRows([][]float64{
		{1, 5, 2, 8},
		{-2, -10, -4, -16},
	})
	got, err := Mine(m, Params{Epsilon: 1e-9, MinG: 2, MinC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("pure negative scaling should be found: %v", got)
	}
	// Adding a shift breaks it.
	m.ShiftScaleRow(1, 1, 3)
	got, err = Mine(m, Params{Epsilon: 0.05, MinG: 2, MinC: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("shifted negative scaling must escape the ratio model: %v", got)
	}
}

func TestZeroValuesNeverFit(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{0, 2, 4},
		{0, 2, 4},
	})
	got, err := Mine(m, Params{Epsilon: 0.1, MinG: 2, MinC: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("zero cells should block ratio clusters over all 3 conds: %v", got)
	}
}

func containsAll(xs []int, want ...int) bool {
	set := map[int]bool{}
	for _, x := range xs {
		set[x] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}
