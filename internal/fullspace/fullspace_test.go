package fullspace

import (
	"reflect"
	"testing"

	"regcluster/internal/matrix"
)

func twoBlobs() *matrix.Matrix {
	return matrix.FromRows([][]float64{
		{0, 0, 0},
		{0.5, 0.2, 0.1},
		{0.1, 0.4, 0.3},
		{10, 10, 10},
		{10.2, 9.8, 10.1},
		{9.9, 10.3, 10.2},
	})
}

func TestHierarchicalTwoBlobs(t *testing.T) {
	got, err := Hierarchical(twoBlobs(), 2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clusters = %v, want %v", got, want)
	}
}

func TestHierarchicalKEqualsN(t *testing.T) {
	m := twoBlobs()
	got, err := Hierarchical(m, m.Rows(), Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != m.Rows() {
		t.Fatalf("k=n should give singletons, got %d clusters", len(got))
	}
}

func TestHierarchicalPearson(t *testing.T) {
	// Correlation distance groups by shape, not magnitude.
	m := matrix.FromRows([][]float64{
		{1, 2, 3, 4},
		{10, 20, 30, 40}, // same shape as row 0
		{4, 3, 2, 1},
		{40, 30, 20, 10}, // same shape as row 2
	})
	got, err := Hierarchical(m, 2, PearsonDist)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clusters = %v, want %v", got, want)
	}
}

func TestHierarchicalValidation(t *testing.T) {
	m := twoBlobs()
	if _, err := Hierarchical(m, 0, Euclidean); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Hierarchical(m, 7, Euclidean); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKMeansTwoBlobs(t *testing.T) {
	got, err := KMeans(twoBlobs(), 2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d clusters", len(got))
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clusters = %v, want %v", got, want)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	a, err := KMeans(twoBlobs(), 2, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(twoBlobs(), 2, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different partitions")
	}
}

func TestKMeansCoversAllGenes(t *testing.T) {
	m := twoBlobs()
	got, err := KMeans(m, 3, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range got {
		for _, g := range c {
			if seen[g] {
				t.Fatalf("gene %d assigned twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != m.Rows() {
		t.Fatalf("%d of %d genes assigned", len(seen), m.Rows())
	}
}

func TestKMeansValidation(t *testing.T) {
	m := twoBlobs()
	if _, err := KMeans(m, 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(m, 100, 10, 1); err == nil {
		t.Error("k>n accepted")
	}
}

// TestFullSpaceMissesSubspacePattern documents why the paper moves beyond
// full-space clustering: two genes identical on a 3-condition subspace but
// wildly different elsewhere land in different full-space clusters.
func TestFullSpaceMissesSubspacePattern(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3, 100, 200, 300},
		{1, 2, 3, -100, -200, -300},
		{50, 60, 70, 100, 200, 300},
	})
	got, err := Hierarchical(m, 2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	// Full space: g0 pairs with g2 (shared tail dominates), not with g1
	// despite the perfect 3-condition subspace match.
	for _, c := range got {
		set := map[int]bool{}
		for _, g := range c {
			set[g] = true
		}
		if set[0] && set[1] {
			t.Fatal("full-space clustering unexpectedly grouped the subspace pair")
		}
	}
}
