// Package fullspace implements the classic full-space clustering algorithms
// the paper's related-work section contrasts with subspace methods:
// agglomerative hierarchical clustering (Eisen et al. 1998) and k-means
// (Tavazoie et al. 1999). They judge similarity over *all* conditions, which
// is exactly why they miss subspace co-regulation — the comparison harness
// uses them to demonstrate that.
package fullspace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// Distance selects the gene-profile dissimilarity.
type Distance int

const (
	// Euclidean distance on raw profiles.
	Euclidean Distance = iota
	// PearsonDist is 1 − r: correlated genes are close, anti-correlated far.
	PearsonDist
)

// rowDistance computes the selected distance between two gene rows.
func rowDistance(m *matrix.Matrix, d Distance, a, b int) float64 {
	switch d {
	case Euclidean:
		ra, rb := m.Row(a), m.Row(b)
		sum := 0.0
		for j := range ra {
			diff := ra[j] - rb[j]
			sum += diff * diff
		}
		return math.Sqrt(sum)
	case PearsonDist:
		return 1 - m.PearsonRows(a, b, nil)
	}
	panic(fmt.Sprintf("fullspace: unknown distance %d", d))
}

// Hierarchical performs average-linkage agglomerative clustering of the gene
// rows and cuts the dendrogram into k clusters. It returns the clusters as
// gene-index lists (each ascending, ordered by smallest member).
func Hierarchical(m *matrix.Matrix, k int, dist Distance) ([][]int, error) {
	n := m.Rows()
	if k < 1 || k > n {
		return nil, fmt.Errorf("fullspace: k=%d out of range 1..%d", k, n)
	}
	// Active cluster list with average-linkage distances maintained via the
	// Lance–Williams update. O(n^2) memory, O(n^3) worst-case time: fine for
	// the thousands-of-genes scale of this repository.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i < j {
				d[i][j] = rowDistance(m, dist, i, j)
			}
		}
	}
	dAt := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return d[i][j]
	}
	setD := func(i, j int, v float64) {
		if i > j {
			i, j = j, i
		}
		d[i][j] = v
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > k {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for x := 0; x < len(active); x++ {
			for y := x + 1; y < len(active); y++ {
				if v := dAt(active[x], active[y]); v < best {
					bi, bj, best = active[x], active[y], v
				}
			}
		}
		// Merge bj into bi with average linkage.
		ni, nj := float64(len(clusters[bi])), float64(len(clusters[bj]))
		for _, a := range active {
			if a == bi || a == bj {
				continue
			}
			v := (ni*dAt(bi, a) + nj*dAt(bj, a)) / (ni + nj)
			setD(bi, a, v)
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters[bj] = nil
		for x, a := range active {
			if a == bj {
				active = append(active[:x], active[x+1:]...)
				break
			}
		}
	}
	var out [][]int
	for _, a := range active {
		c := append([]int(nil), clusters[a]...)
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out, nil
}

// KMeans partitions the gene rows into k clusters with Lloyd's algorithm
// (random initial centroids from the data, fixed iteration cap, deterministic
// under seed). Empty clusters are reseeded from the farthest point.
func KMeans(m *matrix.Matrix, k, maxIter int, seed int64) ([][]int, error) {
	n, dims := m.Rows(), m.Cols()
	if k < 1 || k > n {
		return nil, fmt.Errorf("fullspace: k=%d out of range 1..%d", k, n)
	}
	if maxIter < 1 {
		maxIter = 50
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := make([][]float64, k)
	for i, g := range rng.Perm(n)[:k] {
		centroids[i] = append([]float64(nil), m.Row(g)...)
	}
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for g := 0; g < n; g++ {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				dd := 0.0
				row := m.Row(g)
				for j := 0; j < dims; j++ {
					diff := row[j] - centroids[c][j]
					dd += diff * diff
				}
				if dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[g] != best {
				assign[g] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for g := 0; g < n; g++ {
			c := assign[g]
			counts[c]++
			row := m.Row(g)
			for j := 0; j < dims; j++ {
				centroids[c][j] += row[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Reseed an empty cluster from a random gene.
				copy(centroids[c], m.Row(rng.Intn(n)))
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	out := make([][]int, k)
	for g, c := range assign {
		out[c] = append(out[c], g)
	}
	// Drop empties, order by smallest member.
	var res [][]int
	for _, c := range out {
		if len(c) > 0 {
			res = append(res, c)
		}
	}
	sort.Slice(res, func(a, b int) bool { return res[a][0] < res[b][0] })
	return res, nil
}
