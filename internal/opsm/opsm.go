// Package opsm implements the order-preserving submatrix model of Ben-Dor,
// Chor, Karp & Yakhini (RECOMB 2002) — reference [3] of the reg-cluster
// paper and the statistical ancestor of the tendency-based models.
//
// An OPSM of size s is a column sequence (t1 < t2 < ... in expression order)
// together with the genes whose values rise along it. The algorithm grows
// *partial models* — a prefix and a suffix of the final sequence — keeping
// the ℓ highest-support candidates per round (beam search), exactly as in
// the original paper. Model quality is the binomial upper bound on the
// probability that k of n genes support a random s-column ordering
// (p_support = 1/s!).
package opsm

import (
	"fmt"
	"math"
	"sort"

	"regcluster/internal/matrix"
)

// Params configures the search.
type Params struct {
	// Size is the target number of columns s of the model.
	Size int
	// Beam is ℓ, the number of partial models kept per growing round
	// (the original paper uses 100).
	Beam int
}

// Model is one order-preserving submatrix.
type Model struct {
	// Columns in the discovered expression order.
	Columns []int
	// Genes supporting the full ordering, ascending.
	Genes []int
	// Significance is the binomial upper-bound score ln P(X >= k) with
	// X ~ Bin(n, 1/s!); more negative is better.
	Significance float64
}

// partial is a Ben-Dor partial model: the first a and last b columns of the
// final s-sequence are fixed.
type partial struct {
	prefix, suffix []int
	support        int
}

// Mine finds the most significant OPSM of the requested size via beam
// search, returning the best complete models (at most Beam, sorted by
// support then significance).
func Mine(m *matrix.Matrix, p Params) ([]Model, error) {
	n := m.Cols()
	if p.Size < 2 || p.Size > n {
		return nil, fmt.Errorf("opsm: Size %d out of 2..%d", p.Size, n)
	}
	if p.Beam < 1 {
		p.Beam = 100
	}

	// Round 0: all (first, last) column pairs as (1,1)-partial models.
	var beam []partial
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			pm := partial{prefix: []int{a}, suffix: []int{b}}
			pm.support = countSupport(m, pm, p.Size)
			if pm.support > 0 {
				beam = append(beam, pm)
			}
		}
	}
	trim(&beam, p.Beam)

	// Grow: alternately extend the prefix and the suffix until the model is
	// complete (prefix+suffix == Size).
	for used := 2; used < p.Size; used++ {
		var next []partial
		for _, pm := range beam {
			inUse := map[int]bool{}
			for _, c := range pm.prefix {
				inUse[c] = true
			}
			for _, c := range pm.suffix {
				inUse[c] = true
			}
			extendPrefix := len(pm.prefix) <= len(pm.suffix)
			for c := 0; c < n; c++ {
				if inUse[c] {
					continue
				}
				var cand partial
				if extendPrefix {
					cand = partial{
						prefix: append(append([]int(nil), pm.prefix...), c),
						suffix: pm.suffix,
					}
				} else {
					cand = partial{
						prefix: pm.prefix,
						suffix: append([]int{c}, pm.suffix...),
					}
				}
				cand.support = countSupport(m, cand, p.Size)
				if cand.support > 0 {
					next = append(next, cand)
				}
			}
		}
		trim(&next, p.Beam)
		beam = next
		if len(beam) == 0 {
			return nil, nil
		}
	}

	// Complete models: prefix+suffix spans all s columns.
	out := make([]Model, 0, len(beam))
	seen := map[string]bool{}
	for _, pm := range beam {
		cols := append(append([]int(nil), pm.prefix...), pm.suffix...)
		key := fmt.Sprint(cols)
		if seen[key] {
			continue
		}
		seen[key] = true
		genes := supportingGenes(m, cols)
		if len(genes) == 0 {
			continue
		}
		out = append(out, Model{
			Columns:      cols,
			Genes:        genes,
			Significance: lbinomTail(m.Rows(), len(genes), 1/factorial(p.Size)),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Genes) != len(out[b].Genes) {
			return len(out[a].Genes) > len(out[b].Genes)
		}
		return out[a].Significance < out[b].Significance
	})
	return out, nil
}

// countSupport counts genes consistent with the partial model under the
// Ben-Dor semantics: the prefix columns are in rising order and hold the
// (len(prefix)) smallest gaps... precisely, a gene supports the partial
// model if prefix values rise, suffix values rise, every prefix value is
// below every suffix value, and there is "room" between them for the
// remaining size-a-b middle columns (at least that many other columns have
// values strictly between prefix-max and suffix-min).
func countSupport(m *matrix.Matrix, pm partial, size int) int {
	count := 0
	for g := 0; g < m.Rows(); g++ {
		if supports(m, g, pm, size) {
			count++
		}
	}
	return count
}

func supports(m *matrix.Matrix, g int, pm partial, size int) bool {
	row := m.Row(g)
	for i := 1; i < len(pm.prefix); i++ {
		if row[pm.prefix[i]] <= row[pm.prefix[i-1]] {
			return false
		}
	}
	for i := 1; i < len(pm.suffix); i++ {
		if row[pm.suffix[i]] <= row[pm.suffix[i-1]] {
			return false
		}
	}
	hi := row[pm.suffix[0]]
	lo := row[pm.prefix[len(pm.prefix)-1]]
	if lo >= hi {
		return false
	}
	middle := size - len(pm.prefix) - len(pm.suffix)
	if middle == 0 {
		return true
	}
	inUse := map[int]bool{}
	for _, c := range pm.prefix {
		inUse[c] = true
	}
	for _, c := range pm.suffix {
		inUse[c] = true
	}
	room := 0
	for c := 0; c < m.Cols(); c++ {
		if !inUse[c] && row[c] > lo && row[c] < hi {
			room++
		}
	}
	return room >= middle
}

// supportingGenes lists genes strictly rising along the complete column
// sequence.
func supportingGenes(m *matrix.Matrix, cols []int) []int {
	var out []int
	for g := 0; g < m.Rows(); g++ {
		row := m.Row(g)
		ok := true
		for i := 1; i < len(cols); i++ {
			if row[cols[i]] <= row[cols[i-1]] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, g)
		}
	}
	return out
}

func trim(beam *[]partial, l int) {
	sort.SliceStable(*beam, func(a, b int) bool { return (*beam)[a].support > (*beam)[b].support })
	if len(*beam) > l {
		*beam = (*beam)[:l]
	}
}

// lbinomTail returns ln P(X >= k) for X ~ Binomial(n, p), computed in log
// space.
func lbinomTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 0
	}
	if k > n || p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return 0
	}
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, n-k+1)
	lp, lq := math.Log(p), math.Log(1-p)
	for i := k; i <= n; i++ {
		l := lchoose(n, i) + float64(i)*lp + float64(n-i)*lq
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	out := maxLog + math.Log(sum)
	if out > 0 {
		out = 0
	}
	return out
}

func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

func factorial(n int) float64 {
	out := 1.0
	for i := 2; i <= n; i++ {
		out *= float64(i)
	}
	return out
}
