package opsm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"regcluster/internal/matrix"
)

// plantOrder builds a matrix where a group of genes shares a hidden column
// ordering against noise genes.
func plantOrder(t *testing.T, seed int64) (*matrix.Matrix, []int, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(40, 8)
	for g := 0; g < 40; g++ {
		for c := 0; c < 8; c++ {
			m.Set(g, c, rng.Float64()*100)
		}
	}
	order := []int{5, 2, 7, 0} // hidden rising sequence
	members := []int{3, 9, 15, 21, 27, 33}
	for _, g := range members {
		base := rng.Float64() * 20
		for i, c := range order {
			m.Set(g, c, base+float64(i+1)*25+rng.Float64())
		}
	}
	return m, members, order
}

func TestMineRecoversPlantedOrder(t *testing.T) {
	m, members, order := plantOrder(t, 1)
	got, err := Mine(m, Params{Size: 4, Beam: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("nothing mined")
	}
	best := got[0]
	if !reflect.DeepEqual(best.Columns, order) {
		t.Fatalf("columns = %v, want %v", best.Columns, order)
	}
	gset := map[int]bool{}
	for _, g := range best.Genes {
		gset[g] = true
	}
	for _, g := range members {
		if !gset[g] {
			t.Errorf("planted member %d missing", g)
		}
	}
	if best.Significance > -5 {
		t.Errorf("planted model significance %v, want strongly negative", best.Significance)
	}
}

func TestSupportSemantics(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 5, 3, 9}, // rises along 0,2,1,3
	})
	// Partial model (prefix=[0], suffix=[3], size 4): needs 2 middle columns
	// strictly between row[0]=1 and row[3]=9 → columns 1 and 2 qualify.
	pm := partial{prefix: []int{0}, suffix: []int{3}}
	if !supports(m, 0, pm, 4) {
		t.Fatal("should support with enough middle room")
	}
	// Size 5 impossible: only 2 middle columns exist.
	if supports(m, 0, pm, 5) {
		t.Fatal("supported despite missing middle room")
	}
	// Prefix above suffix never supports.
	pm2 := partial{prefix: []int{3}, suffix: []int{0}}
	if supports(m, 0, pm2, 2) {
		t.Fatal("lo >= hi must not support")
	}
}

func TestSupportingGenesStrictOrder(t *testing.T) {
	m := matrix.FromRows([][]float64{
		{1, 2, 3},
		{1, 1, 3}, // tie: not strictly rising
		{3, 2, 1},
	})
	got := supportingGenes(m, []int{0, 1, 2})
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("supporting genes %v", got)
	}
}

func TestMineValidation(t *testing.T) {
	m := matrix.New(4, 4)
	if _, err := Mine(m, Params{Size: 1}); err == nil {
		t.Error("Size=1 accepted")
	}
	if _, err := Mine(m, Params{Size: 9}); err == nil {
		t.Error("Size>cols accepted")
	}
}

func TestLBinomTail(t *testing.T) {
	// P(X>=1) for Bin(2, 0.5) = 0.75.
	if got := math.Exp(lbinomTail(2, 1, 0.5)); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(X>=1) = %v", got)
	}
	if lbinomTail(5, 0, 0.5) != 0 {
		t.Error("P(X>=0) must be 1 (ln = 0)")
	}
	if !math.IsInf(lbinomTail(5, 6, 0.5), -1) {
		t.Error("k>n must be -Inf")
	}
}

func TestFactorial(t *testing.T) {
	if factorial(4) != 24 || factorial(0) != 1 {
		t.Error("factorial wrong")
	}
}
