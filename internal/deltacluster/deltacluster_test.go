package deltacluster

import (
	"math"
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
)

func TestResidueZeroForShifting(t *testing.T) {
	base := []float64{1, 7, 3, 9, 5}
	m := matrix.New(4, 5)
	for i := 0; i < 4; i++ {
		for j, v := range base {
			m.Set(i, j, v+float64(3*i))
		}
	}
	if r := Residue(m, []int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4}); r > 1e-12 {
		t.Fatalf("residue of shifting pattern = %v, want 0", r)
	}
}

func TestResiduePositiveForScaling(t *testing.T) {
	// A scaled row breaks the additive model: residue must be positive —
	// the paper's point that δ-clusters cannot absorb scaling.
	base := []float64{1, 7, 3, 9, 5}
	m := matrix.New(3, 5)
	for i := 0; i < 3; i++ {
		for j, v := range base {
			m.Set(i, j, v)
		}
	}
	m.ShiftScaleRow(2, 4, 0)
	if r := Residue(m, []int{0, 1, 2}, []int{0, 1, 2, 3, 4}); r < 0.5 {
		t.Fatalf("residue of scaled member = %v, want clearly positive", r)
	}
	if Residue(m, nil, nil) != 0 {
		t.Fatal("empty residue should be 0")
	}
}

func TestMineImprovesResidue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := matrix.New(20, 8)
	for g := 0; g < 20; g++ {
		for c := 0; c < 8; c++ {
			m.Set(g, c, rng.Float64()*50)
		}
	}
	// Plant a perfect shifting block on rows 3,7,11,15 cols 1,3,5,7.
	rows := []int{3, 7, 11, 15}
	cols := []int{1, 3, 5, 7}
	base := []float64{5, 25, 15, 35}
	for ri, r := range rows {
		for ci, c := range cols {
			m.Set(r, c, base[ci]+float64(10*ri))
		}
	}
	got, err := Mine(m, DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d clusters", len(got))
	}
	// Residues sorted ascending; best must be far below the global residue.
	global := Residue(m, seq(20), seq(8))
	if got[0].Residue >= global {
		t.Fatalf("no improvement: best %v vs global %v", got[0].Residue, global)
	}
	for _, b := range got {
		if len(b.Genes) < 2 || len(b.Conds) < 2 {
			t.Fatalf("cluster below minimum size: %+v", b)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	m := matrix.New(10, 6)
	rng := rand.New(rand.NewSource(1))
	for g := 0; g < 10; g++ {
		for c := 0; c < 6; c++ {
			m.Set(g, c, rng.Float64())
		}
	}
	p := DefaultParams(2)
	p.Seed = 9
	a, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if math.Abs(a[k].Residue-b[k].Residue) > 0 {
			t.Fatal("nondeterministic under fixed seed")
		}
	}
}

func TestMineValidation(t *testing.T) {
	m := matrix.New(5, 5)
	if _, err := Mine(m, Params{K: 0, MinG: 2, MinC: 2, InitProb: 0.5}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Mine(m, Params{K: 1, MinG: 1, MinC: 2, InitProb: 0.5}); err == nil {
		t.Error("MinG=1 accepted")
	}
	if _, err := Mine(m, Params{K: 1, MinG: 2, MinC: 2, InitProb: 0}); err == nil {
		t.Error("InitProb=0 accepted")
	}
	got, err := Mine(matrix.New(1, 1), DefaultParams(1))
	if err != nil || got != nil {
		t.Error("degenerate matrix should return nil, nil")
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
