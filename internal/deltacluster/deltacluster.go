// Package deltacluster implements a FLOC-style δ-cluster baseline (Yang,
// Wang, Wang, Yu — ICDE 2002): k possibly-overlapping biclusters refined by
// local search, where cluster quality is the mean absolute base residue
// (zero exactly for pure shifting patterns).
//
// The reg-cluster paper cites δ-clusters as a pattern-based model limited to
// shifting patterns (Equation 1): like pCluster it cannot represent
// shifting-and-scaling relationships or negative co-regulation, which the
// comparison tests demonstrate.
package deltacluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// Params configures the FLOC search.
type Params struct {
	// K is the number of clusters maintained.
	K int
	// MinG, MinC are the minimum cluster dimensions kept during moves.
	MinG, MinC int
	// MaxIter bounds the improvement rounds.
	MaxIter int
	// InitProb is the probability a gene/condition joins a cluster at
	// initialization (FLOC uses 0.5; smaller values suit larger matrices).
	InitProb float64
	// Seed drives the randomized initialization.
	Seed int64
}

// DefaultParams returns the original paper's settings.
func DefaultParams(k int) Params {
	return Params{K: k, MinG: 2, MinC: 2, MaxIter: 50, InitProb: 0.5}
}

// Bicluster is one δ-cluster with its residue score.
type Bicluster struct {
	Genes, Conds []int
	Residue      float64
}

// Residue computes the mean absolute base residue of the submatrix — the
// δ-cluster objective. It is 0 iff the submatrix is a perfect shifting
// pattern.
func Residue(m *matrix.Matrix, genes, conds []int) float64 {
	if len(genes) == 0 || len(conds) == 0 {
		return 0
	}
	nr, nc := float64(len(genes)), float64(len(conds))
	rowMean := make([]float64, len(genes))
	colMean := make([]float64, len(conds))
	all := 0.0
	for ri, g := range genes {
		for ci, c := range conds {
			v := m.At(g, c)
			rowMean[ri] += v
			colMean[ci] += v
			all += v
		}
	}
	for ri := range rowMean {
		rowMean[ri] /= nc
	}
	for ci := range colMean {
		colMean[ci] /= nr
	}
	all /= nr * nc
	sum := 0.0
	for ri, g := range genes {
		for ci, c := range conds {
			sum += math.Abs(m.At(g, c) - rowMean[ri] - colMean[ci] + all)
		}
	}
	return sum / (nr * nc)
}

// Mine runs the FLOC local search and returns the K clusters sorted by
// ascending residue. Deterministic under Seed.
func Mine(m *matrix.Matrix, p Params) ([]Bicluster, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("deltacluster: K = %d", p.K)
	}
	if p.MinG < 2 || p.MinC < 2 {
		return nil, fmt.Errorf("deltacluster: MinG/MinC must be >= 2, got %d/%d", p.MinG, p.MinC)
	}
	if p.InitProb <= 0 || p.InitProb > 1 {
		return nil, fmt.Errorf("deltacluster: InitProb %v out of (0,1]", p.InitProb)
	}
	if p.MaxIter < 1 {
		p.MaxIter = 50
	}
	nG, nC := m.Rows(), m.Cols()
	if nG < p.MinG || nC < p.MinC {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Membership matrices: inG[k][g], inC[k][c].
	inG := make([][]bool, p.K)
	inC := make([][]bool, p.K)
	for k := 0; k < p.K; k++ {
		inG[k] = make([]bool, nG)
		inC[k] = make([]bool, nC)
		for g := 0; g < nG; g++ {
			inG[k][g] = rng.Float64() < p.InitProb
		}
		for c := 0; c < nC; c++ {
			inC[k][c] = rng.Float64() < p.InitProb
		}
		ensureMinimum(rng, inG[k], p.MinG)
		ensureMinimum(rng, inC[k], p.MinC)
	}

	members := func(k int) ([]int, []int) {
		var gs, cs []int
		for g, in := range inG[k] {
			if in {
				gs = append(gs, g)
			}
		}
		for c, in := range inC[k] {
			if in {
				cs = append(cs, c)
			}
		}
		return gs, cs
	}
	score := func(k int) float64 {
		gs, cs := members(k)
		return Residue(m, gs, cs)
	}

	// Local search: each round tries, for every gene and condition, the
	// single best cluster toggle; the best improving action is applied
	// greedily per element (classic FLOC action ordering, deterministic
	// given the membership state).
	cur := make([]float64, p.K)
	for k := range cur {
		cur[k] = score(k)
	}
	for iter := 0; iter < p.MaxIter; iter++ {
		improved := false
		for g := 0; g < nG; g++ {
			bestK, bestGain := -1, 1e-12
			for k := 0; k < p.K; k++ {
				gs, cs := members(k)
				if inG[k][g] && len(gs) <= p.MinG {
					continue
				}
				inG[k][g] = !inG[k][g]
				gs2, _ := members(k)
				gain := cur[k] - Residue(m, gs2, cs)
				inG[k][g] = !inG[k][g]
				if gain > bestGain {
					bestK, bestGain = k, gain
				}
			}
			if bestK >= 0 {
				inG[bestK][g] = !inG[bestK][g]
				cur[bestK] = score(bestK)
				improved = true
			}
		}
		for c := 0; c < nC; c++ {
			bestK, bestGain := -1, 1e-12
			for k := 0; k < p.K; k++ {
				_, cs := members(k)
				if inC[k][c] && len(cs) <= p.MinC {
					continue
				}
				inC[k][c] = !inC[k][c]
				gs, cs2 := members(k)
				gain := cur[k] - Residue(m, gs, cs2)
				inC[k][c] = !inC[k][c]
				if gain > bestGain {
					bestK, bestGain = k, gain
				}
			}
			if bestK >= 0 {
				inC[bestK][c] = !inC[bestK][c]
				cur[bestK] = score(bestK)
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	out := make([]Bicluster, 0, p.K)
	for k := 0; k < p.K; k++ {
		gs, cs := members(k)
		out = append(out, Bicluster{Genes: gs, Conds: cs, Residue: Residue(m, gs, cs)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Residue < out[b].Residue })
	return out, nil
}

// ensureMinimum forces at least min true entries.
func ensureMinimum(rng *rand.Rand, in []bool, min int) {
	count := 0
	for _, b := range in {
		if b {
			count++
		}
	}
	for count < min {
		i := rng.Intn(len(in))
		if !in[i] {
			in[i] = true
			count++
		}
	}
}
