// Package proclus implements the PROCLUS projected clustering baseline
// (Aggarwal et al. — SIGMOD 1999), representative of the density-based
// subspace clustering family ([1, 2, 4, 15, 16, 21] in the reg-cluster
// paper). Each cluster is a set of genes plus a per-cluster subset of
// dimensions in which the members are spatially close to a medoid.
//
// The reg-cluster paper's criticisms, which the comparison tests verify:
// projected clustering assigns each gene to at most one cluster, and it
// requires spatial proximity — so genes related by shifting-and-scaling (let
// alone negative correlation) are not grouped even when perfectly
// co-regulated.
package proclus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"regcluster/internal/matrix"
)

// Params configures the search.
type Params struct {
	// K is the number of clusters.
	K int
	// AvgDims is the average number of projected dimensions per cluster
	// (total dimension budget = K × AvgDims).
	AvgDims int
	// MaxIter bounds the medoid-improvement rounds.
	MaxIter int
	// Seed drives sampling.
	Seed int64
}

// Cluster is one projected cluster: member genes, the medoid gene, and the
// dimensions in which the members congregate.
type Cluster struct {
	Medoid int
	Genes  []int
	Dims   []int
}

// Outliers is the assignment value for unclustered genes.
const Outliers = -1

// Mine runs PROCLUS and returns the clusters plus the gene→cluster
// assignment vector (Outliers for none; every non-medoid gene is assigned to
// its closest medoid in that medoid's projected subspace).
func Mine(m *matrix.Matrix, p Params) ([]Cluster, []int, error) {
	nG, nC := m.Rows(), m.Cols()
	if p.K < 1 || p.K > nG {
		return nil, nil, fmt.Errorf("proclus: K = %d out of 1..%d", p.K, nG)
	}
	if p.AvgDims < 2 || p.AvgDims > nC {
		return nil, nil, fmt.Errorf("proclus: AvgDims = %d out of 2..%d", p.AvgDims, nC)
	}
	if p.MaxIter < 1 {
		p.MaxIter = 20
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Greedy medoid selection on a sample: start random, repeatedly add the
	// gene farthest (full-space) from the chosen set.
	medoids := []int{rng.Intn(nG)}
	for len(medoids) < p.K {
		far, farD := -1, -1.0
		for g := 0; g < nG; g++ {
			d := math.Inf(1)
			for _, md := range medoids {
				if dd := fullDist(m, g, md); dd < d {
					d = dd
				}
			}
			if d > farD && !contains(medoids, g) {
				far, farD = g, d
			}
		}
		medoids = append(medoids, far)
	}

	var bestClusters []Cluster
	var bestAssign []int
	bestObj := math.Inf(1)
	for iter := 0; iter < p.MaxIter; iter++ {
		dims := findDimensions(m, medoids, p.AvgDims)
		assign := assignPoints(m, medoids, dims)
		obj := objective(m, medoids, dims, assign)
		if obj < bestObj {
			bestObj = obj
			bestAssign = assign
			bestClusters = make([]Cluster, len(medoids))
			for k, md := range medoids {
				bestClusters[k] = Cluster{Medoid: md, Dims: dims[k]}
			}
			for g, k := range assign {
				if k >= 0 {
					bestClusters[k].Genes = append(bestClusters[k].Genes, g)
				}
			}
		} else {
			// Replace the medoid of the smallest cluster with a random gene
			// (the "bad medoid" step).
			counts := make([]int, len(medoids))
			for _, k := range assign {
				if k >= 0 {
					counts[k]++
				}
			}
			worst := 0
			for k := range counts {
				if counts[k] < counts[worst] {
					worst = k
				}
			}
			medoids[worst] = rng.Intn(nG)
		}
	}
	for k := range bestClusters {
		sort.Ints(bestClusters[k].Genes)
	}
	return bestClusters, bestAssign, nil
}

// findDimensions allocates K×AvgDims dimensions greedily to the medoids by
// the most negative z-score of the per-dimension locality distance, at least
// two per medoid (the PROCLUS dimension selection).
func findDimensions(m *matrix.Matrix, medoids []int, avgDims int) [][]int {
	nC := m.Cols()
	k := len(medoids)
	// Locality of medoid i: genes within its full-space distance to the
	// nearest other medoid.
	type score struct {
		med, dim int
		z        float64
	}
	var scores []score
	for i, mi := range medoids {
		delta := math.Inf(1)
		for j, mj := range medoids {
			if i != j {
				if d := fullDist(m, mi, mj); d < delta {
					delta = d
				}
			}
		}
		// Average per-dimension distance of locality members to the medoid.
		x := make([]float64, nC)
		count := 0
		for g := 0; g < m.Rows(); g++ {
			if fullDist(m, g, mi) <= delta && g != mi {
				for c := 0; c < nC; c++ {
					x[c] += math.Abs(m.At(g, c) - m.At(mi, c))
				}
				count++
			}
		}
		if count == 0 {
			count = 1
		}
		mean, std := 0.0, 0.0
		for c := range x {
			x[c] /= float64(count)
			mean += x[c]
		}
		mean /= float64(nC)
		for c := range x {
			std += (x[c] - mean) * (x[c] - mean)
		}
		std = math.Sqrt(std / float64(nC-1))
		if std == 0 {
			std = 1
		}
		for c := 0; c < nC; c++ {
			scores = append(scores, score{i, c, (x[c] - mean) / std})
		}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].z < scores[b].z })

	dims := make([][]int, k)
	budget := k * avgDims
	// First two smallest per medoid, then globally best until the budget is
	// spent.
	perMed := make([][]score, k)
	for _, s := range scores {
		perMed[s.med] = append(perMed[s.med], s)
	}
	taken := map[[2]int]bool{}
	for i := 0; i < k; i++ {
		for _, s := range perMed[i][:2] {
			dims[i] = append(dims[i], s.dim)
			taken[[2]int{i, s.dim}] = true
			budget--
		}
	}
	for _, s := range scores {
		if budget == 0 {
			break
		}
		if taken[[2]int{s.med, s.dim}] {
			continue
		}
		dims[s.med] = append(dims[s.med], s.dim)
		taken[[2]int{s.med, s.dim}] = true
		budget--
	}
	for i := range dims {
		sort.Ints(dims[i])
	}
	return dims
}

// assignPoints assigns every gene to the medoid with the smallest projected
// Manhattan segmental distance.
func assignPoints(m *matrix.Matrix, medoids []int, dims [][]int) []int {
	assign := make([]int, m.Rows())
	for g := range assign {
		best, bestD := Outliers, math.Inf(1)
		for k, md := range medoids {
			d := segmental(m, g, md, dims[k])
			if d < bestD {
				best, bestD = k, d
			}
		}
		assign[g] = best
	}
	return assign
}

func objective(m *matrix.Matrix, medoids []int, dims [][]int, assign []int) float64 {
	sum, n := 0.0, 0
	for g, k := range assign {
		if k < 0 {
			continue
		}
		sum += segmental(m, g, medoids[k], dims[k])
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// segmental is the Manhattan distance averaged over the projected dims.
func segmental(m *matrix.Matrix, a, b int, dims []int) float64 {
	if len(dims) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, c := range dims {
		sum += math.Abs(m.At(a, c) - m.At(b, c))
	}
	return sum / float64(len(dims))
}

func fullDist(m *matrix.Matrix, a, b int) float64 {
	ra, rb := m.Row(a), m.Row(b)
	sum := 0.0
	for j := range ra {
		sum += math.Abs(ra[j] - rb[j])
	}
	return sum
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
