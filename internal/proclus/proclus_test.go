package proclus

import (
	"math/rand"
	"testing"

	"regcluster/internal/matrix"
)

// twoProjectedClusters builds genes that congregate in different dimension
// subsets: group A is tight on dims {0,1,2} and random elsewhere; group B is
// tight on dims {3,4,5}.
func twoProjectedClusters(t *testing.T) (*matrix.Matrix, []int, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	m := matrix.New(40, 6)
	var groupA, groupB []int
	for g := 0; g < 40; g++ {
		for c := 0; c < 6; c++ {
			m.Set(g, c, rng.Float64()*100)
		}
		if g < 20 {
			groupA = append(groupA, g)
			for _, c := range []int{0, 1, 2} {
				m.Set(g, c, 10+rng.Float64())
			}
		} else {
			groupB = append(groupB, g)
			for _, c := range []int{3, 4, 5} {
				m.Set(g, c, 80+rng.Float64())
			}
		}
	}
	return m, groupA, groupB
}

func TestMineSeparatesProjectedGroups(t *testing.T) {
	m, groupA, groupB := twoProjectedClusters(t)
	clusters, assign, err := Mine(m, Params{K: 2, AvgDims: 3, MaxIter: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("%d clusters", len(clusters))
	}
	// Purity: each group should be dominated by one cluster id.
	if p := purity(assign, groupA); p < 0.9 {
		t.Errorf("group A purity %v", p)
	}
	if p := purity(assign, groupB); p < 0.9 {
		t.Errorf("group B purity %v", p)
	}
	// The selected dimensions should match the planted subspaces for at
	// least one cluster.
	foundLow, foundHigh := false, false
	for _, cl := range clusters {
		if len(cl.Dims) >= 2 && cl.Dims[0] <= 2 && cl.Dims[len(cl.Dims)-1] <= 2 {
			foundLow = true
		}
		if len(cl.Dims) >= 2 && cl.Dims[0] >= 3 {
			foundHigh = true
		}
	}
	if !foundLow || !foundHigh {
		t.Errorf("projected dims not recovered: %+v", clusters)
	}
}

// TestCannotGroupShiftScaled documents the reg-cluster paper's criticism:
// perfectly co-regulated genes with different offsets are NOT close in any
// subspace, so projected clustering separates them from each other.
func TestCannotGroupShiftScaled(t *testing.T) {
	base := []float64{1, 9, 3, 11, 5, 13}
	m := matrix.New(4, 6)
	shifts := []float64{0, 100, 200, 300} // same pattern, far apart spatially
	for g, s := range shifts {
		for c, v := range base {
			m.Set(g, c, v+s)
		}
	}
	_, assign, err := Mine(m, Params{K: 2, AvgDims: 3, MaxIter: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Genes 0 and 3 (300 apart) must not share a cluster with each other
	// AND with everyone: at least two distinct cluster ids appear.
	ids := map[int]bool{}
	for _, k := range assign {
		ids[k] = true
	}
	if len(ids) < 2 {
		t.Errorf("projected clustering unexpectedly merged all shifted genes: %v", assign)
	}
}

func TestEveryGeneAssignedOnce(t *testing.T) {
	m, _, _ := twoProjectedClusters(t)
	clusters, assign, err := Mine(m, Params{K: 3, AvgDims: 2, MaxIter: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != m.Rows() {
		t.Fatalf("assignment length %d", len(assign))
	}
	// Hard partition: cluster gene lists are disjoint (the paper's "each
	// gene in one cluster only" criticism).
	seen := map[int]bool{}
	for _, cl := range clusters {
		for _, g := range cl.Genes {
			if seen[g] {
				t.Fatalf("gene %d in two clusters", g)
			}
			seen[g] = true
		}
	}
}

func TestMineValidation(t *testing.T) {
	m := matrix.New(5, 4)
	if _, _, err := Mine(m, Params{K: 0, AvgDims: 2}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, _, err := Mine(m, Params{K: 2, AvgDims: 1}); err == nil {
		t.Error("AvgDims=1 accepted")
	}
	if _, _, err := Mine(m, Params{K: 9, AvgDims: 2}); err == nil {
		t.Error("K>genes accepted")
	}
}

func purity(assign []int, group []int) float64 {
	counts := map[int]int{}
	for _, g := range group {
		counts[assign[g]]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(len(group))
}
