package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one point-in-time snapshot of the Go runtime.
type Sample struct {
	TakenAt        time.Time
	Goroutines     int
	HeapAllocBytes uint64
	HeapSysBytes   uint64
	NumGC          uint32
	GCPauseTotal   time.Duration
}

// RuntimeSampler periodically snapshots the runtime (goroutine count, heap
// usage, cumulative GC pause) so gauges and logs can report it without every
// reader paying for runtime.ReadMemStats. A nil sampler is a valid no-op
// whose Latest returns the zero Sample.
type RuntimeSampler struct {
	interval time.Duration
	log      *Logger // optional: one info line per sample

	latest atomic.Pointer[Sample]

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// NewRuntimeSampler returns a sampler on the given cadence (minimum 1s; zero
// or negative selects 10s) that takes an immediate first sample so Latest is
// never empty. log, when non-nil, receives one line per sample.
func NewRuntimeSampler(interval time.Duration, log *Logger) *RuntimeSampler {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if interval < time.Second {
		interval = time.Second
	}
	rs := &RuntimeSampler{interval: interval, log: log}
	rs.sample()
	return rs
}

// Start launches the sampling loop; Stop ends it. Starting twice is a no-op.
func (rs *RuntimeSampler) Start() {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.stop != nil {
		return
	}
	rs.stop = make(chan struct{})
	rs.stopped = make(chan struct{})
	go rs.loop(rs.stop, rs.stopped)
}

// Stop halts the sampling loop and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (rs *RuntimeSampler) Stop() {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	stop, stopped := rs.stop, rs.stopped
	rs.stop, rs.stopped = nil, nil
	rs.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-stopped
}

// Latest returns the most recent sample.
func (rs *RuntimeSampler) Latest() Sample {
	if rs == nil {
		return Sample{}
	}
	if s := rs.latest.Load(); s != nil {
		return *s
	}
	return Sample{}
}

func (rs *RuntimeSampler) loop(stop <-chan struct{}, stopped chan<- struct{}) {
	defer close(stopped)
	t := time.NewTicker(rs.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rs.sample()
		case <-stop:
			return
		}
	}
}

func (rs *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &Sample{
		TakenAt:        time.Now(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotal:   time.Duration(ms.PauseTotalNs),
	}
	rs.latest.Store(s)
	rs.log.Info("runtime sample",
		"goroutines", s.Goroutines,
		"heap_alloc_bytes", s.HeapAllocBytes,
		"gc_count", s.NumGC,
		"gc_pause_ms", s.GCPauseTotal.Milliseconds(),
	)
}
