package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLogLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, FormatJSON).With("job", "job-000001")
	l.Info("job settled", "status", "done", "clusters", 12, "ok", true)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON object per line: %q: %v", buf.String(), err)
	}
	if rec["level"] != "info" || rec["msg"] != "job settled" {
		t.Fatalf("bad envelope: %v", rec)
	}
	if rec["job"] != "job-000001" || rec["status"] != "done" || rec["clusters"] != float64(12) || rec["ok"] != true {
		t.Fatalf("fields lost: %v", rec)
	}
	if _, ok := rec["ts"].(string); !ok {
		t.Fatalf("no timestamp: %v", rec)
	}
}

func TestTextLogLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, FormatText)
	l.Warn("slow job", "job", "job-000002", "queue_ms", 1500, "note", "two words")
	line := buf.String()
	for _, want := range []string{"WARN", "slow job", "job=job-000002", "queue_ms=1500", `note="two words"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestFuncLoggerAndWith(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	l := NewFuncLogger(func(line string) {
		mu.Lock()
		lines = append(lines, line)
		mu.Unlock()
	}, FormatText)
	base := l.With("req", "r000001")
	base.Info("http request", "status", 200)
	l.Error("unrelated") // parent unchanged by With
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "req=r000001") || !strings.Contains(lines[0], "status=200") {
		t.Fatalf("bound fields missing: %q", lines[0])
	}
	if strings.Contains(lines[1], "req=") {
		t.Fatalf("With leaked into parent: %q", lines[1])
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Fatalf("json: %v %v", f, err)
	}
	if f, err := ParseFormat("TEXT"); err != nil || f != FormatText {
		t.Fatalf("text: %v %v", f, err)
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("yaml accepted")
	}
}

func TestPrintfBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, FormatText)
	l.Printf("service: journal %s for %s: %v", "done", "job-000003", "disk full")
	if !strings.Contains(buf.String(), "journal done for job-000003: disk full") {
		t.Fatalf("printf bridge mangled the message: %q", buf.String())
	}
}

func TestMalformedPairsVisible(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, FormatText)
	l.Info("oops", "dangling")
	if !strings.Contains(buf.String(), "!dangling=dangling") {
		t.Fatalf("dangling key dropped silently: %q", buf.String())
	}
}

func TestRuntimeSampler(t *testing.T) {
	rs := NewRuntimeSampler(time.Second, nil)
	s := rs.Latest()
	if s.Goroutines <= 0 || s.TakenAt.IsZero() {
		t.Fatalf("first sample not taken: %+v", s)
	}
	rs.Start()
	rs.Start() // idempotent
	rs.Stop()
	rs.Stop() // idempotent
}
