package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Format selects the rendering of one log line.
type Format int

const (
	// FormatText renders "ts LEVEL msg key=val ..." — for humans.
	FormatText Format = iota
	// FormatJSON renders one JSON object per line — for collectors.
	FormatJSON
)

// ParseFormat maps a flag value ("text" or "json") to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("obs: unknown log format %q (want text or json)", s)
}

// Logger emits structured log lines with bound context fields. A nil *Logger
// is a valid no-op. Loggers derived with With share the parent's sink, so
// one mutex serializes the whole family's output.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer         // nil when emit is set
	emit   func(line string) // alternative sink (legacy Logf adapters, tests)
	format Format
	fields []Field
	now    func() time.Time
}

// Field is one bound key/value pair.
type Field struct {
	Key   string
	Value any
}

// NewLogger returns a Logger writing one line per record to w.
func NewLogger(w io.Writer, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, format: format, now: time.Now}
}

// NewFuncLogger returns a Logger delivering each rendered line (without a
// trailing newline) to emit — the adapter for printf-style sinks.
func NewFuncLogger(emit func(line string), format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, emit: emit, format: format, now: time.Now}
}

// With returns a derived Logger with extra bound fields, given as
// alternating key, value pairs. The receiver is unchanged.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.fields = append(append([]Field(nil), l.fields...), pairs(kv)...)
	return &d
}

// Info logs at level info with optional alternating key, value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Warn logs at level warn.
func (l *Logger) Warn(msg string, kv ...any) { l.log("warn", msg, kv) }

// Error logs at level error.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

// Printf logs a preformatted message at level info — the bridge for legacy
// log.Printf call sites.
func (l *Logger) Printf(format string, args ...any) {
	l.log("info", fmt.Sprintf(format, args...), nil)
}

// pairs folds alternating key/value arguments into fields. A trailing key
// without a value, or a non-string key, is kept under a synthetic key rather
// than dropped: a malformed call site should be visible in the output, not
// silently lossy.
func pairs(kv []any) []Field {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Field, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("!badkey-%v", kv[i])
		}
		if i+1 < len(kv) {
			out = append(out, Field{Key: key, Value: kv[i+1]})
		} else {
			out = append(out, Field{Key: "!dangling", Value: key})
		}
	}
	return out
}

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil {
		return
	}
	ts := l.now().UTC()
	var line string
	if l.format == FormatJSON {
		line = renderJSON(ts, level, msg, l.fields, pairs(kv))
	} else {
		line = renderText(ts, level, msg, l.fields, pairs(kv))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.emit != nil {
		l.emit(line)
		return
	}
	io.WriteString(l.w, line+"\n")
}

func renderJSON(ts time.Time, level, msg string, bound, extra []Field) string {
	var b strings.Builder
	b.WriteString(`{"ts":`)
	b.WriteString(jsonQuote(ts.Format(time.RFC3339Nano)))
	b.WriteString(`,"level":`)
	b.WriteString(jsonQuote(level))
	b.WriteString(`,"msg":`)
	b.WriteString(jsonQuote(msg))
	for _, f := range bound {
		writeJSONField(&b, f)
	}
	for _, f := range extra {
		writeJSONField(&b, f)
	}
	b.WriteByte('}')
	return b.String()
}

func writeJSONField(b *strings.Builder, f Field) {
	b.WriteByte(',')
	b.WriteString(jsonQuote(f.Key))
	b.WriteByte(':')
	raw, err := json.Marshal(f.Value)
	if err != nil {
		raw, _ = json.Marshal(fmt.Sprintf("%v", f.Value))
	}
	b.Write(raw)
}

// jsonQuote JSON-quotes a string (the only scalar we hand-render).
func jsonQuote(s string) string {
	raw, _ := json.Marshal(s)
	return string(raw)
}

func renderText(ts time.Time, level, msg string, bound, extra []Field) string {
	var b strings.Builder
	b.WriteString(ts.Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(strings.ToUpper(level))
	b.WriteByte(' ')
	b.WriteString(msg)
	for _, f := range bound {
		writeTextField(&b, f)
	}
	for _, f := range extra {
		writeTextField(&b, f)
	}
	return b.String()
}

func writeTextField(b *strings.Builder, f Field) {
	b.WriteByte(' ')
	b.WriteString(f.Key)
	b.WriteByte('=')
	v := fmt.Sprintf("%v", f.Value)
	if strings.ContainsAny(v, " \t\n\"") {
		v = jsonQuote(v)
	}
	b.WriteString(v)
}
