// Package obs is the zero-dependency observability layer of the repo:
// nestable span tracing (Tracer/Span), structured JSON/text logging
// (Logger), and a periodic runtime sampler (RuntimeSampler).
//
// Everything is nil-safe by design: a nil *Tracer, *Span, or *Logger is a
// valid no-op whose methods return immediately without allocating, so hot
// paths can be instrumented unconditionally and pay only a nil check when
// observability is off. The zero-allocation guarantee of the disabled path
// is pinned by tests (TestNoopSpanZeroAlloc) and by the mining benchmark
// harness, which runs with tracing disabled.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Tracer owns one trace: a forest of timed spans. A nil *Tracer is a valid
// no-op tracer — Start returns a nil *Span and Tree returns nil.
type Tracer struct {
	base time.Time

	mu    sync.Mutex
	roots []*Span
}

// New returns an empty Tracer whose span timestamps are reported relative to
// the moment of this call.
func New() *Tracer { return &Tracer{base: time.Now()} }

// Start opens a new root span. Safe for concurrent use.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Tree snapshots the current span forest as serializable nodes. Spans still
// open are included with Done=false and a duration measured up to now, so a
// live trace renders meaningfully mid-run.
func (t *Tracer) Tree() []*Node {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	now := time.Now()
	out := make([]*Node, len(roots))
	for i, s := range roots {
		out[i] = s.node(t.base, now)
	}
	return out
}

// Span is one timed region of a trace, with string attributes, accumulating
// int64 counters, and child spans. All methods are safe for concurrent use
// and are no-ops on a nil receiver, allocating nothing.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	ended    bool
	end      time.Time
	attrs    []Attr
	counters []Counter
	children []*Span
}

// Attr is one key/value annotation of a span.
type Attr struct {
	Key, Value string
}

// Counter is one accumulating span counter.
type Counter struct {
	Key   string
	Value int64
}

// Start opens a child span. Children may be opened concurrently from several
// goroutines (the parallel miner does), and may even be added after the
// parent ended (a stream replay outliving its job).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Only the first End sticks.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr records a string attribute; a repeated key overwrites.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt records an integer attribute (rendered as its decimal string).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Add accumulates delta into the named counter.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counters {
		if s.counters[i].Key == key {
			s.counters[i].Value += delta
			return
		}
	}
	s.counters = append(s.counters, Counter{Key: key, Value: delta})
}

// Node is the serializable (JSON) form of one span at snapshot time. Offsets
// and durations are microseconds; StartUS is relative to the tracer's birth.
type Node struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Done     bool              `json:"done"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// node renders the span (and, recursively, its children) against the trace
// base time; open spans are measured up to `now`.
func (s *Span) node(base, now time.Time) *Node {
	s.mu.Lock()
	end := s.end
	done := s.ended
	if !done {
		end = now
	}
	n := &Node{
		Name:    s.name,
		StartUS: s.start.Sub(base).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Done:    done,
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	if len(s.counters) > 0 {
		n.Counters = make(map[string]int64, len(s.counters))
		for _, c := range s.counters {
			n.Counters[c.Key] = c.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.node(base, now))
	}
	return n
}

// RenderTree renders a span forest as an indented text tree, one span per
// line: name, duration, attrs, counters. Deterministic (keys sorted).
func RenderTree(nodes []*Node) string {
	var b strings.Builder
	for _, n := range nodes {
		renderNode(&b, n, 0)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", n.Name, time.Duration(n.DurUS)*time.Microsecond)
	if !n.Done {
		b.WriteString(" (open)")
	}
	for _, k := range sortedKeys(n.Attrs) {
		fmt.Fprintf(b, " %s=%s", k, n.Attrs[k])
	}
	for _, k := range sortedKeys(n.Counters) {
		fmt.Fprintf(b, " %s=%d", k, n.Counters[k])
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
