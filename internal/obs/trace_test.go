package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNesting: the tree mirrors the Start nesting, with attrs, counters
// and durations in place.
func TestSpanNesting(t *testing.T) {
	tr := New()
	root := tr.Start("job")
	root.SetAttr("job", "job-000001")
	q := root.Start("queue")
	time.Sleep(time.Millisecond)
	q.End()
	a := root.Start("attempt")
	a.SetInt("attempt", 0)
	s1 := a.Start("subtree")
	s1.Add("nodes", 10)
	s1.Add("nodes", 5)
	s1.End()
	a.End()
	root.End()

	tree := tr.Tree()
	if len(tree) != 1 {
		t.Fatalf("got %d roots, want 1", len(tree))
	}
	r := tree[0]
	if r.Name != "job" || !r.Done || r.Attrs["job"] != "job-000001" {
		t.Fatalf("bad root: %+v", r)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "queue" || r.Children[1].Name != "attempt" {
		t.Fatalf("bad children: %+v", r.Children)
	}
	att := r.Children[1]
	if att.Attrs["attempt"] != "0" {
		t.Fatalf("SetInt attr lost: %+v", att.Attrs)
	}
	if len(att.Children) != 1 || att.Children[0].Counters["nodes"] != 15 {
		t.Fatalf("counter did not accumulate: %+v", att.Children)
	}
	if q := r.Children[0]; q.DurUS <= 0 {
		t.Fatalf("queue span has no duration: %+v", q)
	}
	if r.DurUS < att.DurUS {
		t.Fatalf("root (%dus) shorter than child (%dus)", r.DurUS, att.DurUS)
	}
}

// TestOpenSpansRender: a snapshot taken mid-run includes unfinished spans
// with Done=false and a live duration.
func TestOpenSpansRender(t *testing.T) {
	tr := New()
	root := tr.Start("job")
	root.Start("queue") // never ended
	time.Sleep(time.Millisecond)
	tree := tr.Tree()
	if tree[0].Done {
		t.Fatal("open root reported done")
	}
	if c := tree[0].Children[0]; c.Done || c.DurUS <= 0 {
		t.Fatalf("open child: %+v", c)
	}
}

// TestConcurrentChildren: children may be opened from many goroutines — the
// parallel miner's per-subtree spans do exactly this.
func TestConcurrentChildren(t *testing.T) {
	tr := New()
	root := tr.Start("mine")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				s := root.Start("subtree")
				s.SetInt("cond", int64(i))
				s.Add("nodes", 1)
				s.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if n := len(tr.Tree()[0].Children); n != 16*50 {
		t.Fatalf("got %d children, want %d", n, 16*50)
	}
}

// TestNilSafety: every operation on nil receivers is a no-op.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	c := sp.Start("y")
	c.SetAttr("k", "v")
	c.SetInt("i", 1)
	c.Add("n", 2)
	c.End()
	if tr.Tree() != nil {
		t.Fatal("nil tracer returned a tree")
	}
	var l *Logger
	l.Info("nope")
	l.With("k", "v").Error("nope")
	var rs *RuntimeSampler
	rs.Start()
	rs.Stop()
	if g := rs.Latest().Goroutines; g != 0 {
		t.Fatalf("nil sampler sampled: %d", g)
	}
}

// TestNoopSpanZeroAlloc pins the contract the mining hot path depends on:
// with tracing off (nil spans), instrumentation allocates nothing.
func TestNoopSpanZeroAlloc(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Start("subtree")
		c.SetInt("cond", 3)
		c.Add("nodes", 17)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op span ops allocate %.1f allocs/op, want 0", allocs)
	}
}

func TestRenderTree(t *testing.T) {
	tr := New()
	root := tr.Start("job")
	s := root.Start("subtree")
	s.SetInt("cond", 2)
	s.Add("nodes", 7)
	s.End()
	root.End()
	out := RenderTree(tr.Tree())
	if !strings.Contains(out, "job ") || !strings.Contains(out, "  subtree ") {
		t.Fatalf("bad render:\n%s", out)
	}
	if !strings.Contains(out, "cond=2") || !strings.Contains(out, "nodes=7") {
		t.Fatalf("attrs/counters missing:\n%s", out)
	}
}

// TestTreeJSONRoundTrip: the Node form is the wire schema of
// GET /jobs/{id}/trace; it must survive JSON.
func TestTreeJSONRoundTrip(t *testing.T) {
	tr := New()
	root := tr.Start("job")
	root.Start("queue").End()
	root.End()
	raw, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	var back []*Node
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "job" || len(back[0].Children) != 1 {
		t.Fatalf("round trip lost structure: %s", raw)
	}
}
