package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Annotation file format: a simplified GAF-style TSV with one line per
// (gene, term) association —
//
//	geneName <TAB> termID <TAB> termName <TAB> namespace
//
// where namespace is one of P/F/C (or the full words process/function/
// component, any case). Lines starting with '!' or '#' and blank lines are
// skipped, matching GAF conventions.

// ReadAnnotations parses an annotation file against a fixed gene-name
// universe (name → index). Associations for unknown genes are counted and
// skipped, not an error (real GAF files cover more genes than any one
// expression panel).
func ReadAnnotations(r io.Reader, geneIndex map[string]int, population int) (*GO, int, error) {
	corpus := NewGO(population)
	type termAcc struct {
		name  string
		ns    Namespace
		genes []int
	}
	terms := map[string]*termAcc{}
	var order []string
	skipped := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 4 {
			return nil, 0, fmt.Errorf("ontology: line %d: need gene, termID, termName, namespace", lineNo)
		}
		ns, err := parseNamespace(fields[3])
		if err != nil {
			return nil, 0, fmt.Errorf("ontology: line %d: %v", lineNo, err)
		}
		g, ok := geneIndex[fields[0]]
		if !ok {
			skipped++
			continue
		}
		id := fields[1]
		acc, ok := terms[id]
		if !ok {
			acc = &termAcc{name: fields[2], ns: ns}
			terms[id] = acc
			order = append(order, id)
		}
		acc.genes = append(acc.genes, g)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("ontology: read: %v", err)
	}
	sort.Strings(order)
	for _, id := range order {
		acc := terms[id]
		corpus.AddTerm(id, acc.name, acc.ns, acc.genes)
	}
	return corpus, skipped, nil
}

// WriteAnnotations emits the corpus in the format ReadAnnotations accepts,
// using the provided gene names (indexed by gene id).
func (g *GO) WriteAnnotations(w io.Writer, geneNames []string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "! simplified GAF: gene\ttermID\ttermName\tnamespace")
	for _, t := range g.terms {
		for _, gene := range t.Genes() {
			if gene >= len(geneNames) {
				return fmt.Errorf("ontology: gene %d has no name (have %d names)", gene, len(geneNames))
			}
			fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n", geneNames[gene], t.ID, t.Name, nsCode(t.Namespace))
		}
	}
	return bw.Flush()
}

func parseNamespace(s string) (Namespace, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "p", "process", "biological_process":
		return Process, nil
	case "f", "function", "molecular_function":
		return Function, nil
	case "c", "component", "cellular_component":
		return Component, nil
	}
	return 0, fmt.Errorf("unknown namespace %q", s)
}

func nsCode(ns Namespace) string {
	switch ns {
	case Process:
		return "P"
	case Function:
		return "F"
	case Component:
		return "C"
	}
	return "?"
}
