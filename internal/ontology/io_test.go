package ontology

import (
	"strings"
	"testing"
)

func sampleIndex() map[string]int {
	return map[string]int{"YAL001C": 0, "YAL002W": 1, "YAL003W": 2}
}

func TestReadAnnotations(t *testing.T) {
	in := `! header comment
YAL001C	GO:0006260	DNA replication	P
YAL002W	GO:0006260	DNA replication	process
YAL003W	GO:0003887	DNA-directed DNA polymerase activity	F
UNKNOWN	GO:0006260	DNA replication	P

# another comment
YAL001C	GO:0005657	replication fork	C
`
	corpus, skipped, err := ReadAnnotations(strings.NewReader(in), sampleIndex(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the UNKNOWN gene)", skipped)
	}
	terms := corpus.Terms()
	if len(terms) != 3 {
		t.Fatalf("%d terms", len(terms))
	}
	// Terms are sorted by id: GO:0003887, GO:0005657, GO:0006260.
	if terms[0].ID != "GO:0003887" || terms[0].Namespace != Function {
		t.Errorf("term 0: %+v", terms[0])
	}
	if terms[2].Size() != 2 {
		t.Errorf("DNA replication should annotate 2 known genes, got %d", terms[2].Size())
	}
	// Enrichment works end-to-end on the parsed corpus.
	es := corpus.TermFinder([]int{0, 1}, Process)
	if len(es) != 1 || es[0].Overlap != 2 {
		t.Fatalf("enrichment on parsed corpus: %+v", es)
	}
}

func TestReadAnnotationsErrors(t *testing.T) {
	idx := sampleIndex()
	if _, _, err := ReadAnnotations(strings.NewReader("YAL001C\tGO:1\n"), idx, 3); err == nil {
		t.Error("short line accepted")
	}
	if _, _, err := ReadAnnotations(strings.NewReader("YAL001C\tGO:1\tx\tweird\n"), idx, 3); err == nil {
		t.Error("bad namespace accepted")
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	g := NewGO(3)
	g.AddTerm("GO:0000001", "alpha process", Process, []int{0, 2})
	g.AddTerm("GO:0000002", "beta function", Function, []int{1})
	names := []string{"YAL001C", "YAL002W", "YAL003W"}
	var sb strings.Builder
	if err := g.WriteAnnotations(&sb, names); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadAnnotations(strings.NewReader(sb.String()), sampleIndex(), 3)
	if err != nil || skipped != 0 {
		t.Fatalf("round trip: %v skipped=%d", err, skipped)
	}
	if len(back.Terms()) != 2 {
		t.Fatalf("%d terms after round trip", len(back.Terms()))
	}
	for i, want := range []struct {
		id   string
		size int
	}{{"GO:0000001", 2}, {"GO:0000002", 1}} {
		if back.Terms()[i].ID != want.id || back.Terms()[i].Size() != want.size {
			t.Errorf("term %d: %+v", i, back.Terms()[i])
		}
	}
}

func TestWriteAnnotationsMissingName(t *testing.T) {
	g := NewGO(3)
	g.AddTerm("GO:1", "x", Process, []int{2})
	var sb strings.Builder
	if err := g.WriteAnnotations(&sb, []string{"only-one"}); err == nil {
		t.Error("missing gene name accepted")
	}
}
