package ontology

import (
	"math"
	"sort"
)

// Enrichment is one term's score for a query gene set.
type Enrichment struct {
	Term *Term
	// Overlap is the number of query genes annotated with the term.
	Overlap int
	// Query is the query set size, after restriction to the population.
	Query int
	// PValue is the one-sided hypergeometric tail P(X >= Overlap).
	PValue float64
}

// TermFinder scores every term of the given namespace against the query gene
// set and returns the enrichments sorted by ascending p-value (ties broken by
// larger overlap, then term id). Terms with zero overlap are omitted. This is
// the computation of the yeast genome GO Term Finder used for Table 2.
func (g *GO) TermFinder(genes []int, ns Namespace) []Enrichment {
	query := dedupInts(append([]int(nil), genes...))
	n := len(query)
	var out []Enrichment
	for _, t := range g.terms {
		if t.Namespace != ns {
			continue
		}
		x := 0
		for _, gene := range query {
			if t.genes[gene] {
				x++
			}
		}
		if x == 0 {
			continue
		}
		p := HypergeomTail(g.population, t.Size(), n, x)
		out = append(out, Enrichment{Term: t, Overlap: x, Query: n, PValue: p})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PValue != out[b].PValue {
			return out[a].PValue < out[b].PValue
		}
		if out[a].Overlap != out[b].Overlap {
			return out[a].Overlap > out[b].Overlap
		}
		return out[a].Term.ID < out[b].Term.ID
	})
	return out
}

// TopTerms returns the single most enriched term per namespace, in Table 2
// column order. Namespaces with no overlapping term are omitted from the map.
func (g *GO) TopTerms(genes []int) map[Namespace]Enrichment {
	out := make(map[Namespace]Enrichment, numNamespaces)
	for _, ns := range Namespaces() {
		if es := g.TermFinder(genes, ns); len(es) > 0 {
			out[ns] = es[0]
		}
	}
	return out
}

// HypergeomTail returns P(X >= x) for X ~ Hypergeometric(N, K, n): drawing n
// genes from a population of N of which K are annotated. Computed in log
// space for numerical stability at the extreme p-values of Table 2.
func HypergeomTail(N, K, n, x int) float64 {
	if x <= 0 {
		return 1
	}
	if K < 0 || n < 0 || N <= 0 || K > N || n > N {
		return math.NaN()
	}
	hi := n
	if K < hi {
		hi = K
	}
	if x > hi {
		return 0
	}
	// Accumulate sum of exp(logPMF(i)) scaled by the max term.
	logs := make([]float64, 0, hi-x+1)
	maxLog := math.Inf(-1)
	for i := x; i <= hi; i++ {
		if n-i > N-K {
			continue // impossible draw
		}
		l := lchoose(K, i) + lchoose(N-K, n-i) - lchoose(N, n)
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
	}
	if len(logs) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	p := math.Exp(maxLog) * sum
	if p > 1 {
		p = 1
	}
	return p
}

// LogHypergeomTail returns ln P(X >= x), usable when the p-value underflows
// float64 (below ~1e-308).
func LogHypergeomTail(N, K, n, x int) float64 {
	if x <= 0 {
		return 0
	}
	hi := n
	if K < hi {
		hi = K
	}
	if x > hi {
		return math.Inf(-1)
	}
	maxLog := math.Inf(-1)
	var logs []float64
	for i := x; i <= hi; i++ {
		if n-i > N-K {
			continue
		}
		l := lchoose(K, i) + lchoose(N-K, n-i) - lchoose(N, n)
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
	}
	if len(logs) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	out := maxLog + math.Log(sum)
	if out > 0 {
		out = 0
	}
	return out
}

// lchoose returns ln C(n, k).
func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
