// Package ontology is the Gene Ontology substrate for the Table 2
// experiment.
//
// The paper scores discovered biclusters with the yeast genome GO Term
// Finder, reporting the most enriched biological process, molecular function
// and cellular component terms with hypergeometric p-values. That web service
// is unavailable offline, so Synthesize builds a synthetic GO whose term
// annotations are correlated with the planted co-regulation modules of the
// substitute dataset; TermFinder then performs the identical computation the
// real service does — a hypergeometric (one-sided Fisher) tail test per term.
package ontology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Namespace is one of the three GO namespaces of Table 2.
type Namespace int

const (
	Process   Namespace = iota // biological process
	Function                   // molecular function
	Component                  // cellular component
	numNamespaces
)

// String returns the Table 2 column heading for the namespace.
func (n Namespace) String() string {
	switch n {
	case Process:
		return "Process"
	case Function:
		return "Function"
	case Component:
		return "Cellular Component"
	}
	return fmt.Sprintf("Namespace(%d)", int(n))
}

// Namespaces lists the three namespaces in Table 2 order.
func Namespaces() []Namespace { return []Namespace{Process, Function, Component} }

// Term is one GO term with its annotated gene set.
type Term struct {
	ID        string
	Name      string
	Namespace Namespace
	genes     map[int]bool
}

// Genes returns the annotated gene ids in ascending order.
func (t *Term) Genes() []int {
	out := make([]int, 0, len(t.genes))
	for g := range t.genes {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of annotated genes.
func (t *Term) Size() int { return len(t.genes) }

// Annotates reports whether gene g carries the term.
func (t *Term) Annotates(g int) bool { return t.genes[g] }

// GO is an annotation corpus over a fixed gene population.
type GO struct {
	population int
	terms      []*Term
}

// NewGO returns an empty corpus over a population of n genes.
func NewGO(n int) *GO { return &GO{population: n} }

// Population returns the number of genes in the corpus population.
func (g *GO) Population() int { return g.population }

// Terms returns all terms (shared slices; treat as read-only).
func (g *GO) Terms() []*Term { return g.terms }

// AddTerm registers a term annotating the given genes.
func (g *GO) AddTerm(id, name string, ns Namespace, genes []int) *Term {
	t := &Term{ID: id, Name: name, Namespace: ns, genes: make(map[int]bool, len(genes))}
	for _, gene := range genes {
		if gene < 0 || gene >= g.population {
			panic(fmt.Sprintf("ontology: gene %d outside population %d", gene, g.population))
		}
		t.genes[gene] = true
	}
	g.terms = append(g.terms, t)
	return t
}

// moduleTermNames seeds the synthetic term names with the real GO terms the
// paper reports in Table 2, then falls back to systematic names.
var moduleTermNames = [numNamespaces][]string{
	Process: {
		"DNA replication", "protein biosynthesis",
		"cytoplasm organization and biogenesis", "response to stress",
		"cell cycle", "ribosome biogenesis",
	},
	Function: {
		"DNA-directed DNA polymerase activity",
		"structural constituent of ribosome", "helicase activity",
		"oxidoreductase activity", "kinase activity", "RNA binding",
	},
	Component: {
		"replication fork", "cytosolic ribosome",
		"ribonucleoprotein complex", "mitochondrion", "nucleolus",
		"spindle pole body",
	},
}

// Synthesize builds a GO corpus over nGenes genes that is correlated with the
// given gene modules: for every module and namespace, one term annotates each
// module gene with probability hitRate plus background genes at a low base
// rate, so genuinely co-regulated clusters obtain Table-2-style extreme
// p-values while random gene sets do not. Additional uncorrelated decoy terms
// are added per namespace.
func Synthesize(nGenes int, modules [][]int, seed int64) *GO {
	const (
		hitRate  = 0.85
		baseRate = 0.01
		decoys   = 8
	)
	rng := rand.New(rand.NewSource(seed))
	corpus := NewGO(nGenes)
	for k, module := range modules {
		for _, ns := range Namespaces() {
			var genes []int
			for _, g := range module {
				if rng.Float64() < hitRate {
					genes = append(genes, g)
				}
			}
			for g := 0; g < nGenes; g++ {
				if rng.Float64() < baseRate {
					genes = append(genes, g)
				}
			}
			corpus.AddTerm(
				fmt.Sprintf("GO:%07d", 1000*k+int(ns)),
				termName(ns, k), ns, dedupInts(genes))
		}
	}
	// Decoy terms annotate random slices of the population.
	for d := 0; d < decoys; d++ {
		for _, ns := range Namespaces() {
			size := 20 + rng.Intn(200)
			genes := rng.Perm(nGenes)
			corpus.AddTerm(
				fmt.Sprintf("GO:9%06d", 1000*d+int(ns)),
				fmt.Sprintf("decoy %s term %d", ns, d), ns, genes[:min(size, nGenes)])
		}
	}
	return corpus
}

func termName(ns Namespace, k int) string {
	names := moduleTermNames[ns]
	if k < len(names) {
		return names[k]
	}
	return fmt.Sprintf("%s module term %d", ns, k)
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	prev := -1
	for _, x := range xs {
		if x != prev {
			out = append(out, x)
			prev = x
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
