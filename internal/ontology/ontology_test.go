package ontology

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLchoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {52, 5, 2598960},
	}
	for _, tc := range cases {
		got := math.Exp(lchoose(tc.n, tc.k))
		if !almost(got, tc.want, tc.want*1e-9) {
			t.Errorf("C(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
	if !math.IsInf(lchoose(3, 5), -1) || !math.IsInf(lchoose(3, -1), -1) {
		t.Error("out-of-range lchoose should be -Inf")
	}
}

// TestHypergeomExact checks small cases against exactly enumerable values.
func TestHypergeomExact(t *testing.T) {
	// Urn: N=10, K=4 annotated, draw n=3. P(X>=1) = 1 - C(6,3)/C(10,3)
	//   = 1 - 20/120 = 5/6.
	if got := HypergeomTail(10, 4, 3, 1); !almost(got, 5.0/6, 1e-12) {
		t.Errorf("P(X>=1) = %v, want 5/6", got)
	}
	// P(X>=3) = C(4,3)*C(6,0)/C(10,3) = 4/120.
	if got := HypergeomTail(10, 4, 3, 3); !almost(got, 4.0/120, 1e-12) {
		t.Errorf("P(X>=3) = %v, want 1/30", got)
	}
	// Boundary behaviour.
	if HypergeomTail(10, 4, 3, 0) != 1 {
		t.Error("P(X>=0) must be 1")
	}
	if HypergeomTail(10, 4, 3, 4) != 0 {
		t.Error("P(X>=4) with n=3 must be 0")
	}
	if !math.IsNaN(HypergeomTail(10, 20, 3, 1)) {
		t.Error("K > N must be NaN")
	}
}

// TestHypergeomMonotone: the tail must be non-increasing in x and sum
// consistency must hold: P(X>=x) = sum of PMF over the support.
func TestHypergeomMonotone(t *testing.T) {
	N, K, n := 500, 60, 40
	prev := 1.0
	for x := 0; x <= n; x++ {
		p := HypergeomTail(N, K, n, x)
		if p > prev+1e-12 {
			t.Fatalf("tail increased at x=%d: %v > %v", x, p, prev)
		}
		prev = p
	}
}

func TestLogHypergeomTailConsistency(t *testing.T) {
	N, K, n := 2884, 120, 21
	for x := 1; x <= 21; x++ {
		p := HypergeomTail(N, K, n, x)
		lp := LogHypergeomTail(N, K, n, x)
		if p > 0 {
			if !almost(math.Log(p), lp, 1e-9*math.Abs(lp)+1e-12) {
				t.Errorf("x=%d: log(%v)=%v vs %v", x, p, math.Log(p), lp)
			}
		}
	}
	if LogHypergeomTail(10, 4, 3, 0) != 0 {
		t.Error("ln P(X>=0) must be 0")
	}
	if !math.IsInf(LogHypergeomTail(10, 4, 3, 4), -1) {
		t.Error("impossible overlap must give -Inf")
	}
}

func TestTermFinderRanksPlantedTermFirst(t *testing.T) {
	// 1000 genes; module = genes 0..19 fully annotated by "planted";
	// a decoy annotates 200 random genes.
	g := NewGO(1000)
	module := make([]int, 20)
	for i := range module {
		module[i] = i
	}
	g.AddTerm("GO:0000001", "planted", Process, module)
	rng := rand.New(rand.NewSource(1))
	g.AddTerm("GO:0000002", "decoy", Process, rng.Perm(1000)[:200])

	es := g.TermFinder(module, Process)
	if len(es) == 0 || es[0].Term.Name != "planted" {
		t.Fatalf("planted term not ranked first: %+v", es)
	}
	if es[0].Overlap != 20 {
		t.Errorf("overlap = %d, want 20", es[0].Overlap)
	}
	// A perfect 20/20 overlap out of 20 annotated in 1000 is astronomically
	// significant.
	if es[0].PValue > 1e-20 {
		t.Errorf("p-value = %v, want < 1e-20", es[0].PValue)
	}
}

func TestTermFinderOmitsZeroOverlap(t *testing.T) {
	g := NewGO(100)
	g.AddTerm("GO:1", "far away", Function, []int{90, 91, 92})
	if es := g.TermFinder([]int{1, 2, 3}, Function); len(es) != 0 {
		t.Fatalf("zero-overlap term reported: %+v", es)
	}
}

func TestTermFinderNamespaceIsolation(t *testing.T) {
	g := NewGO(100)
	g.AddTerm("GO:1", "proc", Process, []int{1, 2, 3})
	g.AddTerm("GO:2", "func", Function, []int{1, 2, 3})
	if es := g.TermFinder([]int{1, 2, 3}, Component); len(es) != 0 {
		t.Fatal("component query must not see other namespaces")
	}
	if es := g.TermFinder([]int{1, 2, 3}, Process); len(es) != 1 || es[0].Term.Name != "proc" {
		t.Fatalf("process query wrong: %+v", es)
	}
}

func TestSynthesizeCorrelatesWithModules(t *testing.T) {
	modules := [][]int{
		rangeInts(0, 25),
		rangeInts(100, 130),
	}
	g := Synthesize(2884, modules, 7)
	if g.Population() != 2884 {
		t.Fatalf("population %d", g.Population())
	}
	// Every namespace must give the planted module an extreme p-value.
	top := g.TopTerms(modules[0])
	for _, ns := range Namespaces() {
		e, ok := top[ns]
		if !ok {
			t.Fatalf("no %v term for module 0", ns)
		}
		if e.PValue > 1e-6 {
			t.Errorf("%v top p-value %v for planted module, want extreme", ns, e.PValue)
		}
	}
	// The first module's Process term carries the paper's Table 2 name.
	if es := g.TermFinder(modules[0], Process); es[0].Term.Name != "DNA replication" {
		t.Errorf("module 0 process term = %q", es[0].Term.Name)
	}
	// A random gene set must NOT look enriched.
	rng := rand.New(rand.NewSource(3))
	random := rng.Perm(2884)[:25]
	if es := g.TermFinder(random, Process); len(es) > 0 && es[0].PValue < 1e-6 {
		t.Errorf("random set scored p=%v — annotations leak", es[0].PValue)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	modules := [][]int{rangeInts(0, 20)}
	a := Synthesize(500, modules, 42)
	b := Synthesize(500, modules, 42)
	if len(a.Terms()) != len(b.Terms()) {
		t.Fatal("term counts differ")
	}
	for i := range a.Terms() {
		ta, tb := a.Terms()[i], b.Terms()[i]
		if ta.ID != tb.ID || ta.Size() != tb.Size() {
			t.Fatalf("term %d differs: %v vs %v", i, ta, tb)
		}
	}
}

func TestAddTermValidation(t *testing.T) {
	g := NewGO(10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-population gene accepted")
		}
	}()
	g.AddTerm("GO:1", "bad", Process, []int{10})
}

func TestNamespaceString(t *testing.T) {
	if Process.String() != "Process" || Component.String() != "Cellular Component" {
		t.Error("namespace names wrong")
	}
	if Namespace(9).String() == "" {
		t.Error("unknown namespace should still render")
	}
}

func TestTermAccessors(t *testing.T) {
	g := NewGO(10)
	tm := g.AddTerm("GO:1", "t", Process, []int{3, 1, 3})
	if tm.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (dedup)", tm.Size())
	}
	if gs := tm.Genes(); len(gs) != 2 || gs[0] != 1 || gs[1] != 3 {
		t.Fatalf("Genes = %v", gs)
	}
	if !tm.Annotates(1) || tm.Annotates(2) {
		t.Fatal("Annotates wrong")
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
