package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regcluster/internal/paperdata"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden schema files")

// TestSchemaGolden pins the exact serialized form of the stable result
// schema (SchemaID) on the paper's Table 1 running example. The same bytes
// flow through `cmd/regcluster -json`, the service's job results and — per
// cluster — its NDJSON stream, so any layout change shows up here first.
// Regenerate deliberately with `go test ./internal/report -run Golden -update`.
func TestSchemaGolden(t *testing.T) {
	m := paperdata.RunningExample()
	res, p := mineRunning(t)
	doc := FromResult(m, p, res)

	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "running_example.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("schema output drifted from the golden file.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intentional)",
			buf.Bytes(), want)
	}

	// The golden document must also survive read + resolve.
	back, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaID {
		t.Errorf("golden schema id %q, want %q", back.Schema, SchemaID)
	}
	resolved, err := back.Resolve(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 || resolved[0].Key() != res.Clusters[0].Key() {
		t.Error("golden document does not resolve to the mined cluster")
	}
}

func TestMembersCarrySigns(t *testing.T) {
	m := paperdata.RunningExample()
	res, _ := mineRunning(t)
	nc := Named(m, res.Clusters[0])
	if nc.Direction != DirectionRising {
		t.Errorf("direction %q", nc.Direction)
	}
	if len(nc.Members) != 3 {
		t.Fatalf("%d members", len(nc.Members))
	}
	signs := map[string]string{}
	for _, mb := range nc.Members {
		signs[mb.Gene] = mb.Sign
	}
	if signs["g1"] != SignUp || signs["g3"] != SignUp || signs["g2"] != SignDown {
		t.Errorf("signs %v", signs)
	}
}

func TestResolveFromSignedMembersOnly(t *testing.T) {
	m := paperdata.RunningExample()
	res, _ := mineRunning(t)
	full := Named(m, res.Clusters[0])
	doc := &Document{Clusters: []NamedCluster{{Chain: full.Chain, Members: full.Members}}}
	resolved, err := doc.Resolve(m)
	if err != nil {
		t.Fatal(err)
	}
	if resolved[0].Key() != res.Clusters[0].Key() {
		t.Error("signed-member resolve diverged from the mined cluster")
	}
	bad := &Document{Clusters: []NamedCluster{{Chain: full.Chain,
		Members: []Member{{Gene: "g1", Sign: "?"}}}}}
	if _, err := bad.Resolve(m); err == nil {
		t.Error("unknown sign accepted")
	}
}

func TestReadRejectsForeignSchema(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema":"somebody.else/v9","clusters":[]}`))
	if err == nil {
		t.Error("foreign schema accepted")
	}
}
