// Package report serializes mining results with gene and condition *names*
// (rather than matrix indices) so results can be stored, diffed and fed to
// downstream tools, and deserializes them back against a matrix.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
)

// NamedCluster is the portable form of one reg-cluster.
type NamedCluster struct {
	// Chain lists condition names in representative-chain order.
	Chain []string `json:"chain"`
	// PMembers and NMembers list gene names.
	PMembers []string `json:"p_members"`
	NMembers []string `json:"n_members,omitempty"`
	// Genes and Conditions are the dimensions, for quick filtering.
	Genes      int `json:"genes"`
	Conditions int `json:"conditions"`
}

// Document is a full mining result with its parameters.
type Document struct {
	Params   core.Params    `json:"params"`
	Stats    core.Stats     `json:"stats"`
	Clusters []NamedCluster `json:"clusters"`
}

// FromResult converts a mining result to its named form using m's labels.
func FromResult(m *matrix.Matrix, p core.Params, res *core.Result) *Document {
	doc := &Document{Params: p, Stats: res.Stats}
	for _, b := range res.Clusters {
		doc.Clusters = append(doc.Clusters, named(m, b))
	}
	return doc
}

func named(m *matrix.Matrix, b *core.Bicluster) NamedCluster {
	nc := NamedCluster{}
	for _, c := range b.Chain {
		nc.Chain = append(nc.Chain, m.ColName(c))
	}
	for _, g := range b.PMembers {
		nc.PMembers = append(nc.PMembers, m.RowName(g))
	}
	for _, g := range b.NMembers {
		nc.NMembers = append(nc.NMembers, m.RowName(g))
	}
	nc.Genes, nc.Conditions = b.Dims()
	return nc
}

// Write encodes the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read decodes a document from JSON.
func Read(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return &d, nil
}

// Resolve maps the named clusters back to index-based biclusters against m.
// Unknown gene or condition names are an error (the document belongs to a
// different matrix).
func (d *Document) Resolve(m *matrix.Matrix) ([]*core.Bicluster, error) {
	rowIdx := make(map[string]int, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		rowIdx[m.RowName(i)] = i
	}
	colIdx := make(map[string]int, m.Cols())
	for j := 0; j < m.Cols(); j++ {
		colIdx[m.ColName(j)] = j
	}
	out := make([]*core.Bicluster, 0, len(d.Clusters))
	for ci, nc := range d.Clusters {
		b := &core.Bicluster{}
		for _, name := range nc.Chain {
			j, ok := colIdx[name]
			if !ok {
				return nil, fmt.Errorf("report: cluster %d: unknown condition %q", ci, name)
			}
			b.Chain = append(b.Chain, j)
		}
		var err error
		if b.PMembers, err = resolveGenes(rowIdx, nc.PMembers, ci); err != nil {
			return nil, err
		}
		if b.NMembers, err = resolveGenes(rowIdx, nc.NMembers, ci); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func resolveGenes(rowIdx map[string]int, names []string, cluster int) ([]int, error) {
	var out []int
	for _, name := range names {
		g, ok := rowIdx[name]
		if !ok {
			return nil, fmt.Errorf("report: cluster %d: unknown gene %q", cluster, name)
		}
		out = append(out, g)
	}
	return out, nil
}
