// Package report serializes mining results with gene and condition *names*
// (rather than matrix indices) so results can be stored, diffed and fed to
// downstream tools, and deserializes them back against a matrix.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"regcluster/internal/core"
	"regcluster/internal/matrix"
)

// SchemaID identifies the stable JSON schema emitted by this package. It is
// shared by the `cmd/regcluster -json` report, the service's job results and
// its NDJSON cluster stream; a golden-file test pins the byte-level layout.
// Bump the version suffix only on a breaking change — adding fields is not
// one.
const SchemaID = "regcluster.result/v1"

// Sign values of a cluster member.
const (
	SignUp   = "+" // expression strictly rises along the serialized chain
	SignDown = "-" // expression strictly falls along the serialized chain
)

// DirectionRising documents the orientation of the serialized chain: the
// condition names are listed in the order along which every p-member's
// expression strictly rises (and every n-member's strictly falls).
const DirectionRising = "rising"

// Member is one gene of a cluster with its regulation sign relative to the
// serialized chain direction.
type Member struct {
	Gene string `json:"gene"`
	// Sign is SignUp for p-members and SignDown for n-members.
	Sign string `json:"sign"`
}

// NamedCluster is the portable form of one reg-cluster.
type NamedCluster struct {
	// Chain lists condition names in representative-chain order.
	Chain []string `json:"chain"`
	// Direction is always DirectionRising: the chain is serialized in the
	// orientation along which p-members rise. Consumers that re-orient the
	// chain must flip every member sign.
	Direction string `json:"chain_direction"`
	// Members lists every gene with its sign, p-members first, each group in
	// ascending matrix order.
	Members []Member `json:"members"`
	// PMembers and NMembers list the gene names split by sign (redundant
	// with Members; kept for spreadsheet-friendly consumption).
	PMembers []string `json:"p_members"`
	NMembers []string `json:"n_members,omitempty"`
	// Genes and Conditions are the dimensions, for quick filtering.
	Genes      int `json:"genes"`
	Conditions int `json:"conditions"`
}

// Document is a full mining result with its parameters.
type Document struct {
	Schema   string         `json:"schema"`
	Params   core.Params    `json:"params"`
	Stats    core.Stats     `json:"stats"`
	Clusters []NamedCluster `json:"clusters"`
}

// FromResult converts a mining result to its named form using m's labels.
func FromResult(m *matrix.Matrix, p core.Params, res *core.Result) *Document {
	doc := &Document{Schema: SchemaID, Params: p, Stats: res.Stats}
	for _, b := range res.Clusters {
		doc.Clusters = append(doc.Clusters, Named(m, b))
	}
	return doc
}

// Named converts one cluster to its portable named form using m's labels.
func Named(m *matrix.Matrix, b *core.Bicluster) NamedCluster {
	nc := NamedCluster{Direction: DirectionRising}
	for _, c := range b.Chain {
		nc.Chain = append(nc.Chain, m.ColName(c))
	}
	for _, g := range b.PMembers {
		name := m.RowName(g)
		nc.PMembers = append(nc.PMembers, name)
		nc.Members = append(nc.Members, Member{Gene: name, Sign: SignUp})
	}
	for _, g := range b.NMembers {
		name := m.RowName(g)
		nc.NMembers = append(nc.NMembers, name)
		nc.Members = append(nc.Members, Member{Gene: name, Sign: SignDown})
	}
	nc.Genes, nc.Conditions = b.Dims()
	return nc
}

// Write encodes the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read decodes a document from JSON. Documents written before the schema
// field existed (no "schema" key) are accepted; a document declaring a
// different schema is rejected.
func Read(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if d.Schema != "" && d.Schema != SchemaID {
		return nil, fmt.Errorf("report: unsupported schema %q (this build reads %q)", d.Schema, SchemaID)
	}
	return &d, nil
}

// Resolve maps the named clusters back to index-based biclusters against m.
// Unknown gene or condition names are an error (the document belongs to a
// different matrix).
func (d *Document) Resolve(m *matrix.Matrix) ([]*core.Bicluster, error) {
	rowIdx := make(map[string]int, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		rowIdx[m.RowName(i)] = i
	}
	colIdx := make(map[string]int, m.Cols())
	for j := 0; j < m.Cols(); j++ {
		colIdx[m.ColName(j)] = j
	}
	out := make([]*core.Bicluster, 0, len(d.Clusters))
	for ci, nc := range d.Clusters {
		b := &core.Bicluster{}
		for _, name := range nc.Chain {
			j, ok := colIdx[name]
			if !ok {
				return nil, fmt.Errorf("report: cluster %d: unknown condition %q", ci, name)
			}
			b.Chain = append(b.Chain, j)
		}
		pNames, nNames := nc.PMembers, nc.NMembers
		if len(pNames) == 0 && len(nNames) == 0 && len(nc.Members) > 0 {
			// A document carrying only the signed member list.
			for _, mb := range nc.Members {
				switch mb.Sign {
				case SignUp:
					pNames = append(pNames, mb.Gene)
				case SignDown:
					nNames = append(nNames, mb.Gene)
				default:
					return nil, fmt.Errorf("report: cluster %d: gene %q has unknown sign %q", ci, mb.Gene, mb.Sign)
				}
			}
		}
		var err error
		if b.PMembers, err = resolveGenes(rowIdx, pNames, ci); err != nil {
			return nil, err
		}
		if b.NMembers, err = resolveGenes(rowIdx, nNames, ci); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func resolveGenes(rowIdx map[string]int, names []string, cluster int) ([]int, error) {
	var out []int
	for _, name := range names {
		g, ok := rowIdx[name]
		if !ok {
			return nil, fmt.Errorf("report: cluster %d: unknown gene %q", cluster, name)
		}
		out = append(out, g)
	}
	return out, nil
}
