package report

import (
	"reflect"
	"strings"
	"testing"

	"regcluster/internal/core"
	"regcluster/internal/paperdata"
)

func mineRunning(t *testing.T) (*core.Result, core.Params) {
	t.Helper()
	p := core.Params{MinG: 3, MinC: 5, Gamma: 0.15, Epsilon: 0.1}
	res, err := core.Mine(paperdata.RunningExample(), p)
	if err != nil {
		t.Fatal(err)
	}
	return res, p
}

func TestRoundTrip(t *testing.T) {
	m := paperdata.RunningExample()
	res, p := mineRunning(t)
	doc := FromResult(m, p, res)
	if len(doc.Clusters) != 1 {
		t.Fatalf("%d clusters in document", len(doc.Clusters))
	}
	nc := doc.Clusters[0]
	if !reflect.DeepEqual(nc.Chain, []string{"c7", "c9", "c5", "c1", "c3"}) {
		t.Errorf("chain names %v", nc.Chain)
	}
	if !reflect.DeepEqual(nc.PMembers, []string{"g1", "g3"}) || !reflect.DeepEqual(nc.NMembers, []string{"g2"}) {
		t.Errorf("member names %v / %v", nc.PMembers, nc.NMembers)
	}
	if nc.Genes != 3 || nc.Conditions != 5 {
		t.Errorf("dims %d×%d", nc.Genes, nc.Conditions)
	}

	var sb strings.Builder
	if err := doc.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Params, p) {
		t.Errorf("params round trip: %+v", back.Params)
	}
	if back.Stats != res.Stats {
		t.Errorf("stats round trip: %+v", back.Stats)
	}
	resolved, err := back.Resolve(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 || resolved[0].Key() != res.Clusters[0].Key() {
		t.Fatalf("resolve mismatch: %v vs %v", resolved, res.Clusters)
	}
	// Resolved clusters still validate.
	if err := core.CheckBicluster(m, p, resolved[0]); err != nil {
		t.Error(err)
	}
}

func TestResolveUnknownNames(t *testing.T) {
	m := paperdata.RunningExample()
	doc := &Document{Clusters: []NamedCluster{{Chain: []string{"nope"}, PMembers: []string{"g1"}}}}
	if _, err := doc.Resolve(m); err == nil {
		t.Error("unknown condition accepted")
	}
	doc = &Document{Clusters: []NamedCluster{{Chain: []string{"c1"}, PMembers: []string{"ghost"}}}}
	if _, err := doc.Resolve(m); err == nil {
		t.Error("unknown gene accepted")
	}
	doc = &Document{Clusters: []NamedCluster{{Chain: []string{"c1"}, NMembers: []string{"ghost"}}}}
	if _, err := doc.Resolve(m); err == nil {
		t.Error("unknown n-member accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}
