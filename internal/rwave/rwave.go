// Package rwave implements the RWave^γ regulation model of the reg-cluster
// paper (Definition 3.1).
//
// For a single gene, the model sorts the experimental conditions in
// non-descending order of expression value and records the minimal set of
// non-embedded regulation pointers: a pointer (A, B) over sorted ranks A < B
// certifies that every condition ranked >= B is up-regulated (difference
// greater than the gene's regulation threshold γ_i) with respect to every
// condition ranked <= A. Lemma 3.1 then answers "which conditions are
// regulation predecessors/successors of c?" by locating the nearest pointer,
// and with this package's construction the answer is exact, not merely sound.
package rwave

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"regcluster/internal/matrix"
	"regcluster/internal/obs"
)

// Pointer is a regulation pointer between two sorted ranks of a gene's
// condition ordering. It certifies that value(B) - value(A) > γ, and by the
// sorted order that every rank >= B is up-regulated versus every rank <= A.
type Pointer struct {
	A, B int
}

// Model is the RWave^γ model of one gene.
type Model struct {
	gene     int
	gamma    float64   // absolute regulation threshold γ_i
	order    []int     // rank -> condition index, non-descending by value
	rank     []int     // condition index -> rank
	values   []float64 // rank -> expression value
	pointers []Pointer // minimal non-embedded pointer set, A and B strictly increasing
	upLen    []int     // rank -> max regulation-chain length starting upward at this rank
	downLen  []int     // rank -> max regulation-chain length starting downward at this rank
}

// Build constructs the RWave^γ model for the given gene row of m using the
// paper's Equation 4 threshold: γ_i = gamma × (max_j d_ij − min_j d_ij).
// gamma must lie in [0, 1]. The guard is written as a negated conjunction so
// NaN — which compares false against every bound — is rejected too, instead
// of silently yielding a NaN threshold.
func Build(m *matrix.Matrix, gene int, gamma float64) *Model {
	if !(gamma >= 0 && gamma <= 1) {
		panic(fmt.Sprintf("rwave: relative gamma %v out of [0,1]", gamma))
	}
	return BuildAbsolute(m, gene, gamma*m.RowRange(gene))
}

// BuildAbsolute constructs the model with an explicit absolute threshold
// γ_i = gammaAbs (Section 3.1 notes that alternative per-gene thresholds may
// be plugged in; this is the hook).
func BuildAbsolute(m *matrix.Matrix, gene int, gammaAbs float64) *Model {
	if !(gammaAbs >= 0) {
		// Negated form so NaN (which fails every comparison) is rejected
		// alongside negatives, instead of poisoning the regulation pointers.
		panic(fmt.Sprintf("rwave: gamma %v must be a non-negative number", gammaAbs))
	}
	n := m.Cols()
	mod := &Model{
		gene:   gene,
		gamma:  gammaAbs,
		order:  make([]int, n),
		rank:   make([]int, n),
		values: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		mod.order[j] = j
	}
	row := m.Row(gene)
	// Non-descending by value; ties broken by ascending condition index so
	// the model is deterministic.
	sort.SliceStable(mod.order, func(a, b int) bool {
		return row[mod.order[a]] < row[mod.order[b]]
	})
	for r, c := range mod.order {
		mod.rank[c] = r
		mod.values[r] = row[c]
	}
	mod.buildPointers()
	mod.buildChainLengths()
	return mod
}

// buildPointers emits the minimal non-embedded pointer set in one
// left-to-right pass. For each rank j, pred(j) is the largest rank k < j with
// values[j]-values[k] > γ; pred is non-decreasing in j, so a two-pointer scan
// suffices. A pointer (pred(j), j) is recorded only when pred(j) advances
// past the head of the previously recorded pointer; otherwise the new pointer
// would embed an existing one, violating condition (2) of Definition 3.1.
func (mod *Model) buildPointers() {
	n := len(mod.values)
	p := 0
	lastA := -1
	for j := 0; j < n; j++ {
		for p < j && mod.values[j]-mod.values[p] > mod.gamma {
			p++
		}
		pred := p - 1
		if pred >= 0 && pred > lastA {
			mod.pointers = append(mod.pointers, Pointer{A: pred, B: j})
			lastA = pred
		}
	}
}

// buildChainLengths precomputes, for every rank, the length of the longest
// regulation chain that starts there and walks upward (upLen) or downward
// (downLen). Jumping to the nearest admissible rank is optimal because the
// successor (predecessor) set only shrinks (grows) with rank, so chain
// lengths are monotone in rank.
func (mod *Model) buildChainLengths() {
	n := len(mod.values)
	mod.upLen = make([]int, n)
	mod.downLen = make([]int, n)
	for r := n - 1; r >= 0; r-- {
		mod.upLen[r] = 1
		if b := mod.successorStart(r); b < n {
			mod.upLen[r] = 1 + mod.upLen[b]
		}
	}
	for r := 0; r < n; r++ {
		mod.downLen[r] = 1
		if a := mod.predecessorEnd(r); a >= 0 {
			mod.downLen[r] = 1 + mod.downLen[a]
		}
	}
}

// successorStart returns the smallest rank b such that every rank >= b is a
// regulation successor of rank r, or len(values) when r has no successors.
// It is the B of the nearest pointer after r in the sense of Lemma 3.1 (the
// pointer with minimal B among those with A >= r).
func (mod *Model) successorStart(r int) int {
	// pointers have strictly increasing A, so binary-search the first with
	// A >= r.
	i := sort.Search(len(mod.pointers), func(i int) bool { return mod.pointers[i].A >= r })
	if i == len(mod.pointers) {
		return len(mod.values)
	}
	return mod.pointers[i].B
}

// predecessorEnd returns the largest rank a such that every rank <= a is a
// regulation predecessor of rank r, or -1 when r has no predecessors. It is
// the A of the nearest pointer before r (the pointer with maximal B <= r).
func (mod *Model) predecessorEnd(r int) int {
	i := sort.Search(len(mod.pointers), func(i int) bool { return mod.pointers[i].B > r })
	if i == 0 {
		return -1
	}
	return mod.pointers[i-1].A
}

// Gene returns the row index this model was built from.
func (mod *Model) Gene() int { return mod.gene }

// Gamma returns the absolute regulation threshold γ_i.
func (mod *Model) Gamma() float64 { return mod.gamma }

// Conditions returns the number of conditions.
func (mod *Model) Conditions() int { return len(mod.order) }

// Order returns the condition index at the given sorted rank.
func (mod *Model) Order(rank int) int { return mod.order[rank] }

// Rank returns the sorted rank of condition c.
func (mod *Model) Rank(c int) int { return mod.rank[c] }

// Value returns the expression value at the given sorted rank.
func (mod *Model) Value(rank int) float64 { return mod.values[rank] }

// ValueOf returns the expression value of condition c.
func (mod *Model) ValueOf(c int) float64 { return mod.values[mod.rank[c]] }

// Pointers returns a copy of the regulation pointer list.
func (mod *Model) Pointers() []Pointer {
	out := make([]Pointer, len(mod.pointers))
	copy(out, mod.pointers)
	return out
}

// IsUpRegulated reports Reg(i, to, from) == Up: whether the gene is
// up-regulated from condition `from` to condition `to` (Equation 3), i.e.
// d[to] - d[from] > γ_i.
func (mod *Model) IsUpRegulated(from, to int) bool {
	return mod.values[mod.rank[to]]-mod.values[mod.rank[from]] > mod.gamma
}

// IsSuccessor reports whether condition succ is a regulation successor of
// condition c, answered through the pointer structure (Lemma 3.1).
func (mod *Model) IsSuccessor(c, succ int) bool {
	return mod.rank[succ] >= mod.successorStart(mod.rank[c])
}

// IsPredecessor reports whether condition pred is a regulation predecessor of
// condition c, answered through the pointer structure (Lemma 3.1).
func (mod *Model) IsPredecessor(c, pred int) bool {
	return mod.rank[pred] <= mod.predecessorEnd(mod.rank[c])
}

// SuccessorStartRank exposes successorStart by condition: the minimal rank
// whose conditions are regulation successors of c (== Conditions() if none).
func (mod *Model) SuccessorStartRank(c int) int { return mod.successorStart(mod.rank[c]) }

// PredecessorEndRank exposes predecessorEnd by condition: the maximal rank
// whose conditions are regulation predecessors of c (== -1 if none).
func (mod *Model) PredecessorEndRank(c int) int { return mod.predecessorEnd(mod.rank[c]) }

// Successors returns the condition indices that are regulation successors of
// c, in rank order.
func (mod *Model) Successors(c int) []int {
	b := mod.successorStart(mod.rank[c])
	out := make([]int, 0, len(mod.order)-b)
	for r := b; r < len(mod.order); r++ {
		out = append(out, mod.order[r])
	}
	return out
}

// Predecessors returns the condition indices that are regulation predecessors
// of c, in rank order.
func (mod *Model) Predecessors(c int) []int {
	a := mod.predecessorEnd(mod.rank[c])
	out := make([]int, 0, a+1)
	for r := 0; r <= a; r++ {
		out = append(out, mod.order[r])
	}
	return out
}

// MaxUpChainFrom returns the length of the longest regulation chain that
// starts at condition c and moves through successive regulation successors
// (pruning strategy (2) of the mining algorithm).
func (mod *Model) MaxUpChainFrom(c int) int { return mod.upLen[mod.rank[c]] }

// MaxDownChainFrom returns the length of the longest regulation chain that
// starts at condition c and moves through successive regulation predecessors.
func (mod *Model) MaxDownChainFrom(c int) int { return mod.downLen[mod.rank[c]] }

// MaxChain returns the length of the longest regulation chain anywhere in the
// model (== MaxUpChainFrom of the lowest-ranked condition when non-trivial).
func (mod *Model) MaxChain() int {
	best := 0
	for r := range mod.upLen {
		if mod.upLen[r] > best {
			best = mod.upLen[r]
		}
	}
	return best
}

// String renders the model in the style of Figure 3: the sorted condition
// list with pointer positions.
func (mod *Model) String() string {
	s := fmt.Sprintf("RWave(g%d, γ=%.4g): ", mod.gene, mod.gamma)
	for r, c := range mod.order {
		if r > 0 {
			s += " "
		}
		s += fmt.Sprintf("c%d(%.4g)", c, mod.values[r])
	}
	s += " pointers:"
	for _, p := range mod.pointers {
		s += fmt.Sprintf(" %d↶%d", p.A, p.B)
	}
	return s
}

// BuildAll constructs models for every gene of m with the Equation 4 relative
// threshold, fanning out across CPUs for large gene counts.
func BuildAll(m *matrix.Matrix, gamma float64) []*Model {
	if !(gamma >= 0 && gamma <= 1) {
		// Validate once up front (NaN included) so a bad threshold still
		// panics on the calling goroutine, not inside a build worker.
		panic(fmt.Sprintf("rwave: relative gamma %v out of [0,1]", gamma))
	}
	return BuildAllFunc(m.Rows(), func(g int) *Model {
		return Build(m, g, gamma)
	})
}

// buildParallelMinGenes is the gene count below which the fan-out overhead
// outweighs the per-gene O(n log n) build work and BuildAllFunc stays
// sequential; buildChunk is the number of genes one worker claims per grab.
const (
	buildParallelMinGenes = 128
	buildChunk            = 32
)

// BuildAllFunc constructs one model per gene index [0, n) with the supplied
// builder. Models are independent per gene, so for large n the construction
// runs on up to GOMAXPROCS goroutines; the result is identical to a
// sequential loop (each slot is written exactly once by whoever claims it).
// The builder must be safe for concurrent calls with distinct gene indices —
// the rwave builders only read their own matrix row, so they are. A builder
// panic is re-raised on the calling goroutine.
func BuildAllFunc(n int, build func(g int) *Model) []*Model {
	return BuildAllSpan(n, build, nil)
}

// BuildAllSpan is BuildAllFunc with phase tracing: when sp is non-nil, each
// worker records one child span per claimed gene chunk (attrs lo/hi), and sp
// itself collects genes/workers attributes — the per-phase breakdown of the
// index construction. A nil sp is free: the spans degrade to no-ops without
// allocating, so the zero-allocation mining hot path is untouched.
func BuildAllSpan(n int, build func(g int) *Model, sp *obs.Span) []*Model {
	models := make([]*Model, n)
	workers := runtime.GOMAXPROCS(0)
	if n < buildParallelMinGenes || workers <= 1 {
		sp.SetInt("genes", int64(n))
		sp.SetInt("workers", 1)
		csp := sp.Start("rwave.chunk")
		if csp != nil {
			csp.SetInt("lo", 0)
			csp.SetInt("hi", int64(n))
		}
		for g := range models {
			models[g] = build(g)
		}
		csp.End()
		return models
	}
	if max := (n + buildChunk - 1) / buildChunk; workers > max {
		workers = max
	}
	sp.SetInt("genes", int64(n))
	sp.SetInt("workers", int64(workers))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				lo := int(next.Add(buildChunk)) - buildChunk
				if lo >= n {
					return
				}
				hi := lo + buildChunk
				if hi > n {
					hi = n
				}
				csp := sp.Start("rwave.chunk")
				if csp != nil {
					csp.SetInt("lo", int64(lo))
					csp.SetInt("hi", int64(hi))
				}
				for g := lo; g < hi; g++ {
					models[g] = build(g)
				}
				csp.End()
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return models
}
