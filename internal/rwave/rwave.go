// Package rwave implements the RWave^γ regulation model of the reg-cluster
// paper (Definition 3.1).
//
// For a single gene, the model sorts the experimental conditions in
// non-descending order of expression value and records the minimal set of
// non-embedded regulation pointers: a pointer (A, B) over sorted ranks A < B
// certifies that every condition ranked >= B is up-regulated (difference
// greater than the gene's regulation threshold γ_i) with respect to every
// condition ranked <= A. Lemma 3.1 then answers "which conditions are
// regulation predecessors/successors of c?" by locating the nearest pointer,
// and with this package's construction the answer is exact, not merely sound.
package rwave

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"regcluster/internal/matrix"
	"regcluster/internal/obs"
)

// Pointer is a regulation pointer between two sorted ranks of a gene's
// condition ordering. It certifies that value(B) - value(A) > γ, and by the
// sorted order that every rank >= B is up-regulated versus every rank <= A.
type Pointer struct {
	A, B int
}

// Model is the RWave^γ model of one gene.
//
// Besides the pointer list itself, the model memoizes the Lemma 3.1 frontier
// as two flat arrays (succStart, predEnd) and keeps a condition-indexed copy
// of the row (valueByCond), so every hot-path query — IsSuccessor,
// IsPredecessor, SuccessorStartRank, PredecessorEndRank, ValueOf — is an O(1)
// array load with no binary search and no rank indirection. The slice fields
// follow the packed slab layout (see ModelSlab): one int backing holds the
// order|rank|succStart|predEnd|upLen|downLen stripes and one float64 backing
// holds values|valueByCond, whether the model stands alone (its own
// mini-slab, allocated by BuildAbsolute) or is a view into a shared
// multi-gene slab (PackModels).
type Model struct {
	gene     int
	gamma    float64   // absolute regulation threshold γ_i
	order    []int     // rank -> condition index, non-descending by value
	rank     []int     // condition index -> rank
	values   []float64 // rank -> expression value
	pointers []Pointer // minimal non-embedded pointer set, A and B strictly increasing
	upLen    []int     // rank -> max regulation-chain length starting upward at this rank
	downLen  []int     // rank -> max regulation-chain length starting downward at this rank

	succStart   []int     // rank -> smallest successor rank (== Conditions() when none)
	predEnd     []int     // rank -> largest predecessor rank (== -1 when none)
	valueByCond []float64 // condition index -> expression value (row copy)
}

// slabIntStripes and slabFloatStripes are the per-gene stripe counts of the
// packed layout: every model owns slabIntStripes×n ints and slabFloatStripes×n
// float64s, n = Conditions(). PackModels and BuildAbsolute must agree on them.
const (
	slabIntStripes   = 6 // order | rank | succStart | predEnd | upLen | downLen
	slabFloatStripes = 2 // values | valueByCond
)

// bindStripes carves the model's slice fields out of a backing pair laid out
// in the slab stripe order. The three-index slices cap every view at its
// stripe boundary, so an append through a leaked view can never bleed into a
// neighbouring stripe (or gene).
func (mod *Model) bindStripes(ints []int, floats []float64, n int) {
	mod.order = ints[0*n : 1*n : 1*n]
	mod.rank = ints[1*n : 2*n : 2*n]
	mod.succStart = ints[2*n : 3*n : 3*n]
	mod.predEnd = ints[3*n : 4*n : 4*n]
	mod.upLen = ints[4*n : 5*n : 5*n]
	mod.downLen = ints[5*n : 6*n : 6*n]
	mod.values = floats[0*n : 1*n : 1*n]
	mod.valueByCond = floats[1*n : 2*n : 2*n]
}

// Build constructs the RWave^γ model for the given gene row of m using the
// paper's Equation 4 threshold: γ_i = gamma × (max_j d_ij − min_j d_ij).
// gamma must lie in [0, 1]. The guard is written as a negated conjunction so
// NaN — which compares false against every bound — is rejected too, instead
// of silently yielding a NaN threshold.
func Build(m *matrix.Matrix, gene int, gamma float64) *Model {
	if !(gamma >= 0 && gamma <= 1) {
		panic(fmt.Sprintf("rwave: relative gamma %v out of [0,1]", gamma))
	}
	return BuildAbsolute(m, gene, gamma*m.RowRange(gene))
}

// BuildAbsolute constructs the model with an explicit absolute threshold
// γ_i = gammaAbs (Section 3.1 notes that alternative per-gene thresholds may
// be plugged in; this is the hook).
func BuildAbsolute(m *matrix.Matrix, gene int, gammaAbs float64) *Model {
	if !(gammaAbs >= 0) {
		// Negated form so NaN (which fails every comparison) is rejected
		// alongside negatives, instead of poisoning the regulation pointers.
		panic(fmt.Sprintf("rwave: gamma %v must be a non-negative number", gammaAbs))
	}
	n := m.Cols()
	mod := &Model{gene: gene, gamma: gammaAbs}
	// One int and one float64 allocation cover all eight per-gene arrays:
	// the model is born in the packed stripe layout PackModels concatenates.
	mod.bindStripes(make([]int, slabIntStripes*n), make([]float64, slabFloatStripes*n), n)
	for j := 0; j < n; j++ {
		mod.order[j] = j
	}
	row := m.Row(gene)
	// Non-descending by value; ties broken by ascending condition index so
	// the model is deterministic.
	sort.SliceStable(mod.order, func(a, b int) bool {
		return row[mod.order[a]] < row[mod.order[b]]
	})
	for r, c := range mod.order {
		mod.rank[c] = r
		mod.values[r] = row[c]
		mod.valueByCond[c] = row[c]
	}
	mod.buildPointers()
	mod.buildFrontiers()
	mod.buildChainLengths()
	return mod
}

// buildPointers emits the minimal non-embedded pointer set in one
// left-to-right pass. For each rank j, pred(j) is the largest rank k < j with
// values[j]-values[k] > γ; pred is non-decreasing in j, so a two-pointer scan
// suffices. A pointer (pred(j), j) is recorded only when pred(j) advances
// past the head of the previously recorded pointer; otherwise the new pointer
// would embed an existing one, violating condition (2) of Definition 3.1.
func (mod *Model) buildPointers() {
	n := len(mod.values)
	p := 0
	lastA := -1
	for j := 0; j < n; j++ {
		for p < j && mod.values[j]-mod.values[p] > mod.gamma {
			p++
		}
		pred := p - 1
		if pred >= 0 && pred > lastA {
			mod.pointers = append(mod.pointers, Pointer{A: pred, B: j})
			lastA = pred
		}
	}
}

// buildFrontiers memoizes the Lemma 3.1 answers as flat per-rank arrays.
// successorStart(r) is the B of the first pointer with A >= r (the nearest
// pointer after r), or n when none exists; predecessorEnd(r) is the A of the
// last pointer with B <= r, or -1. Pointers have strictly increasing A and B,
// so both arrays fill in one merged linear walk — no binary search, at build
// time or ever after.
func (mod *Model) buildFrontiers() {
	n := len(mod.values)
	ptrs := mod.pointers
	i := 0 // first pointer with A >= r
	for r := 0; r < n; r++ {
		for i < len(ptrs) && ptrs[i].A < r {
			i++
		}
		if i < len(ptrs) {
			mod.succStart[r] = ptrs[i].B
		} else {
			mod.succStart[r] = n
		}
	}
	j := -1 // last pointer with B <= r
	for r := 0; r < n; r++ {
		for j+1 < len(ptrs) && ptrs[j+1].B <= r {
			j++
		}
		if j >= 0 {
			mod.predEnd[r] = ptrs[j].A
		} else {
			mod.predEnd[r] = -1
		}
	}
}

// buildChainLengths precomputes, for every rank, the length of the longest
// regulation chain that starts there and walks upward (upLen) or downward
// (downLen). Jumping to the nearest admissible rank is optimal because the
// successor (predecessor) set only shrinks (grows) with rank, so chain
// lengths are monotone in rank. Runs after buildFrontiers so the hops are
// array loads.
func (mod *Model) buildChainLengths() {
	n := len(mod.values)
	for r := n - 1; r >= 0; r-- {
		mod.upLen[r] = 1
		if b := mod.succStart[r]; b < n {
			mod.upLen[r] = 1 + mod.upLen[b]
		}
	}
	for r := 0; r < n; r++ {
		mod.downLen[r] = 1
		if a := mod.predEnd[r]; a >= 0 {
			mod.downLen[r] = 1 + mod.downLen[a]
		}
	}
}

// successorStart returns the smallest rank b such that every rank >= b is a
// regulation successor of rank r, or len(values) when r has no successors.
// It is the B of the nearest pointer after r in the sense of Lemma 3.1 (the
// pointer with minimal B among those with A >= r), memoized at build time.
func (mod *Model) successorStart(r int) int { return mod.succStart[r] }

// predecessorEnd returns the largest rank a such that every rank <= a is a
// regulation predecessor of rank r, or -1 when r has no predecessors. It is
// the A of the nearest pointer before r (the pointer with maximal B <= r),
// memoized at build time.
func (mod *Model) predecessorEnd(r int) int { return mod.predEnd[r] }

// Gene returns the row index this model was built from.
func (mod *Model) Gene() int { return mod.gene }

// Gamma returns the absolute regulation threshold γ_i.
func (mod *Model) Gamma() float64 { return mod.gamma }

// Conditions returns the number of conditions.
func (mod *Model) Conditions() int { return len(mod.order) }

// Order returns the condition index at the given sorted rank.
func (mod *Model) Order(rank int) int { return mod.order[rank] }

// Rank returns the sorted rank of condition c.
func (mod *Model) Rank(c int) int { return mod.rank[c] }

// Value returns the expression value at the given sorted rank.
func (mod *Model) Value(rank int) float64 { return mod.values[rank] }

// ValueOf returns the expression value of condition c. The flat valueByCond
// copy answers it in one load, without the rank indirection.
func (mod *Model) ValueOf(c int) float64 { return mod.valueByCond[c] }

// Pointers returns a copy of the regulation pointer list.
func (mod *Model) Pointers() []Pointer {
	out := make([]Pointer, len(mod.pointers))
	copy(out, mod.pointers)
	return out
}

// IsUpRegulated reports Reg(i, to, from) == Up: whether the gene is
// up-regulated from condition `from` to condition `to` (Equation 3), i.e.
// d[to] - d[from] > γ_i.
func (mod *Model) IsUpRegulated(from, to int) bool {
	return mod.values[mod.rank[to]]-mod.values[mod.rank[from]] > mod.gamma
}

// IsSuccessor reports whether condition succ is a regulation successor of
// condition c, answered through the pointer structure (Lemma 3.1).
func (mod *Model) IsSuccessor(c, succ int) bool {
	return mod.rank[succ] >= mod.successorStart(mod.rank[c])
}

// IsPredecessor reports whether condition pred is a regulation predecessor of
// condition c, answered through the pointer structure (Lemma 3.1).
func (mod *Model) IsPredecessor(c, pred int) bool {
	return mod.rank[pred] <= mod.predecessorEnd(mod.rank[c])
}

// SuccessorStartRank exposes successorStart by condition: the minimal rank
// whose conditions are regulation successors of c (== Conditions() if none).
func (mod *Model) SuccessorStartRank(c int) int { return mod.successorStart(mod.rank[c]) }

// PredecessorEndRank exposes predecessorEnd by condition: the maximal rank
// whose conditions are regulation predecessors of c (== -1 if none).
func (mod *Model) PredecessorEndRank(c int) int { return mod.predecessorEnd(mod.rank[c]) }

// AppendSuccessors appends the condition indices that are regulation
// successors of c to dst, in rank order, and returns the extended slice. It
// allocates only when dst lacks capacity, so callers with a reusable buffer
// pay nothing per call.
func (mod *Model) AppendSuccessors(dst []int, c int) []int {
	return append(dst, mod.order[mod.succStart[mod.rank[c]]:]...)
}

// AppendPredecessors appends the condition indices that are regulation
// predecessors of c to dst, in rank order, and returns the extended slice.
func (mod *Model) AppendPredecessors(dst []int, c int) []int {
	return append(dst, mod.order[:mod.predEnd[mod.rank[c]]+1]...)
}

// Successors returns the condition indices that are regulation successors of
// c, in rank order. It allocates a fresh slice per call; hot paths should use
// AppendSuccessors with a reusable buffer.
func (mod *Model) Successors(c int) []int {
	b := mod.succStart[mod.rank[c]]
	return mod.AppendSuccessors(make([]int, 0, len(mod.order)-b), c)
}

// Predecessors returns the condition indices that are regulation predecessors
// of c, in rank order. It allocates a fresh slice per call; hot paths should
// use AppendPredecessors with a reusable buffer.
func (mod *Model) Predecessors(c int) []int {
	a := mod.predEnd[mod.rank[c]]
	return mod.AppendPredecessors(make([]int, 0, a+1), c)
}

// MaxUpChainFrom returns the length of the longest regulation chain that
// starts at condition c and moves through successive regulation successors
// (pruning strategy (2) of the mining algorithm).
func (mod *Model) MaxUpChainFrom(c int) int { return mod.upLen[mod.rank[c]] }

// MaxDownChainFrom returns the length of the longest regulation chain that
// starts at condition c and moves through successive regulation predecessors.
func (mod *Model) MaxDownChainFrom(c int) int { return mod.downLen[mod.rank[c]] }

// MaxChain returns the length of the longest regulation chain anywhere in the
// model (== MaxUpChainFrom of the lowest-ranked condition when non-trivial).
func (mod *Model) MaxChain() int {
	best := 0
	for r := range mod.upLen {
		if mod.upLen[r] > best {
			best = mod.upLen[r]
		}
	}
	return best
}

// String renders the model in the style of Figure 3: the sorted condition
// list with pointer positions.
func (mod *Model) String() string {
	s := fmt.Sprintf("RWave(g%d, γ=%.4g): ", mod.gene, mod.gamma)
	for r, c := range mod.order {
		if r > 0 {
			s += " "
		}
		s += fmt.Sprintf("c%d(%.4g)", c, mod.values[r])
	}
	s += " pointers:"
	for _, p := range mod.pointers {
		s += fmt.Sprintf(" %d↶%d", p.A, p.B)
	}
	return s
}

// BuildAll constructs models for every gene of m with the Equation 4 relative
// threshold, fanning out across CPUs for large gene counts.
func BuildAll(m *matrix.Matrix, gamma float64) []*Model {
	if !(gamma >= 0 && gamma <= 1) {
		// Validate once up front (NaN included) so a bad threshold still
		// panics on the calling goroutine, not inside a build worker.
		panic(fmt.Sprintf("rwave: relative gamma %v out of [0,1]", gamma))
	}
	return BuildAllFunc(m.Rows(), func(g int) *Model {
		return Build(m, g, gamma)
	})
}

// buildParallelMinGenes is the gene count below which the fan-out overhead
// outweighs the per-gene O(n log n) build work and BuildAllFunc stays
// sequential; buildChunk is the number of genes one worker claims per grab.
const (
	buildParallelMinGenes = 128
	buildChunk            = 32
)

// BuildAllFunc constructs one model per gene index [0, n) with the supplied
// builder. Models are independent per gene, so for large n the construction
// runs on up to GOMAXPROCS goroutines; the result is identical to a
// sequential loop (each slot is written exactly once by whoever claims it).
// The builder must be safe for concurrent calls with distinct gene indices —
// the rwave builders only read their own matrix row, so they are. A builder
// panic is re-raised on the calling goroutine.
func BuildAllFunc(n int, build func(g int) *Model) []*Model {
	return BuildAllSpan(n, build, nil)
}

// BuildAllSpan is BuildAllFunc with phase tracing: when sp is non-nil, each
// worker records one child span per claimed gene chunk (attrs lo/hi), and sp
// itself collects genes/workers attributes — the per-phase breakdown of the
// index construction. A nil sp is free: the spans degrade to no-ops without
// allocating, so the zero-allocation mining hot path is untouched.
func BuildAllSpan(n int, build func(g int) *Model, sp *obs.Span) []*Model {
	models := make([]*Model, n)
	workers := runtime.GOMAXPROCS(0)
	if n < buildParallelMinGenes || workers <= 1 {
		sp.SetInt("genes", int64(n))
		sp.SetInt("workers", 1)
		csp := sp.Start("rwave.chunk")
		if csp != nil {
			csp.SetInt("lo", 0)
			csp.SetInt("hi", int64(n))
		}
		for g := range models {
			models[g] = build(g)
		}
		csp.End()
		return models
	}
	if max := (n + buildChunk - 1) / buildChunk; workers > max {
		workers = max
	}
	sp.SetInt("genes", int64(n))
	sp.SetInt("workers", int64(workers))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				lo := int(next.Add(buildChunk)) - buildChunk
				if lo >= n {
					return
				}
				hi := lo + buildChunk
				if hi > n {
					hi = n
				}
				csp := sp.Start("rwave.chunk")
				if csp != nil {
					csp.SetInt("lo", int64(lo))
					csp.SetInt("hi", int64(hi))
				}
				for g := lo; g < hi; g++ {
					models[g] = build(g)
				}
				csp.End()
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return models
}
